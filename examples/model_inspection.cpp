// Model inspection: the interpretability story.
//
// The paper argues the model "is easy to interpret and can assist later
// human debugging" and "can output the problematic measurement ranges".
// This example opens up a trained PairModel: the grid structure (which
// value ranges form cells), the transition matrix rows, and — after an
// anomaly — the exact cell ranges involved, plus save/load round-trip.
//
// Build & run:  ./build/examples/model_inspection
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "core/model.h"
#include "io/model_io.h"

using namespace pmcorr;

namespace {

void PrintCellRange(const PairModel& model, std::size_t cell) {
  const Interval d1 = model.Grid().CellIntervalDim1(cell);
  const Interval d2 = model.Grid().CellIntervalDim2(cell);
  std::printf("cell %zu = [%.1f, %.1f) x [%.1f, %.1f)", cell, d1.lo, d1.hi,
              d2.lo, d2.hi);
}

}  // namespace

int main() {
  // Train on a saturating pair (throughput vs utilization).
  Rng rng(42);
  std::vector<double> xs, ys;
  for (int t = 0; t < 3000; ++t) {
    const double load = 60.0 + 40.0 * std::sin(t * 0.025) + rng.Normal(0, 2);
    xs.push_back(load * 1000.0 + rng.Normal(0, 300));
    ys.push_back(100.0 * load / (load + 30.0) + rng.Normal(0, 0.5));
  }
  ModelConfig config;
  config.partition.max_intervals = 8;
  // Mild forgetting keeps the printed rows readable distributions instead
  // of near-point masses (3000 training transitions sharpen a literal
  // Eq. (1) posterior a lot).
  config.forgetting = 0.99;
  PairModel model = PairModel::Learn(xs, ys, config);

  // --- The grid structure: which ranges the model distinguishes. ---
  std::printf("grid: %s\n", model.Grid().Describe().c_str());
  std::printf("dim1 (throughput) intervals: %s\n",
              model.Grid().Dim1().ToString().c_str());
  std::printf("dim2 (utilization) intervals: %s\n\n",
              model.Grid().Dim2().ToString().c_str());

  // --- A transition row: where does the system go from a given state? ---
  const std::size_t state = *model.Grid().CellOf({xs[100], ys[100]});
  std::printf("most likely destinations from ");
  PrintCellRange(model, state);
  std::printf(":\n");
  const auto row = model.Matrix().RowDistribution(state);
  for (int shown = 0; shown < 3; ++shown) {
    std::size_t best = 0;
    double best_p = -1.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] > best_p && model.Matrix().RankOf(state, j) ==
                                 static_cast<std::size_t>(shown + 1)) {
        best = j;
        best_p = row[j];
      }
    }
    std::printf("  rank %d (p=%.1f%%): ", shown + 1, best_p * 100.0);
    PrintCellRange(model, best);
    std::printf("\n");
  }

  // --- An anomaly, explained in measurement ranges. ---
  model.Step(xs[200], ys[200]);
  const double crashed_util = model.Grid().Dim2().Lo() - 1.0;
  const StepOutcome odd = model.Step(xs[200], crashed_util);
  if (odd.has_score && odd.cell) {
    std::printf("\nanomalous observation (throughput %.0f, utilization"
                " %.1f):\n  landed in ",
                xs[200], crashed_util);
    PrintCellRange(model, *odd.cell);
    std::printf("\n  rank %zu of %zu cells -> fitness %.3f, transition"
                " probability %.4f\n  -> the problematic range to hand the"
                " on-call engineer\n",
                odd.rank, model.Matrix().CellCount(), odd.fitness,
                odd.probability);
  }

  // --- Persistence: ship the model to the monitoring agent. ---
  std::stringstream buffer;
  SavePairModel(model, buffer);
  const PairModel restored = LoadPairModel(buffer);
  std::printf("\nserialized %zu bytes; restored model has %zu cells and"
              " identical posterior: %s\n",
              buffer.str().size(), restored.Grid().CellCount(),
              restored.Matrix().Probability(state, state) ==
                      model.Matrix().Probability(state, state)
                  ? "yes"
                  : "no");
  return 0;
}
