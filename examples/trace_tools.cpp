// Trace tools: generating, persisting and filtering monitoring data.
//
//   1. Generate a group trace and write it to CSV (the on-disk format a
//      collector would produce).
//   2. Reload it and verify the round trip.
//   3. Apply the paper's measurement-selection criteria (Section 6):
//      sampling rate, no linear partners, high variance.
//
// Build & run:  ./build/examples/trace_tools [output.csv]
#include <cstdio>
#include <filesystem>

#include "io/csv.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"
#include "timeseries/summary.h"

using namespace pmcorr;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "pmcorr_demo.csv")
                     .string();

  // --- 1. Generate and persist. ---
  ScenarioConfig config;
  config.machine_count = 8;
  config.trace_days = 3;
  const PaperScenario scenario = MakeGroupScenario('B', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  WriteFrameCsv(frame, path);
  std::printf("wrote %zu measurements x %zu samples to %s (%.1f KiB)\n",
              frame.MeasurementCount(), frame.SampleCount(), path.c_str(),
              static_cast<double>(std::filesystem::file_size(path)) / 1024.0);

  // --- 2. Reload and verify. ---
  const MeasurementFrame loaded = ReadFrameCsv(path);
  bool identical = loaded.MeasurementCount() == frame.MeasurementCount() &&
                   loaded.SampleCount() == frame.SampleCount();
  for (std::size_t a = 0; identical && a < frame.MeasurementCount(); ++a) {
    const MeasurementId id(static_cast<std::int32_t>(a));
    for (std::size_t t = 0; t < frame.SampleCount(); t += 17) {
      if (loaded.Value(id, t) != frame.Value(id, t)) {
        identical = false;
        break;
      }
    }
  }
  std::printf("reload round-trip bit-exact: %s\n\n",
              identical ? "yes" : "NO");

  // --- 3. The paper's selection criteria. ---
  const auto summaries = Summarize(loaded);
  std::printf("measurement summaries (first 5):\n");
  for (std::size_t i = 0; i < 5 && i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::printf("  %-40s mean=%12.1f cv=%.3f\n",
                loaded.Info(s.id).name.c_str(), s.mean, s.cv);
  }

  const auto linear = FindLinearRelations(loaded, 0.95);
  std::printf("\nstrongly linear pairs (R^2 >= 0.95): %zu\n", linear.size());

  SelectionCriteria criteria;
  criteria.max_measurements = 10;
  const auto kept = SelectMeasurements(loaded, criteria);
  std::printf("selected per the paper's criteria (<= 10, non-linear,"
              " high-variance):\n");
  for (MeasurementId id : kept) {
    std::printf("  %s\n", loaded.Info(id).name.c_str());
  }

  std::remove(path.c_str());
  return 0;
}
