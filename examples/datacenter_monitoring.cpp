// Datacenter monitoring: the full operator workflow on a simulated
// company infrastructure — the scenario the paper's evaluation runs on.
//
//   1. Simulate Group A: ~50 measurements on 16 machines over 17 days,
//      with a ground-truth problem injected on the June 13 test day.
//   2. Train a SystemMonitor (one pair model per correlation-graph edge)
//      on the clean history.
//   3. Stream the test day, watching the three fitness levels:
//      system Q -> per-measurement Q^a -> per-pair Q^{a,b} (drill-down).
//   4. Localize: rank machines by average fitness, flag suspects.
//
// Build & run:  ./build/examples/datacenter_monitoring
#include <algorithm>
#include <cstdio>
#include <optional>

#include "engine/alarm.h"
#include "engine/localizer.h"
#include "engine/monitor.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

using namespace pmcorr;

int main() {
  // --- 1. Simulate the infrastructure. ---
  ScenarioConfig scenario_config;
  scenario_config.machine_count = 16;
  scenario_config.trace_days = 17;
  const PaperScenario scenario = MakeGroupScenario('A', scenario_config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  std::printf("simulated group %s: %zu measurements on %zu machines, %zu"
              " samples each\n",
              scenario.group.c_str(), frame.MeasurementCount(),
              frame.Machines().size(), frame.SampleCount());
  std::printf("ground truth: %s on machine %d, %s .. %s\n\n",
              FaultTypeName(scenario.spec.faults.front().type).c_str(),
              scenario.problem_machine.value,
              FormatTimePoint(scenario.problem_start).c_str(),
              FormatTimePoint(scenario.problem_end).c_str());

  // --- 2. Train on history (May 29 - June 12). ---
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train = frame.SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test =
      frame.SliceByTime(june13, june13 + 2 * kDay);

  MonitorConfig config;
  config.model.fitness_alarm_threshold = 0.4;
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(train, 2, 1);
  SystemMonitor monitor(train, graph, config);
  std::printf("trained %zu pair models from %zu history samples\n\n",
              graph.PairCount(), train.SampleCount());

  // --- 3. Stream the test day; record the system score and alarms. ---
  std::vector<std::optional<double>> system_q;
  std::size_t worst_sample = 0;
  double worst_q = 2.0;
  std::vector<std::size_t> worst_pairs;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    std::vector<double> values(test.MeasurementCount());
    for (std::size_t a = 0; a < values.size(); ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    const SystemSnapshot snap = monitor.Step(values, test.TimeAt(t));
    system_q.push_back(snap.system_score);
    if (snap.system_score && *snap.system_score < worst_q) {
      worst_q = *snap.system_score;
      worst_sample = t;
      worst_pairs = snap.alarmed_pairs;
    }
  }

  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(system_q), test.StartTime(),
      test.Period(), 0.93, 2);
  std::printf("system-level: %zu low-Q windows (Q < 0.93 for >= 2 samples)\n",
              windows.size());
  for (const auto& w : windows) {
    std::printf("  %s .. %s  min Q = %.3f%s\n",
                FormatTimePoint(w.start).c_str(),
                FormatTimePoint(w.end).c_str(), w.min_score,
                w.start < scenario.problem_end &&
                        scenario.problem_start < w.end
                    ? "   <-- overlaps ground truth"
                    : "");
  }

  // Drill down at the worst instant: which pairs alarmed?
  std::printf("\ndrill-down at %s (system Q = %.3f):\n",
              FormatTimePoint(test.TimeAt(worst_sample)).c_str(), worst_q);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, worst_pairs.size());
       ++i) {
    const PairId& pair = monitor.Graph().Pair(worst_pairs[i]);
    std::printf("  alarmed pair: %s  x  %s\n",
                monitor.Infos()[static_cast<std::size_t>(pair.a.value)]
                    .name.c_str(),
                monitor.Infos()[static_cast<std::size_t>(pair.b.value)]
                    .name.c_str());
  }

  // --- 4. Localize over the whole run. ---
  LocalizerConfig loc;
  loc.deviations = 2.0;
  const LocalizationReport report =
      Localize(monitor.Infos(), monitor.MeasurementAverages(), loc);
  std::printf("\nmachine ranking (worst 3 of %zu):\n", report.ranking.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, report.ranking.size());
       ++i) {
    const MachineScore& ms = report.ranking[i];
    std::printf("  #%zu machine %-3d avg Q = %.4f%s\n", i + 1,
                ms.machine.value, ms.score,
                ms.machine == scenario.localization_machine
                    ? "   <-- injected long-lived fault"
                    : "");
  }
  std::printf("suspects below threshold %.4f: %zu\n", report.threshold,
              report.suspects.size());
  return 0;
}
