// Quickstart: model one pair of correlated measurements and catch an
// anomaly in five minutes.
//
//   1. Get two correlated series (here: synthetic CPU vs request rate).
//   2. Learn a PairModel M = (G, V) from history.
//   3. Stream live samples through Step() and watch the fitness score.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/model.h"

using namespace pmcorr;

namespace {

// A toy system: requests/s follows a daily-ish wave; CPU% saturates in
// the offered load. (In production these come from your collector.)
double Load(int t, Rng& rng) {
  return 60.0 + 45.0 * std::sin(t * 0.03) + rng.Normal(0.0, 2.0);
}
double Cpu(double load, Rng& rng) {
  return 100.0 * load / (load + 35.0) + rng.Normal(0.0, 0.8);
}

}  // namespace

int main() {
  Rng rng(7);

  // --- 1. History: a week of samples (any two std::vector<double>). ---
  std::vector<double> hist_load, hist_cpu;
  for (int t = 0; t < 2000; ++t) {
    const double load = Load(t, rng);
    hist_load.push_back(load);
    hist_cpu.push_back(Cpu(load, rng));
  }

  // --- 2. Learn the correlation model. ---
  ModelConfig config;                     // paper defaults
  config.fitness_alarm_threshold = 0.5;   // alarm when Q^{a,b} < 0.5
  PairModel model = PairModel::Learn(hist_load, hist_cpu, config);
  std::printf("learned %s, %zu observed transitions\n",
              model.Grid().Describe().c_str(),
              static_cast<std::size_t>(model.Matrix().ObservedCount()));

  // --- 3. Stream live data; inject a problem at t=60..70. ---
  int alarms = 0, outliers = 0;
  for (int t = 0; t < 100; ++t) {
    const double load = Load(t, rng);
    // Problem: CPU pegs near 95% regardless of load (runaway process).
    const double cpu = (t >= 60 && t < 70) ? 95.0 + rng.Normal(0.0, 0.5)
                                           : Cpu(load, rng);
    const StepOutcome out = model.Step(load, cpu);
    if (out.outlier) ++outliers;
    if (!out.has_score) continue;
    if (out.alarm || t % 20 == 0) {
      std::printf("t=%3d  load=%6.1f  cpu=%5.1f  fitness=%.3f%s\n", t, load,
                  cpu, out.fitness, out.alarm ? "  << ALARM" : "");
    }
    if (out.alarm) ++alarms;
  }
  std::printf(
      "injected 10-sample problem: %d alarm(s) at entry, %d samples outside"
      " the\nlearned operating region (unscorable until the system returns"
      " to normal)\n",
      alarms, outliers);
  return 0;
}
