// Online monitoring agent: streaming operation with incidents, threshold
// calibration and checkpoint/restart — how pmcorr would run in
// production.
//
//   day 1  learn from history, stream a known-clean day, calibrate the
//          system-score alarm bound from it, checkpoint at midnight
//   day 2  "process restart": reload the checkpoint (no relearning) and
//          keep streaming; the injected fault opens an incident
//
// Build & run:  ./build/examples/online_agent
#include <cstdio>
#include <filesystem>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "engine/incident.h"
#include "io/monitor_io.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

using namespace pmcorr;

namespace {

// Streams one day through the monitor. When `incidents` is non-null, the
// system score drives the incident tracker; returns the day's engaged
// system scores either way.
std::vector<double> StreamDay(SystemMonitor& monitor,
                              const MeasurementFrame& day,
                              double alarm_threshold,
                              IncidentTracker* incidents) {
  std::vector<double> scores;
  std::vector<double> values(day.MeasurementCount());
  for (std::size_t t = 0; t < day.SampleCount(); ++t) {
    for (std::size_t a = 0; a < values.size(); ++a) {
      values[a] = day.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    const SystemSnapshot snap = monitor.Step(values, day.TimeAt(t));
    if (snap.system_score) scores.push_back(*snap.system_score);
    if (incidents == nullptr) continue;
    const bool alarming =
        snap.system_score && *snap.system_score < alarm_threshold;
    const Incident* opened = incidents->Observe(
        snap.time, alarming, snap.system_score.value_or(1.0));
    if (opened != nullptr) {
      std::printf("  PAGE: incident opened at %s (Q=%.3f, %zu pair alarms)\n",
                  FormatTimePoint(opened->start).c_str(),
                  snap.system_score.value_or(0.0), snap.alarmed_pairs.size());
    }
  }
  return scores;
}

}  // namespace

int main() {
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "pmcorr_agent.ckpt").string();

  // Simulated infrastructure with a fault on the second streamed day.
  ScenarioConfig scenario_config;
  scenario_config.machine_count = 12;
  scenario_config.trace_days = 18;
  const PaperScenario scenario = MakeGroupScenario('B', scenario_config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const TimePoint june12 = PaperTestStart() - kDay;

  // ---- Day 0: learn. ----
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), june12);
  MonitorConfig config;
  config.threads = 2;
  SystemMonitor monitor(train, MeasurementGraph::Neighborhood(train, 2, 3),
                        config);
  std::printf("trained %zu pair models from %zu history samples\n",
              monitor.Graph().PairCount(), train.SampleCount());

  // ---- Day 1 (June 12, clean): stream, then calibrate the system-score
  // alarm bound at the 1% quantile of the day's observed Q. ----
  std::printf("\nstreaming June 12 (clean, calibration day)...\n");
  const MeasurementFrame holdout = frame.SliceByTime(june12, june12 + kDay);
  const std::vector<double> clean_scores =
      StreamDay(monitor, holdout, 0.0, nullptr);
  const double system_threshold =
      Quantile(clean_scores, 0.01).value_or(0.8);
  std::printf("calibrated system alarm bound: Q < %.4f (1%% of the clean"
              " day scored lower)\n",
              system_threshold);

  IncidentConfig incident_config;
  incident_config.merge_gap = kHour;
  IncidentTracker incidents(incident_config);

  SaveSystemMonitor(monitor, checkpoint);
  std::printf("checkpointed %zu models to %s (%.1f KiB)\n",
              monitor.Graph().PairCount(), checkpoint.c_str(),
              static_cast<double>(std::filesystem::file_size(checkpoint)) /
                  1024.0);

  // ---- Process restart. ----
  auto restored = LoadSystemMonitor(checkpoint, 2);
  std::printf("restarted: restored monitor has %zu processed samples, avg"
              " Q so far %.4f\n",
              restored->StepCount(), restored->SystemAverage().Mean());

  // ---- Day 2 (June 13, contains the ground-truth fault). ----
  std::printf("\nstreaming June 13 (fault %s-%s)...\n",
              FormatTimePoint(scenario.problem_start).substr(11).c_str(),
              FormatTimePoint(scenario.problem_end).substr(11).c_str());
  const MeasurementFrame day2 =
      frame.SliceByTime(PaperTestStart(), PaperTestStart() + kDay);
  StreamDay(*restored, day2, system_threshold, &incidents);
  incidents.Flush(PaperTestStart() + kDay);

  std::printf("\nincident log:\n");
  for (const Incident& incident : incidents.Incidents()) {
    std::printf("  %s .. %s  alarms=%zu  min Q=%.3f%s\n",
                FormatTimePoint(incident.start).c_str(),
                FormatTimePoint(incident.end).c_str(), incident.alarm_count,
                incident.min_score,
                incident.start < scenario.problem_end &&
                        incident.end > scenario.problem_start
                    ? "   <-- overlaps the injected fault"
                    : "");
  }
  std::remove(checkpoint.c_str());
  return 0;
}
