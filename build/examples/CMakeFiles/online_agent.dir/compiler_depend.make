# Empty compiler generated dependencies file for online_agent.
# This may be replaced when dependencies are built.
