file(REMOVE_RECURSE
  "libpmcorr_timeseries.a"
)
