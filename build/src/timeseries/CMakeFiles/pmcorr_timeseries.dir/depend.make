# Empty dependencies file for pmcorr_timeseries.
# This may be replaced when dependencies are built.
