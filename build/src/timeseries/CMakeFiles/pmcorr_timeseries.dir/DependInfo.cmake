
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/frame.cpp" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/frame.cpp.o" "gcc" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/frame.cpp.o.d"
  "/root/repo/src/timeseries/resample.cpp" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/resample.cpp.o" "gcc" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/resample.cpp.o.d"
  "/root/repo/src/timeseries/series.cpp" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/series.cpp.o" "gcc" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/series.cpp.o.d"
  "/root/repo/src/timeseries/summary.cpp" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/summary.cpp.o" "gcc" "src/timeseries/CMakeFiles/pmcorr_timeseries.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
