file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_timeseries.dir/frame.cpp.o"
  "CMakeFiles/pmcorr_timeseries.dir/frame.cpp.o.d"
  "CMakeFiles/pmcorr_timeseries.dir/resample.cpp.o"
  "CMakeFiles/pmcorr_timeseries.dir/resample.cpp.o.d"
  "CMakeFiles/pmcorr_timeseries.dir/series.cpp.o"
  "CMakeFiles/pmcorr_timeseries.dir/series.cpp.o.d"
  "CMakeFiles/pmcorr_timeseries.dir/summary.cpp.o"
  "CMakeFiles/pmcorr_timeseries.dir/summary.cpp.o.d"
  "libpmcorr_timeseries.a"
  "libpmcorr_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
