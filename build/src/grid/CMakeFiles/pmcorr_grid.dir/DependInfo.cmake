
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/grid.cpp" "src/grid/CMakeFiles/pmcorr_grid.dir/grid.cpp.o" "gcc" "src/grid/CMakeFiles/pmcorr_grid.dir/grid.cpp.o.d"
  "/root/repo/src/grid/interval.cpp" "src/grid/CMakeFiles/pmcorr_grid.dir/interval.cpp.o" "gcc" "src/grid/CMakeFiles/pmcorr_grid.dir/interval.cpp.o.d"
  "/root/repo/src/grid/kernels.cpp" "src/grid/CMakeFiles/pmcorr_grid.dir/kernels.cpp.o" "gcc" "src/grid/CMakeFiles/pmcorr_grid.dir/kernels.cpp.o.d"
  "/root/repo/src/grid/partitioner.cpp" "src/grid/CMakeFiles/pmcorr_grid.dir/partitioner.cpp.o" "gcc" "src/grid/CMakeFiles/pmcorr_grid.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
