file(REMOVE_RECURSE
  "libpmcorr_grid.a"
)
