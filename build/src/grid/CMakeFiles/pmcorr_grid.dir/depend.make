# Empty dependencies file for pmcorr_grid.
# This may be replaced when dependencies are built.
