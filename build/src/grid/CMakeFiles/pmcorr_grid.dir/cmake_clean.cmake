file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_grid.dir/grid.cpp.o"
  "CMakeFiles/pmcorr_grid.dir/grid.cpp.o.d"
  "CMakeFiles/pmcorr_grid.dir/interval.cpp.o"
  "CMakeFiles/pmcorr_grid.dir/interval.cpp.o.d"
  "CMakeFiles/pmcorr_grid.dir/kernels.cpp.o"
  "CMakeFiles/pmcorr_grid.dir/kernels.cpp.o.d"
  "CMakeFiles/pmcorr_grid.dir/partitioner.cpp.o"
  "CMakeFiles/pmcorr_grid.dir/partitioner.cpp.o.d"
  "libpmcorr_grid.a"
  "libpmcorr_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
