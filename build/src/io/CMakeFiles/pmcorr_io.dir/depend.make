# Empty dependencies file for pmcorr_io.
# This may be replaced when dependencies are built.
