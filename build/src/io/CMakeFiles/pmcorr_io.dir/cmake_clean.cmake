file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_io.dir/csv.cpp.o"
  "CMakeFiles/pmcorr_io.dir/csv.cpp.o.d"
  "CMakeFiles/pmcorr_io.dir/jsonl.cpp.o"
  "CMakeFiles/pmcorr_io.dir/jsonl.cpp.o.d"
  "CMakeFiles/pmcorr_io.dir/model_io.cpp.o"
  "CMakeFiles/pmcorr_io.dir/model_io.cpp.o.d"
  "CMakeFiles/pmcorr_io.dir/monitor_io.cpp.o"
  "CMakeFiles/pmcorr_io.dir/monitor_io.cpp.o.d"
  "CMakeFiles/pmcorr_io.dir/report.cpp.o"
  "CMakeFiles/pmcorr_io.dir/report.cpp.o.d"
  "libpmcorr_io.a"
  "libpmcorr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
