file(REMOVE_RECURSE
  "libpmcorr_io.a"
)
