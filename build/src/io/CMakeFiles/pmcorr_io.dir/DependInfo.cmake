
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/pmcorr_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/pmcorr_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/jsonl.cpp" "src/io/CMakeFiles/pmcorr_io.dir/jsonl.cpp.o" "gcc" "src/io/CMakeFiles/pmcorr_io.dir/jsonl.cpp.o.d"
  "/root/repo/src/io/model_io.cpp" "src/io/CMakeFiles/pmcorr_io.dir/model_io.cpp.o" "gcc" "src/io/CMakeFiles/pmcorr_io.dir/model_io.cpp.o.d"
  "/root/repo/src/io/monitor_io.cpp" "src/io/CMakeFiles/pmcorr_io.dir/monitor_io.cpp.o" "gcc" "src/io/CMakeFiles/pmcorr_io.dir/monitor_io.cpp.o.d"
  "/root/repo/src/io/report.cpp" "src/io/CMakeFiles/pmcorr_io.dir/report.cpp.o" "gcc" "src/io/CMakeFiles/pmcorr_io.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pmcorr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmcorr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/pmcorr_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pmcorr_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
