file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_baselines.dir/ewma.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/ewma.cpp.o.d"
  "CMakeFiles/pmcorr_baselines.dir/gmm.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/gmm.cpp.o.d"
  "CMakeFiles/pmcorr_baselines.dir/linear_invariant.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/linear_invariant.cpp.o.d"
  "CMakeFiles/pmcorr_baselines.dir/static_density.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/static_density.cpp.o.d"
  "CMakeFiles/pmcorr_baselines.dir/subspace.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/subspace.cpp.o.d"
  "CMakeFiles/pmcorr_baselines.dir/zscore.cpp.o"
  "CMakeFiles/pmcorr_baselines.dir/zscore.cpp.o.d"
  "libpmcorr_baselines.a"
  "libpmcorr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
