
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ewma.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/ewma.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/ewma.cpp.o.d"
  "/root/repo/src/baselines/gmm.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/gmm.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/gmm.cpp.o.d"
  "/root/repo/src/baselines/linear_invariant.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/linear_invariant.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/linear_invariant.cpp.o.d"
  "/root/repo/src/baselines/static_density.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/static_density.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/static_density.cpp.o.d"
  "/root/repo/src/baselines/subspace.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/subspace.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/subspace.cpp.o.d"
  "/root/repo/src/baselines/zscore.cpp" "src/baselines/CMakeFiles/pmcorr_baselines.dir/zscore.cpp.o" "gcc" "src/baselines/CMakeFiles/pmcorr_baselines.dir/zscore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pmcorr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/pmcorr_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
