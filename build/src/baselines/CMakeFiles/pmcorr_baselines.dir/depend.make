# Empty dependencies file for pmcorr_baselines.
# This may be replaced when dependencies are built.
