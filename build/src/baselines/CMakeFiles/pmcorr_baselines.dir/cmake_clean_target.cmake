file(REMOVE_RECURSE
  "libpmcorr_baselines.a"
)
