file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_core.dir/calibration.cpp.o"
  "CMakeFiles/pmcorr_core.dir/calibration.cpp.o.d"
  "CMakeFiles/pmcorr_core.dir/fitness.cpp.o"
  "CMakeFiles/pmcorr_core.dir/fitness.cpp.o.d"
  "CMakeFiles/pmcorr_core.dir/model.cpp.o"
  "CMakeFiles/pmcorr_core.dir/model.cpp.o.d"
  "CMakeFiles/pmcorr_core.dir/time_conditioned.cpp.o"
  "CMakeFiles/pmcorr_core.dir/time_conditioned.cpp.o.d"
  "CMakeFiles/pmcorr_core.dir/transition_matrix.cpp.o"
  "CMakeFiles/pmcorr_core.dir/transition_matrix.cpp.o.d"
  "libpmcorr_core.a"
  "libpmcorr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
