file(REMOVE_RECURSE
  "libpmcorr_core.a"
)
