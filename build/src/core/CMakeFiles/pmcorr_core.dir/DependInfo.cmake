
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/pmcorr_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/pmcorr_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/fitness.cpp" "src/core/CMakeFiles/pmcorr_core.dir/fitness.cpp.o" "gcc" "src/core/CMakeFiles/pmcorr_core.dir/fitness.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/pmcorr_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/pmcorr_core.dir/model.cpp.o.d"
  "/root/repo/src/core/time_conditioned.cpp" "src/core/CMakeFiles/pmcorr_core.dir/time_conditioned.cpp.o" "gcc" "src/core/CMakeFiles/pmcorr_core.dir/time_conditioned.cpp.o.d"
  "/root/repo/src/core/transition_matrix.cpp" "src/core/CMakeFiles/pmcorr_core.dir/transition_matrix.cpp.o" "gcc" "src/core/CMakeFiles/pmcorr_core.dir/transition_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pmcorr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
