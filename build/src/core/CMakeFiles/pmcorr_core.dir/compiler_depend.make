# Empty compiler generated dependencies file for pmcorr_core.
# This may be replaced when dependencies are built.
