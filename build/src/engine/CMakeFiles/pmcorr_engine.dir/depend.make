# Empty dependencies file for pmcorr_engine.
# This may be replaced when dependencies are built.
