file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_engine.dir/alarm.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/alarm.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/assembler.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/assembler.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/drilldown.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/drilldown.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/evaluation.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/evaluation.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/incident.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/incident.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/localizer.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/localizer.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/measurement_graph.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/measurement_graph.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/monitor.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/monitor.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/retrainer.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/retrainer.cpp.o.d"
  "CMakeFiles/pmcorr_engine.dir/thread_pool.cpp.o"
  "CMakeFiles/pmcorr_engine.dir/thread_pool.cpp.o.d"
  "libpmcorr_engine.a"
  "libpmcorr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
