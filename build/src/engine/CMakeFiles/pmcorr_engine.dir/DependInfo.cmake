
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/alarm.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/alarm.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/alarm.cpp.o.d"
  "/root/repo/src/engine/assembler.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/assembler.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/assembler.cpp.o.d"
  "/root/repo/src/engine/drilldown.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/drilldown.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/drilldown.cpp.o.d"
  "/root/repo/src/engine/evaluation.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/evaluation.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/evaluation.cpp.o.d"
  "/root/repo/src/engine/incident.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/incident.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/incident.cpp.o.d"
  "/root/repo/src/engine/localizer.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/localizer.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/localizer.cpp.o.d"
  "/root/repo/src/engine/measurement_graph.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/measurement_graph.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/measurement_graph.cpp.o.d"
  "/root/repo/src/engine/monitor.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/monitor.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/monitor.cpp.o.d"
  "/root/repo/src/engine/retrainer.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/retrainer.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/retrainer.cpp.o.d"
  "/root/repo/src/engine/thread_pool.cpp" "src/engine/CMakeFiles/pmcorr_engine.dir/thread_pool.cpp.o" "gcc" "src/engine/CMakeFiles/pmcorr_engine.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmcorr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/pmcorr_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pmcorr_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
