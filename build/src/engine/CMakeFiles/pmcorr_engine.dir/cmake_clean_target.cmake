file(REMOVE_RECURSE
  "libpmcorr_engine.a"
)
