file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_common.dir/logging.cpp.o"
  "CMakeFiles/pmcorr_common.dir/logging.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/rng.cpp.o"
  "CMakeFiles/pmcorr_common.dir/rng.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/sparkline.cpp.o"
  "CMakeFiles/pmcorr_common.dir/sparkline.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/stats.cpp.o"
  "CMakeFiles/pmcorr_common.dir/stats.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/string_util.cpp.o"
  "CMakeFiles/pmcorr_common.dir/string_util.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/table.cpp.o"
  "CMakeFiles/pmcorr_common.dir/table.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/time.cpp.o"
  "CMakeFiles/pmcorr_common.dir/time.cpp.o.d"
  "CMakeFiles/pmcorr_common.dir/types.cpp.o"
  "CMakeFiles/pmcorr_common.dir/types.cpp.o.d"
  "libpmcorr_common.a"
  "libpmcorr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
