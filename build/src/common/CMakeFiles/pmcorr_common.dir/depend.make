# Empty dependencies file for pmcorr_common.
# This may be replaced when dependencies are built.
