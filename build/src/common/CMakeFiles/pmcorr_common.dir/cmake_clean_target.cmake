file(REMOVE_RECURSE
  "libpmcorr_common.a"
)
