file(REMOVE_RECURSE
  "CMakeFiles/pmcorr_telemetry.dir/faults.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/faults.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/generator.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/generator.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/queueing.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/queueing.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/response.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/response.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/scenarios.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/scenarios.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/topology.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/topology.cpp.o.d"
  "CMakeFiles/pmcorr_telemetry.dir/workload.cpp.o"
  "CMakeFiles/pmcorr_telemetry.dir/workload.cpp.o.d"
  "libpmcorr_telemetry.a"
  "libpmcorr_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
