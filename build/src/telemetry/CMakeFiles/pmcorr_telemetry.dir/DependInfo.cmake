
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/faults.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/faults.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/faults.cpp.o.d"
  "/root/repo/src/telemetry/generator.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/generator.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/generator.cpp.o.d"
  "/root/repo/src/telemetry/queueing.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/queueing.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/queueing.cpp.o.d"
  "/root/repo/src/telemetry/response.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/response.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/response.cpp.o.d"
  "/root/repo/src/telemetry/scenarios.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/scenarios.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/scenarios.cpp.o.d"
  "/root/repo/src/telemetry/topology.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/topology.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/topology.cpp.o.d"
  "/root/repo/src/telemetry/workload.cpp" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/workload.cpp.o" "gcc" "src/telemetry/CMakeFiles/pmcorr_telemetry.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/pmcorr_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
