file(REMOVE_RECURSE
  "libpmcorr_telemetry.a"
)
