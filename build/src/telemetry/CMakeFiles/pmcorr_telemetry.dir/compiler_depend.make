# Empty compiler generated dependencies file for pmcorr_telemetry.
# This may be replaced when dependencies are built.
