# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_roundtrip "bash" "-c" "    set -e;     dir=\$(mktemp -d); trap 'rm -rf \"\$dir\"' EXIT;     /root/repo/build/tools/pmcorr generate --group B --machines 8 --days 8         --out \"\$dir/trace.csv\";     pair_x=\$(grep -m1 'IfOutOctetsRate_PORT@' \"\$dir/trace.csv\" | cut -d, -f4);     pair_y=\$(grep -m1 'IfInOctetsRate_PORT@' \"\$dir/trace.csv\" | cut -d, -f4);     /root/repo/build/tools/pmcorr train --trace \"\$dir/trace.csv\"         --x \"\$pair_x\" --y \"\$pair_y\" --train-days 6 --calibrate-fpr 0.02         --out \"\$dir/model.pmc\";     /root/repo/build/tools/pmcorr run --model \"\$dir/model.pmc\"         --trace \"\$dir/trace.csv\" --x \"\$pair_x\" --y \"\$pair_y\"         --from-day 6 --threshold 0.5;     /root/repo/build/tools/pmcorr inspect --model \"\$dir/model.pmc\" |         grep -q 'observed transitions'")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_monitor "bash" "-c" "    set -e;     dir=\$(mktemp -d); trap 'rm -rf \"\$dir\"' EXIT;     /root/repo/build/tools/pmcorr generate --group A --machines 6 --days 10         --out \"\$dir/trace.csv\";     /root/repo/build/tools/pmcorr monitor --trace \"\$dir/trace.csv\"         --train-days 8 --graph neighborhood --partners 1 |         grep -q 'machine ranking'")
set_tests_properties(cli_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_errors "bash" "-c" "    ! /root/repo/build/tools/pmcorr 2>/dev/null;     ! /root/repo/build/tools/pmcorr bogus --x 1 2>/dev/null;     ! /root/repo/build/tools/pmcorr inspect --model /nonexistent.pmc 2>/dev/null")
set_tests_properties(cli_usage_errors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
