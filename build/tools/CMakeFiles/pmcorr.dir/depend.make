# Empty dependencies file for pmcorr.
# This may be replaced when dependencies are built.
