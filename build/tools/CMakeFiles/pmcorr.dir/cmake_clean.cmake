file(REMOVE_RECURSE
  "CMakeFiles/pmcorr.dir/pmcorr_cli.cpp.o"
  "CMakeFiles/pmcorr.dir/pmcorr_cli.cpp.o.d"
  "pmcorr"
  "pmcorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
