file(REMOVE_RECURSE
  "CMakeFiles/bench_training_size.dir/bench_training_size.cpp.o"
  "CMakeFiles/bench_training_size.dir/bench_training_size.cpp.o.d"
  "bench_training_size"
  "bench_training_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
