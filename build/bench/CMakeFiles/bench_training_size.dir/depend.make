# Empty dependencies file for bench_training_size.
# This may be replaced when dependencies are built.
