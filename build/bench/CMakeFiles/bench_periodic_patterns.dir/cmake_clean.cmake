file(REMOVE_RECURSE
  "CMakeFiles/bench_periodic_patterns.dir/bench_periodic_patterns.cpp.o"
  "CMakeFiles/bench_periodic_patterns.dir/bench_periodic_patterns.cpp.o.d"
  "bench_periodic_patterns"
  "bench_periodic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_periodic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
