# Empty compiler generated dependencies file for bench_periodic_patterns.
# This may be replaced when dependencies are built.
