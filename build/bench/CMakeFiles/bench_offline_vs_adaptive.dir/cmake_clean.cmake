file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_vs_adaptive.dir/bench_offline_vs_adaptive.cpp.o"
  "CMakeFiles/bench_offline_vs_adaptive.dir/bench_offline_vs_adaptive.cpp.o.d"
  "bench_offline_vs_adaptive"
  "bench_offline_vs_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_vs_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
