# Empty dependencies file for bench_offline_vs_adaptive.
# This may be replaced when dependencies are built.
