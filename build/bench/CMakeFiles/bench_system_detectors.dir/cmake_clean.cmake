file(REMOVE_RECURSE
  "CMakeFiles/bench_system_detectors.dir/bench_system_detectors.cpp.o"
  "CMakeFiles/bench_system_detectors.dir/bench_system_detectors.cpp.o.d"
  "bench_system_detectors"
  "bench_system_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_system_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
