# Empty compiler generated dependencies file for bench_system_detectors.
# This may be replaced when dependencies are built.
