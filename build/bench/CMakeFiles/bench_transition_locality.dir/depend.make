# Empty dependencies file for bench_transition_locality.
# This may be replaced when dependencies are built.
