file(REMOVE_RECURSE
  "CMakeFiles/bench_transition_locality.dir/bench_transition_locality.cpp.o"
  "CMakeFiles/bench_transition_locality.dir/bench_transition_locality.cpp.o.d"
  "bench_transition_locality"
  "bench_transition_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transition_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
