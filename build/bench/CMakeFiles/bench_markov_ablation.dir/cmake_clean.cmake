file(REMOVE_RECURSE
  "CMakeFiles/bench_markov_ablation.dir/bench_markov_ablation.cpp.o"
  "CMakeFiles/bench_markov_ablation.dir/bench_markov_ablation.cpp.o.d"
  "bench_markov_ablation"
  "bench_markov_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
