file(REMOVE_RECURSE
  "CMakeFiles/bench_updating_time.dir/bench_updating_time.cpp.o"
  "CMakeFiles/bench_updating_time.dir/bench_updating_time.cpp.o.d"
  "bench_updating_time"
  "bench_updating_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updating_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
