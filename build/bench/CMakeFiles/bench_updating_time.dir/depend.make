# Empty dependencies file for bench_updating_time.
# This may be replaced when dependencies are built.
