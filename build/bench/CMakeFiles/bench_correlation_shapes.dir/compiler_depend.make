# Empty compiler generated dependencies file for bench_correlation_shapes.
# This may be replaced when dependencies are built.
