file(REMOVE_RECURSE
  "CMakeFiles/bench_correlation_shapes.dir/bench_correlation_shapes.cpp.o"
  "CMakeFiles/bench_correlation_shapes.dir/bench_correlation_shapes.cpp.o.d"
  "bench_correlation_shapes"
  "bench_correlation_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
