file(REMOVE_RECURSE
  "CMakeFiles/bench_prior_posterior.dir/bench_prior_posterior.cpp.o"
  "CMakeFiles/bench_prior_posterior.dir/bench_prior_posterior.cpp.o.d"
  "bench_prior_posterior"
  "bench_prior_posterior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prior_posterior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
