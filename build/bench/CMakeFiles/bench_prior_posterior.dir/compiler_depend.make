# Empty compiler generated dependencies file for bench_prior_posterior.
# This may be replaced when dependencies are built.
