# Empty dependencies file for bench_grid_adaptation.
# This may be replaced when dependencies are built.
