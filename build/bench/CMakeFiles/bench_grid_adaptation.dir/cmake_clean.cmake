file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_adaptation.dir/bench_grid_adaptation.cpp.o"
  "CMakeFiles/bench_grid_adaptation.dir/bench_grid_adaptation.cpp.o.d"
  "bench_grid_adaptation"
  "bench_grid_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
