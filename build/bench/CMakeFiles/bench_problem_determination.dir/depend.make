# Empty dependencies file for bench_problem_determination.
# This may be replaced when dependencies are built.
