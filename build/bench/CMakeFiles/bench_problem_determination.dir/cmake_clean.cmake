file(REMOVE_RECURSE
  "CMakeFiles/bench_problem_determination.dir/bench_problem_determination.cpp.o"
  "CMakeFiles/bench_problem_determination.dir/bench_problem_determination.cpp.o.d"
  "bench_problem_determination"
  "bench_problem_determination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_problem_determination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
