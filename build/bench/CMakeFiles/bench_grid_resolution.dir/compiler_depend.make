# Empty compiler generated dependencies file for bench_grid_resolution.
# This may be replaced when dependencies are built.
