file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_resolution.dir/bench_grid_resolution.cpp.o"
  "CMakeFiles/bench_grid_resolution.dir/bench_grid_resolution.cpp.o.d"
  "bench_grid_resolution"
  "bench_grid_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
