file(REMOVE_RECURSE
  "CMakeFiles/bench_fitness_example.dir/bench_fitness_example.cpp.o"
  "CMakeFiles/bench_fitness_example.dir/bench_fitness_example.cpp.o.d"
  "bench_fitness_example"
  "bench_fitness_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fitness_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
