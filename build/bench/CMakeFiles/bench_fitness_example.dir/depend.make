# Empty dependencies file for bench_fitness_example.
# This may be replaced when dependencies are built.
