file(REMOVE_RECURSE
  "../lib/libpmcorr_bench_util.a"
  "../lib/libpmcorr_bench_util.pdb"
  "CMakeFiles/pmcorr_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/pmcorr_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcorr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
