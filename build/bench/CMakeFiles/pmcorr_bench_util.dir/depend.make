# Empty dependencies file for pmcorr_bench_util.
# This may be replaced when dependencies are built.
