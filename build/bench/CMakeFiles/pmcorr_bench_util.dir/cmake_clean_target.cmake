file(REMOVE_RECURSE
  "../lib/libpmcorr_bench_util.a"
)
