file(REMOVE_RECURSE
  "CMakeFiles/test_alarm.dir/test_alarm.cpp.o"
  "CMakeFiles/test_alarm.dir/test_alarm.cpp.o.d"
  "test_alarm"
  "test_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
