# Empty compiler generated dependencies file for test_time_conditioned.
# This may be replaced when dependencies are built.
