file(REMOVE_RECURSE
  "CMakeFiles/test_time_conditioned.dir/test_time_conditioned.cpp.o"
  "CMakeFiles/test_time_conditioned.dir/test_time_conditioned.cpp.o.d"
  "test_time_conditioned"
  "test_time_conditioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_conditioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
