# Empty dependencies file for test_jsonl.
# This may be replaced when dependencies are built.
