# Empty dependencies file for test_retrainer.
# This may be replaced when dependencies are built.
