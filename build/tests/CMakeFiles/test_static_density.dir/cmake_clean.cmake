file(REMOVE_RECURSE
  "CMakeFiles/test_static_density.dir/test_static_density.cpp.o"
  "CMakeFiles/test_static_density.dir/test_static_density.cpp.o.d"
  "test_static_density"
  "test_static_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
