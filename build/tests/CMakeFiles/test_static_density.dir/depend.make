# Empty dependencies file for test_static_density.
# This may be replaced when dependencies are built.
