# Empty dependencies file for test_subspace.
# This may be replaced when dependencies are built.
