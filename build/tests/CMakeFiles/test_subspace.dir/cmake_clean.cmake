file(REMOVE_RECURSE
  "CMakeFiles/test_subspace.dir/test_subspace.cpp.o"
  "CMakeFiles/test_subspace.dir/test_subspace.cpp.o.d"
  "test_subspace"
  "test_subspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
