file(REMOVE_RECURSE
  "CMakeFiles/test_properties3.dir/test_properties3.cpp.o"
  "CMakeFiles/test_properties3.dir/test_properties3.cpp.o.d"
  "test_properties3"
  "test_properties3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
