# Empty compiler generated dependencies file for test_properties3.
# This may be replaced when dependencies are built.
