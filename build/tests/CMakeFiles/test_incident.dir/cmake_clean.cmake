file(REMOVE_RECURSE
  "CMakeFiles/test_incident.dir/test_incident.cpp.o"
  "CMakeFiles/test_incident.dir/test_incident.cpp.o.d"
  "test_incident"
  "test_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
