file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_io.dir/test_monitor_io.cpp.o"
  "CMakeFiles/test_monitor_io.dir/test_monitor_io.cpp.o.d"
  "test_monitor_io"
  "test_monitor_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
