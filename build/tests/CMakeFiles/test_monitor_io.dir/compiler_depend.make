# Empty compiler generated dependencies file for test_monitor_io.
# This may be replaced when dependencies are built.
