file(REMOVE_RECURSE
  "CMakeFiles/test_sparkline.dir/test_sparkline.cpp.o"
  "CMakeFiles/test_sparkline.dir/test_sparkline.cpp.o.d"
  "test_sparkline"
  "test_sparkline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparkline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
