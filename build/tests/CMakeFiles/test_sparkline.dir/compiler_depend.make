# Empty compiler generated dependencies file for test_sparkline.
# This may be replaced when dependencies are built.
