# Empty dependencies file for test_localizer.
# This may be replaced when dependencies are built.
