# Empty dependencies file for test_transition_matrix.
# This may be replaced when dependencies are built.
