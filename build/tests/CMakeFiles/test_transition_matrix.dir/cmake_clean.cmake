file(REMOVE_RECURSE
  "CMakeFiles/test_transition_matrix.dir/test_transition_matrix.cpp.o"
  "CMakeFiles/test_transition_matrix.dir/test_transition_matrix.cpp.o.d"
  "test_transition_matrix"
  "test_transition_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transition_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
