# Empty compiler generated dependencies file for test_drilldown.
# This may be replaced when dependencies are built.
