
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_drilldown.cpp" "tests/CMakeFiles/test_drilldown.dir/test_drilldown.cpp.o" "gcc" "tests/CMakeFiles/test_drilldown.dir/test_drilldown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pmcorr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmcorr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pmcorr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/pmcorr_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pmcorr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pmcorr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/pmcorr_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmcorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
