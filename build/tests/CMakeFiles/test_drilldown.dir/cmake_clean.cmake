file(REMOVE_RECURSE
  "CMakeFiles/test_drilldown.dir/test_drilldown.cpp.o"
  "CMakeFiles/test_drilldown.dir/test_drilldown.cpp.o.d"
  "test_drilldown"
  "test_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
