// pmcorr command-line tool: generate traces, train pair models, run
// detection, and inspect model files — the library's workflow without
// writing C++.
//
//   pmcorr generate --group A --machines 12 --days 16 --out trace.csv
//   pmcorr train    --trace trace.csv --x NAME --y NAME --out model.pmc
//   pmcorr run      --model model.pmc --trace trace.csv --threshold 0.5
//   pmcorr inspect  --model model.pmc
//
// Measurement names follow the trace CSV header (MetricKind@hostname).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "io/delta_binary.h"
#include "pmcorr.h"
#include "serve/daemon.h"

namespace {

using namespace pmcorr;

// --------------------------------------------------------------------
// Minimal --flag value parsing.
// --------------------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw std::runtime_error("expected --flag value, got '" + key + "'");
      }
      ordered_.emplace_back(key.substr(2), argv[i + 1]);
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }

  std::string GetOr(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    long long out = 0;
    if (!ParseInt64(it->second, &out)) {
      throw std::runtime_error("flag --" + key + " wants an integer");
    }
    return out;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    double out = 0.0;
    if (!ParseDouble(it->second, &out)) {
      throw std::runtime_error("flag --" + key + " wants a number");
    }
    return out;
  }

  /// Every value of a repeatable flag, in command-line order (Get and
  /// friends keep their last-one-wins behavior for single-value flags).
  std::vector<std::string> GetAll(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : ordered_) {
      if (k == key) out.push_back(v);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> ordered_;
};

MeasurementId ResolveMeasurement(const MeasurementFrame& frame,
                                 const std::string& name) {
  if (const auto id = frame.FindByName(name)) return *id;
  // Accept a bare index too.
  long long index = 0;
  if (ParseInt64(name, &index) && index >= 0 &&
      static_cast<std::size_t>(index) < frame.MeasurementCount()) {
    return MeasurementId(static_cast<std::int32_t>(index));
  }
  std::string message = "unknown measurement '" + name + "'; available:";
  for (const auto& info : frame.Infos()) message += "\n  " + info.name;
  throw std::runtime_error(message);
}

// --------------------------------------------------------------------
// Commands.
// --------------------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  ScenarioConfig config;
  config.machine_count =
      static_cast<std::size_t>(flags.GetInt("machines", 12));
  config.trace_days = static_cast<int>(flags.GetInt("days", 16));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2008));
  const std::string group = flags.GetOr("group", "A");
  if (group.size() != 1 || group[0] < 'A' || group[0] > 'C') {
    throw std::runtime_error("--group must be A, B or C");
  }
  const PaperScenario scenario = MakeGroupScenario(group[0], config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const std::string out = flags.Get("out");
  WriteFrameCsv(frame, out);
  std::printf("wrote %zu measurements x %zu samples to %s\n",
              frame.MeasurementCount(), frame.SampleCount(), out.c_str());
  std::printf("focus pair: %s  x  %s\n", scenario.focus_x.c_str(),
              scenario.focus_y.c_str());
  std::printf("ground-truth fault: machine %d, %s .. %s\n",
              scenario.problem_machine.value,
              FormatTimePoint(scenario.problem_start).c_str(),
              FormatTimePoint(scenario.problem_end).c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  const MeasurementFrame frame = ReadFrameCsv(flags.Get("trace"));
  const MeasurementId x = ResolveMeasurement(frame, flags.Get("x"));
  const MeasurementId y = ResolveMeasurement(frame, flags.Get("y"));

  const auto train_days = flags.GetInt("train-days", 0);
  const MeasurementFrame train =
      train_days > 0
          ? frame.SliceByTime(frame.StartTime(),
                              frame.StartTime() + train_days * kDay)
          : frame;

  ModelConfig config;
  config.partition.units =
      static_cast<std::size_t>(flags.GetInt("units", 50));
  config.partition.max_intervals =
      static_cast<std::size_t>(flags.GetInt("max-intervals", 14));

  // --threads N > 1 replays the history's row buckets across a pool
  // (identical model either way; see docs/model.md "Learn pipeline").
  const auto threads = flags.GetInt("threads", 1);
  std::unique_ptr<ThreadPool> pool;
  ParallelRunner runner;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    runner = [&pool](std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
      pool->ParallelFor(count, fn);
    };
  }
  const auto t0 = std::chrono::steady_clock::now();
  PairModel model = PairModel::Learn(train.Series(x).Values(),
                                     train.Series(y).Values(), config, runner);
  const double learn_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Optional threshold calibration on the last training day.
  const double fpr = flags.GetDouble("calibrate-fpr", 0.0);
  if (fpr > 0.0) {
    const TimePoint last_day = train.TimeAt(train.SampleCount() - 1) - kDay;
    const MeasurementFrame holdout =
        train.SliceByTime(last_day, train.TimeAt(train.SampleCount()));
    const auto calibration =
        CalibrateOnHoldout(model, holdout.Series(x).Values(),
                           holdout.Series(y).Values(), fpr);
    model.SetAlarmThresholds(calibration.fitness_threshold,
                             calibration.delta);
    std::printf("calibrated: fitness threshold %.4f, delta %.6f (target"
                " fpr %.2f%%)\n",
                calibration.fitness_threshold, calibration.delta,
                fpr * 100.0);
  }

  const std::string out = flags.Get("out");
  SavePairModel(model, out);
  std::printf("trained on %zu samples: %s -> %s\n", train.SampleCount(),
              model.Grid().Describe().c_str(), out.c_str());
  if (learn_s > 0.0) {
    std::printf("model building: %.1f ms (%.1f pairs/s, %.3g samples/s,"
                " %lld thread%s)\n",
                learn_s * 1e3, 1.0 / learn_s,
                static_cast<double>(train.SampleCount()) / learn_s,
                threads > 1 ? threads : 1LL, threads > 1 ? "s" : "");
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  PairModel model = LoadPairModel(flags.Get("model"));
  const MeasurementFrame frame = ReadFrameCsv(flags.Get("trace"));
  const MeasurementId x = ResolveMeasurement(frame, flags.Get("x"));
  const MeasurementId y = ResolveMeasurement(frame, flags.Get("y"));

  const auto from_day = flags.GetInt("from-day", 0);
  const MeasurementFrame test =
      from_day > 0 ? frame.SliceByTime(frame.StartTime() + from_day * kDay,
                                       frame.TimeAt(frame.SampleCount()))
                   : frame;
  const double threshold = flags.GetDouble("threshold", 0.5);

  std::vector<std::optional<double>> scores(test.SampleCount());
  ScoreAverager average;
  std::size_t outliers = 0;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
    if (out.has_score) {
      scores[t] = out.fitness;
      average.Add(out.fitness);
    }
    if (out.outlier) ++outliers;
  }

  SparklineOptions spark;
  spark.width = 72;
  spark.lo = 0.0;
  spark.hi = 1.0;
  std::printf("fitness over %zu samples (avg %.4f, %zu outliers):\n%s\n",
              test.SampleCount(), average.Mean(), outliers,
              Sparkline(std::span<const std::optional<double>>(scores), spark)
                  .c_str());

  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(scores), test.StartTime(),
      test.Period(), threshold);
  std::printf("%zu low-fitness windows (Q < %.2f):\n", windows.size(),
              threshold);
  for (const auto& w : windows) {
    std::printf("  %s .. %s  min Q = %.3f\n",
                FormatTimePoint(w.start).c_str(),
                FormatTimePoint(w.end).c_str(), w.min_score);
  }
  return 0;
}

// Shared tail of `monitor`: sparkline + low-Q windows over a snapshot
// stream, whether the snapshots came from a live Run or were
// reconstructed from a delta stream.
void PrintSystemScoreSummary(const std::vector<SystemSnapshot>& snapshots,
                             double threshold) {
  const std::vector<std::optional<double>> q = SystemScoreSeries(snapshots);
  SparklineOptions spark;
  spark.width = 72;
  std::printf("system fitness Q over %zu samples:\n%s\n", snapshots.size(),
              Sparkline(std::span<const std::optional<double>>(q), spark)
                  .c_str());
  if (snapshots.empty()) return;
  const TimePoint start = snapshots.front().time;
  const TimePoint period = snapshots.size() > 1
                               ? snapshots[1].time - snapshots[0].time
                               : kDay / 96;
  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(q), start, period, threshold, 2);
  std::printf("%zu low-Q windows (Q < %.2f for >= 2 samples)\n",
              windows.size(), threshold);
  for (const auto& w : windows) {
    std::printf("  %s .. %s  min Q = %.3f\n",
                FormatTimePoint(w.start).c_str(),
                FormatTimePoint(w.end).c_str(), w.min_score);
  }
}

int CmdMonitor(const Flags& flags) {
  // Offline delta-stream review: reconstruct full snapshots from a
  // stream written with --delta-out and report on them. Needs no trace
  // (the stream is self-contained).
  const std::string from_deltas = flags.GetOr("from-deltas", "");
  if (!from_deltas.empty()) {
    std::ifstream in(from_deltas, std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open --from-deltas file " +
                               from_deltas);
    }
    // Auto-detect the stream format: JSONL deltas start with '{', the
    // binary framing starts with a length prefix that never does.
    const std::vector<SystemDelta> deltas = in.peek() == '{'
                                                ? ReadDeltaStreamJsonl(in)
                                                : ReadDeltaStreamBinary(in);
    const auto snapshots = ReconstructSnapshots(deltas);
    std::size_t baselines = 0;
    for (const SystemDelta& d : deltas) baselines += d.baseline ? 1 : 0;
    std::printf("reconstructed %zu snapshots from %zu deltas"
                " (%zu baselines)\n",
                snapshots.size(), deltas.size(), baselines);
    PrintSystemScoreSummary(snapshots, flags.GetDouble("threshold", 0.9));
    return 0;
  }

  const MeasurementFrame frame = ReadFrameCsv(flags.Get("trace"));
  const auto train_days = flags.GetInt("train-days", 0);
  if (train_days <= 0) {
    throw std::runtime_error("--train-days must be positive");
  }
  const TimePoint split = frame.StartTime() + train_days * kDay;
  const MeasurementFrame train = frame.SliceByTime(frame.StartTime(), split);
  const MeasurementFrame test =
      frame.SliceByTime(split, frame.TimeAt(frame.SampleCount()));
  if (train.SampleCount() < 2 || test.SampleCount() == 0) {
    throw std::runtime_error("not enough samples on either side of the"
                             " train/test split");
  }

  // Graph policy: machine cliques + remote partners, or data-driven.
  const std::string policy = flags.GetOr("graph", "neighborhood");
  MeasurementGraph graph;
  if (policy == "neighborhood") {
    graph = MeasurementGraph::Neighborhood(
        train, static_cast<std::size_t>(flags.GetInt("partners", 2)), 7);
  } else if (policy == "association") {
    graph = MeasurementGraph::ByAssociation(
        train, flags.GetDouble("min-spearman", 0.6),
        static_cast<std::size_t>(flags.GetInt("partners", 3)));
  } else if (policy == "full") {
    graph = MeasurementGraph::FullMesh(train.MeasurementCount());
  } else {
    throw std::runtime_error("--graph must be neighborhood|association|full");
  }

  MonitorConfig config;
  SystemMonitor monitor(train, graph, config);
  std::printf("trained %zu pair models on %zu samples (%zu measurements)\n",
              graph.PairCount(), train.SampleCount(),
              train.MeasurementCount());

  // Degraded-stream mode: feed a row-stream CSV through the ingest
  // guard sample by sample, honoring each row's own timestamp (late,
  // duplicated, out-of-order, and frozen feeds are detected instead of
  // silently re-gridded), then report feed health.
  const std::string stream_path = flags.GetOr("stream", "");
  if (!stream_path.empty()) {
    const SampleStream stream = ReadSampleStreamCsv(stream_path);
    if (stream.infos.size() != monitor.MeasurementCount()) {
      throw std::runtime_error(
          "--stream measurement count does not match the training trace");
    }
    monitor.ResetSequences();
    std::vector<std::optional<double>> q;
    q.reserve(stream.rows.size());
    std::size_t alarms = 0;
    std::size_t events = 0;
    for (const SampleRow& row : stream.rows) {
      const SystemSnapshot snap = monitor.Step(row.values, row.time);
      q.push_back(snap.system_score);
      alarms += snap.alarmed_pairs.size();
      if (snap.stream_event != StreamEvent::kNone) ++events;
    }

    SparklineOptions spark;
    spark.width = 72;
    std::printf("system fitness Q over %zu streamed samples:\n%s\n",
                stream.rows.size(),
                Sparkline(std::span<const std::optional<double>>(q), spark)
                    .c_str());
    const IngestGuard& health = monitor.Health();
    std::printf(
        "stream health: %zu degraded arrivals (%zu gaps, %zu duplicates,"
        " %zu out-of-order), %zu values suppressed\n",
        events, health.GapCount(), health.DuplicateCount(),
        health.OutOfOrderCount(), health.SuppressedTotal());
    for (std::size_t m = 0; m < monitor.MeasurementCount(); ++m) {
      if (health.Health(m) != MeasurementHealth::kHealthy) {
        std::printf("  measurement %-3zu %-12s %s\n", m,
                    monitor.Infos()[m].name.c_str(),
                    MeasurementHealthName(health.Health(m)));
      }
    }
    std::printf("%zu pair alarms, %zu pairs quarantined, %zu retired\n",
                alarms, monitor.Quarantine().QuarantinedCount(),
                monitor.Quarantine().RetiredCount());
    return 0;
  }

  // --delta-out: run in incremental mode, persist the delta stream, and
  // reconstruct full snapshots for the report below (the differential
  // suite proves reconstruction bitwise-identical to a plain Run).
  const std::string delta_out = flags.GetOr("delta-out", "");
  std::vector<SystemSnapshot> snapshots;
  if (!delta_out.empty()) {
    const std::string delta_format = flags.GetOr("delta-format", "jsonl");
    if (delta_format != "jsonl" && delta_format != "binary") {
      throw std::runtime_error("--delta-format must be jsonl or binary");
    }
    const std::vector<SystemDelta> deltas = monitor.RunDelta(test);
    std::ofstream out(delta_out, std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot open --delta-out file " + delta_out);
    }
    if (delta_format == "binary") {
      WriteDeltaStreamBinary(deltas, out);
    } else {
      WriteDeltaStreamJsonl(deltas, out);
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("writing --delta-out file " + delta_out +
                               " failed");
    }
    std::size_t changed = 0;
    for (const SystemDelta& d : deltas) {
      changed += d.pair_changes.size() + d.pair_disengaged.size();
    }
    std::printf("wrote %zu deltas to %s (%.2f pair changes/tick of %zu"
                " pairs)\n",
                deltas.size(), delta_out.c_str(),
                deltas.empty()
                    ? 0.0
                    : static_cast<double>(changed) /
                          static_cast<double>(deltas.size()),
                graph.PairCount());
    snapshots = ReconstructSnapshots(deltas);
  } else {
    snapshots = monitor.Run(test);
  }
  const std::vector<std::optional<double>> q = SystemScoreSeries(snapshots);

  SparklineOptions spark;
  spark.width = 72;
  std::printf("system fitness Q over %zu test samples (avg %.4f):\n%s\n",
              test.SampleCount(), monitor.SystemAverage().Mean(),
              Sparkline(std::span<const std::optional<double>>(q), spark)
                  .c_str());

  const double threshold = flags.GetDouble("threshold", 0.9);
  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(q), test.StartTime(),
      test.Period(), threshold, 2);
  std::printf("%zu low-Q windows (Q < %.2f for >= 2 samples)\n",
              windows.size(), threshold);
  for (const auto& w : windows) {
    const DrilldownReport report = BuildDrilldown(
        monitor, snapshots, test, w.first_sample, w.last_sample);
    std::printf("\n%s .. %s (min Q %.3f)\n%s",
                FormatTimePoint(w.start).c_str(),
                FormatTimePoint(w.end).c_str(), w.min_score,
                report.ToString().c_str());
  }

  LocalizerConfig loc;
  loc.deviations = 2.0;
  const auto report =
      Localize(monitor.Infos(), monitor.MeasurementAverages(), loc);
  std::printf("\nmachine ranking (worst 3):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, report.ranking.size());
       ++i) {
    std::printf("  #%zu machine %-3d avg Q = %.4f\n", i + 1,
                report.ranking[i].machine.value, report.ranking[i].score);
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  ServeDaemonOptions options;
  options.socket_path = flags.Get("socket");
  for (const std::string& spec : flags.GetAll("tenant")) {
    // NAME=TRACE[:DAYS] — the trace trains the tenant on cold start; a
    // checkpoint under --checkpoint-dir wins on warm start.
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      throw std::runtime_error("--tenant wants NAME=TRACE[:DAYS], got '" +
                               spec + "'");
    }
    ServeTenantSpec tenant;
    tenant.name = spec.substr(0, eq);
    tenant.trace_path = spec.substr(eq + 1);
    const std::size_t colon = tenant.trace_path.rfind(':');
    if (colon != std::string::npos) {
      long long days = 0;
      if (ParseInt64(tenant.trace_path.substr(colon + 1), &days) &&
          days > 0) {
        tenant.train_days = static_cast<std::size_t>(days);
        tenant.trace_path.resize(colon);
      }
    }
    options.tenants.push_back(std::move(tenant));
  }
  options.checkpoint_dir = flags.GetOr("checkpoint-dir", "");
  options.checkpoint_every =
      static_cast<std::size_t>(flags.GetInt("checkpoint-every", 0));
  options.queue_budget =
      static_cast<std::size_t>(flags.GetInt("queue-budget", 256));
  options.ingest_delay_ms = flags.GetInt("ingest-delay-ms", 0);
  options.threads = static_cast<std::size_t>(flags.GetInt("threads", 1));
  options.retrain_interval =
      static_cast<std::size_t>(flags.GetInt("retrain", 0));
  options.partners = static_cast<std::size_t>(flags.GetInt("partners", 2));
  return RunServeDaemon(options);
}

int CmdEvaluate(const Flags& flags) {
  ScorecardConfig config;
  const std::string mode = flags.GetOr("mode", "full");
  if (mode == "smoke") {
    config.suite = SmokeSuiteConfig();
  } else if (mode != "full") {
    throw std::runtime_error("--mode must be full or smoke");
  }
  config.mode = mode;
  config.suite.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", static_cast<long long>(config.suite.seed)));
  config.suite.machine_count = static_cast<std::size_t>(flags.GetInt(
      "machines", static_cast<long long>(config.suite.machine_count)));
  config.suite.trace_days =
      static_cast<int>(flags.GetInt("days", config.suite.trace_days));
  config.threads = static_cast<std::size_t>(flags.GetInt("threads", 0));
  const std::string out = flags.GetOr("out", "BENCH_quality.json");
  const std::string only = flags.GetOr("scenario", "");

  const ScenarioSuite suite = MakeScenarioSuite(config.suite);
  std::vector<ScenarioResult> results;
  for (const QualityScenario& scenario : suite.scenarios) {
    if (!only.empty() && scenario.name != only) continue;
    std::printf("%s (%s): %s\n", scenario.name.c_str(),
                scenario.group.c_str(), scenario.description.c_str());
    results.push_back(RunScenarioScorecard(scenario, config));
    std::printf("  %-17s %5s %5s %5s %10s %5s\n", "detector", "prec", "rec",
                "f1", "latency", "rank");
    for (const DetectorScore& ds : results.back().detectors) {
      const double latency =
          ds.outcome.MeanLatencyOr(kLatencyUnavailableSeconds);
      std::printf("  %-17s %5.2f %5.2f %5.2f %9.0fs %5.0f\n",
                  ds.detector.c_str(), ds.outcome.Precision(),
                  ds.outcome.Recall(), ds.outcome.F1(), latency,
                  ds.localization_rank);
    }
  }
  if (results.empty()) {
    throw std::runtime_error("no scenario named '" + only + "'");
  }
  WriteScorecardJson(out, config, results);
  std::printf("wrote %zu scenario(s) x %zu detectors to %s\n", results.size(),
              ScorecardDetectors().size(), out.c_str());
  return 0;
}

int CmdInspect(const Flags& flags) {
  const PairModel model = LoadPairModel(flags.Get("model"));
  std::printf("grid: %s\n", model.Grid().Describe().c_str());
  std::printf("kernel: %s\n", model.Kernel().Describe().c_str());
  std::printf("observed transitions: %zu\n",
              static_cast<std::size_t>(model.Matrix().ObservedCount()));
  std::printf("alarm bounds: fitness < %.4f, probability < %.6f\n",
              model.Config().fitness_alarm_threshold, model.Config().delta);
  std::printf("dim1 intervals: %s\n", model.Grid().Dim1().ToString().c_str());
  std::printf("dim2 intervals: %s\n", model.Grid().Dim2().ToString().c_str());

  // The busiest source cells and their modal destinations.
  std::printf("busiest transitions:\n");
  struct Hot {
    std::size_t from, to;
    std::uint64_t count;
  };
  std::vector<Hot> hot;
  for (std::size_t i = 0; i < model.Matrix().CellCount(); ++i) {
    for (std::size_t j = 0; j < model.Matrix().CellCount(); ++j) {
      const std::uint64_t c = model.Matrix().CountOf(i, j);
      if (c > 0) hot.push_back({i, j, c});
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.count > b.count; });
  for (std::size_t k = 0; k < std::min<std::size_t>(5, hot.size()); ++k) {
    const Interval d1 = model.Grid().CellIntervalDim1(hot[k].from);
    const Interval d2 = model.Grid().CellIntervalDim2(hot[k].from);
    std::printf("  cell %zu [%.3g,%.3g)x[%.3g,%.3g) -> cell %zu: %llu times"
                " (p=%.1f%%)\n",
                hot[k].from, d1.lo, d1.hi, d2.lo, d2.hi, hot[k].to,
                static_cast<unsigned long long>(hot[k].count),
                model.Matrix().Probability(hot[k].from, hot[k].to) * 100.0);
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: pmcorr <command> [--flag value ...]\n"
      "commands:\n"
      "  generate --out FILE [--group A|B|C] [--machines N] [--days N]"
      " [--seed N]\n"
      "  train    --trace FILE --x NAME --y NAME --out FILE"
      " [--train-days N]\n"
      "           [--units N] [--max-intervals N] [--calibrate-fpr F]"
      " [--threads N]\n"
      "  run      --model FILE --trace FILE --x NAME --y NAME\n"
      "           [--from-day N] [--threshold Q]\n"
      "  monitor  --trace FILE --train-days N [--graph"
      " neighborhood|association|full]\n"
      "           [--partners N] [--min-spearman R] [--threshold Q]\n"
      "           [--stream FILE]   (feed a degraded row-stream CSV and\n"
      "                              report per-measurement feed health)\n"
      "           [--delta-out FILE] (emit the incremental JSONL delta\n"
      "                              stream instead of full snapshots)\n"
      "           [--delta-format jsonl|binary] (delta stream encoding)\n"
      "  monitor  --from-deltas FILE [--threshold Q]\n"
      "           (reconstruct and report a saved delta stream; the\n"
      "            format is auto-detected)\n"
      "  serve    --socket PATH --tenant NAME=TRACE[:DAYS] ...\n"
      "           [--checkpoint-dir DIR] [--checkpoint-every ROWS]\n"
      "           [--queue-budget ROWS] [--ingest-delay-ms N]\n"
      "           [--retrain SAMPLES] [--threads N] [--partners N]\n"
      "           (multi-tenant monitoring daemon; SIGTERM drains,\n"
      "            checkpoints every tenant, then exits)\n"
      "  evaluate [--mode full|smoke] [--out FILE] [--scenario NAME]\n"
      "           [--machines N] [--days N] [--seed N] [--threads N]\n"
      "           (detection-quality scorecard: pmcorr + 5 baselines over\n"
      "            the scenario suite -> BENCH_quality.json)\n"
      "  inspect  --model FILE\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Flags flags(argc, argv, 2);
    if (command == "generate") return CmdGenerate(flags);
    if (command == "train") return CmdTrain(flags);
    if (command == "run") return CmdRun(flags);
    if (command == "monitor") return CmdMonitor(flags);
    if (command == "serve") return CmdServe(flags);
    if (command == "evaluate") return CmdEvaluate(flags);
    if (command == "inspect") return CmdInspect(flags);
    Usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmcorr %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
