#!/usr/bin/env bash
# Repo-specific lint gate — the checks clang-tidy cannot express.
# Run from anywhere; exits non-zero with an explanation per violation.
#
#  1. No naked assert() anywhere (src/tests/bench/tools/examples/fuzz):
#     contracts go through common/check.h (PMCORR_ASSERT /
#     PMCORR_DASSERT / PMCORR_AUDIT) so failures carry formatted
#     messages and a testable handler. static_assert stays.
#  2. Every AVX-512 translation unit compiles with -ffp-contract=off or
#     is explicitly allowlisted here with the reason it needs no flag.
#     Rationale: the x86-64 baseline has no FMA so contraction never
#     materializes, but avx512f function clones DO embed FMA and a
#     silently fused e*f + w*p changes the bitwise results the golden
#     traces and differential tests pin (docs/kernels.md).
#  3. BENCH_*.json stay flat {"bench": <name>, <metric>: <number|string>,
#     ...} objects — the shape BenchJson (bench/bench_util.h) writes and
#     the perf-tracking scripts diff across PRs. No nesting, no nulls.
#  4. Fuzz corpora stay present and minimized.
#  5. clang-format drift (only when clang-format is installed — the CI
#     lint job always has it; GCC-only dev boxes skip with a notice).
#  6. Project static checks (tools/static_checks/run_checks.sh): no raw
#     std lock/thread types outside the annotated wrappers, no
#     hash-order FP folds, no allocation in the per-sample hot path —
#     each gated by its own fixture self-test.
set -u
cd "$(dirname "$0")/.."
failures=0

fail() {
  echo "lint: $1" >&2
  failures=$((failures + 1))
}

# --- 1: naked assert() ------------------------------------------------
# `assert[[:space:]]*\(` also catches `assert (value)`; the scan covers
# every C++ tree, not just src/. Allowlist entries are `path:line`
# prefixes with a trailing reason; the list is currently empty — add to
# it only for third-party-shaped code we cannot route through check.h.
assert_allowlist=''
naked_asserts=$(grep -rnE '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
                  src tests bench tools examples fuzz \
                  --include='*.cpp' --include='*.h' 2>/dev/null \
                | grep -v 'static_assert' \
                | grep -vE ':[0-9]+: *(//|\*)' || true)
if [ -n "$assert_allowlist" ]; then
  naked_asserts=$(echo "$naked_asserts" \
                  | grep -vF "$assert_allowlist" || true)
fi
if [ -n "$naked_asserts" ]; then
  fail "naked assert() — use PMCORR_DASSERT (common/check.h):
$naked_asserts"
fi

# --- 2: -ffp-contract=off on AVX-512 TUs ------------------------------
# TUs whose avx512 clones provably cannot contract (no FMA in the
# target set) are allowlisted; everything else must carry the flag in
# its directory's CMakeLists.
ffp_allowlist='src/common/stats.cpp'  # avx512f-only targets: no FMA emitted
# A stale allowlist entry is itself a failure: if the TU was deleted or
# no longer defines AVX-512 clones, the entry silently shields whatever
# file inherits its name later. Keep the list exactly as large as the
# exception set.
for entry in $ffp_allowlist; do
  if [ ! -e "$entry" ]; then
    fail "ffp_allowlist entry $entry does not exist — drop it from tools/lint.sh"
  elif ! grep -q 'target("avx512' "$entry"; then
    fail "ffp_allowlist entry $entry no longer defines AVX-512 kernels — drop it from tools/lint.sh"
  fi
done
while IFS= read -r tu; do
  case " $ffp_allowlist " in *" $tu "*) continue ;; esac
  dir=$(dirname "$tu")
  base=$(basename "$tu")
  cml="$dir/CMakeLists.txt"
  if ! grep -q "ffp-contract=off" "$cml" 2>/dev/null ||
     ! grep -q "$base" "$cml" 2>/dev/null; then
    fail "$tu defines AVX-512 kernels but $cml does not set\
 -ffp-contract=off for it (or allowlist it in tools/lint.sh with a reason)"
  fi
done < <(grep -rl 'target("avx512' src --include='*.cpp' || true)

# --- 3: bench JSON schema ---------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    if ! python3 - "$f" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as fh:
    doc = json.load(fh)
ok = (isinstance(doc, dict)
      and isinstance(doc.get("bench"), str)
      and doc["bench"]
      and all(isinstance(v, (int, float, str)) and not isinstance(v, bool)
              for v in doc.values()))
sys.exit(0 if ok else 1)
EOF
    then
      fail "$f violates the bench schema (flat object: \"bench\" string + number/string metrics)"
    fi
  done
else
  echo "lint: python3 not found, skipping bench JSON schema check" >&2
fi

# --- 4: fuzz corpora stay present and minimized -----------------------
# Every fuzz harness keeps a seed corpus under fuzz/corpus/<name>/ with
# at least two seeds (one happy path, one boundary shape), and every
# seed stays small: corpora are for edge-shape coverage, not bulk data —
# a fat seed slows each libFuzzer iteration and bloats the repo.
max_seed_bytes=32768
for harness in fuzz/fuzz_*.cpp; do
  [ -e "$harness" ] || continue
  name=$(basename "$harness" .cpp)
  dir="fuzz/corpus/${name#fuzz_}"
  if [ ! -d "$dir" ]; then
    fail "$harness has no seed corpus at $dir"
    continue
  fi
  count=$(find "$dir" -type f | wc -l)
  if [ "$count" -lt 2 ]; then
    fail "$dir has $count seed(s); keep at least 2 (happy path + boundary)"
  fi
  while IFS= read -r seed; do
    size=$(wc -c < "$seed")
    if [ "$size" -gt "$max_seed_bytes" ]; then
      fail "$seed is ${size} bytes (> ${max_seed_bytes}); minimize the seed"
    fi
  done < <(find "$dir" -type f)
done

# --- 5: formatting drift ----------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  unformatted=$(find src tests bench tools examples fuzz \
                  -name '*.cpp' -o -name '*.h' 2>/dev/null \
                | xargs clang-format --dry-run -Werror 2>&1 | head -40)
  if [ -n "$unformatted" ]; then
    fail "clang-format drift (clang-format -i to fix):
$unformatted"
  fi
else
  echo "lint: clang-format not found, skipping format check" >&2
fi

# --- 6: project static checks (concurrency + determinism AST rules) ---
if command -v python3 >/dev/null 2>&1; then
  if ! bash tools/static_checks/run_checks.sh; then
    fail "tools/static_checks found violations (details above)"
  fi
else
  echo "lint: python3 not found, skipping static_checks" >&2
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures check(s) failed" >&2
  exit 1
fi
echo "lint: all checks passed"
