// pmcorr_replay: traffic client for the `pmcorr serve` daemon. Connects
// to the unix socket, binds one tenant, replays a row-stream CSV at full
// speed (the daemon's shedding policy absorbs the overload), and prints
// a parseable status line the smoke and chaos scripts assert on:
//
//   pmcorr_replay --socket /tmp/s --tenant A --trace stream.csv
//       [--rows N] [--drain] [--summary]
//
// With --drain the client asks the daemon for a full drain — stop
// intake, finish every queue, checkpoint every tenant — and prints one
// line per drained tenant.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/string_util.h"
#include "io/csv.h"
#include "io/framing.h"
#include "serve/protocol.h"

namespace {

using namespace pmcorr;

const char* StateName(std::uint8_t state) {
  switch (state) {
    case 0:
      return "active";
    case 1:
      return "draining";
    case 2:
      return "drained";
    case 3:
      return "poisoned";
    default:
      return "unknown";
  }
}

const char* CheckpointName(std::uint8_t state) {
  switch (state) {
    case 0:
      return "none";
    case 1:
      return "ok";
    default:
      return "failed";
  }
}

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
      throw std::runtime_error("cannot connect to " + socket_path + ": " +
                               std::strerror(errno));
    }
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void Send(std::uint8_t type, std::string_view payload) {
    wire_.clear();
    AppendFrame(type, payload, wire_);
    std::size_t off = 0;
    while (off < wire_.size()) {
      const ssize_t n = send(fd_, wire_.data() + off, wire_.size() - off, 0);
      if (n <= 0) throw std::runtime_error("send failed (daemon gone?)");
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocks until a frame of `want` arrives. Backpressure edges are
  /// counted and skipped; a kFrameError is fatal.
  Frame WaitFor(std::uint8_t want) {
    for (;;) {
      while (const std::optional<Frame> frame = reader_.Next()) {
        if (frame->type == kFrameBackpressure) {
          const BackpressureEvent event =
              DecodeBackpressureEvent(frame->payload);
          if (event.engaged) {
            ++backpressure_raises_;
          } else {
            ++backpressure_clears_;
          }
          continue;
        }
        if (frame->type == kFrameError) {
          throw std::runtime_error("daemon error: " +
                                   DecodeErrorReply(frame->payload));
        }
        if (frame->type == want) return *frame;
        throw std::runtime_error("unexpected frame type");
      }
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("connection closed by daemon");
      reader_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  /// Consumes whatever already arrived without blocking (keeps the
  /// daemon's reply buffer drained while we stream rows).
  void DrainIncoming() {
    for (;;) {
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      reader_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    while (const std::optional<Frame> frame = reader_.Next()) {
      if (frame->type == kFrameBackpressure) {
        const BackpressureEvent event =
            DecodeBackpressureEvent(frame->payload);
        if (event.engaged) {
          ++backpressure_raises_;
        } else {
          ++backpressure_clears_;
        }
        continue;
      }
      if (frame->type == kFrameError) {
        throw std::runtime_error("daemon error: " +
                                 DecodeErrorReply(frame->payload));
      }
      throw std::runtime_error("unexpected frame while streaming");
    }
  }

  std::uint64_t BackpressureRaises() const { return backpressure_raises_; }
  std::uint64_t BackpressureClears() const { return backpressure_clears_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::string wire_;
  std::uint64_t backpressure_raises_ = 0;
  std::uint64_t backpressure_clears_ = 0;
};

void PrintStatus(const std::string& tenant, const StatusReply& status) {
  std::printf(
      "tenant %s: state=%s submitted=%llu accepted=%llu shed=%llu"
      " rejected=%llu processed=%llu queue=%llu/%llu checkpoints=%llu"
      " failures=%llu backpressure=%llu/%llu alarms=%llu suppressed=%llu"
      " quarantined=%llu q=%s sample=%llu\n",
      tenant.c_str(), StateName(status.state),
      static_cast<unsigned long long>(status.submitted),
      static_cast<unsigned long long>(status.accepted),
      static_cast<unsigned long long>(status.shed_ticks),
      static_cast<unsigned long long>(status.rejected),
      static_cast<unsigned long long>(status.processed),
      static_cast<unsigned long long>(status.queue_rows),
      static_cast<unsigned long long>(status.queue_budget),
      static_cast<unsigned long long>(status.checkpoints),
      static_cast<unsigned long long>(status.checkpoint_failures),
      static_cast<unsigned long long>(status.backpressure_raises),
      static_cast<unsigned long long>(status.backpressure_clears),
      static_cast<unsigned long long>(status.alarms_total),
      static_cast<unsigned long long>(status.suppressed_total),
      static_cast<unsigned long long>(status.quarantined_pairs),
      status.last_q ? std::to_string(*status.last_q).c_str() : "none",
      static_cast<unsigned long long>(status.last_sample));
  if (!status.last_error.empty()) {
    std::printf("tenant %s: last_error=%s\n", tenant.c_str(),
                status.last_error.c_str());
  }
}

int Run(int argc, char** argv) {
  std::string socket_path, tenant, trace;
  std::size_t max_rows = 0;
  bool drain = false, summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error("flag " + arg + " wants a value");
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tenant") {
      tenant = value();
    } else if (arg == "--trace") {
      trace = value();
    } else if (arg == "--rows") {
      long long rows = 0;
      if (!ParseInt64(value(), &rows) || rows < 0) {
        throw std::runtime_error("--rows wants a non-negative integer");
      }
      max_rows = static_cast<std::size_t>(rows);
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--summary") {
      summary = true;
    } else {
      throw std::runtime_error("unknown flag " + arg);
    }
  }
  if (socket_path.empty() || tenant.empty()) {
    std::fprintf(stderr,
                 "usage: pmcorr_replay --socket PATH --tenant NAME\n"
                 "    [--trace FILE] [--rows N] [--drain] [--summary]\n");
    return 2;
  }

  Client client(socket_path);
  HelloRequest hello;
  hello.tenant = tenant;
  std::string payload;
  EncodeHelloRequest(hello, payload);
  client.Send(kFrameHello, payload);
  const HelloReply bound =
      DecodeHelloReply(client.WaitFor(kFrameHelloOk).payload);

  std::size_t sent = 0;
  if (!trace.empty()) {
    const SampleStream stream = ReadSampleStreamCsv(trace);
    if (stream.infos.size() != bound.measurement_count) {
      throw std::runtime_error("trace width does not match tenant");
    }
    for (const SampleRow& row : stream.rows) {
      if (max_rows != 0 && sent >= max_rows) break;
      payload.clear();
      EncodeSampleRow(row, payload);
      client.Send(kFrameSample, payload);
      ++sent;
      client.DrainIncoming();
    }
  }

  QueryRequest query;
  query.kind = QueryKind::kStatus;
  payload.clear();
  EncodeQueryRequest(query, payload);
  client.Send(kFrameQuery, payload);
  const StatusReply status =
      DecodeStatusReply(client.WaitFor(kFrameStatus).payload);
  std::printf("replayed %zu rows, backpressure seen %llu/%llu\n", sent,
              static_cast<unsigned long long>(client.BackpressureRaises()),
              static_cast<unsigned long long>(client.BackpressureClears()));
  PrintStatus(tenant, status);

  if (summary) {
    query.kind = QueryKind::kSummary;
    payload.clear();
    EncodeQueryRequest(query, payload);
    client.Send(kFrameQuery, payload);
    const SummaryReply reply =
        DecodeSummaryReply(client.WaitFor(kFrameSummary).payload);
    if (reply.has_snapshot) {
      std::printf("summary: sample=%llu alarmed=%zu q=%s\n",
                  static_cast<unsigned long long>(reply.sample),
                  reply.alarmed_pairs.size(),
                  reply.system_score ? std::to_string(*reply.system_score)
                                           .c_str()
                                     : "none");
    } else {
      std::printf("summary: no snapshot yet\n");
    }
  }

  if (drain) {
    client.Send(kFrameDrain, "");
    const DrainedReply drained =
        DecodeDrainedReply(client.WaitFor(kFrameDrained).payload);
    for (const DrainedTenant& t : drained.tenants) {
      std::printf("drained tenant %s: state=%s processed=%llu"
                  " checkpoint=%s\n",
                  t.name.c_str(), StateName(t.state),
                  static_cast<unsigned long long>(t.processed),
                  CheckpointName(t.checkpoint));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmcorr_replay: %s\n", e.what());
    return 1;
  }
}
