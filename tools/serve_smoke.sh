#!/usr/bin/env bash
# End-to-end smoke of the `pmcorr serve` daemon under forced overload:
#   1. cold start, two tenants;
#   2. replay at full speed against a tiny queue -> shedding + the
#      submitted == accepted + shed + rejected invariant;
#   3. client-requested drain -> every tenant checkpoints, exit 0;
#   4. warm restart from the checkpoints;
#   5. kill -9 mid-serve -> restart still restores a good generation.
#
# usage: serve_smoke.sh <pmcorr-binary> <pmcorr_replay-binary>
set -euo pipefail

PMCORR=$1
REPLAY=$2

dir=$(mktemp -d)
serve_pid=""
cleanup() {
  if [[ -n "$serve_pid" ]] && kill -0 "$serve_pid" 2>/dev/null; then
    kill -9 "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
  fi
  rm -rf "$dir"
}
trap cleanup EXIT

await_line() { # file pattern [timeout-seconds]
  local deadline=$(( $(date +%s) + ${3:-30} ))
  until grep -q "$2" "$1" 2>/dev/null; do
    if (( $(date +%s) >= deadline )); then
      echo "serve_smoke: timed out waiting for '$2' in $1" >&2
      cat "$1" >&2 || true
      return 1
    fi
    sleep 0.2
  done
}

await_exit() { # pid [timeout-seconds]
  local deadline=$(( $(date +%s) + ${2:-60} ))
  while kill -0 "$1" 2>/dev/null; do
    if (( $(date +%s) >= deadline )); then
      echo "serve_smoke: daemon $1 did not exit" >&2
      return 1
    fi
    sleep 0.2
  done
}

field() { # line key -> value of key=value
  sed -n "s/.*[[:space:]]$2=\\([^[:space:]]*\\).*/\\1/p" <<<"$1"
}

"$PMCORR" generate --group A --machines 6 --days 3 --out "$dir/trace.csv" \
    > /dev/null

# --- 1+2: cold start under forced overload --------------------------
"$PMCORR" serve --socket "$dir/s.sock" \
    --tenant A="$dir/trace.csv":1 --tenant B="$dir/trace.csv":1 \
    --checkpoint-dir "$dir/ckpt" --checkpoint-every 40 \
    --queue-budget 8 --ingest-delay-ms 2 --partners 1 \
    > "$dir/serve1.log" 2>&1 &
serve_pid=$!
await_line "$dir/serve1.log" "serve: listening"

status=$("$REPLAY" --socket "$dir/s.sock" --tenant A \
    --trace "$dir/trace.csv" --rows 300 | grep '^tenant A:')
echo "$status"
submitted=$(field "$status" submitted)
accepted=$(field "$status" accepted)
shed=$(field "$status" shed)
rejected=$(field "$status" rejected)
[[ "$submitted" == 300 ]]
(( shed > 0 )) || { echo "expected shedding under overload" >&2; exit 1; }
(( submitted == accepted + shed + rejected )) || {
  echo "accounting broken: $submitted != $accepted+$shed+$rejected" >&2
  exit 1
}

# The healthy tenant B must be untouched by A's overload.
status_b=$("$REPLAY" --socket "$dir/s.sock" --tenant B | grep '^tenant B:')
[[ "$(field "$status_b" submitted)" == 0 ]]

# --- 3: client-requested drain --------------------------------------
drain_out=$("$REPLAY" --socket "$dir/s.sock" --tenant A --drain)
echo "$drain_out" | grep -q 'drained tenant A: state=drained'
echo "$drain_out" | grep -q 'drained tenant B: state=drained'
echo "$drain_out" | grep -q 'checkpoint=ok'
await_exit "$serve_pid"
wait "$serve_pid" && rc=0 || rc=$?
[[ "$rc" == 0 ]] || { echo "daemon exit code $rc after drain" >&2; exit 1; }
grep -q 'serve: drained' "$dir/serve1.log"
# After a drain every accepted row was processed.
processed=$(grep 'tenant A: drained' "$dir/serve1.log" |
    sed -n 's/.*processed=\([0-9]*\).*/\1/p')
[[ "$processed" == "$accepted" ]] || {
  echo "drain left rows behind: processed=$processed accepted=$accepted" >&2
  exit 1
}
[[ -f "$dir/ckpt/A.ckpt" && -f "$dir/ckpt/B.ckpt" ]]

# --- 4: warm restart + SIGTERM drain --------------------------------
"$PMCORR" serve --socket "$dir/s.sock" \
    --tenant A="$dir/trace.csv":1 --tenant B="$dir/trace.csv":1 \
    --checkpoint-dir "$dir/ckpt" > "$dir/serve2.log" 2>&1 &
serve_pid=$!
await_line "$dir/serve2.log" "serve: listening"
grep -q 'tenant A: restored from' "$dir/serve2.log"
grep -q 'tenant B: restored from' "$dir/serve2.log"
kill -TERM "$serve_pid"
await_exit "$serve_pid"
wait "$serve_pid" && rc=0 || rc=$?
[[ "$rc" == 0 ]]
grep -q 'serve: drained' "$dir/serve2.log"

# --- 5: kill -9 mid-serve, restart recovers -------------------------
"$PMCORR" serve --socket "$dir/s.sock" \
    --tenant A="$dir/trace.csv":1 \
    --checkpoint-dir "$dir/ckpt" --checkpoint-every 10 --partners 1 \
    > "$dir/serve3.log" 2>&1 &
serve_pid=$!
await_line "$dir/serve3.log" "serve: listening"
"$REPLAY" --socket "$dir/s.sock" --tenant A \
    --trace "$dir/trace.csv" --rows 60 > /dev/null
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
"$PMCORR" serve --socket "$dir/s.sock" \
    --tenant A="$dir/trace.csv":1 \
    --checkpoint-dir "$dir/ckpt" > "$dir/serve4.log" 2>&1 &
serve_pid=$!
await_line "$dir/serve4.log" "serve: listening"
grep -q 'tenant A: restored from' "$dir/serve4.log"
kill -TERM "$serve_pid"
await_exit "$serve_pid"
wait "$serve_pid" && rc=0 || rc=$?
[[ "$rc" == 0 ]]
serve_pid=""

echo "serve_smoke: OK"
