#!/usr/bin/env python3
"""No raw std threading primitives outside their sanctioned owners.

Three rules, each with a reasoned allowlist (a stale entry — one that no
longer matches anything — fails the check, so the lists cannot rot):

 1. std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock /
    std::condition_variable (and friends) appear ONLY in the annotated
    wrapper header src/common/mutex.h. Everything else must use
    pmcorr::Mutex / MutexLock / CondVar so clang's -Wthread-safety
    analysis can see every lock in the engine (docs/analysis.md,
    "Concurrency contracts").

 2. std::thread / std::jthread / std::async appear only in the two
    sanctioned thread owners — ThreadPool and RetrainPool — plus
    explicitly allowlisted test harnesses that need pool-*external*
    threads (you cannot stress the pool with itself).

 3. .detach() is banned outright: every thread in the engine is joined
    by an owner with a shutdown protocol; a detached thread outlives
    scrutiny (TSan, the fault matrix, the alloc audit).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import pmcorr_ast
import re

SCAN_DIRS = ["src", "tests", "bench", "tools", "examples", "fuzz"]
SCAN_EXTS = {".h", ".cpp"}
SKIP_PARTS = {"static_checks", "compile_fail"}

RAW_LOCK = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable|"
    r"condition_variable_any)\b"
)
RAW_THREAD = re.compile(r"\bstd\s*::\s*(?:thread|jthread|async)\b")
DETACH = re.compile(r"\.\s*detach\s*\(")

# path -> reason. Rule 1: the one TU allowed to name the std types.
LOCK_ALLOWLIST = {
    "src/common/mutex.h": "the annotated wrapper itself (docs/analysis.md)",
}

# Rule 2: sanctioned thread owners and pool-external test drivers.
THREAD_ALLOWLIST = {
    "src/engine/thread_pool.h": "ThreadPool owns its workers",
    "src/engine/thread_pool.cpp": "ThreadPool owns its workers",
    "src/engine/retrain_pool.h": "RetrainPool owns its workers",
    "src/engine/retrain_pool.cpp": "RetrainPool owns its workers",
    "src/serve/tenant.h": "TenantRuntime owns its per-tenant worker",
    "src/serve/tenant.cpp": "TenantRuntime owns its per-tenant worker",
    "tests/test_thread_pool.cpp":
        "stress callers must be pool-external threads",
}


def scan_file(path: Path, rel: str, violations: list, hits: set) -> None:
    stripped = pmcorr_ast.strip_code(path.read_text())
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if RAW_LOCK.search(line):
            hits.add(("lock", rel))
            if rel not in LOCK_ALLOWLIST:
                violations.append(
                    f"{rel}:{lineno}: raw std lock/condvar type — use "
                    f"pmcorr::Mutex/MutexLock/CondVar (common/mutex.h) so "
                    f"-Wthread-safety sees it"
                )
        if RAW_THREAD.search(line):
            hits.add(("thread", rel))
            if rel not in THREAD_ALLOWLIST:
                violations.append(
                    f"{rel}:{lineno}: raw std::thread outside "
                    f"ThreadPool/RetrainPool — route work through a pool, "
                    f"or allowlist with a reason in check_raw_threading.py"
                )
        if DETACH.search(line):
            violations.append(
                f"{rel}:{lineno}: detached thread — every engine thread "
                f"must be joined by an owner with a shutdown protocol"
            )


def run(root: Path, files=None):
    violations: list[str] = []
    hits: set = set()
    if files is not None:
        for f in files:
            scan_file(Path(f), str(f), violations, hits)
        return violations
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SCAN_EXTS:
                continue
            if SKIP_PARTS & set(path.parts):
                continue
            scan_file(path, path.relative_to(root).as_posix(),
                      violations, hits)
    for kind, allowlist in (("lock", LOCK_ALLOWLIST),
                            ("thread", THREAD_ALLOWLIST)):
        for entry in allowlist:
            if (kind, entry) not in hits:
                violations.append(
                    f"{entry}: stale {kind} allowlist entry in "
                    f"check_raw_threading.py (no match there any more) — "
                    f"remove it so the list cannot rot"
                )
    return violations


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--files":
        violations = run(Path("."), files=args[1:])
    else:
        root = Path(args[args.index("--root") + 1]) if "--root" in args \
            else Path(__file__).resolve().parents[2]
        violations = run(root)
    for v in violations:
        print(v)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
