// Fixture: raw std lock types outside src/common/mutex.h must be
// flagged (rule 1). run_checks.sh asserts this file FAILS the check.
#include <mutex>

namespace fixture {

std::mutex g_mu;
int g_count = 0;

void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}

}  // namespace fixture
