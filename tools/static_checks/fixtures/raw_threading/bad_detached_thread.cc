// Fixture: a raw std::thread outside the sanctioned owners AND a
// .detach() (banned everywhere) must both be flagged (rules 2 and 3).
#include <thread>

namespace fixture {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fixture
