// Fixture: the annotated wrappers are the sanctioned spelling — this
// file must PASS the check. The std::mutex in this comment (and the
// "std::thread" in the string below) must not trip it either: matching
// runs on comment- and string-stripped source.
#include "common/mutex.h"

namespace fixture {

pmcorr::Mutex g_mu;
int g_count = 0;

const char* kBanner = "std::thread is banned here";

void Bump() {
  const pmcorr::MutexLock lock(g_mu);
  ++g_count;
}

}  // namespace fixture
