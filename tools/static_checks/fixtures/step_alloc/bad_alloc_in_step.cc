// hot: Probe::Step
// Fixture: unconditional allocation tokens inside a listed hot function
// must be flagged. run_checks.sh asserts this file FAILS the check.
#include <memory>
#include <vector>

namespace fixture {

struct Probe {
  void Step(const std::vector<double>& values);
  std::unique_ptr<int> cache;
};

void Probe::Step(const std::vector<double>& values) {
  std::vector<double> scratch(values.size());  // fresh heap every sample
  cache = std::make_unique<int>(0);            // ditto
  scratch[0] = values.empty() ? 0.0 : values[0];
}

}  // namespace fixture
