// hot: Probe::Step
// Fixture: must PASS — capacity-reusing writes into member buffers, a
// reference binding to scratch, and an escaped sanctioned cold branch.
#include <vector>

namespace fixture {

struct Probe {
  void Step(const std::vector<double>& values);
  std::vector<double> scratch_;
  std::vector<double> grid_;
};

void Probe::Step(const std::vector<double>& values) {
  scratch_.assign(values.begin(), values.end());  // reuses capacity
  std::vector<double>& out = scratch_;            // reference: no alloc
  if (out.size() > grid_.capacity()) {
    // alloc-ok: structural grid extension, isolated by the warmup audit
    grid_ = std::vector<double>(out.size());
  }
  for (double v : values) out.push_back(v);
}

}  // namespace fixture
