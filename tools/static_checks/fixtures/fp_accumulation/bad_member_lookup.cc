// Fixture: the range is a bare identifier whose *declaration* is an
// unordered container — resolved by same-file lookup, then flagged for
// the RunningStats-style .Add() accumulation in the body.
#include <unordered_set>

namespace fixture {

struct Stats {
  void Add(double v);
};

class ScoreBag {
 public:
  void Fold(Stats& stats) const {
    for (double v : scores_) stats.Add(v);
  }

 private:
  std::unordered_set<double> scores_;
};

}  // namespace fixture
