// Fixture: must PASS — ordered accumulation, membership-only unordered
// use, and an escaped order-independent fold are all legitimate.
#include <cstddef>
#include <unordered_set>
#include <vector>

namespace fixture {

double Total(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;  // ordered container: fine
  return sum;
}

std::size_t Distinct(const std::vector<int>& ids) {
  std::unordered_set<int> seen;
  for (int id : ids) seen.insert(id);  // membership only: fine
  return seen.size();
}

std::size_t Count(const std::unordered_set<int>& ids) {
  std::size_t n = 0;
  for (int id : ids) {  // fp-order-ok: integer count, order-independent
    n += static_cast<std::size_t>(id != 0);
  }
  return n;
}

}  // namespace fixture
