// Fixture: summing doubles in hash order must be flagged — the fold
// order changes across libstdc++ versions and breaks the bitwise
// determinism contract. run_checks.sh asserts this file FAILS.
#include <unordered_map>

namespace fixture {

double Total(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& entry : weights) {
    sum += entry.second;
  }
  return sum;
}

}  // namespace fixture
