"""Tiny AST-grep-style matching engine for the pmcorr project checks.

The repo-specific static checks (check_*.py) need more structure than a
grep — "a range-for over an unordered container whose body accumulates",
"an allocation token inside this named function's body" — but far less
than a full C++ frontend. This module provides the middle ground:

  * strip_code():   comments and string/char literals blanked out (same
                    length, newlines kept) so matchers never fire on
                    prose, and reported line numbers stay true;
  * find_functions(): brace-balanced body extraction for a qualified
                    function name, every overload/definition;
  * range_for_loops(): each `for (decl : range)` with its range
                    expression and brace-balanced (or single-statement)
                    body.

Deliberately token-level: no preprocessing, no template instantiation,
no type inference beyond same-file declaration lookup. The checks that
build on it are backstops for contracts proven elsewhere (TSan jobs,
the counting-allocator audit, the golden suites) — they catch the easy
regression early, they do not replace the proof. When clang-query is
available, the queries/ directory holds equivalent matchers for ad-hoc
deep runs; the Python path is the portable always-on gate.
"""

from __future__ import annotations

import re


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving layout.

    Handles //, /* */, "...", '...' (with escapes) and raw strings
    R"delim(...)delim". Every replaced character becomes a space;
    newlines survive so line numbers match the original file.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n - len(closer) if j == -1 else j
            seg = text[i : j + len(closer)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + len(closer)
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(" " * (min(j, n - 1) + 1 - i))
            i = min(j, n - 1) + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    """1-based line number of a character offset."""
    return text.count("\n", 0, offset) + 1


def _match_balanced(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset just past the delimiter closing text[start] (which must be
    open_ch), or -1 if unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_functions(stripped: str, qualified_name: str):
    """Yields (start_line, body) for each definition of qualified_name.

    Matches `Qualified::Name (...)` followed (after const/noexcept/
    attribute trivia) by a `{` and extracts the brace-balanced body.
    Declarations (ending in `;`) are skipped.
    """
    pat = re.compile(r"\b" + re.escape(qualified_name) + r"\s*\(")
    for m in pat.finditer(stripped):
        params_end = _match_balanced(stripped, m.end() - 1, "(", ")")
        if params_end == -1:
            continue
        tail = stripped[params_end:]
        trivia = re.match(
            r"(\s|const\b|noexcept\b|override\b|final\b|->\s*[\w:<>&*\s]+)*",
            tail,
        )
        at = params_end + (trivia.end() if trivia else 0)
        if at >= len(stripped) or stripped[at] != "{":
            continue
        body_end = _match_balanced(stripped, at, "{", "}")
        if body_end == -1:
            continue
        yield line_of(stripped, m.start()), stripped[at:body_end]


def range_for_loops(stripped: str):
    """Yields (line, range_expr, body) for each range-based for."""
    for m in re.finditer(r"\bfor\s*\(", stripped):
        close = _match_balanced(stripped, m.end() - 1, "(", ")")
        if close == -1:
            continue
        head = stripped[m.end() : close - 1]
        # The decl:range colon sits at angle/paren/bracket depth 0 and is
        # not part of a `::`.
        depth = 0
        colon = -1
        k = 0
        while k < len(head):
            ch = head[k]
            if ch in "<([{":
                depth += 1
            elif ch in ">)]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if k + 1 < len(head) and head[k + 1] == ":":
                    k += 2
                    continue
                if k > 0 and head[k - 1] == ":":
                    k += 1
                    continue
                colon = k
                break
            k += 1
        if colon == -1:
            continue  # classic three-clause for
        range_expr = head[colon + 1 :].strip()
        after = close
        while after < len(stripped) and stripped[after].isspace():
            after += 1
        if after < len(stripped) and stripped[after] == "{":
            body_end = _match_balanced(stripped, after, "{", "}")
            body = stripped[after:body_end] if body_end != -1 else ""
        else:
            semi = stripped.find(";", after)
            body = stripped[after : semi + 1] if semi != -1 else ""
        yield line_of(stripped, m.start()), range_expr, body


def declared_unordered(stripped: str, name: str) -> bool:
    """True if `name` is declared in this file with an unordered
    container type (member or local; same-file heuristic lookup)."""
    pat = re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
        r"[^;{}]*?[>\s&]" + re.escape(name) + r"\b"
    )
    return bool(pat.search(stripped))
