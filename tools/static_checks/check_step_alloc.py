#!/usr/bin/env python3
"""No allocation tokens in the steady-state Step/Run hot path.

PR 7 proved the out-param SystemMonitor::Step malloc-free after warmup
with a counting allocator (tests/test_alloc_audit.cpp). That proof is
dynamic — it only sees the paths the audit trace exercises. This check
is the static backstop: the function bodies on the per-sample hot path
must not contain a token that *unconditionally* allocates. Capacity-
reusing calls (assign/clear/push_back into a warmed buffer) are fine and
not flagged; what is flagged:

  * operator new / std::make_unique / std::make_shared / malloc family;
  * construction of a local owning container or string (a reference or
    pointer binding to an existing buffer is not flagged).

Token-level, one function body at a time: a callee that allocates on a
cold branch (grid extension) is invisible here and stays covered by the
dynamic audit. Escape hatch for a sanctioned cold branch inside a listed
body: `// alloc-ok: <reason>` on the offending line.

A listed function that no longer exists fails the check (stale config),
so renames cannot silently drop coverage.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import pmcorr_ast

# file -> hot functions whose every definition (all overloads) is
# scanned. Keep this the *steady-state per-sample* path: the Learn/
# calibration/setup paths allocate by design.
HOT_FUNCTIONS = {
    "src/engine/monitor.cpp": [
        "SystemMonitor::Step",
        "SystemMonitor::FinishSnapshot",
        "SystemMonitor::ComputeAggregates",
    ],
    "src/core/model.cpp": [
        "PairModel::Step",
    ],
}

ALLOC = re.compile(
    r"(?:^|[^\w.])new\b(?!\s*\()"  # `new X`, not a member named new
    r"|\bstd\s*::\s*make_unique\b"
    r"|\bstd\s*::\s*make_shared\b"
    r"|\b(?:malloc|calloc|realloc)\s*\("
    # Local owning container/string construction: `std::vector<T> x...`
    # with no & / * between the type and the name.
    r"|\bstd\s*::\s*(?:vector|deque|string|map|set|unordered_\w+|list|"
    r"function)\s*(?:<[^;&*]*>)?\s+[A-Za-z_]\w*\s*[({=]"
)
ESCAPE = "alloc-ok"


def scan_file(path: Path, rel: str, names, violations: list) -> None:
    raw_lines = path.read_text().splitlines()
    stripped = pmcorr_ast.strip_code(path.read_text())
    for name in names:
        found = False
        for start_line, body in pmcorr_ast.find_functions(stripped, name):
            found = True
            for i, line in enumerate(body.splitlines()):
                m = ALLOC.search(line)
                if not m:
                    continue
                lineno = start_line + i
                if lineno - 1 < len(raw_lines) and \
                        ESCAPE in raw_lines[lineno - 1]:
                    continue
                violations.append(
                    f"{rel}:{lineno}: allocation token in hot function "
                    f"{name} — the steady-state Step path is contractually "
                    f"malloc-free (tests/test_alloc_audit.cpp); reuse a "
                    f"member buffer, or mark a sanctioned cold branch with "
                    f"`// {ESCAPE}: <reason>`"
                )
        if not found:
            violations.append(
                f"{rel}: hot function {name} not found — stale entry in "
                f"check_step_alloc.py HOT_FUNCTIONS (update it so coverage "
                f"cannot silently rot)"
            )


def run(root: Path, files=None):
    violations: list[str] = []
    if files is not None:
        # Self-test mode: every listed fixture declares its own hot set
        # via a `// hot: Name` header line.
        for f in files:
            path = Path(f)
            names = re.findall(r"^//\s*hot:\s*(\S+)", path.read_text(),
                               re.MULTILINE)
            scan_file(path, str(f), names, violations)
        return violations
    for rel, names in HOT_FUNCTIONS.items():
        path = root / rel
        if not path.is_file():
            violations.append(
                f"{rel}: file missing — stale entry in check_step_alloc.py "
                f"HOT_FUNCTIONS"
            )
            continue
        scan_file(path, rel, names, violations)
    return violations


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--files":
        violations = run(Path("."), files=args[1:])
    else:
        root = Path(args[args.index("--root") + 1]) if "--root" in args \
            else Path(__file__).resolve().parents[2]
        violations = run(root)
    for v in violations:
        print(v)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
