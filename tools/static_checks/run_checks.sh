#!/usr/bin/env bash
# Project-specific static checks for pmcorr, run from tools/lint.sh and
# the lint CI job. Two stages:
#
#   1. Fixture self-test: every bad_*.cc fixture must FAIL its check and
#      every good_*.cc must PASS it. This gates the gate — a check that
#      silently stops matching its own seeded violation is itself a
#      failure, so the suite cannot rot into a green no-op.
#   2. Repo scan: run each check over the real tree.
#
# Exit non-zero on any self-test or repo violation.
set -u

cd "$(dirname "$0")/../.."

PY=python3
CHECKS_DIR=tools/static_checks
FIXTURES=$CHECKS_DIR/fixtures
fail=0

self_test() {
  # self_test <check.py> <fixture-subdir>
  local check="$1" dir="$2" f
  for f in "$FIXTURES/$dir"/bad_*.cc; do
    if $PY "$CHECKS_DIR/$check" --files "$f" >/dev/null 2>&1; then
      echo "static_checks SELF-TEST FAILURE: $check did not flag $f" >&2
      fail=1
    fi
  done
  for f in "$FIXTURES/$dir"/good_*.cc; do
    if ! $PY "$CHECKS_DIR/$check" --files "$f"; then
      echo "static_checks SELF-TEST FAILURE: $check flagged $f" >&2
      fail=1
    fi
  done
}

echo "== static_checks: fixture self-test =="
self_test check_raw_threading.py raw_threading
self_test check_fp_accumulation.py fp_accumulation
self_test check_step_alloc.py step_alloc
if [ "$fail" -ne 0 ]; then
  echo "static_checks: fixture self-test failed; not scanning repo" >&2
  exit 1
fi
echo "OK"

echo "== static_checks: repo scan =="
for check in check_raw_threading.py check_fp_accumulation.py \
    check_step_alloc.py; do
  if ! $PY "$CHECKS_DIR/$check"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "static_checks: repo scan found violations" >&2
  exit 1
fi
echo "OK"
