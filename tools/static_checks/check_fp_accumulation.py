#!/usr/bin/env python3
"""No floating-point accumulation over unordered containers.

Floating-point accumulation order is part of the engine's determinism
contract (docs/engine.md): the golden traces and the serial-vs-batched
differential suite pin results *bitwise*, so any sum folded in hash
order — which varies across libstdc++ versions, load factors and ASLR —
silently breaks the contract on someone else's machine. Until this PR
that rule lived only in review comments; this check makes it a gate.

A violation is a range-for whose range is an unordered container —
either syntactically (`... : foo.unordered_map_member`) or by same-file
declaration lookup — and whose body contains a compound FP accumulation
(`+=`, `-=`, `*=`) or a RunningStats-style `.Add(`.

Escape hatch: a `// fp-order-ok: <reason>` comment on the for line for
loops whose accumulation is provably order-independent (integer counts,
min/max, set insertion).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import pmcorr_ast

SCAN_DIRS = ["src"]
SCAN_EXTS = {".h", ".cpp"}

UNORDERED = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
ACCUMULATE = re.compile(r"(?:[^=<>!+\-*]|^)(?:\+=|-=|\*=)|\.\s*Add\s*\(")
ESCAPE = "fp-order-ok"


def scan_file(path: Path, rel: str, violations: list) -> None:
    raw = path.read_text()
    raw_lines = raw.splitlines()
    stripped = pmcorr_ast.strip_code(raw)
    for line, range_expr, body in pmcorr_ast.range_for_loops(stripped):
        over_unordered = bool(UNORDERED.search(range_expr))
        if not over_unordered:
            # `for (x : name)` / `for (x : obj.name_)`: resolve the
            # trailing identifier against same-file declarations.
            m = re.search(r"([A-Za-z_]\w*)\s*$", range_expr)
            if m and pmcorr_ast.declared_unordered(stripped, m.group(1)):
                over_unordered = True
        if not over_unordered:
            continue
        if not ACCUMULATE.search(body):
            continue
        if line - 1 < len(raw_lines) and ESCAPE in raw_lines[line - 1]:
            continue
        violations.append(
            f"{rel}:{line}: floating-point accumulation over an unordered "
            f"container folds in hash order and breaks the bitwise "
            f"determinism contract (docs/engine.md) — iterate a sorted/"
            f"indexed view, or mark `// {ESCAPE}: <reason>` if the fold "
            f"is order-independent"
        )


def run(root: Path, files=None):
    violations: list[str] = []
    if files is not None:
        for f in files:
            scan_file(Path(f), str(f), violations)
        return violations
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SCAN_EXTS:
                scan_file(path, path.relative_to(root).as_posix(),
                          violations)
    return violations


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--files":
        violations = run(Path("."), files=args[1:])
    else:
        root = Path(args[args.index("--root") + 1]) if "--root" in args \
            else Path(__file__).resolve().parents[2]
        violations = run(root)
    for v in violations:
        print(v)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
