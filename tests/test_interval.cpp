// Tests for grid/interval: Interval and IntervalList.
#include <gtest/gtest.h>

#include "grid/interval.h"

namespace pmcorr {
namespace {

TEST(Interval, HalfOpenContainment) {
  const Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(1.999));
  EXPECT_FALSE(iv.Contains(2.0));
  EXPECT_FALSE(iv.Contains(0.999));
  EXPECT_DOUBLE_EQ(iv.Width(), 1.0);
  EXPECT_DOUBLE_EQ(iv.Center(), 1.5);
}

TEST(IntervalList, UniformConstruction) {
  const IntervalList list = IntervalList::Uniform(0.0, 10.0, 5);
  EXPECT_EQ(list.Size(), 5u);
  EXPECT_DOUBLE_EQ(list.Lo(), 0.0);
  EXPECT_DOUBLE_EQ(list.Hi(), 10.0);
  EXPECT_DOUBLE_EQ(list.At(2).lo, 4.0);
  EXPECT_DOUBLE_EQ(list.At(2).hi, 6.0);
  EXPECT_DOUBLE_EQ(list.AverageWidth(), 2.0);
}

TEST(IntervalList, UniformExactEndEdge) {
  // The last interval's hi must be exactly the requested hi even with
  // non-representable widths.
  const IntervalList list = IntervalList::Uniform(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(list.Hi(), 1.0);
  EXPECT_EQ(list.IndexOf(0.999999), 2u);
}

TEST(IntervalList, IndexOfBinarySearch) {
  const IntervalList list = IntervalList::Uniform(0.0, 10.0, 10);
  EXPECT_EQ(list.IndexOf(0.0), 0u);
  EXPECT_EQ(list.IndexOf(9.999), 9u);
  EXPECT_EQ(list.IndexOf(5.0), 5u);   // boundary belongs to upper interval
  EXPECT_EQ(list.IndexOf(4.999), 4u);
  EXPECT_EQ(list.IndexOf(-0.001), IntervalList::npos);
  EXPECT_EQ(list.IndexOf(10.0), IntervalList::npos);
}

TEST(IntervalList, NonUniformIndexOf) {
  const IntervalList list(
      {{0.0, 1.0}, {1.0, 5.0}, {5.0, 5.5}, {5.5, 20.0}});
  EXPECT_EQ(list.Size(), 4u);
  EXPECT_EQ(list.IndexOf(0.5), 0u);
  EXPECT_EQ(list.IndexOf(3.0), 1u);
  EXPECT_EQ(list.IndexOf(5.2), 2u);
  EXPECT_EQ(list.IndexOf(19.999), 3u);
}

TEST(IntervalList, ExtendAboveAppendsContiguously) {
  IntervalList list = IntervalList::Uniform(0.0, 4.0, 2);
  list.ExtendAbove(3, 1.5);
  EXPECT_EQ(list.Size(), 5u);
  EXPECT_DOUBLE_EQ(list.Hi(), 8.5);
  EXPECT_DOUBLE_EQ(list.At(2).lo, 4.0);
  EXPECT_DOUBLE_EQ(list.At(2).hi, 5.5);
  EXPECT_EQ(list.IndexOf(8.0), 4u);
}

TEST(IntervalList, ExtendBelowShiftsIndices) {
  IntervalList list = IntervalList::Uniform(0.0, 4.0, 2);
  list.ExtendBelow(2, 1.0);
  EXPECT_EQ(list.Size(), 4u);
  EXPECT_DOUBLE_EQ(list.Lo(), -2.0);
  // Old interval [0,2) is now index 2.
  EXPECT_EQ(list.IndexOf(0.5), 2u);
  EXPECT_EQ(list.IndexOf(-1.5), 0u);
  EXPECT_EQ(list.IndexOf(-0.5), 1u);
}

TEST(IntervalList, AverageWidthTracksSpan) {
  IntervalList list(std::vector<Interval>{{0.0, 1.0}, {1.0, 4.0}});
  EXPECT_DOUBLE_EQ(list.AverageWidth(), 2.0);
}

TEST(IntervalList, ToStringRendersEdges) {
  const IntervalList list = IntervalList::Uniform(0.0, 2.0, 2);
  EXPECT_EQ(list.ToString(), "[0,1)[1,2)");
}

}  // namespace
}  // namespace pmcorr
