// Tests for alarm-threshold calibration.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/calibration.h"

namespace pmcorr {
namespace {

void MakeData(std::size_t n, std::uint64_t seed, std::vector<double>* xs,
              std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double load =
        55.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    (*xs)[i] = load;
    (*ys)[i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.5);
  }
}

PairModel TrainModel(std::uint64_t seed = 3) {
  std::vector<double> xs, ys;
  MakeData(2000, seed, &xs, &ys);
  ModelConfig config;
  config.partition.units = 40;
  config.partition.max_intervals = 10;
  return PairModel::Learn(xs, ys, config);
}

TEST(Calibration, HoldoutFprMatchesTarget) {
  const PairModel model = TrainModel();
  std::vector<double> hx, hy;
  MakeData(1500, 11, &hx, &hy);  // held-out slice, same process
  const auto calibration = CalibrateOnHoldout(model, hx, hy, 0.05);
  ASSERT_GT(calibration.samples, 1000u);
  EXPECT_GT(calibration.fitness_threshold, 0.0);
  EXPECT_LT(calibration.fitness_threshold, 1.0);
  EXPECT_GT(calibration.delta, 0.0);

  // Replaying fresh normal data against the calibrated thresholds must
  // alarm at roughly the target rate.
  ModelConfig armed = WithCalibratedThresholds(model.Config(), calibration);
  PairModel detector = PairModel::FromParts(armed, model.Grid(),
                                            model.Matrix());
  std::vector<double> tx, ty;
  MakeData(1500, 13, &tx, &ty);
  std::size_t scored = 0, alarms = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const StepOutcome out = detector.Step(tx[i], ty[i]);
    if (out.has_score) {
      ++scored;
      if (out.alarm) ++alarms;
    }
  }
  ASSERT_GT(scored, 1000u);
  const double fpr = static_cast<double>(alarms) / static_cast<double>(scored);
  // Both thresholds fire at ~5% each; their union stays well below ~15%.
  EXPECT_LT(fpr, 0.15);
  EXPECT_GT(fpr, 0.005);
}

TEST(Calibration, DoesNotMutateTheInputModel) {
  const PairModel model = TrainModel(5);
  const auto evidence_before = model.Matrix().Evidence();
  std::vector<double> hx, hy;
  MakeData(500, 17, &hx, &hy);
  (void)CalibrateOnHoldout(model, hx, hy, 0.02);
  EXPECT_EQ(model.Matrix().Evidence(), evidence_before);
  EXPECT_DOUBLE_EQ(model.Config().delta, 0.0);  // still unarmed
}

TEST(Calibration, ZeroTargetGivesMinimumScores) {
  const PairModel model = TrainModel(7);
  std::vector<double> hx, hy;
  MakeData(800, 19, &hx, &hy);
  const auto tight = CalibrateOnHoldout(model, hx, hy, 0.0);
  const auto loose = CalibrateOnHoldout(model, hx, hy, 0.5);
  EXPECT_LE(tight.fitness_threshold, loose.fitness_threshold);
  EXPECT_LE(tight.delta, loose.delta);
}

TEST(Calibration, EmptyHoldoutIsHarmless) {
  const PairModel model = TrainModel(9);
  const auto calibration = CalibrateOnHoldout(model, {}, {}, 0.05);
  EXPECT_EQ(calibration.samples, 0u);
  EXPECT_DOUBLE_EQ(calibration.fitness_threshold, 0.0);
  EXPECT_DOUBLE_EQ(calibration.delta, 0.0);
}

TEST(Calibration, WithCalibratedThresholdsCopiesBounds) {
  ModelConfig config;
  ThresholdCalibration calibration;
  calibration.fitness_threshold = 0.42;
  calibration.delta = 0.003;
  const ModelConfig armed = WithCalibratedThresholds(config, calibration);
  EXPECT_DOUBLE_EQ(armed.fitness_alarm_threshold, 0.42);
  EXPECT_DOUBLE_EQ(armed.delta, 0.003);
  EXPECT_DOUBLE_EQ(config.fitness_alarm_threshold, 0.0);  // copy, not edit
}

}  // namespace
}  // namespace pmcorr
