// Golden-trace regression: a small fixed-seed scenario's full snapshot
// stream is checked in under tests/golden/ and replayed here byte for
// byte, so future engine changes cannot silently alter the numbers the
// paper reproduction reports.
//
// The golden file is the WriteSnapshotStreamJsonl rendering (17
// significant digits — round-trip exact for doubles) of a calibrated
// monitor running a partially decoupled test segment: scores, Q^a / Q
// aggregation, alarms, outliers and grid extensions are all pinned.
//
// To regenerate after an *intentional* engine change:
//   PMCORR_REGEN_GOLDEN=1 ./test_golden_trace
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "engine/monitor.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace {

#ifndef PMCORR_GOLDEN_DIR
#error "PMCORR_GOLDEN_DIR must point at tests/golden"
#endif

std::string GoldenPath() {
  return std::string(PMCORR_GOLDEN_DIR) + "/system_trace.jsonl";
}

// Fixed-seed scenario: 2 machines x 2 metrics on one load signal, with
// measurement 3 decoupling halfway through the test segment so the
// stream pins alarms and outliers, not just healthy scores.
MeasurementFrame GoldenFrame(std::size_t samples, std::uint64_t seed,
                             bool break_late) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_late && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = walk < 20.0 ? 20.0 : (walk > 150.0 ? 150.0 : walk);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

std::string RenderGoldenTrace() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  SystemMonitor monitor(GoldenFrame(1000, 2008, false),
                        MeasurementGraph::FullMesh(4), config);
  monitor.CalibrateThresholds(GoldenFrame(300, 2009, false), 0.05);
  const auto snapshots = monitor.Run(GoldenFrame(120, 2010, true));
  std::ostringstream out;
  WriteSnapshotStreamJsonl(snapshots, out);
  return out.str();
}

TEST(GoldenTrace, SnapshotStreamMatchesCheckedInTrace) {
  const std::string rendered = RenderGoldenTrace();
  ASSERT_FALSE(rendered.empty());

  if (std::getenv("PMCORR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << GoldenPath();
    out << rendered;
    out.close();
    ASSERT_TRUE(out);
    GTEST_SKIP() << "regenerated " << GoldenPath()
                 << " — review the diff before committing";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << GoldenPath()
                  << " (run with PMCORR_REGEN_GOLDEN=1 to create it)";
  std::ostringstream golden;
  golden << in.rdbuf();

  const std::string& expected = golden.str();
  if (rendered != expected) {
    // Diff the first divergent line so the failure is actionable without
    // external tooling.
    std::istringstream a(expected), b(rendered);
    std::string line_a, line_b;
    std::size_t line_no = 0;
    while (true) {
      const bool more_a = static_cast<bool>(std::getline(a, line_a));
      const bool more_b = static_cast<bool>(std::getline(b, line_b));
      ++line_no;
      if (!more_a && !more_b) break;
      if (line_a != line_b || more_a != more_b) {
        FAIL() << "golden trace diverges at line " << line_no
               << "\n  golden:   " << (more_a ? line_a : "<eof>")
               << "\n  rendered: " << (more_b ? line_b : "<eof>")
               << "\nIf the change is intentional, regenerate with"
                  " PMCORR_REGEN_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

// The golden scenario's headline numbers stay in a sane band even when
// regenerating — a tripwire against committing a degenerate trace.
TEST(GoldenTrace, ScenarioShapeIsSane) {
  const std::string rendered = RenderGoldenTrace();
  std::istringstream in(rendered);
  std::string line;
  std::size_t lines = 0, alarmed_lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("\"alarmed\":[]") == std::string::npos) ++alarmed_lines;
  }
  EXPECT_EQ(lines, 120u);
  // The decoupled second half must raise alarms; the healthy first half
  // must not drown the stream in them.
  EXPECT_GT(alarmed_lines, 5u);
  EXPECT_LT(alarmed_lines, 90u);
}

}  // namespace
}  // namespace pmcorr
