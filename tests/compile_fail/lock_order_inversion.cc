// Seeded violation: taking the locks against the declared
// PMCORR_ACQUIRED_BEFORE hierarchy (the deadlock shape TSan only finds
// when two threads actually race the inversion). Expected diagnostic:
//   mutex 'first_' must be acquired before 'second_'
#include "common/mutex.h"

namespace pmcorr {

class Ledger {
 public:
  void Update() PMCORR_EXCLUDES(first_, second_) {
    const MutexLock lock_second(second_);
    const MutexLock lock_first(first_);
    ++balance_;
  }

 private:
  Mutex first_ PMCORR_ACQUIRED_BEFORE(second_);
  Mutex second_;
  int balance_ PMCORR_GUARDED_BY(second_) = 0;
};

}  // namespace pmcorr
