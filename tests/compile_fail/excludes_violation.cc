// Seeded violation: calling a PMCORR_EXCLUDES(mu_) function while
// holding mu_ — the re-entrancy self-deadlock the EXCLUDES contracts on
// ThreadPool::ParallelShards and RetrainPool::Step exist to prevent.
// Expected diagnostic:
//   cannot call function 'Inner' while mutex 'mu_' is held
#include "common/mutex.h"

namespace pmcorr {

class Pool {
 public:
  void Outer() PMCORR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    Inner();
  }

  void Inner() PMCORR_EXCLUDES(mu_) {}

 private:
  Mutex mu_;
};

}  // namespace pmcorr
