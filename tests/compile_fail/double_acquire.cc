// Seeded violation: acquiring a mutex already held on the same path
// (self-deadlock with std::mutex underneath). Expected diagnostic:
//   acquiring mutex 'mu' that is already held
#include "common/mutex.h"

namespace pmcorr {

void DoubleAcquire() {
  Mutex mu;
  mu.Lock();
  mu.Lock();
  mu.Unlock();
  mu.Unlock();
}

}  // namespace pmcorr
