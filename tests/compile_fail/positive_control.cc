// Control case: a correctly annotated translation unit exercising every
// macro class the sibling cases violate. Must compile clean under
// -Wthread-safety -Wthread-safety-beta -Werror, proving those cases
// fail for their seeded violation and not for a harness defect.
#include "common/mutex.h"

namespace pmcorr {
namespace {

class Counter {
 public:
  void Bump() PMCORR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    BumpLocked();
  }

  int Get() const PMCORR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return count_;
  }

 private:
  void BumpLocked() PMCORR_REQUIRES(mu_) { ++count_; }

  mutable Mutex mu_;
  int count_ PMCORR_GUARDED_BY(mu_) = 0;
};

class Ledger {
 public:
  void Update() PMCORR_EXCLUDES(first_, second_) {
    const MutexLock lock_first(first_);
    const MutexLock lock_second(second_);
    ++balance_;
  }

 private:
  Mutex first_ PMCORR_ACQUIRED_BEFORE(second_);
  Mutex second_;
  int balance_ PMCORR_GUARDED_BY(second_) = 0;
};

void ExplicitLockPair() {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
}

}  // namespace
}  // namespace pmcorr

int main() {
  pmcorr::Counter counter;
  counter.Bump();
  pmcorr::Ledger ledger;
  ledger.Update();
  pmcorr::ExplicitLockPair();
  return counter.Get();
}
