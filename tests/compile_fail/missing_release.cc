// Seeded violation: a path that returns with the mutex still held.
// Expected diagnostic:
//   mutex 'mu' is still held at the end of function
#include "common/mutex.h"

namespace pmcorr {

void LeakLock() {
  Mutex mu;
  mu.Lock();
}

}  // namespace pmcorr
