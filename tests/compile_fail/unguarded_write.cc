// Seeded violation: writing a PMCORR_GUARDED_BY member with no lock
// held. Expected diagnostic:
//   writing variable 'count_' requires holding mutex 'mu_' exclusively
#include "common/mutex.h"

namespace pmcorr {

class Counter {
 public:
  void Bump() { ++count_; }

 private:
  Mutex mu_;
  int count_ PMCORR_GUARDED_BY(mu_) = 0;
};

}  // namespace pmcorr
