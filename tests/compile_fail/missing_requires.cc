// Seeded violation: calling a PMCORR_REQUIRES(mu_) private helper
// without acquiring mu_ first — the engine's *Locked() convention.
// Expected diagnostic:
//   calling function 'DrainLocked' requires holding mutex 'mu_'
#include "common/mutex.h"

namespace pmcorr {

class Pool {
 public:
  void Step() PMCORR_EXCLUDES(mu_) { DrainLocked(); }

 private:
  void DrainLocked() PMCORR_REQUIRES(mu_) { ++drained_; }

  Mutex mu_;
  int drained_ PMCORR_GUARDED_BY(mu_) = 0;
};

}  // namespace pmcorr
