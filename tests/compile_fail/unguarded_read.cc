// Seeded violation: reading a PMCORR_GUARDED_BY member with no lock
// held. Expected diagnostic:
//   reading variable 'count_' requires holding mutex 'mu_'
#include "common/mutex.h"

namespace pmcorr {

class Counter {
 public:
  int Get() const { return count_; }

 private:
  mutable Mutex mu_;
  int count_ PMCORR_GUARDED_BY(mu_) = 0;
};

}  // namespace pmcorr
