// Tests for the rolling re-initialization wrapper, including the
// double-buffered background-rebuild mode and its swap points.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/retrainer.h"
#include "io/model_io.h"

namespace pmcorr {
namespace {

// A drifting process: the operating level rises substantially over time.
void MakeDrifting(std::size_t n, double drift_per_sample, std::uint64_t seed,
                  std::vector<double>* xs, std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double level = 50.0 + drift_per_sample * static_cast<double>(i);
    const double load =
        level + 20.0 * std::sin(static_cast<double>(i) * 0.05) +
        rng.Normal(0.0, 1.0);
    (*xs)[i] = load;
    (*ys)[i] = 2.0 * load + 10.0 + rng.Normal(0.0, 1.0);
  }
}

ModelConfig SmallModel() {
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  return config;
}

RetrainerConfig FastCadence() {
  RetrainerConfig config;
  config.window_samples = 400;
  config.interval_samples = 100;
  config.min_samples = 50;
  return config;
}

TEST(Retrainer, RebuildsOnCadence) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 3, &xs, &ys);
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), FastCadence());
  EXPECT_EQ(retrainer.Rebuilds(), 0u);
  for (int i = 0; i < 250; ++i) {
    retrainer.Step(xs[static_cast<std::size_t>(i) % xs.size()],
                   ys[static_cast<std::size_t>(i) % ys.size()]);
  }
  EXPECT_EQ(retrainer.Rebuilds(), 2u);  // at samples 100 and 200
}

TEST(Retrainer, WindowIsBounded) {
  std::vector<double> xs, ys;
  MakeDrifting(1000, 0.0, 5, &xs, &ys);
  RetrainerConfig config = FastCadence();
  config.window_samples = 200;
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), config);
  EXPECT_LE(retrainer.WindowSize(), 200u);
  for (int i = 0; i < 500; ++i) retrainer.Step(xs[0], ys[0]);
  EXPECT_EQ(retrainer.WindowSize(), 200u);
}

TEST(Retrainer, TracksDriftBetterThanFrozenModel) {
  // Strong drift: by the end, values sit far above the initial range.
  std::vector<double> xs, ys;
  MakeDrifting(3000, 0.05, 7, &xs, &ys);  // +150 over the run

  const std::vector<double> train_x(xs.begin(), xs.begin() + 600);
  const std::vector<double> train_y(ys.begin(), ys.begin() + 600);

  ModelConfig frozen_config = SmallModel();
  frozen_config.adaptive = false;
  PairModel frozen = PairModel::Learn(train_x, train_y, frozen_config);

  RetrainerConfig cadence = FastCadence();
  cadence.window_samples = 600;
  cadence.interval_samples = 200;
  RollingPairRetrainer rolling(train_x, train_y, SmallModel(), cadence);

  double rolling_sum = 0.0;
  std::size_t frozen_n = 0, rolling_n = 0, frozen_outliers = 0;
  for (std::size_t i = 600; i < xs.size(); ++i) {
    const StepOutcome f = frozen.Step(xs[i], ys[i]);
    if (f.has_score) ++frozen_n;
    if (f.outlier) ++frozen_outliers;
    const StepOutcome r = rolling.Step(xs[i], ys[i]);
    if (r.has_score) {
      rolling_sum += r.fitness;
      ++rolling_n;
    }
  }
  // The frozen model's failure mode under drift is *silence*: the tail
  // leaves its grid, so most samples are outliers or unscorable. The
  // rolling model keeps full coverage at high fitness.
  ASSERT_GT(rolling_n, 2000u);
  EXPECT_LT(frozen_n, rolling_n / 2);
  EXPECT_GT(frozen_outliers, 500u);
  EXPECT_GT(rolling_sum / static_cast<double>(rolling_n), 0.85);
  EXPECT_GE(rolling.Rebuilds(), 10u);
}

TEST(Retrainer, HandlesMissingSamplesInWindow) {
  std::vector<double> xs, ys;
  MakeDrifting(500, 0.0, 9, &xs, &ys);
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), FastCadence());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 150; ++i) {
    const StepOutcome out =
        retrainer.Step(i % 10 == 0 ? nan : xs[static_cast<std::size_t>(i)],
                       ys[static_cast<std::size_t>(i)]);
    if (i % 10 == 0) {
      EXPECT_TRUE(out.missing);
    }
  }
  EXPECT_GE(retrainer.Rebuilds(), 1u);  // rebuild digested the NaNs
}

std::string Serialize(const PairModel& model) {
  std::ostringstream out;
  SavePairModel(model, out);
  return out.str();
}

TEST(RetrainerBackground, RebuildsAndAdoptsOnCadence) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 3, &xs, &ys);
  RetrainerConfig config = FastCadence();
  config.background = true;
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), config);
  EXPECT_EQ(retrainer.Rebuilds(), 0u);
  // Drive to the cadence point, let the worker finish, then confirm the
  // fresh model is only adopted by the NEXT Step (the sample boundary).
  for (int i = 0; i < 100; ++i) {
    retrainer.Step(xs[static_cast<std::size_t>(i)],
                   ys[static_cast<std::size_t>(i)]);
  }
  retrainer.WaitForPendingRebuild();
  EXPECT_EQ(retrainer.Rebuilds(), 0u);  // built, not yet adopted
  retrainer.Step(xs[100], ys[100]);
  EXPECT_EQ(retrainer.Rebuilds(), 1u);  // adopted at the boundary
  for (int i = 101; i < 210; ++i) {
    retrainer.Step(xs[static_cast<std::size_t>(i)],
                   ys[static_cast<std::size_t>(i)]);
    retrainer.WaitForPendingRebuild();
  }
  EXPECT_EQ(retrainer.Rebuilds(), 2u);  // second cadence fired and landed
}

TEST(RetrainerBackground, AdoptedModelEqualsLearnOfWindowSnapshot) {
  std::vector<double> xs, ys;
  MakeDrifting(900, 0.02, 13, &xs, &ys);
  RetrainerConfig config = FastCadence();
  config.background = true;
  RollingPairRetrainer retrainer(
      std::vector<double>(xs.begin(), xs.begin() + 400),
      std::vector<double>(ys.begin(), ys.begin() + 400), SmallModel(), config);
  // Step exactly to the cadence point; the snapshot the worker learns
  // from is the window as of that Step.
  for (std::size_t i = 400; i < 500; ++i) retrainer.Step(xs[i], ys[i]);
  const std::vector<double> wx(xs.begin() + 100, xs.begin() + 500);
  const std::vector<double> wy(ys.begin() + 100, ys.begin() + 500);
  ASSERT_EQ(retrainer.WindowSize(), wx.size());
  const PairModel expected = PairModel::Learn(wx, wy, SmallModel());
  retrainer.WaitForPendingRebuild();
  // Freeze further cadences: the next Step adopts, and until sample 600
  // no new rebuild replaces the adopted model, so Model() reflects the
  // snapshot-trained model plus exactly the online steps we fed it.
  retrainer.Step(xs[500], ys[500]);
  EXPECT_EQ(retrainer.Rebuilds(), 1u);
  PairModel oracle = expected;
  oracle.Step(xs[500], ys[500]);
  EXPECT_EQ(Serialize(retrainer.Model()), Serialize(oracle));
}

TEST(RetrainerBackground, StepNeverPaysTheRebuildInline) {
  // Big window + forcibly fine grid: the inline rebuild in synchronous
  // mode costs tens of milliseconds, far above a plain Step. In
  // background mode the cadence Step only snapshots the window; a
  // concurrent Step can still lose the core to the worker for a
  // scheduler timeslice (single-CPU boxes), but never for the full
  // rebuild — so its worst case must sit well below the synchronous
  // worst case measured in the same process (same-process A/B; absolute
  // timings are unreliable on shared machines).
  std::vector<double> xs, ys;
  MakeDrifting(50000, 0.0, 17, &xs, &ys);
  ModelConfig model_config;
  model_config.partition.units = 120;
  model_config.partition.min_intervals = 40;
  model_config.partition.max_intervals = 48;
  RetrainerConfig config;
  config.window_samples = 50000;
  config.interval_samples = 600;
  config.min_samples = 1000;

  const auto run = [&](bool background) {
    config.background = background;
    RollingPairRetrainer retrainer(xs, ys, model_config, config);
    std::chrono::nanoseconds worst{0};
    for (std::size_t i = 0; i < 1200; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      retrainer.Step(xs[i], ys[i]);
      const auto dt = std::chrono::steady_clock::now() - t0;
      if (dt > worst) worst = dt;
    }
    return worst;
  };

  const std::chrono::nanoseconds sync_worst = run(false);
  const std::chrono::nanoseconds background_worst = run(true);
  EXPECT_LT(background_worst, sync_worst / 4)
      << "sync worst " << sync_worst.count() << "ns, background worst "
      << background_worst.count() << "ns";
}

TEST(RetrainerBackground, TracksDriftLikeSynchronousMode) {
  std::vector<double> xs, ys;
  MakeDrifting(3000, 0.05, 7, &xs, &ys);
  const std::vector<double> train_x(xs.begin(), xs.begin() + 600);
  const std::vector<double> train_y(ys.begin(), ys.begin() + 600);
  RetrainerConfig cadence = FastCadence();
  cadence.window_samples = 600;
  cadence.interval_samples = 200;
  cadence.background = true;
  RollingPairRetrainer rolling(train_x, train_y, SmallModel(), cadence);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 600; i < xs.size(); ++i) {
    const StepOutcome r = rolling.Step(xs[i], ys[i]);
    if (r.has_score) {
      sum += r.fitness;
      ++n;
    }
    // Keep the test deterministic-ish on slow machines: let every
    // scheduled rebuild finish so adoptions actually happen under drift.
    if (rolling.RebuildInFlight()) rolling.WaitForPendingRebuild();
  }
  ASSERT_GT(n, 2000u);
  EXPECT_GT(sum / static_cast<double>(n), 0.85);
  EXPECT_GE(rolling.Rebuilds(), 10u);
}

TEST(Retrainer, FailedSyncRebuildKeepsServingAndCounts) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 19, &xs, &ys);
  RetrainerConfig config = FastCadence();
  config.rebuild_override = [](std::span<const double>,
                               std::span<const double>,
                               const ModelConfig&) -> PairModel {
    throw std::runtime_error("kaboom: synthetic rebuild failure");
  };
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), config);
  // The constructor's initial learn does not go through the override.
  EXPECT_EQ(retrainer.FailedRebuilds(), 0u);

  std::size_t scored = 0;
  for (int i = 0; i < 250; ++i) {
    const StepOutcome out =
        retrainer.Step(xs[static_cast<std::size_t>(i)],
                       ys[static_cast<std::size_t>(i)]);
    if (out.has_score) ++scored;
  }
  // Both cadence points (100 and 200) attempted and failed; the serving
  // model never stopped scoring.
  EXPECT_EQ(retrainer.FailedRebuilds(), 2u);
  EXPECT_EQ(retrainer.Rebuilds(), 0u);
  EXPECT_NE(retrainer.LastRebuildError().find("kaboom"), std::string::npos);
  EXPECT_GT(scored, 200u);
}

TEST(RetrainerBackground, FailedBackgroundRebuildKeepsServingAndCounts) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 23, &xs, &ys);
  RetrainerConfig config = FastCadence();
  config.background = true;
  config.rebuild_override = [](std::span<const double>,
                               std::span<const double>,
                               const ModelConfig&) -> PairModel {
    throw std::runtime_error("kaboom: background rebuild failure");
  };
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), config);
  std::size_t scored = 0;
  for (int i = 0; i < 250; ++i) {
    const StepOutcome out =
        retrainer.Step(xs[static_cast<std::size_t>(i)],
                       ys[static_cast<std::size_t>(i)]);
    if (out.has_score) ++scored;
    // Drain each failure before the next cadence so the count below is
    // deterministic.
    retrainer.WaitForPendingRebuild();
  }
  EXPECT_EQ(retrainer.FailedRebuilds(), 2u);
  EXPECT_EQ(retrainer.Rebuilds(), 0u);
  EXPECT_FALSE(retrainer.RebuildInFlight());
  EXPECT_NE(retrainer.LastRebuildError().find("kaboom"), std::string::npos);
  EXPECT_GT(scored, 200u);
}

TEST(RetrainerBackground, WatchdogAbandonsWedgedRebuildAndSlotReopens) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 29, &xs, &ys);

  // Deterministic time: the watchdog reads this fake clock, so "wedged
  // past the deadline" is an explicit statement, not a sleep race.
  std::atomic<std::int64_t> now_ns{0};
  std::atomic<bool> release{false};
  std::atomic<int> rebuild_calls{0};
  RetrainerConfig config = FastCadence();
  config.background = true;
  config.watchdog_ms = 10;
  config.clock = [&now_ns] { return now_ns.load(); };
  config.rebuild_override = [&](std::span<const double> x,
                                std::span<const double> y,
                                const ModelConfig& model_config) {
    if (rebuild_calls.fetch_add(1) == 0) {
      // First rebuild wedges until the test releases it.
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return PairModel::Learn(x, y, model_config);
  };
  RollingPairRetrainer retrainer(xs, ys, SmallModel(), config);

  // Fire the first cadence and wait for the worker to pick the job up.
  for (int i = 0; i < 100; ++i) {
    retrainer.Step(xs[static_cast<std::size_t>(i)],
                   ys[static_cast<std::size_t>(i)]);
  }
  while (rebuild_calls.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(retrainer.RebuildInFlight());

  // The rebuild grinds past its deadline; the next Step's watchdog check
  // writes it off. Waiters stop waiting even though the worker thread is
  // still stuck inside the override.
  now_ns.fetch_add(20 * 1'000'000);  // 20ms > watchdog_ms
  retrainer.Step(xs[100], ys[100]);
  EXPECT_EQ(retrainer.AbandonedRebuilds(), 1u);
  EXPECT_FALSE(retrainer.RebuildInFlight());
  retrainer.WaitForPendingRebuild();  // must return, not hang
  EXPECT_EQ(retrainer.Rebuilds(), 0u);

  // Unwedge: the abandoned rebuild's result must be discarded, not
  // adopted.
  release.store(true);
  retrainer.WaitForPendingRebuild();
  retrainer.Step(xs[101], ys[101]);
  EXPECT_EQ(retrainer.Rebuilds(), 0u);

  // The slot reopened: the next cadence rebuilds (fast this time) and
  // its model is adopted normally.
  for (int i = 102; i < 250 && retrainer.Rebuilds() == 0; ++i) {
    retrainer.Step(xs[static_cast<std::size_t>(i % 300)],
                   ys[static_cast<std::size_t>(i % 300)]);
    retrainer.WaitForPendingRebuild();
  }
  EXPECT_GE(retrainer.Rebuilds(), 1u);
  EXPECT_GE(rebuild_calls.load(), 2);
  EXPECT_EQ(retrainer.AbandonedRebuilds(), 1u);
}

}  // namespace
}  // namespace pmcorr
