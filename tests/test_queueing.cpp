// Tests for the M/M/c/K queue simulator, including validation of the
// generator's closed-form queueing response against the event-driven
// ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "telemetry/queueing.h"
#include "telemetry/response.h"

namespace pmcorr {
namespace {

QueueConfig Config(std::size_t servers, double mu,
                   std::size_t capacity = 100000) {
  QueueConfig config;
  config.servers = servers;
  config.service_rate = mu;
  config.capacity = capacity;
  return config;
}

TEST(ErlangC, KnownValues) {
  // Single server: Erlang-C equals rho.
  EXPECT_NEAR(ErlangC(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(ErlangC(0.9, 1), 0.9, 1e-12);
  // Saturated: probability of waiting -> 1.
  EXPECT_DOUBLE_EQ(ErlangC(5.0, 4), 1.0);
  // c=2, a=1 (rho=0.5): C = 1/3 (textbook value).
  EXPECT_NEAR(ErlangC(1.0, 2), 1.0 / 3.0, 1e-12);
}

TEST(MmcMeanResponse, M_M_1_ClosedForm) {
  // M/M/1: T = 1 / (mu - lambda).
  EXPECT_NEAR(MmcMeanResponse(5.0, 10.0, 1), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(MmcMeanResponse(9.0, 10.0, 1), 1.0, 1e-12);
}

TEST(MmcQueue, MatchesErlangFormulaModerateLoad) {
  // lambda=15, mu=10, c=2 -> rho=0.75.
  MmcQueueSimulator sim(Config(2, 10.0));
  Rng rng(42);
  // Warm up past the transient, then measure.
  sim.Run(15.0, 500.0, rng);
  const QueueSimStats stats = sim.Run(15.0, 20000.0, rng);

  const double expected = MmcMeanResponse(15.0, 10.0, 2);
  EXPECT_NEAR(stats.mean_response, expected, expected * 0.08);
  EXPECT_NEAR(stats.utilization, 0.75, 0.03);
  // Little's law: E[N] = lambda * E[T].
  EXPECT_NEAR(stats.mean_in_system, 15.0 * expected, 15.0 * expected * 0.1);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(MmcQueue, LightLoadNoQueueing) {
  MmcQueueSimulator sim(Config(4, 20.0));
  Rng rng(7);
  const QueueSimStats stats = sim.Run(8.0, 5000.0, rng);
  // rho = 0.1: waits are negligible, response ~ one service time.
  EXPECT_NEAR(stats.mean_response, 0.05, 0.01);
  EXPECT_LT(stats.mean_wait, 0.005);
  EXPECT_NEAR(stats.utilization, 0.1, 0.02);
}

TEST(MmcQueue, OverloadDropsAtFiniteCapacity) {
  MmcQueueSimulator sim(Config(2, 10.0, 20));
  Rng rng(11);
  const QueueSimStats stats = sim.Run(40.0, 2000.0, rng);  // 2x overload
  // Stable long-run throughput is capped at c*mu; the excess drops.
  EXPECT_GT(stats.DropFraction(), 0.3);
  EXPECT_NEAR(stats.utilization, 1.0, 0.02);
  EXPECT_LE(sim.InSystem(), 20u);
}

TEST(MmcQueue, StatePersistsAcrossRuns) {
  MmcQueueSimulator sim(Config(1, 10.0));
  Rng rng(13);
  sim.Run(9.0, 1000.0, rng);  // rho=0.9 builds a backlog
  const std::size_t backlog = sim.InSystem();
  // Drain with no arrivals: backlog empties.
  const QueueSimStats drain = sim.Run(0.0, 1000.0, rng);
  EXPECT_EQ(sim.InSystem(), 0u);
  EXPECT_GE(drain.completed, backlog);
}

TEST(MmcQueue, DeterministicForSeed) {
  MmcQueueSimulator a(Config(2, 10.0));
  MmcQueueSimulator b(Config(2, 10.0));
  Rng ra(99), rb(99);
  const QueueSimStats sa = a.Run(12.0, 500.0, ra);
  const QueueSimStats sb = b.Run(12.0, 500.0, rb);
  EXPECT_EQ(sa.completed, sb.completed);
  EXPECT_DOUBLE_EQ(sa.mean_response, sb.mean_response);
}

TEST(MmcQueue, GeneratorQueueingCurveTracksSimulator) {
  // The trace generator's QueueingResponse(base, u_max) models response
  // time as base/(1-u). Against an M/M/1 simulator with service time
  // `base`, that is exact: T = (1/mu)/(1-rho). Check at several loads.
  const double mu = 20.0;  // base service time 50 ms
  const QueueingResponse response(1.0 / mu * 1000.0, 0.95);  // in ms
  Rng rng(17);
  for (double rho : {0.3, 0.6, 0.8}) {
    MmcQueueSimulator sim(Config(1, mu));
    sim.Run(rho * mu, 300.0, rng);  // warm-up
    const QueueSimStats stats = sim.Run(rho * mu, 8000.0, rng);
    const double predicted_ms = response.Value(rho);
    EXPECT_NEAR(stats.mean_response * 1000.0, predicted_ms,
                predicted_ms * 0.12)
        << "rho=" << rho;
  }
}

TEST(MmcQueue, P95AboveMean) {
  MmcQueueSimulator sim(Config(2, 10.0));
  Rng rng(23);
  const QueueSimStats stats = sim.Run(14.0, 3000.0, rng);
  EXPECT_GT(stats.p95_response, stats.mean_response);
}

}  // namespace
}  // namespace pmcorr
