// Tests for the markdown report writer and the logging sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "io/report.h"

namespace pmcorr {
namespace {

TEST(MarkdownReport, AssemblesSectionsAndTables) {
  MarkdownReport report("Experiment 7");
  report.Section("Setup");
  report.Paragraph("Three groups, one month of data.");
  TextTable table;
  table.SetHeader({"group", "score"});
  table.Row().Cell("A").Num(0.95, 2).Done();
  report.Table(table);

  const std::string& text = report.Text();
  EXPECT_NE(text.find("# Experiment 7"), std::string::npos);
  EXPECT_NE(text.find("## Setup"), std::string::npos);
  EXPECT_NE(text.find("Three groups"), std::string::npos);
  EXPECT_NE(text.find("```"), std::string::npos);
  EXPECT_NE(text.find("0.95"), std::string::npos);
}

TEST(MarkdownReport, WritesToDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pmcorr_report.md").string();
  MarkdownReport report("On disk");
  report.Paragraph("body");
  report.Write(path);

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.Text());
  std::remove(path.c_str());
}

TEST(MarkdownReport, WriteFailureThrows) {
  MarkdownReport report("nope");
  EXPECT_THROW(report.Write("/nonexistent/dir/report.md"),
               std::runtime_error);
}

TEST(Logging, LevelGatesMessages) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped inside LogMessage (no crash,
  // nothing observable); above-threshold messages emit to stderr.
  LogMessage(LogLevel::kDebug, "dropped");
  LogMessage(LogLevel::kError, "emitted");
  // The macro compiles and short-circuits below the level.
  PMCORR_LOG(kDebug) << "also dropped " << 42;
  PMCORR_LOG(kError) << "also emitted " << 42;
  SetLogLevel(before);
}

TEST(Logging, OffSilencesEverything) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  LogMessage(LogLevel::kError, "must not crash");
  SetLogLevel(before);
}

}  // namespace
}  // namespace pmcorr
