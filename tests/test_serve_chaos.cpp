// Chaos harness for the serve subsystem's crash story, choreographed
// deterministically through manual-pump tenants: kill points swept
// across cadence checkpoints (every crash recovers a state the tenant
// actually reached, and the resumed run is bitwise-identical to a
// never-crashed oracle), torn final writes falling back a generation,
// poisoned tenants leaving their last-good checkpoint untouched, and
// the graceful-shutdown contract — drain checkpoints every tenant and
// a restart resumes exactly where the drained daemon stopped.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "io/atomic_file.h"
#include "io/monitor_io.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace pmcorr {
namespace {

using difftest::CheckpointString;

MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 1;
  return config;
}

std::unique_ptr<SystemMonitor> MakeMonitor(std::uint64_t seed = 11) {
  const MeasurementFrame history = CorrelatedFrame(300, seed);
  return std::make_unique<SystemMonitor>(
      history, MeasurementGraph::FullMesh(history.MeasurementCount()),
      SmallConfig());
}

std::vector<SampleRow> Rows(const MeasurementFrame& frame) {
  std::vector<SampleRow> rows;
  rows.reserve(frame.SampleCount());
  for (std::size_t t = 0; t < frame.SampleCount(); ++t) {
    SampleRow row;
    row.time = frame.TimeAt(t);
    for (std::size_t a = 0; a < frame.MeasurementCount(); ++a) {
      row.values.push_back(
          frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::unique_ptr<SystemMonitor> FromString(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  return LoadSystemMonitor(in, 1);
}

class ChaosDir {
 public:
  explicit ChaosDir(const std::string& name)
      : dir_(std::filesystem::path(testing::TempDir()) / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ChaosDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  std::string Path(const std::string& file) const {
    return (dir_ / file).string();
  }

 private:
  std::filesystem::path dir_;
};

TenantConfig ManualTenant(const std::string& name,
                          const std::string& checkpoint_path = "",
                          std::size_t checkpoint_every = 0) {
  TenantConfig config;
  config.name = name;
  config.queue_budget = 512;
  config.threaded = false;
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_every = checkpoint_every;
  return config;
}

// ---------------------------------------------------------------------
// Kill-point sweep: crash during any cadence checkpoint, recover, and
// the resumed run matches a never-crashed oracle bitwise.
// ---------------------------------------------------------------------

TEST(ServeChaos, EveryCheckpointKillPointRecoversToLastGood) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(60, 101));
  constexpr std::size_t kCadence = 20;

  // Reference pass, no faults: record the tenant's render at each
  // checkpoint boundary — the only states a recovery may land on.
  ChaosDir ref_dir("pmcorr_serve_chaos_ref");
  std::vector<std::string> good_renders;  // render after 20, 40, 60 rows
  {
    TenantRuntime tenant(
        ManualTenant("A", ref_dir.Path("a.ckpt"), kCadence), MakeMonitor());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      tenant.Submit(rows[i]);
      tenant.Pump(1);
      if ((i + 1) % kCadence == 0) {
        good_renders.push_back(CheckpointString(tenant.Monitor()));
      }
    }
    ASSERT_EQ(tenant.Status().counters.checkpoints, 3u);
  }
  ASSERT_EQ(good_renders.size(), 3u);

  // Count the write points of the second checkpoint (the one we crash).
  long long write_points = 0;
  {
    ChaosDir dir("pmcorr_serve_chaos_probe");
    TenantRuntime tenant(ManualTenant("A", dir.Path("a.ckpt"), kCadence),
                         MakeMonitor());
    for (std::size_t i = 0; i < kCadence; ++i) {
      tenant.Submit(rows[i]);
      tenant.Pump(1);
    }
    ScopedWriteFault probe(-1);  // count only
    for (std::size_t i = kCadence; i < 2 * kCadence; ++i) {
      tenant.Submit(rows[i]);
      tenant.Pump(1);
    }
    write_points = probe.Seen();
    ASSERT_GT(write_points, 0);
  }

  for (long long kill = 0; kill < write_points; ++kill) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    ChaosDir dir("pmcorr_serve_chaos_kill");
    const std::string path = dir.Path("a.ckpt");
    {
      TenantRuntime tenant(ManualTenant("A", path, kCadence),
                           MakeMonitor());
      for (std::size_t i = 0; i < kCadence; ++i) {
        tenant.Submit(rows[i]);
        tenant.Pump(1);
      }
      ASSERT_EQ(tenant.Status().counters.checkpoints, 1u);
      // Crash mid-save of checkpoint 2: the tenant must absorb the
      // failure (counted, not fatal) and keep serving.
      {
        ScopedWriteFault crash(kill);
        for (std::size_t i = kCadence; i < 2 * kCadence; ++i) {
          tenant.Submit(rows[i]);
          tenant.Pump(1);
        }
      }
      const TenantStatus status = tenant.Status();
      EXPECT_EQ(status.counters.processed, 2 * kCadence);
      EXPECT_EQ(status.counters.checkpoints +
                    status.counters.checkpoint_failures,
                2u);
      // The process "dies" here: destructor, no drain, no final save.
    }

    // Recovery must land on a state the tenant actually reached —
    // checkpoint 2 if its save got far enough, else checkpoint 1.
    CheckpointRecoveryInfo info;
    auto recovered = LoadSystemMonitor(path, 1, &info);
    const std::string render = CheckpointString(*recovered);
    ASSERT_TRUE(render == good_renders[0] || render == good_renders[1])
        << "recovered a state the tenant never reached";

    // Resume: a tenant rebuilt from the recovered monitor, fed the rest
    // of the stream, must equal the never-crashed oracle resumed from
    // the same state — bitwise, through the serve path.
    const std::size_t resume_from =
        render == good_renders[1] ? 2 * kCadence : kCadence;
    TenantRuntime resumed(ManualTenant("A"), std::move(recovered));
    auto oracle = FromString(render == good_renders[1] ? good_renders[1]
                                                       : good_renders[0]);
    for (std::size_t i = resume_from; i < rows.size(); ++i) {
      resumed.Submit(rows[i]);
      resumed.Pump(1);
      oracle->Step(rows[i].values, rows[i].time);
    }
    EXPECT_EQ(CheckpointString(resumed.Monitor()), CheckpointString(*oracle));
  }
}

// ---------------------------------------------------------------------
// Torn final write: the drain seal fails, the previous generation must
// still be loadable and the failure visible in the drain report.
// ---------------------------------------------------------------------

TEST(ServeChaos, TornDrainSealFallsBackOneGeneration) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(40, 111));
  ChaosDir dir("pmcorr_serve_chaos_torn");
  const std::string path = dir.Path("a.ckpt");

  ServeCore core;
  core.AddTenant(ManualTenant("A", path, 20), MakeMonitor());
  TenantRuntime& tenant = core.Tenant(0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    tenant.Submit(rows[i]);
    tenant.Pump(1);
  }
  ASSERT_EQ(tenant.Status().counters.checkpoints, 2u);

  DrainedReply drained;
  {
    ScopedWriteFault torn(0);  // dies on the seal's very first write
    drained = core.Drain();
  }
  // The drain still completes — every queued row processed — but the
  // report is honest about the failed seal.
  ASSERT_EQ(drained.tenants.size(), 1u);
  EXPECT_EQ(drained.tenants[0].state,
            static_cast<std::uint8_t>(TenantState::kDrained));
  EXPECT_EQ(drained.tenants[0].processed, rows.size());
  EXPECT_EQ(drained.tenants[0].checkpoint, 2);  // failed
  EXPECT_EQ(tenant.Status().counters.checkpoint_failures, 1u);

  // The seal rotated the primary into .g1 before the write died, so the
  // primary slot is empty — but nothing torn is loadable, and recovery
  // probes straight through to the last cadence checkpoint (40 rows,
  // exactly the live engine's state) one generation back.
  EXPECT_FALSE(std::filesystem::exists(path));
  CheckpointRecoveryInfo info;
  auto recovered = LoadSystemMonitor(path, 1, &info);
  EXPECT_EQ(CheckpointString(*recovered), CheckpointString(tenant.Monitor()));
  EXPECT_EQ(info.generation, 1u);
}

// ---------------------------------------------------------------------
// Poison + checkpoint interplay: a poisoned tenant's last-good
// checkpoint survives, and its healthy neighbor drains normally.
// ---------------------------------------------------------------------

TEST(ServeChaos, PoisonedTenantKeepsLastGoodCheckpointAndNeighborDrains) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(50, 121));
  ChaosDir dir("pmcorr_serve_chaos_poison");

  ServeCore core;
  TenantConfig poisoned = ManualTenant("A", dir.Path("a.ckpt"), 20);
  poisoned.chaos_hook = [](std::uint64_t row) {
    if (row == 30) throw std::runtime_error("poison pill");
  };
  core.AddTenant(poisoned, MakeMonitor(122));
  core.AddTenant(ManualTenant("B", dir.Path("b.ckpt"), 20),
                 MakeMonitor(123));
  auto solo = MakeMonitor(123);

  std::string last_good;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    core.Tenant(0).Submit(rows[i]);
    core.Tenant(0).Pump(1);
    core.Tenant(1).Submit(rows[i]);
    core.Tenant(1).Pump(1);
    solo->Step(rows[i].values, rows[i].time);
    if (i + 1 == 20) last_good = CheckpointString(core.Tenant(0).Monitor());
  }
  ASSERT_EQ(core.Tenant(0).State(), TenantState::kPoisoned);

  const DrainedReply drained = core.Drain();
  EXPECT_EQ(drained.tenants[0].state,
            static_cast<std::uint8_t>(TenantState::kPoisoned));
  EXPECT_EQ(drained.tenants[0].checkpoint, 2);  // no good final seal
  EXPECT_EQ(drained.tenants[1].state,
            static_cast<std::uint8_t>(TenantState::kDrained));
  EXPECT_EQ(drained.tenants[1].checkpoint, 1);

  // A's checkpoint is exactly the last cadence save before the poison —
  // the drain did not touch it.
  EXPECT_EQ(CheckpointString(*LoadSystemMonitor(dir.Path("a.ckpt"), 1)),
            last_good);
  // B's seal equals the solo run: the neighbor's death cost B nothing.
  EXPECT_EQ(CheckpointString(*LoadSystemMonitor(dir.Path("b.ckpt"), 1)),
            CheckpointString(*solo));
}

// ---------------------------------------------------------------------
// Graceful shutdown with real worker threads: drain checkpoints every
// tenant, and a restarted daemon resumes bitwise where it stopped.
// ---------------------------------------------------------------------

TEST(ServeChaos, DrainCheckpointsEveryTenantAndRestartResumes) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(80, 131));
  ChaosDir dir("pmcorr_serve_chaos_drain");

  std::vector<std::string> sealed_renders(2);
  {
    ServeCore core;
    for (int t = 0; t < 2; ++t) {
      TenantConfig config;  // threaded: the real daemon lifecycle
      config.name = t == 0 ? "A" : "B";
      config.queue_budget = 256;
      config.checkpoint_path =
          dir.Path(std::string(t == 0 ? "a" : "b") + ".ckpt");
      core.AddTenant(config,
                     MakeMonitor(132 + static_cast<std::uint64_t>(t)));
    }
    // First half of the stream to both tenants, then SIGTERM-style
    // drain: queues finish, every tenant seals a final checkpoint.
    for (std::size_t i = 0; i < rows.size() / 2; ++i) {
      ASSERT_TRUE(core.Tenant(0).Submit(rows[i]).accepted);
      ASSERT_TRUE(core.Tenant(1).Submit(rows[i]).accepted);
    }
    const DrainedReply drained = core.Drain();
    for (int t = 0; t < 2; ++t) {
      EXPECT_EQ(drained.tenants[static_cast<std::size_t>(t)].processed,
                rows.size() / 2);
      EXPECT_EQ(drained.tenants[static_cast<std::size_t>(t)].checkpoint, 1);
      // Every accepted row reached the engine before the seal.
      sealed_renders[static_cast<std::size_t>(t)] =
          CheckpointString(core.Tenant(static_cast<std::size_t>(t)).Monitor());
    }
  }

  // "Restart": load each tenant from its sealed checkpoint. The file
  // must hold the exact drained state.
  for (int t = 0; t < 2; ++t) {
    const std::string path =
        dir.Path(std::string(t == 0 ? "a" : "b") + ".ckpt");
    auto restored = LoadSystemMonitor(path, 1);
    ASSERT_EQ(CheckpointString(*restored),
              sealed_renders[static_cast<std::size_t>(t)])
        << "seal of tenant " << t << " lost state";

    // Resume the second half through a fresh tenant; the never-stopped
    // oracle is the same sealed state fed the same rows directly.
    TenantRuntime resumed(ManualTenant("R"), std::move(restored));
    auto oracle = FromString(sealed_renders[static_cast<std::size_t>(t)]);
    for (std::size_t i = rows.size() / 2; i < rows.size(); ++i) {
      ASSERT_TRUE(resumed.Submit(rows[i]).accepted);
      resumed.Pump(1);
      oracle->Step(rows[i].values, rows[i].time);
    }
    EXPECT_EQ(CheckpointString(resumed.Monitor()), CheckpointString(*oracle));
  }
}

// ---------------------------------------------------------------------
// Abrupt destruction (the crash path) drops queued rows without
// touching disk: recovery sees the last cadence checkpoint only.
// ---------------------------------------------------------------------

TEST(ServeChaos, DestructionWithoutDrainWritesNothing) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(30, 141));
  ChaosDir dir("pmcorr_serve_chaos_crash");
  const std::string path = dir.Path("a.ckpt");

  std::string cadence_render;
  {
    TenantRuntime tenant(ManualTenant("A", path, 10), MakeMonitor());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      tenant.Submit(rows[i]);
      if (i < 25) tenant.Pump(1);  // 5 rows left in the queue at "crash"
      if (i + 1 == 20) cadence_render = CheckpointString(tenant.Monitor());
    }
    EXPECT_EQ(tenant.Status().queue_rows, 5u);
    // Destructor: the crash. No drain, no seal.
  }
  EXPECT_EQ(CheckpointString(*LoadSystemMonitor(path, 1)), cadence_render);
  EXPECT_FALSE(std::filesystem::exists(path + ".g2"));
}

}  // namespace
}  // namespace pmcorr
