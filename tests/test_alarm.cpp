// Tests for alarm-window extraction and the alarm log.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "engine/alarm.h"

namespace pmcorr {
namespace {

TEST(ExtractLowScoreWindows, FindsMaximalRuns) {
  const std::vector<double> scores = {0.9, 0.4, 0.3, 0.95, 0.2, 0.9};
  const auto windows = ExtractLowScoreWindows(scores, 1000, 60, 0.5);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].first_sample, 1u);
  EXPECT_EQ(windows[0].last_sample, 2u);
  EXPECT_EQ(windows[0].start, 1060);
  EXPECT_EQ(windows[0].end, 1180);
  EXPECT_DOUBLE_EQ(windows[0].min_score, 0.3);
  EXPECT_EQ(windows[1].first_sample, 4u);
  EXPECT_EQ(windows[1].Length(), 1u);
}

TEST(ExtractLowScoreWindows, ThresholdIsStrict) {
  const std::vector<double> scores = {0.5, 0.5};
  EXPECT_TRUE(ExtractLowScoreWindows(scores, 0, 60, 0.5).empty());
}

TEST(ExtractLowScoreWindows, MinLengthDebounces) {
  const std::vector<double> scores = {0.1, 0.9, 0.1, 0.1, 0.9};
  const auto windows = ExtractLowScoreWindows(scores, 0, 60, 0.5, 2);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].first_sample, 2u);
}

TEST(ExtractLowScoreWindows, DisengagedSamplesBreakWindows) {
  const std::vector<std::optional<double>> scores = {0.1, std::nullopt, 0.1};
  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(scores), 0, 60, 0.5);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].Length(), 1u);
  EXPECT_EQ(windows[1].Length(), 1u);
}

TEST(ExtractLowScoreWindows, EmptyAndAllHigh) {
  EXPECT_TRUE(
      ExtractLowScoreWindows(std::span<const double>{}, 0, 60, 0.5).empty());
  const std::vector<double> high = {0.9, 1.0, 0.8};
  EXPECT_TRUE(ExtractLowScoreWindows(high, 0, 60, 0.5).empty());
}

TEST(ExtractLowScoreWindows, WindowAtSeriesEndCloses) {
  const std::vector<double> scores = {0.9, 0.1, 0.1};
  const auto windows = ExtractLowScoreWindows(scores, 0, 60, 0.5);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].last_sample, 2u);
  EXPECT_EQ(windows[0].end, 180);
}

TEST(AnyWindowOverlaps, HalfOpenSemantics) {
  ScoreWindow w;
  w.start = 100;
  w.end = 200;
  EXPECT_TRUE(AnyWindowOverlaps({w}, 150, 250));
  EXPECT_TRUE(AnyWindowOverlaps({w}, 0, 101));
  EXPECT_FALSE(AnyWindowOverlaps({w}, 200, 300));  // touching, no overlap
  EXPECT_FALSE(AnyWindowOverlaps({w}, 0, 100));
  EXPECT_FALSE(AnyWindowOverlaps({}, 0, 1000));
}

TEST(AlarmLog, CountsAndRanksPairs) {
  AlarmLog log;
  for (int i = 0; i < 5; ++i) log.Record({100 + i, 2, 0.1, false});
  for (int i = 0; i < 3; ++i) log.Record({200 + i, 7, 0.0, true});
  log.Record({300, 1, 0.2, false});
  EXPECT_EQ(log.Count(), 9u);
  EXPECT_EQ(log.CountForPair(2), 5u);
  EXPECT_EQ(log.CountForPair(7), 3u);
  EXPECT_EQ(log.CountForPair(99), 0u);
  const auto noisy = log.NoisiestPairs(2);
  ASSERT_EQ(noisy.size(), 2u);
  EXPECT_EQ(noisy[0], 2u);
  EXPECT_EQ(noisy[1], 7u);
}

}  // namespace
}  // namespace pmcorr
