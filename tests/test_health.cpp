// Tests for the ingest guard (engine/health.h): stream-event detection
// against the cadence, frozen-value suppression, and the per-measurement
// health state machine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "engine/health.h"

namespace pmcorr {
namespace {

constexpr Duration kPeriod = 360;  // the paper's 6-minute cadence
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

HealthConfig Seeded() {
  HealthConfig config;
  config.expected_period = kPeriod;
  return config;
}

// A row whose values never repeat bitwise (so frozen detection is inert).
std::vector<double> Row(std::size_t m, int step) {
  std::vector<double> values(m);
  for (std::size_t i = 0; i < m; ++i) {
    values[i] = 10.0 * static_cast<double>(i + 1) +
                0.001 * static_cast<double>(step);
  }
  return values;
}

TEST(IngestGuard, CleanStreamPassesThroughUntouched) {
  IngestGuard guard(3, Seeded());
  for (int t = 0; t < 50; ++t) {
    std::vector<double> values = Row(3, t);
    const std::vector<double> original = values;
    const SampleReport report =
        guard.Filter(values, static_cast<TimePoint>(t) * kPeriod);
    EXPECT_EQ(report.event, StreamEvent::kNone);
    EXPECT_FALSE(report.sequence_break);
    EXPECT_EQ(report.suppressed, 0u);
    EXPECT_EQ(values, original);  // bitwise: exact doubles, no NaN
  }
  EXPECT_TRUE(guard.AllHealthy());
  EXPECT_EQ(guard.SuppressedTotal(), 0u);
  EXPECT_EQ(guard.GapCount(), 0u);
  EXPECT_EQ(guard.DuplicateCount(), 0u);
  EXPECT_EQ(guard.OutOfOrderCount(), 0u);
}

TEST(IngestGuard, LearnsCadenceFromFirstTwoDistinctTimestamps) {
  HealthConfig config;  // expected_period = 0: learn it
  IngestGuard guard(1, config);
  std::vector<double> v = {1.0};
  guard.Filter(v, 1000);
  EXPECT_EQ(guard.ExpectedPeriod(), 0);
  v[0] = 2.0;
  guard.Filter(v, 1000 + kPeriod);
  EXPECT_EQ(guard.ExpectedPeriod(), kPeriod);
  // Now a late arrival is a gap against the learned cadence.
  v[0] = 3.0;
  const SampleReport report = guard.Filter(v, 1000 + 4 * kPeriod);
  EXPECT_EQ(report.event, StreamEvent::kGap);
  EXPECT_TRUE(report.sequence_break);
}

TEST(IngestGuard, GapBreaksSequenceWithoutSuppressingValues) {
  IngestGuard guard(2, Seeded());
  std::vector<double> v = {1.0, 2.0};
  guard.Filter(v, 0);
  v = {1.5, 2.5};
  // Just inside late_factor * period: still on cadence.
  SampleReport report = guard.Filter(v, kPeriod * 3 / 2);
  EXPECT_EQ(report.event, StreamEvent::kNone);
  v = {1.7, 2.7};
  report = guard.Filter(v, kPeriod * 3 / 2 + 2 * kPeriod);
  EXPECT_EQ(report.event, StreamEvent::kGap);
  EXPECT_TRUE(report.sequence_break);
  EXPECT_EQ(report.suppressed, 0u);
  EXPECT_EQ(v[0], 1.7);  // values untouched: a gap loses time, not data
  EXPECT_EQ(guard.GapCount(), 1u);
}

TEST(IngestGuard, DuplicateTimestampSuppressesWholeRow) {
  IngestGuard guard(2, Seeded());
  std::vector<double> v = {1.0, 2.0};
  guard.Filter(v, kPeriod);
  v = {1.1, 2.1};
  const SampleReport report = guard.Filter(v, kPeriod);  // same timestamp
  EXPECT_EQ(report.event, StreamEvent::kDuplicate);
  EXPECT_TRUE(report.sequence_break);
  EXPECT_EQ(report.suppressed, 2u);
  EXPECT_TRUE(std::isnan(v[0]));
  EXPECT_TRUE(std::isnan(v[1]));
  EXPECT_EQ(guard.DuplicateCount(), 1u);
  // The stream clock did not advance: the next on-cadence sample is
  // judged against the original arrival, not the duplicate.
  v = {1.2, 2.2};
  const SampleReport next = guard.Filter(v, 2 * kPeriod);
  EXPECT_EQ(next.event, StreamEvent::kNone);
  EXPECT_EQ(next.suppressed, 0u);
}

TEST(IngestGuard, OutOfOrderSampleSuppressedAndClockHolds) {
  IngestGuard guard(1, Seeded());
  std::vector<double> v = {1.0};
  guard.Filter(v, 2 * kPeriod);
  v[0] = 2.0;
  const SampleReport report = guard.Filter(v, kPeriod);  // earlier
  EXPECT_EQ(report.event, StreamEvent::kOutOfOrder);
  EXPECT_TRUE(report.sequence_break);
  EXPECT_EQ(report.suppressed, 1u);
  EXPECT_TRUE(std::isnan(v[0]));
  EXPECT_EQ(guard.OutOfOrderCount(), 1u);
  v[0] = 3.0;
  const SampleReport next = guard.Filter(v, 3 * kPeriod);
  EXPECT_EQ(next.event, StreamEvent::kNone);
}

TEST(IngestGuard, DuplicateRowCountsOnlyRealValuesAsSuppressed) {
  IngestGuard guard(2, Seeded());
  std::vector<double> v = {1.0, 2.0};
  guard.Filter(v, kPeriod);
  v = {kNan, 2.1};  // one value already missing
  const SampleReport report = guard.Filter(v, kPeriod);
  EXPECT_EQ(report.event, StreamEvent::kDuplicate);
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(IngestGuard, FrozenValueSuppressedAtThresholdAndReleasedOnChange) {
  HealthConfig config = Seeded();
  config.frozen_after = 5;
  IngestGuard guard(2, config);
  const double frozen = 42.25;  // exact in binary: bitwise-stable repeats
  TimePoint tp = 0;
  for (int t = 0; t < 4; ++t) {
    std::vector<double> v = {frozen, Row(1, t)[0]};
    const SampleReport report = guard.Filter(v, tp);
    EXPECT_EQ(report.suppressed, 0u) << "arrival " << t;
    EXPECT_EQ(v[0], frozen);
    tp += kPeriod;
  }
  // Fifth identical arrival: the feed is wedged; suppress from here on.
  for (int t = 4; t < 10; ++t) {
    std::vector<double> v = {frozen, Row(1, t)[0]};
    const SampleReport report = guard.Filter(v, tp);
    EXPECT_EQ(report.suppressed, 1u) << "arrival " << t;
    EXPECT_TRUE(std::isnan(v[0]));
    EXPECT_FALSE(std::isnan(v[1]));  // the healthy feed is untouched
    tp += kPeriod;
  }
  // The value moves again: pass-through resumes immediately.
  std::vector<double> v = {frozen + 0.5, 1.0};
  const SampleReport report = guard.Filter(v, tp);
  EXPECT_EQ(report.suppressed, 0u);
  EXPECT_EQ(v[0], frozen + 0.5);
  EXPECT_EQ(guard.SuppressedTotal(), 6u);
}

TEST(IngestGuard, HealthDegradesToStaleThenDeadThenRecovers) {
  HealthConfig config = Seeded();
  config.stale_after = 4;
  config.dead_after = 8;
  config.recover_after = 3;
  IngestGuard guard(2, config);
  TimePoint tp = 0;
  const auto feed = [&](double first) {
    std::vector<double> v = {first, Row(1, static_cast<int>(tp))[0]};
    guard.Filter(v, tp);
    tp += kPeriod;
  };
  feed(1.0);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kHealthy);
  for (int t = 0; t < 3; ++t) feed(kNan);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kHealthy);  // 3 < stale_after
  feed(kNan);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kStale);
  EXPECT_FALSE(guard.AllHealthy());
  for (int t = 0; t < 3; ++t) feed(kNan);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kStale);  // 7 < dead_after
  feed(kNan);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kDead);
  // Recovery takes recover_after consecutive good samples.
  feed(2.0);
  feed(3.0);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kDead);
  feed(4.0);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kHealthy);
  EXPECT_TRUE(guard.AllHealthy());
  EXPECT_EQ(guard.HealthStates(),
            std::vector<MeasurementHealth>(2, MeasurementHealth::kHealthy));
}

TEST(IngestGuard, RepeatedDegradesWithinWindowMarkFlapping) {
  HealthConfig config = Seeded();
  config.stale_after = 2;
  config.recover_after = 2;
  config.dead_after = 50;
  config.flap_window = 64;
  config.flap_transitions = 3;
  IngestGuard guard(1, config);
  TimePoint tp = 0;
  const auto feed = [&](double v0) {
    std::vector<double> v = {v0};
    guard.Filter(v, tp);
    tp += kPeriod;
  };
  double fresh = 1.0;
  // Two full degrade/recover cycles (each leaves kHealthy once)...
  for (int cycle = 0; cycle < 2; ++cycle) {
    feed(kNan);
    feed(kNan);
    EXPECT_EQ(guard.Health(0), MeasurementHealth::kStale);
    feed(fresh += 1.0);
    feed(fresh += 1.0);
    EXPECT_EQ(guard.Health(0), MeasurementHealth::kHealthy);
  }
  // ...and the third degrade within the window tips it to flapping.
  feed(kNan);
  feed(kNan);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kFlapping);
  // A recovery streak still brings it home.
  feed(fresh += 1.0);
  feed(fresh += 1.0);
  EXPECT_EQ(guard.Health(0), MeasurementHealth::kHealthy);
}

TEST(IngestGuard, ResetTimingForgetsClockAndFrozenRuns) {
  HealthConfig config = Seeded();
  config.frozen_after = 3;
  IngestGuard guard(1, config);
  const double frozen = 7.0;
  std::vector<double> v = {frozen};
  for (int t = 0; t < 2; ++t) {
    v[0] = frozen;
    guard.Filter(v, static_cast<TimePoint>(t) * kPeriod);
  }
  guard.ResetTiming();
  // After the segment boundary: an "earlier" timestamp is not
  // out-of-order, and the frozen run restarts from scratch.
  v[0] = frozen;
  const SampleReport report = guard.Filter(v, 0);
  EXPECT_EQ(report.event, StreamEvent::kNone);
  EXPECT_EQ(report.suppressed, 0u);
  v[0] = frozen;
  EXPECT_EQ(guard.Filter(v, kPeriod).suppressed, 0u);
  v[0] = frozen;
  EXPECT_EQ(guard.Filter(v, 2 * kPeriod).suppressed, 1u);  // run hits 3
  // Lifetime counters survived the reset.
  EXPECT_EQ(guard.SuppressedTotal(), 1u);
}

TEST(IngestGuard, DisabledGuardIsInert) {
  HealthConfig config = Seeded();
  config.enabled = false;
  IngestGuard guard(2, config);
  std::vector<double> v = {1.0, 2.0};
  guard.Filter(v, kPeriod);
  const SampleReport report = guard.Filter(v, kPeriod);  // duplicate ts
  EXPECT_EQ(report.event, StreamEvent::kNone);
  EXPECT_FALSE(report.sequence_break);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_FALSE(guard.Enabled());
}

TEST(IngestGuard, RejectsBadConfigAndMismatchedRows) {
  HealthConfig config;
  config.late_factor = 0.5;
  EXPECT_THROW(IngestGuard(2, config), std::invalid_argument);
  IngestGuard guard(2, Seeded());
  std::vector<double> narrow = {1.0};
  EXPECT_THROW(guard.Filter(narrow, 0), std::invalid_argument);
}

TEST(IngestGuard, NamesCoverEveryEnumerator) {
  EXPECT_STREQ(MeasurementHealthName(MeasurementHealth::kHealthy), "healthy");
  EXPECT_STREQ(MeasurementHealthName(MeasurementHealth::kStale), "stale");
  EXPECT_STREQ(MeasurementHealthName(MeasurementHealth::kFlapping),
               "flapping");
  EXPECT_STREQ(MeasurementHealthName(MeasurementHealth::kDead), "dead");
  EXPECT_STREQ(StreamEventName(StreamEvent::kNone), "none");
  EXPECT_STREQ(StreamEventName(StreamEvent::kGap), "gap");
  EXPECT_STREQ(StreamEventName(StreamEvent::kDuplicate), "duplicate");
  EXPECT_STREQ(StreamEventName(StreamEvent::kOutOfOrder), "out-of-order");
}

}  // namespace
}  // namespace pmcorr
