// Serial-vs-batched equivalence for the monitoring engine.
//
// Every case runs the same scenario through the sample-major Step loop
// and through pair-major batched Run at 1, 2 and 8 threads (and several
// batch widths), asserting bitwise-identical snapshot streams, alarm
// logs, lifetime aggregates and checkpoints — see differential_util.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "differential_util.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

namespace pmcorr {
namespace {

using difftest::DifferentialCase;
using difftest::ExpectSerialAndBatchedEquivalent;

// Scenario 1: a small correlated system — 2 machines x 2 metrics driven
// by one load signal (optionally decoupling measurement 3 halfway).
MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed,
                                 bool break_m3_correlation_late = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3_correlation_late && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::clamp(walk, 20.0, 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  return config;
}

TEST(Differential, CleanSyntheticAcrossSeeds) {
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DifferentialCase c;
    c.history = CorrelatedFrame(1200, seed);
    c.test = CorrelatedFrame(300, seed + 1);
    c.graph = MeasurementGraph::FullMesh(4);
    c.config = SmallConfig();
    ExpectSerialAndBatchedEquivalent(c);
  }
}

TEST(Differential, BrokenCorrelationWithCalibratedAlarms) {
  for (std::uint64_t seed : {5u, 29u, 101u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DifferentialCase c;
    c.history = CorrelatedFrame(1600, seed);
    c.holdout = CorrelatedFrame(400, seed + 1);
    // Decoupled second half: alarms, outliers and grid extensions all
    // flow through the merge phase.
    c.test = CorrelatedFrame(400, seed + 2, true);
    c.graph = MeasurementGraph::FullMesh(4);
    c.config = SmallConfig();
    ExpectSerialAndBatchedEquivalent(c);
  }
}

TEST(Differential, MissingDataGaps) {
  DifferentialCase c;
  c.history = CorrelatedFrame(1400, 43);
  c.holdout = CorrelatedFrame(400, 44);
  // Knock out collector gaps in two measurements: missing samples break
  // transition sequences, which must re-engage identically in both paths
  // (including across batch boundaries — batch width 7 guarantees gaps
  // straddle merges).
  MeasurementFrame test = CorrelatedFrame(360, 45, true);
  {
    MeasurementFrame holed(test.StartTime(), test.Period());
    for (std::size_t m = 0; m < test.MeasurementCount(); ++m) {
      const auto id = MeasurementId(static_cast<std::int32_t>(m));
      std::vector<double> values(test.Series(id).Values().begin(),
                                 test.Series(id).Values().end());
      for (std::size_t t = 0; t < values.size(); ++t) {
        const bool gap_a = m == 1 && t % 37 < 3;
        const bool gap_b = m == 3 && t >= 100 && t < 120;
        if (gap_a || gap_b) {
          values[t] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      holed.Add(test.Info(id),
                TimeSeries(test.StartTime(), test.Period(),
                           std::move(values)));
    }
    test = std::move(holed);
  }
  c.test = std::move(test);
  c.graph = MeasurementGraph::FullMesh(4);
  c.config = SmallConfig();
  ExpectSerialAndBatchedEquivalent(c);
}

TEST(Differential, ResetSequencesMidStream) {
  DifferentialCase c;
  c.history = CorrelatedFrame(1200, 57);
  c.holdout = CorrelatedFrame(300, 58);
  c.test = CorrelatedFrame(300, 59, true);
  c.graph = MeasurementGraph::FullMesh(4);
  c.config = SmallConfig();
  c.reset_mid_stream = true;
  // Batch width 1 degenerates batched Run to sample-major stepping — the
  // merge phase must be exact even then.
  c.batch_sizes = {0, 7, 1};
  ExpectSerialAndBatchedEquivalent(c);
}

// Scenario from the paper's Section 6 setup: realistic telemetry with a
// fault injection, scored over a machine-neighborhood graph.
TEST(Differential, PaperScenarioNeighborhoodWithFault) {
  ScenarioConfig scenario_config;
  scenario_config.machine_count = 6;
  scenario_config.trace_days = 9;
  scenario_config.localization_fault = false;
  PaperScenario scenario = MakeGroupScenario('A', scenario_config);

  const TimePoint test_start = PaperTraceStart() + 8 * kDay;
  scenario.spec.faults.clear();
  FaultEvent fault;
  fault.machine = MachineId(2);
  fault.start = test_start + 10 * kHour;
  fault.end = test_start + 12 * kHour;
  fault.type = FaultType::kCorrelationBreak;
  fault.magnitude = 2.0;
  scenario.spec.faults.push_back(fault);

  const MeasurementFrame frame = GenerateTrace(scenario.spec);

  DifferentialCase c;
  c.history = frame.SliceByTime(PaperTraceStart(), test_start - kDay);
  c.holdout = frame.SliceByTime(test_start - kDay, test_start);
  c.test = frame.SliceByTime(test_start, test_start + kDay);
  c.graph = MeasurementGraph::Neighborhood(c.history, 1, 3);
  c.config.model.partition.units = 30;
  c.config.model.partition.max_intervals = 8;
  ExpectSerialAndBatchedEquivalent(c);
}

// Same telemetry family, association-driven graph, fixed alarm bounds
// instead of calibration (the two alarm-arming routes share nothing).
TEST(Differential, PaperScenarioByAssociationFixedThresholds) {
  ScenarioConfig scenario_config;
  scenario_config.machine_count = 6;
  scenario_config.trace_days = 9;
  scenario_config.localization_fault = false;
  scenario_config.seed = 4242;
  const PaperScenario scenario = MakeGroupScenario('B', scenario_config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const TimePoint test_start = PaperTraceStart() + 8 * kDay;

  DifferentialCase c;
  c.history = frame.SliceByTime(PaperTraceStart(), test_start);
  c.test = frame.SliceByTime(test_start, test_start + kDay);
  c.graph = MeasurementGraph::ByAssociation(c.history, 0.5, 2);
  c.config.model.partition.units = 30;
  c.config.model.partition.max_intervals = 8;
  c.config.model.fitness_alarm_threshold = 0.3;
  ExpectSerialAndBatchedEquivalent(c);
}

}  // namespace
}  // namespace pmcorr
