// Third batch of property tests: the full engine under a sweep of graph
// builders x fault types. Whatever goes wrong in the trace, the engine's
// outputs must stay well-formed: scores in [0,1], no NaNs, aggregation
// consistent, counters coherent.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "engine/monitor.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

namespace pmcorr {
namespace {

enum class GraphKind { kFullMesh, kNeighborhood, kByAssociation };

struct EngineCase {
  GraphKind graph;
  FaultType fault;
};

class EngineProperties : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineProperties, SnapshotsWellFormedUnderAnyFault) {
  const EngineCase& param = GetParam();

  ScenarioConfig scenario_config;
  scenario_config.machine_count = 6;
  scenario_config.trace_days = 9;
  scenario_config.localization_fault = false;
  PaperScenario scenario = MakeGroupScenario('A', scenario_config);

  // Replace the scenario's faults with the swept fault type over a
  // two-hour window on the test day, hitting a whole machine.
  const TimePoint test_start = PaperTraceStart() + 8 * kDay;
  scenario.spec.faults.clear();
  FaultEvent fault;
  fault.machine = MachineId(2);
  fault.start = test_start + 10 * kHour;
  fault.end = test_start + 12 * kHour;
  fault.type = param.fault;
  fault.magnitude = 2.0;
  scenario.spec.faults.push_back(fault);

  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), test_start);
  const MeasurementFrame test =
      frame.SliceByTime(test_start, test_start + kDay);

  MeasurementGraph graph;
  switch (param.graph) {
    case GraphKind::kFullMesh:
      graph = MeasurementGraph::FullMesh(train.MeasurementCount());
      break;
    case GraphKind::kNeighborhood:
      graph = MeasurementGraph::Neighborhood(train, 1, 3);
      break;
    case GraphKind::kByAssociation:
      graph = MeasurementGraph::ByAssociation(train, 0.5, 2);
      break;
  }

  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.model.fitness_alarm_threshold = 0.3;
  config.threads = 2;
  SystemMonitor monitor(train, graph, config);
  const auto snapshots = monitor.Run(test);

  ASSERT_EQ(snapshots.size(), test.SampleCount());
  for (const auto& snap : snapshots) {
    // Pair scores bounded, never NaN.
    for (const auto& s : snap.pair_scores) {
      if (!s) continue;
      EXPECT_FALSE(std::isnan(*s));
      EXPECT_GE(*s, 0.0);
      EXPECT_LE(*s, 1.0);
    }
    // Q^a consistency: mean over engaged pair scores of a's links.
    for (std::size_t a = 0; a < monitor.MeasurementCount(); ++a) {
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t pi : monitor.Graph().PairsOf(
               MeasurementId(static_cast<std::int32_t>(a)))) {
        if (snap.pair_scores[pi]) {
          sum += *snap.pair_scores[pi];
          ++n;
        }
      }
      ASSERT_EQ(snap.measurement_scores[a].has_value(), n > 0);
      if (n > 0) {
        EXPECT_NEAR(*snap.measurement_scores[a],
                    sum / static_cast<double>(n), 1e-12);
      }
    }
    // Alarm indices valid and unique.
    for (std::size_t idx : snap.alarmed_pairs) {
      EXPECT_LT(idx, monitor.Graph().PairCount());
    }
  }

  // Lifetime counters coherent with per-model stats.
  for (std::size_t i = 0; i < monitor.Graph().PairCount(); ++i) {
    const PairModelStats& stats = monitor.Model(i).Stats();
    EXPECT_EQ(stats.steps, test.SampleCount());
    EXPECT_LE(stats.scored, stats.steps);
    EXPECT_LE(stats.matrix_updates, stats.scored);
    EXPECT_LE(stats.alarms, stats.scored);
  }
  EXPECT_EQ(monitor.StepCount(), test.SampleCount());
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndFaults, EngineProperties,
    ::testing::Values(
        EngineCase{GraphKind::kFullMesh, FaultType::kAnomalousJump},
        EngineCase{GraphKind::kFullMesh, FaultType::kDropout},
        EngineCase{GraphKind::kNeighborhood, FaultType::kCorrelationBreak},
        EngineCase{GraphKind::kNeighborhood, FaultType::kStuckValue},
        EngineCase{GraphKind::kNeighborhood, FaultType::kDropout},
        EngineCase{GraphKind::kByAssociation, FaultType::kLevelShift},
        EngineCase{GraphKind::kByAssociation, FaultType::kNoiseStorm},
        EngineCase{GraphKind::kByAssociation, FaultType::kAnomalousJump}));

}  // namespace
}  // namespace pmcorr
