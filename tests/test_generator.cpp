// Tests for topology, response functions and the trace generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "telemetry/generator.h"
#include "telemetry/response.h"

namespace pmcorr {
namespace {

TraceSpec SmallSpec(std::uint64_t seed = 11) {
  TraceSpec spec;
  TopologyConfig topo;
  topo.machine_count = 8;
  spec.topology = MakeTopology("T", seed, topo);
  spec.start = ToTimePoint({2008, 5, 29});
  spec.samples = 3 * kSamplesPerDay;
  spec.seed = seed;
  return spec;
}

TEST(Topology, RoleMixAndDeterminism) {
  TopologyConfig config;
  config.machine_count = 50;
  const Topology a = MakeTopology("A", 1, config);
  const Topology b = MakeTopology("A", 1, config);
  ASSERT_EQ(a.machines.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.machines[i].hostname, b.machines[i].hostname);
    EXPECT_EQ(a.machines[i].role, b.machines[i].role);
    EXPECT_DOUBLE_EQ(a.machines[i].capacity_scale,
                     b.machines[i].capacity_scale);
  }
  // All four roles appear in a 50-machine group.
  bool web = false, app = false, db = false, sw = false;
  for (const auto& m : a.machines) {
    web |= m.role == MachineRole::kWebServer;
    app |= m.role == MachineRole::kAppServer;
    db |= m.role == MachineRole::kDatabase;
    sw |= m.role == MachineRole::kSwitch;
  }
  EXPECT_TRUE(web && app && db && sw);
  EXPECT_GT(a.MeasurementCount(), 100u);
}

TEST(Responses, Shapes) {
  const LinearResponse lin(2.0, 10.0);
  EXPECT_DOUBLE_EQ(lin.Value(0.5), 7.0);

  const SaturatingResponse sat(100.0, 0.5);
  EXPECT_DOUBLE_EQ(sat.Value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sat.Value(0.5), 50.0);
  EXPECT_LT(sat.Value(10.0), 100.0);
  // Concavity: equal load increments give shrinking value increments.
  EXPECT_GT(sat.Value(0.4) - sat.Value(0.2), sat.Value(0.8) - sat.Value(0.6));

  const QueueingResponse queue(10.0, 0.9);
  EXPECT_DOUBLE_EQ(queue.Value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(queue.Value(0.5), 20.0);
  EXPECT_DOUBLE_EQ(queue.Value(2.0), queue.Value(0.9));  // clamped

  const RegimeResponse regime(0.5, 0.0, 10.0, 50.0, 2.0);
  EXPECT_DOUBLE_EQ(regime.Value(0.4), 4.0);
  EXPECT_DOUBLE_EQ(regime.Value(0.6), 51.2);
}

TEST(Responses, ApplyNoiseRespectsFloor) {
  Rng rng(5);
  NoiseConfig noise;
  noise.relative_sigma = 0.0;
  noise.additive_sigma = 100.0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(ApplyNoise(10.0, noise, rng, 0.0), 0.0);
  }
}

TEST(Responses, MakeRecipeProducesResponseForEveryKind) {
  Rng rng(9);
  for (int k = 0; k < 12; ++k) {
    const auto kind = static_cast<MetricKind>(k);
    const MetricRecipe recipe = MakeRecipe(kind, 1.0, rng);
    ASSERT_NE(recipe.response, nullptr) << MetricKindName(kind);
    EXPECT_GE(recipe.response->Value(0.5), 0.0 - 1e10);
  }
}

TEST(Generator, FrameShapeMatchesSpec) {
  const TraceSpec spec = SmallSpec();
  const MeasurementFrame frame = GenerateTrace(spec);
  EXPECT_EQ(frame.MeasurementCount(), spec.topology.MeasurementCount());
  EXPECT_EQ(frame.SampleCount(), spec.samples);
  EXPECT_EQ(frame.StartTime(), spec.start);
  EXPECT_EQ(frame.Period(), kPaperSamplePeriod);
}

TEST(Generator, BitReproducible) {
  const TraceSpec spec = SmallSpec();
  const MeasurementFrame a = GenerateTrace(spec);
  const MeasurementFrame b = GenerateTrace(spec);
  for (const auto& info : a.Infos()) {
    for (std::size_t t = 0; t < a.SampleCount(); t += 37) {
      EXPECT_DOUBLE_EQ(a.Value(info.id, t), b.Value(info.id, t));
    }
  }
}

TEST(Generator, PercentMetricsStayInRange) {
  const MeasurementFrame frame = GenerateTrace(SmallSpec());
  for (const auto& info : frame.Infos()) {
    if (info.kind == MetricKind::kCpuUtilization ||
        info.kind == MetricKind::kCurrentUtilizationPort ||
        info.kind == MetricKind::kCurrentUtilizationIf ||
        info.kind == MetricKind::kMemoryUtilization) {
      for (double v : frame.Series(info.id).Values()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 100.0);
      }
    }
  }
}

TEST(Generator, SharedWorkloadInducesCorrelations) {
  // In/out octet rates on the same web server must correlate strongly
  // (the Figure 2(b) situation).
  const MeasurementFrame frame = GenerateTrace(SmallSpec());
  std::optional<MeasurementId> in_id, out_id;
  for (const auto& info : frame.Infos()) {
    if (info.kind == MetricKind::kIfInOctetsRate && !in_id) {
      in_id = info.id;
    }
    if (info.kind == MetricKind::kIfOutOctetsRate && !out_id &&
        in_id && frame.Info(*in_id).machine == info.machine) {
      out_id = info.id;
    }
  }
  ASSERT_TRUE(in_id && out_id);
  const auto r = PearsonCorrelation(frame.Series(*in_id).Values(),
                                    frame.Series(*out_id).Values());
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(*r, 0.9);
}

TEST(Generator, UtilizationVsThroughputIsNonlinearButMonotone) {
  // The Figure 2(d) pair: port utilization saturates against the port
  // octet rate — Spearman high, Pearson visibly lower than Spearman.
  const MeasurementFrame frame = GenerateTrace(SmallSpec(17));
  std::optional<MeasurementId> rate_id, util_id;
  for (const auto& info : frame.Infos()) {
    if (info.kind == MetricKind::kPortOutOctetsRate && !rate_id) {
      rate_id = info.id;
    }
    if (info.kind == MetricKind::kCurrentUtilizationPort && !util_id &&
        rate_id && frame.Info(*rate_id).machine == info.machine) {
      util_id = info.id;
    }
  }
  ASSERT_TRUE(rate_id && util_id);
  const auto spearman = SpearmanCorrelation(frame.Series(*rate_id).Values(),
                                            frame.Series(*util_id).Values());
  ASSERT_TRUE(spearman.has_value());
  EXPECT_GT(*spearman, 0.8);
}

TEST(Generator, FaultWindowChangesValues) {
  TraceSpec spec = SmallSpec();
  const MeasurementFrame clean = GenerateTrace(spec);

  // Find a machine with a CPU metric and inject a big level shift.
  MachineId target;
  for (const auto& info : clean.Infos()) {
    if (info.kind == MetricKind::kDiskIoThroughput) {
      target = info.machine;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  FaultEvent e;
  e.machine = target;
  e.start = spec.start + kDay;
  e.end = spec.start + kDay + 6 * kHour;
  e.type = FaultType::kLevelShift;
  e.magnitude = 2.0;
  e.metric_filter = MetricKind::kDiskIoThroughput;
  spec.faults.push_back(e);
  const MeasurementFrame faulty = GenerateTrace(spec);

  double max_rel_diff_inside = 0.0;
  for (const auto& info : clean.Infos()) {
    if (info.machine != target ||
        info.kind != MetricKind::kDiskIoThroughput) {
      continue;
    }
    for (std::size_t t = 0; t < clean.SampleCount(); ++t) {
      const TimePoint tp = clean.TimeAt(t);
      const double c = clean.Value(info.id, t);
      const double f = faulty.Value(info.id, t);
      if (tp >= e.start && tp < e.end) {
        max_rel_diff_inside =
            std::max(max_rel_diff_inside, std::fabs(f - c) / (c + 1e-9));
      }
    }
  }
  EXPECT_GT(max_rel_diff_inside, 1.0);  // ~3x shift inside the window
}

TEST(Generator, PresenceBlanksAbsentSpanOnly) {
  TraceSpec spec = SmallSpec();
  const MeasurementFrame always = GenerateTrace(spec);

  const MachineId late = spec.topology.machines.front().id;
  const TimePoint join = spec.start + kDay;
  spec.presence = {{late, join, spec.start + 100 * kDay}};
  const MeasurementFrame joined = GenerateTrace(spec);

  for (const auto& info : always.Infos()) {
    for (std::size_t t = 0; t < always.SampleCount(); ++t) {
      const double a = always.Value(info.id, t);
      const double j = joined.Value(info.id, t);
      if (info.machine == late && always.TimeAt(t) < join) {
        // Absent span: every metric on the machine reads NaN.
        EXPECT_TRUE(std::isnan(j)) << info.name << " sample " << t;
      } else if (std::isnan(a)) {
        // Injected dropouts (none in SmallSpec) would stay NaN.
        EXPECT_TRUE(std::isnan(j));
      } else {
        // Present spans and other machines are bitwise identical to the
        // always-present run: generation computes the full series first
        // and blanks afterwards, so RNG streams never shift.
        EXPECT_EQ(a, j) << info.name << " sample " << t;
      }
    }
  }
}

TEST(Generator, FlashCrowdRampLeavesOutsideSamplesUntouched) {
  TraceSpec spec = SmallSpec();
  const MeasurementFrame clean = GenerateTrace(spec);

  TraceSpec crowded = SmallSpec();
  const TimePoint surge_start = spec.start + kDay;
  const TimePoint surge_end = surge_start + 4 * kHour;
  for (const auto& m : crowded.topology.machines) {
    crowded.faults.push_back({m.id, surge_start, surge_end,
                              FaultType::kFlashCrowd, 0.2, std::nullopt});
  }
  const MeasurementFrame surged = GenerateTrace(crowded);

  double max_rel_diff_inside = 0.0;
  for (const auto& info : clean.Infos()) {
    for (std::size_t t = 0; t < clean.SampleCount(); ++t) {
      const TimePoint tp = clean.TimeAt(t);
      const double c = clean.Value(info.id, t);
      const double s = surged.Value(info.id, t);
      if (tp >= surge_start && tp < surge_end) {
        if (!std::isnan(c) && !std::isnan(s)) {
          max_rel_diff_inside = std::max(
              max_rel_diff_inside, std::fabs(s - c) / (std::fabs(c) + 1e-9));
        }
      } else {
        // The surge is strictly windowed: outside it the trace is
        // bitwise identical (LoadFactor multiplies by exactly 1.0 and
        // the RNG streams are untouched).
        EXPECT_EQ(c, s) << info.name << " sample " << t;
      }
    }
  }
  EXPECT_GT(max_rel_diff_inside, 0.05);  // the surge visibly moves metrics
}

}  // namespace
}  // namespace pmcorr
