// Tests for src/common: rng, stats, strings, time, table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/time.h"
#include "common/types.h"

namespace pmcorr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.Mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(15);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, CombineSeedSeparatesStreams) {
  EXPECT_NE(CombineSeed(1, 0), CombineSeed(1, 1));
  EXPECT_NE(CombineSeed(1, 0), CombineSeed(2, 0));
  EXPECT_EQ(CombineSeed(5, 9), CombineSeed(5, 9));
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.Add(x);
  EXPECT_EQ(stats.Count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-10);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(*Quantile(xs, 0.5), 2.5);
  EXPECT_FALSE(Quantile({}, 0.5).has_value());
}

TEST(Stats, PearsonPerfectAndConstant) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(*PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> anti = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(*PearsonCorrelation(xs, anti), -1.0, 1e-12);
  const std::vector<double> flat = {5.0, 5.0, 5.0, 5.0};
  EXPECT_FALSE(PearsonCorrelation(xs, flat).has_value());
}

TEST(Stats, SpearmanCapturesMonotoneNonlinear) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.2 * i));  // monotone but very non-linear
  }
  EXPECT_NEAR(*SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, FitLinearRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 3.0, 1e-10);
  EXPECT_NEAR(fit->intercept, -7.0, 1e-8);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);   // clamps to bin 0
  hist.Add(0.5);
  hist.Add(9.9);
  hist.Add(25.0);   // clamps to last bin
  EXPECT_EQ(hist.CountAt(0), 2u);
  EXPECT_EQ(hist.CountAt(4), 2u);
  EXPECT_EQ(hist.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(hist.BinWidth(), 2.0);
  EXPECT_EQ(hist.BinOf(4.0), 2u);
}

TEST(Stats, AddAllMatchesPerElementAdd) {
  // The blocked bulk path (quotient block + branchless scatter into four
  // banks) must produce exactly the counts of per-element Add, including
  // at the clamp edges and across block boundaries. 5000 samples spans
  // three 2048-sample blocks, with edge values salted in.
  Rng rng(99);
  std::vector<double> xs;
  for (std::size_t i = 0; i < 5000; ++i) xs.push_back(rng.Uniform(-2.0, 12.0));
  xs[0] = 0.0;     // exactly lo
  xs[1] = 10.0;    // exactly hi
  xs[2] = -50.0;   // below lo
  xs[3] = 50.0;    // above hi
  xs[4] = 10.0 - 1e-12;
  Histogram bulk(0.0, 10.0, 17);
  bulk.AddAll(xs);
  Histogram serial(0.0, 10.0, 17);
  for (double x : xs) serial.Add(x);
  ASSERT_EQ(bulk.BinCount(), serial.BinCount());
  for (std::size_t b = 0; b < bulk.BinCount(); ++b) {
    EXPECT_EQ(bulk.CountAt(b), serial.CountAt(b)) << "bin " << b;
  }
  EXPECT_EQ(bulk.TotalCount(), serial.TotalCount());
}

TEST(Stats, AddAllShortAndRepeatedCalls) {
  // Sub-block inputs and repeated AddAll calls accumulate exactly like
  // per-element Add (the scratch banks must reset between calls).
  Histogram bulk(0.0, 1.0, 4);
  Histogram serial(0.0, 1.0, 4);
  const std::vector<double> a{0.1, 0.6, 0.6, 0.9};
  const std::vector<double> b{0.3};
  bulk.AddAll(a);
  bulk.AddAll(b);
  for (double x : a) serial.Add(x);
  for (double x : b) serial.Add(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(bulk.CountAt(i), serial.CountAt(i));
  }
  EXPECT_EQ(bulk.TotalCount(), 5u);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(Strings, FormatPercentMatchesPaperStyle) {
  EXPECT_EQ(FormatPercent(0.2198), "21.98%");
  EXPECT_EQ(FormatPercent(0.1765), "17.65%");
}

TEST(Strings, ParseRoundTrips) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble(" 3.5 ", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  long long i = 0;
  EXPECT_TRUE(ParseInt64("-12", &i));
  EXPECT_EQ(i, -12);
  EXPECT_FALSE(ParseInt64("12.5", &i));
}

TEST(Time, CivilDateRoundTrip) {
  const CivilDate date{2008, 5, 29};
  const TimePoint tp = ToTimePoint(date);
  EXPECT_EQ(ToCivilDate(tp), date);
  EXPECT_EQ(ToCivilDate(tp + kDay - 1), date);  // same day until midnight
  const CivilDate next = ToCivilDate(tp + kDay);
  EXPECT_EQ(next, (CivilDate{2008, 5, 30}));
}

TEST(Time, LeapYearRules) {
  EXPECT_TRUE(IsLeapYear(2008));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2009));
  EXPECT_EQ(DaysInMonth(2008, 2), 29);
  EXPECT_EQ(DaysInMonth(2009, 2), 28);
}

TEST(Time, PaperDatesAndWeekdays) {
  // May 29, 2008 was a Thursday; June 13, 2008 a Friday;
  // June 14/15, 2008 a weekend.
  EXPECT_EQ(DayOfWeek(ToTimePoint({2008, 5, 29})), 4);
  EXPECT_EQ(DayOfWeek(ToTimePoint({2008, 6, 13})), 5);
  EXPECT_TRUE(IsWeekend(ToTimePoint({2008, 6, 14})));
  EXPECT_TRUE(IsWeekend(ToTimePoint({2008, 6, 15})));
  EXPECT_FALSE(IsWeekend(ToTimePoint({2008, 6, 16})));
}

TEST(Time, FormatHelpers) {
  const TimePoint tp = ToTimePoint({2008, 6, 13}) + 14 * kHour + 30 * kMinute;
  EXPECT_EQ(FormatTimePoint(tp), "2008-06-13 14:30");
  EXPECT_EQ(FormatPaperDate({2008, 6, 13}), "6.13");
  EXPECT_EQ(SecondsIntoDay(tp), 14 * kHour + 30 * kMinute);
}

TEST(Table, AlignsColumns) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.Row().Cell("alpha").Num(1.5, 2).Done();
  table.Row().Cell("b").Int(42).Done();
  const std::string text = table.ToString();
  EXPECT_NE(text.find("alpha  1.50"), std::string::npos);
  EXPECT_NE(text.find("b      42"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(Types, PairIdNormalizesOrder) {
  const PairId p(MeasurementId(5), MeasurementId(2));
  EXPECT_EQ(p.a.value, 2);
  EXPECT_EQ(p.b.value, 5);
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(PairId(MeasurementId(3), MeasurementId(3)).valid());
  EXPECT_EQ(p, PairId(MeasurementId(2), MeasurementId(5)));
}

TEST(Backoff, DelayGrowsGeometricallyThenSaturates) {
  const BackoffPolicy policy;  // base 16, x2, cap 1024, budget 8
  EXPECT_EQ(policy.DelayFor(0), 16u);
  EXPECT_EQ(policy.DelayFor(1), 32u);
  EXPECT_EQ(policy.DelayFor(5), 512u);
  // 16 * 2^6 == 1024 lands exactly on the cap, and every later retry
  // stays pinned there — including counts far past any real schedule.
  EXPECT_EQ(policy.DelayFor(6), 1024u);
  EXPECT_EQ(policy.DelayFor(7), 1024u);
  EXPECT_EQ(policy.DelayFor(63), 1024u);
  EXPECT_EQ(policy.DelayFor(100000), 1024u);
}

TEST(Backoff, BaseAtOrAboveCapClampsFromRetryZero) {
  BackoffPolicy policy;
  policy.base = policy.cap;
  EXPECT_EQ(policy.DelayFor(0), policy.cap);
  policy.base = policy.cap * 4;
  EXPECT_EQ(policy.DelayFor(0), policy.cap);
}

TEST(Backoff, ZeroBaseStillWaitsOneUnit) {
  // A zero base must not produce a zero delay: "retry at sample + 0"
  // would re-trip on the same sample that quarantined the pair.
  BackoffPolicy policy;
  policy.base = 0;
  EXPECT_EQ(policy.DelayFor(0), 1u);
  EXPECT_EQ(policy.DelayFor(5), 1u);
}

TEST(Backoff, SubUnitMultiplierIsTreatedAsFlat) {
  BackoffPolicy policy;
  policy.multiplier = 0.25;
  EXPECT_EQ(policy.DelayFor(0), policy.base);
  EXPECT_EQ(policy.DelayFor(3), policy.base);
}

TEST(Backoff, ZeroBudgetIsExhaustedBeforeAnyRetry) {
  BackoffPolicy policy;
  policy.budget = 0;
  EXPECT_TRUE(policy.Exhausted(0));
  EXPECT_TRUE(policy.Exhausted(1));
}

TEST(Backoff, BudgetBoundaryIsExact) {
  const BackoffPolicy policy;  // budget 8
  EXPECT_FALSE(policy.Exhausted(7));
  EXPECT_TRUE(policy.Exhausted(8));
  EXPECT_TRUE(policy.Exhausted(9));
}

TEST(Types, MetricNamesMatchPaper) {
  EXPECT_EQ(MetricKindName(MetricKind::kCurrentUtilizationPort),
            "CurrentUtilization_PORT");
  EXPECT_EQ(MetricKindName(MetricKind::kIfInOctetsRate), "IfInOctetsRate_IF");
}

}  // namespace
}  // namespace pmcorr
