// Tests for the order-0 (static grid-density) ablation baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/static_density.h"
#include "common/rng.h"
#include "core/model.h"

namespace pmcorr {
namespace {

void MakeData(std::size_t n, std::uint64_t seed, std::vector<double>* xs,
              std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double load =
        55.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    (*xs)[i] = load;
    (*ys)[i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.5);
  }
}

TEST(StaticDensity, LearnsCountsOverTheGrid) {
  std::vector<double> xs, ys;
  MakeData(1000, 3, &xs, &ys);
  const auto model = StaticDensityModel::Learn(xs, ys);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < model.Grid().CellCount(); ++c) {
    total += model.CountOf(c);
  }
  EXPECT_EQ(total, 1000u);  // every history point lands in some cell
}

TEST(StaticDensity, RejectsBadInput) {
  EXPECT_THROW(StaticDensityModel::Learn({}, {}), std::invalid_argument);
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(StaticDensityModel::Learn(xs, ys), std::invalid_argument);
}

TEST(StaticDensity, RanksAreAPermutation) {
  std::vector<double> xs, ys;
  MakeData(600, 5, &xs, &ys);
  const auto model = StaticDensityModel::Learn(xs, ys);
  std::vector<bool> seen(model.Grid().CellCount(), false);
  for (std::size_t c = 0; c < model.Grid().CellCount(); ++c) {
    const std::size_t rank = model.RankOf(c);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, model.Grid().CellCount());
    EXPECT_FALSE(seen[rank - 1]);
    seen[rank - 1] = true;
  }
}

TEST(StaticDensity, DenseCellsScoreHighOutliersZero) {
  std::vector<double> xs, ys;
  MakeData(2000, 7, &xs, &ys);
  const auto model = StaticDensityModel::Learn(xs, ys);
  // A typical history point sits in a dense cell.
  EXPECT_GT(model.Score(xs[100], ys[100]), 0.5);
  // Far outside the grid: zero.
  EXPECT_DOUBLE_EQ(model.Score(1e9, -1e9), 0.0);
}

TEST(StaticDensity, BlindToTemporalAnomalies) {
  // The ablation's defining weakness: an anomalous *jump* between two
  // individually-common states is invisible to the order-0 model but
  // penalized by the order-1 transition model.
  std::vector<double> xs, ys;
  MakeData(3000, 9, &xs, &ys);
  const auto order0 = StaticDensityModel::Learn(xs, ys);
  ModelConfig config;
  config.partition.units = 40;
  PairModel order1 = PairModel::Learn(xs, ys, config);

  // Find two common but distant states: the daily low and the daily high.
  const std::size_t low_t = 52;   // near the sine trough
  const std::size_t high_t = 157;  // near the sine peak (about pi apart)
  ASSERT_GT(std::fabs(xs[high_t] - xs[low_t]), 30.0);

  // Both states are individually ordinary for the order-0 model.
  EXPECT_GT(order0.Score(xs[low_t], ys[low_t]), 0.4);
  EXPECT_GT(order0.Score(xs[high_t], ys[high_t]), 0.4);

  // The instantaneous low->high teleport is temporal nonsense: the
  // order-1 model scores it far below the order-0 model.
  order1.Step(xs[low_t], ys[low_t]);
  const StepOutcome jump = order1.Step(xs[high_t], ys[high_t]);
  ASSERT_TRUE(jump.has_score);
  EXPECT_LT(jump.fitness, order0.Score(xs[high_t], ys[high_t]) - 0.2);
}

}  // namespace
}  // namespace pmcorr
