// Proves the invariant-audit layer works in both directions: every
// CheckInvariants() accepts freshly built healthy state, and every audit
// clause fires on deliberately corrupted state. Corruption goes through
// InvariantTestPeer — the one friend the audited classes grant — so the
// tests can break exactly the field a clause guards without weakening
// the public API.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/transition_matrix.h"
#include "engine/measurement_graph.h"
#include "engine/monitor.h"
#include "grid/grid.h"
#include "grid/interval.h"
#include "grid/kernels.h"
#include "timeseries/frame.h"

namespace pmcorr {

// Test-only backdoor into the audited classes' private state.
struct InvariantTestPeer {
  static std::vector<Interval>& Intervals(IntervalList& list) {
    return list.intervals_;
  }
  static double& RAvg1(Grid2D& grid) { return grid.r_avg1_; }
  static double& RAvg2(Grid2D& grid) { return grid.r_avg2_; }
  static std::vector<double>& StencilTable(KernelStencil& stencil) {
    return stencil.table_;
  }
  static std::vector<double>& Prior(TransitionMatrix& m) {
    return m.prior_logw_;
  }
  static std::vector<double>& Evidence(TransitionMatrix& m) {
    return m.evidence_;
  }
  static std::vector<std::uint32_t>& Counts(TransitionMatrix& m) {
    return m.counts_;
  }
  static std::uint64_t& Observed(TransitionMatrix& m) { return m.observed_; }
  static auto& Cache(TransitionMatrix& m) { return m.cache_; }
  static ModelConfig& Config(PairModel& model) { return model.config_; }
  static std::optional<std::size_t>& PrevCell(PairModel& model) {
    return model.prev_cell_;
  }
  static TransitionMatrix& Matrix(PairModel& model) { return model.matrix_; }
  static std::vector<PairModel>& Models(SystemMonitor& monitor) {
    return monitor.models_;
  }
  static std::size_t& Steps(SystemMonitor& monitor) { return monitor.steps_; }
  static ScoreAverager& SystemAvg(SystemMonitor& monitor) {
    return monitor.system_avg_;
  }
};

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::size_t PickIndex(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
}

// ---------------------------------------------------------------------
// The contract macros themselves.

TEST(CheckMacros, AssertPassesWithoutSideEffects) {
  ScopedCheckThrow guard;
  EXPECT_NO_THROW(PMCORR_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(PMCORR_ASSERT(true, "never " << "built"));
}

TEST(CheckMacros, AssertFailureCarriesExpressionAndMessage) {
  ScopedCheckThrow guard;
  const int index = 7;
  try {
    PMCORR_ASSERT(index < 5, "index=" << index << " size=" << 5);
    FAIL() << "PMCORR_ASSERT did not fire";
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find("index < 5"), std::string::npos) << what;
    EXPECT_NE(what.find("index=7 size=5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_invariants.cpp"), std::string::npos) << what;
  }
}

TEST(CheckMacros, HandlerRestoredAfterScope) {
  const CheckFailureHandler before = SetCheckFailureHandler(nullptr);
  SetCheckFailureHandler(before);
  {
    ScopedCheckThrow guard;
    EXPECT_EQ(SetCheckFailureHandler(&ThrowingCheckFailureHandler),
              &ThrowingCheckFailureHandler);
  }
  const CheckFailureHandler after = SetCheckFailureHandler(nullptr);
  SetCheckFailureHandler(after);
  EXPECT_EQ(before, after);
}

#if PMCORR_DASSERT_ENABLED
TEST(CheckMacros, DassertFiresWhenEnabled) {
  ScopedCheckThrow guard;
  EXPECT_THROW(PMCORR_DASSERT(false, "debug contract"), CheckFailure);
}
#else
TEST(CheckMacros, DassertCompiledOutInRelease) {
  bool evaluated = false;
  PMCORR_DASSERT((evaluated = true));
  EXPECT_FALSE(evaluated);
}
#endif

// ---------------------------------------------------------------------
// IntervalList.

IntervalList MakeList() { return IntervalList::Uniform(0.0, 10.0, 5); }

TEST(IntervalInvariants, HealthyListPasses) {
  ScopedCheckThrow guard;
  EXPECT_NO_THROW(MakeList().CheckInvariants());
  EXPECT_NO_THROW(IntervalList().CheckInvariants());  // empty is valid
}

TEST(IntervalInvariants, FiresOnCoverageGap) {
  ScopedCheckThrow guard;
  IntervalList list = MakeList();
  InvariantTestPeer::Intervals(list)[2].hi += 0.25;  // gap before [3]
  EXPECT_THROW(list.CheckInvariants(), CheckFailure);
}

TEST(IntervalInvariants, FiresOnNonFiniteEdge) {
  ScopedCheckThrow guard;
  IntervalList list = MakeList();
  InvariantTestPeer::Intervals(list)[0].lo = kNaN;
  EXPECT_THROW(list.CheckInvariants(), CheckFailure);
}

TEST(IntervalInvariants, FiresOnNonPositiveWidth) {
  ScopedCheckThrow guard;
  IntervalList list = MakeList();
  Interval& last = InvariantTestPeer::Intervals(list).back();
  last.hi = last.lo;
  EXPECT_THROW(list.CheckInvariants(), CheckFailure);
}

// ---------------------------------------------------------------------
// Grid2D.

Grid2D MakeGrid() {
  return Grid2D(IntervalList::Uniform(0.0, 8.0, 4),
                IntervalList::Uniform(-2.0, 2.0, 4));
}

TEST(GridInvariants, HealthyGridPasses) {
  ScopedCheckThrow guard;
  EXPECT_NO_THROW(MakeGrid().CheckInvariants());
}

TEST(GridInvariants, FiresOnCorruptAverageWidth) {
  ScopedCheckThrow guard;
  Grid2D grid = MakeGrid();
  InvariantTestPeer::RAvg1(grid) = -1.0;
  EXPECT_THROW(grid.CheckInvariants(), CheckFailure);
  InvariantTestPeer::RAvg1(grid) = 2.0;
  InvariantTestPeer::RAvg2(grid) = kNaN;
  EXPECT_THROW(grid.CheckInvariants(), CheckFailure);
}

TEST(GridInvariants, FiresOnDimensionCorruptedUnderneath) {
  ScopedCheckThrow guard;
  Grid2D grid = MakeGrid();
  // Reach through to a dimension list: Grid's audit must recurse.
  IntervalList& dim = const_cast<IntervalList&>(grid.Dim1());
  InvariantTestPeer::Intervals(dim)[1].lo = kNaN;
  EXPECT_THROW(grid.CheckInvariants(), CheckFailure);
}

// ---------------------------------------------------------------------
// KernelStencil.

TEST(StencilInvariants, HealthyStencilsPass) {
  ScopedCheckThrow guard;
  const TriangularKernel triangular;
  const ExponentialKernel exponential(2.5, CellMetric::kChebyshev);
  KernelStencil a(4, 6, triangular);
  KernelStencil b(3, 3, exponential);
  EXPECT_NO_THROW(a.CheckInvariants(&triangular));
  EXPECT_NO_THROW(b.CheckInvariants(&exponential));
  EXPECT_NO_THROW(KernelStencil().CheckInvariants());
}

TEST(StencilInvariants, FiresOnPositiveLogWeight) {
  ScopedCheckThrow guard;
  const TriangularKernel kernel;
  KernelStencil stencil(4, 4, kernel);
  InvariantTestPeer::StencilTable(stencil)[1] = 0.5;
  EXPECT_THROW(stencil.CheckInvariants(), CheckFailure);
}

TEST(StencilInvariants, FiresOnBrokenCentralSymmetry) {
  ScopedCheckThrow guard;
  const TriangularKernel kernel;
  KernelStencil stencil(4, 4, kernel);
  // Perturb one off-center entry: still finite/negative/decaying-safe
  // at the edge, but its mirror no longer matches bitwise.
  std::vector<double>& table = InvariantTestPeer::StencilTable(stencil);
  table.back() = std::nextafter(table.back(), -1e300);
  EXPECT_THROW(stencil.CheckInvariants(), CheckFailure);
}

TEST(StencilInvariants, FiresOnNonZeroCenter) {
  ScopedCheckThrow guard;
  const TriangularKernel kernel;
  KernelStencil stencil(3, 3, kernel);
  // Center of the (2r-1) x (2c-1) table.
  InvariantTestPeer::StencilTable(stencil)[2 * 5 + 2] = -0.125;
  EXPECT_THROW(stencil.CheckInvariants(), CheckFailure);
}

TEST(StencilInvariants, FiresOnKernelDisagreement) {
  ScopedCheckThrow guard;
  const TriangularKernel triangular;
  const ExponentialKernel exponential(3.0, CellMetric::kManhattan);
  KernelStencil stencil(4, 4, triangular);
  EXPECT_NO_THROW(stencil.CheckInvariants(&triangular));
  EXPECT_THROW(stencil.CheckInvariants(&exponential), CheckFailure);
}

// ---------------------------------------------------------------------
// TransitionMatrix.

struct MatrixFixture {
  Grid2D grid = MakeGrid();
  TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);

  MatrixFixture() {
    Rng rng(11);
    std::size_t from = 0;
    for (int i = 0; i < 200; ++i) {
      const std::size_t to = PickIndex(rng, grid.CellCount());
      matrix.ObserveTransition(from, to, grid, kernel, 1.0, 0.99);
      from = to;
    }
  }
};

TEST(MatrixInvariants, HealthyMatrixPasses) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  EXPECT_NO_THROW(f.matrix.CheckInvariants());
  EXPECT_NO_THROW(TransitionMatrix().CheckInvariants());
}

TEST(MatrixInvariants, FiresOnPositiveEvidence) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  InvariantTestPeer::Evidence(f.matrix)[3] = 0.5;
  EXPECT_THROW(f.matrix.CheckInvariants(), CheckFailure);
}

TEST(MatrixInvariants, FiresOnPriorDriftingFromStencil) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  std::vector<double>& prior = InvariantTestPeer::Prior(f.matrix);
  prior[1] = std::nextafter(prior[1], -1.0);
  EXPECT_THROW(f.matrix.CheckInvariants(), CheckFailure);
}

TEST(MatrixInvariants, FiresOnCountObservedMismatch) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  ++InvariantTestPeer::Counts(f.matrix)[0];
  EXPECT_THROW(f.matrix.CheckInvariants(), CheckFailure);
}

TEST(MatrixInvariants, FiresOnStaleStatsCache) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  // Fill row 0's (max, sum-exp) cache, then corrupt the cached max the
  // way a missed invalidation would.
  (void)f.matrix.ScoreTransition(0, 1);
  auto& cache = InvariantTestPeer::Cache(f.matrix);
  ASSERT_TRUE(cache[0].stats_valid);
  cache[0].max_logw = std::nextafter(cache[0].max_logw, 1.0);
  EXPECT_THROW(f.matrix.CheckInvariants(), CheckFailure);
}

TEST(MatrixInvariants, FiresOnCorruptSortedRankIndex) {
  ScopedCheckThrow guard;
  MatrixFixture f;
  // Two scores of an unchanged row build the lazy sorted index.
  (void)f.matrix.ScoreTransition(0, 1);
  (void)f.matrix.ScoreTransition(0, 2);
  auto& cache = InvariantTestPeer::Cache(f.matrix);
  ASSERT_TRUE(cache[0].sorted_valid);
  // Duplicate the top entry: keys may still match, but the index is no
  // longer a permutation of [0, s).
  cache[0].sorted[1] = cache[0].sorted[0];
  EXPECT_THROW(f.matrix.CheckInvariants(), CheckFailure);
}

// ---------------------------------------------------------------------
// PairModel.

PairModel TrainedModel() {
  Rng rng(5);
  std::vector<double> xs(600), ys(600);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double load =
        50.0 + 30.0 * std::sin(static_cast<double>(i) * 0.05) +
        rng.Normal(0.0, 1.5);
    xs[i] = load;
    ys[i] = 100.0 * load / (load + 40.0) + rng.Normal(0.0, 0.5);
  }
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  config.forgetting = 0.995;
  return PairModel::Learn(xs, ys, config);
}

TEST(ModelInvariants, HealthyModelPasses) {
  ScopedCheckThrow guard;
  EXPECT_NO_THROW(TrainedModel().CheckInvariants());
}

TEST(ModelInvariants, FiresOnConfigCorruption) {
  ScopedCheckThrow guard;
  PairModel model = TrainedModel();
  InvariantTestPeer::Config(model).forgetting = 0.0;
  EXPECT_THROW(model.CheckInvariants(), CheckFailure);
}

TEST(ModelInvariants, FiresOnPrevCellOutOfRange) {
  ScopedCheckThrow guard;
  PairModel model = TrainedModel();
  InvariantTestPeer::PrevCell(model) = model.Grid().CellCount();
  EXPECT_THROW(model.CheckInvariants(), CheckFailure);
}

TEST(ModelInvariants, FiresOnMatrixCorruptedUnderneath) {
  ScopedCheckThrow guard;
  PairModel model = TrainedModel();
  InvariantTestPeer::Observed(InvariantTestPeer::Matrix(model)) += 1;
  EXPECT_THROW(model.CheckInvariants(), CheckFailure);
}

// ---------------------------------------------------------------------
// SystemMonitor.

struct MonitorFixture {
  MeasurementFrame history{0, 60};
  std::unique_ptr<SystemMonitor> monitor;

  MonitorFixture() {
    Rng rng(17);
    const std::size_t samples = 400;
    std::vector<std::vector<double>> columns(3,
                                             std::vector<double>(samples));
    for (std::size_t t = 0; t < samples; ++t) {
      const double load =
          50.0 + 25.0 * std::sin(static_cast<double>(t) * 0.06);
      columns[0][t] = load + rng.Normal(0.0, 1.0);
      columns[1][t] = 100.0 * load / (load + 40.0) + rng.Normal(0.0, 0.5);
      columns[2][t] = 0.5 * load + rng.Normal(0.0, 1.0);
    }
    for (std::size_t m = 0; m < columns.size(); ++m) {
      MeasurementInfo info;
      info.machine = MachineId(1);
      info.kind = MetricKind::kCpuUtilization;
      info.name = "m" + std::to_string(m) + "@host";
      history.Add(info, TimeSeries(0, 60, std::move(columns[m])));
    }
    MonitorConfig config;
    config.threads = 1;
    config.model.partition.units = 30;
    config.model.partition.max_intervals = 8;
    monitor = std::make_unique<SystemMonitor>(
        history, MeasurementGraph::FullMesh(history.MeasurementCount()),
        config);
  }
};

TEST(MonitorInvariants, HealthyMonitorPasses) {
  ScopedCheckThrow guard;
  MonitorFixture f;
  EXPECT_NO_THROW(f.monitor->CheckInvariants());
}

TEST(MonitorInvariants, FiresOnModelCountMismatch) {
  ScopedCheckThrow guard;
  MonitorFixture f;
  InvariantTestPeer::Models(*f.monitor).pop_back();
  EXPECT_THROW(f.monitor->CheckInvariants(), CheckFailure);
}

TEST(MonitorInvariants, FiresOnAggregateAheadOfSteps) {
  ScopedCheckThrow guard;
  MonitorFixture f;
  InvariantTestPeer::SystemAvg(*f.monitor).Add(0.5);
  ASSERT_EQ(InvariantTestPeer::Steps(*f.monitor), 0u);
  EXPECT_THROW(f.monitor->CheckInvariants(), CheckFailure);
}

TEST(MonitorInvariants, ShallowSkipsModelSweep) {
  ScopedCheckThrow guard;
  MonitorFixture f;
  PairModel& model = InvariantTestPeer::Models(*f.monitor)[0];
  InvariantTestPeer::Config(model).forgetting = -1.0;
  EXPECT_NO_THROW(f.monitor->CheckInvariants(/*deep=*/false));
  EXPECT_THROW(f.monitor->CheckInvariants(/*deep=*/true), CheckFailure);
}

// ---------------------------------------------------------------------
// Property test: the PR-2/PR-3 row caches stay coherent — and keep
// producing the exact bits of an uncached scan — under randomized
// interleavings of row writes, fused scoring reads, rank queries, and
// grid extensions.

// The probability/rank a cache-free implementation computes, scanning
// in the matrix's canonical row order.
TransitionScore NaiveScore(const TransitionMatrix& m, std::size_t from,
                           std::size_t to) {
  const std::size_t s = m.CellCount();
  const auto posterior = [&](std::size_t j) {
    return m.PriorLogW(from, j) + m.Evidence()[from * s + j];
  };
  double max_logw = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < s; ++j) {
    max_logw = std::max(max_logw, posterior(j));
  }
  double sum_exp = 0.0;
  for (std::size_t j = 0; j < s; ++j) {
    sum_exp += std::exp(posterior(j) - max_logw);
  }
  const double target = posterior(to);
  std::size_t rank = 1;
  for (std::size_t j = 0; j < s; ++j) {
    const double w = posterior(j);
    if (w > target || (w == target && j < to)) ++rank;
  }
  return {std::exp(target - max_logw) / sum_exp, rank};
}

TEST(MatrixInvariants, CacheCoherentUnderRandomInterleavings) {
  ScopedCheckThrow guard;
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    Rng rng(seed);
    Grid2D grid(IntervalList::Uniform(0.0, 6.0, 3),
                IntervalList::Uniform(0.0, 6.0, 3));
    const TriangularKernel kernel;
    TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);

    double next_x = 6.0;  // each extension grows dim1 one interval up
    for (int op = 0; op < 400; ++op) {
      const std::size_t s = matrix.CellCount();
      const std::size_t from = PickIndex(rng, s);
      const std::size_t to = PickIndex(rng, s);
      switch (rng.UniformInt(0, 7)) {
        case 0:
        case 1:
        case 2:  // row write
          matrix.ObserveTransition(from, to, grid, kernel, 1.0, 0.97);
          break;
        case 3: {  // grid extension remaps evidence and rebuilds caches
          if (s >= 144) break;  // keep the quadratic audits cheap
          const std::size_t old_cols = grid.Cols();
          const auto ext = grid.ExtendToInclude({next_x, 3.0}, 100.0, 100.0);
          ASSERT_TRUE(ext.has_value());
          matrix.ApplyExtension(*ext, old_cols, grid, kernel);
          next_x += 2.0;
          break;
        }
        case 4: {  // rank query (builds the lazy sorted index)
          (void)matrix.ScoreTransition(from, to);
          const std::size_t rank = matrix.RankOf(from, to);
          EXPECT_EQ(rank, NaiveScore(matrix, from, to).rank);
          break;
        }
        default: {  // fused scoring read
          const TransitionScore got = matrix.ScoreTransition(from, to);
          const TransitionScore want = NaiveScore(matrix, from, to);
          // Bitwise: the cache contract promises the same doubles, not
          // merely close ones.
          EXPECT_EQ(got.probability, want.probability)
              << "seed " << seed << " op " << op;
          EXPECT_EQ(got.rank, want.rank);
          break;
        }
      }
      if (op % 40 == 0) {
        ASSERT_NO_THROW(matrix.CheckInvariants())
            << "seed " << seed << " op " << op;
      }
    }
    EXPECT_NO_THROW(matrix.CheckInvariants());
  }
}

}  // namespace
}  // namespace pmcorr
