// Tests for the time-of-day conditioned model extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/time_conditioned.h"

namespace pmcorr {
namespace {

// A system whose *dynamics* change by hour over the same value range:
// overnight the load is a slow random walk; during business hours a
// flapping load balancer alternates it between two levels every sample.
// The two regimes share grid cells, so a single transition matrix mixes
// their incompatible transition patterns — exactly the situation the
// time-conditioned extension exists for. (When regimes occupy disjoint
// cells, the plain order-1 model is already regime-aware through its
// state and conditioning buys nothing.)
void MakeRegimeData(std::size_t days, std::uint64_t seed,
                    std::vector<double>* xs, std::vector<double>* ys,
                    std::vector<TimePoint>* times) {
  Rng rng(seed);
  const TimePoint start = ToTimePoint({2008, 5, 29});
  double walk = 60.0;
  for (std::size_t d = 0; d < days; ++d) {
    for (int t = 0; t < kSamplesPerDay; ++t) {
      const TimePoint tp = start + (static_cast<TimePoint>(d) * kDay) +
                           static_cast<TimePoint>(t) * kPaperSamplePeriod;
      const int hour = static_cast<int>(SecondsIntoDay(tp) / kHour);
      const bool night = hour < 7 || hour >= 19;
      double load;
      if (night) {
        walk += rng.Normal(0.0, 2.0);
        walk = std::clamp(walk, 42.0, 80.0);
        load = walk;
      } else {
        load = (t % 2 == 0 ? 50.0 : 74.0) + rng.Normal(0.0, 1.5);
      }
      xs->push_back(load);
      ys->push_back(1.5 * load + 20.0 + rng.Normal(0.0, 1.0));
      times->push_back(tp);
    }
  }
}

TimeConditionedConfig Config() {
  TimeConditionedConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.bucket_start_hours = {0, 7, 19};
  return config;
}

TEST(TimeConditioned, BucketOfMapsHours) {
  std::vector<double> xs, ys;
  std::vector<TimePoint> times;
  MakeRegimeData(2, 3, &xs, &ys, &times);
  const auto model =
      TimeConditionedPairModel::Learn(xs, ys, times, Config());
  ASSERT_EQ(model.BucketCount(), 3u);
  const TimePoint day = ToTimePoint({2008, 6, 1});
  EXPECT_EQ(model.BucketOf(day + 3 * kHour), 0u);   // 03:00 -> [0,7)
  EXPECT_EQ(model.BucketOf(day + 7 * kHour), 1u);   // 07:00 -> [7,19)
  EXPECT_EQ(model.BucketOf(day + 12 * kHour), 1u);
  EXPECT_EQ(model.BucketOf(day + 19 * kHour), 2u);  // 19:00 -> [19,24)
  EXPECT_EQ(model.BucketOf(day + 23 * kHour), 2u);
}

TEST(TimeConditioned, LearnValidatesInput) {
  std::vector<double> xs = {1.0};
  std::vector<double> ys = {1.0, 2.0};
  std::vector<TimePoint> times = {0};
  EXPECT_THROW(TimeConditionedPairModel::Learn(xs, ys, times, Config()),
               std::invalid_argument);
  TimeConditionedConfig bad = Config();
  bad.bucket_start_hours = {7, 7};
  std::vector<double> ok = {1.0, 2.0};
  std::vector<TimePoint> ts = {0, kPaperSamplePeriod};
  EXPECT_THROW(TimeConditionedPairModel::Learn(ok, ok, ts, bad),
               std::invalid_argument);
  bad.bucket_start_hours = {};
  EXPECT_THROW(TimeConditionedPairModel::Learn(ok, ok, ts, bad),
               std::invalid_argument);
}

TEST(TimeConditioned, SingleBucketBehavesLikePlainModel) {
  std::vector<double> xs, ys;
  std::vector<TimePoint> times;
  MakeRegimeData(3, 5, &xs, &ys, &times);
  TimeConditionedConfig config = Config();
  config.bucket_start_hours = {0};
  auto conditioned =
      TimeConditionedPairModel::Learn(xs, ys, times, config);
  EXPECT_EQ(conditioned.BucketCount(), 1u);
  // Same scores as a plain PairModel fed the same stream.
  PairModel plain = PairModel::Learn(xs, ys, config.model);
  plain.ResetSequence();
  for (std::size_t i = 0; i < 200; ++i) {
    const StepOutcome a = conditioned.Step(xs[i], ys[i], times[i]);
    const StepOutcome b = plain.Step(xs[i], ys[i]);
    ASSERT_EQ(a.has_score, b.has_score);
    if (a.has_score) {
      ASSERT_DOUBLE_EQ(a.fitness, b.fitness);
    }
  }
}

TEST(TimeConditioned, BeatsPlainModelOnRegimeSwitchingData) {
  std::vector<double> xs, ys;
  std::vector<TimePoint> times;
  MakeRegimeData(8, 7, &xs, &ys, &times);
  const std::size_t split = 6 * static_cast<std::size_t>(kSamplesPerDay);

  const std::vector<double> tx(xs.begin(), xs.begin() + split);
  const std::vector<double> ty(ys.begin(), ys.begin() + split);
  const std::vector<TimePoint> tt(times.begin(), times.begin() + split);

  auto conditioned =
      TimeConditionedPairModel::Learn(tx, ty, tt, Config());
  PairModel plain = PairModel::Learn(tx, ty, Config().model);

  double cond_sum = 0.0, plain_sum = 0.0;
  std::size_t cond_n = 0, plain_n = 0;
  for (std::size_t i = split; i < xs.size(); ++i) {
    const StepOutcome c = conditioned.Step(xs[i], ys[i], times[i]);
    if (c.has_score) {
      cond_sum += c.fitness;
      ++cond_n;
    }
    const StepOutcome p = plain.Step(xs[i], ys[i]);
    if (p.has_score) {
      plain_sum += p.fitness;
      ++plain_n;
    }
  }
  ASSERT_GT(cond_n, 300u);
  ASSERT_GT(plain_n, 300u);
  // Each bucket model only explains its own regime: cleaner predictions.
  EXPECT_GT(cond_sum / static_cast<double>(cond_n),
            plain_sum / static_cast<double>(plain_n));
}

TEST(TimeConditioned, BucketCrossingIsUnscored) {
  std::vector<double> xs, ys;
  std::vector<TimePoint> times;
  MakeRegimeData(3, 9, &xs, &ys, &times);
  auto model = TimeConditionedPairModel::Learn(xs, ys, times, Config());

  const TimePoint day = ToTimePoint({2008, 6, 2});
  // Two samples in the night bucket: second one scores.
  model.Step(xs[0], ys[0], day + kHour);
  const StepOutcome second = model.Step(xs[1], ys[1], day + kHour + 360);
  EXPECT_TRUE(second.has_score);
  // First sample after crossing into the business bucket: no score.
  const StepOutcome crossed = model.Step(xs[130], ys[130], day + 8 * kHour);
  EXPECT_FALSE(crossed.has_score);
}

}  // namespace
}  // namespace pmcorr
