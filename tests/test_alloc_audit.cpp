// Steady-state allocation audit: after a warmup tick, the out-param
// SystemMonitor::Step overload must run malloc-free with threads=1 —
// the long-running ingest loop of a shard-scale deployment steps at a
// fixed memory footprint. Counted with replacement global operator
// new/new[], so any heap traffic on the hot path fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "engine/monitor.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Replacement allocation functions (must live at global scope). delete
// mirrors new onto free; the sized and nothrow forms delegate so every
// deallocation path matches the malloc-backed allocation.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pmcorr {
namespace {

// Correlated 4-measurement system (2 machines x 2 metrics), same shape
// as the differential suite's synthetic.
MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

TEST(AllocAudit, SteadyStateStepIsMallocFree) {
  const MeasurementFrame history = CorrelatedFrame(1200, 3);
  // Same seed as history: every replayed value is inside the trained
  // grid, so no adaptive extension (a legitimate, allocating structural
  // event) fires and the audit isolates the steady-state path.
  const MeasurementFrame test = CorrelatedFrame(200, 3);
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 1;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);

  // Pre-extract everything the loop needs so the audited region does
  // nothing but Step.
  const std::size_t warmup = 50;
  std::vector<std::vector<double>> rows(test.SampleCount(),
                                        std::vector<double>(4));
  std::vector<TimePoint> times(test.SampleCount());
  for (std::size_t s = 0; s < test.SampleCount(); ++s) {
    for (int a = 0; a < 4; ++a) {
      rows[s][static_cast<std::size_t>(a)] = test.Value(MeasurementId(a), s);
    }
    times[s] = test.TimeAt(s);
  }

  SystemSnapshot out;
  for (std::size_t s = 0; s < warmup; ++s) {
    monitor.Step(rows[s], times[s], out);
  }

  g_allocations.store(0);
  g_counting.store(true);
  for (std::size_t s = warmup; s < test.SampleCount(); ++s) {
    monitor.Step(rows[s], times[s], out);
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state Step allocated on the hot path";
}

TEST(AllocAudit, CounterSeesOrdinaryAllocations) {
  // Sanity-check the instrument itself: a vector growth inside the
  // audited region must register.
  g_allocations.store(0);
  g_counting.store(true);
  std::vector<double>* v = new std::vector<double>(1024);
  g_counting.store(false);
  EXPECT_GE(g_allocations.load(), 1u);
  delete v;
}

}  // namespace
}  // namespace pmcorr
