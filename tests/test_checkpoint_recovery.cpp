// Crash-safety proof for the rotated monitor checkpoints
// (io/monitor_io.h + io/atomic_file.h): a simulated crash at EVERY
// write point of a checkpoint save must leave the newest valid
// generation recoverable, and a monitor resumed from the recovered
// checkpoint must raise exactly the alarms a never-crashed oracle
// raises from the same state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "io/atomic_file.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace {

MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 1;
  return config;
}

// Stream-format render (no trailer): the state fingerprint two monitors
// are compared by.
std::string Render(const SystemMonitor& monitor) {
  return difftest::CheckpointString(monitor);
}

std::unique_ptr<SystemMonitor> FromString(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  return LoadSystemMonitor(in, 1);
}

// A fresh, empty working directory per test.
class CheckpointDir {
 public:
  explicit CheckpointDir(const std::string& name)
      : dir_(std::filesystem::path(testing::TempDir()) / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~CheckpointDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  std::string Path(const std::string& file) const {
    return (dir_ / file).string();
  }
  void Clear() {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

 private:
  std::filesystem::path dir_;
};

TEST(CheckpointRecovery, RotationKeepsConfiguredGenerations) {
  const MeasurementFrame history = SystemFrame(700, 3);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  CheckpointDir dir("pmcorr_ckpt_rotation");
  const std::string path = dir.Path("monitor.ckpt");
  CheckpointConfig config;
  config.generations = 3;

  std::vector<std::string> renders;
  for (int round = 0; round < 4; ++round) {
    monitor.Run(SystemFrame(5, 100 + static_cast<std::uint64_t>(round)));
    renders.push_back(Render(monitor));
    SaveSystemMonitor(monitor, path, config);
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".g1"));
  EXPECT_TRUE(std::filesystem::exists(path + ".g2"));
  EXPECT_FALSE(std::filesystem::exists(path + ".g3"));  // oldest dropped

  // Newest state at the primary path; each older generation one save
  // behind.
  CheckpointRecoveryInfo info;
  EXPECT_EQ(Render(*LoadSystemMonitor(path, 1, &info)), renders[3]);
  EXPECT_EQ(info.generation, 0u);
  EXPECT_TRUE(info.rejected.empty());

  std::filesystem::remove(path);
  EXPECT_EQ(Render(*LoadSystemMonitor(path, 1, &info)), renders[2]);
  EXPECT_EQ(info.generation, 1u);
  ASSERT_EQ(info.rejected.size(), 1u);
  EXPECT_NE(info.rejected[0].find("cannot open"), std::string::npos);

  std::filesystem::remove(path + ".g1");
  EXPECT_EQ(Render(*LoadSystemMonitor(path, 1, &info)), renders[1]);
  EXPECT_EQ(info.generation, 2u);

  std::filesystem::remove(path + ".g2");
  EXPECT_THROW(LoadSystemMonitor(path, 1), std::runtime_error);
}

TEST(CheckpointRecovery, CorruptPrimaryFallsBackToOlderGeneration) {
  const MeasurementFrame history = SystemFrame(700, 5);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  CheckpointDir dir("pmcorr_ckpt_corrupt");
  const std::string path = dir.Path("monitor.ckpt");

  SaveSystemMonitor(monitor, path);
  const std::string old_render = Render(monitor);
  monitor.Run(SystemFrame(10, 7));
  SaveSystemMonitor(monitor, path);

  // Bit rot in the primary: the CRC trailer catches it and the loader
  // falls back.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.put('#');
  }
  CheckpointRecoveryInfo info;
  EXPECT_EQ(Render(*LoadSystemMonitor(path, 1, &info)), old_render);
  EXPECT_EQ(info.generation, 1u);
  ASSERT_EQ(info.rejected.size(), 1u);
  EXPECT_NE(info.rejected[0].find("CRC mismatch"), std::string::npos);

  // Truncation (a torn copy without its trailer): rejected by the parse,
  // same fallback. Fresh directory so the corrupted file above is not
  // sitting in the fallback slot.
  dir.Clear();
  const std::string mid_render = Render(monitor);
  SaveSystemMonitor(monitor, path);
  monitor.Run(SystemFrame(10, 9));
  SaveSystemMonitor(monitor, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_EQ(Render(*LoadSystemMonitor(path, 1, &info)), mid_render);
  EXPECT_EQ(info.generation, 1u);
}

TEST(CheckpointRecovery, TrailerVerifierAcceptsStripsAndRejects) {
  const std::string content = "pmcorr-monitor v1\nnot really\n";
  char trailer[64];
  std::snprintf(trailer, sizeof(trailer), "trailer crc32 %08x bytes %zu\n",
                Crc32(content), content.size());
  const std::string with_trailer = content + trailer;
  EXPECT_EQ(VerifyCheckpointTrailer(with_trailer), content);

  // Legacy bytes without a trailer pass through unchanged.
  EXPECT_EQ(VerifyCheckpointTrailer(content), content);
  EXPECT_EQ(VerifyCheckpointTrailer(""), "");

  // Wrong CRC.
  std::snprintf(trailer, sizeof(trailer), "trailer crc32 %08x bytes %zu\n",
                Crc32(content) ^ 1u, content.size());
  EXPECT_THROW(VerifyCheckpointTrailer(content + trailer),
               std::runtime_error);
  // Wrong length (trailer from a longer file: truncation).
  std::snprintf(trailer, sizeof(trailer), "trailer crc32 %08x bytes %zu\n",
                Crc32(content), content.size() + 17);
  EXPECT_THROW(VerifyCheckpointTrailer(content + trailer),
               std::runtime_error);
  // Malformed trailer line.
  EXPECT_THROW(VerifyCheckpointTrailer(content + "trailer crc32 zzz\n"),
               std::runtime_error);
}

// The tentpole proof: sweep a simulated crash across every write point
// of a checkpoint save. At each kill point, the loader must recover a
// state the process actually reached (the new checkpoint when the
// rename landed, the previous generation otherwise), and a run resumed
// from the recovered state must match the never-crashed oracle's
// snapshots and alarms exactly.
TEST(CheckpointRecovery, EveryKillPointRecoversAndResumesLikeTheOracle) {
  const MeasurementFrame history = SystemFrame(900, 11);
  const MeasurementFrame holdout = SystemFrame(500, 13);
  const MeasurementFrame part2 = SystemFrame(12, 17);
  const MeasurementFrame part3 = SystemFrame(25, 19);

  SystemMonitor before(history, MeasurementGraph::FullMesh(4),
                       SmallConfig());
  before.CalibrateThresholds(holdout, 0.05);
  before.Run(SystemFrame(12, 15));
  const std::string state_a = Render(before);

  // The state the crashed save is trying to persist.
  auto after = FromString(state_a);
  after->Run(part2);
  const std::string state_b = Render(*after);
  ASSERT_NE(state_a, state_b);

  // Oracles: resume part3 from each state without ever crashing.
  const auto oracle_a = FromString(state_a);
  const auto snaps_oracle_a = oracle_a->Run(part3);
  const auto oracle_b = FromString(state_b);
  const auto snaps_oracle_b = oracle_b->Run(part3);

  CheckpointDir dir("pmcorr_ckpt_killsweep");
  const std::string path = dir.Path("monitor.ckpt");

  // Enumerate the write points of one save.
  long long points = 0;
  {
    SaveSystemMonitor(before, path);
    ScopedWriteFault probe(-1);
    SaveSystemMonitor(*after, path);
    points = probe.Seen();
  }
  ASSERT_GE(points, 5);  // open, >=1 chunk, sync, rename, dirsync

  for (long long kill = 0; kill < points; ++kill) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    dir.Clear();
    SaveSystemMonitor(before, path);  // gen0 = state A, intact on disk

    ScopedWriteFault crash(kill);
    bool threw = false;
    try {
      SaveSystemMonitor(*after, path);
    } catch (const std::exception&) {
      threw = true;
    }
    EXPECT_TRUE(crash.Fired());
    EXPECT_TRUE(threw);
    crash.Disarm();

    CheckpointRecoveryInfo info;
    std::unique_ptr<SystemMonitor> recovered;
    ASSERT_NO_THROW(recovered = LoadSystemMonitor(path, 1, &info));
    const std::string recovered_render = Render(*recovered);
    const bool got_new = recovered_render == state_b;
    if (!got_new) {
      // Crash before the rename landed: the rotated previous generation
      // must come back byte-identical, and the loader must report that
      // it actually fell back.
      EXPECT_EQ(recovered_render, state_a);
      EXPECT_EQ(info.generation, 1u);
      EXPECT_FALSE(info.rejected.empty());
    } else {
      EXPECT_EQ(info.generation, 0u);
    }

    // Resume and compare to the matching oracle: same snapshots, same
    // alarms, same final state.
    const auto snaps = recovered->Run(part3);
    const auto& oracle_snaps = got_new ? snaps_oracle_b : snaps_oracle_a;
    const SystemMonitor& oracle = got_new ? *oracle_b : *oracle_a;
    difftest::ExpectStreamsEqual(oracle_snaps, snaps);
    difftest::ExpectAlarmLogsEqual(oracle.Alarms(), recovered->Alarms());
    EXPECT_EQ(Render(*recovered), Render(oracle));
  }
}

// Sustained crash-and-recover cycling: a monitor that checkpoints on a
// cadence, crashes at a pseudo-random write point, recovers, and keeps
// monitoring — for at least 50 iterations (PMCORR_CRASH_LOOP_ITERS
// overrides). The invariant each cycle: recovery always succeeds and
// always yields either the state being saved or the last state known
// good on disk — never anything else, never a torn hybrid.
TEST(CheckpointRecovery, CrashLoopAlwaysRecoversALastGoodState) {
  int iterations = 60;
  if (const char* env = std::getenv("PMCORR_CRASH_LOOP_ITERS")) {
    iterations = std::max(1, std::atoi(env));
  }

  const MeasurementFrame history = SystemFrame(900, 21);
  CheckpointDir dir("pmcorr_ckpt_crashloop");
  const std::string path = dir.Path("monitor.ckpt");
  {
    SystemMonitor seed_monitor(history, MeasurementGraph::FullMesh(4),
                               SmallConfig());
    SaveSystemMonitor(seed_monitor, path);
  }
  auto monitor = LoadSystemMonitor(path, 1);
  std::string disk_good = Render(*monitor);

  Rng rng(2024);
  long long max_kill = 8;  // refined from observed write-point counts
  std::size_t recoveries = 0;
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    monitor->Run(SystemFrame(4, 1000 + static_cast<std::uint64_t>(i)));
    const std::string next = Render(*monitor);

    const long long kill = rng.UniformInt(0, max_kill + 2);
    ScopedWriteFault crash(kill);
    try {
      SaveSystemMonitor(*monitor, path);
    } catch (const std::exception&) {
    }
    max_kill = std::max(max_kill, crash.Seen() - 1);
    crash.Disarm();

    CheckpointRecoveryInfo info;
    ASSERT_NO_THROW(monitor = LoadSystemMonitor(path, 1, &info));
    const std::string recovered = Render(*monitor);
    EXPECT_TRUE(recovered == next || recovered == disk_good)
        << "recovered a state that was never good on disk";
    if (info.generation > 0) ++recoveries;
    disk_good = recovered;
  }
  // The sweep must actually have exercised fallback recovery, not just
  // clean saves.
  EXPECT_GT(recoveries, 0u);
}

}  // namespace
}  // namespace pmcorr
