// Incremental (delta) snapshot mode: RunDelta's stream reconstructs to
// exactly the snapshots Run would have produced — bitwise, at every
// thread count and batch size — and the delta form actually shrinks
// quiet ticks. Also covers baseline discipline after invalidation, the
// JSONL round-trip, and malformed-stream rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "engine/snapshot.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace {

using difftest::CheckpointString;
using difftest::ExpectAggregatesEqual;
using difftest::ExpectAlarmLogsEqual;
using difftest::ExpectStreamsEqual;

// Same correlated synthetic system as test_differential: 2 machines x 2
// metrics off one load signal, optionally decoupling m3 halfway.
MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed,
                                 bool break_m3_correlation_late = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3_correlation_late && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::clamp(walk, 20.0, 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  return config;
}

// A steady continuation of `test`: every measurement holds its last
// value with a sub-cell wobble (so the frozen-feed guard stays quiet),
// which makes every pair repeat the same cell transition bitwise.
MeasurementFrame SteadyTail(const MeasurementFrame& test,
                            std::size_t samples, std::size_t skip = 0) {
  MeasurementFrame quiet(test.TimeAt(test.SampleCount() + skip),
                         test.Period());
  for (const MeasurementInfo& info : test.Infos()) {
    const double last = test.Value(info.id, test.SampleCount() - 1);
    std::vector<double> steady(samples, last);
    for (std::size_t t = 1; t < steady.size(); t += 2) {
      steady[t] = last + std::abs(last) * 1e-9 + 1e-300;
    }
    quiet.Add(info, TimeSeries(quiet.StartTime(), quiet.Period(),
                               std::move(steady)));
  }
  return quiet;
}

// The core contract: a monitor run in delta mode must be observably
// identical to one run in full-snapshot mode — reconstructed snapshots,
// alarm logs, lifetime aggregates and the checkpoint all bitwise equal.
void ExpectDeltaEquivalent(const MeasurementFrame& history,
                           const MeasurementFrame& test,
                           const MeasurementFrame* holdout,
                           std::size_t threads, std::size_t batch) {
  MonitorConfig config = SmallConfig();
  config.threads = threads;
  config.batch_samples = batch;
  const MeasurementGraph graph = MeasurementGraph::FullMesh(4);

  SystemMonitor full(history, graph, config);
  SystemMonitor delta(history, graph, config);
  if (holdout != nullptr) {
    full.CalibrateThresholds(*holdout, 0.05);
    delta.CalibrateThresholds(*holdout, 0.05);
  }

  const auto snapshots = full.Run(test);
  const std::vector<SystemDelta> deltas = delta.RunDelta(test);
  ASSERT_FALSE(deltas.empty());
  EXPECT_TRUE(deltas.front().baseline);
  ExpectStreamsEqual(snapshots, ReconstructSnapshots(deltas));
  ExpectAlarmLogsEqual(full.Alarms(), delta.Alarms());
  ExpectAggregatesEqual(full, delta);
  EXPECT_EQ(CheckpointString(full), CheckpointString(delta));
}

TEST(Delta, ReconstructionMatchesRunAcrossThreadsAndBatches) {
  const MeasurementFrame history = CorrelatedFrame(1200, 3);
  const MeasurementFrame test = CorrelatedFrame(300, 4);
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t batch : {0u, 7u, 1u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      ExpectDeltaEquivalent(history, test, nullptr, threads, batch);
    }
  }
}

TEST(Delta, ReconstructionMatchesRunWithCalibratedAlarms) {
  // Decoupled second half: alarms, disengagements and outliers all flow
  // through the delta encoder.
  const MeasurementFrame history = CorrelatedFrame(1600, 5);
  const MeasurementFrame holdout = CorrelatedFrame(400, 6);
  const MeasurementFrame test = CorrelatedFrame(400, 7, true);
  for (std::size_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectDeltaEquivalent(history, test, &holdout, threads, 7);
  }
}

TEST(Delta, SecondRunContinuesWithoutBaseline) {
  const MeasurementFrame history = CorrelatedFrame(1200, 11);
  const MeasurementFrame test = CorrelatedFrame(200, 12);
  const TimePoint mid = test.TimeAt(100);
  const MeasurementFrame first =
      test.SliceByTime(test.StartTime(), mid);
  const MeasurementFrame second =
      test.SliceByTime(mid, test.TimeAt(test.SampleCount()));

  MonitorConfig config = SmallConfig();
  const MeasurementGraph graph = MeasurementGraph::FullMesh(4);
  SystemMonitor full(history, graph, config);
  SystemMonitor delta(history, graph, config);

  auto snapshots = full.Run(first);
  const auto rest = full.Run(second);
  snapshots.insert(snapshots.end(), rest.begin(), rest.end());

  std::vector<SystemDelta> deltas = delta.RunDelta(first);
  const auto more = delta.RunDelta(second);
  // Tracking survived across the call boundary: no second baseline.
  ASSERT_FALSE(more.empty());
  EXPECT_FALSE(more.front().baseline);
  deltas.insert(deltas.end(), more.begin(), more.end());
  ExpectStreamsEqual(snapshots, ReconstructSnapshots(deltas));

  // An empty frame between delta runs must not invalidate tracking.
  MeasurementFrame empty(second.TimeAt(second.SampleCount()),
                         second.Period());
  for (const MeasurementInfo& info : test.Infos()) {
    empty.Add(info, TimeSeries(empty.StartTime(), empty.Period(), {}));
  }
  EXPECT_TRUE(delta.RunDelta(empty).empty());
}

TEST(Delta, InvalidationForcesBaseline) {
  const MeasurementFrame history = CorrelatedFrame(1200, 21);
  const MeasurementFrame test = CorrelatedFrame(120, 22);
  MonitorConfig config = SmallConfig();
  const MeasurementGraph graph = MeasurementGraph::FullMesh(4);
  SystemMonitor monitor(history, graph, config);

  auto deltas = monitor.RunDelta(test);
  EXPECT_TRUE(deltas.front().baseline);

  // A Step in between bypasses dirty tracking -> next delta restates.
  std::vector<double> row(4);
  for (std::size_t a = 0; a < 4; ++a) {
    row[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), 0);
  }
  monitor.Step(row, test.TimeAt(test.SampleCount()));
  deltas = monitor.RunDelta(SteadyTail(test, 4, /*skip=*/1));
  ASSERT_FALSE(deltas.empty());
  EXPECT_TRUE(deltas.front().baseline);

  // Calibration rewrites alarm bounds -> baseline again.
  monitor.CalibrateThresholds(CorrelatedFrame(300, 23), 0.05);
  monitor.ResetSequences();
  deltas = monitor.RunDelta(test);
  ASSERT_FALSE(deltas.empty());
  EXPECT_TRUE(deltas.front().baseline);

  // Topology change (AddPair) -> baseline, with the grown pair width
  // declared on it. Start from a mesh missing one pair so the added
  // pair is new to the graph.
  std::vector<PairId> pairs = graph.Pairs();
  const PairId late = pairs.back();
  pairs.pop_back();
  const MeasurementGraph sparse =
      MeasurementGraph::FromPairs(4, std::move(pairs));
  SystemMonitor grown(history, sparse, config);
  const auto first = grown.RunDelta(test);
  EXPECT_EQ(first.front().pair_count, sparse.PairCount());
  grown.AddPair(late, history);
  const auto after = grown.RunDelta(SteadyTail(test, 4));
  ASSERT_FALSE(after.empty());
  EXPECT_TRUE(after.front().baseline);
  EXPECT_EQ(after.front().pair_count, sparse.PairCount() + 1);
}

// Wider correlated system for the size claim: every measurement is a
// distinct affine response to one shared load signal.
MeasurementFrame WideFrame(std::size_t measurements, std::size_t samples,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(measurements,
                                        std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    for (std::size_t c = 0; c < measurements; ++c) {
      cols[c][i] = (1.0 + 0.1 * static_cast<double>(c)) * load +
                   5.0 * static_cast<double>(c) + rng.Normal(0.0, 0.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (std::size_t c = 0; c < measurements; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(static_cast<std::int32_t>(c / 2));
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

TEST(Delta, QuietTickShrinksAtLeastNinetyPercent) {
  // The delta form's fixed overhead only pays off past trivial sizes:
  // 40 measurements -> a 780-pair full mesh, where a full snapshot line
  // is several KiB and a quiet tick must stay a few hundred bytes.
  const MeasurementFrame history = WideFrame(40, 800, 31);
  const MeasurementFrame test = WideFrame(40, 60, 32);
  MonitorConfig config = SmallConfig();
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(40), config);

  auto deltas = monitor.RunDelta(test);
  const auto quiet_deltas = monitor.RunDelta(SteadyTail(test, 16));
  ASSERT_FALSE(quiet_deltas.empty());
  EXPECT_FALSE(quiet_deltas.front().baseline);

  // Byte sizes through the real serializers: the smallest quiet-tick
  // delta line must be >= 90% smaller than the mean full-snapshot line.
  deltas.insert(deltas.end(), quiet_deltas.begin(), quiet_deltas.end());
  std::ostringstream full_stream;
  WriteSnapshotStreamJsonl(ReconstructSnapshots(deltas), full_stream);
  const double full_per_tick =
      static_cast<double>(full_stream.str().size()) /
      static_cast<double>(deltas.size());
  std::size_t quiet_bytes = full_stream.str().size();
  for (const SystemDelta& d : quiet_deltas) {
    std::ostringstream line;
    WriteDeltaStreamJsonl({d}, line);
    quiet_bytes = std::min(quiet_bytes, line.str().size());
  }
  EXPECT_LE(static_cast<double>(quiet_bytes), 0.1 * full_per_tick)
      << "quietest tick " << quiet_bytes << " B vs full " << full_per_tick;
}

TEST(Delta, JsonlRoundTripIsLossless) {
  const MeasurementFrame history = CorrelatedFrame(1600, 41);
  const MeasurementFrame holdout = CorrelatedFrame(400, 42);
  const MeasurementFrame test = CorrelatedFrame(300, 43, true);
  MonitorConfig config = SmallConfig();
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  monitor.CalibrateThresholds(holdout, 0.05);
  const auto deltas = monitor.RunDelta(test);

  std::ostringstream out;
  WriteDeltaStreamJsonl(deltas, out);
  std::istringstream in(out.str());
  const auto parsed = ReadDeltaStreamJsonl(in);
  ASSERT_EQ(parsed.size(), deltas.size());

  // Bitwise: reconstructing the parsed stream gives exactly the
  // snapshots of the in-memory one, and re-serializing is byte-stable.
  ExpectStreamsEqual(ReconstructSnapshots(deltas),
                     ReconstructSnapshots(parsed));
  std::ostringstream again;
  WriteDeltaStreamJsonl(parsed, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(Delta, ReconstructorRejectsMalformedStreams) {
  SystemDelta baseline;
  baseline.baseline = true;
  baseline.pair_count = 2;
  baseline.measurement_count = 2;
  baseline.pair_changes = {{0, 0.5}, {1, 0.75}};

  // First delta must be a baseline.
  {
    DeltaReconstructor r;
    SystemDelta plain = baseline;
    plain.baseline = false;
    EXPECT_THROW(r.Apply(plain), std::runtime_error);
  }
  // Width change without a baseline.
  {
    DeltaReconstructor r;
    r.Apply(baseline);
    SystemDelta next;
    next.pair_count = 3;
    next.measurement_count = 2;
    EXPECT_THROW(r.Apply(next), std::runtime_error);
  }
  // Out-of-range and non-ascending change indices.
  {
    DeltaReconstructor r;
    SystemDelta bad = baseline;
    bad.pair_changes = {{5, 0.5}};
    EXPECT_THROW(r.Apply(bad), std::runtime_error);
  }
  {
    DeltaReconstructor r;
    SystemDelta bad = baseline;
    bad.pair_changes = {{1, 0.5}, {0, 0.75}};
    EXPECT_THROW(r.Apply(bad), std::runtime_error);
  }
  // Disengaging a pair that was never engaged is fine on a non-baseline
  // only if it was engaged before; on a baseline it is malformed.
  {
    DeltaReconstructor r;
    SystemDelta bad = baseline;
    bad.pair_disengaged = {0};
    EXPECT_THROW(r.Apply(bad), std::runtime_error);
  }
}

TEST(Delta, JsonlReaderRejectsMalformedLines) {
  const auto expect_throws = [](const std::string& line) {
    std::istringstream in(line + "\n");
    EXPECT_THROW(ReadDeltaStreamJsonl(in), std::runtime_error) << line;
  };
  const std::string good =
      "{\"sample\":0,\"t\":0,\"baseline\":true,\"pairs\":2,"
      "\"measurements\":2,\"q\":null,\"pair_changes\":[[0,0.5]],"
      "\"pair_disengaged\":[],\"qa_changes\":[],\"qa_disengaged\":[],"
      "\"alarmed\":[],\"outliers\":0,\"extended\":0,\"event\":0,"
      "\"suppressed\":0,\"quarantined\":0,\"health\":false,"
      "\"health_changes\":[]}";
  {
    std::istringstream in(good + "\n");
    EXPECT_EQ(ReadDeltaStreamJsonl(in).size(), 1u);
  }
  // Key out of order / missing.
  expect_throws("{\"sample\":0,\"time\":0}");
  // Change index outside the declared width.
  expect_throws(
      "{\"sample\":0,\"t\":0,\"baseline\":true,\"pairs\":2,"
      "\"measurements\":2,\"q\":null,\"pair_changes\":[[7,0.5]],"
      "\"pair_disengaged\":[],\"qa_changes\":[],\"qa_disengaged\":[],"
      "\"alarmed\":[],\"outliers\":0,\"extended\":0,\"event\":0,"
      "\"suppressed\":0,\"quarantined\":0,\"health\":false,"
      "\"health_changes\":[]}");
  // Non-finite score.
  expect_throws(
      "{\"sample\":0,\"t\":0,\"baseline\":true,\"pairs\":2,"
      "\"measurements\":2,\"q\":inf,\"pair_changes\":[],"
      "\"pair_disengaged\":[],\"qa_changes\":[],\"qa_disengaged\":[],"
      "\"alarmed\":[],\"outliers\":0,\"extended\":0,\"event\":0,"
      "\"suppressed\":0,\"quarantined\":0,\"health\":false,"
      "\"health_changes\":[]}");
  // Unknown stream-event and health codes.
  expect_throws(
      "{\"sample\":0,\"t\":0,\"baseline\":true,\"pairs\":2,"
      "\"measurements\":2,\"q\":null,\"pair_changes\":[],"
      "\"pair_disengaged\":[],\"qa_changes\":[],\"qa_disengaged\":[],"
      "\"alarmed\":[],\"outliers\":0,\"extended\":0,\"event\":9,"
      "\"suppressed\":0,\"quarantined\":0,\"health\":false,"
      "\"health_changes\":[]}");
  expect_throws(
      "{\"sample\":0,\"t\":0,\"baseline\":true,\"pairs\":2,"
      "\"measurements\":2,\"q\":null,\"pair_changes\":[],"
      "\"pair_disengaged\":[],\"qa_changes\":[],\"qa_disengaged\":[],"
      "\"alarmed\":[],\"outliers\":0,\"extended\":0,\"event\":0,"
      "\"suppressed\":0,\"quarantined\":0,\"health\":true,"
      "\"health_changes\":[[0,9]]}");
  // Trailing bytes.
  expect_throws(good + "x");
}

}  // namespace
}  // namespace pmcorr
