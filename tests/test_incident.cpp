// Tests for the streaming incident tracker.
#include <gtest/gtest.h>

#include "engine/incident.h"

namespace pmcorr {
namespace {

IncidentConfig Config() {
  IncidentConfig config;
  config.merge_gap = 10 * kMinute;
  config.cooldown = 5 * kMinute;
  return config;
}

TEST(IncidentTracker, OpensOnFirstAlarm) {
  IncidentTracker tracker(Config());
  EXPECT_EQ(tracker.Observe(100, false, 1.0), nullptr);
  const Incident* opened = tracker.Observe(200, true, 0.3);
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->start, 200);
  EXPECT_EQ(opened->alarm_count, 1u);
  EXPECT_TRUE(tracker.Open().has_value());
}

TEST(IncidentTracker, MergesNearbyAlarms) {
  IncidentTracker tracker(Config());
  ASSERT_NE(tracker.Observe(0, true, 0.4), nullptr);
  // 6 minutes later: same incident (gap 10 min).
  EXPECT_EQ(tracker.Observe(6 * kMinute, true, 0.2), nullptr);
  EXPECT_EQ(tracker.Observe(12 * kMinute, true, 0.5), nullptr);
  EXPECT_EQ(tracker.Incidents().size(), 1u);
  EXPECT_EQ(tracker.Incidents().front().alarm_count, 3u);
  EXPECT_DOUBLE_EQ(tracker.Incidents().front().min_score, 0.2);
}

TEST(IncidentTracker, ClosesAfterQuietPeriod) {
  IncidentTracker tracker(Config());
  tracker.Observe(0, true, 0.4);
  // Quiet non-alarming samples past the merge gap close the incident.
  tracker.Observe(11 * kMinute, false, 0.95);
  EXPECT_FALSE(tracker.Open().has_value());
  ASSERT_EQ(tracker.Incidents().size(), 1u);
  EXPECT_FALSE(tracker.Incidents().front().open);
  EXPECT_EQ(tracker.Incidents().front().end, 10 * kMinute);
}

TEST(IncidentTracker, CooldownReopensInsteadOfPaging) {
  IncidentTracker tracker(Config());
  tracker.Observe(0, true, 0.4);
  tracker.Observe(11 * kMinute, false, 0.95);  // closes at 10 min
  ASSERT_FALSE(tracker.Open().has_value());
  // Alarm at 13 min: 3 min after close, inside the 5-min cooldown ->
  // re-opens the same incident, no new page.
  EXPECT_EQ(tracker.Observe(13 * kMinute, true, 0.1), nullptr);
  EXPECT_EQ(tracker.Incidents().size(), 1u);
  EXPECT_TRUE(tracker.Incidents().front().open);
  EXPECT_DOUBLE_EQ(tracker.Incidents().front().min_score, 0.1);
}

TEST(IncidentTracker, NewIncidentAfterCooldown) {
  IncidentTracker tracker(Config());
  tracker.Observe(0, true, 0.4);
  tracker.Observe(11 * kMinute, false, 0.95);  // closes at 10 min
  // 30 minutes later: well past cooldown -> a fresh incident pages.
  const Incident* opened = tracker.Observe(40 * kMinute, true, 0.3);
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(tracker.Incidents().size(), 2u);
}

TEST(IncidentTracker, FlushClosesOpenIncident) {
  IncidentTracker tracker(Config());
  tracker.Observe(0, true, 0.4);
  tracker.Flush(2 * kMinute);
  EXPECT_FALSE(tracker.Open().has_value());
  ASSERT_EQ(tracker.Incidents().size(), 1u);
  EXPECT_EQ(tracker.Incidents().front().end, 2 * kMinute);
  // Flushing with nothing open is a no-op.
  tracker.Flush(3 * kMinute);
  EXPECT_EQ(tracker.Incidents().size(), 1u);
}

TEST(IncidentTracker, NoAlarmsNoIncidents) {
  IncidentTracker tracker(Config());
  for (TimePoint t = 0; t < kHour; t += kMinute) {
    EXPECT_EQ(tracker.Observe(t, false, 0.99), nullptr);
  }
  EXPECT_TRUE(tracker.Incidents().empty());
}

}  // namespace
}  // namespace pmcorr
