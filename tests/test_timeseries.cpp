// Tests for src/timeseries: series, frame, resample, summary.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "timeseries/frame.h"
#include "timeseries/resample.h"
#include "timeseries/series.h"
#include "timeseries/summary.h"

namespace pmcorr {
namespace {

TimeSeries MakeSeries(std::vector<double> values, TimePoint start = 1000,
                      Duration period = 60) {
  return TimeSeries(start, period, std::move(values));
}

TEST(TimeSeries, BasicAccessors) {
  const TimeSeries s = MakeSeries({1.0, 2.0, 3.0});
  EXPECT_EQ(s.Size(), 3u);
  EXPECT_EQ(s.Start(), 1000);
  EXPECT_EQ(s.TimeAt(2), 1120);
  EXPECT_EQ(s.End(), 1180);
  EXPECT_DOUBLE_EQ(s.At(1), 2.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
}

TEST(TimeSeries, IndexAtOrAfter) {
  const TimeSeries s = MakeSeries({1, 2, 3, 4});
  EXPECT_EQ(s.IndexAtOrAfter(0), 0u);
  EXPECT_EQ(s.IndexAtOrAfter(1000), 0u);
  EXPECT_EQ(s.IndexAtOrAfter(1001), 1u);
  EXPECT_EQ(s.IndexAtOrAfter(1060), 1u);
  EXPECT_EQ(s.IndexAtOrAfter(99999), 4u);
}

TEST(TimeSeries, SliceByTimeRebasesStart) {
  const TimeSeries s = MakeSeries({1, 2, 3, 4, 5});
  const TimeSeries cut = s.SliceByTime(1060, 1180);
  EXPECT_EQ(cut.Size(), 2u);
  EXPECT_EQ(cut.Start(), 1060);
  EXPECT_DOUBLE_EQ(cut.At(0), 2.0);
  EXPECT_DOUBLE_EQ(cut.At(1), 3.0);
}

TEST(TimeSeries, SliceByIndexClamps) {
  const TimeSeries s = MakeSeries({1, 2, 3});
  EXPECT_EQ(s.SliceByIndex(2, 100).Size(), 1u);
  EXPECT_EQ(s.SliceByIndex(5, 9).Size(), 0u);
  EXPECT_EQ(s.SliceByIndex(2, 1).Size(), 0u);
}

TEST(TimeSeries, AppendKeepsGrid) {
  TimeSeries s = MakeSeries({1.0});
  s.Append(2.0);
  EXPECT_EQ(s.Size(), 2u);
  EXPECT_EQ(s.TimeAt(1), 1060);
}

MeasurementFrame MakeFrame() {
  MeasurementFrame frame(0, 60);
  MeasurementInfo a;
  a.machine = MachineId(0);
  a.kind = MetricKind::kCpuUtilization;
  a.name = "cpu@m0";
  frame.Add(a, TimeSeries(0, 60, {1, 2, 3}));
  MeasurementInfo b;
  b.machine = MachineId(1);
  b.kind = MetricKind::kIfInOctetsRate;
  b.name = "net@m1";
  frame.Add(b, TimeSeries(0, 60, {4, 5, 6}));
  MeasurementInfo c;
  c.machine = MachineId(0);
  c.kind = MetricKind::kMemoryUtilization;
  c.name = "mem@m0";
  frame.Add(c, TimeSeries(0, 60, {7, 8, 9}));
  return frame;
}

TEST(MeasurementFrame, AddAssignsDenseIds) {
  const MeasurementFrame frame = MakeFrame();
  EXPECT_EQ(frame.MeasurementCount(), 3u);
  EXPECT_EQ(frame.SampleCount(), 3u);
  EXPECT_EQ(frame.Info(MeasurementId(1)).name, "net@m1");
  EXPECT_DOUBLE_EQ(frame.Value(MeasurementId(2), 1), 8.0);
}

TEST(MeasurementFrame, RejectsMismatchedSeries) {
  MeasurementFrame frame = MakeFrame();
  MeasurementInfo bad;
  bad.name = "bad";
  EXPECT_THROW(frame.Add(bad, TimeSeries(0, 30, {1, 2, 3})),
               std::invalid_argument);
  EXPECT_THROW(frame.Add(bad, TimeSeries(0, 60, {1, 2})),
               std::invalid_argument);
  EXPECT_THROW(frame.Add(bad, TimeSeries(60, 60, {1, 2, 3})),
               std::invalid_argument);
}

TEST(MeasurementFrame, MachineQueries) {
  const MeasurementFrame frame = MakeFrame();
  const auto machines = frame.Machines();
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_EQ(machines[0], MachineId(0));
  const auto on0 = frame.MeasurementsOn(MachineId(0));
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], MeasurementId(0));
  EXPECT_EQ(on0[1], MeasurementId(2));
}

TEST(MeasurementFrame, FindByName) {
  const MeasurementFrame frame = MakeFrame();
  ASSERT_TRUE(frame.FindByName("mem@m0").has_value());
  EXPECT_EQ(frame.FindByName("mem@m0")->value, 2);
  EXPECT_FALSE(frame.FindByName("nope").has_value());
}

TEST(MeasurementFrame, SliceByTimeKeepsInfos) {
  const MeasurementFrame frame = MakeFrame();
  const MeasurementFrame cut = frame.SliceByTime(60, 180);
  EXPECT_EQ(cut.MeasurementCount(), 3u);
  EXPECT_EQ(cut.SampleCount(), 2u);
  EXPECT_EQ(cut.StartTime(), 60);
  EXPECT_DOUBLE_EQ(cut.Value(MeasurementId(0), 0), 2.0);
}

TEST(MeasurementFrame, SelectMeasurementsReindexes) {
  const MeasurementFrame frame = MakeFrame();
  const MeasurementFrame sel =
      frame.SelectMeasurements({MeasurementId(2), MeasurementId(0)});
  EXPECT_EQ(sel.MeasurementCount(), 2u);
  EXPECT_EQ(sel.Info(MeasurementId(0)).name, "mem@m0");
  EXPECT_EQ(sel.Info(MeasurementId(0)).id.value, 0);
  EXPECT_DOUBLE_EQ(sel.Value(MeasurementId(1), 0), 1.0);
}

TEST(Regularize, AveragesSlotAndFills) {
  std::vector<RawSample> raw = {
      {0, 2.0}, {10, 4.0},  // slot 0 -> mean 3
      {130, 7.0},           // slot 2
  };
  const TimeSeries s = Regularize(raw, 0, 60, 4, GapFill::kHold);
  ASSERT_EQ(s.Size(), 4u);
  EXPECT_DOUBLE_EQ(s.At(0), 3.0);
  EXPECT_DOUBLE_EQ(s.At(1), 3.0);  // held
  EXPECT_DOUBLE_EQ(s.At(2), 7.0);
  EXPECT_DOUBLE_EQ(s.At(3), 7.0);  // held
}

TEST(Regularize, InterpolateFillsLinearly) {
  std::vector<RawSample> raw = {{0, 1.0}, {180, 7.0}};
  const TimeSeries s = Regularize(raw, 0, 60, 4, GapFill::kInterpolate);
  ASSERT_EQ(s.Size(), 4u);
  EXPECT_DOUBLE_EQ(s.At(1), 3.0);
  EXPECT_DOUBLE_EQ(s.At(2), 5.0);
}

TEST(Regularize, NanModeLeavesGaps) {
  std::vector<RawSample> raw = {{0, 1.0}};
  const TimeSeries s = Regularize(raw, 0, 60, 3, GapFill::kNan);
  EXPECT_TRUE(std::isnan(s.At(1)));
  EXPECT_TRUE(std::isnan(s.At(2)));
}

TEST(Regularize, IgnoresOutOfRangeSamples) {
  std::vector<RawSample> raw = {{-50, 9.0}, {0, 1.0}, {999, 9.0}};
  const TimeSeries s = Regularize(raw, 0, 60, 2, GapFill::kHold);
  EXPECT_DOUBLE_EQ(s.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(1), 1.0);
}

TEST(Downsample, AveragesBlocks) {
  const TimeSeries s = MakeSeries({1, 2, 3, 4, 5});
  const TimeSeries d = Downsample(s, 2);
  ASSERT_EQ(d.Size(), 3u);
  EXPECT_DOUBLE_EQ(d.At(0), 1.5);
  EXPECT_DOUBLE_EQ(d.At(1), 3.5);
  EXPECT_DOUBLE_EQ(d.At(2), 5.0);  // partial block
  EXPECT_EQ(d.Period(), 120);
}

TEST(RepairNans, InterpolatesInterior) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries s = MakeSeries({1.0, nan, nan, 7.0});
  EXPECT_EQ(RepairNans(s), 2u);
  EXPECT_DOUBLE_EQ(s.At(1), 3.0);
  EXPECT_DOUBLE_EQ(s.At(2), 5.0);
}

TEST(RepairNans, EdgesTakeNearestFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries s = MakeSeries({nan, 2.0, nan});
  EXPECT_EQ(RepairNans(s), 2u);
  EXPECT_DOUBLE_EQ(s.At(0), 2.0);
  EXPECT_DOUBLE_EQ(s.At(2), 2.0);
}

TEST(RepairNans, AllNanUntouched) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries s = MakeSeries({nan, nan});
  EXPECT_EQ(RepairNans(s), 0u);
  EXPECT_TRUE(std::isnan(s.At(0)));
}

MeasurementFrame CorrelatedFrame(std::size_t n = 400) {
  Rng rng(99);
  std::vector<double> load(n), linear(n), nonlinear(n), flat(n);
  for (std::size_t i = 0; i < n; ++i) {
    load[i] = 50.0 + 30.0 * std::sin(i * 0.05) + rng.Normal(0.0, 1.0);
    linear[i] = 3.0 * load[i] + 5.0 + rng.Normal(0.0, 0.5);
    // Non-monotone (parabolic) response: no linear fit can explain it.
    nonlinear[i] =
        (load[i] - 50.0) * (load[i] - 50.0) / 9.0 + rng.Normal(0.0, 0.2);
    flat[i] = 10.0 + rng.Normal(0.0, 0.01);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  auto add = [&](const char* name, std::vector<double> v, int machine) {
    MeasurementInfo info;
    info.machine = MachineId(machine);
    info.name = name;
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(v)));
  };
  add("load", std::move(load), 0);
  add("linear", std::move(linear), 0);
  add("nonlinear", std::move(nonlinear), 1);
  add("flat", std::move(flat), 1);
  return frame;
}

TEST(Summary, SummarizeComputesCv) {
  const auto frame = CorrelatedFrame();
  const auto summaries = Summarize(frame);
  ASSERT_EQ(summaries.size(), 4u);
  EXPECT_GT(summaries[0].cv, 0.1);      // load varies a lot
  EXPECT_LT(summaries[3].cv, 0.01);     // flat is nearly constant
  EXPECT_GT(summaries[0].max, summaries[0].min);
}

TEST(Summary, FindLinearRelationsFlagsOnlyLinearPair) {
  const auto frame = CorrelatedFrame();
  const auto relations = FindLinearRelations(frame, 0.95);
  ASSERT_GE(relations.size(), 1u);
  bool found = false;
  for (const auto& rel : relations) {
    if (rel.pair == PairId(MeasurementId(0), MeasurementId(1))) found = true;
    EXPECT_GE(rel.r_squared, 0.95);
  }
  EXPECT_TRUE(found);
}

TEST(Summary, SelectMeasurementsAppliesPaperCriteria) {
  const auto frame = CorrelatedFrame();
  SelectionCriteria criteria;
  criteria.min_cv = 0.05;
  criteria.linear_r2_threshold = 0.95;
  criteria.max_measurements = 10;
  const auto kept = SelectMeasurements(frame, criteria);
  // load & linear are excluded (linear pair), flat fails the variance
  // bar; nonlinear survives unless it is linear with load at this noise.
  for (MeasurementId id : kept) {
    EXPECT_NE(id.value, 3);  // flat never passes
  }
  EXPECT_FALSE(kept.empty());
}

TEST(Summary, SelectRejectsSlowSampling) {
  MeasurementFrame slow(0, kPaperSamplePeriod * 10);
  MeasurementInfo info;
  info.name = "x";
  std::vector<double> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::sin(i * 0.7) * 10 + 20;
  slow.Add(info, TimeSeries(0, kPaperSamplePeriod * 10, std::move(v)));
  EXPECT_TRUE(SelectMeasurements(slow, {}).empty());
}

}  // namespace
}  // namespace pmcorr
