// Differential tests for the compile-then-replay Learn pipeline: the
// row-bucketed replay path must produce models bitwise identical to the
// sequential reference (LearnSequential / the ObserveTransition loop)
// across kernels, grid sizes, gap patterns, update weights, forgetting
// factors, and serial-vs-threaded replay schedules. The weight != 1 /
// forgetting != 1 cases are load-bearing: they once caught the AVX-512
// clones contracting e * f + w * p into a fused multiply-add (one
// rounding instead of two) before -ffp-contract=off pinned it.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/model.h"
#include "core/transition_matrix.h"
#include "engine/thread_pool.h"
#include "grid/grid.h"
#include "grid/kernels.h"
#include "io/model_io.h"

namespace pmcorr {
namespace {

// Bit-exact comparison via the text checkpoint: SavePairModel serializes
// config, both interval lists, evidence and counts with round-trippable
// doubles, so equal strings mean equal models down to the last ulp.
std::string Serialize(const PairModel& model) {
  std::ostringstream out;
  SavePairModel(model, out);
  return out.str();
}

// A correlated pair with seasonal structure and noise — the shape the
// paper's CPU/load measurements take.
void MakeHistory(std::size_t n, std::uint64_t seed, std::vector<double>* xs,
                 std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double load = 50.0 + 25.0 * std::sin(t * 0.02) +
                        8.0 * std::sin(t * 0.21) + rng.Normal(0.0, 2.0);
    (*xs)[i] = load;
    (*ys)[i] = 1.8 * load + 12.0 + rng.Normal(0.0, 3.0);
  }
}

// Punches collector gaps into a history: every stride-th x sample plus a
// contiguous outage in y. Exercises the filtered (non-gap-free) compile
// path, where transitions must re-break across missing samples.
void PunchGaps(std::vector<double>* xs, std::vector<double>* ys,
               std::size_t stride) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = stride; i < xs->size(); i += stride) (*xs)[i] = nan;
  const std::size_t outage = xs->size() / 3;
  for (std::size_t i = outage; i < outage + 9 && i < ys->size(); ++i) {
    (*ys)[i] = nan;
  }
}

ModelConfig BaseConfig(std::size_t units, std::size_t max_intervals) {
  ModelConfig config;
  config.partition.units = units;
  config.partition.max_intervals = max_intervals;
  return config;
}

TEST(LearnReplay, MatchesSequentialAcrossKernelsAndGrids) {
  std::vector<double> xs, ys;
  MakeHistory(2500, 11, &xs, &ys);
  const struct {
    std::size_t units;
    std::size_t max_intervals;
  } grids[] = {{20, 6}, {50, 12}, {80, 20}};
  for (const auto& grid : grids) {
    for (const auto type :
         {KernelConfig::Type::kTriangular, KernelConfig::Type::kExponential}) {
      ModelConfig config = BaseConfig(grid.units, grid.max_intervals);
      config.kernel.type = type;
      const PairModel replayed = PairModel::Learn(xs, ys, config);
      const PairModel sequential = PairModel::LearnSequential(xs, ys, config);
      EXPECT_EQ(Serialize(replayed), Serialize(sequential))
          << "units=" << grid.units << " max=" << grid.max_intervals
          << " kernel=" << static_cast<int>(type);
    }
  }
}

TEST(LearnReplay, MatchesSequentialWithNaNGaps) {
  for (const std::size_t stride : {5u, 17u}) {
    std::vector<double> xs, ys;
    MakeHistory(1800, 23, &xs, &ys);
    PunchGaps(&xs, &ys, stride);
    for (const auto type :
         {KernelConfig::Type::kTriangular, KernelConfig::Type::kExponential}) {
      ModelConfig config = BaseConfig(40, 10);
      config.kernel.type = type;
      const PairModel replayed = PairModel::Learn(xs, ys, config);
      const PairModel sequential = PairModel::LearnSequential(xs, ys, config);
      EXPECT_EQ(Serialize(replayed), Serialize(sequential))
          << "stride=" << stride << " kernel=" << static_cast<int>(type);
    }
  }
}

TEST(LearnReplay, MatchesSequentialAcrossWeightAndForgetting) {
  std::vector<double> xs, ys;
  MakeHistory(2000, 31, &xs, &ys);
  std::vector<double> gx = xs, gy = ys;
  PunchGaps(&gx, &gy, 13);
  for (const double weight : {1.0, 0.7}) {
    for (const double forgetting : {1.0, 0.95}) {
      ModelConfig config = BaseConfig(50, 12);
      config.likelihood_weight = weight;
      config.forgetting = forgetting;
      EXPECT_EQ(Serialize(PairModel::Learn(xs, ys, config)),
                Serialize(PairModel::LearnSequential(xs, ys, config)))
          << "w=" << weight << " f=" << forgetting;
      EXPECT_EQ(Serialize(PairModel::Learn(gx, gy, config)),
                Serialize(PairModel::LearnSequential(gx, gy, config)))
          << "gaps w=" << weight << " f=" << forgetting;
    }
  }
}

TEST(LearnReplay, ThreadedReplayMatchesSerialReplay) {
  std::vector<double> xs, ys;
  MakeHistory(3000, 41, &xs, &ys);
  ModelConfig config = BaseConfig(60, 14);
  config.likelihood_weight = 0.9;
  ThreadPool pool(4);
  const ParallelRunner runner =
      [&pool](std::size_t count, const std::function<void(std::size_t)>& fn) {
        pool.ParallelFor(count, fn);
      };
  const std::string serial = Serialize(PairModel::Learn(xs, ys, config));
  const std::string threaded =
      Serialize(PairModel::Learn(xs, ys, config, runner));
  const std::string sequential =
      Serialize(PairModel::LearnSequential(xs, ys, config));
  EXPECT_EQ(serial, sequential);
  EXPECT_EQ(threaded, sequential);
}

// ReplayTransitions against the one-at-a-time ObserveTransition loop on
// a synthetic sequence with hot rows (repeated sources) and self-loops —
// the bucketed replay must reproduce the loop's matrices bitwise, with
// and without a parallel schedule.
TEST(LearnReplay, ReplayTransitionsMatchesObserveLoop) {
  const Grid2D grid(IntervalList::Uniform(0.0, 8.0, 8),
                    IntervalList::Uniform(0.0, 6.0, 6));
  KernelConfig kernel_config;
  kernel_config.type = KernelConfig::Type::kExponential;
  const auto kernel = MakeKernel(kernel_config);
  const std::size_t cells = grid.CellCount();

  Rng rng(57);
  std::vector<Transition> seq;
  std::uint32_t at = 0;
  for (std::size_t i = 0; i < 4000; ++i) {
    // Random walk over cells with occasional jumps: adjacent sources
    // repeat (hot rows), and every row gets traffic eventually.
    const std::uint32_t next =
        (i % 11 == 0)
            ? static_cast<std::uint32_t>(
                  rng.UniformInt(0, static_cast<std::int64_t>(cells) - 1))
            : static_cast<std::uint32_t>(
                  (at + cells - 1 +
                   static_cast<std::size_t>(rng.UniformInt(0, 2))) %
                  cells);
    seq.push_back({at, next});
    at = next;
  }

  ThreadPool pool(4);
  const ParallelRunner runner =
      [&pool](std::size_t count, const std::function<void(std::size_t)>& fn) {
        pool.ParallelFor(count, fn);
      };
  for (const double weight : {1.0, 0.7}) {
    for (const double forgetting : {1.0, 0.95}) {
      TransitionMatrix loop = TransitionMatrix::Prior(grid, *kernel);
      for (const Transition& t : seq) {
        loop.ObserveTransition(t.from, t.to, grid, *kernel, weight,
                               forgetting);
      }
      TransitionMatrix replay_serial = TransitionMatrix::Prior(grid, *kernel);
      replay_serial.ReplayTransitions(seq, weight, forgetting);
      TransitionMatrix replay_parallel = TransitionMatrix::Prior(grid, *kernel);
      replay_parallel.ReplayTransitions(seq, weight, forgetting, runner);
      ASSERT_EQ(loop.Evidence().size(), replay_serial.Evidence().size());
      for (std::size_t i = 0; i < loop.Evidence().size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(loop.Evidence()[i]),
                  std::bit_cast<std::uint64_t>(replay_serial.Evidence()[i]))
            << "serial evidence[" << i << "] w=" << weight
            << " f=" << forgetting;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(loop.Evidence()[i]),
                  std::bit_cast<std::uint64_t>(replay_parallel.Evidence()[i]))
            << "parallel evidence[" << i << "] w=" << weight
            << " f=" << forgetting;
      }
      EXPECT_EQ(loop.Counts(), replay_serial.Counts());
      EXPECT_EQ(loop.Counts(), replay_parallel.Counts());
      EXPECT_EQ(loop.ObservedCount(),
                replay_serial.ObservedCount());
      EXPECT_EQ(loop.ObservedCount(),
                replay_parallel.ObservedCount());
    }
  }
}

}  // namespace
}  // namespace pmcorr
