// Tests for PairModel: the full observe/score/alarm/update loop.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/model.h"

namespace pmcorr {
namespace {

// Two correlated series: y is a noisy saturating function of x, which
// itself follows a smooth daily-ish cycle. Transitions are gradual, as
// the paper assumes.
void MakeHistory(std::size_t n, std::uint64_t seed, std::vector<double>* xs,
                 std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double load =
        60.0 + 40.0 * std::sin(static_cast<double>(i) * 0.026) +
        rng.Normal(0.0, 2.0);
    (*xs)[i] = load;
    (*ys)[i] = 100.0 * load / (load + 50.0) + rng.Normal(0.0, 0.5);
  }
}

ModelConfig DefaultConfig() {
  ModelConfig config;
  config.partition.units = 40;
  config.partition.max_intervals = 12;
  return config;
}

TEST(PairModel, LearnBuildsGridCoveringHistory) {
  std::vector<double> xs, ys;
  MakeHistory(1000, 3, &xs, &ys);
  const PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_TRUE(model.Grid().CellOf({xs[i], ys[i]}).has_value());
  }
  EXPECT_GT(model.Matrix().ObservedCount(), 900u);
}

TEST(PairModel, LearnRejectsBadInput) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(PairModel::Learn(xs, ys, DefaultConfig()),
               std::invalid_argument);
  EXPECT_THROW(PairModel::Learn({}, {}, DefaultConfig()),
               std::invalid_argument);
}

TEST(PairModel, FirstStepHasNoScore) {
  std::vector<double> xs, ys;
  MakeHistory(500, 5, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  const StepOutcome out = model.Step(xs[0], ys[0]);
  EXPECT_FALSE(out.has_score);
  EXPECT_FALSE(out.outlier);
  ASSERT_TRUE(out.cell.has_value());
}

TEST(PairModel, NormalTransitionsScoreHigh) {
  std::vector<double> xs, ys;
  MakeHistory(2000, 7, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());

  std::vector<double> tx, ty;
  MakeHistory(400, 8, &tx, &ty);  // same process, fresh noise
  double total = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const StepOutcome out = model.Step(tx[i], ty[i]);
    if (out.has_score) {
      total += out.fitness;
      ++scored;
    }
  }
  ASSERT_GT(scored, 300u);
  // The paper reports average fitness between 0.8 and 0.98 on normal data.
  EXPECT_GT(total / static_cast<double>(scored), 0.8);
}

TEST(PairModel, AnomalousJumpScoresLowAndOutlierScoresZero) {
  std::vector<double> xs, ys;
  MakeHistory(2000, 9, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());

  // Establish a normal previous point.
  model.Step(xs[10], ys[10]);
  // A correlation-breaking jump inside the grid: x mid-range, y extreme.
  const double weird_x = xs[10];
  const double weird_y = 99.0;  // saturation zone while load is moderate
  const StepOutcome odd = model.Step(weird_x, weird_y);
  if (odd.has_score && !odd.outlier) {
    EXPECT_LT(odd.fitness, 0.7);
  }

  // A far outlier beyond the extension margin: fitness exactly 0.
  model.Step(xs[11], ys[11]);
  const StepOutcome out = model.Step(1e6, -1e6);
  EXPECT_TRUE(out.outlier);
  EXPECT_TRUE(out.has_score);
  EXPECT_DOUBLE_EQ(out.fitness, 0.0);
  EXPECT_DOUBLE_EQ(out.probability, 0.0);
  EXPECT_FALSE(out.cell.has_value());

  // The sample after an outlier has no source cell -> no score.
  const StepOutcome next = model.Step(xs[12], ys[12]);
  EXPECT_FALSE(next.has_score);
}

TEST(PairModel, AdaptiveExtendsGridUnderDrift) {
  std::vector<double> xs, ys;
  MakeHistory(1500, 11, &xs, &ys);
  ModelConfig config = DefaultConfig();
  config.lambda1 = 3.0;
  config.lambda2 = 3.0;
  PairModel model = PairModel::Learn(xs, ys, config);

  const double old_hi = model.Grid().Dim1().Hi();
  // Drift just past the boundary — within lambda * r_avg.
  const double drift_x = old_hi + 0.4 * model.Grid().InitialAvgWidthDim1();
  model.Step(xs[0], ys[0]);
  const StepOutcome out = model.Step(drift_x, ys[1]);
  EXPECT_TRUE(out.extended_grid);
  EXPECT_FALSE(out.outlier);
  EXPECT_GT(model.Grid().Dim1().Hi(), old_hi);
  EXPECT_EQ(model.Stats().extensions, 1u);
}

TEST(PairModel, OfflineModelNeverChanges) {
  std::vector<double> xs, ys;
  MakeHistory(1500, 13, &xs, &ys);
  ModelConfig config = DefaultConfig();
  config.adaptive = false;
  PairModel model = PairModel::Learn(xs, ys, config);

  const std::size_t cells = model.Matrix().CellCount();
  const auto evidence = model.Matrix().Evidence();
  model.Step(xs[0], ys[0]);
  model.Step(xs[1], ys[1]);
  model.Step(model.Grid().Dim1().Hi() + 0.1, ys[2]);  // just outside
  EXPECT_EQ(model.Matrix().CellCount(), cells);        // no extension
  EXPECT_EQ(model.Matrix().Evidence(), evidence);      // no updates
  EXPECT_EQ(model.Stats().matrix_updates, 0u);
}

TEST(PairModel, AlarmsFireOnThresholds) {
  std::vector<double> xs, ys;
  MakeHistory(2000, 15, &xs, &ys);
  ModelConfig config = DefaultConfig();
  config.fitness_alarm_threshold = 0.5;
  PairModel model = PairModel::Learn(xs, ys, config);

  model.Step(xs[0], ys[0]);
  const StepOutcome out = model.Step(1e7, 1e7);
  EXPECT_TRUE(out.alarm);
  EXPECT_GE(model.Stats().alarms, 1u);
}

TEST(PairModel, NoAlarmWhenThresholdsDisabled) {
  std::vector<double> xs, ys;
  MakeHistory(800, 17, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  model.Step(xs[0], ys[0]);
  const StepOutcome out = model.Step(1e7, 1e7);  // extreme outlier
  EXPECT_TRUE(out.outlier);
  EXPECT_FALSE(out.alarm);  // both thresholds default to 0 = disabled
}

TEST(PairModel, AlarmedTransitionDoesNotUpdateMatrix) {
  std::vector<double> xs, ys;
  MakeHistory(2000, 19, &xs, &ys);
  ModelConfig config = DefaultConfig();
  config.fitness_alarm_threshold = 0.99;  // nearly everything alarms
  PairModel model = PairModel::Learn(xs, ys, config);
  model.Step(xs[0], ys[0]);
  const auto updates_before = model.Stats().matrix_updates;
  // Pick a destination that is unlikely to be rank 1.
  const StepOutcome out = model.Step(xs[0], ys[300]);
  if (out.alarm) {
    EXPECT_EQ(model.Stats().matrix_updates, updates_before);
  }
}

TEST(PairModel, ResetSequenceSuppressesNextScore) {
  std::vector<double> xs, ys;
  MakeHistory(600, 21, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  model.Step(xs[0], ys[0]);
  model.ResetSequence();
  const StepOutcome out = model.Step(xs[1], ys[1]);
  EXPECT_FALSE(out.has_score);
}

TEST(PairModel, MissingSamplesAreSkippedNotAlarmed) {
  std::vector<double> xs, ys;
  MakeHistory(800, 25, &xs, &ys);
  ModelConfig config = DefaultConfig();
  config.fitness_alarm_threshold = 0.5;  // alarms armed
  PairModel model = PairModel::Learn(xs, ys, config);

  model.Step(xs[0], ys[0]);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const StepOutcome gap = model.Step(nan, ys[1]);
  EXPECT_TRUE(gap.missing);
  EXPECT_FALSE(gap.has_score);
  EXPECT_FALSE(gap.alarm);
  EXPECT_FALSE(gap.outlier);

  // The sample after the gap has no source cell -> unscored, and the one
  // after that scores normally again.
  const StepOutcome after = model.Step(xs[2], ys[2]);
  EXPECT_FALSE(after.has_score);
  const StepOutcome resumed = model.Step(xs[3], ys[3]);
  EXPECT_TRUE(resumed.has_score);

  const StepOutcome inf_gap =
      model.Step(xs[4], std::numeric_limits<double>::infinity());
  EXPECT_TRUE(inf_gap.missing);
}

TEST(PairModel, LearnToleratesGapsInHistory) {
  std::vector<double> xs, ys;
  MakeHistory(1000, 27, &xs, &ys);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 50; i < 80; ++i) xs[i] = nan;  // a collector outage
  ys[500] = nan;
  const PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  EXPECT_GT(model.Matrix().ObservedCount(), 900u);
  // Grid covers the finite data.
  EXPECT_TRUE(model.Grid().CellOf({xs[100], ys[100]}).has_value());

  std::vector<double> all_nan(10, nan);
  EXPECT_THROW(PairModel::Learn(all_nan, all_nan, DefaultConfig()),
               std::invalid_argument);
}

TEST(PairModel, StatsCountersConsistent) {
  std::vector<double> xs, ys;
  MakeHistory(1000, 23, &xs, &ys);
  PairModel model = PairModel::Learn(xs, ys, DefaultConfig());
  for (std::size_t i = 0; i < 200; ++i) model.Step(xs[i], ys[i]);
  const PairModelStats& stats = model.Stats();
  EXPECT_EQ(stats.steps, 200u);
  EXPECT_LE(stats.scored, stats.steps);
  EXPECT_LE(stats.matrix_updates, stats.scored);
}

}  // namespace
}  // namespace pmcorr
