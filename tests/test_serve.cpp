// The serve subsystem's functional contracts, driven deterministically
// through manual-pump tenants (threaded = false) and the transport-free
// ServeSession: bounded queues and whole-tick shedding, the
// alarms-never-increase-under-shedding guarantee, watermark
// backpressure accounting, bitwise multi-tenant isolation, the full
// query protocol, and the MonitorConfig::retrain knob (detached
// RetrainPool adoption, bitwise-off when disabled).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "engine/retrain_pool.h"
#include "io/framing.h"
#include "io/model_io.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace pmcorr {
namespace {

using difftest::CheckpointString;

// Correlated 2-machine system; optionally decouple m3 halfway so the
// alarm path fires.
MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed,
                                 bool break_m3_correlation_late = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3_correlation_late && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::min(std::max(walk, 20.0), 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 1;
  return config;
}

std::unique_ptr<SystemMonitor> MakeMonitor(
    std::uint64_t seed = 11, MonitorConfig config = SmallConfig()) {
  const MeasurementFrame history = CorrelatedFrame(300, seed);
  return std::make_unique<SystemMonitor>(
      history, MeasurementGraph::FullMesh(history.MeasurementCount()),
      config);
}

std::vector<SampleRow> Rows(const MeasurementFrame& frame) {
  std::vector<SampleRow> rows;
  rows.reserve(frame.SampleCount());
  for (std::size_t t = 0; t < frame.SampleCount(); ++t) {
    SampleRow row;
    row.time = frame.TimeAt(t);
    for (std::size_t a = 0; a < frame.MeasurementCount(); ++a) {
      row.values.push_back(
          frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TenantConfig ManualTenant(const std::string& name,
                          std::size_t queue_budget = 8) {
  TenantConfig config;
  config.name = name;
  config.queue_budget = queue_budget;
  config.threaded = false;
  return config;
}

// ---------------------------------------------------------------------
// Queue discipline.
// ---------------------------------------------------------------------

TEST(TenantRuntime, ShedsWholeTicksAtFullQueue) {
  TenantRuntime tenant(ManualTenant("A", 4), MakeMonitor());
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(12, 21));
  std::size_t accepted = 0, shed = 0;
  for (const SampleRow& row : rows) {
    const AdmitResult result = tenant.Submit(row);
    accepted += result.accepted ? 1 : 0;
    shed += result.shed ? 1 : 0;
    EXPECT_LE(result.queue_rows, 4u);  // never exceeds the budget
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(shed, 8u);
  const TenantStatus status = tenant.Status();
  EXPECT_EQ(status.counters.submitted, 12u);
  EXPECT_EQ(status.counters.accepted, 4u);
  EXPECT_EQ(status.counters.shed_ticks, 8u);
  EXPECT_EQ(status.counters.max_queue_rows, 4u);

  // The accepted prefix processes cleanly; the shed suffix is simply
  // absent — no partial rows, no corruption.
  EXPECT_EQ(tenant.Pump(100), 4u);
  EXPECT_EQ(tenant.Status().counters.processed, 4u);
  EXPECT_TRUE(tenant.Published()->has_snapshot);
  EXPECT_EQ(tenant.Published()->processed, 4u);
}

TEST(TenantRuntime, RejectsWrongWidthAndInactiveStates) {
  TenantRuntime tenant(ManualTenant("A"), MakeMonitor());
  SampleRow narrow;
  narrow.time = 0;
  narrow.values = {1.0, 2.0};
  EXPECT_TRUE(tenant.Submit(narrow).rejected);

  tenant.Drain();
  EXPECT_EQ(tenant.State(), TenantState::kDrained);
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(1, 22));
  EXPECT_TRUE(tenant.Submit(rows[0]).rejected);
  EXPECT_EQ(tenant.Status().counters.rejected, 2u);
}

TEST(TenantRuntime, BackpressureRaisesAndClearsAtWatermarks) {
  TenantConfig config = ManualTenant("A", 8);
  config.backpressure_high = 6;
  config.backpressure_low = 2;
  TenantRuntime tenant(config, MakeMonitor());
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(12, 23));

  for (std::size_t i = 0; i < 5; ++i) tenant.Submit(rows[i]);
  EXPECT_FALSE(tenant.BackpressureEngaged());
  tenant.Submit(rows[5]);  // hits the high watermark
  EXPECT_TRUE(tenant.BackpressureEngaged());
  tenant.Pump(3);  // 6 -> 3: still above the low watermark
  EXPECT_TRUE(tenant.BackpressureEngaged());
  tenant.Pump(1);  // 3 -> 2: clears
  EXPECT_FALSE(tenant.BackpressureEngaged());
  const TenantStatus status = tenant.Status();
  EXPECT_EQ(status.counters.backpressure_raises, 1u);
  EXPECT_EQ(status.counters.backpressure_clears, 1u);
}

// ---------------------------------------------------------------------
// Degradation semantics: shedding only removes evidence.
// ---------------------------------------------------------------------

TEST(TenantRuntime, AlarmsNeverIncreaseUnderShedding) {
  // Calibrated monitors over a stream whose second half decorrelates:
  // the unloaded run sees every row; the overloaded run sheds most of
  // them. Shedding must never create alarms that the full run lacks.
  const MeasurementFrame history = CorrelatedFrame(400, 31);
  const MeasurementFrame holdout = CorrelatedFrame(200, 32);
  const MeasurementFrame test = CorrelatedFrame(240, 33, true);
  const auto graph = MeasurementGraph::FullMesh(history.MeasurementCount());

  auto build = [&] {
    auto monitor =
        std::make_unique<SystemMonitor>(history, graph, SmallConfig());
    monitor->CalibrateThresholds(holdout, 0.05);
    return monitor;
  };
  const std::vector<SampleRow> rows = Rows(test);

  TenantRuntime unloaded(ManualTenant("full", 4), build());
  for (const SampleRow& row : rows) {
    unloaded.Submit(row);
    unloaded.Pump(1);  // keeps the queue empty: nothing sheds
  }
  ASSERT_EQ(unloaded.Status().counters.shed_ticks, 0u);

  TenantRuntime overloaded(ManualTenant("shed", 4), build());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    overloaded.Submit(rows[i]);
    if (i % 5 == 0) overloaded.Pump(1);  // 5x oversubscribed
  }
  overloaded.Drain();
  EXPECT_GT(overloaded.Status().counters.shed_ticks, 0u);

  EXPECT_LE(overloaded.Published()->alarms_total,
            unloaded.Published()->alarms_total);
  // The full run on this decorrelated stream does alarm — the bound is
  // not vacuous.
  EXPECT_GT(unloaded.Published()->alarms_total, 0u);
}

// ---------------------------------------------------------------------
// Isolation.
// ---------------------------------------------------------------------

TEST(TenantRuntime, OverloadedNeighborLeavesTenantBitwiseUntouched) {
  // Tenant A drowns; tenant B receives a clean feed. B's engine must
  // end bitwise identical to a solo monitor that never shared a daemon.
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(120, 41));

  TenantRuntime a(ManualTenant("A", 2), MakeMonitor(42));
  TenantRuntime b(ManualTenant("B", 256), MakeMonitor(43));
  auto solo = MakeMonitor(43);

  for (const SampleRow& row : rows) {
    a.Submit(row);  // mostly sheds: the queue is 2 deep and rarely pumped
    b.Submit(row);
    b.Pump(1);
    solo->Step(row.values, row.time);
  }
  a.Pump(1);
  EXPECT_GT(a.Status().counters.shed_ticks, 0u);
  EXPECT_EQ(CheckpointString(b.Monitor()), CheckpointString(*solo));
}

TEST(TenantRuntime, PoisonedTenantIsFencedOff) {
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(60, 51));

  TenantConfig poisoned_config = ManualTenant("A");
  poisoned_config.chaos_hook = [](std::uint64_t row) {
    if (row == 20) throw std::runtime_error("engine blew up");
  };
  TenantRuntime a(poisoned_config, MakeMonitor(52));
  TenantRuntime b(ManualTenant("B", 256), MakeMonitor(53));
  auto solo = MakeMonitor(53);

  for (const SampleRow& row : rows) {
    a.Submit(row);
    a.Pump(1);
    b.Submit(row);
    b.Pump(1);
    solo->Step(row.values, row.time);
  }
  EXPECT_EQ(a.State(), TenantState::kPoisoned);
  EXPECT_EQ(a.Status().counters.processed, 20u);
  EXPECT_EQ(a.Status().last_error, "engine blew up");
  EXPECT_EQ(a.Status().queue_rows, 0u);  // queue dropped, memory released
  // Poisoned tenants refuse new rows instead of silently eating them.
  EXPECT_TRUE(a.Submit(rows[0]).rejected);
  // Drain() must not touch a poisoned tenant (its last-good checkpoint,
  // had one been configured, stays as the crash left it).
  a.Drain();
  EXPECT_EQ(a.State(), TenantState::kPoisoned);

  // The neighbor never noticed.
  EXPECT_EQ(CheckpointString(b.Monitor()), CheckpointString(*solo));
}

// ---------------------------------------------------------------------
// The protocol state machine over real tenants.
// ---------------------------------------------------------------------

struct SessionHarness {
  SessionHarness() {
    core.AddTenant(ManualTenant("A", 64), MakeMonitor(61));
    core.AddTenant(ManualTenant("B", 64), MakeMonitor(62));
  }

  /// Runs one frame through a session and returns the decoded replies.
  std::vector<Frame> Exchange(ServeSession& session, std::uint8_t type,
                              std::string_view payload, bool expect_alive) {
    std::string out;
    Frame frame;
    frame.type = type;
    frame.payload = std::string(payload);
    EXPECT_EQ(session.HandleFrame(frame, out), expect_alive);
    std::vector<Frame> replies;
    FrameReader reader;
    reader.Feed(out);
    while (const auto reply = reader.Next()) replies.push_back(*reply);
    return replies;
  }

  void Hello(ServeSession& session, const std::string& tenant) {
    HelloRequest hello;
    hello.tenant = tenant;
    std::string payload;
    EncodeHelloRequest(hello, payload);
    const auto replies = Exchange(session, kFrameHello, payload, true);
    ASSERT_EQ(replies.size(), 1u);
    ASSERT_EQ(replies[0].type, kFrameHelloOk);
  }

  ServeCore core;
};

TEST(ServeSession, HelloBindsAndAnswersQueries) {
  SessionHarness harness;
  ServeSession session(harness.core);
  EXPECT_EQ(session.TenantIndex(), -1);
  harness.Hello(session, "B");
  EXPECT_EQ(session.TenantIndex(), 1);

  // Stream a few rows, pump them, then query all three surfaces.
  const std::vector<SampleRow> rows = Rows(CorrelatedFrame(10, 63));
  for (const SampleRow& row : rows) {
    std::string payload;
    EncodeSampleRow(row, payload);
    const auto replies = harness.Exchange(session, kFrameSample, payload, true);
    EXPECT_TRUE(replies.empty());  // ingest is one-way
  }
  harness.core.Tenant(1).Pump(100);

  QueryRequest query;
  std::string payload;
  query.kind = QueryKind::kStatus;
  EncodeQueryRequest(query, payload);
  auto replies = harness.Exchange(session, kFrameQuery, payload, true);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, kFrameStatus);
  const StatusReply status = DecodeStatusReply(replies[0].payload);
  EXPECT_EQ(status.accepted, 10u);
  EXPECT_EQ(status.processed, 10u);
  EXPECT_EQ(status.last_sample, 9u);

  query.kind = QueryKind::kSummary;
  payload.clear();
  EncodeQueryRequest(query, payload);
  replies = harness.Exchange(session, kFrameQuery, payload, true);
  ASSERT_EQ(replies.size(), 1u);
  const SummaryReply summary = DecodeSummaryReply(replies[0].payload);
  ASSERT_TRUE(summary.has_snapshot);
  EXPECT_EQ(summary.sample, 9u);
  EXPECT_EQ(summary.measurement_scores.size(), 4u);

  // Drill-down must mirror the graph topology and the published scores.
  query.kind = QueryKind::kDrilldown;
  query.arg = 2;
  payload.clear();
  EncodeQueryRequest(query, payload);
  replies = harness.Exchange(session, kFrameQuery, payload, true);
  ASSERT_EQ(replies.size(), 1u);
  const DrilldownReply drill = DecodeDrilldownReply(replies[0].payload);
  EXPECT_EQ(drill.measurement, 2u);
  ASSERT_TRUE(drill.has_snapshot);
  const auto& graph = harness.core.Tenant(1).Monitor().Graph();
  EXPECT_EQ(drill.pairs.size(), graph.PairsOf(MeasurementId(2)).size());
  const auto published = harness.core.Tenant(1).Published();
  for (const DrilldownPair& pair : drill.pairs) {
    EXPECT_TRUE(pair.a == 2u || pair.b == 2u);
    const auto& score = published->snapshot.pair_scores[pair.pair_index];
    ASSERT_EQ(pair.has_score, score.has_value());
    if (score) EXPECT_EQ(pair.score, *score);
  }
}

TEST(ServeSession, ProtocolViolationsCloseWithError) {
  SessionHarness harness;

  {  // sample before hello
    ServeSession session(harness.core);
    std::string payload;
    EncodeSampleRow(Rows(CorrelatedFrame(1, 64))[0], payload);
    const auto replies =
        harness.Exchange(session, kFrameSample, payload, false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
  {  // unknown tenant
    ServeSession session(harness.core);
    HelloRequest hello;
    hello.tenant = "nope";
    std::string payload;
    EncodeHelloRequest(hello, payload);
    const auto replies =
        harness.Exchange(session, kFrameHello, payload, false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
  {  // wrong protocol version
    ServeSession session(harness.core);
    std::string hello;
    WireWriter writer(hello);
    writer.U8(kServeProtocolVersion + 1);
    writer.Str("A");
    const auto replies =
        harness.Exchange(session, kFrameHello, hello, false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
  {  // wrong-width row: rejected loudly, not mistaken for shedding
    ServeSession session(harness.core);
    harness.Hello(session, "A");
    SampleRow narrow;
    narrow.time = 0;
    narrow.values = {1.0};
    std::string payload;
    EncodeSampleRow(narrow, payload);
    const auto replies =
        harness.Exchange(session, kFrameSample, payload, false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
  {  // drill-down out of range
    ServeSession session(harness.core);
    harness.Hello(session, "A");
    QueryRequest query;
    query.kind = QueryKind::kDrilldown;
    query.arg = 99;
    std::string payload;
    EncodeQueryRequest(query, payload);
    const auto replies =
        harness.Exchange(session, kFrameQuery, payload, false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
  {  // unknown frame type
    ServeSession session(harness.core);
    const auto replies = harness.Exchange(session, 0x7F, "", false);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, kFrameError);
  }
}

TEST(ServeSession, DrainRequestIsSurfacedToTheDaemonLoop) {
  SessionHarness harness;
  ServeSession session(harness.core);
  EXPECT_FALSE(session.WantsDrain());
  harness.Exchange(session, kFrameDrain, "", true);
  EXPECT_TRUE(session.WantsDrain());

  const DrainedReply drained = harness.core.Drain();
  ASSERT_EQ(drained.tenants.size(), 2u);
  EXPECT_EQ(drained.tenants[0].name, "A");
  EXPECT_EQ(drained.tenants[0].state,
            static_cast<std::uint8_t>(TenantState::kDrained));
  EXPECT_EQ(drained.tenants[0].checkpoint, 0);  // no path configured
}

TEST(ServeCore, DuplicateTenantNameRejected) {
  ServeCore core;
  core.AddTenant(ManualTenant("A"), MakeMonitor(71));
  EXPECT_THROW(core.AddTenant(ManualTenant("A"), MakeMonitor(72)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// MonitorConfig::retrain — the detached RetrainPool inside the engine.
// ---------------------------------------------------------------------

std::string Serialize(const PairModel& model) {
  std::ostringstream out;
  SavePairModel(model, out);
  return out.str();
}

TEST(MonitorRetrain, DisabledKnobIsBitwiseInvisible) {
  // enabled-with-a-never-due-cadence must equal plainly-disabled, row
  // for row and byte for byte.
  const MeasurementFrame test = CorrelatedFrame(80, 81);

  MonitorConfig off = SmallConfig();
  auto plain = MakeMonitor(82, off);

  MonitorConfig armed = SmallConfig();
  armed.retrain.enabled = true;
  armed.retrain.pool.interval_samples = 1u << 20;  // never due
  auto idle = MakeMonitor(82, armed);
  ASSERT_NE(idle->Retrain(), nullptr);
  EXPECT_EQ(plain->Retrain(), nullptr);

  const std::vector<SampleRow> rows = Rows(test);
  for (const SampleRow& row : rows) {
    difftest::ExpectSnapshotsEqual(plain->Step(row.values, row.time),
                                   idle->Step(row.values, row.time));
  }
  EXPECT_EQ(CheckpointString(*plain), CheckpointString(*idle));
}

TEST(MonitorRetrain, AdoptedModelsAreBitwiseLearnOfTheWindow) {
  // Detached mode against the pool directly: after a cadence worth of
  // Observe calls the adoptable model must be exactly
  // PairModel::Learn(window) — same bytes, no drift, no shortcuts.
  ModelConfig model_config;
  model_config.partition.units = 30;
  model_config.partition.max_intervals = 8;
  RetrainPoolConfig pool_config;
  pool_config.threads = 1;
  pool_config.window_samples = 200;
  pool_config.interval_samples = 60;
  pool_config.min_samples = 50;
  RetrainPool pool(model_config, pool_config);

  Rng rng(91);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < 200; ++i) {
    const double x = 50.0 + 20.0 * std::sin(static_cast<double>(i) * 0.05) +
                     rng.Normal(0.0, 1.0);
    xs.push_back(x);
    ys.push_back(2.0 * x + 10.0 + rng.Normal(0.0, 1.0));
  }
  ASSERT_EQ(pool.RegisterWindow(std::span<const double>(xs).first(100),
                                std::span<const double>(ys).first(100)),
            0u);

  for (std::size_t i = 100; i < 180; ++i) {
    pool.Observe(0, xs[i], ys[i]);
  }
  pool.WaitForIdle();
  const std::unique_ptr<PairModel> adopted = pool.TakeAdoptable(0);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(pool.TakeAdoptable(0), nullptr);  // taken exactly once

  // Reconstruct the window the pool must have learned from: the seed
  // plus every observed sample up to the cadence tick that queued the
  // rebuild (interval 60 after the 100-sample seed -> 160 samples).
  const auto wx = std::span<const double>(xs).first(160);
  const auto wy = std::span<const double>(ys).first(160);
  const PairModel expected = PairModel::Learn(wx, wy, model_config);
  EXPECT_EQ(Serialize(*adopted), Serialize(expected));
}

TEST(MonitorRetrain, EngineAdoptsRetrainedModelAtAStepBoundary) {
  // A monitor whose pair relationship drifts: with the retrain knob on,
  // the engine must eventually adopt rebuilt models (visible as a
  // checkpoint that differs from the never-retrained twin's), and the
  // adoption must happen without disturbing sample accounting.
  MonitorConfig armed = SmallConfig();
  armed.retrain.enabled = true;
  armed.retrain.pool.threads = 1;
  armed.retrain.pool.window_samples = 300;
  armed.retrain.pool.interval_samples = 40;
  armed.retrain.pool.min_samples = 50;

  auto retraining = MakeMonitor(92, armed);
  auto frozen = MakeMonitor(92, SmallConfig());
  ASSERT_NE(retraining->Retrain(), nullptr);

  // A slow drift: same shape, new level — models keep scoring but the
  // rebuilt grid re-centers on the new range.
  Rng rng(93);
  const std::vector<SampleRow> rows = [&] {
    std::vector<SampleRow> out;
    for (std::size_t i = 0; i < 200; ++i) {
      const double load = 90.0 +
                          35.0 * std::sin(static_cast<double>(i) * 0.03) +
                          rng.Normal(0.0, 1.5);
      SampleRow row;
      row.time = static_cast<TimePoint>(i) * kPaperSamplePeriod;
      row.values = {load + rng.Normal(0.0, 0.8),
                    100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4),
                    2.5 * load + 20.0 + rng.Normal(0.0, 2.0),
                    0.8 * load + 35.0 + rng.Normal(0.0, 1.5)};
      out.push_back(std::move(row));
    }
    return out;
  }();

  for (const SampleRow& row : rows) {
    retraining->Step(row.values, row.time);
    frozen->Step(row.values, row.time);
    retraining->Retrain()->WaitForIdle();  // deterministic adoption points
  }
  EXPECT_EQ(retraining->StepCount(), frozen->StepCount());

  std::size_t rebuilds = 0;
  for (std::size_t i = 0; i < retraining->Graph().PairCount(); ++i) {
    rebuilds += retraining->Retrain()->Rebuilds(i);
  }
  EXPECT_GT(rebuilds, 0u) << "cadence never fired";
  EXPECT_NE(CheckpointString(*retraining), CheckpointString(*frozen))
      << "no rebuilt model was ever adopted";
}

}  // namespace
}  // namespace pmcorr
