// Tests for the shared bounded rolling-retrain pool: a fixed worker
// count serving many pairs from one FIFO queue, with the retrainer's
// adopt-at-a-boundary / keep-old-model / watchdog semantics lifted to
// the pool level.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "engine/retrain_pool.h"
#include "io/model_io.h"

namespace pmcorr {
namespace {

// Same drifting process as test_retrainer, with a per-pair level offset
// so a rebuild's window identifies which pair it belongs to.
void MakeDrifting(std::size_t n, double drift_per_sample, std::uint64_t seed,
                  std::vector<double>* xs, std::vector<double>* ys,
                  double offset = 0.0) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double level =
        offset + 50.0 + drift_per_sample * static_cast<double>(i);
    const double load =
        level + 20.0 * std::sin(static_cast<double>(i) * 0.05) +
        rng.Normal(0.0, 1.0);
    (*xs)[i] = load;
    (*ys)[i] = 2.0 * load + 10.0 + rng.Normal(0.0, 1.0);
  }
}

ModelConfig SmallModel() {
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  return config;
}

RetrainPoolConfig FastPool(std::size_t threads = 1) {
  RetrainPoolConfig config;
  config.threads = threads;
  config.window_samples = 400;
  config.interval_samples = 100;
  config.min_samples = 50;
  return config;
}

std::string Serialize(const PairModel& model) {
  std::ostringstream out;
  SavePairModel(model, out);
  return out.str();
}

TEST(RetrainPool, FifoFairnessAcrossPairs) {
  // 6 pairs, one worker. Every rebuild records which pair's window it
  // learned from (pairs are separated by a big level offset), so the
  // dequeue order is observable.
  constexpr std::size_t kPairs = 6;
  Mutex order_mu;
  std::vector<std::size_t> order;
  RetrainPoolConfig config = FastPool(1);
  config.rebuild_override = [&](std::span<const double> x,
                                std::span<const double> y,
                                const ModelConfig& model_config) {
    {
      const MutexLock lock(order_mu);
      order.push_back(static_cast<std::size_t>(x[0] / 1000.0 + 0.5));
    }
    return PairModel::Learn(x, y, model_config);
  };
  RetrainPool pool(SmallModel(), config);

  std::vector<std::vector<double>> xs(kPairs), ys(kPairs);
  for (std::size_t p = 0; p < kPairs; ++p) {
    MakeDrifting(300, 0.0, 3 + p, &xs[p], &ys[p],
                 static_cast<double>(p) * 1000.0);
    ASSERT_EQ(pool.AddPair(xs[p], ys[p]), p);
  }

  // Two full cadence rounds, stepping the pairs round-robin: the queue
  // must serve every pair once before any pair goes twice.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 100; ++i) {
      for (std::size_t p = 0; p < kPairs; ++p) {
        pool.Step(p, xs[p][static_cast<std::size_t>(i) % 300],
                  ys[p][static_cast<std::size_t>(i) % 300]);
      }
    }
    pool.WaitForIdle();
    for (std::size_t p = 0; p < kPairs; ++p) {
      pool.Step(p, xs[p][0], ys[p][0]);  // adoption boundary
      EXPECT_EQ(pool.Rebuilds(p), static_cast<std::size_t>(round) + 1);
    }
  }
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.ThreadCount(), 1u);

  ASSERT_EQ(order.size(), 2 * kPairs);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % kPairs) << "dequeue position " << i;
  }
}

TEST(RetrainPool, ThreadCountIndependentOfPairCount) {
  constexpr std::size_t kPairs = 40;
  RetrainPool pool(SmallModel(), FastPool(2));
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 17, &xs, &ys);
  for (std::size_t p = 0; p < kPairs; ++p) pool.AddPair(xs, ys);
  EXPECT_EQ(pool.ThreadCount(), 2u);

  for (int i = 0; i < 100; ++i) {
    for (std::size_t p = 0; p < kPairs; ++p) {
      pool.Step(p, xs[static_cast<std::size_t>(i)],
                ys[static_cast<std::size_t>(i)]);
    }
  }
  pool.WaitForIdle();
  EXPECT_EQ(pool.ThreadCount(), 2u);  // never one thread per pair
  EXPECT_EQ(pool.QueueDepth(), 0u);
  for (std::size_t p = 0; p < kPairs; ++p) {
    pool.Step(p, xs[100], ys[100]);
    EXPECT_EQ(pool.Rebuilds(p), 1u) << "pair " << p;
  }
}

TEST(RetrainPool, AdoptedModelEqualsLearnOfWindowSnapshot) {
  // Bitwise contract carried over from RollingPairRetrainer: the model
  // adopted at the boundary is exactly PairModel::Learn over the window
  // as of the cadence Step, plus the online steps fed after adoption.
  std::vector<double> xs, ys;
  MakeDrifting(900, 0.02, 13, &xs, &ys);
  RetrainPool pool(SmallModel(), FastPool(1));
  const std::vector<double> seed_x(xs.begin(), xs.begin() + 400);
  const std::vector<double> seed_y(ys.begin(), ys.begin() + 400);
  ASSERT_EQ(pool.AddPair(seed_x, seed_y), 0u);

  for (std::size_t i = 400; i < 500; ++i) pool.Step(0, xs[i], ys[i]);
  const std::vector<double> wx(xs.begin() + 100, xs.begin() + 500);
  const std::vector<double> wy(ys.begin() + 100, ys.begin() + 500);
  ASSERT_EQ(pool.WindowSize(0), wx.size());
  const PairModel expected = PairModel::Learn(wx, wy, SmallModel());

  pool.WaitForPair(0);
  EXPECT_EQ(pool.Rebuilds(0), 0u);  // built, not yet adopted
  pool.Step(0, xs[500], ys[500]);
  EXPECT_EQ(pool.Rebuilds(0), 1u);  // adopted at the boundary
  PairModel oracle = expected;
  oracle.Step(xs[500], ys[500]);
  EXPECT_EQ(Serialize(pool.Model(0)), Serialize(oracle));
}

TEST(RetrainPool, WatchdogAbandonsWedgedRebuildWithoutStarvingQueue) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 29, &xs, &ys);

  // Deterministic time: the watchdog reads this fake clock, so "wedged
  // past the deadline" is an explicit statement, not a sleep race.
  std::atomic<std::int64_t> now_ns{0};
  std::atomic<bool> release{false};
  std::atomic<int> rebuild_calls{0};
  RetrainPoolConfig config = FastPool(1);
  config.watchdog_ms = 10;
  config.clock = [&now_ns] { return now_ns.load(); };
  config.rebuild_override = [&](std::span<const double> x,
                                std::span<const double> y,
                                const ModelConfig& model_config) {
    if (rebuild_calls.fetch_add(1) == 0) {
      // First rebuild (pair 0) wedges until the test releases it.
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return PairModel::Learn(x, y, model_config);
  };
  RetrainPool pool(SmallModel(), config);
  ASSERT_EQ(pool.AddPair(xs, ys), 0u);
  ASSERT_EQ(pool.AddPair(xs, ys), 1u);

  // Fire pair 0's cadence and wait for the single worker to wedge on it,
  // then fire pair 1's cadence: it queues behind the wedged build.
  for (int i = 0; i < 100; ++i) {
    pool.Step(0, xs[static_cast<std::size_t>(i)],
              ys[static_cast<std::size_t>(i)]);
  }
  while (rebuild_calls.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pool.RebuildInFlight(0));
  for (int i = 0; i < 100; ++i) {
    pool.Step(1, xs[static_cast<std::size_t>(i)],
              ys[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(pool.RebuildInFlight(1));

  // Past the deadline, any pair's Step writes the wedged build off and a
  // replacement worker drains pair 1's rebuild — the queue is not
  // starved even though the doomed worker is still grinding.
  now_ns.fetch_add(20 * 1'000'000);  // 20ms > watchdog_ms
  pool.Step(1, xs[100], ys[100]);
  EXPECT_EQ(pool.AbandonedRebuilds(0), 1u);
  EXPECT_FALSE(pool.RebuildInFlight(0));
  EXPECT_GE(pool.ThreadCount(), 2u);  // doomed worker + replacement
  pool.WaitForPair(1);                // must return, not hang
  pool.Step(1, xs[101], ys[101]);
  EXPECT_EQ(pool.Rebuilds(1), 1u);
  EXPECT_EQ(pool.Rebuilds(0), 0u);

  // Unwedge: the abandoned result is discarded, never adopted, and the
  // worker count settles back to the configured bound.
  release.store(true);
  pool.WaitForIdle();
  pool.Step(0, xs[100], ys[100]);
  EXPECT_EQ(pool.Rebuilds(0), 0u);
  while (pool.ThreadCount() != 1u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Pair 0's slot reopened: its next cadence rebuilds and adopts.
  for (int i = 101; i < 300 && pool.Rebuilds(0) == 0; ++i) {
    pool.Step(0, xs[static_cast<std::size_t>(i % 300)],
              ys[static_cast<std::size_t>(i % 300)]);
    pool.WaitForPair(0);
  }
  EXPECT_GE(pool.Rebuilds(0), 1u);
}

TEST(RetrainPool, FailureBackoffDelaysRetry) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 31, &xs, &ys);
  std::atomic<int> rebuild_calls{0};
  RetrainPoolConfig config = FastPool(1);
  config.failure_backoff = {.base = 1000,
                            .multiplier = 1.0,
                            .cap = 1000,
                            .budget = SIZE_MAX};
  config.rebuild_override = [&](std::span<const double>,
                                std::span<const double>,
                                const ModelConfig&) -> PairModel {
    rebuild_calls.fetch_add(1);
    throw std::runtime_error("injected rebuild failure");
  };
  RetrainPool pool(SmallModel(), config);
  ASSERT_EQ(pool.AddPair(xs, ys), 0u);

  for (int i = 0; i < 100; ++i) {
    pool.Step(0, xs[static_cast<std::size_t>(i)],
              ys[static_cast<std::size_t>(i)]);
  }
  pool.WaitForPair(0);
  EXPECT_EQ(pool.FailedRebuilds(0), 1u);
  EXPECT_NE(pool.LastRebuildError(0).find("injected"), std::string::npos);

  // 300 more samples: far past the normal cadence, still inside the
  // 1000-sample cooldown — no retry fires.
  for (int i = 0; i < 300; ++i) {
    pool.Step(0, xs[static_cast<std::size_t>(i % 300)],
              ys[static_cast<std::size_t>(i % 300)]);
  }
  pool.WaitForIdle();
  EXPECT_EQ(rebuild_calls.load(), 1);
  EXPECT_FALSE(pool.GaveUp(0));
  // The serving model was never replaced by a rebuild.
  pool.Step(0, xs[0], ys[0]);
  EXPECT_EQ(pool.Rebuilds(0), 0u);
}

TEST(RetrainPool, GivesUpAfterFailureBudget) {
  std::vector<double> xs, ys;
  MakeDrifting(300, 0.0, 37, &xs, &ys);
  std::atomic<int> rebuild_calls{0};
  RetrainPoolConfig config = FastPool(1);
  config.failure_backoff = {
      .base = 0, .multiplier = 1.0, .cap = 0, .budget = 2};
  config.rebuild_override = [&](std::span<const double>,
                                std::span<const double>,
                                const ModelConfig&) -> PairModel {
    rebuild_calls.fetch_add(1);
    throw std::runtime_error("injected rebuild failure");
  };
  RetrainPool pool(SmallModel(), config);
  ASSERT_EQ(pool.AddPair(xs, ys), 0u);

  // Drive many cadence rounds, letting each queued rebuild resolve so
  // the retry schedule is deterministic; after the 2-retry budget the
  // pair stops asking.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.Step(0, xs[static_cast<std::size_t>(i % 300)],
                ys[static_cast<std::size_t>(i % 300)]);
    }
    pool.WaitForPair(0);
  }
  pool.WaitForIdle();
  EXPECT_TRUE(pool.GaveUp(0));
  EXPECT_EQ(pool.FailedRebuilds(0), 2u);
  EXPECT_EQ(rebuild_calls.load(), 2);
  EXPECT_EQ(pool.Rebuilds(0), 0u);  // still serving the initial model
}

}  // namespace
}  // namespace pmcorr
