// Tests for MeasurementGraph.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "engine/measurement_graph.h"

namespace pmcorr {
namespace {

MeasurementFrame TinyFrame(std::size_t machines, std::size_t per_machine) {
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (std::size_t m = 0; m < machines; ++m) {
    for (std::size_t k = 0; k < per_machine; ++k) {
      MeasurementInfo info;
      info.machine = MachineId(static_cast<std::int32_t>(m));
      info.name = "m" + std::to_string(m) + "k" + std::to_string(k);
      frame.Add(info, TimeSeries(0, kPaperSamplePeriod, {1.0, 2.0}));
    }
  }
  return frame;
}

TEST(MeasurementGraph, FullMeshCount) {
  const MeasurementGraph g = MeasurementGraph::FullMesh(10);
  EXPECT_EQ(g.PairCount(), 45u);  // l(l-1)/2
  EXPECT_EQ(g.MeasurementCount(), 10u);
  // Each measurement touches l-1 pairs.
  for (std::int32_t a = 0; a < 10; ++a) {
    EXPECT_EQ(g.PairsOf(MeasurementId(a)).size(), 9u);
  }
}

TEST(MeasurementGraph, FromPairsValidates) {
  std::vector<PairId> ok = {PairId(MeasurementId(0), MeasurementId(1))};
  EXPECT_NO_THROW(MeasurementGraph::FromPairs(2, ok));
  std::vector<PairId> dup = {PairId(MeasurementId(0), MeasurementId(1)),
                             PairId(MeasurementId(1), MeasurementId(0))};
  EXPECT_THROW(MeasurementGraph::FromPairs(2, dup), std::invalid_argument);
  std::vector<PairId> range = {PairId(MeasurementId(0), MeasurementId(5))};
  EXPECT_THROW(MeasurementGraph::FromPairs(2, range), std::invalid_argument);
  std::vector<PairId> self = {PairId()};
  EXPECT_THROW(MeasurementGraph::FromPairs(2, self), std::invalid_argument);
}

TEST(MeasurementGraph, NeighborhoodCoversMachineCliques) {
  const MeasurementFrame frame = TinyFrame(4, 3);
  const MeasurementGraph g = MeasurementGraph::Neighborhood(frame, 0, 7);
  // Every intra-machine pair must exist: 4 machines x C(3,2) = 12 edges.
  EXPECT_EQ(g.PairCount(), 12u);
  std::set<PairId> edges(g.Pairs().begin(), g.Pairs().end());
  EXPECT_TRUE(edges.contains(PairId(MeasurementId(0), MeasurementId(1))));
  EXPECT_TRUE(edges.contains(PairId(MeasurementId(0), MeasurementId(2))));
  EXPECT_FALSE(edges.contains(PairId(MeasurementId(0), MeasurementId(3))));
}

TEST(MeasurementGraph, NeighborhoodAddsRemotePartners) {
  const MeasurementFrame frame = TinyFrame(5, 2);
  const MeasurementGraph g = MeasurementGraph::Neighborhood(frame, 2, 7);
  // Every measurement participates in at least local + some remote edges.
  for (std::int32_t a = 0; a < 10; ++a) {
    EXPECT_GE(g.PairsOf(MeasurementId(a)).size(), 2u);
  }
  // Some cross-machine edge exists.
  bool cross = false;
  for (const PairId& p : g.Pairs()) {
    if (frame.Info(p.a).machine != frame.Info(p.b).machine) cross = true;
  }
  EXPECT_TRUE(cross);
}

TEST(MeasurementGraph, NeighborhoodDeterministic) {
  const MeasurementFrame frame = TinyFrame(5, 2);
  const MeasurementGraph a = MeasurementGraph::Neighborhood(frame, 2, 7);
  const MeasurementGraph b = MeasurementGraph::Neighborhood(frame, 2, 7);
  EXPECT_EQ(a.Pairs(), b.Pairs());
}

MeasurementFrame AssociationFrame() {
  // m0 and m1 strongly associated; m2 tracks them weakly; m3 independent.
  Rng rng(55);
  const std::size_t n = 300;
  std::vector<std::vector<double>> cols(4, std::vector<double>(n));
  for (std::size_t t = 0; t < n; ++t) {
    const double load = 50.0 + 20.0 * std::sin(t * 0.07);
    cols[0][t] = load + rng.Normal(0.0, 0.5);
    cols[1][t] = 2.0 * load + rng.Normal(0.0, 0.5);
    cols[2][t] = load + rng.Normal(0.0, 15.0);
    cols[3][t] = rng.Normal(100.0, 5.0);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

TEST(MeasurementGraph, ByAssociationPicksStrongPartners) {
  const MeasurementFrame frame = AssociationFrame();
  const MeasurementGraph g =
      MeasurementGraph::ByAssociation(frame, 0.8, 2);
  std::set<PairId> edges(g.Pairs().begin(), g.Pairs().end());
  // The strongly coupled pair is always selected.
  EXPECT_TRUE(edges.contains(PairId(MeasurementId(0), MeasurementId(1))));
  // No node is isolated — even the independent m3 gets its best partner.
  for (std::int32_t a = 0; a < 4; ++a) {
    EXPECT_GE(g.PairsOf(MeasurementId(a)).size(), 1u) << "m" << a;
  }
}

TEST(MeasurementGraph, ByAssociationRespectsPartnerCap) {
  const MeasurementFrame frame = AssociationFrame();
  const MeasurementGraph g =
      MeasurementGraph::ByAssociation(frame, 0.0, 1);
  // With a cap of 1 per node, at most l edges can exist (each node
  // nominates one, nominations can coincide).
  EXPECT_LE(g.PairCount(), 4u);
  for (std::int32_t a = 0; a < 4; ++a) {
    EXPECT_GE(g.PairsOf(MeasurementId(a)).size(), 1u);
  }
}

TEST(MeasurementGraph, ByAssociationDeterministic) {
  const MeasurementFrame frame = AssociationFrame();
  const MeasurementGraph a = MeasurementGraph::ByAssociation(frame, 0.5, 2);
  const MeasurementGraph b = MeasurementGraph::ByAssociation(frame, 0.5, 2);
  EXPECT_EQ(a.Pairs(), b.Pairs());
}

TEST(MeasurementGraph, ByAssociationRejectsTinyFrames) {
  MeasurementFrame frame(0, kPaperSamplePeriod);
  MeasurementInfo info;
  info.name = "only";
  frame.Add(info, TimeSeries(0, kPaperSamplePeriod, {1.0, 2.0}));
  EXPECT_THROW(MeasurementGraph::ByAssociation(frame),
               std::invalid_argument);
}

TEST(MeasurementGraph, PairsOfIndexesAreConsistent) {
  const MeasurementGraph g = MeasurementGraph::FullMesh(6);
  for (std::int32_t a = 0; a < 6; ++a) {
    for (std::size_t pi : g.PairsOf(MeasurementId(a))) {
      const PairId& p = g.Pair(pi);
      EXPECT_TRUE(p.a == MeasurementId(a) || p.b == MeasurementId(a));
    }
  }
}

}  // namespace
}  // namespace pmcorr
