// Tests for the worker pool: ParallelFor/ParallelShards coverage,
// exception propagation, destruction semantics, and contention stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "engine/thread_pool.h"

namespace pmcorr {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, TinyCountsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(2, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 20 * (49 * 50 / 2));
}

TEST(ThreadPool, ParallelResultMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> out(5000, 0.0);
  pool.ParallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.ThreadCount(), 1u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [](std::size_t i) {
                         if (i == 637) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing region and stays fully usable.
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](std::size_t) { ++sum; });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedFailure) {
  ThreadPool pool(8);
  // Several chunks throw; the caller must deterministically see the
  // lowest-indexed chunk's exception, not a scheduling-dependent one.
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelFor(800, [](std::size_t i) {
        if (i % 100 == 0) {
          throw std::runtime_error("chunk " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0");
    }
  }
}

TEST(ThreadPool, ParallelShardsPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelShards(100,
                                   [](const ShardRange& r) {
                                     if (r.begin > 0) {
                                       throw std::runtime_error("shard");
                                     }
                                   }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.ParallelShards(100, [&](const ShardRange& r) {
    sum += static_cast<int>(r.Size());
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, ShardsCoverEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 100u, 101u, 4096u}) {
    for (std::size_t max_shards : {0u, 1u, 3u, 7u, 64u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.ParallelShards(
          count,
          [&](const ShardRange& r) {
            for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
          },
          max_shards);
      for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPool, ShardDecompositionIsDeterministicAndBalanced) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.ShardCountFor(0), 0u);
  EXPECT_EQ(pool.ShardCountFor(3), 3u);
  EXPECT_EQ(pool.ShardCountFor(100), 4u);
  EXPECT_EQ(pool.ShardCountFor(100, 6), 6u);

  Mutex mutex;
  std::vector<ShardRange> shards;
  pool.ParallelShards(103, [&](const ShardRange& r) {
    const MutexLock lock(mutex);
    shards.push_back(r);
  });
  ASSERT_EQ(shards.size(), 4u);
  std::sort(shards.begin(), shards.end(),
            [](const ShardRange& a, const ShardRange& b) {
              return a.index < b.index;
            });
  std::size_t expected_begin = 0;
  for (const ShardRange& r : shards) {
    EXPECT_EQ(r.count, 4u);
    EXPECT_EQ(r.begin, expected_begin);
    // Sizes differ by at most one: 103 over 4 shards = {26, 26, 26, 25}.
    EXPECT_GE(r.Size(), 25u);
    EXPECT_LE(r.Size(), 26u);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPool, ShardsCoverEveryIndexUnderContention) {
  // Several caller threads hammer one pool concurrently; every caller's
  // range must still be covered exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kCount = 2000;
  std::vector<std::thread> callers;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kCount);
  }
  for (std::size_t caller = 0; caller < kCallers; ++caller) {
    callers.emplace_back([&, caller] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelShards(kCount, [&](const ShardRange& r) {
          for (std::size_t i = r.begin; i < r.end; ++i) ++hits[caller][i];
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& caller_hits : hits) {
    for (const auto& h : caller_hits) ASSERT_EQ(h.load(), 10);
  }
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Post([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destruction races the queue on purpose: it must neither hang nor
    // drop the tasks that were accepted.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, PostedTaskExceptionDoesNotKillWorkers) {
  // The swallowed exception is logged; keep the test output clean.
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Post([] { throw std::runtime_error("posted boom"); });
  for (int i = 0; i < 32; ++i) {
    pool.Post([&completed] { ++completed; });
  }
  // Synchronize on a fork/join region: by the time it returns, workers
  // have demonstrably survived the throwing posted task.
  pool.ParallelFor(64, [](std::size_t) {});
  for (int waited = 0; completed.load() < 32 && waited < 2000; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completed.load(), 32);
  SetLogLevel(saved);
}

TEST(ThreadPool, StressManySmallRegions) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(97, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
    pool.ParallelShards(61, [&](const ShardRange& r) {
      long local = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        local += static_cast<long>(i);
      }
      total += local;
    });
  }
  EXPECT_EQ(total.load(), 300L * (96 * 97 / 2) + 300L * (60 * 61 / 2));
}

}  // namespace
}  // namespace pmcorr
