// Tests for the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "engine/thread_pool.h"

namespace pmcorr {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, TinyCountsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(2, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 20 * (49 * 50 / 2));
}

TEST(ThreadPool, ParallelResultMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> out(5000, 0.0);
  pool.ParallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.ThreadCount(), 1u);
}

}  // namespace
}  // namespace pmcorr
