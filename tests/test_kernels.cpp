// Tests for the decay kernels, including the exact Figure 5 weights.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/kernels.h"

namespace pmcorr {
namespace {

TEST(CellDistance, Metrics) {
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kChebyshev), 4.0);
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(CellDistance(-3, -4, CellMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(CellDistance(0, 0, CellMetric::kManhattan), 0.0);
}

TEST(ExponentialKernel, WeightsDecayExponentially) {
  const ExponentialKernel kernel(2.0, CellMetric::kManhattan);
  EXPECT_DOUBLE_EQ(kernel.Weight(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(kernel.Weight(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(kernel.Weight(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(kernel.Weight(2, 1), 0.125);
}

TEST(ExponentialKernel, LogWeightConsistent) {
  const ExponentialKernel kernel(3.0, CellMetric::kEuclidean);
  for (int dx = 0; dx <= 4; ++dx) {
    for (int dy = 0; dy <= 4; ++dy) {
      EXPECT_NEAR(std::exp(kernel.LogWeight(dx, dy)), kernel.Weight(dx, dy),
                  1e-12);
    }
  }
}

TEST(TriangularKernel, MatchesPaperFigure5Ratios) {
  // Weight ratios extracted analytically from the printed Figure 5 matrix
  // (center row): self=1, axial neighbor=2/3, diagonal=1/2.
  const TriangularKernel kernel;
  EXPECT_DOUBLE_EQ(kernel.Weight(0, 0), 1.0);
  EXPECT_NEAR(kernel.Weight(0, 1), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(kernel.Weight(1, 1), 0.5, 1e-15);
  EXPECT_NEAR(kernel.Weight(0, 2), 0.4, 1e-15);
  EXPECT_NEAR(kernel.Weight(1, 2), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(kernel.Weight(2, 2), 0.25, 1e-15);
}

TEST(TriangularKernel, Symmetric) {
  const TriangularKernel kernel;
  for (int dx = 0; dx <= 5; ++dx) {
    for (int dy = 0; dy <= 5; ++dy) {
      EXPECT_DOUBLE_EQ(kernel.Weight(dx, dy), kernel.Weight(dy, dx));
      EXPECT_DOUBLE_EQ(kernel.Weight(dx, dy), kernel.Weight(-dx, -dy));
    }
  }
}

TEST(Kernels, StrictlyDecreasingInEachDelta) {
  const TriangularKernel tri;
  const ExponentialKernel expo(2.0, CellMetric::kEuclidean);
  for (const DecayKernel* kernel :
       {static_cast<const DecayKernel*>(&tri),
        static_cast<const DecayKernel*>(&expo)}) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_GT(kernel->Weight(d, 0), kernel->Weight(d + 1, 0));
      EXPECT_GT(kernel->Weight(0, d), kernel->Weight(0, d + 1));
      EXPECT_GT(kernel->Weight(d, d), kernel->Weight(d + 1, d + 1));
    }
  }
}

TEST(Kernels, SelfTransitionAlwaysMostProbable) {
  // The paper: "We set P(ci -> ci) to be the highest."
  const TriangularKernel kernel;
  for (int dx = 0; dx <= 4; ++dx) {
    for (int dy = 0; dy <= 4; ++dy) {
      if (dx == 0 && dy == 0) continue;
      EXPECT_LT(kernel.Weight(dx, dy), kernel.Weight(0, 0));
    }
  }
}

TEST(MakeKernel, DispatchesOnType) {
  KernelConfig tri;
  tri.type = KernelConfig::Type::kTriangular;
  EXPECT_NE(MakeKernel(tri)->Describe().find("triangular"),
            std::string::npos);
  KernelConfig expo;
  expo.type = KernelConfig::Type::kExponential;
  expo.w = 2.5;
  EXPECT_NE(MakeKernel(expo)->Describe().find("exponential"),
            std::string::npos);
}

}  // namespace
}  // namespace pmcorr
