// Tests for the decay kernels, including the exact Figure 5 weights and
// the bitwise contract of the precomputed log-weight stencil.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "grid/kernels.h"

namespace pmcorr {
namespace {

// Bitwise double equality — the stencil must hold exactly the doubles
// the kernel returns, not merely close ones.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bitwise)";
}

// Every kernel the stencil must reproduce: the triangular kernel and the
// exponential kernel under all three cell metrics.
std::vector<std::unique_ptr<DecayKernel>> AllKernels() {
  std::vector<std::unique_ptr<DecayKernel>> kernels;
  kernels.push_back(std::make_unique<TriangularKernel>());
  for (const CellMetric metric :
       {CellMetric::kChebyshev, CellMetric::kManhattan,
        CellMetric::kEuclidean}) {
    kernels.push_back(std::make_unique<ExponentialKernel>(2.0, metric));
    kernels.push_back(std::make_unique<ExponentialKernel>(1.5, metric));
  }
  return kernels;
}

TEST(CellDistance, Metrics) {
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kChebyshev), 4.0);
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(CellDistance(3, 4, CellMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(CellDistance(-3, -4, CellMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(CellDistance(0, 0, CellMetric::kManhattan), 0.0);
}

TEST(ExponentialKernel, WeightsDecayExponentially) {
  const ExponentialKernel kernel(2.0, CellMetric::kManhattan);
  EXPECT_DOUBLE_EQ(kernel.Weight(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(kernel.Weight(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(kernel.Weight(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(kernel.Weight(2, 1), 0.125);
}

TEST(ExponentialKernel, LogWeightConsistent) {
  const ExponentialKernel kernel(3.0, CellMetric::kEuclidean);
  for (int dx = 0; dx <= 4; ++dx) {
    for (int dy = 0; dy <= 4; ++dy) {
      EXPECT_NEAR(std::exp(kernel.LogWeight(dx, dy)), kernel.Weight(dx, dy),
                  1e-12);
    }
  }
}

TEST(TriangularKernel, MatchesPaperFigure5Ratios) {
  // Weight ratios extracted analytically from the printed Figure 5 matrix
  // (center row): self=1, axial neighbor=2/3, diagonal=1/2.
  const TriangularKernel kernel;
  EXPECT_DOUBLE_EQ(kernel.Weight(0, 0), 1.0);
  EXPECT_NEAR(kernel.Weight(0, 1), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(kernel.Weight(1, 1), 0.5, 1e-15);
  EXPECT_NEAR(kernel.Weight(0, 2), 0.4, 1e-15);
  EXPECT_NEAR(kernel.Weight(1, 2), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(kernel.Weight(2, 2), 0.25, 1e-15);
}

TEST(TriangularKernel, Symmetric) {
  const TriangularKernel kernel;
  for (int dx = 0; dx <= 5; ++dx) {
    for (int dy = 0; dy <= 5; ++dy) {
      EXPECT_DOUBLE_EQ(kernel.Weight(dx, dy), kernel.Weight(dy, dx));
      EXPECT_DOUBLE_EQ(kernel.Weight(dx, dy), kernel.Weight(-dx, -dy));
    }
  }
}

TEST(Kernels, StrictlyDecreasingInEachDelta) {
  const TriangularKernel tri;
  const ExponentialKernel expo(2.0, CellMetric::kEuclidean);
  for (const DecayKernel* kernel :
       {static_cast<const DecayKernel*>(&tri),
        static_cast<const DecayKernel*>(&expo)}) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_GT(kernel->Weight(d, 0), kernel->Weight(d + 1, 0));
      EXPECT_GT(kernel->Weight(0, d), kernel->Weight(0, d + 1));
      EXPECT_GT(kernel->Weight(d, d), kernel->Weight(d + 1, d + 1));
    }
  }
}

TEST(Kernels, SelfTransitionAlwaysMostProbable) {
  // The paper: "We set P(ci -> ci) to be the highest."
  const TriangularKernel kernel;
  for (int dx = 0; dx <= 4; ++dx) {
    for (int dy = 0; dy <= 4; ++dy) {
      if (dx == 0 && dy == 0) continue;
      EXPECT_LT(kernel.Weight(dx, dy), kernel.Weight(0, 0));
    }
  }
}

TEST(KernelStencil, BitwiseEqualToDirectEvaluation) {
  // Rectangular, square and degenerate (1 x n / n x 1 / 1 x 1) shapes.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {3, 5}, {5, 3}, {4, 4}, {1, 7}, {7, 1}, {1, 1}};
  for (const auto& kernel : AllKernels()) {
    for (const auto& [rows, cols] : shapes) {
      const KernelStencil stencil(rows, cols, *kernel);
      ASSERT_TRUE(stencil.Matches(rows, cols));
      for (int dr = -(static_cast<int>(rows) - 1);
           dr <= static_cast<int>(rows) - 1; ++dr) {
        for (int dc = -(static_cast<int>(cols) - 1);
             dc <= static_cast<int>(cols) - 1; ++dc) {
          // Signed and absolute deltas must agree with the kernel.
          EXPECT_TRUE(BitEqual(stencil.LogWeight(dr, dc),
                               kernel->LogWeight(dr, dc)))
              << kernel->Describe() << " " << rows << "x" << cols << " ("
              << dr << ", " << dc << ")";
          EXPECT_TRUE(BitEqual(stencil.LogWeight(dr, dc),
                               kernel->LogWeight(std::abs(dr),
                                                 std::abs(dc))));
        }
      }
    }
  }
}

TEST(KernelStencil, RowSliceCoversAllDestinationColumns) {
  // RowSlice(drow, center)[j] must equal LogWeight(drow, j - center) for
  // every destination column j — the contiguous view the transition
  // matrix's fused sweeps consume.
  for (const auto& kernel : AllKernels()) {
    const std::size_t rows = 3, cols = 5;
    const KernelStencil stencil(rows, cols, *kernel);
    for (int dr = -2; dr <= 2; ++dr) {
      for (std::size_t center = 0; center < cols; ++center) {
        const double* slice = stencil.RowSlice(dr, center);
        for (std::size_t j = 0; j < cols; ++j) {
          EXPECT_TRUE(BitEqual(
              slice[j],
              kernel->LogWeight(dr, static_cast<int>(j) -
                                        static_cast<int>(center))))
              << kernel->Describe() << " drow=" << dr
              << " center=" << center << " j=" << j;
        }
      }
    }
  }
}

TEST(MakeKernel, DispatchesOnType) {
  KernelConfig tri;
  tri.type = KernelConfig::Type::kTriangular;
  EXPECT_NE(MakeKernel(tri)->Describe().find("triangular"),
            std::string::npos);
  KernelConfig expo;
  expo.type = KernelConfig::Type::kExponential;
  expo.w = 2.5;
  EXPECT_NE(MakeKernel(expo)->Describe().find("exponential"),
            std::string::npos);
}

}  // namespace
}  // namespace pmcorr
