// Tests for PairModel persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "io/model_io.h"

namespace pmcorr {
namespace {

PairModel TrainedModel(std::uint64_t seed = 3, bool exponential = false) {
  Rng rng(seed);
  std::vector<double> xs(800), ys(800);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double load =
        50.0 + 30.0 * std::sin(static_cast<double>(i) * 0.04) +
        rng.Normal(0.0, 1.0);
    xs[i] = load;
    ys[i] = 100.0 * load / (load + 40.0) + rng.Normal(0.0, 0.4);
  }
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  config.delta = 1e-4;
  config.fitness_alarm_threshold = 0.2;
  config.forgetting = 0.995;
  if (exponential) {
    config.kernel.type = KernelConfig::Type::kExponential;
    config.kernel.w = 2.5;
    config.kernel.metric = CellMetric::kManhattan;
  }
  return PairModel::Learn(xs, ys, config);
}

TEST(ModelIo, RoundTripPreservesStructureAndPosterior) {
  const PairModel original = TrainedModel();
  std::stringstream stream;
  SavePairModel(original, stream);
  const PairModel loaded = LoadPairModel(stream);

  ASSERT_EQ(loaded.Grid().CellCount(), original.Grid().CellCount());
  EXPECT_EQ(loaded.Grid().Rows(), original.Grid().Rows());
  EXPECT_DOUBLE_EQ(loaded.Grid().Dim1().Lo(), original.Grid().Dim1().Lo());
  EXPECT_DOUBLE_EQ(loaded.Grid().Dim2().Hi(), original.Grid().Dim2().Hi());
  EXPECT_DOUBLE_EQ(loaded.Grid().InitialAvgWidthDim1(),
                   original.Grid().InitialAvgWidthDim1());
  EXPECT_EQ(loaded.Matrix().ObservedCount(),
            original.Matrix().ObservedCount());

  for (std::size_t i = 0; i < original.Grid().CellCount(); ++i) {
    for (std::size_t j = 0; j < original.Grid().CellCount(); ++j) {
      ASSERT_DOUBLE_EQ(loaded.Matrix().Probability(i, j),
                       original.Matrix().Probability(i, j));
      ASSERT_EQ(loaded.Matrix().CountOf(i, j), original.Matrix().CountOf(i, j));
    }
  }
}

TEST(ModelIo, RoundTripPreservesConfig) {
  const PairModel original = TrainedModel(5, /*exponential=*/true);
  std::stringstream stream;
  SavePairModel(original, stream);
  const PairModel loaded = LoadPairModel(stream);
  EXPECT_EQ(loaded.Config().kernel.type, KernelConfig::Type::kExponential);
  EXPECT_DOUBLE_EQ(loaded.Config().kernel.w, 2.5);
  EXPECT_EQ(loaded.Config().kernel.metric, CellMetric::kManhattan);
  EXPECT_DOUBLE_EQ(loaded.Config().delta, original.Config().delta);
  EXPECT_DOUBLE_EQ(loaded.Config().forgetting, original.Config().forgetting);
  EXPECT_EQ(loaded.Config().adaptive, original.Config().adaptive);
}

TEST(ModelIo, LoadedModelBehavesIdentically) {
  const PairModel original = TrainedModel(7);
  std::stringstream stream;
  SavePairModel(original, stream);
  PairModel loaded = LoadPairModel(stream);
  PairModel reference = original;  // copy continues alongside

  reference.ResetSequence();
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const double load =
        50.0 + 30.0 * std::sin(i * 0.04) + rng.Normal(0.0, 1.0);
    const double y = 100.0 * load / (load + 40.0);
    const StepOutcome a = reference.Step(load, y);
    const StepOutcome b = loaded.Step(load, y);
    ASSERT_EQ(a.has_score, b.has_score);
    ASSERT_DOUBLE_EQ(a.fitness, b.fitness);
    ASSERT_DOUBLE_EQ(a.probability, b.probability);
    ASSERT_EQ(a.alarm, b.alarm);
  }
}

TEST(ModelIo, RoundTripAfterExtension) {
  PairModel model = TrainedModel(9);
  // Force an extension, then round-trip; r_avg must persist.
  const double drift =
      model.Grid().Dim1().Hi() + 0.3 * model.Grid().InitialAvgWidthDim1();
  model.Step(50.0, 55.0);
  const StepOutcome out = model.Step(drift, 55.0);
  ASSERT_TRUE(out.extended_grid);

  std::stringstream stream;
  SavePairModel(model, stream);
  const PairModel loaded = LoadPairModel(stream);
  EXPECT_EQ(loaded.Grid().CellCount(), model.Grid().CellCount());
  EXPECT_DOUBLE_EQ(loaded.Grid().InitialAvgWidthDim1(),
                   model.Grid().InitialAvgWidthDim1());
}

// Fuzz-style robustness: a valid model file truncated at any byte
// boundary must throw a clean std::runtime_error — never crash, hang or
// silently succeed with a half-loaded model.
class ModelIoTruncation : public ::testing::TestWithParam<int> {};

TEST_P(ModelIoTruncation, TruncatedFilesThrowCleanly) {
  const PairModel original = TrainedModel(21);
  std::stringstream stream;
  SavePairModel(original, stream);
  const std::string full = stream.str();

  // Truncate at a fraction of the full length (never the whole file).
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(full.size()) * GetParam() / 100.0);
  std::stringstream truncated(full.substr(0, cut));
  EXPECT_THROW(LoadPairModel(truncated), std::runtime_error)
      << "cut at " << cut << " of " << full.size();
}

INSTANTIATE_TEST_SUITE_P(CutPoints, ModelIoTruncation,
                         ::testing::Values(0, 1, 3, 10, 25, 50, 75, 90, 99));

TEST(ModelIo, CorruptedNumbersThrowCleanly) {
  const PairModel original = TrainedModel(23);
  std::stringstream stream;
  SavePairModel(original, stream);
  std::string text = stream.str();

  // Replace the first digit after "matrix " with garbage.
  const auto pos = text.find("matrix ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = 'x';
  std::stringstream corrupted(text);
  EXPECT_THROW(LoadPairModel(corrupted), std::runtime_error);
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream stream("not a model at all");
  EXPECT_THROW(LoadPairModel(stream), std::runtime_error);
  std::stringstream truncated("pmcorr-model v1\nkernel 0 2.0 2\n");
  EXPECT_THROW(LoadPairModel(truncated), std::runtime_error);
  EXPECT_THROW(LoadPairModel("/nonexistent/model.txt"), std::runtime_error);
}

}  // namespace
}  // namespace pmcorr
