// Tests for machine-level localization (Figure 14 logic).
#include <gtest/gtest.h>

#include "engine/localizer.h"

namespace pmcorr {
namespace {

std::vector<MeasurementInfo> Infos(std::size_t machines,
                                   std::size_t per_machine) {
  std::vector<MeasurementInfo> infos;
  for (std::size_t m = 0; m < machines; ++m) {
    for (std::size_t k = 0; k < per_machine; ++k) {
      MeasurementInfo info;
      info.id = MeasurementId(static_cast<std::int32_t>(infos.size()));
      info.machine = MachineId(static_cast<std::int32_t>(m));
      infos.push_back(info);
    }
  }
  return infos;
}

std::vector<ScoreAverager> Averages(const std::vector<double>& means) {
  std::vector<ScoreAverager> avgs(means.size());
  for (std::size_t i = 0; i < means.size(); ++i) avgs[i].Add(means[i]);
  return avgs;
}

TEST(ScoreMachines, AveragesPerMachineAndSortsAscending) {
  const auto infos = Infos(3, 2);
  const auto avgs = Averages({0.9, 1.0, 0.5, 0.7, 0.95, 0.85});
  const auto scores = ScoreMachines(infos, avgs);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].machine, MachineId(1));  // (0.5+0.7)/2 = 0.6 lowest
  EXPECT_DOUBLE_EQ(scores[0].score, 0.6);
  EXPECT_EQ(scores[0].measurements, 2u);
  EXPECT_EQ(scores[2].machine, MachineId(0));
  EXPECT_DOUBLE_EQ(scores[2].score, 0.95);
}

TEST(ScoreMachines, SkipsMeasurementsWithNoScores) {
  const auto infos = Infos(2, 2);
  std::vector<ScoreAverager> avgs(4);
  avgs[0].Add(0.8);
  // avgs[1] never engaged.
  avgs[2].Add(0.6);
  avgs[3].Add(0.4);
  const auto scores = ScoreMachines(infos, avgs);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[1].score, 0.8);  // machine 0: only one engaged
  EXPECT_EQ(scores[1].measurements, 1u);
}

TEST(Localize, AbsoluteFloorFlagsLowMachines) {
  const auto infos = Infos(4, 1);
  const auto avgs = Averages({0.95, 0.96, 0.85, 0.97});
  LocalizerConfig config;
  config.absolute_floor = 0.9;
  config.deviations = 0.0;
  const auto report = Localize(infos, avgs, config);
  ASSERT_EQ(report.suspects.size(), 1u);
  EXPECT_EQ(report.suspects[0], MachineId(2));
  EXPECT_DOUBLE_EQ(report.threshold, 0.9);
}

TEST(Localize, RelativeCriterionFlagsOutlierMachine) {
  // 9 healthy machines near 0.95, one at 0.5.
  std::vector<double> means(10, 0.95);
  means[4] = 0.5;
  const auto infos = Infos(10, 1);
  LocalizerConfig config;
  config.deviations = 2.0;
  const auto report = Localize(infos, Averages(means), config);
  ASSERT_EQ(report.suspects.size(), 1u);
  EXPECT_EQ(report.suspects[0], MachineId(4));
  EXPECT_EQ(report.ranking.front().machine, MachineId(4));
}

TEST(Localize, NoSuspectsOnHealthyFleet) {
  const auto infos = Infos(6, 1);
  const auto avgs = Averages({0.94, 0.95, 0.96, 0.95, 0.94, 0.96});
  LocalizerConfig config;
  config.absolute_floor = 0.8;
  config.deviations = 0.0;
  const auto report = Localize(infos, avgs, config);
  EXPECT_TRUE(report.suspects.empty());
}

TEST(Localize, EmptyInputs) {
  const auto report = Localize({}, {}, {});
  EXPECT_TRUE(report.ranking.empty());
  EXPECT_TRUE(report.suspects.empty());
}

}  // namespace
}  // namespace pmcorr
