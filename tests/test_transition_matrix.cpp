// Tests for the transition probability matrix, including an exact pin of
// the paper's Figure 5 prior and the Figure 9/10 prior-vs-posterior
// behaviour.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/transition_matrix.h"
#include "grid/grid.h"
#include "grid/kernels.h"

namespace pmcorr {
namespace {

Grid2D Grid3x3() {
  return Grid2D(IntervalList::Uniform(0.0, 3.0, 3),
                IntervalList::Uniform(0.0, 3.0, 3));
}

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Reference scoring oracle: the pre-stencil scalar arithmetic, operation
// for operation, computed from the matrix's public accessors. The fused
// and cached paths must reproduce it bitwise.
struct OracleScore {
  double probability = 0.0;
  std::size_t rank = 0;
};

OracleScore Oracle(const TransitionMatrix& m, std::size_t from,
                   std::size_t to) {
  const std::size_t s = m.CellCount();
  const auto w = [&](std::size_t j) {
    return m.PriorLogW(from, j) + m.Evidence()[from * s + j];
  };
  double max_logw = w(0);
  for (std::size_t j = 1; j < s; ++j) max_logw = std::max(max_logw, w(j));
  double total = 0.0;
  for (std::size_t j = 0; j < s; ++j) total += std::exp(w(j) - max_logw);
  OracleScore out;
  out.probability = std::exp(w(to) - max_logw) / total;
  const double target = w(to);
  out.rank = 1;
  for (std::size_t j = 0; j < s; ++j) {
    if (w(j) > target || (w(j) == target && j < to)) ++out.rank;
  }
  return out;
}

// The full 9x9 matrix printed in Figure 5 of the paper (percent).
constexpr double kFigure5[9][9] = {
    {21.98, 14.65, 8.79, 14.65, 10.99, 7.33, 8.79, 7.33, 5.49},
    {13.16, 19.74, 13.16, 9.87, 13.16, 9.87, 6.58, 7.89, 6.58},
    {8.79, 14.65, 21.98, 7.33, 10.99, 14.65, 5.49, 7.33, 8.79},
    {13.16, 9.87, 6.58, 19.74, 13.16, 7.89, 13.16, 9.87, 6.58},
    {8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82},
    {6.58, 9.87, 13.16, 7.89, 13.16, 19.74, 6.58, 9.87, 13.16},
    {8.79, 7.33, 5.49, 14.65, 10.99, 7.33, 21.98, 14.65, 8.79},
    {6.58, 7.89, 6.58, 9.87, 13.16, 9.87, 13.16, 19.74, 13.16},
    {5.49, 7.33, 8.79, 7.33, 10.99, 14.65, 8.79, 14.65, 21.98},
};

TEST(TransitionMatrix, PriorReproducesFigure5Exactly) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < 9; ++i) {
    const auto row = matrix.RowDistribution(i);
    for (std::size_t j = 0; j < 9; ++j) {
      // The paper prints 2 decimals of percent -> tolerance 0.005%.
      EXPECT_NEAR(row[j] * 100.0, kFigure5[i][j], 5e-3)
          << "cell c" << i + 1 << " -> c" << j + 1;
    }
  }
}

TEST(TransitionMatrix, RowsAreDistributions) {
  const Grid2D grid = Grid3x3();
  const ExponentialKernel kernel(2.0, CellMetric::kEuclidean);
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < matrix.CellCount(); ++i) {
    const auto row = matrix.RowDistribution(i);
    const double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double p : row) EXPECT_GT(p, 0.0);
  }
}

TEST(TransitionMatrix, PriorSelfTransitionHighest) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(matrix.ArgMax(i), i);
    EXPECT_EQ(matrix.RankOf(i, i), 1u);
  }
}

TEST(TransitionMatrix, ObservationsShiftTheMode) {
  // Figure 9 -> Figure 10: the prior peaks on the self-transition, but
  // after repeatedly observing c5 -> c1, the posterior mode moves to c1.
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  EXPECT_EQ(matrix.ArgMax(4), 4u);
  for (int k = 0; k < 12; ++k) {
    matrix.ObserveTransition(4, 0, grid, kernel);
  }
  EXPECT_EQ(matrix.ArgMax(4), 0u);
  EXPECT_GT(matrix.Probability(4, 0), matrix.Probability(4, 4));
  // Other rows are untouched.
  EXPECT_EQ(matrix.ArgMax(3), 3u);
}

TEST(TransitionMatrix, ProbabilityMatchesRowDistribution) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(2, 7, grid, kernel);
  const auto row = matrix.RowDistribution(2);
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_NEAR(matrix.Probability(2, j), row[j], 1e-12);
  }
}

TEST(TransitionMatrix, RanksAreAPermutation) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(4, 1, grid, kernel);
  std::vector<bool> seen(9, false);
  for (std::size_t j = 0; j < 9; ++j) {
    const std::size_t rank = matrix.RankOf(4, j);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 9u);
    EXPECT_FALSE(seen[rank - 1]) << "duplicate rank " << rank;
    seen[rank - 1] = true;
  }
}

TEST(TransitionMatrix, CountsTrackObservations) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(0, 0, grid, kernel);
  matrix.ObserveTransition(0, 1, grid, kernel);
  matrix.ObserveTransition(0, 1, grid, kernel);
  EXPECT_EQ(matrix.ObservedCount(), 3u);
  EXPECT_EQ(matrix.CountOf(0, 0), 1u);
  EXPECT_EQ(matrix.CountOf(0, 1), 2u);
  EXPECT_EQ(matrix.CountOf(1, 0), 0u);
}

TEST(TransitionMatrix, ForgettingBoundsEvidence) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix sticky = TransitionMatrix::Prior(grid, kernel);
  TransitionMatrix forgetful = TransitionMatrix::Prior(grid, kernel);
  for (int k = 0; k < 500; ++k) {
    sticky.ObserveTransition(4, 0, grid, kernel, 1.0, 1.0);
    forgetful.ObserveTransition(4, 0, grid, kernel, 1.0, 0.9);
  }
  // With forgetting the posterior stays smooth; without, it sharpens
  // towards a point mass.
  EXPECT_GT(sticky.Probability(4, 0), forgetful.Probability(4, 0));
  EXPECT_GT(forgetful.Probability(4, 4), 1e-6);
  // Both still agree on the mode.
  EXPECT_EQ(sticky.ArgMax(4), 0u);
  EXPECT_EQ(forgetful.ArgMax(4), 0u);
}

TEST(TransitionMatrix, ExtensionRemapsEvidenceAndCounts) {
  Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (int k = 0; k < 8; ++k) matrix.ObserveTransition(4, 1, grid, kernel);
  EXPECT_EQ(matrix.ArgMax(4), 1u);

  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude({-0.5, -0.5}, 2.0, 2.0);
  ASSERT_TRUE(ext.has_value());
  matrix.ApplyExtension(*ext, old_cols, grid, kernel);

  EXPECT_EQ(matrix.CellCount(), grid.CellCount());
  const std::size_t new4 = Grid2D::RemapIndex(4, old_cols, *ext);
  const std::size_t new1 = Grid2D::RemapIndex(1, old_cols, *ext);
  EXPECT_EQ(matrix.ArgMax(new4), new1);
  EXPECT_EQ(matrix.CountOf(new4, new1), 8u);
  EXPECT_EQ(matrix.ObservedCount(), 8u);

  // New cells behave like prior rows: self-transition is the mode.
  const std::size_t new_cell = 0;  // freshly added corner
  EXPECT_EQ(matrix.ArgMax(new_cell), new_cell);
  const auto row = matrix.RowDistribution(new_cell);
  EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-12);
}

TEST(TransitionMatrix, NewCellsDoNotOutrankObservedDestinations) {
  // Regression: after an extension, an observed row's brand-new columns
  // must not start at zero evidence — accumulated evidence is negative,
  // so a zero entry would make the never-visited cell the row's most
  // probable destination.
  Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  // Heavy history: row 4 almost always stays at 4.
  for (int k = 0; k < 200; ++k) matrix.ObserveTransition(4, 4, grid, kernel);

  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude({3.4, 1.5}, 3.0, 3.0);
  ASSERT_TRUE(ext.has_value());
  ASSERT_FALSE(ext->Empty());
  matrix.ApplyExtension(*ext, old_cols, grid, kernel);

  const std::size_t new4 = Grid2D::RemapIndex(4, old_cols, *ext);
  EXPECT_EQ(matrix.ArgMax(new4), new4);
  EXPECT_EQ(matrix.RankOf(new4, new4), 1u);
  // The adjacent brand-new cell ranks below the observed self-transition
  // and its probability is small.
  const std::size_t new_cell = grid.CellCount() - 1;
  EXPECT_GT(matrix.RankOf(new4, new_cell), 1u);
  EXPECT_LT(matrix.Probability(new4, new_cell),
            matrix.Probability(new4, new4));
}

TEST(TransitionMatrix, LikelihoodWeightScalesUpdateStrength) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix weak = TransitionMatrix::Prior(grid, kernel);
  TransitionMatrix strong = TransitionMatrix::Prior(grid, kernel);
  weak.ObserveTransition(4, 0, grid, kernel, 0.2);
  strong.ObserveTransition(4, 0, grid, kernel, 5.0);
  EXPECT_GT(strong.Probability(4, 0), weak.Probability(4, 0));
}

TEST(TransitionDistanceHistogram, CountsByChebyshevDistance) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(4, 4, grid, kernel);  // d=0
  matrix.ObserveTransition(4, 4, grid, kernel);  // d=0
  matrix.ObserveTransition(4, 1, grid, kernel);  // d=1
  matrix.ObserveTransition(0, 8, grid, kernel);  // d=2
  const auto hist = TransitionDistanceHistogram(matrix, grid);
  ASSERT_GE(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(TransitionMatrix, EmptyMatrixQueriesAreGuarded) {
  // Regression: Probability/RowDistribution/ArgMax/RankOf used to read
  // PosteriorLogW(from, 0) unconditionally — an out-of-bounds read on a
  // default-constructed (cells_ == 0) matrix.
  const TransitionMatrix matrix;
  EXPECT_EQ(matrix.CellCount(), 0u);
  EXPECT_EQ(matrix.Probability(0, 0), 0.0);
  EXPECT_TRUE(matrix.RowDistribution(0).empty());
  EXPECT_EQ(matrix.ArgMax(0), 0u);
  EXPECT_EQ(matrix.RankOf(0, 0), 0u);
  const TransitionScore score = matrix.ScoreTransition(0, 0);
  EXPECT_EQ(score.probability, 0.0);
  EXPECT_EQ(score.rank, 0u);
}

TEST(TransitionMatrix, ScoreTransitionMatchesSeparateQueriesBitwise) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(4, 1, grid, kernel, 0.7, 0.95);
  matrix.ObserveTransition(4, 4, grid, kernel);
  matrix.ObserveTransition(2, 0, grid, kernel, 1.3, 0.9);

  for (std::size_t from = 0; from < matrix.CellCount(); ++from) {
    for (std::size_t to = 0; to < matrix.CellCount(); ++to) {
      const OracleScore expect = Oracle(matrix, from, to);
      // First score after the writes: the cold fused pass.
      const TransitionScore cold = matrix.ScoreTransition(from, to);
      EXPECT_TRUE(BitEqual(cold.probability, expect.probability))
          << from << "->" << to;
      EXPECT_EQ(cold.rank, expect.rank) << from << "->" << to;
      // Repeated scores: cached stats, then the sorted rank cache (the
      // prior's rows are full of exact ties, exercising the tie-break).
      for (int repeat = 0; repeat < 3; ++repeat) {
        const TransitionScore warm = matrix.ScoreTransition(from, to);
        EXPECT_TRUE(BitEqual(warm.probability, expect.probability))
            << from << "->" << to << " repeat " << repeat;
        EXPECT_EQ(warm.rank, expect.rank)
            << from << "->" << to << " repeat " << repeat;
      }
      // The unfused queries agree too.
      EXPECT_TRUE(BitEqual(matrix.Probability(from, to),
                           expect.probability));
      EXPECT_EQ(matrix.RankOf(from, to), expect.rank);
    }
  }

  // A write invalidates the row's caches.
  matrix.ObserveTransition(4, 0, grid, kernel, 0.7, 0.95);
  const OracleScore expect = Oracle(matrix, 4, 0);
  const TransitionScore after = matrix.ScoreTransition(4, 0);
  EXPECT_TRUE(BitEqual(after.probability, expect.probability));
  EXPECT_EQ(after.rank, expect.rank);
}

TEST(TransitionMatrix, PriorAndStencilTrackGridExtension) {
  // After ExtendToInclude + ApplyExtension the stencil must match the
  // grown shape and every prior entry must equal direct kernel
  // evaluation bitwise — for both kernels and all three metrics.
  KernelConfig configs[4];
  configs[0].type = KernelConfig::Type::kTriangular;
  for (int i = 1; i < 4; ++i) {
    configs[i].type = KernelConfig::Type::kExponential;
    configs[i].w = 2.0;
  }
  configs[1].metric = CellMetric::kChebyshev;
  configs[2].metric = CellMetric::kManhattan;
  configs[3].metric = CellMetric::kEuclidean;

  for (const KernelConfig& config : configs) {
    const auto kernel = MakeKernel(config);
    // Degenerate 1 x 4 start: extensions may grow either dimension.
    Grid2D grid(IntervalList::Uniform(0.0, 1.0, 1),
                IntervalList::Uniform(0.0, 4.0, 4));
    TransitionMatrix matrix = TransitionMatrix::Prior(grid, *kernel);
    matrix.ObserveTransition(1, 2, grid, *kernel);

    const std::size_t old_cols = grid.Cols();
    const auto ext = grid.ExtendToInclude({-0.8, 4.3}, 2.0, 2.0);
    ASSERT_TRUE(ext.has_value());
    ASSERT_FALSE(ext->Empty());
    matrix.ApplyExtension(*ext, old_cols, grid, *kernel);

    ASSERT_TRUE(matrix.Stencil().Matches(grid.Rows(), grid.Cols()));
    ASSERT_EQ(matrix.CellCount(), grid.CellCount());
    for (std::size_t i = 0; i < matrix.CellCount(); ++i) {
      const CellCoord ci = grid.CoordOf(i);
      for (std::size_t j = 0; j < matrix.CellCount(); ++j) {
        const CellCoord cj = grid.CoordOf(j);
        EXPECT_TRUE(BitEqual(matrix.PriorLogW(i, j),
                             kernel->LogWeight(std::abs(ci.i1 - cj.i1),
                                               std::abs(ci.i2 - cj.i2))))
            << kernel->Describe() << " (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(TransitionMatrix, ExtensionBackfillWithForgetting) {
  // The backfill reconstructs a new column's evidence from the row's
  // empirical counts: likelihood_weight * sum(count_d * logw(d, new)),
  // summed in ascending destination order. Pin it bitwise for a
  // forgetting < 1 history (the reconstruction is approximate w.r.t.
  // what Eq. (2) would have accumulated, but exactly defined).
  Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  const double weight = 0.7, forgetting = 0.9;
  matrix.ObserveTransition(4, 1, grid, kernel, weight, forgetting);
  matrix.ObserveTransition(4, 1, grid, kernel, weight, forgetting);
  matrix.ObserveTransition(4, 4, grid, kernel, weight, forgetting);
  matrix.ObserveTransition(2, 0, grid, kernel, weight, forgetting);

  // Old-grid counts per row, before the extension remaps them.
  const std::vector<std::uint32_t> old_counts = matrix.Counts();
  const std::size_t old_cells = matrix.CellCount();

  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude({3.4, 1.5}, 3.0, 3.0);
  ASSERT_TRUE(ext.has_value());
  ASSERT_FALSE(ext->Empty());
  matrix.ApplyExtension(*ext, old_cols, grid, kernel, weight);

  std::vector<bool> is_old(grid.CellCount(), false);
  for (std::size_t i = 0; i < old_cells; ++i) {
    is_old[Grid2D::RemapIndex(i, old_cols, *ext)] = true;
  }
  const std::size_t s = matrix.CellCount();
  for (std::size_t i = 0; i < old_cells; ++i) {
    const std::size_t ni = Grid2D::RemapIndex(i, old_cols, *ext);
    for (std::size_t nj = 0; nj < s; ++nj) {
      if (is_old[nj]) continue;
      // Reference sum in the pinned order: ascending old destination.
      double evidence = 0.0;
      bool any = false;
      for (std::size_t j = 0; j < old_cells; ++j) {
        const std::uint32_t c = old_counts[i * old_cells + j];
        if (c == 0) continue;
        any = true;
        const CellCoord cd =
            grid.CoordOf(Grid2D::RemapIndex(j, old_cols, *ext));
        const CellCoord cn = grid.CoordOf(nj);
        evidence += static_cast<double>(c) *
                    kernel.LogWeight(std::abs(cd.i1 - cn.i1),
                                     std::abs(cd.i2 - cn.i2));
      }
      const double expected = any ? weight * evidence : 0.0;
      EXPECT_TRUE(BitEqual(matrix.Evidence()[ni * s + nj], expected))
          << "row " << ni << " new col " << nj;
      // And the backfilled column must not outrank real history.
      if (any) {
        EXPECT_GT(matrix.RankOf(ni, nj), 1u);
      }
    }
  }
}

TEST(TransitionMatrix, RestoreStateRejectsWrongSizes) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  EXPECT_THROW(matrix.RestoreState(std::vector<double>(3, 0.0),
                                   std::vector<std::uint32_t>(81, 0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmcorr
