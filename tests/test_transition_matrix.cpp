// Tests for the transition probability matrix, including an exact pin of
// the paper's Figure 5 prior and the Figure 9/10 prior-vs-posterior
// behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/transition_matrix.h"
#include "grid/grid.h"
#include "grid/kernels.h"

namespace pmcorr {
namespace {

Grid2D Grid3x3() {
  return Grid2D(IntervalList::Uniform(0.0, 3.0, 3),
                IntervalList::Uniform(0.0, 3.0, 3));
}

// The full 9x9 matrix printed in Figure 5 of the paper (percent).
constexpr double kFigure5[9][9] = {
    {21.98, 14.65, 8.79, 14.65, 10.99, 7.33, 8.79, 7.33, 5.49},
    {13.16, 19.74, 13.16, 9.87, 13.16, 9.87, 6.58, 7.89, 6.58},
    {8.79, 14.65, 21.98, 7.33, 10.99, 14.65, 5.49, 7.33, 8.79},
    {13.16, 9.87, 6.58, 19.74, 13.16, 7.89, 13.16, 9.87, 6.58},
    {8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82},
    {6.58, 9.87, 13.16, 7.89, 13.16, 19.74, 6.58, 9.87, 13.16},
    {8.79, 7.33, 5.49, 14.65, 10.99, 7.33, 21.98, 14.65, 8.79},
    {6.58, 7.89, 6.58, 9.87, 13.16, 9.87, 13.16, 19.74, 13.16},
    {5.49, 7.33, 8.79, 7.33, 10.99, 14.65, 8.79, 14.65, 21.98},
};

TEST(TransitionMatrix, PriorReproducesFigure5Exactly) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < 9; ++i) {
    const auto row = matrix.RowDistribution(i);
    for (std::size_t j = 0; j < 9; ++j) {
      // The paper prints 2 decimals of percent -> tolerance 0.005%.
      EXPECT_NEAR(row[j] * 100.0, kFigure5[i][j], 5e-3)
          << "cell c" << i + 1 << " -> c" << j + 1;
    }
  }
}

TEST(TransitionMatrix, RowsAreDistributions) {
  const Grid2D grid = Grid3x3();
  const ExponentialKernel kernel(2.0, CellMetric::kEuclidean);
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < matrix.CellCount(); ++i) {
    const auto row = matrix.RowDistribution(i);
    const double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double p : row) EXPECT_GT(p, 0.0);
  }
}

TEST(TransitionMatrix, PriorSelfTransitionHighest) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  const TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(matrix.ArgMax(i), i);
    EXPECT_EQ(matrix.RankOf(i, i), 1u);
  }
}

TEST(TransitionMatrix, ObservationsShiftTheMode) {
  // Figure 9 -> Figure 10: the prior peaks on the self-transition, but
  // after repeatedly observing c5 -> c1, the posterior mode moves to c1.
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  EXPECT_EQ(matrix.ArgMax(4), 4u);
  for (int k = 0; k < 12; ++k) {
    matrix.ObserveTransition(4, 0, grid, kernel);
  }
  EXPECT_EQ(matrix.ArgMax(4), 0u);
  EXPECT_GT(matrix.Probability(4, 0), matrix.Probability(4, 4));
  // Other rows are untouched.
  EXPECT_EQ(matrix.ArgMax(3), 3u);
}

TEST(TransitionMatrix, ProbabilityMatchesRowDistribution) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(2, 7, grid, kernel);
  const auto row = matrix.RowDistribution(2);
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_NEAR(matrix.Probability(2, j), row[j], 1e-12);
  }
}

TEST(TransitionMatrix, RanksAreAPermutation) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(4, 1, grid, kernel);
  std::vector<bool> seen(9, false);
  for (std::size_t j = 0; j < 9; ++j) {
    const std::size_t rank = matrix.RankOf(4, j);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 9u);
    EXPECT_FALSE(seen[rank - 1]) << "duplicate rank " << rank;
    seen[rank - 1] = true;
  }
}

TEST(TransitionMatrix, CountsTrackObservations) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(0, 0, grid, kernel);
  matrix.ObserveTransition(0, 1, grid, kernel);
  matrix.ObserveTransition(0, 1, grid, kernel);
  EXPECT_EQ(matrix.ObservedCount(), 3u);
  EXPECT_EQ(matrix.CountOf(0, 0), 1u);
  EXPECT_EQ(matrix.CountOf(0, 1), 2u);
  EXPECT_EQ(matrix.CountOf(1, 0), 0u);
}

TEST(TransitionMatrix, ForgettingBoundsEvidence) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix sticky = TransitionMatrix::Prior(grid, kernel);
  TransitionMatrix forgetful = TransitionMatrix::Prior(grid, kernel);
  for (int k = 0; k < 500; ++k) {
    sticky.ObserveTransition(4, 0, grid, kernel, 1.0, 1.0);
    forgetful.ObserveTransition(4, 0, grid, kernel, 1.0, 0.9);
  }
  // With forgetting the posterior stays smooth; without, it sharpens
  // towards a point mass.
  EXPECT_GT(sticky.Probability(4, 0), forgetful.Probability(4, 0));
  EXPECT_GT(forgetful.Probability(4, 4), 1e-6);
  // Both still agree on the mode.
  EXPECT_EQ(sticky.ArgMax(4), 0u);
  EXPECT_EQ(forgetful.ArgMax(4), 0u);
}

TEST(TransitionMatrix, ExtensionRemapsEvidenceAndCounts) {
  Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  for (int k = 0; k < 8; ++k) matrix.ObserveTransition(4, 1, grid, kernel);
  EXPECT_EQ(matrix.ArgMax(4), 1u);

  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude({-0.5, -0.5}, 2.0, 2.0);
  ASSERT_TRUE(ext.has_value());
  matrix.ApplyExtension(*ext, old_cols, grid, kernel);

  EXPECT_EQ(matrix.CellCount(), grid.CellCount());
  const std::size_t new4 = Grid2D::RemapIndex(4, old_cols, *ext);
  const std::size_t new1 = Grid2D::RemapIndex(1, old_cols, *ext);
  EXPECT_EQ(matrix.ArgMax(new4), new1);
  EXPECT_EQ(matrix.CountOf(new4, new1), 8u);
  EXPECT_EQ(matrix.ObservedCount(), 8u);

  // New cells behave like prior rows: self-transition is the mode.
  const std::size_t new_cell = 0;  // freshly added corner
  EXPECT_EQ(matrix.ArgMax(new_cell), new_cell);
  const auto row = matrix.RowDistribution(new_cell);
  EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-12);
}

TEST(TransitionMatrix, NewCellsDoNotOutrankObservedDestinations) {
  // Regression: after an extension, an observed row's brand-new columns
  // must not start at zero evidence — accumulated evidence is negative,
  // so a zero entry would make the never-visited cell the row's most
  // probable destination.
  Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  // Heavy history: row 4 almost always stays at 4.
  for (int k = 0; k < 200; ++k) matrix.ObserveTransition(4, 4, grid, kernel);

  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude({3.4, 1.5}, 3.0, 3.0);
  ASSERT_TRUE(ext.has_value());
  ASSERT_FALSE(ext->Empty());
  matrix.ApplyExtension(*ext, old_cols, grid, kernel);

  const std::size_t new4 = Grid2D::RemapIndex(4, old_cols, *ext);
  EXPECT_EQ(matrix.ArgMax(new4), new4);
  EXPECT_EQ(matrix.RankOf(new4, new4), 1u);
  // The adjacent brand-new cell ranks below the observed self-transition
  // and its probability is small.
  const std::size_t new_cell = grid.CellCount() - 1;
  EXPECT_GT(matrix.RankOf(new4, new_cell), 1u);
  EXPECT_LT(matrix.Probability(new4, new_cell),
            matrix.Probability(new4, new4));
}

TEST(TransitionMatrix, LikelihoodWeightScalesUpdateStrength) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix weak = TransitionMatrix::Prior(grid, kernel);
  TransitionMatrix strong = TransitionMatrix::Prior(grid, kernel);
  weak.ObserveTransition(4, 0, grid, kernel, 0.2);
  strong.ObserveTransition(4, 0, grid, kernel, 5.0);
  EXPECT_GT(strong.Probability(4, 0), weak.Probability(4, 0));
}

TEST(TransitionDistanceHistogram, CountsByChebyshevDistance) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  matrix.ObserveTransition(4, 4, grid, kernel);  // d=0
  matrix.ObserveTransition(4, 4, grid, kernel);  // d=0
  matrix.ObserveTransition(4, 1, grid, kernel);  // d=1
  matrix.ObserveTransition(0, 8, grid, kernel);  // d=2
  const auto hist = TransitionDistanceHistogram(matrix, grid);
  ASSERT_GE(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(TransitionMatrix, RestoreStateRejectsWrongSizes) {
  const Grid2D grid = Grid3x3();
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  EXPECT_THROW(matrix.RestoreState(std::vector<double>(3, 0.0),
                                   std::vector<std::uint32_t>(81, 0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmcorr
