// Tests for the terminal sparkline renderer.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/sparkline.h"

namespace pmcorr {
namespace {

// Each block glyph is 3 bytes of UTF-8; gaps are 1 byte.
std::size_t GlyphCount(const std::string& s) {
  std::size_t count = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++count;  // count non-continuation bytes
  }
  return count;
}

TEST(Sparkline, WidthMatchesRequest) {
  std::vector<double> values(100);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  SparklineOptions options;
  options.width = 24;
  EXPECT_EQ(GlyphCount(Sparkline(values, options)), 24u);
}

TEST(Sparkline, ShortSeriesOneColumnPerSample) {
  const std::vector<double> values = {0.0, 1.0};
  SparklineOptions options;
  options.width = 50;
  const std::string line = Sparkline(values, options);
  EXPECT_EQ(GlyphCount(line), 2u);
  // Lowest block first, tallest last.
  EXPECT_EQ(line.substr(0, 3), "▁");
  EXPECT_EQ(line.substr(3, 3), "█");
}

TEST(Sparkline, MonotoneDataRendersMonotoneBlocks) {
  std::vector<double> values;
  for (int i = 0; i < 8; ++i) values.push_back(i);
  SparklineOptions options;
  options.width = 8;
  const std::string line = Sparkline(values, options);
  // Strictly non-decreasing block heights.
  for (std::size_t i = 3; i < line.size(); i += 3) {
    EXPECT_LE(line[i - 1], line[i + 2]);  // third UTF-8 byte encodes height
  }
}

TEST(Sparkline, GapsRenderAsGapChar) {
  std::vector<std::optional<double>> values = {0.5, std::nullopt, 0.5};
  SparklineOptions options;
  options.width = 3;
  const std::string line = Sparkline(
      std::span<const std::optional<double>>(values), options);
  EXPECT_NE(line.find(' '), std::string::npos);
}

TEST(Sparkline, FixedRangeClamps) {
  const std::vector<double> values = {-10.0, 0.5, 10.0};
  SparklineOptions options;
  options.width = 3;
  options.lo = 0.0;
  options.hi = 1.0;
  const std::string line = Sparkline(values, options);
  EXPECT_EQ(line.substr(0, 3), "▁");  // clamped low
  EXPECT_EQ(line.substr(6, 3), "█");  // clamped high
}

TEST(Sparkline, EmptyAndAllGapInputs) {
  EXPECT_EQ(Sparkline(std::span<const double>{}).size(),
            SparklineOptions{}.width);
  std::vector<std::optional<double>> gaps(5);
  SparklineOptions options;
  options.width = 5;
  EXPECT_EQ(Sparkline(std::span<const std::optional<double>>(gaps), options),
            "     ");
}

TEST(Sparkline, FlatSeriesDoesNotDivideByZero) {
  const std::vector<double> values(10, 3.0);
  const std::string line = Sparkline(values);
  EXPECT_FALSE(line.empty());
}

}  // namespace
}  // namespace pmcorr
