// Tests for SystemMonitor: multi-pair learning, stepping, aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "engine/monitor.h"

namespace pmcorr {
namespace {

// A small system: 2 machines x 2 metrics, all driven by one load signal.
MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed,
                             bool break_m3_correlation_late = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3_correlation_late && i >= samples / 2) {
      // Fast-moving decoupled walk: jumps across grid cells, which is
      // what makes the broken link score poorly (slow drifts would be
      // absorbed by the spatial-closeness prior).
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::clamp(walk, 20.0, 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  return config;
}

TEST(SystemMonitor, LearnsOneModelPerPair) {
  const MeasurementFrame history = SystemFrame(1200, 3);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  EXPECT_EQ(monitor.Graph().PairCount(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(monitor.Model(i).Matrix().ObservedCount(), 1000u);
  }
}

TEST(SystemMonitor, RejectsMismatchedInputs) {
  const MeasurementFrame history = SystemFrame(600, 5);
  EXPECT_THROW(SystemMonitor(history, MeasurementGraph::FullMesh(5),
                             SmallConfig()),
               std::invalid_argument);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(monitor.Step(wrong, 0), std::invalid_argument);
}

TEST(SystemMonitor, FirstSnapshotHasNoScores) {
  const MeasurementFrame history = SystemFrame(800, 7);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const std::vector<double> v = {60.0, 57.0, 170.0, 83.0};
  const SystemSnapshot snap = monitor.Step(v, 0);
  EXPECT_FALSE(snap.system_score.has_value());
  for (const auto& s : snap.pair_scores) EXPECT_FALSE(s.has_value());
}

TEST(SystemMonitor, NormalTestDataScoresHigh) {
  const MeasurementFrame history = SystemFrame(2400, 9);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const MeasurementFrame test = SystemFrame(400, 10);
  const auto snapshots = monitor.Run(test);
  ASSERT_EQ(snapshots.size(), 400u);
  EXPECT_GT(monitor.SystemAverage().Mean(), 0.8);
  EXPECT_EQ(monitor.StepCount(), 400u);
}

TEST(SystemMonitor, BrokenCorrelationLowersItsMeasurementScore) {
  const MeasurementFrame history = SystemFrame(2400, 11);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  // Second half of the test set: measurement 3 decouples from the load.
  const MeasurementFrame test = SystemFrame(600, 12, true);
  monitor.Run(test);
  const auto& avgs = monitor.MeasurementAverages();
  ASSERT_EQ(avgs.size(), 4u);
  // The broken measurement must rank worst and average clearly below the
  // healthy ones.
  for (int a = 0; a < 3; ++a) {
    EXPECT_LT(avgs[3].Mean(), avgs[static_cast<std::size_t>(a)].Mean());
  }
  const double healthy =
      (avgs[0].Mean() + avgs[1].Mean() + avgs[2].Mean()) / 3.0;
  EXPECT_LT(avgs[3].Mean(), healthy - 0.03);
}

TEST(SystemMonitor, SnapshotAggregationIsConsistent) {
  const MeasurementFrame history = SystemFrame(1200, 13);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const MeasurementFrame test = SystemFrame(50, 14);
  const auto snapshots = monitor.Run(test);
  for (const auto& snap : snapshots) {
    if (!snap.system_score) continue;
    // Q is the mean of engaged measurement scores.
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& q : snap.measurement_scores) {
      if (q) {
        sum += *q;
        ++n;
        EXPECT_GE(*q, 0.0);
        EXPECT_LE(*q, 1.0);
      }
    }
    ASSERT_GT(n, 0u);
    EXPECT_NEAR(*snap.system_score, sum / static_cast<double>(n), 1e-12);
  }
}

TEST(SystemMonitor, NeighborhoodGraphAlsoWorks) {
  const MeasurementFrame history = SystemFrame(1000, 15);
  const MeasurementGraph graph =
      MeasurementGraph::Neighborhood(history, 1, 99);
  SystemMonitor monitor(history, graph, SmallConfig());
  const MeasurementFrame test = SystemFrame(100, 16);
  const auto snapshots = monitor.Run(test);
  EXPECT_GT(monitor.SystemAverage().Mean(), 0.6);
}

TEST(SystemMonitor, CalibrateThresholdsArmsPairAlarms) {
  const MeasurementFrame history = SystemFrame(2000, 19);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  // Unarmed: nothing alarms even on broken data.
  const MeasurementFrame broken_probe = SystemFrame(60, 20, true);
  for (const auto& snap : monitor.Run(broken_probe)) {
    EXPECT_TRUE(snap.alarmed_pairs.empty());
  }

  const MeasurementFrame holdout = SystemFrame(600, 21);
  monitor.CalibrateThresholds(holdout, 0.05);
  for (std::size_t i = 0; i < monitor.Graph().PairCount(); ++i) {
    EXPECT_GT(monitor.Model(i).Config().fitness_alarm_threshold, 0.0);
  }

  // Clean data alarms at roughly the target rate per pair.
  const MeasurementFrame clean = SystemFrame(400, 22);
  std::size_t clean_alarms = 0;
  for (const auto& snap : monitor.Run(clean)) {
    clean_alarms += snap.alarmed_pairs.size();
  }
  const double per_pair_rate =
      static_cast<double>(clean_alarms) /
      (400.0 * static_cast<double>(monitor.Graph().PairCount()));
  EXPECT_LT(per_pair_rate, 0.25);

  // Broken data alarms more than clean data.
  monitor.ResetSequences();
  const MeasurementFrame broken = SystemFrame(400, 23, true);
  std::size_t broken_alarms = 0;
  for (const auto& snap : monitor.Run(broken)) {
    broken_alarms += snap.alarmed_pairs.size();
  }
  EXPECT_GT(broken_alarms, clean_alarms);

  // The alarm log recorded every pair alarm from both runs (plus the
  // unarmed probe run, which raised none).
  EXPECT_EQ(monitor.Alarms().Count(), clean_alarms + broken_alarms);
  if (broken_alarms > 0) {
    const auto noisy = monitor.Alarms().NoisiestPairs(3);
    EXPECT_FALSE(noisy.empty());
    // The noisiest pair touches the broken measurement (index 3).
    const PairId& pair = monitor.Graph().Pair(noisy.front());
    EXPECT_TRUE(pair.a.value == 3 || pair.b.value == 3);
  }
}

TEST(SystemMonitor, ResetSequencesDisengagesNextSample) {
  const MeasurementFrame history = SystemFrame(800, 17);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const MeasurementFrame test = SystemFrame(10, 18);
  monitor.Run(test);
  monitor.ResetSequences();
  const std::vector<double> v = {60.0, 57.0, 170.0, 83.0};
  const SystemSnapshot snap = monitor.Step(v, 0);
  EXPECT_FALSE(snap.system_score.has_value());
}

}  // namespace
}  // namespace pmcorr
