// Tests for the per-pair circuit breaker (engine/quarantine.h) and its
// integration with SystemMonitor: a scripted engine fault must be
// contained to the faulty pairs — every healthy pair's scores stay
// bitwise identical to a fault-free run — and the Step and Run paths
// must agree exactly about when pairs trip, back off, and re-admit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "engine/fault_plan.h"
#include "engine/monitor.h"
#include "engine/quarantine.h"

namespace pmcorr {
namespace {

QuarantineConfig FastBackoff() {
  QuarantineConfig config;
  config.backoff.base = 4;
  config.backoff.multiplier = 2.0;
  config.backoff.cap = 64;
  config.backoff.budget = 3;
  return config;
}

TEST(PairQuarantine, TripBacksOffThenProbationReadmits) {
  PairQuarantine quarantine(2, FastBackoff());
  EXPECT_EQ(quarantine.BeginStep(0, 10), PairQuarantine::Decision::kRun);
  quarantine.RecordFailure(0, 10, "boom");
  EXPECT_TRUE(quarantine.IsQuarantined(0));
  EXPECT_EQ(quarantine.LastError(0), "boom");
  // retry_at = 10 + 1 + base(4) = 15: skipped until then.
  for (std::size_t s = 11; s < 15; ++s) {
    EXPECT_EQ(quarantine.BeginStep(0, s), PairQuarantine::Decision::kSkip)
        << "sample " << s;
  }
  EXPECT_EQ(quarantine.BeginStep(0, 15),
            PairQuarantine::Decision::kRunAfterReset);
  quarantine.RecordSuccess(0, 15, /*outlier=*/false);
  EXPECT_EQ(quarantine.StateOf(0), PairQuarantine::State::kActive);
  EXPECT_EQ(quarantine.TripCount(), 1u);
  EXPECT_EQ(quarantine.QuarantinedCount(), 0u);
  // The sibling pair never noticed.
  EXPECT_EQ(quarantine.BeginStep(1, 15), PairQuarantine::Decision::kRun);
}

TEST(PairQuarantine, ReadmissionDoesNotRefundTheRetryBudget) {
  PairQuarantine quarantine(1, FastBackoff());
  quarantine.RecordFailure(0, 0, "first");
  EXPECT_EQ(quarantine.BeginStep(0, 5),
            PairQuarantine::Decision::kRunAfterReset);
  quarantine.RecordSuccess(0, 5, false);  // re-admitted
  // The next trip schedules with DelayFor(1) = 8, not base: the budget
  // keeps walking toward retirement across readmissions.
  quarantine.RecordFailure(0, 20, "second");
  EXPECT_EQ(quarantine.BeginStep(0, 28), PairQuarantine::Decision::kSkip);
  EXPECT_EQ(quarantine.BeginStep(0, 29),
            PairQuarantine::Decision::kRunAfterReset);
}

TEST(PairQuarantine, ExhaustedBudgetRetiresForGood) {
  PairQuarantine quarantine(1, FastBackoff());  // budget = 3
  std::size_t sample = 0;
  quarantine.RecordFailure(0, sample, "t0");  // retries -> 1
  for (int round = 0; round < 2; ++round) {
    // Walk to the probation sample and fail it.
    while (quarantine.BeginStep(0, sample) ==
           PairQuarantine::Decision::kSkip) {
      ++sample;
    }
    quarantine.RecordFailure(0, sample, "again");
  }
  EXPECT_TRUE(quarantine.IsQuarantined(0));  // retries = 3, still scheduled
  while (quarantine.BeginStep(0, sample) == PairQuarantine::Decision::kSkip) {
    ++sample;
  }
  quarantine.RecordFailure(0, sample, "final");
  EXPECT_TRUE(quarantine.IsRetired(0));
  EXPECT_EQ(quarantine.TripCount(), 4u);
  // Retired is forever: no probation, ever again.
  for (std::size_t s = sample; s < sample + 500; s += 50) {
    EXPECT_EQ(quarantine.BeginStep(0, s), PairQuarantine::Decision::kSkip);
  }
}

TEST(PairQuarantine, ProbationBoundaryIsExactAndRefailureRearms) {
  PairQuarantine quarantine(1, FastBackoff());
  quarantine.RecordFailure(0, 10, "boom");  // retry_at = 10 + 1 + 4 = 15
  EXPECT_EQ(quarantine.BeginStep(0, 14), PairQuarantine::Decision::kSkip);
  EXPECT_EQ(quarantine.BeginStep(0, 15),
            PairQuarantine::Decision::kRunAfterReset);
  // Re-asking at the same sample (checkpoint replay) grants probation
  // again rather than tripping or skipping.
  EXPECT_EQ(quarantine.BeginStep(0, 15),
            PairQuarantine::Decision::kRunAfterReset);
  // Failing the probation sample itself re-quarantines immediately, and
  // the new window is anchored at the probation sample with the *next*
  // delay: 15 + 1 + DelayFor(1) = 24.
  quarantine.RecordFailure(0, 15, "refail");
  EXPECT_TRUE(quarantine.IsQuarantined(0));
  EXPECT_EQ(quarantine.BeginStep(0, 23), PairQuarantine::Decision::kSkip);
  EXPECT_EQ(quarantine.BeginStep(0, 24),
            PairQuarantine::Decision::kRunAfterReset);
}

TEST(PairQuarantine, LateProbationLongAfterExpiryStillReadmits) {
  // A feed outage can park the whole monitor past retry_at; the first
  // sample that arrives afterwards must still get the one probation
  // attempt instead of skipping forever.
  PairQuarantine quarantine(1, FastBackoff());
  quarantine.RecordFailure(0, 0, "boom");  // retry_at = 5
  EXPECT_EQ(quarantine.BeginStep(0, 500),
            PairQuarantine::Decision::kRunAfterReset);
  quarantine.RecordSuccess(0, 500, /*outlier=*/false);
  EXPECT_EQ(quarantine.StateOf(0), PairQuarantine::State::kActive);
}

TEST(PairQuarantine, ZeroRetryBudgetRetiresOnFirstTrip) {
  QuarantineConfig config = FastBackoff();
  config.backoff.budget = 0;
  PairQuarantine quarantine(1, config);
  quarantine.RecordFailure(0, 3, "boom");
  EXPECT_TRUE(quarantine.IsRetired(0));
  EXPECT_EQ(quarantine.TripCount(), 1u);
  EXPECT_EQ(quarantine.BeginStep(0, 1000), PairQuarantine::Decision::kSkip);
}

TEST(PairQuarantine, OutlierBurstBreakerNeedsConsecutiveOutliers) {
  QuarantineConfig config = FastBackoff();
  config.outlier_burst = 3;
  PairQuarantine quarantine(1, config);
  // Interrupted runs never trip.
  quarantine.RecordSuccess(0, 0, true);
  quarantine.RecordSuccess(0, 1, true);
  quarantine.RecordSuccess(0, 2, false);
  quarantine.RecordSuccess(0, 3, true);
  quarantine.RecordSuccess(0, 4, true);
  EXPECT_EQ(quarantine.StateOf(0), PairQuarantine::State::kActive);
  // The third consecutive outlier trips.
  quarantine.RecordSuccess(0, 5, true);
  EXPECT_TRUE(quarantine.IsQuarantined(0));
  EXPECT_NE(quarantine.LastError(0).find("outlier burst"), std::string::npos);
  EXPECT_TRUE(quarantine.AnyTripped());
}

TEST(PairQuarantine, DisabledIsPassive) {
  QuarantineConfig config;
  config.enabled = false;
  PairQuarantine quarantine(3, config);
  EXPECT_FALSE(quarantine.Enabled());
  quarantine.RecordFailure(0, 0, "ignored");
  EXPECT_EQ(quarantine.BeginStep(0, 1), PairQuarantine::Decision::kRun);
  EXPECT_EQ(quarantine.TripCount(), 0u);
}

// --- Monitor integration -------------------------------------------------

// Same small system as test_monitor.cpp: 2 machines x 2 metrics driven by
// one load signal; measurement 3 optionally decouples in the second half.
MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed,
                             bool break_m3_correlation_late = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 50.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3_correlation_late && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::clamp(walk, 20.0, 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  return config;
}

TEST(MonitorQuarantine, FaultyPairsAreContainedBitwise) {
  const MeasurementFrame history = SystemFrame(1600, 3);
  const MeasurementFrame holdout = SystemFrame(600, 21);
  const MeasurementFrame test = SystemFrame(120, 5, true);

  SystemMonitor baseline(history, MeasurementGraph::FullMesh(4),
                         SmallConfig());
  baseline.CalibrateThresholds(holdout, 0.05);
  const auto clean_snaps = baseline.Run(test);

  // Two of the six pairs turn permanently faulty mid-run.
  EngineFaultPlan plan;
  plan.pair_faults.push_back({1, 10, 100000});
  plan.pair_faults.push_back({4, 25, 100000});
  SystemMonitor faulty(history, MeasurementGraph::FullMesh(4), SmallConfig());
  faulty.CalibrateThresholds(holdout, 0.05);
  faulty.SetFaultPlanForTest(&plan);
  const auto fault_snaps = faulty.Run(test);

  ASSERT_EQ(fault_snaps.size(), clean_snaps.size());
  for (std::size_t t = 0; t < clean_snaps.size(); ++t) {
    SCOPED_TRACE("sample " + std::to_string(t));
    for (std::size_t i = 0; i < 6; ++i) {
      if (i == 1 || i == 4) continue;
      SCOPED_TRACE("pair " + std::to_string(i));
      // The containment property: a healthy pair's score is the same
      // double, bit for bit, whether or not its neighbors are on fire.
      difftest::ExpectScoreEqual(clean_snaps[t].pair_scores[i],
                                 fault_snaps[t].pair_scores[i],
                                 "healthy pair score");
    }
    // The faulty pairs are disengaged from their first fault on (every
    // probation step re-throws, so they never score again).
    if (t >= 10) EXPECT_FALSE(fault_snaps[t].pair_scores[1].has_value());
    if (t >= 25) EXPECT_FALSE(fault_snaps[t].pair_scores[4].has_value());
    if (t >= 25) EXPECT_GE(fault_snaps[t].quarantined_pairs, 2u);
  }

  // Alarm containment: the faulty run's log is exactly the baseline log
  // minus the faulted pairs' post-fault records.
  std::vector<AlarmRecord> expected;
  for (const AlarmRecord& r : baseline.Alarms().Records()) {
    const std::size_t start = r.pair_index == 1 ? 10 : 25;
    if ((r.pair_index == 1 || r.pair_index == 4) &&
        static_cast<std::size_t>(r.time / kPaperSamplePeriod) >= start) {
      continue;
    }
    expected.push_back(r);
  }
  const auto& actual = faulty.Alarms().Records();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    SCOPED_TRACE("alarm " + std::to_string(i));
    EXPECT_EQ(actual[i].time, expected[i].time);
    EXPECT_EQ(actual[i].pair_index, expected[i].pair_index);
    EXPECT_EQ(actual[i].fitness, expected[i].fitness);
    EXPECT_EQ(actual[i].outlier, expected[i].outlier);
  }

  // Both faulted pairs burned through their retry budgets or are still
  // cycling; neither is active, and nothing else ever tripped.
  EXPECT_NE(faulty.Quarantine().StateOf(1), PairQuarantine::State::kActive);
  EXPECT_NE(faulty.Quarantine().StateOf(4), PairQuarantine::State::kActive);
  for (std::size_t i : {0u, 2u, 3u, 5u}) {
    EXPECT_EQ(faulty.Quarantine().StateOf(i),
              PairQuarantine::State::kActive);
  }
}

TEST(MonitorQuarantine, TransientFaultBacksOffThenReadmits) {
  const MeasurementFrame history = SystemFrame(1200, 7);
  const MeasurementFrame test = SystemFrame(40, 9);

  EngineFaultPlan plan;
  plan.pair_faults.push_back({0, 5, 6});  // throws exactly once, sample 5
  MonitorConfig config = SmallConfig();
  config.quarantine.backoff.base = 4;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  monitor.SetFaultPlanForTest(&plan);
  const auto snaps = monitor.Run(test);

  // Trip at 5, skipped through the backoff window, probation at
  // retry_at = 5 + 1 + 4 = 10 (disengaged: fresh sequence), scoring
  // again from 11.
  for (std::size_t t = 5; t <= 10; ++t) {
    EXPECT_FALSE(snaps[t].pair_scores[0].has_value()) << "sample " << t;
    EXPECT_EQ(snaps[t].quarantined_pairs, t == 10 ? 0u : 1u)
        << "sample " << t;
  }
  for (std::size_t t = 11; t < snaps.size(); ++t) {
    EXPECT_TRUE(snaps[t].pair_scores[0].has_value()) << "sample " << t;
    EXPECT_EQ(snaps[t].quarantined_pairs, 0u);
  }
  EXPECT_EQ(monitor.Quarantine().StateOf(0), PairQuarantine::State::kActive);
  EXPECT_EQ(monitor.Quarantine().TripCount(), 1u);
  // The other five pairs never skipped a beat.
  for (std::size_t i = 1; i < 6; ++i) {
    for (std::size_t t = 1; t < snaps.size(); ++t) {
      EXPECT_TRUE(snaps[t].pair_scores[i].has_value())
          << "pair " << i << " sample " << t;
    }
  }
}

TEST(MonitorQuarantine, StepAndRunAgreeUnderFaults) {
  // The differential contract extends to degraded mode: trips, backoff
  // skips, probations and re-trips land on the same samples bitwise in
  // the sample-major and pair-major paths, across batch boundaries.
  const MeasurementFrame history = SystemFrame(1200, 11);
  const MeasurementFrame holdout = SystemFrame(500, 13);
  const MeasurementFrame test = SystemFrame(90, 15, true);

  EngineFaultPlan plan;
  plan.pair_faults.push_back({0, 5, 6});    // transient: one throw
  plan.pair_faults.push_back({2, 3, 500});  // permanent from sample 3
  plan.pair_faults.push_back({5, 0, 1});    // throws on the very first step

  MonitorConfig serial_config = SmallConfig();
  serial_config.threads = 1;
  serial_config.quarantine.backoff.base = 2;
  SystemMonitor reference(history, MeasurementGraph::FullMesh(4),
                          serial_config);
  reference.CalibrateThresholds(holdout, 0.05);
  reference.SetFaultPlanForTest(&plan);
  const auto reference_snaps = difftest::RunSerial(reference, test);

  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t batch : {0u, 7u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      MonitorConfig batched_config = serial_config;
      batched_config.threads = threads;
      batched_config.batch_samples = batch;
      SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                            batched_config);
      monitor.CalibrateThresholds(holdout, 0.05);
      monitor.SetFaultPlanForTest(&plan);
      const auto snaps = monitor.Run(test);
      difftest::ExpectStreamsEqual(reference_snaps, snaps);
      difftest::ExpectAlarmLogsEqual(reference.Alarms(), monitor.Alarms());
      difftest::ExpectAggregatesEqual(reference, monitor);
      EXPECT_EQ(difftest::CheckpointString(monitor),
                difftest::CheckpointString(reference));
    }
  }
}

TEST(MonitorQuarantine, OutlierBurstTripsOnPoisonedFeed) {
  const MeasurementFrame history = SystemFrame(1200, 17);
  MonitorConfig config = SmallConfig();
  config.quarantine.outlier_burst = 4;
  config.quarantine.backoff.base = 1000;  // stay quarantined for the test
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);

  // Measurement 3 starts spewing garbage far outside any learned grid:
  // every pair touching it sees a run of consecutive outliers.
  EngineFaultPlan plan;
  plan.poison_faults.push_back({3, 10, 30, 1.0e9});
  const MeasurementFrame test = SystemFrame(30, 19);
  std::vector<double> values(4);
  std::vector<SystemSnapshot> snaps;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    for (std::size_t a = 0; a < 4; ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    plan.ApplyToRow(values, t);
    snaps.push_back(monitor.Step(values, test.TimeAt(t)));
  }

  // Pairs (0,3), (1,3), (2,3) are pair indices 2, 4, 5 in FullMesh(4).
  for (std::size_t i : {2u, 4u, 5u}) {
    EXPECT_TRUE(monitor.Quarantine().IsQuarantined(i)) << "pair " << i;
    EXPECT_NE(monitor.Quarantine().LastError(i).find("outlier burst"),
              std::string::npos);
  }
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(monitor.Quarantine().StateOf(i),
              PairQuarantine::State::kActive);
  }
  EXPECT_GE(snaps.back().quarantined_pairs, 3u);
}

TEST(MonitorQuarantine, DisabledQuarantineLetsFaultsPropagate) {
  const MeasurementFrame history = SystemFrame(900, 23);
  MonitorConfig config = SmallConfig();
  config.quarantine.enabled = false;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  EngineFaultPlan plan;
  plan.pair_faults.push_back({3, 0, 100});
  monitor.SetFaultPlanForTest(&plan);
  const std::vector<double> v = {60.0, 57.0, 170.0, 83.0};
  EXPECT_THROW(monitor.Step(v, 0), InjectedFault);
  EXPECT_THROW(monitor.Run(SystemFrame(10, 25)), InjectedFault);
}

}  // namespace
}  // namespace pmcorr
