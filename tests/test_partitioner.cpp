// Tests for the MAFIA-style adaptive dimension partitioner (Section 4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "grid/partitioner.h"

namespace pmcorr {
namespace {

std::vector<double> UniformData(std::size_t n, double lo, double hi,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.Uniform(lo, hi);
  return xs;
}

std::vector<double> BimodalData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = i % 2 == 0 ? rng.Normal(10.0, 0.5) : rng.Normal(50.0, 2.0);
  }
  return xs;
}

TEST(Partitioner, CoversAllDataPoints) {
  const auto xs = BimodalData(2000, 5);
  const IntervalList list = PartitionDimension(xs, {});
  for (double x : xs) {
    EXPECT_NE(list.IndexOf(x), IntervalList::npos) << "x=" << x;
  }
}

TEST(Partitioner, UniformDataFallsBackToEqualWidth) {
  PartitionerConfig config;
  config.uniform_intervals = 7;
  const auto xs = UniformData(20000, 0.0, 100.0, 3);
  const IntervalList list = PartitionDimension(xs, config);
  EXPECT_EQ(list.Size(), 7u);
  // Equal widths.
  const double w = list.At(0).Width();
  for (std::size_t i = 1; i < list.Size(); ++i) {
    EXPECT_NEAR(list.At(i).Width(), w, 1e-9);
  }
}

TEST(Partitioner, DenseRegionsGetMoreIntervals) {
  // A sharp dense mode plus a broad sparse tail: intervals covering the
  // dense mode should be much narrower than tail intervals.
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Normal(10.0, 0.4));
  for (int i = 0; i < 400; ++i) xs.push_back(rng.Uniform(20.0, 100.0));
  const IntervalList list = PartitionDimension(xs, {});
  double min_width = 1e300, max_width = 0.0;
  for (std::size_t i = 0; i < list.Size(); ++i) {
    min_width = std::min(min_width, list.At(i).Width());
    max_width = std::max(max_width, list.At(i).Width());
  }
  EXPECT_LT(min_width * 4.0, max_width);
}

TEST(Partitioner, RespectsMaxIntervals) {
  PartitionerConfig config;
  config.max_intervals = 6;
  config.merge_similarity = 0.01;  // merge almost nothing naturally
  const auto xs = BimodalData(3000, 13);
  const IntervalList list = PartitionDimension(xs, config);
  EXPECT_LE(list.Size(), 6u);
  EXPECT_GE(list.Size(), config.min_intervals);
}

TEST(Partitioner, RespectsMinIntervals) {
  PartitionerConfig config;
  config.min_intervals = 4;
  config.merge_similarity = 10.0;  // everything looks similar -> 1 segment
  config.uniformity_threshold = 0.0;  // disable uniform fallback
  const auto xs = UniformData(1000, 0.0, 10.0, 17);
  const IntervalList list = PartitionDimension(xs, config);
  EXPECT_GE(list.Size(), 4u);
}

TEST(Partitioner, ConstantDimensionYieldsPaddedBand) {
  const std::vector<double> xs(100, 42.0);
  const IntervalList list = PartitionDimension(xs, {});
  EXPECT_NE(list.IndexOf(42.0), IntervalList::npos);
  EXPECT_GT(list.Hi(), 42.0);
  EXPECT_LT(list.Lo(), 42.0);
}

TEST(Partitioner, MaxValueStrictlyInsideGrid) {
  // The paper's cells are half-open; the padded upper bound must keep the
  // maximum observed value inside.
  const auto xs = BimodalData(500, 19);
  const IntervalList list = PartitionDimension(xs, {});
  const double mx = *std::max_element(xs.begin(), xs.end());
  EXPECT_NE(list.IndexOf(mx), IntervalList::npos);
  EXPECT_LT(mx, list.Hi());
}

TEST(Partitioner, DeterministicForSameInput) {
  const auto xs = BimodalData(1500, 23);
  const IntervalList a = PartitionDimension(xs, {});
  const IntervalList b = PartitionDimension(xs, {});
  ASSERT_EQ(a.Size(), b.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.At(i), b.At(i));
  }
}

TEST(Partitioner, SingleElementInput) {
  const std::vector<double> xs = {3.0};
  const IntervalList list = PartitionDimension(xs, {});
  EXPECT_NE(list.IndexOf(3.0), IntervalList::npos);
}

TEST(Partitioner, TwoClustersSeparatedBySparseGap) {
  // The gap between modes should not fragment into many intervals: the
  // sparse units in between merge.
  const auto xs = BimodalData(4000, 29);
  PartitionerConfig config;
  config.units = 80;
  const IntervalList list = PartitionDimension(xs, config);
  EXPECT_LE(list.Size(), config.max_intervals);
  EXPECT_GE(list.Size(), 3u);  // two modes + gap structure
}

bool SameBits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

TEST(ScanValues, MatchesIsfiniteAndMinmaxElement) {
  // The fused SSE2 pass must agree with the scalar oracle — per-element
  // std::isfinite plus std::minmax_element — on sizes that hit the
  // vector path, its tail loop, and the short scalar fallback.
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 64u, 257u}) {
    const auto xs = UniformData(n, -5.0, 5.0, 1000 + n);
    const ValueScan scan = ScanValues(xs);
    const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    EXPECT_TRUE(scan.all_finite) << "n=" << n;
    EXPECT_TRUE(SameBits(scan.min, *mn)) << "n=" << n;
    EXPECT_TRUE(SameBits(scan.max, *mx)) << "n=" << n;
  }
}

TEST(ScanValues, FlagsNonFiniteAnywhere) {
  const double bads[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  for (double bad : bads) {
    for (std::size_t pos : {0u, 1u, 5u, 30u, 31u}) {
      auto xs = UniformData(32, -1.0, 1.0, 77);
      xs[pos] = bad;
      EXPECT_FALSE(ScanValues(xs).all_finite) << bad << " at " << pos;
    }
  }
  EXPECT_TRUE(ScanValues(UniformData(32, -1.0, 1.0, 77)).all_finite);
}

TEST(ScanValues, SignedZeroExtremaMatchMinmaxElement) {
  // minmax_element keeps the FIRST minimum and the LAST maximum; when an
  // extremum is zero the two bit patterns of ±0 compare equal, so the
  // fused scan's fixup must reproduce the oracle's choice exactly.
  const std::vector<std::vector<double>> cases = {
      {0.0, -0.0, 0.0, -0.0, 0.0, -0.0},
      {-0.0, 0.0, -0.0, 0.0, -0.0, 0.0},
      {1.0, -0.0, 2.0, 0.0, 3.0, 4.0},  // zero is the minimum
      {-3.0, 0.0, -2.0, -0.0, -1.0},    // zero is the maximum
      {-0.0, 0.0},
      {0.0},
  };
  for (const auto& xs : cases) {
    const ValueScan scan = ScanValues(xs);
    const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    EXPECT_TRUE(SameBits(scan.min, *mn));
    EXPECT_TRUE(SameBits(scan.max, *mx));
  }
}

TEST(Partitioner, BoundsOverloadMatchesScanningOverload) {
  // Learn's fused path hands the ScanValues extrema straight to the
  // partitioner; the result must be bitwise the intervals the scanning
  // overload computes itself.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto xs = BimodalData(1200, seed);
    const ValueScan scan = ScanValues(xs);
    const IntervalList a = PartitionDimension(xs, {});
    const IntervalList b = PartitionDimension(xs, {}, scan.min, scan.max);
    ASSERT_EQ(a.Size(), b.Size());
    for (std::size_t i = 0; i < a.Size(); ++i) {
      EXPECT_TRUE(SameBits(a.At(i).lo, b.At(i).lo));
      EXPECT_TRUE(SameBits(a.At(i).hi, b.At(i).hi));
    }
  }
}

}  // namespace
}  // namespace pmcorr
