// Tests for fault injection.
#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/faults.h"

namespace pmcorr {
namespace {

FaultEvent Event(FaultType type, double magnitude = 1.0,
                 std::optional<MetricKind> filter = std::nullopt) {
  FaultEvent e;
  e.machine = MachineId(3);
  e.start = 1000;
  e.end = 2000;
  e.type = type;
  e.magnitude = magnitude;
  e.metric_filter = filter;
  return e;
}

TEST(FaultEvent, ActiveWindowIsHalfOpen) {
  const FaultEvent e = Event(FaultType::kLevelShift);
  EXPECT_FALSE(e.Active(999));
  EXPECT_TRUE(e.Active(1000));
  EXPECT_TRUE(e.Active(1999));
  EXPECT_FALSE(e.Active(2000));
}

TEST(FaultEvent, AffectsFiltersMachineAndMetric) {
  const FaultEvent e =
      Event(FaultType::kLevelShift, 1.0, MetricKind::kCpuUtilization);
  EXPECT_TRUE(e.Affects(MachineId(3), MetricKind::kCpuUtilization, 1500));
  EXPECT_FALSE(e.Affects(MachineId(4), MetricKind::kCpuUtilization, 1500));
  EXPECT_FALSE(e.Affects(MachineId(3), MetricKind::kFreeMemory, 1500));
  EXPECT_FALSE(e.Affects(MachineId(3), MetricKind::kCpuUtilization, 2500));
}

TEST(FaultInjector, NoEventsPassesThrough) {
  FaultInjector injector({}, 1);
  double noise = 1.0;
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(0), MetricKind::kCpuUtilization,
                                  0, 1500, 42.0, 10.0, noise),
                   42.0);
  EXPECT_DOUBLE_EQ(noise, 1.0);
}

TEST(FaultInjector, AnomalousJumpAddsScaledOffset) {
  FaultInjector injector({Event(FaultType::kAnomalousJump, 2.0)}, 1);
  double noise = 1.0;
  const double out = injector.Apply(MachineId(3),
                                    MetricKind::kCpuUtilization, 0, 1500,
                                    40.0, 10.0, noise);
  EXPECT_DOUBLE_EQ(out, 60.0);  // 40 + 2.0 * 10
  // Outside the window: untouched.
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(3),
                                  MetricKind::kCpuUtilization, 0, 2500,
                                  40.0, 10.0, noise),
                   40.0);
}

TEST(FaultInjector, LevelShiftMultiplies) {
  FaultInjector injector({Event(FaultType::kLevelShift, 0.5)}, 1);
  double noise = 1.0;
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(3),
                                  MetricKind::kCpuUtilization, 0, 1500,
                                  40.0, 10.0, noise),
                   60.0);
}

TEST(FaultInjector, StuckValueFreezesAtEntry) {
  FaultInjector injector({Event(FaultType::kStuckValue)}, 1);
  double noise = 1.0;
  const double first = injector.Apply(MachineId(3),
                                      MetricKind::kCpuUtilization, 0, 1500,
                                      40.0, 10.0, noise);
  const double second = injector.Apply(MachineId(3),
                                       MetricKind::kCpuUtilization, 0, 1600,
                                       55.0, 10.0, noise);
  EXPECT_DOUBLE_EQ(first, 40.0);
  EXPECT_DOUBLE_EQ(second, 40.0);
  // After the window it unfreezes.
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(3),
                                  MetricKind::kCpuUtilization, 0, 2500,
                                  70.0, 10.0, noise),
                   70.0);
}

TEST(FaultInjector, NoiseStormInflatesSigmaOnly) {
  FaultInjector injector({Event(FaultType::kNoiseStorm, 10.0)}, 1);
  double noise = 1.0;
  const double out = injector.Apply(MachineId(3),
                                    MetricKind::kCpuUtilization, 0, 1500,
                                    40.0, 10.0, noise);
  EXPECT_DOUBLE_EQ(out, 40.0);
  EXPECT_DOUBLE_EQ(noise, 10.0);
}

TEST(FaultInjector, CorrelationBreakDecouplesButStaysBounded) {
  FaultInjector injector({Event(FaultType::kCorrelationBreak)}, 7);
  double noise = 1.0;
  double prev = 40.0;
  bool moved = false;
  for (TimePoint tp = 1000; tp < 2000; tp += 10) {
    const double out = injector.Apply(MachineId(3),
                                      MetricKind::kCpuUtilization, 0, tp,
                                      40.0, 10.0, noise);
    EXPECT_GE(out, 0.0);
    EXPECT_LE(out, 40.0 + 2.0 * 10.0 + 1e-9);
    if (std::fabs(out - prev) > 1e-9 && tp > 1000) moved = true;
    prev = out;
  }
  EXPECT_TRUE(moved);  // it wanders instead of tracking the clean value
}

TEST(FaultInjector, IndependentStatePerMeasurement) {
  FaultInjector injector({Event(FaultType::kStuckValue)}, 1);
  double noise = 1.0;
  const double m0 = injector.Apply(MachineId(3),
                                   MetricKind::kCpuUtilization, 0, 1500,
                                   10.0, 1.0, noise);
  const double m1 = injector.Apply(MachineId(3),
                                   MetricKind::kCpuUtilization, 1, 1500,
                                   20.0, 1.0, noise);
  EXPECT_DOUBLE_EQ(m0, 10.0);
  EXPECT_DOUBLE_EQ(m1, 20.0);
}

TEST(FaultInjector, AnyActiveQuery) {
  FaultInjector injector(
      {Event(FaultType::kLevelShift, 1.0, MetricKind::kCpuUtilization)}, 1);
  EXPECT_TRUE(injector.AnyActive(MachineId(3),
                                 MetricKind::kCpuUtilization, 1500));
  EXPECT_FALSE(injector.AnyActive(MachineId(3), MetricKind::kFreeMemory,
                                  1500));
  EXPECT_FALSE(injector.AnyActive(MachineId(3),
                                  MetricKind::kCpuUtilization, 2500));
}

TEST(FaultInjector, DropoutEmitsNan) {
  FaultInjector injector({Event(FaultType::kDropout)}, 1);
  double noise = 1.0;
  EXPECT_TRUE(std::isnan(injector.Apply(MachineId(3),
                                        MetricKind::kCpuUtilization, 0,
                                        1500, 40.0, 10.0, noise)));
  // Outside the window the collector reports again.
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(3),
                                  MetricKind::kCpuUtilization, 0, 2500,
                                  40.0, 10.0, noise),
                   40.0);
}

TEST(FaultInjector, FlashCrowdLoadFactorIsTrapezoidal) {
  // [1000, 2000) at magnitude 0.2: ramp over the first and last quarter
  // (250 s), plateau at 1.2x in between.
  FaultInjector injector({Event(FaultType::kFlashCrowd, 0.2)}, 1);
  const auto factor = [&](TimePoint tp) {
    return injector.LoadFactor(MachineId(3), MetricKind::kCpuUtilization, tp);
  };
  EXPECT_DOUBLE_EQ(factor(999), 1.0);    // before
  EXPECT_DOUBLE_EQ(factor(1000), 1.0);   // ramp starts from zero
  EXPECT_DOUBLE_EQ(factor(1125), 1.1);   // halfway up
  EXPECT_DOUBLE_EQ(factor(1250), 1.2);   // plateau edge
  EXPECT_DOUBLE_EQ(factor(1500), 1.2);   // plateau
  EXPECT_DOUBLE_EQ(factor(1875), 1.1);   // halfway down
  EXPECT_DOUBLE_EQ(factor(2000), 1.0);   // half-open end
  // Other machines ride the same surge only if targeted.
  EXPECT_DOUBLE_EQ(
      injector.LoadFactor(MachineId(4), MetricKind::kCpuUtilization, 1500),
      1.0);
}

TEST(FaultInjector, RegimeShiftLoadFactorIsStep) {
  // A deploy flips the operating curve instantly; no ramp.
  FaultInjector injector({Event(FaultType::kRegimeShift, 0.9)}, 1);
  const auto factor = [&](TimePoint tp) {
    return injector.LoadFactor(MachineId(3), MetricKind::kCpuUtilization, tp);
  };
  EXPECT_DOUBLE_EQ(factor(999), 1.0);
  EXPECT_DOUBLE_EQ(factor(1000), 1.9);
  EXPECT_DOUBLE_EQ(factor(1999), 1.9);
  EXPECT_DOUBLE_EQ(factor(2000), 1.0);
}

TEST(FaultInjector, OverlappingLoadEventsCompound) {
  FaultInjector injector({Event(FaultType::kRegimeShift, 0.5),
                          Event(FaultType::kRegimeShift, 0.2)},
                         1);
  EXPECT_DOUBLE_EQ(
      injector.LoadFactor(MachineId(3), MetricKind::kCpuUtilization, 1500),
      1.5 * 1.2);
}

TEST(FaultInjector, LoadShapedEventsPassThroughApply) {
  // Flash crowds act upstream (LoadFactor scales the workload before the
  // response curves); Apply must not double-apply them.
  FaultInjector injector({Event(FaultType::kFlashCrowd, 0.2)}, 1);
  double noise = 1.0;
  EXPECT_DOUBLE_EQ(injector.Apply(MachineId(3), MetricKind::kCpuUtilization,
                                  0, 1500, 42.0, 10.0, noise),
                   42.0);
  EXPECT_DOUBLE_EQ(noise, 1.0);
}

TEST(FaultInjector, ValueShapedEventsLeaveLoadFactorAlone) {
  FaultInjector injector({Event(FaultType::kLevelShift, 1.5)}, 1);
  EXPECT_DOUBLE_EQ(
      injector.LoadFactor(MachineId(3), MetricKind::kCpuUtilization, 1500),
      1.0);
}

TEST(FaultTypeName, AllNamed) {
  EXPECT_EQ(FaultTypeName(FaultType::kCorrelationBreak), "correlation-break");
  EXPECT_EQ(FaultTypeName(FaultType::kAnomalousJump), "anomalous-jump");
  EXPECT_EQ(FaultTypeName(FaultType::kLevelShift), "level-shift");
  EXPECT_EQ(FaultTypeName(FaultType::kStuckValue), "stuck-value");
  EXPECT_EQ(FaultTypeName(FaultType::kNoiseStorm), "noise-storm");
  EXPECT_EQ(FaultTypeName(FaultType::kDropout), "dropout");
}

}  // namespace
}  // namespace pmcorr
