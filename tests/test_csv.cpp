// Tests for CSV trace round-tripping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "io/csv.h"
#include "telemetry/generator.h"

namespace pmcorr {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

MeasurementFrame SmallFrame() {
  MeasurementFrame frame(ToTimePoint({2008, 5, 29}), kPaperSamplePeriod);
  MeasurementInfo a;
  a.machine = MachineId(0);
  a.kind = MetricKind::kCpuUtilization;
  a.name = "CpuUtilization@host-0";
  frame.Add(a, TimeSeries(frame.StartTime(), frame.Period(),
                          {1.25, 2.5, 3.0000001, 1e-17}));
  MeasurementInfo b;
  b.machine = MachineId(7);
  b.kind = MetricKind::kPortOutOctetsRate;
  b.name = "IfOutOctetsRate_PORT@sw-7";
  frame.Add(b, TimeSeries(frame.StartTime(), frame.Period(),
                          {1e6, 2e6, 3e6, 123456.789}));
  return frame;
}

TEST_F(CsvTest, RoundTripIsBitExact) {
  const std::string path = Track(TempPath("pmcorr_roundtrip.csv"));
  const MeasurementFrame original = SmallFrame();
  WriteFrameCsv(original, path);
  const MeasurementFrame loaded = ReadFrameCsv(path);

  ASSERT_EQ(loaded.MeasurementCount(), original.MeasurementCount());
  ASSERT_EQ(loaded.SampleCount(), original.SampleCount());
  EXPECT_EQ(loaded.StartTime(), original.StartTime());
  EXPECT_EQ(loaded.Period(), original.Period());
  for (const auto& info : original.Infos()) {
    const auto& li = loaded.Info(info.id);
    EXPECT_EQ(li.name, info.name);
    EXPECT_EQ(li.machine, info.machine);
    EXPECT_EQ(li.kind, info.kind);
    for (std::size_t t = 0; t < original.SampleCount(); ++t) {
      EXPECT_DOUBLE_EQ(loaded.Value(info.id, t), original.Value(info.id, t));
    }
  }
}

TEST_F(CsvTest, GeneratedTraceRoundTrips) {
  TraceSpec spec;
  TopologyConfig topo;
  topo.machine_count = 3;
  spec.topology = MakeTopology("X", 5, topo);
  spec.start = ToTimePoint({2008, 5, 29});
  spec.samples = 48;
  spec.seed = 5;
  const MeasurementFrame original = GenerateTrace(spec);

  const std::string path = Track(TempPath("pmcorr_trace.csv"));
  WriteFrameCsv(original, path);
  const MeasurementFrame loaded = ReadFrameCsv(path);
  ASSERT_EQ(loaded.MeasurementCount(), original.MeasurementCount());
  for (std::size_t t = 0; t < original.SampleCount(); ++t) {
    EXPECT_DOUBLE_EQ(loaded.Value(MeasurementId(0), t),
                     original.Value(MeasurementId(0), t));
  }
}

TEST_F(CsvTest, NanValuesRoundTrip) {
  MeasurementFrame frame(0, kPaperSamplePeriod);
  MeasurementInfo info;
  info.machine = MachineId(0);
  info.kind = MetricKind::kCpuUtilization;
  info.name = "gappy";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  frame.Add(info, TimeSeries(0, kPaperSamplePeriod, {1.0, nan, 3.0}));

  const std::string path = Track(TempPath("pmcorr_nan.csv"));
  WriteFrameCsv(frame, path);
  const MeasurementFrame loaded = ReadFrameCsv(path);
  ASSERT_EQ(loaded.SampleCount(), 3u);
  EXPECT_DOUBLE_EQ(loaded.Value(MeasurementId(0), 0), 1.0);
  EXPECT_TRUE(std::isnan(loaded.Value(MeasurementId(0), 1)));
  EXPECT_DOUBLE_EQ(loaded.Value(MeasurementId(0), 2), 3.0);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(ReadFrameCsv("/nonexistent/nowhere.csv"), std::runtime_error);
}

TEST_F(CsvTest, MalformedHeaderThrows) {
  const std::string path = Track(TempPath("pmcorr_bad_header.csv"));
  std::ofstream(path) << "time,x\n0,1\n";
  EXPECT_THROW(ReadFrameCsv(path), std::runtime_error);
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  const std::string path = Track(TempPath("pmcorr_bad_row.csv"));
  std::ofstream(path) << "# pmcorr-trace v1 start=0 period=360\n"
                      << "# measurement,0,CpuUtilization,cpu@a\n"
                      << "time,cpu@a\n"
                      << "0,1.0,2.0\n";
  EXPECT_THROW(ReadFrameCsv(path), std::runtime_error);
}

TEST_F(CsvTest, BadValueThrows) {
  const std::string path = Track(TempPath("pmcorr_bad_value.csv"));
  std::ofstream(path) << "# pmcorr-trace v1 start=0 period=360\n"
                      << "# measurement,0,CpuUtilization,cpu@a\n"
                      << "time,cpu@a\n"
                      << "0,oops\n";
  EXPECT_THROW(ReadFrameCsv(path), std::runtime_error);
}

}  // namespace
}  // namespace pmcorr
