// End-to-end integration tests: scenario generation -> training ->
// online monitoring -> detection & localization, mirroring the paper's
// experiment pipeline at a reduced scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "engine/alarm.h"
#include "engine/localizer.h"
#include "engine/monitor.h"
#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

namespace pmcorr {
namespace {

ScenarioConfig SmallScenario() {
  ScenarioConfig config;
  config.machine_count = 10;
  config.trace_days = 17;  // May 29 .. June 14
  return config;
}

MonitorConfig EngineConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  return config;
}

// Shared fixture: generate the Group A scenario once per suite.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new PaperScenario(MakeGroupScenario('A', SmallScenario()));
    frame_ = new MeasurementFrame(GenerateTrace(scenario_->spec));
  }
  static void TearDownTestSuite() {
    delete frame_;
    delete scenario_;
    frame_ = nullptr;
    scenario_ = nullptr;
  }

  static PaperScenario* scenario_;
  static MeasurementFrame* frame_;
};

PaperScenario* IntegrationTest::scenario_ = nullptr;
MeasurementFrame* IntegrationTest::frame_ = nullptr;

TEST_F(IntegrationTest, FocusPairDetectsTheInjectedProblem) {
  // Train the focus-pair model on clean history (May 29 - June 12) and
  // run it over the June 13 test day: the fitness must spike downward
  // inside the ground-truth window (Figure 12's shape).
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train =
      frame_->SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test = frame_->SliceByTime(june13, june13 + kDay);

  const MeasurementId x = *frame_->FindByName(scenario_->focus_x);
  const MeasurementId y = *frame_->FindByName(scenario_->focus_y);
  ModelConfig config = EngineConfig().model;
  PairModel model = PairModel::Learn(train.Series(x).Values(),
                                     train.Series(y).Values(), config);

  std::vector<std::optional<double>> scores(test.SampleCount());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
    if (out.has_score) scores[t] = out.fitness;
  }

  const auto windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(scores), june13,
      kPaperSamplePeriod, 0.55);
  EXPECT_TRUE(AnyWindowOverlaps(windows, scenario_->problem_start,
                                scenario_->problem_end))
      << "no low-fitness window overlaps the injected fault";

  // And the quiet early morning stays healthy: mean fitness over
  // 12am-6am (before the morning fault) is high.
  double early_sum = 0.0;
  std::size_t early_n = 0;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    if (test.TimeAt(t) >= june13 + 6 * kHour) break;
    if (scores[t]) {
      early_sum += *scores[t];
      ++early_n;
    }
  }
  ASSERT_GT(early_n, 0u);
  EXPECT_GT(early_sum / static_cast<double>(early_n), 0.75);
}

TEST_F(IntegrationTest, SystemMonitorLocalizesTheFaultyMachine) {
  // Full-engine run over June 13-14 with the long localization fault
  // active: the faulty machine must rank worst (Figure 14's shape).
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train =
      frame_->SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test =
      frame_->SliceByTime(june13, june13 + 2 * kDay);

  const MeasurementGraph graph =
      MeasurementGraph::Neighborhood(train, 2, 1234);
  SystemMonitor monitor(train, graph, EngineConfig());
  monitor.Run(test);

  const auto ranking =
      ScoreMachines(monitor.Infos(), monitor.MeasurementAverages());
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking.front().machine, scenario_->localization_machine)
      << "faulty machine did not rank worst";

  // Healthy machines sit clearly above the faulty one.
  const double faulty_score = ranking.front().score;
  const double median_score = ranking[ranking.size() / 2].score;
  EXPECT_GT(median_score, faulty_score + 0.03);
}

TEST_F(IntegrationTest, AdaptiveBeatsOfflineOnShortTraining) {
  // Figure 13(a)'s headline: with little history, online updating helps.
  // Evaluated on the clean day after the fault (June 14): the comparison
  // is about tracking the evolving normal state, not the anomaly.
  const TimePoint june14 = PaperTestStart() + kDay;
  const MeasurementFrame train =
      frame_->SliceByTime(PaperTraceStart(), PaperTraceStart() + kDay);
  const MeasurementFrame test = frame_->SliceByTime(june14, june14 + kDay);

  const MeasurementId x = *frame_->FindByName(scenario_->focus_x);
  const MeasurementId y = *frame_->FindByName(scenario_->focus_y);

  auto run = [&](bool adaptive) {
    ModelConfig config = EngineConfig().model;
    config.adaptive = adaptive;
    PairModel model = PairModel::Learn(train.Series(x).Values(),
                                       train.Series(y).Values(), config);
    ScoreAverager avg;
    for (std::size_t t = 0; t < test.SampleCount(); ++t) {
      const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
      if (out.has_score) avg.Add(out.fitness);
    }
    return avg.Mean();
  };

  const double adaptive_score = run(true);
  const double offline_score = run(false);
  EXPECT_GE(adaptive_score, offline_score - 0.02)
      << "adaptive should not be materially worse than offline";
}

TEST_F(IntegrationTest, CollectorDropoutDoesNotPoisonTheEngine) {
  // Inject a 6-hour dropout on one machine during the test day: its
  // samples become NaN. The engine must keep scoring everything else,
  // produce no NaN scores, and resume scoring the machine afterwards.
  TraceSpec spec = scenario_->spec;
  const TimePoint june13 = PaperTestStart();
  FaultEvent dropout;
  dropout.machine = MachineId(1);
  dropout.start = june13 + 6 * kHour;
  dropout.end = june13 + 12 * kHour;
  dropout.type = FaultType::kDropout;
  spec.faults.push_back(dropout);
  const MeasurementFrame frame = GenerateTrace(spec);

  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + kDay);
  SystemMonitor monitor(train, MeasurementGraph::Neighborhood(train, 1, 5),
                        EngineConfig());
  const auto snapshots = monitor.Run(test);

  const auto dropped = frame.MeasurementsOn(MachineId(1));
  ASSERT_FALSE(dropped.empty());
  std::size_t scored_during = 0, scored_after = 0;
  for (const auto& snap : snapshots) {
    if (snap.system_score) {
      EXPECT_FALSE(std::isnan(*snap.system_score));
      EXPECT_GT(*snap.system_score, 0.3);  // the gap is not an anomaly
    }
    const auto& qa =
        snap.measurement_scores[static_cast<std::size_t>(dropped[0].value)];
    const TimePoint tp = snap.time;
    if (tp >= dropout.start && tp < dropout.end && qa) ++scored_during;
    if (tp >= dropout.end + 2 * kPaperSamplePeriod && qa) ++scored_after;
  }
  EXPECT_EQ(scored_during, 0u);  // nothing to score while dark
  EXPECT_GT(scored_after, 100u);  // scoring resumes after the gap
}

TEST_F(IntegrationTest, TrainTestSplitRespectsPaperDates) {
  EXPECT_EQ(frame_->StartTime(), ToTimePoint({2008, 5, 29}));
  const MeasurementFrame test = frame_->SliceByTime(
      PaperTestStart(), PaperTestStart() + kDay);
  EXPECT_EQ(test.SampleCount(), static_cast<std::size_t>(kSamplesPerDay));
  EXPECT_EQ(ToCivilDate(test.StartTime()), (CivilDate{2008, 6, 13}));
}

}  // namespace
}  // namespace pmcorr
