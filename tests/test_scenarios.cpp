// Tests for the canned paper scenarios (Section 6 setup).
#include <gtest/gtest.h>

#include "telemetry/generator.h"
#include "telemetry/scenarios.h"

namespace pmcorr {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config;
  config.machine_count = 12;
  config.trace_days = 16;  // covers May 29 .. June 13
  return config;
}

TEST(Scenarios, AllThreeGroupsBuild) {
  const auto scenarios = MakeAllGroupScenarios(SmallConfig());
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].group, "A");
  EXPECT_EQ(scenarios[1].group, "B");
  EXPECT_EQ(scenarios[2].group, "C");
}

TEST(Scenarios, RejectsUnknownGroup) {
  EXPECT_THROW(MakeGroupScenario('X', SmallConfig()), std::invalid_argument);
}

TEST(Scenarios, TraceCoversPaperDates) {
  const PaperScenario s = MakeGroupScenario('A', SmallConfig());
  EXPECT_EQ(s.spec.start, ToTimePoint({2008, 5, 29}));
  EXPECT_EQ(s.spec.period, kPaperSamplePeriod);
  EXPECT_EQ(s.spec.samples, 16u * static_cast<std::size_t>(kSamplesPerDay));
}

TEST(Scenarios, ProblemWindowsMatchFigure12) {
  const TimePoint june13 = PaperTestStart();
  const PaperScenario a = MakeGroupScenario('A', SmallConfig());
  // Group A: morning (6am-12pm quarter).
  EXPECT_GE(a.problem_start, june13 + 6 * kHour);
  EXPECT_LE(a.problem_end, june13 + 12 * kHour);

  // Groups B and C: afternoon onward.
  const PaperScenario b = MakeGroupScenario('B', SmallConfig());
  EXPECT_GE(b.problem_start, june13 + 12 * kHour);
  const PaperScenario c = MakeGroupScenario('C', SmallConfig());
  EXPECT_GE(c.problem_start, june13 + 12 * kHour);
  EXPECT_LE(c.problem_end, june13 + 18 * kHour);
}

TEST(Scenarios, FocusPairNamesResolveInGeneratedFrame) {
  for (char g : {'A', 'B', 'C'}) {
    const PaperScenario s = MakeGroupScenario(g, SmallConfig());
    const MeasurementFrame frame = GenerateTrace(s.spec);
    EXPECT_TRUE(frame.FindByName(s.focus_x).has_value()) << s.focus_x;
    EXPECT_TRUE(frame.FindByName(s.focus_y).has_value()) << s.focus_y;
    // The focus measurements live on the problem machine.
    EXPECT_EQ(frame.Info(*frame.FindByName(s.focus_x)).machine,
              s.problem_machine);
  }
}

TEST(Scenarios, GroupsDiffer) {
  const PaperScenario a = MakeGroupScenario('A', SmallConfig());
  const PaperScenario b = MakeGroupScenario('B', SmallConfig());
  EXPECT_NE(a.spec.seed, b.spec.seed);
  EXPECT_NE(a.spec.workload.base_rate, b.spec.workload.base_rate);
}

TEST(Scenarios, LocalizationFaultTogglable) {
  ScenarioConfig config = SmallConfig();
  config.localization_fault = false;
  const PaperScenario without = MakeGroupScenario('A', config);
  config.localization_fault = true;
  const PaperScenario with = MakeGroupScenario('A', config);
  EXPECT_EQ(with.spec.faults.size(), without.spec.faults.size() + 1);
  EXPECT_NE(with.localization_machine, with.problem_machine);
}

TEST(Scenarios, DeterministicForSameConfig) {
  const PaperScenario a1 = MakeGroupScenario('B', SmallConfig());
  const PaperScenario a2 = MakeGroupScenario('B', SmallConfig());
  EXPECT_EQ(a1.spec.seed, a2.spec.seed);
  EXPECT_EQ(a1.focus_x, a2.focus_x);
  const MeasurementFrame f1 = GenerateTrace(a1.spec);
  const MeasurementFrame f2 = GenerateTrace(a2.spec);
  EXPECT_DOUBLE_EQ(f1.Value(MeasurementId(0), 100),
                   f2.Value(MeasurementId(0), 100));
}

}  // namespace
}  // namespace pmcorr
