// Differential tests for online pair-graph mutation: AddPair/RetirePair
// must be bitwise invisible to every pair they don't touch. A static
// monitor (the final graph, known up front) and a dynamic monitor (the
// same graph assembled mid-run) step the identical sample stream; pairs
// present in both graphs must produce identical Q^{a,b} series down to
// the last bit, because per-pair state is private to the pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "engine/monitor.h"

namespace pmcorr {
namespace {

// 3 machines x 2 metrics, all driven by one load signal so every
// cross-measurement pair carries real correlation structure.
constexpr std::size_t kMeasurements = 6;

MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(kMeasurements,
                                        std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    cols[4][i] = 0.5 * load + 10.0 + rng.Normal(0.0, 1.0);
    cols[5][i] = 120.0 - 0.7 * load + rng.Normal(0.0, 1.2);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (std::size_t c = 0; c < kMeasurements; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(static_cast<std::int32_t>(c / 2));
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  return config;
}

std::vector<double> RowAt(const MeasurementFrame& frame, std::size_t s) {
  std::vector<double> row(frame.MeasurementCount());
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = frame.Value(MeasurementId(static_cast<std::int32_t>(i)), s);
  }
  return row;
}

// Steps `monitor` over samples [from, to) of `test` and returns the
// snapshots.
std::vector<SystemSnapshot> StepRange(SystemMonitor& monitor,
                                      const MeasurementFrame& test,
                                      std::size_t from, std::size_t to) {
  std::vector<SystemSnapshot> snaps;
  for (std::size_t s = from; s < to; ++s) {
    snaps.push_back(monitor.Step(RowAt(test, s), test.TimeAt(s)));
  }
  return snaps;
}

// PairId -> index map for one monitor's graph.
std::map<PairId, std::size_t> IndexOf(const SystemMonitor& monitor) {
  std::map<PairId, std::size_t> index;
  const auto& pairs = monitor.Graph().Pairs();
  for (std::size_t i = 0; i < pairs.size(); ++i) index[pairs[i]] = i;
  return index;
}

// Asserts that `pair` scored bitwise-identically in both snapshot
// streams (which must cover the same samples).
void ExpectPairSeriesEqual(const std::vector<SystemSnapshot>& a,
                           std::size_t ia,
                           const std::vector<SystemSnapshot>& b,
                           std::size_t ib) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    const auto& sa = a[s].pair_scores[ia];
    const auto& sb = b[s].pair_scores[ib];
    ASSERT_EQ(sa.has_value(), sb.has_value()) << "sample " << s;
    if (sa) {
      // Bitwise, not approximate: the contract is that the mutation is
      // invisible, not merely small.
      ASSERT_EQ(*sa, *sb) << "sample " << s;
    }
  }
}

PairId P(int a, int b) { return {MeasurementId(a), MeasurementId(b)}; }

// The full test graph; the dynamic monitor starts without kLatePair.
const PairId kLatePair = P(1, 4);

std::vector<PairId> FullPairSet() {
  return {P(0, 1), P(0, 2), P(2, 3), P(3, 4), P(4, 5), P(1, 5), kLatePair};
}

std::vector<PairId> InitialPairSet() {
  std::vector<PairId> pairs = FullPairSet();
  pairs.erase(std::find(pairs.begin(), pairs.end(), kLatePair));
  return pairs;
}

class DynamicTopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = SystemFrame(1200, 11);
    test_ = SystemFrame(600, 12);
  }

  MeasurementFrame history_;
  MeasurementFrame test_;
};

TEST_F(DynamicTopologyTest, AddPairInvisibleToUntouchedPairs) {
  SystemMonitor full(history_,
                     MeasurementGraph::FromPairs(kMeasurements, FullPairSet()),
                     SmallConfig());
  SystemMonitor dyn(
      history_, MeasurementGraph::FromPairs(kMeasurements, InitialPairSet()),
      SmallConfig());

  // Segment 1: the dynamic monitor runs without the late pair.
  const auto full1 = StepRange(full, test_, 0, 200);
  const auto dyn1 = StepRange(dyn, test_, 0, 200);

  // The late pair joins mid-run, learned from the same history.
  const std::size_t added = dyn.AddPair(kLatePair, history_);
  EXPECT_EQ(added, InitialPairSet().size());
  EXPECT_EQ(dyn.Graph().PairCount(), FullPairSet().size());

  // Segment 2: both monitors now watch the same pair set.
  const auto full2 = StepRange(full, test_, 200, 400);
  const auto dyn2 = StepRange(dyn, test_, 200, 400);

  const auto full_index = IndexOf(full);
  const auto dyn_index = IndexOf(dyn);
  for (const PairId& pair : InitialPairSet()) {
    ExpectPairSeriesEqual(full1, full_index.at(pair), dyn1,
                          dyn_index.at(pair));
    ExpectPairSeriesEqual(full2, full_index.at(pair), dyn2,
                          dyn_index.at(pair));
  }

  // The added pair engages on its own: sequence-reset on arrival, so its
  // first sample is disengaged, but it must score thereafter.
  const std::size_t late = dyn_index.at(kLatePair);
  EXPECT_FALSE(dyn2.front().pair_scores[late].has_value());
  std::size_t scored = 0;
  for (const auto& snap : dyn2) {
    if (snap.pair_scores[late]) ++scored;
  }
  EXPECT_GT(scored, dyn2.size() / 2);
}

TEST_F(DynamicTopologyTest, RetirePairDisengagesOnlyThatPair) {
  const auto graph = [] {
    return MeasurementGraph::FromPairs(kMeasurements, FullPairSet());
  };
  SystemMonitor keep(history_, graph(), SmallConfig());
  SystemMonitor dyn(history_, graph(), SmallConfig());

  const auto keep1 = StepRange(keep, test_, 0, 150);
  const auto dyn1 = StepRange(dyn, test_, 0, 150);

  const std::size_t retired = IndexOf(dyn).at(P(2, 3));
  dyn.RetirePair(retired);
  dyn.RetirePair(retired);  // idempotent

  const auto keep2 = StepRange(keep, test_, 150, 300);
  const auto dyn2 = StepRange(dyn, test_, 150, 300);

  // Before retirement the monitors are interchangeable; after it, every
  // pair but the retired one still is.
  for (std::size_t i = 0; i < FullPairSet().size(); ++i) {
    ExpectPairSeriesEqual(keep1, i, dyn1, i);
    if (i != retired) ExpectPairSeriesEqual(keep2, i, dyn2, i);
  }
  for (const auto& snap : dyn2) {
    EXPECT_FALSE(snap.pair_scores[retired].has_value());
    EXPECT_GE(snap.quarantined_pairs, 1u);
  }
  // The static monitor keeps scoring the pair the dynamic one retired.
  std::size_t scored = 0;
  for (const auto& snap : keep2) {
    if (snap.pair_scores[retired]) ++scored;
  }
  EXPECT_GT(scored, 0u);
}

TEST_F(DynamicTopologyTest, AddPairUpdatesGraphIndex) {
  SystemMonitor dyn(
      history_, MeasurementGraph::FromPairs(kMeasurements, InitialPairSet()),
      SmallConfig());
  const std::size_t index = dyn.AddPair(kLatePair, history_);

  const auto touching_a = dyn.Graph().PairsOf(kLatePair.a);
  const auto touching_b = dyn.Graph().PairsOf(kLatePair.b);
  EXPECT_NE(std::find(touching_a.begin(), touching_a.end(), index),
            touching_a.end());
  EXPECT_NE(std::find(touching_b.begin(), touching_b.end(), index),
            touching_b.end());
  EXPECT_EQ(dyn.Graph().Pair(index), kLatePair);
}

TEST_F(DynamicTopologyTest, AddPairRejectsInvalidPairs) {
  SystemMonitor dyn(
      history_, MeasurementGraph::FromPairs(kMeasurements, InitialPairSet()),
      SmallConfig());
  // Duplicate of an existing edge.
  EXPECT_THROW(dyn.AddPair(P(0, 1), history_), std::invalid_argument);
  // Measurement id outside the frame.
  EXPECT_THROW(dyn.AddPair(P(0, static_cast<int>(kMeasurements)), history_),
               std::invalid_argument);
  // Self-pair (PairId normalizes order, so a == b is the only invalid
  // in-range shape).
  EXPECT_THROW(dyn.AddPair(P(2, 2), history_), std::invalid_argument);
  // History narrower than the monitor's measurement set.
  const MeasurementFrame narrow =
      history_.SelectMeasurements({MeasurementId(0), MeasurementId(1)});
  EXPECT_THROW(dyn.AddPair(kLatePair, narrow), std::invalid_argument);
}

TEST_F(DynamicTopologyTest, RetirePairRejectsBadIndexAndDisabledQuarantine) {
  SystemMonitor dyn(history_,
                    MeasurementGraph::FromPairs(kMeasurements, FullPairSet()),
                    SmallConfig());
  EXPECT_THROW(dyn.RetirePair(FullPairSet().size()), std::out_of_range);

  MonitorConfig no_quarantine = SmallConfig();
  no_quarantine.quarantine.enabled = false;
  SystemMonitor bare(history_,
                     MeasurementGraph::FromPairs(kMeasurements, FullPairSet()),
                     no_quarantine);
  EXPECT_THROW(bare.RetirePair(0), std::logic_error);
}

}  // namespace
}  // namespace pmcorr
