// Differential harness for the monitoring engine: proves that pair-major
// batched Run() is observably identical to the sample-major Step() loop.
//
// The batched engine is a correctness-critical rewrite of the hot path,
// so the contract is deliberately brutal: for the same scenario the two
// paths must produce bitwise-identical snapshot streams (every pair
// score, Q^a, Q, alarm list and counter), identical alarm logs,
// identical lifetime aggregates, and byte-identical checkpoints — at
// every thread count and batch size, after calibration, and across
// ResetSequences boundaries.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/monitor.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace difftest {

/// The pre-batching reference semantics: one Step() per sample, exactly
/// what SystemMonitor::Run did before the pair-major rewrite.
inline std::vector<SystemSnapshot> RunSerial(SystemMonitor& monitor,
                                             const MeasurementFrame& test) {
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(test.SampleCount());
  std::vector<double> values(test.MeasurementCount());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    for (std::size_t a = 0; a < values.size(); ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    snapshots.push_back(monitor.Step(values, test.TimeAt(t)));
  }
  return snapshots;
}

/// Full monitor checkpoint as a string — a byte-stable fingerprint of
/// every pair model (grid boundaries, matrix entries at 17 significant
/// digits) plus the lifetime aggregates.
inline std::string CheckpointString(const SystemMonitor& monitor) {
  std::ostringstream out;
  SaveSystemMonitor(monitor, out);
  return out.str();
}

/// Exact equality of two optional scores (bitwise on the engaged value).
inline void ExpectScoreEqual(const std::optional<double>& a,
                             const std::optional<double>& b,
                             const char* what) {
  ASSERT_EQ(a.has_value(), b.has_value()) << what;
  if (a) {
    EXPECT_EQ(*a, *b) << what;
  }
}

inline void ExpectSnapshotsEqual(const SystemSnapshot& a,
                                 const SystemSnapshot& b) {
  EXPECT_EQ(a.sample, b.sample);
  EXPECT_EQ(a.time, b.time);
  ASSERT_EQ(a.pair_scores.size(), b.pair_scores.size());
  for (std::size_t i = 0; i < a.pair_scores.size(); ++i) {
    SCOPED_TRACE("pair " + std::to_string(i));
    ExpectScoreEqual(a.pair_scores[i], b.pair_scores[i], "pair score");
  }
  ASSERT_EQ(a.measurement_scores.size(), b.measurement_scores.size());
  for (std::size_t m = 0; m < a.measurement_scores.size(); ++m) {
    SCOPED_TRACE("measurement " + std::to_string(m));
    ExpectScoreEqual(a.measurement_scores[m], b.measurement_scores[m], "Q^a");
  }
  ExpectScoreEqual(a.system_score, b.system_score, "system score");
  EXPECT_EQ(a.alarmed_pairs, b.alarmed_pairs);
  EXPECT_EQ(a.outlier_pairs, b.outlier_pairs);
  EXPECT_EQ(a.extended_pairs, b.extended_pairs);
  // Degraded-mode telemetry must match across execution paths too:
  // quarantine trips and guard suppressions land on the same samples
  // whether the engine steps sample-major or sweeps pair-major.
  EXPECT_EQ(static_cast<int>(a.stream_event), static_cast<int>(b.stream_event));
  ASSERT_EQ(a.measurement_health.size(), b.measurement_health.size());
  for (std::size_t m = 0; m < a.measurement_health.size(); ++m) {
    EXPECT_EQ(static_cast<int>(a.measurement_health[m]),
              static_cast<int>(b.measurement_health[m]))
        << "health of measurement " << m;
  }
  EXPECT_EQ(a.suppressed_values, b.suppressed_values);
  EXPECT_EQ(a.quarantined_pairs, b.quarantined_pairs);
}

inline void ExpectStreamsEqual(const std::vector<SystemSnapshot>& a,
                               const std::vector<SystemSnapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    SCOPED_TRACE("sample " + std::to_string(t));
    ExpectSnapshotsEqual(a[t], b[t]);
  }
}

inline void ExpectAlarmLogsEqual(const AlarmLog& a, const AlarmLog& b) {
  ASSERT_EQ(a.Count(), b.Count());
  for (std::size_t i = 0; i < a.Count(); ++i) {
    SCOPED_TRACE("alarm record " + std::to_string(i));
    EXPECT_EQ(a.Records()[i].time, b.Records()[i].time);
    EXPECT_EQ(a.Records()[i].pair_index, b.Records()[i].pair_index);
    EXPECT_EQ(a.Records()[i].fitness, b.Records()[i].fitness);
    EXPECT_EQ(a.Records()[i].outlier, b.Records()[i].outlier);
  }
}

/// Lifetime aggregates: per-measurement and system averagers (bitwise on
/// the running sums) and the step counter.
inline void ExpectAggregatesEqual(const SystemMonitor& a,
                                  const SystemMonitor& b) {
  EXPECT_EQ(a.StepCount(), b.StepCount());
  ASSERT_EQ(a.MeasurementAverages().size(), b.MeasurementAverages().size());
  for (std::size_t m = 0; m < a.MeasurementAverages().size(); ++m) {
    SCOPED_TRACE("measurement averager " + std::to_string(m));
    EXPECT_EQ(a.MeasurementAverages()[m].Sum(),
              b.MeasurementAverages()[m].Sum());
    EXPECT_EQ(a.MeasurementAverages()[m].Count(),
              b.MeasurementAverages()[m].Count());
  }
  EXPECT_EQ(a.SystemAverage().Sum(), b.SystemAverage().Sum());
  EXPECT_EQ(a.SystemAverage().Count(), b.SystemAverage().Count());
}

/// One differential scenario. The harness builds a fresh monitor per
/// execution mode (learning is deterministic, so same inputs give the
/// same models at any thread count), optionally calibrates, feeds the
/// test frame through the serial reference and through batched Run at
/// each thread count, and asserts total equivalence.
struct DifferentialCase {
  MeasurementFrame history;
  MeasurementFrame test;
  /// When present, CalibrateThresholds runs on it before the test frame
  /// (so the alarm path is exercised too).
  std::optional<MeasurementFrame> holdout;
  double target_false_positive_rate = 0.05;
  MeasurementGraph graph;
  MonitorConfig config;
  /// Batch sizes exercised for the batched path, besides the default.
  /// Small odd widths force mid-frame merge boundaries.
  std::vector<std::size_t> batch_sizes = {0, 7};
  /// When true, the test frame is fed in two halves with ResetSequences
  /// between them — in both paths.
  bool reset_mid_stream = false;
};

inline std::vector<SystemSnapshot> FeedSerial(SystemMonitor& monitor,
                                              const DifferentialCase& c) {
  if (!c.reset_mid_stream) return RunSerial(monitor, c.test);
  const std::size_t half = c.test.SampleCount() / 2;
  const TimePoint mid = c.test.TimeAt(half);
  auto snaps = RunSerial(monitor, c.test.SliceByTime(c.test.StartTime(), mid));
  monitor.ResetSequences();
  auto rest = RunSerial(
      monitor, c.test.SliceByTime(mid, c.test.TimeAt(c.test.SampleCount())));
  snaps.insert(snaps.end(), rest.begin(), rest.end());
  return snaps;
}

inline std::vector<SystemSnapshot> FeedBatched(SystemMonitor& monitor,
                                               const DifferentialCase& c) {
  if (!c.reset_mid_stream) return monitor.Run(c.test);
  const std::size_t half = c.test.SampleCount() / 2;
  const TimePoint mid = c.test.TimeAt(half);
  auto snaps = monitor.Run(c.test.SliceByTime(c.test.StartTime(), mid));
  monitor.ResetSequences();
  auto rest =
      monitor.Run(c.test.SliceByTime(mid, c.test.TimeAt(c.test.SampleCount())));
  snaps.insert(snaps.end(), rest.begin(), rest.end());
  return snaps;
}

/// Runs the scenario through (a) the serial Step loop and (b) batched
/// Run at every requested thread count and batch size, asserting the
/// snapshot streams, alarm logs, lifetime aggregates and checkpoints all
/// match the serial reference exactly.
inline void ExpectSerialAndBatchedEquivalent(
    const DifferentialCase& c,
    std::vector<std::size_t> thread_counts = {1, 2, 8}) {
  MonitorConfig serial_config = c.config;
  serial_config.threads = 1;
  SystemMonitor reference(c.history, c.graph, serial_config);
  if (c.holdout) {
    reference.CalibrateThresholds(*c.holdout, c.target_false_positive_rate);
  }
  const auto reference_snaps = FeedSerial(reference, c);
  const std::string reference_checkpoint = CheckpointString(reference);

  // The checkpoint must itself round-trip losslessly, or checkpoint
  // equality below would prove nothing.
  {
    std::istringstream in(reference_checkpoint);
    const auto reloaded = LoadSystemMonitor(in, 1);
    EXPECT_EQ(CheckpointString(*reloaded), reference_checkpoint)
        << "checkpoint round-trip is lossy";
  }

  for (std::size_t threads : thread_counts) {
    for (std::size_t batch : c.batch_sizes) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      MonitorConfig batched_config = c.config;
      batched_config.threads = threads;
      batched_config.batch_samples = batch;
      SystemMonitor monitor(c.history, c.graph, batched_config);
      if (c.holdout) {
        monitor.CalibrateThresholds(*c.holdout, c.target_false_positive_rate);
      }
      const auto snaps = FeedBatched(monitor, c);
      ExpectStreamsEqual(reference_snaps, snaps);
      ExpectAlarmLogsEqual(reference.Alarms(), monitor.Alarms());
      ExpectAggregatesEqual(reference, monitor);
      EXPECT_EQ(CheckpointString(monitor), reference_checkpoint)
          << "batched checkpoint diverged from serial reference";
    }
  }
}

}  // namespace difftest
}  // namespace pmcorr
