// Tests for the incident drill-down report generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "engine/drilldown.h"

namespace pmcorr {
namespace {

// 2 machines x 2 metrics; measurement 3 breaks (flapping walk) in the
// second half of the test window.
MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed,
                             bool break_m3 = false) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  Rng walk_rng = rng.Fork();
  double walk = 70.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    if (break_m3 && i >= samples / 2) {
      walk += walk_rng.Normal(0.0, 25.0);
      walk = std::clamp(walk, 20.0, 150.0);
      cols[3][i] = walk;
    } else {
      cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

TEST(Drilldown, NamesTheBrokenMeasurementFirst) {
  const MeasurementFrame history = SystemFrame(2000, 3);
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);

  const MeasurementFrame test = SystemFrame(400, 5, /*break_m3=*/true);
  const auto snapshots = monitor.Run(test);

  // Drill into the broken half.
  const DrilldownReport report =
      BuildDrilldown(monitor, snapshots, test, 200, 399);
  ASSERT_FALSE(report.measurements.empty());
  EXPECT_EQ(report.measurements.front().name, "m3");
  EXPECT_GT(report.mean_system_score, 0.0);

  // Its links are populated, sorted worst-first, and carry ranges.
  const auto& worst = report.measurements.front();
  ASSERT_GE(worst.links.size(), 2u);
  EXPECT_LE(worst.links[0].mean_fitness, worst.links[1].mean_fitness);
  EXPECT_FALSE(worst.links[0].worst_ranges.empty());
  EXPECT_NE(worst.links[0].description.find("m3"), std::string::npos);

  // The rendered text mentions the culprit.
  const std::string text = report.ToString();
  EXPECT_NE(text.find("m3"), std::string::npos);
  EXPECT_NE(text.find("link"), std::string::npos);
}

TEST(Drilldown, CleanWindowScoresHighEverywhere) {
  const MeasurementFrame history = SystemFrame(1500, 7);
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  const MeasurementFrame test = SystemFrame(200, 9);
  const auto snapshots = monitor.Run(test);

  const DrilldownReport report =
      BuildDrilldown(monitor, snapshots, test, 10, 199);
  EXPECT_GT(report.mean_system_score, 0.85);
  for (const auto& m : report.measurements) {
    EXPECT_GT(m.mean_score, 0.7);
  }
}

TEST(Drilldown, ClampsWindowAndLimits) {
  const MeasurementFrame history = SystemFrame(800, 11);
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 1;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  const MeasurementFrame test = SystemFrame(50, 13);
  const auto snapshots = monitor.Run(test);

  DrilldownConfig drill;
  drill.max_measurements = 2;
  drill.max_links = 1;
  const DrilldownReport report =
      BuildDrilldown(monitor, snapshots, test, 0, 10000, drill);
  EXPECT_EQ(report.last_sample, 49u);
  EXPECT_LE(report.measurements.size(), 2u);
  for (const auto& m : report.measurements) {
    EXPECT_LE(m.links.size(), 1u);
  }
}

TEST(Drilldown, EmptySnapshotsYieldEmptyReport) {
  const MeasurementFrame history = SystemFrame(600, 15);
  MonitorConfig config;
  config.threads = 1;
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4), config);
  const DrilldownReport report =
      BuildDrilldown(monitor, {}, history, 0, 10);
  EXPECT_TRUE(report.measurements.empty());
}

}  // namespace
}  // namespace pmcorr
