// Wire framing and binary codecs: the length-prefixed CRC frame layer
// (io/framing.h), the binary SystemDelta stream (io/delta_binary.h)
// proven bitwise-equal to the JSONL form, and the serve protocol's
// message codecs (serve/protocol.h). Every decoder here faces a network
// peer or an on-disk file, so the malformed cases are as load-bearing
// as the round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "differential_util.h"
#include "engine/snapshot.h"
#include "io/delta_binary.h"
#include "io/framing.h"
#include "io/monitor_io.h"
#include "serve/protocol.h"

namespace pmcorr {
namespace {

// ---------------------------------------------------------------------
// Frame layer.
// ---------------------------------------------------------------------

TEST(Framing, RoundTripSingleFrame) {
  std::string wire;
  AppendFrame(0x42, "hello frame", wire);
  FrameReader reader;
  reader.Feed(wire);
  const auto frame = reader.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 0x42);
  EXPECT_EQ(frame->payload, "hello frame");
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.HasPartial());
}

TEST(Framing, ByteByByteDelivery) {
  // A frame must survive arbitrary fragmentation — one byte per Feed is
  // the worst case a stream socket can produce.
  std::string wire;
  AppendFrame(0x01, "alpha", wire);
  AppendFrame(0x02, std::string(1000, 'b'), wire);
  AppendFrame(0x03, "", wire);
  FrameReader reader;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    reader.Feed(std::string_view(&byte, 1));
    while (const auto frame = reader.Next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].payload.size(), 1000u);
  EXPECT_EQ(frames[2].type, 0x03);
  EXPECT_TRUE(frames[2].payload.empty());
  EXPECT_FALSE(reader.HasPartial());
}

TEST(Framing, CorruptCrcRejected) {
  std::string wire;
  AppendFrame(0x10, "payload", wire);
  wire.back() ^= 0x01;  // flip one CRC bit
  FrameReader reader;
  reader.Feed(wire);
  EXPECT_THROW(reader.Next(), FramingError);
}

TEST(Framing, CorruptPayloadRejected) {
  std::string wire;
  AppendFrame(0x10, "payload", wire);
  wire[6] ^= 0x40;  // flip a payload bit; the CRC must catch it
  FrameReader reader;
  reader.Feed(wire);
  EXPECT_THROW(reader.Next(), FramingError);
}

TEST(Framing, OversizedLengthRejected) {
  // A hostile length prefix must be rejected before any allocation of
  // that size happens.
  std::string wire;
  const std::uint32_t huge = kMaxFramePayload + 2;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  FrameReader reader;
  reader.Feed(wire);
  EXPECT_THROW(reader.Next(), FramingError);
}

TEST(Framing, ZeroLengthRejected) {
  // The body always holds at least the type byte.
  FrameReader reader;
  reader.Feed(std::string_view("\0\0\0\0", 4));
  EXPECT_THROW(reader.Next(), FramingError);
}

TEST(Framing, PartialFrameIsVisible) {
  std::string wire;
  AppendFrame(0x10, "payload", wire);
  FrameReader reader;
  reader.Feed(std::string_view(wire).substr(0, wire.size() - 1));
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.HasPartial());
  reader.Feed(std::string_view(wire).substr(wire.size() - 1));
  EXPECT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.HasPartial());
}

TEST(Framing, WireScalarsRoundTripBitwise) {
  std::string buffer;
  WireWriter writer(buffer);
  writer.U8(0xAB);
  writer.U16(0xBEEF);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFull);
  writer.I64(-987654321);
  writer.F64(-0.1);
  writer.F64(std::numeric_limits<double>::quiet_NaN());
  writer.Str("utf-8 safe \x01 bytes");

  WireReader reader(buffer, "scalar round trip");
  EXPECT_EQ(reader.U8(), 0xAB);
  EXPECT_EQ(reader.U16(), 0xBEEF);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.I64(), -987654321);
  EXPECT_EQ(reader.F64(), -0.1);
  EXPECT_TRUE(std::isnan(reader.F64()));  // NaN bit pattern survives
  EXPECT_EQ(reader.Str(), "utf-8 safe \x01 bytes");
  EXPECT_TRUE(reader.AtEnd());
  reader.ExpectEnd();
}

TEST(Framing, WireReaderUnderrunThrows) {
  std::string buffer;
  WireWriter writer(buffer);
  writer.U32(7);
  WireReader reader(buffer, "underrun");
  EXPECT_THROW(reader.U64(), FramingError);
}

TEST(Framing, WireReaderTrailingBytesThrow) {
  std::string buffer;
  WireWriter writer(buffer);
  writer.U8(1);
  writer.U8(2);
  WireReader reader(buffer, "trailing");
  reader.U8();
  EXPECT_THROW(reader.ExpectEnd(), FramingError);
}

// ---------------------------------------------------------------------
// Binary delta stream.
// ---------------------------------------------------------------------

// The same correlated synthetic system the differential suite uses.
MeasurementFrame CorrelatedFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load = 60.0 +
                        35.0 * std::sin(static_cast<double>(i) * 0.03) +
                        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 1;
  return config;
}

std::vector<SystemDelta> MakeDeltas() {
  const MeasurementFrame history = CorrelatedFrame(300, 11);
  const MeasurementFrame test = CorrelatedFrame(120, 12);
  SystemMonitor monitor(history,
                        MeasurementGraph::FullMesh(history.MeasurementCount()),
                        SmallConfig());
  return monitor.RunDelta(test);
}

std::string EncodeAll(const std::vector<SystemDelta>& deltas) {
  std::string out;
  for (const SystemDelta& delta : deltas) EncodeSystemDelta(delta, out);
  return out;
}

TEST(DeltaBinary, RoundTripBitwiseAndMatchesJsonl) {
  const std::vector<SystemDelta> deltas = MakeDeltas();
  ASSERT_FALSE(deltas.empty());

  // Binary round trip: decode(encode(x)) re-encodes to the same bytes.
  std::stringstream binary;
  WriteDeltaStreamBinary(deltas, binary);
  const std::vector<SystemDelta> from_binary = ReadDeltaStreamBinary(binary);
  ASSERT_EQ(from_binary.size(), deltas.size());
  EXPECT_EQ(EncodeAll(from_binary), EncodeAll(deltas));

  // Cross-format: the JSONL path must decode to deltas whose binary
  // encoding is byte-identical (both carry exact doubles).
  std::stringstream jsonl;
  WriteDeltaStreamJsonl(deltas, jsonl);
  const std::vector<SystemDelta> from_jsonl = ReadDeltaStreamJsonl(jsonl);
  EXPECT_EQ(EncodeAll(from_jsonl), EncodeAll(deltas));

  // And both reconstruct to identical snapshot streams.
  difftest::ExpectStreamsEqual(ReconstructSnapshots(from_binary),
                               ReconstructSnapshots(from_jsonl));
}

TEST(DeltaBinary, TruncationAtEveryFrameBoundaryRejected) {
  const std::vector<SystemDelta> deltas = MakeDeltas();
  std::stringstream full;
  WriteDeltaStreamBinary(deltas, full);
  const std::string bytes = full.str();

  // Cut after the magic frame and after each delta frame: without the
  // end frame every prefix must be rejected as truncated.
  FrameReader scanner;
  scanner.Feed(bytes);
  std::size_t consumed = 0;
  std::vector<std::size_t> boundaries;
  while (true) {
    const std::size_t before = scanner.BufferedBytes();
    if (!scanner.Next().has_value()) break;
    consumed += before - scanner.BufferedBytes();
    boundaries.push_back(consumed);
  }
  ASSERT_GE(boundaries.size(), 3u);
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    std::istringstream cut(bytes.substr(0, boundaries[i]));
    EXPECT_THROW(ReadDeltaStreamBinary(cut), std::runtime_error)
        << "prefix of " << boundaries[i] << " bytes";
  }
  // Mid-frame cut too.
  std::istringstream torn(bytes.substr(0, bytes.size() - 3));
  EXPECT_THROW(ReadDeltaStreamBinary(torn), std::runtime_error);
}

TEST(DeltaBinary, MissingMagicRejected) {
  std::string wire;
  AppendFrame(kDeltaStreamEnd, std::string(8, '\0'), wire);
  std::istringstream in(wire);
  EXPECT_THROW(ReadDeltaStreamBinary(in), std::runtime_error);
}

TEST(DeltaBinary, WrongEndCountRejected) {
  const std::vector<SystemDelta> deltas = MakeDeltas();
  std::string wire;
  AppendFrame(kDeltaStreamMagic, kDeltaStreamMagicPayload, wire);
  std::string payload;
  EncodeSystemDelta(deltas[0], payload);
  AppendFrame(kDeltaStreamDelta, payload, wire);
  std::string end_payload;
  WireWriter end(end_payload);
  end.U64(2);  // lies: only one delta frame present
  AppendFrame(kDeltaStreamEnd, end_payload, wire);
  std::istringstream in(wire);
  EXPECT_THROW(ReadDeltaStreamBinary(in), std::runtime_error);
}

TEST(DeltaBinary, TrailingFrameAfterEndRejected) {
  std::stringstream out;
  WriteDeltaStreamBinary({}, out);
  std::string wire = out.str();
  AppendFrame(kDeltaStreamMagic, kDeltaStreamMagicPayload, wire);
  std::istringstream in(wire);
  EXPECT_THROW(ReadDeltaStreamBinary(in), std::runtime_error);
}

TEST(DeltaBinary, HostileWidthsRejected) {
  // A delta claiming 2^20+1 pairs must be rejected before allocation.
  SystemDelta delta;
  delta.baseline = true;
  delta.pair_count = (1u << 20) + 1;
  delta.measurement_count = 4;
  std::string payload;
  EncodeSystemDelta(delta, payload);
  EXPECT_THROW(DecodeSystemDelta(payload), FramingError);
}

TEST(DeltaBinary, OutOfRangeIndexRejected) {
  SystemDelta delta;
  delta.baseline = true;
  delta.pair_count = 4;
  delta.measurement_count = 4;
  delta.alarmed_pairs = {7};  // >= pair_count
  std::string payload;
  EncodeSystemDelta(delta, payload);
  EXPECT_THROW(DecodeSystemDelta(payload), FramingError);
}

// ---------------------------------------------------------------------
// Serve protocol codecs.
// ---------------------------------------------------------------------

TEST(ServeProtocol, HelloRoundTrip) {
  HelloRequest request;
  request.tenant = "prod-eu";
  std::string payload;
  EncodeHelloRequest(request, payload);
  const HelloRequest back = DecodeHelloRequest(payload);
  EXPECT_EQ(back.version, kServeProtocolVersion);
  EXPECT_EQ(back.tenant, "prod-eu");

  HelloReply reply;
  reply.tenant_index = 3;
  reply.measurement_count = 17;
  reply.expected_period = 360;
  payload.clear();
  EncodeHelloReply(reply, payload);
  const HelloReply reply_back = DecodeHelloReply(payload);
  EXPECT_EQ(reply_back.tenant_index, 3u);
  EXPECT_EQ(reply_back.measurement_count, 17u);
  EXPECT_EQ(reply_back.expected_period, 360);
}

TEST(ServeProtocol, SampleRowKeepsNaN) {
  // NaN is a legal in-band value (a missing reading the guard handles);
  // the codec must not "validate" it away.
  SampleRow row;
  row.time = 1212019200;
  row.values = {1.5, std::numeric_limits<double>::quiet_NaN(), -3.0};
  std::string payload;
  EncodeSampleRow(row, payload);
  SampleRow back;
  back.values.reserve(8);
  DecodeSampleRowInto(payload, back);
  EXPECT_EQ(back.time, row.time);
  ASSERT_EQ(back.values.size(), 3u);
  EXPECT_EQ(back.values[0], 1.5);
  EXPECT_TRUE(std::isnan(back.values[1]));
  EXPECT_EQ(back.values[2], -3.0);
}

TEST(ServeProtocol, StatusRoundTrip) {
  StatusReply status;
  status.state = 1;
  status.submitted = 1000;
  status.accepted = 600;
  status.shed_ticks = 399;
  status.rejected = 1;
  status.processed = 600;
  status.checkpoints = 3;
  status.checkpoint_failures = 1;
  status.backpressure_raises = 2;
  status.backpressure_clears = 2;
  status.max_queue_rows = 64;
  status.queue_rows = 5;
  status.queue_budget = 64;
  status.alarms_total = 12;
  status.suppressed_total = 7;
  status.quarantined_pairs = 1;
  status.last_sample = 599;
  status.last_time = 1212019200;
  status.last_q = 0.9875;
  status.last_error = "disk full";
  std::string payload;
  EncodeStatusReply(status, payload);
  const StatusReply back = DecodeStatusReply(payload);
  EXPECT_EQ(back.submitted, 1000u);
  EXPECT_EQ(back.shed_ticks, 399u);
  EXPECT_EQ(back.checkpoint_failures, 1u);
  EXPECT_EQ(back.max_queue_rows, 64u);
  ASSERT_TRUE(back.last_q.has_value());
  EXPECT_EQ(*back.last_q, 0.9875);
  EXPECT_EQ(back.last_error, "disk full");
}

TEST(ServeProtocol, SummaryAndDrilldownRoundTrip) {
  SummaryReply summary;
  summary.has_snapshot = true;
  summary.sample = 42;
  summary.time = 360 * 42;
  summary.system_score = 0.75;
  summary.measurement_scores = {std::nullopt, 0.5, 1.0};
  summary.measurement_health = {MeasurementHealth::kHealthy,
                                MeasurementHealth::kStale,
                                MeasurementHealth::kDead};
  summary.alarmed_pairs = {0, 2};
  std::string payload;
  EncodeSummaryReply(summary, payload);
  const SummaryReply summary_back = DecodeSummaryReply(payload);
  EXPECT_TRUE(summary_back.has_snapshot);
  ASSERT_EQ(summary_back.measurement_scores.size(), 3u);
  EXPECT_FALSE(summary_back.measurement_scores[0].has_value());
  EXPECT_EQ(*summary_back.measurement_scores[1], 0.5);
  EXPECT_EQ(summary_back.measurement_health[2], MeasurementHealth::kDead);
  EXPECT_EQ(summary_back.alarmed_pairs, (std::vector<std::uint32_t>{0, 2}));

  DrilldownReply drill;
  drill.measurement = 1;
  drill.has_snapshot = true;
  drill.sample = 42;
  drill.system_score = 0.75;
  drill.measurement_score = 0.5;
  DrilldownPair pair;
  pair.pair_index = 2;
  pair.a = 1;
  pair.b = 3;
  pair.has_score = true;
  pair.score = 0.25;
  pair.alarmed = true;
  drill.pairs.push_back(pair);
  payload.clear();
  EncodeDrilldownReply(drill, payload);
  const DrilldownReply drill_back = DecodeDrilldownReply(payload);
  ASSERT_EQ(drill_back.pairs.size(), 1u);
  EXPECT_EQ(drill_back.pairs[0].b, 3u);
  EXPECT_EQ(drill_back.pairs[0].score, 0.25);
  EXPECT_TRUE(drill_back.pairs[0].alarmed);
}

TEST(ServeProtocol, DrainedAndErrorRoundTrip) {
  DrainedReply drained;
  DrainedTenant tenant;
  tenant.name = "A";
  tenant.state = 2;
  tenant.processed = 123;
  tenant.checkpoint = 1;
  drained.tenants.push_back(tenant);
  std::string payload;
  EncodeDrainedReply(drained, payload);
  const DrainedReply back = DecodeDrainedReply(payload);
  ASSERT_EQ(back.tenants.size(), 1u);
  EXPECT_EQ(back.tenants[0].name, "A");
  EXPECT_EQ(back.tenants[0].checkpoint, 1);

  payload.clear();
  EncodeErrorReply("bad row", payload);
  EXPECT_EQ(DecodeErrorReply(payload), "bad row");
}

TEST(ServeProtocol, MalformedPayloadsRejected) {
  // Truncation.
  std::string payload;
  HelloRequest hello;
  hello.tenant = "A";
  EncodeHelloRequest(hello, payload);
  EXPECT_THROW(DecodeHelloRequest(payload.substr(0, payload.size() - 1)),
               FramingError);
  // Trailing bytes.
  EXPECT_THROW(DecodeHelloRequest(payload + "x"), FramingError);
  // Out-of-range enum.
  std::string bad_query;
  WireWriter writer(bad_query);
  writer.U8(9);  // no such QueryKind
  writer.U32(0);
  EXPECT_THROW(DecodeQueryRequest(bad_query), FramingError);
}

}  // namespace
}  // namespace pmcorr
