// Tests for the JSON-lines exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "io/jsonl.h"

namespace pmcorr {
namespace {

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Jsonl, SnapshotsOneLineEach) {
  SystemSnapshot a;
  a.time = 1000;
  a.system_score = 0.95;
  a.measurement_scores = {0.9, std::nullopt, 0.99};
  a.alarmed_pairs = {1, 4};
  a.outlier_pairs = 1;
  SystemSnapshot b;
  b.time = 1360;  // disengaged sample
  b.measurement_scores = {std::nullopt};

  std::stringstream out;
  WriteSnapshotsJsonl({a, b}, out);
  std::string line;
  ASSERT_TRUE(std::getline(out, line));
  EXPECT_EQ(line,
            "{\"t\":1000,\"q\":0.95,\"alarmed_pairs\":2,"
            "\"outlier_pairs\":1,\"worst_qa\":0.9}");
  ASSERT_TRUE(std::getline(out, line));
  EXPECT_EQ(line,
            "{\"t\":1360,\"q\":null,\"alarmed_pairs\":0,"
            "\"outlier_pairs\":0,\"worst_qa\":null}");
  EXPECT_FALSE(std::getline(out, line));
}

TEST(Jsonl, IncidentsSerialized) {
  Incident incident;
  incident.start = 100;
  incident.end = 700;
  incident.alarm_count = 3;
  incident.min_score = 0.125;
  incident.open = false;
  std::stringstream out;
  WriteIncidentsJsonl({incident}, out);
  EXPECT_EQ(out.str(),
            "{\"start\":100,\"end\":700,\"alarms\":3,"
            "\"min_score\":0.125,\"open\":false}\n");
}

TEST(Jsonl, EmptyInputsWriteNothing) {
  std::stringstream out;
  WriteSnapshotsJsonl({}, out);
  WriteIncidentsJsonl({}, out);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace pmcorr
