// Regression tests for the hardened I/O boundaries: every malformed
// input class the fuzz harnesses cover — truncation, NaN/Inf fields,
// huge declared shapes, inconsistent redundancy — must produce a clean
// std::runtime_error, never a crash, an abort, or a giant allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/csv.h"
#include "io/model_io.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace {

PairModel TrainedModel() {
  Rng rng(7);
  std::vector<double> xs(500), ys(500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double load =
        50.0 + 30.0 * std::sin(static_cast<double>(i) * 0.05) +
        rng.Normal(0.0, 1.0);
    xs[i] = load;
    ys[i] = 100.0 * load / (load + 40.0) + rng.Normal(0.0, 0.4);
  }
  ModelConfig config;
  config.partition.units = 25;
  config.partition.max_intervals = 6;
  config.forgetting = 0.99;
  return PairModel::Learn(xs, ys, config);
}

std::string SavedModelText() {
  std::ostringstream out;
  SavePairModel(TrainedModel(), out);
  return out.str();
}

// Replaces the first occurrence of `from` in `text`.
std::string Replace(std::string text, const std::string& from,
                    const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "pattern not found: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

void ExpectLoadModelThrows(const std::string& text) {
  std::istringstream in(text);
  EXPECT_THROW((void)LoadPairModel(in), std::runtime_error) << text.substr(
      0, 120);
}

// ---------------------------------------------------------------------
// LoadPairModel.

TEST(ModelIoErrors, ValidFileStillLoads) {
  std::istringstream in(SavedModelText());
  EXPECT_NO_THROW((void)LoadPairModel(in));
}

TEST(ModelIoErrors, EveryTruncationFailsCleanly) {
  const std::string text = SavedModelText();
  // Every proper prefix is missing data (redundant totals catch even a
  // truncated final count token), so each must throw, not crash. Step
  // through the file with a stride plus the boundary cases.
  for (std::size_t len = 0; len + 2 <= text.size(); len += 13) {
    ExpectLoadModelThrows(text.substr(0, len));
  }
  ExpectLoadModelThrows(text.substr(0, text.size() / 2));
  ExpectLoadModelThrows(text.substr(0, text.size() - 2));
}

TEST(ModelIoErrors, HugeDeclaredIntervalCountRejectedBeforeAllocation) {
  // 10^15 declared intervals would be petabytes; the loader must refuse
  // the count itself rather than attempt the allocation.
  const std::string text =
      "pmcorr-model v1\n"
      "kernel 0 2 2\n"
      "params 3 3 0 0 1 1 1\n"
      "ravg 1 1\n"
      "dim1 1000000000000000 0 1\n";
  ExpectLoadModelThrows(text);
}

TEST(ModelIoErrors, HugeDeclaredGridShapeRejected) {
  // Both dimensions individually under the per-dimension cap, but the
  // product (cells^2 evidence doubles) would be enormous.
  std::ostringstream out;
  out << "pmcorr-model v1\nkernel 0 2 2\nparams 3 3 0 0 1 1 1\nravg 1 1\n";
  for (const char* tag : {"dim1", "dim2"}) {
    out << tag << " 1000";
    for (int i = 0; i <= 1000; ++i) out << " " << i;
    out << "\n";
  }
  out << "matrix 1000000 0\nevidence 0\ncounts 0\n";
  ExpectLoadModelThrows(out.str());
}

TEST(ModelIoErrors, NonFiniteFieldsRejected) {
  const std::string text = SavedModelText();
  // Whatever numeric token the parser sees for these fields, NaN/Inf
  // must surface as a parse error.
  ExpectLoadModelThrows(Replace(text, "ravg ", "ravg nan "));
  ExpectLoadModelThrows(Replace(text, "dim1 ", "dim1 inf "));
  ExpectLoadModelThrows(Replace(text, "evidence ", "evidence nan "));
}

TEST(ModelIoErrors, NonIncreasingEdgesRejected) {
  const std::string good =
      "pmcorr-model v1\nkernel 0 2 2\nparams 3 3 0 0 1 1 1\nravg 1 1\n";
  ExpectLoadModelThrows(good + "dim1 2 0 0 2\n");   // zero-width
  ExpectLoadModelThrows(good + "dim1 2 0 -1 2\n");  // decreasing
}

TEST(ModelIoErrors, OutOfRangeParamsRejected) {
  const std::string text = SavedModelText();
  ExpectLoadModelThrows(Replace(text, "params ", "params -1 "));
  // forgetting is the 5th value; easiest to rewrite the whole line.
  std::istringstream in(text);
  std::string line, rebuilt;
  while (std::getline(in, line)) {
    if (line.rfind("params ", 0) == 0) line = "params 3 3 0 0 2 1 1";
    rebuilt += line + "\n";
  }
  ExpectLoadModelThrows(rebuilt);
}

TEST(ModelIoErrors, UnknownKernelAndMetricRejected) {
  const std::string text = SavedModelText();
  ExpectLoadModelThrows(Replace(text, "kernel 0 ", "kernel 9 "));
  ExpectLoadModelThrows(Replace(text, "kernel 0 2 2", "kernel 0 2 7"));
  // Exponential kernels additionally need w > 1.
  ExpectLoadModelThrows(Replace(text, "kernel 0 2 ", "kernel 1 0.5 "));
}

TEST(ModelIoErrors, PositiveEvidenceRejected) {
  ExpectLoadModelThrows(Replace(SavedModelText(), "evidence ",
                                "evidence 0.25 "));
}

TEST(ModelIoErrors, CountSumMismatchRejected) {
  // Bump the declared observed total: the counts section no longer sums
  // to it, and the loader must notice rather than restore corrupt state.
  const std::string text = SavedModelText();
  const std::size_t pos = text.find("matrix ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t sp = text.find(' ', pos + 7);  // after cell count
  ASSERT_NE(sp, std::string::npos);
  std::string mutated = text;
  mutated.insert(sp + 1, "9");  // observed := 9 * 10^k + observed
  ExpectLoadModelThrows(mutated);
}

// ---------------------------------------------------------------------
// LoadSystemMonitor.

TEST(MonitorIoErrors, HugeDeclaredCountsRejected) {
  std::istringstream a("pmcorr-monitor v1\nmeasurements 99999999999\n");
  EXPECT_THROW((void)LoadSystemMonitor(a), std::runtime_error);
  std::istringstream b(
      "pmcorr-monitor v1\nmeasurements 0\npairs 99999999999\n");
  EXPECT_THROW((void)LoadSystemMonitor(b), std::runtime_error);
}

TEST(MonitorIoErrors, CorruptPairListRejectedAsRuntimeError) {
  // Fuzzer find: self-pairs / out-of-range pairs used to escape as
  // std::invalid_argument from MeasurementGraph::FromPairs, breaking
  // the loader's "malformed input => std::runtime_error" contract.
  const std::string model = SavedModelText();
  for (const char* pair_line : {"p 0 0", "p 0 7", "p -3 1", "p 1 0"}) {
    // Fully well-formed checkpoint except for the second pair: the
    // loader reaches graph construction and must translate its
    // rejection, not leak it.
    std::istringstream in(
        std::string("pmcorr-monitor v1\nmeasurements 2\n"
                    "m 0 0 cpu@a\nm 0 0 cpu@b\npairs 2\np 0 1\n") +
        pair_line + "\naggregates 0 0 0\na 0 0\na 0 0\n" + model + model);
    EXPECT_THROW((void)LoadSystemMonitor(in), std::runtime_error)
        << pair_line;
  }
}

TEST(MonitorIoErrors, UnknownMetricKindRejected) {
  std::istringstream in(
      "pmcorr-monitor v1\nmeasurements 1\nm 0 250 cpu@a\n");
  EXPECT_THROW((void)LoadSystemMonitor(in), std::runtime_error);
}

TEST(MonitorIoErrors, NonFiniteAggregatesRejected) {
  std::istringstream in(
      "pmcorr-monitor v1\nmeasurements 0\npairs 0\n"
      "aggregates 10 inf 5\n");
  EXPECT_THROW((void)LoadSystemMonitor(in), std::runtime_error);
}

TEST(MonitorIoErrors, AveragerCountBeyondStepsRejected) {
  std::istringstream in(
      "pmcorr-monitor v1\nmeasurements 1\nm 0 0 cpu@a\npairs 0\n"
      "aggregates 10 1.5 3\na 1.5 11\n");
  EXPECT_THROW((void)LoadSystemMonitor(in), std::runtime_error);
}

// ---------------------------------------------------------------------
// ReadFrameCsv.

constexpr const char* kCsvHeader =
    "# pmcorr-trace v1 start=0 period=60\n"
    "# measurement,1,CpuUtilization,cpu@a\n"
    "# measurement,1,RequestRate,req@a\n"
    "time,cpu@a,req@a\n";

TEST(CsvErrors, ValidTraceLoadsThroughStreamOverload) {
  std::istringstream in(std::string(kCsvHeader) +
                        "0,50,10\n60,51,11\n120,nan,12\n");
  const MeasurementFrame frame = ReadFrameCsv(in);
  EXPECT_EQ(frame.MeasurementCount(), 2u);
  EXPECT_EQ(frame.SampleCount(), 3u);
  // NaN is the missing-sample marker and must survive the parse.
  EXPECT_TRUE(std::isnan(frame.Value(MeasurementId(0), 2)));
}

TEST(CsvErrors, InfinityRejected) {
  std::istringstream in(std::string(kCsvHeader) + "0,inf,10\n");
  EXPECT_THROW((void)ReadFrameCsv(in), std::runtime_error);
}

TEST(CsvErrors, RowWidthMismatchRejected) {
  std::istringstream in(std::string(kCsvHeader) + "0,50\n");
  EXPECT_THROW((void)ReadFrameCsv(in), std::runtime_error);
}

TEST(CsvErrors, TimestampOverflowRejected) {
  std::istringstream in(
      "# pmcorr-trace v1 start=9223372036854775000 period=1000\n"
      "# measurement,1,CpuUtilization,cpu@a\n"
      "time,cpu@a\n0,50\n1,51\n");
  EXPECT_THROW((void)ReadFrameCsv(in), std::runtime_error);
}

TEST(CsvErrors, NegativeStartAndBadPeriodRejected) {
  std::istringstream a(
      "# pmcorr-trace v1 start=-5 period=60\ntime\n");
  EXPECT_THROW((void)ReadFrameCsv(a), std::runtime_error);
  std::istringstream b(
      "# pmcorr-trace v1 start=0 period=0\ntime\n");
  EXPECT_THROW((void)ReadFrameCsv(b), std::runtime_error);
}

// ---------------------------------------------------------------------
// ReadSnapshotStreamJsonl.

std::vector<SystemSnapshot> SampleSnapshots() {
  std::vector<SystemSnapshot> snaps(3);
  Rng rng(23);
  for (std::size_t t = 0; t < snaps.size(); ++t) {
    SystemSnapshot& snap = snaps[t];
    snap.sample = t;
    snap.time = 1700000000 + static_cast<TimePoint>(60 * t);
    snap.pair_scores.resize(4);
    snap.measurement_scores.resize(3);
    for (auto& score : snap.pair_scores) {
      if (rng.Uniform() < 0.8) score = rng.Uniform();
    }
    for (auto& score : snap.measurement_scores) {
      if (rng.Uniform() < 0.8) score = rng.Uniform();
    }
    if (t > 0) snap.system_score = rng.Uniform();
    if (t == 2) snap.alarmed_pairs = {1, 3};
    snap.outlier_pairs = t;
    snap.extended_pairs = 0;
  }
  return snaps;
}

TEST(JsonlErrors, StreamRoundTripsBitExactly) {
  const std::vector<SystemSnapshot> original = SampleSnapshots();
  std::stringstream stream;
  WriteSnapshotStreamJsonl(original, stream);
  const std::vector<SystemSnapshot> loaded =
      ReadSnapshotStreamJsonl(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t t = 0; t < original.size(); ++t) {
    EXPECT_EQ(loaded[t].sample, original[t].sample);
    EXPECT_EQ(loaded[t].time, original[t].time);
    EXPECT_EQ(loaded[t].system_score, original[t].system_score);
    EXPECT_EQ(loaded[t].pair_scores, original[t].pair_scores);
    EXPECT_EQ(loaded[t].measurement_scores,
              original[t].measurement_scores);
    EXPECT_EQ(loaded[t].alarmed_pairs, original[t].alarmed_pairs);
    EXPECT_EQ(loaded[t].outlier_pairs, original[t].outlier_pairs);
    EXPECT_EQ(loaded[t].extended_pairs, original[t].extended_pairs);
  }
}

void ExpectJsonlThrows(const std::string& text) {
  std::istringstream in(text);
  EXPECT_THROW((void)ReadSnapshotStreamJsonl(in), std::runtime_error)
      << text;
}

TEST(JsonlErrors, MalformedLinesRejected) {
  const std::string good =
      "{\"sample\":0,\"t\":100,\"q\":null,\"qa\":[null],"
      "\"pair_scores\":[0.5,null],\"alarmed\":[],\"outliers\":0,"
      "\"extended\":0}\n";
  {
    std::istringstream in(good);
    EXPECT_NO_THROW((void)ReadSnapshotStreamJsonl(in));
  }
  ExpectJsonlThrows("not json\n");
  ExpectJsonlThrows(Replace(good, "\"q\":null", "\"q\":1e999"));  // inf
  ExpectJsonlThrows(Replace(good, "\"q\":null", "\"q\":nan"));
  ExpectJsonlThrows(Replace(good, "\"alarmed\":[]", "\"alarmed\":[5]"));
  ExpectJsonlThrows(Replace(good, "\"alarmed\":[]", "\"alarmed\":[1,1]"));
  ExpectJsonlThrows(Replace(good, "\"outliers\":0", "\"outliers\":3"));
  ExpectJsonlThrows(Replace(good, "}\n", "}trailing\n"));
  ExpectJsonlThrows(Replace(good, "\"sample\"", "\"Sample\""));
  // Array width changing mid-stream.
  ExpectJsonlThrows(good + Replace(good, "[0.5,null]", "[0.5]"));
  // Truncations.
  for (std::size_t len = 1; len + 1 < good.size(); len += 7) {
    ExpectJsonlThrows(good.substr(0, len) + "\n");
  }
}

TEST(JsonlErrors, NanScoreTextRejected) {
  // from_chars accepts "nan"/"inf" spellings; the reader must still
  // refuse them (JSON has no such numbers, and scores must be finite).
  ExpectJsonlThrows(
      "{\"sample\":0,\"t\":1,\"q\":null,\"qa\":[nan],"
      "\"pair_scores\":[],\"alarmed\":[],\"outliers\":0,"
      "\"extended\":0}\n");
}

}  // namespace
}  // namespace pmcorr
