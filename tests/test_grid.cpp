// Tests for Grid2D: cell indexing, containment and online extension.
#include <gtest/gtest.h>

#include "grid/grid.h"

namespace pmcorr {
namespace {

Grid2D MakeGrid(std::size_t rows = 3, std::size_t cols = 3) {
  return Grid2D(IntervalList::Uniform(0.0, 3.0, rows),
                IntervalList::Uniform(0.0, 30.0, cols));
}

TEST(Grid2D, RowMajorIndexingMatchesFigure3) {
  // Figure 3 lays a 3x3 grid out as c1..c3 / c4..c6 / c7..c9 (row-major,
  // 0-based here).
  const Grid2D grid = MakeGrid();
  EXPECT_EQ(grid.CellCount(), 9u);
  EXPECT_EQ(grid.IndexOf({0, 0}), 0u);
  EXPECT_EQ(grid.IndexOf({0, 2}), 2u);
  EXPECT_EQ(grid.IndexOf({1, 1}), 4u);  // c5, the center
  EXPECT_EQ(grid.IndexOf({2, 2}), 8u);
  const CellCoord c = grid.CoordOf(5);
  EXPECT_EQ(c.i1, 1);
  EXPECT_EQ(c.i2, 2);
}

TEST(Grid2D, CellOfLocatesPoints) {
  const Grid2D grid = MakeGrid();
  EXPECT_EQ(grid.CellOf({0.5, 5.0}), 0u);
  EXPECT_EQ(grid.CellOf({1.5, 15.0}), 4u);
  EXPECT_EQ(grid.CellOf({2.999, 29.99}), 8u);
  EXPECT_FALSE(grid.CellOf({3.0, 15.0}).has_value());   // x on upper edge
  EXPECT_FALSE(grid.CellOf({-0.1, 15.0}).has_value());
  EXPECT_FALSE(grid.CellOf({1.5, 30.0}).has_value());
}

TEST(Grid2D, CellIntervals) {
  const Grid2D grid = MakeGrid();
  const Interval d1 = grid.CellIntervalDim1(4);
  const Interval d2 = grid.CellIntervalDim2(4);
  EXPECT_DOUBLE_EQ(d1.lo, 1.0);
  EXPECT_DOUBLE_EQ(d1.hi, 2.0);
  EXPECT_DOUBLE_EQ(d2.lo, 10.0);
  EXPECT_DOUBLE_EQ(d2.hi, 20.0);
}

TEST(Grid2D, WithinExtensionMargin) {
  const Grid2D grid = MakeGrid();  // r_avg = 1 and 10
  EXPECT_TRUE(grid.WithinExtensionMargin({3.5, 15.0}, 1.0, 1.0));
  EXPECT_FALSE(grid.WithinExtensionMargin({4.5, 15.0}, 1.0, 1.0));
  EXPECT_TRUE(grid.WithinExtensionMargin({4.5, 15.0}, 2.0, 1.0));
  EXPECT_TRUE(grid.WithinExtensionMargin({-0.5, -5.0}, 1.0, 1.0));
  EXPECT_FALSE(grid.WithinExtensionMargin({1.5, 70.0}, 3.0, 3.0));
}

TEST(Grid2D, ExtendAboveAddsIntervalsUntilContained) {
  Grid2D grid = MakeGrid();
  const auto ext = grid.ExtendToInclude({4.2, 15.0}, 3.0, 3.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->dim1_above, 2u);  // covers [3,4) and [4,5)
  EXPECT_EQ(ext->dim1_below + ext->dim2_below + ext->dim2_above, 0u);
  EXPECT_EQ(grid.Rows(), 5u);
  ASSERT_TRUE(grid.CellOf({4.2, 15.0}).has_value());
}

TEST(Grid2D, ExtendExactlyOnOldEdge) {
  Grid2D grid = MakeGrid();
  const auto ext = grid.ExtendToInclude({3.0, 15.0}, 1.0, 1.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->dim1_above, 1u);
  EXPECT_TRUE(grid.CellOf({3.0, 15.0}).has_value());
}

TEST(Grid2D, ExtendBelowShiftsExistingCells) {
  Grid2D grid = MakeGrid();
  const std::size_t old_cols = grid.Cols();
  const std::size_t old_center = *grid.CellOf({1.5, 15.0});
  const auto ext = grid.ExtendToInclude({-0.7, 15.0}, 1.0, 1.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->dim1_below, 1u);
  const std::size_t new_center =
      Grid2D::RemapIndex(old_center, old_cols, *ext);
  EXPECT_EQ(grid.CellOf({1.5, 15.0}), new_center);
}

TEST(Grid2D, ExtendBothDimensionsAtOnce) {
  Grid2D grid = MakeGrid();
  const std::size_t old_cols = grid.Cols();
  const std::size_t old_cell = *grid.CellOf({0.5, 25.0});
  const auto ext = grid.ExtendToInclude({3.4, 31.0}, 2.0, 2.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_GE(ext->dim1_above, 1u);
  EXPECT_GE(ext->dim2_above, 1u);
  EXPECT_EQ(grid.CellOf({0.5, 25.0}),
            Grid2D::RemapIndex(old_cell, old_cols, *ext));
}

TEST(Grid2D, OutlierRefusedAndGridUnchanged) {
  Grid2D grid = MakeGrid();
  const auto ext = grid.ExtendToInclude({100.0, 15.0}, 3.0, 3.0);
  EXPECT_FALSE(ext.has_value());
  EXPECT_EQ(grid.Rows(), 3u);
  EXPECT_EQ(grid.Cols(), 3u);
}

TEST(Grid2D, AlreadyContainedReturnsEmptyExtension) {
  Grid2D grid = MakeGrid();
  const auto ext = grid.ExtendToInclude({1.5, 15.0}, 1.0, 1.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_TRUE(ext->Empty());
  EXPECT_EQ(grid.CellCount(), 9u);
}

TEST(Grid2D, RAvgFixedAtConstructionTime) {
  // Extensions use the initialization-time average width (the paper
  // computes r_avg offline); growing the grid must not change it.
  Grid2D grid = MakeGrid();
  const double r1 = grid.InitialAvgWidthDim1();
  ASSERT_TRUE(grid.ExtendToInclude({3.5, 15.0}, 3.0, 3.0).has_value());
  EXPECT_DOUBLE_EQ(grid.InitialAvgWidthDim1(), r1);
}

TEST(Grid2D, RemapIndexIdentityForEmptyExtension) {
  const GridExtension none;
  EXPECT_EQ(Grid2D::RemapIndex(7, 3, none), 7u);
}

TEST(Grid2D, DeserializationCtorPreservesRAvg) {
  const Grid2D grid(IntervalList::Uniform(0.0, 3.0, 3),
                    IntervalList::Uniform(0.0, 30.0, 3), 0.5, 7.0);
  EXPECT_DOUBLE_EQ(grid.InitialAvgWidthDim1(), 0.5);
  EXPECT_DOUBLE_EQ(grid.InitialAvgWidthDim2(), 7.0);
}

}  // namespace
}  // namespace pmcorr
