// Tests for the baseline detectors, including the paper's motivating
// failure modes (non-linear pairs break linear invariants; floods fool
// per-metric thresholds).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/ewma.h"
#include "baselines/gmm.h"
#include "baselines/linear_invariant.h"
#include "baselines/zscore.h"
#include "common/rng.h"

namespace pmcorr {
namespace {

void LinearPair(std::size_t n, std::vector<double>* xs,
                std::vector<double>* ys, std::uint64_t seed = 1) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*xs)[i] = rng.Uniform(0.0, 100.0);
    (*ys)[i] = 2.0 * (*xs)[i] + 10.0 + rng.Normal(0.0, 1.0);
  }
}

void SaturatingPair(std::size_t n, std::vector<double>* xs,
                    std::vector<double>* ys, std::uint64_t seed = 2) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*xs)[i] = rng.Uniform(0.0, 300.0);
    (*ys)[i] = 100.0 * (*xs)[i] / ((*xs)[i] + 30.0) + rng.Normal(0.0, 0.5);
  }
}

TEST(LinearInvariant, LearnsLinearPair) {
  std::vector<double> xs, ys;
  LinearPair(800, &xs, &ys);
  const auto inv = LinearInvariant::Learn(xs, ys);
  ASSERT_TRUE(inv.has_value());
  EXPECT_NEAR(inv->Slope(), 2.0, 0.05);
  EXPECT_NEAR(inv->Intercept(), 10.0, 2.0);
  EXPECT_GT(inv->RSquared(), 0.99);
}

TEST(LinearInvariant, NormalPointsScoreHighBrokenPointsAlarm) {
  std::vector<double> xs, ys;
  LinearPair(800, &xs, &ys);
  const auto inv = LinearInvariant::Learn(xs, ys);
  ASSERT_TRUE(inv.has_value());
  const auto good = inv->Evaluate(50.0, 110.5);
  EXPECT_FALSE(good.alarm);
  EXPECT_GT(good.score, 0.7);
  const auto bad = inv->Evaluate(50.0, 150.0);  // 40 off the line
  EXPECT_TRUE(bad.alarm);
  EXPECT_DOUBLE_EQ(bad.score, 0.0);
}

TEST(LinearInvariant, RefusesNonlinearPair) {
  // The paper's point: strongly saturating pairs hold no linear
  // invariant at a strict R^2 bar.
  std::vector<double> xs, ys;
  SaturatingPair(800, &xs, &ys);
  LinearInvariantConfig config;
  config.min_r_squared = 0.97;
  EXPECT_FALSE(LinearInvariant::Learn(xs, ys, config).has_value());
}

TEST(LinearInvariant, RefusesConstantX) {
  const std::vector<double> xs(10, 5.0);
  const std::vector<double> ys = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_FALSE(LinearInvariant::Learn(xs, ys).has_value());
}

TEST(Gmm, FitsTwoWellSeparatedClusters) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 600; ++i) {
    if (i % 2 == 0) {
      xs.push_back(rng.Normal(0.0, 1.0));
      ys.push_back(rng.Normal(0.0, 1.0));
    } else {
      xs.push_back(rng.Normal(20.0, 1.0));
      ys.push_back(rng.Normal(20.0, 1.0));
    }
  }
  GmmConfig config;
  config.components = 2;
  const auto model = GaussianMixtureModel::Fit(xs, ys, config);
  ASSERT_EQ(model.Components().size(), 2u);
  // One mean near (0,0), the other near (20,20).
  const auto& c0 = model.Components()[0];
  const auto& c1 = model.Components()[1];
  const double lo_mean = std::min(c0.mean_x, c1.mean_x);
  const double hi_mean = std::max(c0.mean_x, c1.mean_x);
  EXPECT_NEAR(lo_mean, 0.0, 1.0);
  EXPECT_NEAR(hi_mean, 20.0, 1.0);
  EXPECT_NEAR(c0.weight + c1.weight, 1.0, 1e-6);
}

TEST(Gmm, ClusterInteriorNormalFarPointAnomalous) {
  Rng rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.Normal(10.0, 2.0));
    ys.push_back(rng.Normal(-5.0, 1.0));
  }
  const auto model = GaussianMixtureModel::Fit(xs, ys, {});
  EXPECT_FALSE(model.IsAnomaly(10.0, -5.0));
  EXPECT_GT(model.Score(10.0, -5.0), 0.5);
  EXPECT_TRUE(model.IsAnomaly(100.0, 100.0));
  EXPECT_DOUBLE_EQ(model.Score(100.0, 100.0), 0.0);
}

TEST(Gmm, MahalanobisAndDensityConsistent) {
  GaussianComponent comp;
  comp.mean_x = 1.0;
  comp.mean_y = 2.0;
  comp.cov_xx = 4.0;
  comp.cov_yy = 1.0;
  comp.cov_xy = 0.0;
  EXPECT_DOUBLE_EQ(comp.Mahalanobis2(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(comp.Mahalanobis2(3.0, 2.0), 1.0);   // 2 sigma in x
  EXPECT_DOUBLE_EQ(comp.Mahalanobis2(1.0, 3.0), 1.0);   // 1 sigma in y
  EXPECT_GT(comp.LogDensity(1.0, 2.0), comp.LogDensity(3.0, 3.0));
}

TEST(Gmm, DeterministicForSeed) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(rng.Normal(0.0, 1.0));
    ys.push_back(rng.Normal(0.0, 1.0));
  }
  const auto a = GaussianMixtureModel::Fit(xs, ys, {});
  const auto b = GaussianMixtureModel::Fit(xs, ys, {});
  EXPECT_DOUBLE_EQ(a.LogDensity(0.3, -0.2), b.LogDensity(0.3, -0.2));
}

TEST(ZScore, LearnsMomentsAndAlarms) {
  Rng rng(11);
  std::vector<double> history(2000);
  for (double& v : history) v = rng.Normal(50.0, 5.0);
  const auto det = ZScoreDetector::Learn(history, 3.0);
  EXPECT_NEAR(det.Mean(), 50.0, 0.5);
  EXPECT_NEAR(det.Sigma(), 5.0, 0.3);
  EXPECT_FALSE(det.Alarm(55.0));
  EXPECT_TRUE(det.Alarm(80.0));
  EXPECT_TRUE(det.Alarm(20.0));
  EXPECT_NEAR(det.Z(55.0), 1.0, 0.15);
}

TEST(ZScore, ConstantHistoryDoesNotDivideByZero) {
  const std::vector<double> history(10, 5.0);
  const auto det = ZScoreDetector::Learn(history);
  EXPECT_TRUE(det.Alarm(6.0));  // any deviation is infinite sigmas
  EXPECT_FALSE(det.Alarm(5.0));
}

TEST(Ewma, InControlDataRarelyAlarms) {
  Rng rng(31);
  std::vector<double> history(3000);
  for (double& v : history) v = rng.Normal(100.0, 8.0);
  auto det = EwmaDetector::Learn(history);
  EXPECT_NEAR(det.Mean(), 100.0, 0.5);
  int alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    if (det.Observe(rng.Normal(100.0, 8.0)).alarm) ++alarms;
  }
  EXPECT_LT(alarms, 40);  // ~3-sigma chart: rare false alarms
}

TEST(Ewma, CatchesSmallPersistentShift) {
  // A +1-sigma persistent shift is hard for a 3-sigma z-score but easy
  // for an EWMA chart.
  Rng rng(33);
  std::vector<double> history(3000);
  for (double& v : history) v = rng.Normal(50.0, 4.0);
  auto ewma = EwmaDetector::Learn(history);
  const auto z = ZScoreDetector::Learn(history, 3.0);

  int ewma_first = -1, z_alarms = 0;
  for (int i = 0; i < 120; ++i) {
    const double v = rng.Normal(54.0, 4.0);  // +1 sigma shift
    if (ewma.Observe(v).alarm && ewma_first < 0) ewma_first = i;
    if (z.Alarm(v)) ++z_alarms;
  }
  EXPECT_GE(ewma_first, 0);    // the chart catches the shift...
  EXPECT_LT(ewma_first, 60);   // ...reasonably quickly
  EXPECT_LT(z_alarms, 10);     // the z-score mostly sleeps through it
}

TEST(Ewma, ResetRestartsTheChart) {
  Rng rng(35);
  std::vector<double> history(1000);
  for (double& v : history) v = rng.Normal(0.0, 1.0);
  auto det = EwmaDetector::Learn(history);
  for (int i = 0; i < 50; ++i) det.Observe(5.0);  // drive it far out
  EXPECT_TRUE(det.Observe(5.0).alarm);
  det.Reset();
  EXPECT_FALSE(det.Observe(0.1).alarm);  // back in control
}

TEST(Ewma, StartupLimitsTighterThanAsymptotic) {
  Rng rng(37);
  std::vector<double> history(1000);
  for (double& v : history) v = rng.Normal(0.0, 1.0);
  auto det = EwmaDetector::Learn(history);
  // First observation: sigma_z = sigma*lambda exactly; a value whose
  // EWMA lands at 3.5 * lambda * sigma must already alarm.
  const auto eval = det.Observe(3.5);
  EXPECT_GT(eval.sigmas, 3.0);
  EXPECT_TRUE(eval.alarm);
}

TEST(Baselines, FloodFoolsZScoreButNotInvariant) {
  // A legitimate flood doubles both measurements: the z-score detector
  // alarms on each metric, the correlation (linear invariant) holds.
  std::vector<double> xs, ys;
  LinearPair(1000, &xs, &ys, 13);
  const auto inv = LinearInvariant::Learn(xs, ys);
  ASSERT_TRUE(inv.has_value());
  const auto zx = ZScoreDetector::Learn(xs, 3.0);

  const double flood_x = 250.0;               // far above training range
  const double flood_y = 2.0 * flood_x + 10.0;  // correlation intact
  EXPECT_TRUE(zx.Alarm(flood_x));
  EXPECT_FALSE(inv->Evaluate(flood_x, flood_y).alarm);
}

}  // namespace
}  // namespace pmcorr
