// Scorecard conventions and golden detection outcomes. The golden tests
// pin the full per-baseline DetectionOutcome on one fixed scenario and
// seed (smoke paper_baseline): alarm/detected/false-alarm window counts,
// latency and localization rank. They exist to catch silent drift — any
// change to calibration, window extraction or a baseline's reduction
// shows up here as an exact-count diff, not a vague metric wiggle.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/scorecard.h"

namespace pmcorr {
namespace {

MachineScore Score(int machine, double score) {
  MachineScore ms;
  ms.machine = MachineId(machine);
  ms.score = score;
  return ms;
}

TEST(LocalizationRank, RankedMachinesArePositionOneBased) {
  // Suspects first: lower score = more suspect.
  const std::vector<MachineScore> ranking = {Score(4, 0.2), Score(1, 0.5),
                                             Score(9, 0.9)};
  EXPECT_EQ(LocalizationRankOf(ranking, MachineId(4)), 1.0);
  EXPECT_EQ(LocalizationRankOf(ranking, MachineId(1)), 2.0);
  EXPECT_EQ(LocalizationRankOf(ranking, MachineId(9)), 3.0);
}

TEST(LocalizationRank, UnrankedMachineSortsAfterEveryRankedOne) {
  const std::vector<MachineScore> ranking = {Score(4, 0.2), Score(1, 0.5)};
  // Machine 7 exists but every measurement was disengaged: worse than
  // every ranked machine, by exactly one position.
  EXPECT_EQ(LocalizationRankOf(ranking, MachineId(7)),
            static_cast<double>(ranking.size() + 1));
  EXPECT_EQ(LocalizationRankOf({}, MachineId(7)), 1.0);
}

TEST(LocalizationRank, InvalidMachineReadsNotApplicable) {
  const std::vector<MachineScore> ranking = {Score(4, 0.2)};
  EXPECT_EQ(LocalizationRankOf(ranking, MachineId()), kRankNotApplicable);
}

TEST(ScorecardConventions, LatencyFallbackNeverCollidesWithRealLatency) {
  // Real latencies are non-negative multiples of the sample period.
  EXPECT_LT(kLatencyUnavailableSeconds, 0.0);
  DetectionOutcome nothing;
  EXPECT_EQ(nothing.MeanLatencyOr(kLatencyUnavailableSeconds),
            kLatencyUnavailableSeconds);
}

TEST(ScorecardDetectorsOrder, PmcorrFirstThenBaselines) {
  const auto& detectors = ScorecardDetectors();
  ASSERT_EQ(detectors.size(), 6u);
  EXPECT_EQ(detectors[0], "pmcorr");
  EXPECT_EQ(detectors[1], "ewma");
  EXPECT_EQ(detectors[2], "zscore");
  EXPECT_EQ(detectors[3], "gmm");
  EXPECT_EQ(detectors[4], "subspace");
  EXPECT_EQ(detectors[5], "linear_invariant");
}

TEST(ScenarioSuiteShape, SmokeSuiteIsDeterministicAndComplete) {
  const ScenarioSuite a = MakeScenarioSuite(SmokeSuiteConfig());
  const ScenarioSuite b = MakeScenarioSuite(SmokeSuiteConfig());
  ASSERT_GE(a.scenarios.size(), 8u);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());

  bool has_benign = false, has_join = false, has_leave = false;
  bool has_cascade = false;
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    const QualityScenario& sa = a.scenarios[i];
    const QualityScenario& sb = b.scenarios[i];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.truth.size(), sb.truth.size());
    EXPECT_EQ(sa.spec.seed, sb.spec.seed);

    if (sa.benign) has_benign = true;
    for (const auto& change : sa.topology_changes) {
      (change.join ? has_join : has_leave) = true;
    }
    if (sa.spec.faults.size() >= 3 && !sa.benign) has_cascade = true;

    // Benign scenarios have empty truth and no problem machine; faulted
    // ones have both.
    EXPECT_EQ(sa.truth.empty(), sa.benign) << sa.name;
    EXPECT_EQ(sa.problem_machine.valid(), !sa.benign) << sa.name;
  }
  EXPECT_TRUE(has_benign);
  EXPECT_TRUE(has_join);
  EXPECT_TRUE(has_leave);
  EXPECT_TRUE(has_cascade);
}

// Golden outcomes on the pinned smoke paper_baseline scenario. One
// scorecard run shared by every golden test (the run takes seconds).
class ScorecardGolden : public ::testing::Test {
 protected:
  static const ScenarioResult& Result() {
    static const ScenarioResult result = [] {
      ScorecardConfig config;
      config.suite = SmokeSuiteConfig();
      config.mode = "smoke";
      const ScenarioSuite suite = MakeScenarioSuite(config.suite);
      const QualityScenario* scenario = suite.Find("paper_baseline");
      if (scenario == nullptr) {
        throw std::runtime_error("paper_baseline missing from smoke suite");
      }
      return RunScenarioScorecard(*scenario, config);
    }();
    return result;
  }

  static const DetectorScore& Of(const std::string& name) {
    for (const auto& d : Result().detectors) {
      if (d.detector == name) return d;
    }
    throw std::runtime_error("detector missing: " + name);
  }
};

TEST_F(ScorecardGolden, PmcorrDetectsCleanlyWithOneWindow) {
  const DetectorScore& d = Of("pmcorr");
  EXPECT_EQ(d.outcome.truth_windows, 1u);
  EXPECT_EQ(d.outcome.detected, 1u);
  EXPECT_EQ(d.outcome.alarm_windows, 1u);
  EXPECT_EQ(d.outcome.false_alarms, 0u);
  EXPECT_EQ(d.outcome.MeanLatencyOr(kLatencyUnavailableSeconds), 360.0);
  EXPECT_EQ(d.localization_rank, 2.0);
}

TEST_F(ScorecardGolden, BaselineWindowCountsArePinned) {
  // {alarm_windows, detected, false_alarms} per baseline, pinned on the
  // smoke seed. Update deliberately when a baseline's reduction changes.
  struct Pin {
    const char* name;
    std::size_t alarm_windows, detected, false_alarms;
  };
  const Pin pins[] = {
      {"ewma", 7, 1, 6},    {"zscore", 5, 1, 0},
      {"gmm", 6, 1, 5},     {"subspace", 2, 1, 0},
      {"linear_invariant", 16, 1, 15},
  };
  for (const Pin& pin : pins) {
    const DetectorScore& d = Of(pin.name);
    EXPECT_EQ(d.outcome.truth_windows, 1u) << pin.name;
    EXPECT_EQ(d.outcome.alarm_windows, pin.alarm_windows) << pin.name;
    EXPECT_EQ(d.outcome.detected, pin.detected) << pin.name;
    EXPECT_EQ(d.outcome.false_alarms, pin.false_alarms) << pin.name;
  }
}

TEST_F(ScorecardGolden, JsonSerializesFlatNumericSchema) {
  ScorecardConfig config;
  config.suite = SmokeSuiteConfig();
  config.mode = "smoke";
  const std::string path =
      ::testing::TempDir() + "scorecard_golden_quality.json";
  WriteScorecardJson(path, config, {Result()});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"bench\": \"quality\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"smoke\""), std::string::npos);
  for (const std::string& detector : ScorecardDetectors()) {
    EXPECT_NE(json.find("\"paper_baseline." + detector + ".f1\""),
              std::string::npos)
        << detector;
    EXPECT_NE(json.find("\"" + detector + ".mean_f1\""), std::string::npos)
        << detector;
  }
}

}  // namespace
}  // namespace pmcorr
