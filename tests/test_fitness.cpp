// Tests for the fitness score (Section 5), pinning the worked example of
// Figure 11.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/fitness.h"

namespace pmcorr {
namespace {

TEST(RankFitness, Figure11WorkedExample) {
  // Figure 11: probabilities over 6 cells ->
  // ranks {c1:5, c2:2, c3:3, c4:1, c5:4, c6:6} ->
  // scores {0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667}.
  const std::vector<double> probs = {0.1116, 0.2422, 0.2095,
                                     0.2538, 0.1734, 0.0094};
  const std::vector<std::size_t> expected_ranks = {5, 2, 3, 1, 4, 6};
  const std::vector<double> expected_scores = {0.3333, 0.8333, 0.6667,
                                               1.0000, 0.5000, 0.1667};
  for (std::size_t j = 0; j < probs.size(); ++j) {
    std::size_t rank = 1;
    for (double p : probs) {
      if (p > probs[j]) ++rank;
    }
    EXPECT_EQ(rank, expected_ranks[j]);
    EXPECT_NEAR(RankFitness(rank, probs.size()), expected_scores[j], 5e-5);
  }
}

TEST(RankFitness, Boundaries) {
  EXPECT_DOUBLE_EQ(RankFitness(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(RankFitness(10, 10), 0.1);
  EXPECT_DOUBLE_EQ(RankFitness(1, 1), 1.0);
}

TEST(RankFitness, MonotoneDecreasingInRank) {
  for (std::size_t s : {2u, 5u, 100u}) {
    for (std::size_t r = 1; r < s; ++r) {
      EXPECT_GT(RankFitness(r, s), RankFitness(r + 1, s));
    }
  }
}

TEST(AggregateScores, SkipsDisengaged) {
  const std::vector<std::optional<double>> scores = {0.5, std::nullopt, 1.0};
  const auto q = AggregateScores(scores);
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(*q, 0.75);
}

TEST(AggregateScores, AllDisengagedIsNullopt) {
  const std::vector<std::optional<double>> scores = {std::nullopt,
                                                     std::nullopt};
  EXPECT_FALSE(AggregateScores(scores).has_value());
  EXPECT_FALSE(AggregateScores(std::span<const std::optional<double>>{})
                   .has_value());
}

TEST(AggregateScores, DenseOverload) {
  const std::vector<double> scores = {0.2, 0.4, 0.6};
  EXPECT_NEAR(AggregateScores(scores), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(AggregateScores(std::span<const double>{}), 0.0);
}

TEST(ScoreAverager, TracksMean) {
  ScoreAverager avg;
  EXPECT_EQ(avg.Count(), 0u);
  EXPECT_DOUBLE_EQ(avg.Mean(), 0.0);
  avg.Add(1.0);
  avg.Add(0.5);
  avg.Add(std::optional<double>{});      // ignored
  avg.Add(std::optional<double>{0.0});   // counted
  EXPECT_EQ(avg.Count(), 3u);
  EXPECT_DOUBLE_EQ(avg.Mean(), 0.5);
}

}  // namespace
}  // namespace pmcorr
