// Tests for detection-quality evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "engine/evaluation.h"

namespace pmcorr {
namespace {

ScoreWindow Alarm(TimePoint start, TimePoint end) {
  ScoreWindow w;
  w.start = start;
  w.end = end;
  return w;
}

TEST(EvaluateDetection, PerfectDetection) {
  const std::vector<LabeledWindow> truth = {{100, 200}, {500, 600}};
  const std::vector<ScoreWindow> alarms = {Alarm(110, 150), Alarm(505, 520)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 2u);
  EXPECT_EQ(outcome.missed, 0u);
  EXPECT_EQ(outcome.false_alarms, 0u);
  EXPECT_DOUBLE_EQ(outcome.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.F1(), 1.0);
  ASSERT_TRUE(outcome.mean_latency_seconds.has_value());
  EXPECT_DOUBLE_EQ(*outcome.mean_latency_seconds, (10.0 + 5.0) / 2.0);
}

TEST(EvaluateDetection, MissAndFalseAlarm) {
  const std::vector<LabeledWindow> truth = {{100, 200}};
  const std::vector<ScoreWindow> alarms = {Alarm(700, 710)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 0u);
  EXPECT_EQ(outcome.missed, 1u);
  EXPECT_EQ(outcome.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(outcome.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.F1(), 0.0);
  EXPECT_FALSE(outcome.mean_latency_seconds.has_value());
}

TEST(EvaluateDetection, GraceExtendsMatching) {
  const std::vector<LabeledWindow> truth = {{100, 200}};
  const std::vector<ScoreWindow> alarms = {Alarm(210, 220)};
  EXPECT_EQ(EvaluateDetection(alarms, truth, 0).detected, 0u);
  const auto with_grace = EvaluateDetection(alarms, truth, 30);
  EXPECT_EQ(with_grace.detected, 1u);
  EXPECT_EQ(with_grace.false_alarms, 0u);
}

TEST(EvaluateDetection, FirstOverlappingAlarmSetsLatency) {
  const std::vector<LabeledWindow> truth = {{100, 300}};
  const std::vector<ScoreWindow> alarms = {Alarm(250, 260), Alarm(120, 130)};
  const auto outcome = EvaluateDetection(alarms, truth);
  ASSERT_TRUE(outcome.mean_latency_seconds.has_value());
  EXPECT_DOUBLE_EQ(*outcome.mean_latency_seconds, 20.0);  // earliest alarm
}

TEST(EvaluateDetection, EmptyTruthAndEmptyAlarms) {
  const auto neither = EvaluateDetection({}, {});
  EXPECT_DOUBLE_EQ(neither.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(neither.Recall(), 1.0);

  const auto only_alarms = EvaluateDetection({Alarm(0, 10)}, {});
  EXPECT_EQ(only_alarms.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(only_alarms.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(only_alarms.Recall(), 1.0);
}

TEST(EvaluateDetection, OneAlarmCoveringTwoTruths) {
  const std::vector<LabeledWindow> truth = {{100, 200}, {150, 400}};
  const std::vector<ScoreWindow> alarms = {Alarm(160, 180)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 2u);
  EXPECT_EQ(outcome.false_alarms, 0u);
}

TEST(SweepThresholds, MonotoneAlarmCounts) {
  // Score dips at samples 5-7 (0.3) and 15 (0.6); base 0.95.
  std::vector<std::optional<double>> scores(20, 0.95);
  scores[5] = scores[6] = scores[7] = 0.3;
  scores[15] = 0.6;
  const std::vector<LabeledWindow> truth = {{5 * 60, 8 * 60}};
  const std::vector<double> thresholds = {0.2, 0.5, 0.7, 0.99};
  const auto sweep =
      SweepThresholds(scores, 0, 60, truth, thresholds);
  ASSERT_EQ(sweep.size(), 4u);
  // 0.2: nothing below -> no alarms, miss.
  EXPECT_EQ(sweep[0].outcome.alarm_windows, 0u);
  EXPECT_EQ(sweep[0].outcome.detected, 0u);
  // 0.5: exactly the dip -> perfect.
  EXPECT_EQ(sweep[1].outcome.alarm_windows, 1u);
  EXPECT_EQ(sweep[1].outcome.detected, 1u);
  EXPECT_EQ(sweep[1].outcome.false_alarms, 0u);
  // 0.7: dip + the 0.6 sample -> one false alarm.
  EXPECT_EQ(sweep[2].outcome.alarm_windows, 2u);
  EXPECT_EQ(sweep[2].outcome.false_alarms, 1u);
  // 0.99: everything alarms as one giant window covering the truth.
  EXPECT_DOUBLE_EQ(sweep[3].outcome.Recall(), 1.0);
  EXPECT_EQ(sweep[3].outcome.alarm_windows, 1u);
}

// --- Randomized properties -------------------------------------------
//
// The scorecard leans on EvaluateDetection/SweepThresholds for every
// number it publishes, so the counting identities must hold for any
// window arrangement, not just the curated examples above.

std::vector<LabeledWindow> RandomTruth(Rng& rng) {
  std::vector<LabeledWindow> truth;
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 4));
  for (std::size_t i = 0; i < n; ++i) {
    const TimePoint start = rng.UniformInt(0, 5000);
    truth.push_back({start, start + rng.UniformInt(1, 800)});
  }
  return truth;
}

std::vector<ScoreWindow> RandomAlarms(Rng& rng) {
  std::vector<ScoreWindow> alarms;
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 6));
  for (std::size_t i = 0; i < n; ++i) {
    const TimePoint start = rng.UniformInt(0, 5000);
    alarms.push_back(Alarm(start, start + rng.UniformInt(1, 400)));
  }
  return alarms;
}

TEST(EvaluateDetectionProperty, CountingIdentitiesHoldForRandomWindows) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(CombineSeed(0xe7a1, seed));
    const auto truth = RandomTruth(rng);
    const auto alarms = RandomAlarms(rng);
    const Duration grace = rng.UniformInt(0, 120);
    const auto outcome = EvaluateDetection(alarms, truth, grace);

    EXPECT_EQ(outcome.truth_windows, truth.size());
    EXPECT_EQ(outcome.detected + outcome.missed, outcome.truth_windows);
    EXPECT_EQ(outcome.alarm_windows, alarms.size());
    EXPECT_LE(outcome.false_alarms, outcome.alarm_windows);
    EXPECT_GE(outcome.Precision(), 0.0);
    EXPECT_LE(outcome.Precision(), 1.0);
    EXPECT_GE(outcome.Recall(), 0.0);
    EXPECT_LE(outcome.Recall(), 1.0);
    EXPECT_GE(outcome.F1(), 0.0);
    EXPECT_LE(outcome.F1(), 1.0);
    // The harmonic mean is bracketed by its components.
    const double lo = std::min(outcome.Precision(), outcome.Recall());
    const double hi = std::max(outcome.Precision(), outcome.Recall());
    EXPECT_GE(outcome.F1(), lo - 1e-12);
    EXPECT_LE(outcome.F1(), hi + 1e-12);
    // Latency exists iff something was detected.
    EXPECT_EQ(outcome.mean_latency_seconds.has_value(),
              outcome.detected > 0);
    EXPECT_EQ(outcome.MeanLatencyOr(-1.0) == -1.0, outcome.detected == 0);
  }
}

TEST(EvaluateDetectionProperty, GraceIsMonotone) {
  // Widening the grace margin can only convert misses to detections and
  // false alarms to matches — never the reverse.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(CombineSeed(0x97ace, seed));
    const auto truth = RandomTruth(rng);
    const auto alarms = RandomAlarms(rng);
    std::size_t prev_detected = 0;
    std::size_t prev_false = alarms.size();
    for (const Duration grace : {0, 60, 300, 1200}) {
      const auto outcome = EvaluateDetection(alarms, truth, grace);
      EXPECT_GE(outcome.detected, prev_detected);
      EXPECT_LE(outcome.false_alarms, prev_false);
      prev_detected = outcome.detected;
      prev_false = outcome.false_alarms;
    }
  }
}

TEST(SweepThresholdsProperty, AlarmedSamplesGrowWithThreshold) {
  // Raising the threshold can only grow the alarming sample set, so
  // recall is monotone non-decreasing across the sweep (window counts
  // are not monotone — adjacent windows merge — which is why the
  // property is stated on recall and detected, not on alarm_windows).
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(CombineSeed(0x5feed, seed));
    std::vector<std::optional<double>> scores(120);
    for (auto& s : scores) {
      if (rng.Bernoulli(0.1)) continue;  // disengaged samples stay nullopt
      s = rng.Uniform();
    }
    const std::vector<LabeledWindow> truth = {
        {rng.UniformInt(0, 3000), rng.UniformInt(3001, 7000)}};
    const std::vector<double> thresholds = {0.1, 0.3, 0.5, 0.7, 0.9};
    const auto sweep = SweepThresholds(scores, 0, 60, truth, thresholds);
    ASSERT_EQ(sweep.size(), thresholds.size());
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GE(sweep[i].outcome.Recall(), sweep[i - 1].outcome.Recall());
      EXPECT_GE(sweep[i].outcome.detected, sweep[i - 1].outcome.detected);
    }
  }
}

TEST(SweepThresholdsProperty, MinLengthFiltersShortWindows) {
  // A single alarming sample survives min_length 1 and vanishes at 2;
  // the scorecard's debounce (min_window) is exactly this knob.
  std::vector<std::optional<double>> scores(30, 0.9);
  scores[10] = 0.1;
  scores[20] = scores[21] = scores[22] = 0.1;
  const std::vector<double> thresholds = {0.5};
  const auto loose = SweepThresholds(scores, 0, 60, {}, thresholds, 1);
  const auto tight = SweepThresholds(scores, 0, 60, {}, thresholds, 2);
  EXPECT_EQ(loose[0].outcome.alarm_windows, 2u);
  EXPECT_EQ(tight[0].outcome.alarm_windows, 1u);
}

}  // namespace
}  // namespace pmcorr
