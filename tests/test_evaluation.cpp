// Tests for detection-quality evaluation.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "engine/evaluation.h"

namespace pmcorr {
namespace {

ScoreWindow Alarm(TimePoint start, TimePoint end) {
  ScoreWindow w;
  w.start = start;
  w.end = end;
  return w;
}

TEST(EvaluateDetection, PerfectDetection) {
  const std::vector<LabeledWindow> truth = {{100, 200}, {500, 600}};
  const std::vector<ScoreWindow> alarms = {Alarm(110, 150), Alarm(505, 520)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 2u);
  EXPECT_EQ(outcome.missed, 0u);
  EXPECT_EQ(outcome.false_alarms, 0u);
  EXPECT_DOUBLE_EQ(outcome.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.F1(), 1.0);
  ASSERT_TRUE(outcome.mean_latency_seconds.has_value());
  EXPECT_DOUBLE_EQ(*outcome.mean_latency_seconds, (10.0 + 5.0) / 2.0);
}

TEST(EvaluateDetection, MissAndFalseAlarm) {
  const std::vector<LabeledWindow> truth = {{100, 200}};
  const std::vector<ScoreWindow> alarms = {Alarm(700, 710)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 0u);
  EXPECT_EQ(outcome.missed, 1u);
  EXPECT_EQ(outcome.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(outcome.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.F1(), 0.0);
  EXPECT_FALSE(outcome.mean_latency_seconds.has_value());
}

TEST(EvaluateDetection, GraceExtendsMatching) {
  const std::vector<LabeledWindow> truth = {{100, 200}};
  const std::vector<ScoreWindow> alarms = {Alarm(210, 220)};
  EXPECT_EQ(EvaluateDetection(alarms, truth, 0).detected, 0u);
  const auto with_grace = EvaluateDetection(alarms, truth, 30);
  EXPECT_EQ(with_grace.detected, 1u);
  EXPECT_EQ(with_grace.false_alarms, 0u);
}

TEST(EvaluateDetection, FirstOverlappingAlarmSetsLatency) {
  const std::vector<LabeledWindow> truth = {{100, 300}};
  const std::vector<ScoreWindow> alarms = {Alarm(250, 260), Alarm(120, 130)};
  const auto outcome = EvaluateDetection(alarms, truth);
  ASSERT_TRUE(outcome.mean_latency_seconds.has_value());
  EXPECT_DOUBLE_EQ(*outcome.mean_latency_seconds, 20.0);  // earliest alarm
}

TEST(EvaluateDetection, EmptyTruthAndEmptyAlarms) {
  const auto neither = EvaluateDetection({}, {});
  EXPECT_DOUBLE_EQ(neither.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(neither.Recall(), 1.0);

  const auto only_alarms = EvaluateDetection({Alarm(0, 10)}, {});
  EXPECT_EQ(only_alarms.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(only_alarms.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(only_alarms.Recall(), 1.0);
}

TEST(EvaluateDetection, OneAlarmCoveringTwoTruths) {
  const std::vector<LabeledWindow> truth = {{100, 200}, {150, 400}};
  const std::vector<ScoreWindow> alarms = {Alarm(160, 180)};
  const auto outcome = EvaluateDetection(alarms, truth);
  EXPECT_EQ(outcome.detected, 2u);
  EXPECT_EQ(outcome.false_alarms, 0u);
}

TEST(SweepThresholds, MonotoneAlarmCounts) {
  // Score dips at samples 5-7 (0.3) and 15 (0.6); base 0.95.
  std::vector<std::optional<double>> scores(20, 0.95);
  scores[5] = scores[6] = scores[7] = 0.3;
  scores[15] = 0.6;
  const std::vector<LabeledWindow> truth = {{5 * 60, 8 * 60}};
  const std::vector<double> thresholds = {0.2, 0.5, 0.7, 0.99};
  const auto sweep =
      SweepThresholds(scores, 0, 60, truth, thresholds);
  ASSERT_EQ(sweep.size(), 4u);
  // 0.2: nothing below -> no alarms, miss.
  EXPECT_EQ(sweep[0].outcome.alarm_windows, 0u);
  EXPECT_EQ(sweep[0].outcome.detected, 0u);
  // 0.5: exactly the dip -> perfect.
  EXPECT_EQ(sweep[1].outcome.alarm_windows, 1u);
  EXPECT_EQ(sweep[1].outcome.detected, 1u);
  EXPECT_EQ(sweep[1].outcome.false_alarms, 0u);
  // 0.7: dip + the 0.6 sample -> one false alarm.
  EXPECT_EQ(sweep[2].outcome.alarm_windows, 2u);
  EXPECT_EQ(sweep[2].outcome.false_alarms, 1u);
  // 0.99: everything alarms as one giant window covering the truth.
  EXPECT_DOUBLE_EQ(sweep[3].outcome.Recall(), 1.0);
  EXPECT_EQ(sweep[3].outcome.alarm_windows, 1u);
}

}  // namespace
}  // namespace pmcorr
