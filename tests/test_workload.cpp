// Tests for the workload driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.h"
#include "telemetry/workload.h"

namespace pmcorr {
namespace {

WorkloadConfig Config() {
  WorkloadConfig config;
  config.floods_per_day = 0.0;  // most tests want the clean signal
  config.noise_sigma = 0.0;
  config.drift_fraction = 0.0;
  return config;
}

TEST(Workload, DeterministicForSameSeed) {
  const TimePoint start = ToTimePoint({2008, 5, 29});
  WorkloadConfig config;
  const WorkloadModel a(config, 42, start, 480);
  const WorkloadModel b(config, 42, start, 480);
  EXPECT_EQ(a.Rates(), b.Rates());
}

TEST(Workload, SeedChangesRealization) {
  const TimePoint start = ToTimePoint({2008, 5, 29});
  WorkloadConfig config;
  const WorkloadModel a(config, 1, start, 480);
  const WorkloadModel b(config, 2, start, 480);
  EXPECT_NE(a.Rates(), b.Rates());
}

TEST(Workload, DiurnalPeakAtConfiguredTime) {
  const WorkloadConfig config = Config();
  const TimePoint monday = ToTimePoint({2008, 6, 16});  // a Monday
  const double at_peak =
      WorkloadModel::SeasonalShape(monday + config.peak_time, config);
  const double at_4am = WorkloadModel::SeasonalShape(monday + 4 * kHour, config);
  EXPECT_NEAR(at_peak, 1.0, 1e-12);
  EXPECT_LT(at_4am, 0.3);
}

TEST(Workload, WeekendsAreQuieter) {
  const WorkloadConfig config = Config();
  const TimePoint saturday = ToTimePoint({2008, 6, 14}) + config.peak_time;
  const TimePoint monday = ToTimePoint({2008, 6, 16}) + config.peak_time;
  EXPECT_NEAR(WorkloadModel::SeasonalShape(saturday, config),
              config.weekend_factor *
                  WorkloadModel::SeasonalShape(monday, config),
              1e-12);
}

TEST(Workload, RatesArePositiveAndBounded) {
  WorkloadConfig config;  // defaults, noise on
  const WorkloadModel model(config, 7, ToTimePoint({2008, 5, 29}),
                            30 * kSamplesPerDay);
  for (double r : model.Rates()) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 30.0 * (config.base_rate + config.peak_amplitude));
  }
}

TEST(Workload, DriftRaisesLateAverages) {
  WorkloadConfig config = Config();
  config.drift_fraction = 0.5;
  const WorkloadModel model(config, 3, ToTimePoint({2008, 5, 29}),
                            28 * kSamplesPerDay);
  // Compare the same weekday two weeks apart to cancel seasonality.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < kSamplesPerDay; ++i) {
    early += model.RateAt(static_cast<std::size_t>(i));
    late += model.RateAt(static_cast<std::size_t>(i + 14 * kSamplesPerDay));
  }
  EXPECT_GT(late, early * 1.1);
}

TEST(Workload, FloodsRaiseRatesAndAreFlagged) {
  WorkloadConfig config = Config();
  config.floods_per_day = 4.0;  // make them likely
  const WorkloadModel with(config, 5, ToTimePoint({2008, 5, 29}),
                           7 * kSamplesPerDay);
  config.floods_per_day = 0.0;
  const WorkloadModel without(config, 5, ToTimePoint({2008, 5, 29}),
                              7 * kSamplesPerDay);

  std::size_t flood_samples = 0;
  for (std::size_t i = 0; i < with.SampleCount(); ++i) {
    if (with.InFlood(i)) {
      ++flood_samples;
      EXPECT_GE(with.RateAt(i), without.RateAt(i) * 0.999);
    } else {
      EXPECT_NEAR(with.RateAt(i), without.RateAt(i), 1e-9);
    }
  }
  EXPECT_GT(flood_samples, 10u);
  EXPECT_LT(flood_samples, with.SampleCount() / 2);
}

TEST(Workload, PeakRateIsBasePlusAmplitude) {
  WorkloadConfig config;
  config.base_rate = 100.0;
  config.peak_amplitude = 300.0;
  const WorkloadModel model(config, 1, 0, 10);
  EXPECT_DOUBLE_EQ(model.PeakRate(), 400.0);
}

}  // namespace
}  // namespace pmcorr
