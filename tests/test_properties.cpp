// Parameterized property tests: invariants that must hold across sweeps
// of kernels, grid shapes, seeds and configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/model.h"
#include "core/transition_matrix.h"
#include "grid/grid.h"
#include "grid/kernels.h"
#include "grid/partitioner.h"

namespace pmcorr {
namespace {

// ---------------------------------------------------------------------
// Property: every row of any prior/posterior matrix is a distribution,
// ranks are a permutation, and self-transition is the prior mode —
// across kernels x grid shapes.
// ---------------------------------------------------------------------

struct MatrixCase {
  KernelConfig kernel;
  std::size_t rows;
  std::size_t cols;
};

class MatrixProperties : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MatrixProperties, RowsAreDistributionsAndRanksPermute) {
  const MatrixCase& param = GetParam();
  const Grid2D grid(IntervalList::Uniform(0.0, 1.0, param.rows),
                    IntervalList::Uniform(0.0, 1.0, param.cols));
  const auto kernel = MakeKernel(param.kernel);
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, *kernel);

  // Feed a deterministic pseudo-random stream of transitions.
  Rng rng(777);
  for (int k = 0; k < 50; ++k) {
    const auto from = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(grid.CellCount()) - 1));
    const auto to = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(grid.CellCount()) - 1));
    matrix.ObserveTransition(from, to, grid, *kernel);
  }

  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const auto row = matrix.RowDistribution(i);
    EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-9);
    std::vector<bool> seen(grid.CellCount(), false);
    for (std::size_t j = 0; j < grid.CellCount(); ++j) {
      EXPECT_GE(row[j], 0.0);
      const std::size_t rank = matrix.RankOf(i, j);
      ASSERT_GE(rank, 1u);
      ASSERT_LE(rank, grid.CellCount());
      EXPECT_FALSE(seen[rank - 1]);
      seen[rank - 1] = true;
    }
    // The argmax always has rank 1 and the maximal probability.
    const std::size_t mode = matrix.ArgMax(i);
    EXPECT_EQ(matrix.RankOf(i, mode), 1u);
    for (std::size_t j = 0; j < grid.CellCount(); ++j) {
      EXPECT_LE(row[j], row[mode] + 1e-15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndShapes, MatrixProperties,
    ::testing::Values(
        MatrixCase{{KernelConfig::Type::kTriangular, 2.0,
                    CellMetric::kEuclidean}, 3, 3},
        MatrixCase{{KernelConfig::Type::kTriangular, 2.0,
                    CellMetric::kEuclidean}, 5, 2},
        MatrixCase{{KernelConfig::Type::kExponential, 1.5,
                    CellMetric::kChebyshev}, 4, 4},
        MatrixCase{{KernelConfig::Type::kExponential, 2.0,
                    CellMetric::kManhattan}, 2, 7},
        MatrixCase{{KernelConfig::Type::kExponential, 3.0,
                    CellMetric::kEuclidean}, 6, 6},
        MatrixCase{{KernelConfig::Type::kTriangular, 2.0,
                    CellMetric::kEuclidean}, 1, 8},
        MatrixCase{{KernelConfig::Type::kExponential, 4.0,
                    CellMetric::kEuclidean}, 8, 1}));

// ---------------------------------------------------------------------
// Property: the partitioner covers every data point and produces
// contiguous intervals — across distribution shapes and seeds.
// ---------------------------------------------------------------------

struct PartitionCase {
  int shape;  // 0 uniform, 1 gaussian, 2 bimodal, 3 exponential, 4 spiky
  std::uint64_t seed;
};

class PartitionerProperties
    : public ::testing::TestWithParam<PartitionCase> {};

std::vector<double> MakeData(const PartitionCase& param, std::size_t n) {
  Rng rng(param.seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (param.shape) {
      case 0: xs[i] = rng.Uniform(-5.0, 5.0); break;
      case 1: xs[i] = rng.Normal(10.0, 2.0); break;
      case 2:
        xs[i] = i % 2 ? rng.Normal(0.0, 0.5) : rng.Normal(8.0, 1.5);
        break;
      case 3: xs[i] = rng.Exponential(0.2); break;
      default:
        xs[i] = i % 10 == 0 ? rng.Uniform(90.0, 100.0)
                            : rng.Normal(1.0, 0.2);
        break;
    }
  }
  return xs;
}

TEST_P(PartitionerProperties, CoversDataWithContiguousIntervals) {
  const auto xs = MakeData(GetParam(), 3000);
  const IntervalList list = PartitionDimension(xs, {});

  // Contiguity and positive widths.
  for (std::size_t i = 0; i < list.Size(); ++i) {
    EXPECT_GT(list.At(i).Width(), 0.0);
    if (i + 1 < list.Size()) {
      EXPECT_DOUBLE_EQ(list.At(i).hi, list.At(i + 1).lo);
    }
  }
  // Total coverage.
  for (double x : xs) {
    const std::size_t idx = list.IndexOf(x);
    ASSERT_NE(idx, IntervalList::npos);
    EXPECT_TRUE(list.At(idx).Contains(x));
  }
  // Sane interval count.
  EXPECT_GE(list.Size(), 2u);
  EXPECT_LE(list.Size(), PartitionerConfig{}.max_intervals);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionerProperties,
    ::testing::Values(PartitionCase{0, 1}, PartitionCase{0, 2},
                      PartitionCase{1, 3}, PartitionCase{1, 4},
                      PartitionCase{2, 5}, PartitionCase{2, 6},
                      PartitionCase{3, 7}, PartitionCase{3, 8},
                      PartitionCase{4, 9}, PartitionCase{4, 10}));

// ---------------------------------------------------------------------
// Property: grid extension remapping is a bijection onto the old cells
// and preserves cell rectangles — across extension directions.
// ---------------------------------------------------------------------

struct ExtensionCase {
  double px;
  double py;
};

class ExtensionProperties : public ::testing::TestWithParam<ExtensionCase> {};

TEST_P(ExtensionProperties, RemapPreservesCellGeometry) {
  Grid2D grid(IntervalList::Uniform(0.0, 4.0, 4),
              IntervalList::Uniform(0.0, 8.0, 4));
  // Record each old cell's rectangle center.
  std::vector<Point2> centers;
  for (std::size_t c = 0; c < grid.CellCount(); ++c) {
    centers.push_back({grid.CellIntervalDim1(c).Center(),
                       grid.CellIntervalDim2(c).Center()});
  }
  const std::size_t old_cols = grid.Cols();
  const auto ext = grid.ExtendToInclude(
      {GetParam().px, GetParam().py}, 4.0, 4.0);
  ASSERT_TRUE(ext.has_value());

  // Every old cell must map to the cell containing its old center.
  std::vector<bool> hit(grid.CellCount(), false);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const std::size_t mapped = Grid2D::RemapIndex(c, old_cols, *ext);
    ASSERT_LT(mapped, grid.CellCount());
    EXPECT_FALSE(hit[mapped]);  // injective
    hit[mapped] = true;
    EXPECT_EQ(grid.CellOf(centers[c]), mapped);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Directions, ExtensionProperties,
    ::testing::Values(ExtensionCase{-1.5, 4.0},   // below dim1
                      ExtensionCase{5.5, 4.0},    // above dim1
                      ExtensionCase{2.0, -3.0},   // below dim2
                      ExtensionCase{2.0, 10.5},   // above dim2
                      ExtensionCase{-0.5, -0.5},  // both below
                      ExtensionCase{5.0, 9.5},    // both above
                      ExtensionCase{-1.0, 9.0},   // mixed
                      ExtensionCase{2.0, 4.0}));  // contained (no-op)

// ---------------------------------------------------------------------
// Property: fitness scores are always in [0, 1] and the model never
// produces NaNs — across seeds and kernel configurations.
// ---------------------------------------------------------------------

struct ModelCase {
  std::uint64_t seed;
  bool exponential;
  double forgetting;
};

class ModelProperties : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelProperties, ScoresBoundedNoNans) {
  const ModelCase& param = GetParam();
  Rng rng(param.seed);
  std::vector<double> xs(600), ys(600);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 40.0 + 25.0 * std::sin(static_cast<double>(i) * 0.05) +
            rng.Normal(0.0, 2.0);
    ys[i] = 0.002 * xs[i] * xs[i] * xs[i] / 50.0 + rng.Normal(0.0, 1.0);
  }
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  config.forgetting = param.forgetting;
  if (param.exponential) {
    config.kernel.type = KernelConfig::Type::kExponential;
  }
  PairModel model = PairModel::Learn(xs, ys, config);

  for (std::size_t i = 0; i < 300; ++i) {
    // Mix normal points with occasional wild ones.
    const double x = i % 37 == 0 ? 1e4 : xs[i % xs.size()];
    const double y = i % 53 == 0 ? -1e4 : ys[i % ys.size()];
    const StepOutcome out = model.Step(x, y);
    EXPECT_FALSE(std::isnan(out.fitness));
    EXPECT_FALSE(std::isnan(out.probability));
    EXPECT_GE(out.fitness, 0.0);
    EXPECT_LE(out.fitness, 1.0);
    EXPECT_GE(out.probability, 0.0);
    EXPECT_LE(out.probability, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKernels, ModelProperties,
    ::testing::Values(ModelCase{1, false, 1.0}, ModelCase{2, false, 0.99},
                      ModelCase{3, true, 1.0}, ModelCase{4, true, 0.95},
                      ModelCase{5, false, 1.0}, ModelCase{6, true, 0.999},
                      ModelCase{7, false, 0.9}, ModelCase{8, true, 1.0}));

}  // namespace
}  // namespace pmcorr
