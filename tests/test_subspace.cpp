// Tests for the PCA subspace baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/subspace.h"
#include "common/rng.h"

namespace pmcorr {
namespace {

// l measurements all driven by one latent load plus noise: a rank-1-ish
// normal subspace.
MeasurementFrame DrivenFrame(std::size_t l, std::size_t n,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(l, std::vector<double>(n));
  std::vector<double> gains(l), offsets(l);
  for (std::size_t a = 0; a < l; ++a) {
    gains[a] = rng.Uniform(0.5, 3.0);
    offsets[a] = rng.Uniform(0.0, 50.0);
  }
  for (std::size_t t = 0; t < n; ++t) {
    const double load =
        50.0 + 30.0 * std::sin(static_cast<double>(t) * 0.05) +
        rng.Normal(0.0, 1.0);
    for (std::size_t a = 0; a < l; ++a) {
      cols[a][t] = offsets[a] + gains[a] * load + rng.Normal(0.0, 1.0);
    }
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (std::size_t a = 0; a < l; ++a) {
    MeasurementInfo info;
    info.machine = MachineId(static_cast<std::int32_t>(a / 2));
    info.name = "m" + std::to_string(a);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[a])));
  }
  return frame;
}

std::vector<double> SampleAt(const MeasurementFrame& frame, std::size_t t) {
  std::vector<double> values(frame.MeasurementCount());
  for (std::size_t a = 0; a < values.size(); ++a) {
    values[a] = frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
  }
  return values;
}

TEST(Subspace, CapturesSharedVariance) {
  const auto frame = DrivenFrame(8, 800, 3);
  SubspaceConfig config;
  config.components = 2;
  const auto det = SubspaceDetector::Fit(frame, config);
  EXPECT_EQ(det.ComponentCount(), 2u);
  // One latent factor drives everything: 2 components capture most of it.
  EXPECT_GT(det.CapturedVariance(), 0.8);
}

TEST(Subspace, TrainingDataMostlyBelowThreshold) {
  const auto frame = DrivenFrame(6, 600, 5);
  const auto det = SubspaceDetector::Fit(frame, {});
  std::size_t anomalies = 0;
  for (std::size_t t = 0; t < frame.SampleCount(); ++t) {
    if (det.IsAnomaly(SampleAt(frame, t))) ++anomalies;
  }
  // The boundary is the 99.5% training quantile.
  EXPECT_LT(anomalies, frame.SampleCount() / 50);
}

TEST(Subspace, FloodStaysInNormalSubspace) {
  // All measurements doubling together moves *along* the latent
  // direction (after standardization, a large but subspace-aligned
  // excursion): SPE stays far smaller than for a correlation break.
  const auto frame = DrivenFrame(6, 800, 7);
  const auto det = SubspaceDetector::Fit(frame, {});
  auto sample = SampleAt(frame, 100);

  auto flood = sample;
  for (double& v : flood) v *= 1.5;
  const double flood_spe = det.Spe(flood);

  auto broken = sample;
  broken[2] *= 3.0;  // one measurement decouples
  const double break_spe = det.Spe(broken);
  EXPECT_LT(flood_spe, break_spe);
  EXPECT_TRUE(det.IsAnomaly(broken));
}

TEST(Subspace, SpeValidatesInputSize) {
  const auto frame = DrivenFrame(4, 100, 9);
  const auto det = SubspaceDetector::Fit(frame, {});
  EXPECT_THROW(det.Spe(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Subspace, FitValidatesInput) {
  MeasurementFrame empty(0, kPaperSamplePeriod);
  EXPECT_THROW(SubspaceDetector::Fit(empty, {}), std::invalid_argument);
}

TEST(Subspace, ComponentsClampToMeasurementCount) {
  const auto frame = DrivenFrame(3, 200, 11);
  SubspaceConfig config;
  config.components = 10;
  const auto det = SubspaceDetector::Fit(frame, config);
  EXPECT_LE(det.ComponentCount(), 3u);
}

TEST(Subspace, ConstantMeasurementHandled) {
  MeasurementFrame frame(0, kPaperSamplePeriod);
  Rng rng(13);
  std::vector<double> varying(300), flat(300, 42.0);
  for (auto& v : varying) v = rng.Normal(10.0, 2.0);
  MeasurementInfo a, b;
  a.name = "varying";
  b.name = "flat";
  frame.Add(a, TimeSeries(0, kPaperSamplePeriod, std::move(varying)));
  frame.Add(b, TimeSeries(0, kPaperSamplePeriod, std::move(flat)));
  const auto det = SubspaceDetector::Fit(frame, {});
  // No NaNs; the flat measurement contributes nothing.
  const double spe = det.Spe(std::vector<double>{10.0, 42.0});
  EXPECT_FALSE(std::isnan(spe));
}

}  // namespace
}  // namespace pmcorr
