// Second batch of parameterized property tests, covering the newer
// modules: queueing vs closed forms, subspace monotonicity, calibration
// monotonicity, incident-tracker invariants and umbrella-header sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "pmcorr.h"  // umbrella header — also verifies it compiles

namespace pmcorr {
namespace {

// ---------------------------------------------------------------------
// Property: the M/M/c simulator matches Erlang closed forms across
// (servers, utilization) combinations (Little's law included).
// ---------------------------------------------------------------------

struct QueueCase {
  std::size_t servers;
  double rho;
};

class QueueProperties : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueProperties, MatchesClosedFormsAndLittlesLaw) {
  const auto& param = GetParam();
  const double mu = 10.0;
  const double lambda = param.rho * mu * static_cast<double>(param.servers);

  QueueConfig config;
  config.servers = param.servers;
  config.service_rate = mu;
  MmcQueueSimulator sim(config);
  Rng rng(CombineSeed(99, param.servers * 100 +
                              static_cast<std::uint64_t>(param.rho * 100)));
  sim.Run(lambda, 500.0, rng);  // transient
  const QueueSimStats stats = sim.Run(lambda, 15000.0, rng);

  const double expected = MmcMeanResponse(lambda, mu, param.servers);
  EXPECT_NEAR(stats.mean_response, expected, expected * 0.12);
  EXPECT_NEAR(stats.utilization, param.rho, 0.04);
  EXPECT_NEAR(stats.mean_in_system, lambda * expected,
              lambda * expected * 0.15);
  EXPECT_EQ(stats.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ServersAndLoads, QueueProperties,
    ::testing::Values(QueueCase{1, 0.3}, QueueCase{1, 0.7},
                      QueueCase{2, 0.5}, QueueCase{2, 0.8},
                      QueueCase{4, 0.6}, QueueCase{8, 0.7},
                      QueueCase{8, 0.85}));

// ---------------------------------------------------------------------
// Property: adding subspace components never increases any sample's SPE,
// and captured variance grows with k.
// ---------------------------------------------------------------------

class SubspaceProperties : public ::testing::TestWithParam<std::size_t> {};

MeasurementFrame SubspaceFrame(std::uint64_t seed) {
  Rng rng(seed);
  MeasurementFrame frame(0, kPaperSamplePeriod);
  std::vector<std::vector<double>> cols(6, std::vector<double>(400));
  for (std::size_t t = 0; t < 400; ++t) {
    const double f1 = std::sin(t * 0.05);
    const double f2 = std::cos(t * 0.013);
    for (std::size_t a = 0; a < 6; ++a) {
      cols[a][t] = 10.0 + static_cast<double>(a) * f1 * 5.0 +
                   static_cast<double>(5 - a) * f2 * 3.0 +
                   rng.Normal(0.0, 0.5);
    }
  }
  for (std::size_t a = 0; a < 6; ++a) {
    MeasurementInfo info;
    info.name = "s" + std::to_string(a);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[a])));
  }
  return frame;
}

TEST_P(SubspaceProperties, MoreComponentsNeverRaiseSpe) {
  const std::uint64_t seed = GetParam();
  const MeasurementFrame frame = SubspaceFrame(seed);

  SubspaceConfig small, large;
  small.components = 1;
  large.components = 3;
  const auto det_small = SubspaceDetector::Fit(frame, small);
  const auto det_large = SubspaceDetector::Fit(frame, large);
  EXPECT_GE(det_large.CapturedVariance(),
            det_small.CapturedVariance() - 1e-9);

  std::vector<double> sample(frame.MeasurementCount());
  for (std::size_t t = 0; t < frame.SampleCount(); t += 23) {
    for (std::size_t a = 0; a < sample.size(); ++a) {
      sample[a] = frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    EXPECT_LE(det_large.Spe(sample), det_small.Spe(sample) + 1e-9);
    EXPECT_GE(det_small.Spe(sample), -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubspaceProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---------------------------------------------------------------------
// Property: calibrated thresholds are monotone in the target FPR.
// ---------------------------------------------------------------------

class CalibrationProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CalibrationProperties, ThresholdsMonotoneInTarget) {
  Rng rng(GetParam());
  std::vector<double> xs(1200), ys(1200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double load = 50.0 + 30.0 * std::sin(i * 0.04) +
                        rng.Normal(0.0, 1.5);
    xs[i] = load;
    ys[i] = 2.0 * load + rng.Normal(0.0, 1.0);
  }
  ModelConfig config;
  config.partition.units = 30;
  config.partition.max_intervals = 8;
  const PairModel model = PairModel::Learn(xs, ys, config);

  double prev_fitness = -1.0, prev_delta = -1.0;
  for (double target : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    const auto calibration = CalibrateOnHoldout(model, xs, ys, target);
    EXPECT_GE(calibration.fitness_threshold, prev_fitness);
    EXPECT_GE(calibration.delta, prev_delta);
    prev_fitness = calibration.fitness_threshold;
    prev_delta = calibration.delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationProperties,
                         ::testing::Values(11u, 13u, 17u, 19u));

// ---------------------------------------------------------------------
// Property: incident-tracker output is well-formed for random alarm
// streams — incidents are ordered, non-overlapping after closure, and
// account for every alarm.
// ---------------------------------------------------------------------

class IncidentProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncidentProperties, IncidentsOrderedAndAccountAllAlarms) {
  Rng rng(GetParam());
  IncidentConfig config;
  config.merge_gap = 30 * kMinute;
  config.cooldown = 12 * kMinute;
  IncidentTracker tracker(config);

  std::size_t alarms_fed = 0;
  TimePoint tp = 0;
  for (int i = 0; i < 2000; ++i) {
    tp += kPaperSamplePeriod;
    const bool alarming = rng.Bernoulli(0.08);
    if (alarming) ++alarms_fed;
    tracker.Observe(tp, alarming, alarming ? rng.Uniform(0.0, 0.5) : 0.95);
  }
  tracker.Flush(tp + kDay);

  std::size_t alarms_recorded = 0;
  TimePoint prev_end = -1;
  for (const Incident& incident : tracker.Incidents()) {
    EXPECT_FALSE(incident.open);  // flushed
    EXPECT_LE(incident.start, incident.last_alarm);
    EXPECT_LT(incident.start, incident.end);
    EXPECT_GE(incident.min_score, 0.0);
    EXPECT_LT(incident.min_score, 1.0);
    EXPECT_GT(incident.start, prev_end);  // ordered, disjoint
    prev_end = incident.end;
    alarms_recorded += incident.alarm_count;
  }
  EXPECT_EQ(alarms_recorded, alarms_fed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidentProperties,
                         ::testing::Values(3u, 7u, 21u, 42u, 77u));

// ---------------------------------------------------------------------
// Property: the row assembler emits rows in strict time order and loses
// nothing except explicitly counted late drops — under random event
// orderings and random gaps.
// ---------------------------------------------------------------------

class AssemblerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerProperties, RowsOrderedAndEventsAccounted) {
  Rng rng(GetParam());
  const std::size_t measurements = 4;
  const std::size_t slots = 60;

  AssemblerConfig config;
  config.start = 0;
  config.period = 60;
  config.measurement_count = measurements;
  config.max_open_slots = 3;

  std::vector<AssembledRow> rows;
  RowAssembler assembler(config, [&](const AssembledRow& row) {
    rows.push_back(row);
  });

  // Build a ground-truth event list with random gaps, then feed it with
  // bounded random reordering (shuffle within windows of 6).
  struct Event {
    MeasurementId id;
    TimePoint tp;
    double value;
  };
  std::vector<Event> events;
  std::size_t emitted_values = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    for (std::size_t m = 0; m < measurements; ++m) {
      if (rng.Bernoulli(0.15)) continue;  // collector gap
      events.push_back({MeasurementId(static_cast<std::int32_t>(m)),
                        static_cast<TimePoint>(s) * 60 +
                            rng.UniformInt(0, 59),
                        static_cast<double>(s * 10 + m)});
      ++emitted_values;
    }
  }
  for (std::size_t i = 0; i + 6 <= events.size(); i += 6) {
    std::shuffle(events.begin() + static_cast<std::ptrdiff_t>(i),
                 events.begin() + static_cast<std::ptrdiff_t>(i + 6), rng);
  }
  for (const Event& e : events) assembler.Offer(e.id, e.tp, e.value);
  assembler.Flush();

  // Rows strictly ordered, values accounted.
  std::size_t filled_total = 0;
  TimePoint prev = -1;
  for (const AssembledRow& row : rows) {
    EXPECT_GT(row.time, prev);
    prev = row.time;
    filled_total += row.filled;
    std::size_t finite = 0;
    for (double v : row.values) {
      if (!std::isnan(v)) ++finite;
    }
    EXPECT_EQ(finite, row.filled);
  }
  EXPECT_EQ(filled_total + assembler.LateDrops(), emitted_values);
  // Local reordering within a window rarely spans 3 slots: most values
  // must have landed.
  EXPECT_LT(assembler.LateDrops(), emitted_values / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerProperties,
                         ::testing::Values(1u, 5u, 9u, 14u, 32u, 64u));

}  // namespace
}  // namespace pmcorr
