// Tests for SystemMonitor checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/rng.h"
#include "io/monitor_io.h"

namespace pmcorr {
namespace {

MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.kind = c % 2 == 0 ? MetricKind::kCpuUtilization
                           : MetricKind::kIfOutOctetsRate;
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 30;
  config.model.partition.max_intervals = 8;
  config.threads = 2;
  return config;
}

TEST(MonitorIo, RoundTripPreservesStructureAndAggregates) {
  const MeasurementFrame history = SystemFrame(900, 3);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  monitor.Run(SystemFrame(60, 5));

  std::stringstream stream;
  SaveSystemMonitor(monitor, stream);
  const auto loaded = LoadSystemMonitor(stream, 2);

  EXPECT_EQ(loaded->MeasurementCount(), 4u);
  EXPECT_EQ(loaded->Graph().PairCount(), 6u);
  EXPECT_EQ(loaded->StepCount(), monitor.StepCount());
  EXPECT_DOUBLE_EQ(loaded->SystemAverage().Mean(),
                   monitor.SystemAverage().Mean());
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(loaded->MeasurementAverages()[a].Mean(),
                     monitor.MeasurementAverages()[a].Mean());
    EXPECT_EQ(loaded->Infos()[a].name, monitor.Infos()[a].name);
    EXPECT_EQ(loaded->Infos()[a].machine, monitor.Infos()[a].machine);
    EXPECT_EQ(loaded->Infos()[a].kind, monitor.Infos()[a].kind);
  }
}

TEST(MonitorIo, RestoredMonitorContinuesIdentically) {
  const MeasurementFrame history = SystemFrame(900, 7);
  SystemMonitor original(history, MeasurementGraph::FullMesh(4),
                         SmallConfig());
  original.Run(SystemFrame(40, 9));

  std::stringstream stream;
  SaveSystemMonitor(original, stream);
  const auto restored = LoadSystemMonitor(stream, 2);

  // Continue both on the same fresh data; sequences restart in the
  // restored copy, so restart the original's too for a fair comparison.
  original.ResetSequences();
  const MeasurementFrame more = SystemFrame(50, 11);
  const auto snaps_a = original.Run(more);
  const auto snaps_b = restored->Run(more);
  ASSERT_EQ(snaps_a.size(), snaps_b.size());
  for (std::size_t t = 0; t < snaps_a.size(); ++t) {
    ASSERT_EQ(snaps_a[t].system_score.has_value(),
              snaps_b[t].system_score.has_value());
    if (snaps_a[t].system_score) {
      ASSERT_DOUBLE_EQ(*snaps_a[t].system_score, *snaps_b[t].system_score);
    }
  }
}

TEST(MonitorIo, PathCheckpointCarriesTrailerAndRotates) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "pmcorr_monitor_io_path";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "monitor.ckpt").string();

  const MeasurementFrame history = SystemFrame(900, 13);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  monitor.Run(SystemFrame(40, 15));

  SaveSystemMonitor(monitor, path);
  // The file ends with the CRC trailer line the loader verifies.
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::size_t last_line = bytes.rfind("trailer crc32 ");
  ASSERT_NE(last_line, std::string::npos);
  EXPECT_EQ(bytes.back(), '\n');

  std::stringstream direct;
  SaveSystemMonitor(monitor, direct);
  CheckpointRecoveryInfo info;
  const auto loaded = LoadSystemMonitor(path, 2, &info);
  EXPECT_EQ(info.generation, 0u);
  EXPECT_TRUE(info.rejected.empty());
  std::stringstream reloaded;
  SaveSystemMonitor(*loaded, reloaded);
  EXPECT_EQ(reloaded.str(), direct.str());

  // A second save rotates the first into generation 1.
  monitor.Run(SystemFrame(10, 17));
  SaveSystemMonitor(monitor, path);
  EXPECT_TRUE(fs::exists(path + ".g1"));
  fs::remove_all(dir);
}

TEST(MonitorIo, RejectsGarbage) {
  std::stringstream bad("definitely not a checkpoint");
  EXPECT_THROW(LoadSystemMonitor(bad), std::runtime_error);
  std::stringstream truncated("pmcorr-monitor v1\nmeasurements 4\n");
  EXPECT_THROW(LoadSystemMonitor(truncated), std::runtime_error);
  EXPECT_THROW(LoadSystemMonitor("/nonexistent/checkpoint.txt"),
               std::runtime_error);
}

TEST(MonitorIo, ChecksPartConsistency) {
  // The parts constructor itself must validate model/pair counts.
  EXPECT_THROW(SystemMonitor(MonitorConfig{}, MeasurementGraph::FullMesh(3),
                             std::vector<MeasurementInfo>(3),
                             std::vector<PairModel>(1),  // wrong count
                             std::vector<ScoreAverager>(3), ScoreAverager{},
                             0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmcorr
