// End-to-end degraded-collector scenarios: trace CSVs with duplicate,
// out-of-order, gapped and frozen rows read through ReadSampleStreamCsv
// (timestamps verbatim) and fed to a SystemMonitor sample by sample.
// Pins the health flags the snapshots expose and the guard's core
// promise: a degraded stream can only suppress evidence, never mint
// alarms a clean stream would not have raised.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/monitor.h"
#include "io/csv.h"

namespace pmcorr {
namespace {

MeasurementFrame SystemFrame(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(4, std::vector<double>(samples));
  for (std::size_t i = 0; i < samples; ++i) {
    const double load =
        60.0 + 35.0 * std::sin(static_cast<double>(i) * 0.03) +
        rng.Normal(0.0, 1.5);
    cols[0][i] = load + rng.Normal(0.0, 0.8);
    cols[1][i] = 100.0 * load / (load + 45.0) + rng.Normal(0.0, 0.4);
    cols[2][i] = 2.5 * load + 20.0 + rng.Normal(0.0, 2.0);
    cols[3][i] = 0.8 * load + 35.0 + rng.Normal(0.0, 1.5);
  }
  MeasurementFrame frame(0, kPaperSamplePeriod);
  for (int c = 0; c < 4; ++c) {
    MeasurementInfo info;
    info.machine = MachineId(c / 2);
    info.kind = MetricKind::kCpuUtilization;
    info.name = "m" + std::to_string(c);
    frame.Add(info, TimeSeries(0, kPaperSamplePeriod, std::move(cols[c])));
  }
  return frame;
}

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.model.partition.units = 40;
  config.model.partition.max_intervals = 10;
  config.threads = 2;
  return config;
}

struct RawRow {
  TimePoint time = 0;
  std::vector<double> values;
};

// Renders rows as the trace CSV format, timestamps taken from the rows
// themselves (which is exactly what a degraded collector produces).
std::string RenderTrace(const std::vector<RawRow>& rows) {
  std::ostringstream out;
  out << "# pmcorr-trace v1 start=0 period=" << kPaperSamplePeriod << "\n";
  for (int c = 0; c < 4; ++c) {
    out << "# measurement," << c / 2 << ","
        << MetricKindName(MetricKind::kCpuUtilization) << ",m" << c << "\n";
  }
  out << "time,m0,m1,m2,m3\n";
  char buf[40];
  for (const RawRow& row : rows) {
    out << row.time;
    for (const double v : row.values) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << "," << buf;
    }
    out << "\n";
  }
  return out.str();
}

std::vector<RawRow> RowsOf(const MeasurementFrame& frame) {
  std::vector<RawRow> rows(frame.SampleCount());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    rows[t].time = frame.TimeAt(t);
    rows[t].values.resize(4);
    for (std::size_t a = 0; a < 4; ++a) {
      rows[t].values[a] =
          frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
  }
  return rows;
}

std::vector<SystemSnapshot> FeedStream(SystemMonitor& monitor,
                                       const std::string& csv) {
  std::istringstream in(csv);
  const SampleStream stream = ReadSampleStreamCsv(in);
  std::vector<SystemSnapshot> snaps;
  snaps.reserve(stream.rows.size());
  for (const SampleRow& row : stream.rows) {
    snaps.push_back(monitor.Step(row.values, row.time));
  }
  return snaps;
}

TEST(SampleStreamCsv, PreservesTimestampsVerbatim) {
  std::vector<RawRow> rows(4);
  rows[0] = {0, {1.0, 2.0, 3.0, 4.0}};
  rows[1] = {360, {1.1, 2.1, 3.1, 4.1}};
  rows[2] = {360, {1.2, 2.2, 3.2, 4.2}};   // duplicate timestamp
  rows[3] = {5000, {1.3, 2.3, 3.3, 4.3}};  // off-grid gap
  std::istringstream in(RenderTrace(rows));
  const SampleStream stream = ReadSampleStreamCsv(in);
  EXPECT_EQ(stream.start, 0);
  EXPECT_EQ(stream.period, kPaperSamplePeriod);
  ASSERT_EQ(stream.infos.size(), 4u);
  EXPECT_EQ(stream.infos[2].name, "m2");
  ASSERT_EQ(stream.rows.size(), 4u);
  EXPECT_EQ(stream.rows[2].time, 360);   // NOT projected onto the grid
  EXPECT_EQ(stream.rows[3].time, 5000);  // NOT repaired
  EXPECT_EQ(stream.rows[3].values[1], 2.3);
}

TEST(SampleStreamCsv, RejectsMalformedRows) {
  const std::string header = RenderTrace({});
  {
    std::istringstream in(header + "notatime,1,2,3,4\n");
    EXPECT_THROW(ReadSampleStreamCsv(in), std::runtime_error);
  }
  {
    std::istringstream in(header + "0,1,2,3\n");  // row width mismatch
    EXPECT_THROW(ReadSampleStreamCsv(in), std::runtime_error);
  }
  {
    std::istringstream in(header + "0,1,2,3,inf\n");
    EXPECT_THROW(ReadSampleStreamCsv(in), std::runtime_error);
  }
  {
    std::istringstream in(header + "0,1,2,nan,4\n");  // NaN is legal
    const SampleStream stream = ReadSampleStreamCsv(in);
    ASSERT_EQ(stream.rows.size(), 1u);
    EXPECT_TRUE(std::isnan(stream.rows[0].values[2]));
  }
}

TEST(DegradedStreams, CleanStreamReportsNothing) {
  const MeasurementFrame history = SystemFrame(1200, 3);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  const auto snaps = FeedStream(monitor, RenderTrace(RowsOf(
                                             SystemFrame(40, 5))));
  for (const SystemSnapshot& snap : snaps) {
    EXPECT_EQ(snap.stream_event, StreamEvent::kNone);
    EXPECT_EQ(snap.suppressed_values, 0u);
    EXPECT_EQ(snap.quarantined_pairs, 0u);
    ASSERT_EQ(snap.measurement_health.size(), 4u);
    for (const MeasurementHealth h : snap.measurement_health) {
      EXPECT_EQ(h, MeasurementHealth::kHealthy);
    }
  }
  EXPECT_TRUE(monitor.Health().AllHealthy());
  EXPECT_EQ(monitor.Health().SuppressedTotal(), 0u);
}

TEST(DegradedStreams, EventsAndHealthFlagsAreExposedPerSnapshot) {
  const MeasurementFrame history = SystemFrame(1200, 7);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());

  // 60 clean rows, then degrade: a duplicate of row 10 spliced in after
  // it, rows 30-33 lost (a gap), and measurement 2 frozen from row 40 on.
  std::vector<RawRow> rows = RowsOf(SystemFrame(60, 9));
  const double frozen_value = 123.5;
  for (std::size_t t = 40; t < rows.size(); ++t) {
    rows[t].values[2] = frozen_value;
  }
  RawRow duplicate = rows[10];
  duplicate.values = {50.0, 51.0, 52.0, 53.0};  // lies about fresh data
  rows.insert(rows.begin() + 11, duplicate);
  rows.erase(rows.begin() + 31, rows.begin() + 35);

  const auto snaps = FeedStream(monitor, RenderTrace(rows));

  // Row 11 is the duplicate: whole row suppressed, sequence broken.
  EXPECT_EQ(snaps[11].stream_event, StreamEvent::kDuplicate);
  EXPECT_EQ(snaps[11].suppressed_values, 4u);
  // The sample right after the duplicate is a fresh sequence: every pair
  // disengaged, back to normal one sample later.
  for (const auto& score : snaps[12].pair_scores) {
    EXPECT_FALSE(score.has_value());
  }
  EXPECT_TRUE(snaps[13].system_score.has_value());

  // Row 31 (was row 34 of the original grid) lands after the lost block:
  // a gap, values untouched.
  EXPECT_EQ(snaps[31].stream_event, StreamEvent::kGap);
  EXPECT_EQ(snaps[31].suppressed_values, 0u);
  for (const auto& score : snaps[31].pair_scores) {
    EXPECT_FALSE(score.has_value());
  }

  // The frozen feed: 12 bitwise-identical arrivals are tolerated, then
  // suppressed; four consecutive suppressions mark the feed stale. The
  // frozen rows start at grid row 40 = stream row 37 (one duplicate
  // inserted, four rows lost).
  const std::size_t frozen_start = 37;
  const std::size_t suppress_from = frozen_start + 11;  // 12th identical
  for (std::size_t t = frozen_start; t < suppress_from; ++t) {
    EXPECT_EQ(snaps[t].suppressed_values, 0u) << "stream row " << t;
  }
  for (std::size_t t = suppress_from; t < snaps.size(); ++t) {
    EXPECT_EQ(snaps[t].suppressed_values, 1u) << "stream row " << t;
  }
  const std::size_t stale_from = suppress_from + 3;  // 4th missing sample
  for (std::size_t t = frozen_start; t < stale_from; ++t) {
    EXPECT_EQ(snaps[t].measurement_health[2], MeasurementHealth::kHealthy);
  }
  for (std::size_t t = stale_from; t < snaps.size(); ++t) {
    EXPECT_EQ(snaps[t].measurement_health[2], MeasurementHealth::kStale)
        << "stream row " << t;
  }
  // The other feeds never degrade.
  for (const SystemSnapshot& snap : snaps) {
    EXPECT_EQ(snap.measurement_health[0], MeasurementHealth::kHealthy);
    EXPECT_EQ(snap.measurement_health[1], MeasurementHealth::kHealthy);
    EXPECT_EQ(snap.measurement_health[3], MeasurementHealth::kHealthy);
  }
  EXPECT_EQ(monitor.Health().DuplicateCount(), 1u);
  EXPECT_EQ(monitor.Health().GapCount(), 1u);
}

TEST(DegradedStreams, OutOfOrderRowIsSuppressedNotScored) {
  const MeasurementFrame history = SystemFrame(1000, 11);
  SystemMonitor monitor(history, MeasurementGraph::FullMesh(4),
                        SmallConfig());
  std::vector<RawRow> rows = RowsOf(SystemFrame(20, 13));
  // A straggler from the past arrives between rows 8 and 9, carrying
  // values that would otherwise score (and possibly alarm).
  RawRow straggler = rows[3];
  rows.insert(rows.begin() + 9, straggler);
  const auto snaps = FeedStream(monitor, RenderTrace(rows));
  EXPECT_EQ(snaps[9].stream_event, StreamEvent::kOutOfOrder);
  EXPECT_EQ(snaps[9].suppressed_values, 4u);
  for (const auto& score : snaps[9].pair_scores) {
    EXPECT_FALSE(score.has_value());
  }
  // The stream clock held: the next real row is on cadence again.
  EXPECT_EQ(snaps[10].stream_event, StreamEvent::kNone);
  EXPECT_TRUE(snaps[11].system_score.has_value());
}

TEST(DegradedStreams, DegradationNeverIncreasesAlarms) {
  // Same underlying data; the degraded copy only *inserts* junk rows
  // (duplicates, stragglers) and freezes one feed's tail. Suppression
  // can remove alarm opportunities but must never create alarms the
  // clean stream did not raise.
  const MeasurementFrame history = SystemFrame(2000, 19);
  const MeasurementFrame holdout = SystemFrame(600, 21);
  const MeasurementFrame test = SystemFrame(200, 23);

  SystemMonitor clean_monitor(history, MeasurementGraph::FullMesh(4),
                              SmallConfig());
  clean_monitor.CalibrateThresholds(holdout, 0.05);
  const auto clean_snaps = FeedStream(clean_monitor,
                                      RenderTrace(RowsOf(test)));
  std::size_t clean_alarms = 0;
  for (const auto& snap : clean_snaps) {
    clean_alarms += snap.alarmed_pairs.size();
  }

  std::vector<RawRow> rows = RowsOf(test);
  for (std::size_t t = 150; t < rows.size(); ++t) {
    rows[t].values[1] = 77.75;  // frozen tail
  }
  RawRow dup = rows[50];
  dup.values = {500.0, 500.0, 500.0, 500.0};
  rows.insert(rows.begin() + 51, dup);
  RawRow straggler = rows[20];
  straggler.values = {0.0, 0.0, 0.0, 0.0};
  rows.insert(rows.begin() + 100, straggler);

  SystemMonitor degraded_monitor(history, MeasurementGraph::FullMesh(4),
                                 SmallConfig());
  degraded_monitor.CalibrateThresholds(holdout, 0.05);
  const auto degraded_snaps = FeedStream(degraded_monitor,
                                         RenderTrace(rows));
  std::size_t degraded_alarms = 0;
  for (const auto& snap : degraded_snaps) {
    degraded_alarms += snap.alarmed_pairs.size();
  }
  EXPECT_LE(degraded_alarms, clean_alarms);
  EXPECT_GT(degraded_monitor.Health().SuppressedTotal(), 8u);
}

}  // namespace
}  // namespace pmcorr
