// Tests for the collector-to-engine row assembler.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "engine/assembler.h"

namespace pmcorr {
namespace {

class AssemblerTest : public ::testing::Test {
 protected:
  RowAssembler Make(std::size_t measurements = 3,
                    std::size_t max_open = 2) {
    AssemblerConfig config;
    config.start = 1000;
    config.period = 60;
    config.measurement_count = measurements;
    config.max_open_slots = max_open;
    return RowAssembler(config,
                        [this](const AssembledRow& row) {
                          rows_.push_back(row);
                        });
  }
  std::vector<AssembledRow> rows_;
};

TEST_F(AssemblerTest, CompleteSlotShipsImmediately) {
  RowAssembler assembler = Make();
  assembler.Offer(MeasurementId(0), 1000, 1.0);
  assembler.Offer(MeasurementId(2), 1030, 3.0);  // same slot, jittered
  EXPECT_TRUE(rows_.empty());
  assembler.Offer(MeasurementId(1), 1059, 2.0);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].time, 1000);
  EXPECT_EQ(rows_[0].filled, 3u);
  EXPECT_DOUBLE_EQ(rows_[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(rows_[0].values[1], 2.0);
  EXPECT_DOUBLE_EQ(rows_[0].values[2], 3.0);
}

TEST_F(AssemblerTest, IncompleteSlotFlushedWithNansWhenWindowMovesOn) {
  RowAssembler assembler = Make(3, 2);
  assembler.Offer(MeasurementId(0), 1000, 1.0);   // slot 0, incomplete
  assembler.Offer(MeasurementId(0), 1060, 1.1);   // slot 1
  EXPECT_TRUE(rows_.empty());                     // window still open
  assembler.Offer(MeasurementId(0), 1120, 1.2);   // slot 2 -> evict slot 0
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].time, 1000);
  EXPECT_EQ(rows_[0].filled, 1u);
  EXPECT_TRUE(std::isnan(rows_[0].values[1]));
  EXPECT_TRUE(std::isnan(rows_[0].values[2]));
}

TEST_F(AssemblerTest, LateEventsAreDroppedAndCounted) {
  RowAssembler assembler = Make();
  assembler.Offer(MeasurementId(0), 1000, 1.0);
  assembler.Offer(MeasurementId(1), 1000, 2.0);
  assembler.Offer(MeasurementId(2), 1000, 3.0);  // slot 0 shipped
  ASSERT_EQ(rows_.size(), 1u);
  assembler.Offer(MeasurementId(1), 1010, 9.0);  // straggler for slot 0
  EXPECT_EQ(assembler.LateDrops(), 1u);
  EXPECT_EQ(rows_.size(), 1u);  // nothing re-shipped
}

TEST_F(AssemblerTest, DuplicateObservationKeepsLatest) {
  RowAssembler assembler = Make();
  assembler.Offer(MeasurementId(0), 1000, 1.0);
  assembler.Offer(MeasurementId(0), 1030, 1.5);  // revised reading
  assembler.Offer(MeasurementId(1), 1000, 2.0);
  assembler.Offer(MeasurementId(2), 1000, 3.0);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_DOUBLE_EQ(rows_[0].values[0], 1.5);
  EXPECT_EQ(rows_[0].filled, 3u);
}

TEST_F(AssemblerTest, OutOfOrderSlotsEmitInTimeOrder) {
  RowAssembler assembler = Make(2, 3);
  assembler.Offer(MeasurementId(0), 1060, 10.0);  // slot 1 first
  assembler.Offer(MeasurementId(0), 1000, 1.0);   // then slot 0
  // Completing slot 1 forces slot 0 out first.
  assembler.Offer(MeasurementId(1), 1060, 20.0);
  ASSERT_EQ(rows_.size(), 2u);
  EXPECT_EQ(rows_[0].time, 1000);
  EXPECT_EQ(rows_[1].time, 1060);
}

TEST_F(AssemblerTest, FlushShipsEverythingOpen) {
  RowAssembler assembler = Make(3, 5);
  assembler.Offer(MeasurementId(0), 1000, 1.0);
  assembler.Offer(MeasurementId(1), 1060, 2.0);
  EXPECT_EQ(assembler.OpenSlots(), 2u);
  assembler.Flush();
  EXPECT_EQ(rows_.size(), 2u);
  EXPECT_EQ(assembler.OpenSlots(), 0u);
  assembler.Flush();  // idempotent
  EXPECT_EQ(rows_.size(), 2u);
}

TEST_F(AssemblerTest, EventsBeforeGridStartLandInNegativeSlots) {
  RowAssembler assembler = Make(1, 2);
  assembler.Offer(MeasurementId(0), 940, 0.5);  // slot -1
  assembler.Offer(MeasurementId(0), 1000, 1.0);
  ASSERT_EQ(rows_.size(), 2u);  // both complete (1 measurement)
  EXPECT_EQ(rows_[0].time, 940);
  EXPECT_EQ(rows_[1].time, 1000);
}

}  // namespace
}  // namespace pmcorr
