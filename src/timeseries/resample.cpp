#include "timeseries/resample.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace pmcorr {

TimeSeries Regularize(std::vector<RawSample> raw, TimePoint start,
                      Duration period, std::size_t count, GapFill fill) {
  PMCORR_DASSERT(period > 0);
  std::sort(raw.begin(), raw.end(),
            [](const RawSample& a, const RawSample& b) { return a.time < b.time; });

  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sums(count, 0.0);
  std::vector<std::size_t> counts(count, 0);
  for (const RawSample& s : raw) {
    if (s.time < start) continue;
    const auto slot = static_cast<std::size_t>((s.time - start) / period);
    if (slot >= count) continue;
    sums[slot] += s.value;
    ++counts[slot];
  }

  std::vector<double> values(count, nan);
  for (std::size_t i = 0; i < count; ++i) {
    if (counts[i] > 0) values[i] = sums[i] / static_cast<double>(counts[i]);
  }

  if (fill != GapFill::kNan) {
    TimeSeries tmp(start, period, std::move(values));
    if (fill == GapFill::kInterpolate) {
      RepairNans(tmp);
    } else {  // kHold
      double last = nan;
      bool seeded = false;
      auto& vals = tmp.MutableValues();
      for (double& v : vals) {
        if (std::isnan(v)) {
          if (seeded) v = last;
        } else {
          last = v;
          seeded = true;
        }
      }
      // Leading gap: backfill from the first finite value.
      for (std::size_t i = vals.size(); i-- > 0;) {
        if (std::isnan(vals[i]) && i + 1 < vals.size()) vals[i] = vals[i + 1];
      }
    }
    return tmp;
  }
  return TimeSeries(start, period, std::move(values));
}

TimeSeries Downsample(const TimeSeries& series, std::size_t factor) {
  PMCORR_DASSERT(factor > 0);
  if (factor == 1 || series.Empty()) return series;
  std::vector<double> out;
  out.reserve(series.Size() / factor + 1);
  std::size_t i = 0;
  while (i < series.Size()) {
    const std::size_t end = std::min(i + factor, series.Size());
    double sum = 0.0;
    for (std::size_t j = i; j < end; ++j) sum += series.At(j);
    out.push_back(sum / static_cast<double>(end - i));
    i = end;
  }
  return TimeSeries(series.Start(),
                    series.Period() * static_cast<Duration>(factor),
                    std::move(out));
}

std::size_t RepairNans(TimeSeries& series) {
  auto& vals = series.MutableValues();
  const std::size_t n = vals.size();
  std::size_t repaired = 0;

  // Find indices of finite values.
  std::vector<std::size_t> finite;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(vals[i])) finite.push_back(i);
  }
  if (finite.empty()) return 0;

  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(vals[i])) continue;
    // Nearest finite neighbors.
    auto next = std::lower_bound(finite.begin(), finite.end(), i);
    if (next == finite.begin()) {
      vals[i] = vals[finite.front()];
    } else if (next == finite.end()) {
      vals[i] = vals[finite.back()];
    } else {
      const std::size_t hi = *next;
      const std::size_t lo = *(next - 1);
      const double frac = static_cast<double>(i - lo) / static_cast<double>(hi - lo);
      vals[i] = vals[lo] * (1.0 - frac) + vals[hi] * frac;
    }
    ++repaired;
  }
  return repaired;
}

}  // namespace pmcorr
