// MeasurementFrame — the "monitoring data" of the paper: a set of
// measurements (metric × machine) sampled on a shared uniform time grid.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "timeseries/series.h"

namespace pmcorr {

/// Static description of one measurement: which machine, which metric,
/// and the display name ("CurrentUtilization_PORT@hostA-03").
struct MeasurementInfo {
  MeasurementId id;
  MachineId machine;
  MetricKind kind = MetricKind::kCpuUtilization;
  std::string name;
};

/// An aligned collection of measurements. All series share the frame's
/// start time, period and length, so sample index i addresses the same
/// instant in every measurement.
class MeasurementFrame {
 public:
  MeasurementFrame() = default;

  /// Creates an empty frame on the given time grid.
  MeasurementFrame(TimePoint start, Duration period);

  /// Adds a measurement; its series must match the frame grid and the
  /// length of previously added series (the first series fixes the
  /// length). Returns the assigned dense id.
  MeasurementId Add(MeasurementInfo info, TimeSeries series);

  std::size_t MeasurementCount() const { return series_.size(); }
  std::size_t SampleCount() const;
  TimePoint StartTime() const { return start_; }
  Duration Period() const { return period_; }
  TimePoint TimeAt(std::size_t sample) const;

  const MeasurementInfo& Info(MeasurementId id) const;
  const TimeSeries& Series(MeasurementId id) const;

  /// All measurement descriptors, indexed by id.
  const std::vector<MeasurementInfo>& Infos() const { return infos_; }

  /// Value of measurement `id` at sample index `sample`.
  double Value(MeasurementId id, std::size_t sample) const;

  /// Ids of all measurements hosted on `machine`.
  std::vector<MeasurementId> MeasurementsOn(MachineId machine) const;

  /// Distinct machines present in the frame, ascending.
  std::vector<MachineId> Machines() const;

  /// Looks up a measurement by display name.
  std::optional<MeasurementId> FindByName(const std::string& name) const;

  /// Sub-frame restricted to samples with timestamps in [from, to).
  MeasurementFrame SliceByTime(TimePoint from, TimePoint to) const;

  /// Sub-frame restricted to the given measurements (ids are re-assigned
  /// densely in the order given).
  MeasurementFrame SelectMeasurements(
      const std::vector<MeasurementId>& ids) const;

 private:
  TimePoint start_ = 0;
  Duration period_ = kPaperSamplePeriod;
  std::vector<MeasurementInfo> infos_;
  std::vector<TimeSeries> series_;
};

}  // namespace pmcorr
