// Uniformly-sampled time series — the representation of one measurement.
//
// The paper treats every measurement m^a as a time series sampled on a
// fixed period (6 minutes in its traces). A uniform grid keeps alignment
// between measurements trivial: sample index i of every series in a frame
// refers to the same wall-clock instant.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/time.h"

namespace pmcorr {

/// A uniformly-sampled sequence of doubles with an absolute start time.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates a series starting at `start`, one sample every `period`
  /// seconds. `period` must be positive.
  TimeSeries(TimePoint start, Duration period, std::vector<double> values);

  std::size_t Size() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  TimePoint Start() const { return start_; }
  Duration Period() const { return period_; }

  /// Timestamp of sample `index`.
  TimePoint TimeAt(std::size_t index) const;

  /// Timestamp one period past the final sample (half-open end).
  TimePoint End() const;

  /// Value of sample `index` (bounds-checked in debug builds).
  double At(std::size_t index) const;
  double operator[](std::size_t index) const { return At(index); }

  /// Index of the sample at or immediately after `tp`, clamped into
  /// [0, Size()]. Returns Size() when `tp` is past the end.
  std::size_t IndexAtOrAfter(TimePoint tp) const;

  /// Appends one sample (keeps the uniform grid: its timestamp is End()).
  void Append(double value);

  /// Read-only view of the raw values.
  std::span<const double> Values() const { return values_; }

  /// Mutable access for generators that post-process values in place.
  std::vector<double>& MutableValues() { return values_; }

  /// Copy of the samples in [from, to) by index, re-based in time.
  TimeSeries SliceByIndex(std::size_t from, std::size_t to) const;

  /// Copy of the samples whose timestamps fall in [from, to).
  TimeSeries SliceByTime(TimePoint from, TimePoint to) const;

 private:
  TimePoint start_ = 0;
  Duration period_ = kPaperSamplePeriod;
  std::vector<double> values_;
};

}  // namespace pmcorr
