#include "timeseries/frame.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"

namespace pmcorr {

MeasurementFrame::MeasurementFrame(TimePoint start, Duration period)
    : start_(start), period_(period) {
  PMCORR_DASSERT(period_ > 0);
}

MeasurementId MeasurementFrame::Add(MeasurementInfo info, TimeSeries series) {
  if (series.Period() != period_ || series.Start() != start_) {
    throw std::invalid_argument(
        "MeasurementFrame::Add: series grid does not match frame grid");
  }
  if (!series_.empty() && series.Size() != series_.front().Size()) {
    throw std::invalid_argument(
        "MeasurementFrame::Add: series length does not match frame length");
  }
  const MeasurementId id(static_cast<std::int32_t>(series_.size()));
  info.id = id;
  infos_.push_back(std::move(info));
  series_.push_back(std::move(series));
  return id;
}

std::size_t MeasurementFrame::SampleCount() const {
  return series_.empty() ? 0 : series_.front().Size();
}

TimePoint MeasurementFrame::TimeAt(std::size_t sample) const {
  return start_ + static_cast<Duration>(sample) * period_;
}

const MeasurementInfo& MeasurementFrame::Info(MeasurementId id) const {
  return infos_.at(static_cast<std::size_t>(id.value));
}

const TimeSeries& MeasurementFrame::Series(MeasurementId id) const {
  return series_.at(static_cast<std::size_t>(id.value));
}

double MeasurementFrame::Value(MeasurementId id, std::size_t sample) const {
  return Series(id).At(sample);
}

std::vector<MeasurementId> MeasurementFrame::MeasurementsOn(
    MachineId machine) const {
  std::vector<MeasurementId> out;
  for (const auto& info : infos_) {
    if (info.machine == machine) out.push_back(info.id);
  }
  return out;
}

std::vector<MachineId> MeasurementFrame::Machines() const {
  std::vector<MachineId> out;
  for (const auto& info : infos_) out.push_back(info.machine);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<MeasurementId> MeasurementFrame::FindByName(
    const std::string& name) const {
  for (const auto& info : infos_) {
    if (info.name == name) return info.id;
  }
  return std::nullopt;
}

MeasurementFrame MeasurementFrame::SliceByTime(TimePoint from,
                                               TimePoint to) const {
  MeasurementFrame out;
  out.period_ = period_;
  out.infos_ = infos_;
  out.series_.reserve(series_.size());
  for (const auto& s : series_) out.series_.push_back(s.SliceByTime(from, to));
  out.start_ = out.series_.empty() ? from : out.series_.front().Start();
  return out;
}

MeasurementFrame MeasurementFrame::SelectMeasurements(
    const std::vector<MeasurementId>& ids) const {
  MeasurementFrame out(start_, period_);
  for (MeasurementId id : ids) {
    MeasurementInfo info = Info(id);
    out.Add(std::move(info), Series(id));
  }
  return out;
}

}  // namespace pmcorr
