#include "timeseries/summary.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/stats.h"

namespace pmcorr {

std::vector<SeriesSummary> Summarize(const MeasurementFrame& frame) {
  std::vector<SeriesSummary> out;
  out.reserve(frame.MeasurementCount());
  for (const auto& info : frame.Infos()) {
    RunningStats stats;
    for (double v : frame.Series(info.id).Values()) stats.Add(v);
    SeriesSummary s;
    s.id = info.id;
    s.mean = stats.Mean();
    s.stddev = stats.StdDev();
    s.min = stats.Min();
    s.max = stats.Max();
    s.cv = s.mean != 0.0 ? s.stddev / std::fabs(s.mean) : 0.0;
    out.push_back(s);
  }
  return out;
}

std::vector<LinearRelation> FindLinearRelations(const MeasurementFrame& frame,
                                                double r2_threshold) {
  std::vector<LinearRelation> out;
  const auto n = static_cast<std::int32_t>(frame.MeasurementCount());
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      const auto fit = FitLinear(frame.Series(MeasurementId(a)).Values(),
                                 frame.Series(MeasurementId(b)).Values());
      if (fit && fit->r_squared >= r2_threshold) {
        out.push_back({PairId(MeasurementId(a), MeasurementId(b)),
                       fit->r_squared});
      }
    }
  }
  return out;
}

std::vector<MeasurementId> SelectMeasurements(
    const MeasurementFrame& frame, const SelectionCriteria& criteria) {
  std::vector<MeasurementId> kept;
  if (frame.Period() > criteria.max_period) return kept;  // criterion (1)

  // Criterion (2): exclude measurements in any strongly linear pair.
  std::unordered_set<MeasurementId> linear;
  for (const auto& rel :
       FindLinearRelations(frame, criteria.linear_r2_threshold)) {
    linear.insert(rel.pair.a);
    linear.insert(rel.pair.b);
  }

  // Criterion (3): high variance, ranked by CV.
  std::vector<SeriesSummary> summaries = Summarize(frame);
  std::sort(summaries.begin(), summaries.end(),
            [](const SeriesSummary& x, const SeriesSummary& y) {
              return x.cv > y.cv;
            });
  for (const auto& s : summaries) {
    if (s.cv < criteria.min_cv) continue;
    if (linear.contains(s.id)) continue;
    kept.push_back(s.id);
    if (criteria.max_measurements != 0 &&
        kept.size() >= criteria.max_measurements) {
      break;
    }
  }
  return kept;
}

}  // namespace pmcorr
