// Resampling and gap handling for raw traces.
//
// Real monitoring feeds arrive with jitter and occasional gaps; the
// paper's method assumes a clean uniform grid. These helpers normalize a
// raw (timestamp, value) stream onto a uniform grid and repair small gaps.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/time.h"
#include "timeseries/series.h"

namespace pmcorr {

/// One raw observation from a collector.
struct RawSample {
  TimePoint time = 0;
  double value = 0.0;
};

/// How to fill grid slots with no covering raw sample.
enum class GapFill {
  kHold,         // repeat the previous value (collector-style)
  kInterpolate,  // linear interpolation between neighbors
  kNan,          // leave NaN; caller must handle
};

/// Snaps a raw stream (sorted or unsorted) onto a uniform grid
/// [start, start + count*period). Each grid slot takes the mean of raw
/// samples falling in its period; empty slots are filled per `fill`.
/// Leading unfillable slots fall back to the first known value (or NaN
/// for GapFill::kNan).
TimeSeries Regularize(std::vector<RawSample> raw, TimePoint start,
                      Duration period, std::size_t count, GapFill fill);

/// Downsamples by an integer factor, averaging each block of `factor`
/// samples; a final partial block is averaged over its actual size.
TimeSeries Downsample(const TimeSeries& series, std::size_t factor);

/// Replaces NaN runs by linear interpolation between the nearest finite
/// neighbors (edges take the nearest finite value). Returns the number of
/// samples repaired; series with no finite values are left unchanged.
std::size_t RepairNans(TimeSeries& series);

}  // namespace pmcorr
