#include "timeseries/series.h"

#include <algorithm>

#include "common/check.h"

namespace pmcorr {

TimeSeries::TimeSeries(TimePoint start, Duration period,
                       std::vector<double> values)
    : start_(start), period_(period), values_(std::move(values)) {
  PMCORR_DASSERT(period_ > 0);
}

TimePoint TimeSeries::TimeAt(std::size_t index) const {
  return start_ + static_cast<Duration>(index) * period_;
}

TimePoint TimeSeries::End() const { return TimeAt(values_.size()); }

double TimeSeries::At(std::size_t index) const {
  PMCORR_DASSERT(index < values_.size());
  return values_[index];
}

std::size_t TimeSeries::IndexAtOrAfter(TimePoint tp) const {
  if (tp <= start_) return 0;
  const Duration offset = tp - start_;
  std::size_t index = static_cast<std::size_t>(offset / period_);
  if (offset % period_ != 0) ++index;
  return std::min(index, values_.size());
}

void TimeSeries::Append(double value) { values_.push_back(value); }

TimeSeries TimeSeries::SliceByIndex(std::size_t from, std::size_t to) const {
  from = std::min(from, values_.size());
  to = std::clamp(to, from, values_.size());
  return TimeSeries(TimeAt(from), period_,
                    std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(from),
                                        values_.begin() + static_cast<std::ptrdiff_t>(to)));
}

TimeSeries TimeSeries::SliceByTime(TimePoint from, TimePoint to) const {
  const std::size_t i = IndexAtOrAfter(from);
  const std::size_t j = IndexAtOrAfter(to);
  return SliceByIndex(i, j);
}

}  // namespace pmcorr
