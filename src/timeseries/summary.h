// Per-measurement summaries and the paper's measurement-selection rules.
//
// Section 6 of the paper selects 100 of ~3000 measurements per group with
// three criteria: (1) sampling rate at least every 6 minutes, (2) no
// linear relationship with any other measurement (the hard cases), and
// (3) high variance over the monitoring period. This module implements
// that scan so the experiment harness can apply the same filter to
// synthetic traces.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "timeseries/frame.h"

namespace pmcorr {

/// Summary statistics for one measurement over a frame.
struct SeriesSummary {
  MeasurementId id;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Coefficient of variation (stddev / |mean|), 0 when mean == 0.
  double cv = 0.0;
};

/// Computes summaries for every measurement in the frame.
std::vector<SeriesSummary> Summarize(const MeasurementFrame& frame);

/// A detected (near-)linear relationship between two measurements.
struct LinearRelation {
  PairId pair;
  double r_squared = 0.0;
};

/// Scans all measurement pairs and reports those whose least-squares fit
/// reaches `r2_threshold` (default mirrors "linear relationship" in the
/// paper's selection criteria; ~0.95 marks strongly linear pairs).
std::vector<LinearRelation> FindLinearRelations(const MeasurementFrame& frame,
                                                double r2_threshold = 0.95);

/// Parameters of the paper's measurement-selection filter.
struct SelectionCriteria {
  /// Maximum allowed sampling period (paper: every 6 minutes).
  Duration max_period = kPaperSamplePeriod;
  /// Pairs at or above this R^2 count as linear; measurements involved in
  /// any such pair are excluded ("do not have any linear relationships").
  double linear_r2_threshold = 0.95;
  /// Minimum coefficient of variation ("high variance").
  double min_cv = 0.05;
  /// Cap on how many measurements to keep (paper: 100 per group);
  /// 0 = no cap. Kept measurements are those with the highest CV.
  std::size_t max_measurements = 100;
};

/// Applies the selection filter and returns the kept measurement ids in
/// descending-variance order (capped per `criteria.max_measurements`).
std::vector<MeasurementId> SelectMeasurements(const MeasurementFrame& frame,
                                              const SelectionCriteria& criteria);

}  // namespace pmcorr
