// ServeCore + ServeSession: the daemon's tenant registry and its
// per-connection protocol state machine, kept free of any socket code
// so tests drive the full protocol surface (hello, sample, queries,
// shedding, drain) as plain function calls. The socket/poll loop lives
// in serve/daemon.cpp and only moves bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "io/framing.h"
#include "serve/protocol.h"
#include "serve/tenant.h"

namespace pmcorr {

/// The daemon's tenants. AddTenant is a startup-only serial-section
/// call; after serving begins the registry is immutable (lookup only).
class ServeCore {
 public:
  std::size_t AddTenant(TenantConfig config,
                        std::unique_ptr<SystemMonitor> monitor);

  TenantRuntime* FindTenant(std::string_view name);
  TenantRuntime& Tenant(std::size_t i) { return *tenants_.at(i); }
  std::size_t TenantCount() const { return tenants_.size(); }

  /// Drains every tenant in registration order and reports each one's
  /// final state — the SIGTERM/kFrameDrain path.
  DrainedReply Drain();

 private:
  std::vector<std::unique_ptr<TenantRuntime>> tenants_;
};

/// One connection's protocol state. HandleFrame consumes a decoded
/// frame and appends any reply frames to `out`; returning false means
/// the connection must be closed (protocol violation — one kFrameError
/// has been queued). Sessions are single-threaded per connection.
class ServeSession {
 public:
  explicit ServeSession(ServeCore& core) : core_(&core) {}

  bool HandleFrame(const Frame& frame, std::string& out);

  /// The client asked for a daemon-wide drain; the daemon loop performs
  /// it (the reply must cover every tenant, not just this session's).
  bool WantsDrain() const { return wants_drain_; }

  /// Bound tenant index, or -1 before a successful hello.
  int TenantIndex() const { return tenant_index_; }
  TenantRuntime* Tenant() { return tenant_; }

 private:
  bool Error(std::string_view message, std::string& out);
  bool HandleHello(const Frame& frame, std::string& out);
  bool HandleSample(const Frame& frame, std::string& out);
  bool HandleQuery(const Frame& frame, std::string& out);
  void AnswerStatus(std::string& out);
  void AnswerSummary(std::string& out);
  void AnswerDrilldown(std::uint32_t measurement, std::string& out);

  ServeCore* core_;
  TenantRuntime* tenant_ = nullptr;
  int tenant_index_ = -1;
  bool wants_drain_ = false;
  SampleRow row_scratch_;
  std::string payload_scratch_;
};

}  // namespace pmcorr
