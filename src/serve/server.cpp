#include "serve/server.h"

#include <algorithm>
#include <stdexcept>

#include "io/framing.h"

namespace pmcorr {

std::size_t ServeCore::AddTenant(TenantConfig config,
                                 std::unique_ptr<SystemMonitor> monitor) {
  if (FindTenant(config.name) != nullptr) {
    throw std::invalid_argument("ServeCore: duplicate tenant name \"" +
                                config.name + "\"");
  }
  tenants_.push_back(
      std::make_unique<TenantRuntime>(std::move(config), std::move(monitor)));
  return tenants_.size() - 1;
}

TenantRuntime* ServeCore::FindTenant(std::string_view name) {
  for (const std::unique_ptr<TenantRuntime>& tenant : tenants_) {
    if (tenant->Config().name == name) return tenant.get();
  }
  return nullptr;
}

DrainedReply ServeCore::Drain() {
  DrainedReply reply;
  reply.tenants.reserve(tenants_.size());
  for (const std::unique_ptr<TenantRuntime>& tenant : tenants_) {
    tenant->Drain();
    const TenantStatus status = tenant->Status();
    DrainedTenant entry;
    entry.name = tenant->Config().name;
    entry.state = static_cast<std::uint8_t>(status.state);
    entry.processed = status.counters.processed;
    if (tenant->Config().checkpoint_path.empty()) {
      entry.checkpoint = 0;
    } else {
      // "ok" means the drain sealed with a good final checkpoint: the
      // most recent write attempt succeeded. Earlier cadence successes
      // do not excuse a torn seal — a poisoned tenant or a failed final
      // write reports 2 and recovery falls back a generation.
      entry.checkpoint =
          (status.state == TenantState::kDrained &&
           status.counters.checkpoints > 0 && !status.last_checkpoint_failed)
              ? 1
              : 2;
    }
    reply.tenants.push_back(std::move(entry));
  }
  return reply;
}

bool ServeSession::Error(std::string_view message, std::string& out) {
  payload_scratch_.clear();
  EncodeErrorReply(message, payload_scratch_);
  AppendFrame(kFrameError, payload_scratch_, out);
  return false;
}

bool ServeSession::HandleFrame(const Frame& frame, std::string& out) {
  switch (frame.type) {
    case kFrameHello:
      return HandleHello(frame, out);
    case kFrameSample:
      return HandleSample(frame, out);
    case kFrameQuery:
      return HandleQuery(frame, out);
    case kFrameDrain:
      wants_drain_ = true;
      return true;
    default:
      return Error("unknown frame type", out);
  }
}

bool ServeSession::HandleHello(const Frame& frame, std::string& out) {
  HelloRequest hello;
  try {
    hello = DecodeHelloRequest(frame.payload);
  } catch (const FramingError& e) {
    return Error(e.what(), out);
  }
  if (hello.version != kServeProtocolVersion) {
    return Error("unsupported protocol version", out);
  }
  TenantRuntime* tenant = core_->FindTenant(hello.tenant);
  if (tenant == nullptr) {
    return Error("unknown tenant \"" + hello.tenant + "\"", out);
  }
  tenant_ = tenant;
  for (std::size_t i = 0; i < core_->TenantCount(); ++i) {
    if (&core_->Tenant(i) == tenant) {
      tenant_index_ = static_cast<int>(i);
    }
  }
  HelloReply reply;
  reply.tenant_index = static_cast<std::uint32_t>(tenant_index_);
  reply.measurement_count =
      static_cast<std::uint32_t>(tenant->Monitor().MeasurementCount());
  const IngestGuard& guard = tenant->Monitor().Health();
  reply.expected_period = guard.Enabled() ? guard.ExpectedPeriod() : 0;
  payload_scratch_.clear();
  EncodeHelloReply(reply, payload_scratch_);
  AppendFrame(kFrameHelloOk, payload_scratch_, out);
  return true;
}

bool ServeSession::HandleSample(const Frame& frame, std::string& out) {
  if (tenant_ == nullptr) {
    return Error("sample before hello", out);
  }
  try {
    DecodeSampleRowInto(frame.payload, row_scratch_);
  } catch (const FramingError& e) {
    return Error(e.what(), out);
  }
  const AdmitResult result = tenant_->Submit(row_scratch_);
  if (result.rejected) {
    // A structurally wrong row (or a drained/poisoned tenant) is a
    // protocol violation, not load — close loudly so the client never
    // mistakes rejection for shedding.
    return Error("row rejected (width mismatch or tenant not active)", out);
  }
  // Accepted and shed rows get no per-row reply: the ingest path stays
  // one-way at line rate; shedding is visible in status counters and
  // the daemon's backpressure edges.
  return true;
}

bool ServeSession::HandleQuery(const Frame& frame, std::string& out) {
  if (tenant_ == nullptr) {
    return Error("query before hello", out);
  }
  QueryRequest query;
  try {
    query = DecodeQueryRequest(frame.payload);
  } catch (const FramingError& e) {
    return Error(e.what(), out);
  }
  switch (query.kind) {
    case QueryKind::kStatus:
      AnswerStatus(out);
      return true;
    case QueryKind::kSummary:
      AnswerSummary(out);
      return true;
    case QueryKind::kDrilldown:
      if (query.arg >= tenant_->Monitor().MeasurementCount()) {
        return Error("drilldown measurement out of range", out);
      }
      AnswerDrilldown(query.arg, out);
      return true;
  }
  return Error("unknown query kind", out);
}

void ServeSession::AnswerStatus(std::string& out) {
  const TenantStatus status = tenant_->Status();
  const std::shared_ptr<const TenantPublishedState> published =
      tenant_->Published();
  StatusReply reply;
  reply.state = static_cast<std::uint8_t>(status.state);
  reply.submitted = status.counters.submitted;
  reply.accepted = status.counters.accepted;
  reply.shed_ticks = status.counters.shed_ticks;
  reply.rejected = status.counters.rejected;
  reply.processed = status.counters.processed;
  reply.checkpoints = status.counters.checkpoints;
  reply.checkpoint_failures = status.counters.checkpoint_failures;
  reply.backpressure_raises = status.counters.backpressure_raises;
  reply.backpressure_clears = status.counters.backpressure_clears;
  reply.max_queue_rows = status.counters.max_queue_rows;
  reply.queue_rows = status.queue_rows;
  reply.queue_budget = status.queue_budget;
  reply.alarms_total = published->alarms_total;
  reply.suppressed_total = published->suppressed_total;
  reply.quarantined_pairs =
      published->has_snapshot ? published->snapshot.quarantined_pairs : 0;
  if (published->has_snapshot) {
    reply.last_sample = published->snapshot.sample;
    reply.last_time = published->snapshot.time;
    reply.last_q = published->snapshot.system_score;
  }
  reply.last_error = status.last_error;
  payload_scratch_.clear();
  EncodeStatusReply(reply, payload_scratch_);
  AppendFrame(kFrameStatus, payload_scratch_, out);
}

void ServeSession::AnswerSummary(std::string& out) {
  const std::shared_ptr<const TenantPublishedState> published =
      tenant_->Published();
  SummaryReply reply;
  if (published->has_snapshot) {
    const SystemSnapshot& snap = published->snapshot;
    reply.has_snapshot = true;
    reply.sample = snap.sample;
    reply.time = snap.time;
    reply.system_score = snap.system_score;
    reply.measurement_scores = snap.measurement_scores;
    reply.measurement_health.assign(snap.measurement_health.begin(),
                                    snap.measurement_health.end());
    reply.alarmed_pairs.reserve(snap.alarmed_pairs.size());
    for (const std::size_t p : snap.alarmed_pairs) {
      reply.alarmed_pairs.push_back(static_cast<std::uint32_t>(p));
    }
  }
  payload_scratch_.clear();
  EncodeSummaryReply(reply, payload_scratch_);
  AppendFrame(kFrameSummary, payload_scratch_, out);
}

void ServeSession::AnswerDrilldown(std::uint32_t measurement,
                                   std::string& out) {
  // The graph's topology is immutable while the daemon serves (AddPair
  // is a serial-section call the daemon never makes), so reading it
  // here does not race the worker; scores come from the published
  // snapshot, never the live engine.
  const std::shared_ptr<const TenantPublishedState> published =
      tenant_->Published();
  const MeasurementGraph& graph = tenant_->Monitor().Graph();
  DrilldownReply reply;
  reply.measurement = measurement;
  const SystemSnapshot* snap = nullptr;
  if (published->has_snapshot) {
    snap = &published->snapshot;
    reply.has_snapshot = true;
    reply.sample = snap->sample;
    reply.system_score = snap->system_score;
    if (measurement < snap->measurement_scores.size()) {
      reply.measurement_score = snap->measurement_scores[measurement];
    }
  }
  for (const std::size_t pi :
       graph.PairsOf(MeasurementId(static_cast<std::int32_t>(measurement)))) {
    const PairId& pair = graph.Pair(pi);
    DrilldownPair entry;
    entry.pair_index = static_cast<std::uint32_t>(pi);
    entry.a = static_cast<std::uint32_t>(pair.a.value);
    entry.b = static_cast<std::uint32_t>(pair.b.value);
    if (snap != nullptr && pi < snap->pair_scores.size()) {
      if (snap->pair_scores[pi]) {
        entry.has_score = true;
        entry.score = *snap->pair_scores[pi];
      }
      entry.alarmed = std::find(snap->alarmed_pairs.begin(),
                                snap->alarmed_pairs.end(),
                                pi) != snap->alarmed_pairs.end();
    }
    reply.pairs.push_back(entry);
  }
  payload_scratch_.clear();
  EncodeDrilldownReply(reply, payload_scratch_);
  AppendFrame(kFrameDrilldown, payload_scratch_, out);
}

}  // namespace pmcorr
