// RunServeDaemon — the `pmcorr serve` entry point: bind a unix-domain
// socket, train or restore one TenantRuntime per --tenant spec, and run
// a single-threaded poll loop that only moves bytes (framing in,
// replies out). All engine work happens on the tenants' own worker
// threads; all protocol logic lives in serve/server.h. SIGTERM/SIGINT
// (or a client's kFrameDrain) stops intake, drains every tenant —
// checkpoint-then-exit — and returns 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pmcorr {

/// One tenant of the daemon: its name on the wire plus the trace that
/// trains it on cold start. On warm start (a checkpoint exists under
/// --checkpoint-dir) the checkpoint wins and the trace is not read.
struct ServeTenantSpec {
  std::string name;
  std::string trace_path;
  std::size_t train_days = 1;
};

struct ServeDaemonOptions {
  std::string socket_path;
  std::vector<ServeTenantSpec> tenants;
  /// Directory for per-tenant checkpoints ("" = checkpointing off).
  /// Files are <dir>/<tenant>.ckpt with the PR-5 generation rotation.
  std::string checkpoint_dir;
  /// Checkpoint cadence in processed rows (0 = only the drain seal).
  std::size_t checkpoint_every = 0;
  /// Per-tenant ingest queue budget in rows.
  std::size_t queue_budget = 256;
  /// Chaos knob: per-row processing delay, to force overload at replay
  /// speed.
  std::int64_t ingest_delay_ms = 0;
  /// Engine worker threads per tenant (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Rolling-retrain cadence in samples (0 = retrain off). Applies to
  /// cold-started tenants; a checkpoint-restored tenant runs with the
  /// loader's default engine config.
  std::size_t retrain_interval = 0;
  /// Neighborhood graph partners for cold-start training.
  std::size_t partners = 2;
  std::size_t max_connections = 64;
  /// A connection whose unsent replies exceed this many bytes is a slow
  /// consumer and is disconnected — readers must not grow the daemon.
  std::size_t output_buffer_limit = 4u << 20;
};

/// Runs until drained (signal or client request). Returns the process
/// exit code. Throws std::runtime_error on startup failure (bad trace,
/// unusable socket path).
int RunServeDaemon(const ServeDaemonOptions& options);

}  // namespace pmcorr
