#include "serve/daemon.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/time.h"
#include "io/csv.h"
#include "io/framing.h"
#include "io/monitor_io.h"
#include "serve/server.h"

namespace pmcorr {
namespace {

// Self-pipe signal bridge: the handler does the only async-signal-safe
// thing — write one byte — and the poll loop turns it into a drain.
int g_signal_pipe_write = -1;

void OnDrainSignal(int /*signo*/) {
  const char byte = 1;
  // A full pipe just means a drain is already pending.
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe_write, &byte, 1);
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("serve: fcntl(O_NONBLOCK) failed");
  }
}

/// One client connection of the poll loop.
struct Connection {
  explicit Connection(ServeCore& core) : session(core) {}
  int fd = -1;
  FrameReader reader;
  ServeSession session;
  std::string outbuf;
  bool last_backpressure = false;
  /// Protocol violation: flush what is queued, then close.
  bool closing = false;
};

/// Builds one tenant: restore from its checkpoint when one exists,
/// otherwise train from the trace.
std::unique_ptr<SystemMonitor> BuildTenantMonitor(
    const ServeDaemonOptions& options, const ServeTenantSpec& spec,
    const std::string& checkpoint_path) {
  if (!checkpoint_path.empty()) {
    CheckpointRecoveryInfo recovery;
    try {
      std::unique_ptr<SystemMonitor> monitor =
          LoadSystemMonitor(checkpoint_path, options.threads, &recovery);
      std::printf("tenant %s: restored from %s (generation %zu)\n",
                  spec.name.c_str(), recovery.loaded_path.c_str(),
                  recovery.generation);
      for (const std::string& rejection : recovery.rejected) {
        std::printf("tenant %s: rejected newer candidate %s\n",
                    spec.name.c_str(), rejection.c_str());
      }
      return monitor;
    } catch (const std::exception&) {
      // No generation loadable: cold start from the trace.
    }
  }
  const MeasurementFrame frame = ReadFrameCsv(spec.trace_path);
  const TimePoint split =
      frame.StartTime() + static_cast<TimePoint>(spec.train_days) * kDay;
  const MeasurementFrame train = frame.SliceByTime(frame.StartTime(), split);
  if (train.SampleCount() < 2) {
    throw std::runtime_error("tenant " + spec.name + ": trace " +
                             spec.trace_path +
                             " has fewer than two training samples");
  }
  MeasurementGraph graph =
      MeasurementGraph::Neighborhood(train, options.partners, 7);
  MonitorConfig config;
  config.threads = options.threads;
  if (options.retrain_interval > 0) {
    config.retrain.enabled = true;
    config.retrain.pool.interval_samples = options.retrain_interval;
  }
  auto monitor =
      std::make_unique<SystemMonitor>(train, std::move(graph), config);
  std::printf("tenant %s: trained %zu pair models on %zu samples\n",
              spec.name.c_str(), monitor->Graph().PairCount(),
              train.SampleCount());
  return monitor;
}

void FlushOutbuf(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.outbuf.clear();  // broken peer: nothing left to flush
      conn.closing = true;
      return;
    }
    conn.outbuf.erase(0, static_cast<std::size_t>(n));
  }
}

const char* CheckpointStateName(std::uint8_t state) {
  switch (state) {
    case 0:
      return "none";
    case 1:
      return "ok";
    default:
      return "failed";
  }
}

}  // namespace

int RunServeDaemon(const ServeDaemonOptions& options) {
  if (options.socket_path.empty() || options.tenants.empty()) {
    throw std::runtime_error(
        "serve: --socket and at least one --tenant are required");
  }

  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      throw std::runtime_error("serve: cannot create checkpoint dir " +
                               options.checkpoint_dir + ": " + ec.message());
    }
  }

  ServeCore core;
  for (const ServeTenantSpec& spec : options.tenants) {
    std::string checkpoint_path;
    if (!options.checkpoint_dir.empty()) {
      checkpoint_path = options.checkpoint_dir + "/" + spec.name + ".ckpt";
    }
    TenantConfig config;
    config.name = spec.name;
    config.queue_budget = options.queue_budget;
    config.checkpoint_every = options.checkpoint_every;
    config.checkpoint_path = checkpoint_path;
    config.ingest_delay_ms = options.ingest_delay_ms;
    core.AddTenant(std::move(config),
                   BuildTenantMonitor(options, spec, checkpoint_path));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options.socket_path);
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  unlink(options.socket_path.c_str());
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw std::runtime_error("serve: socket() failed");
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0 ||
      listen(listen_fd, 16) < 0) {
    close(listen_fd);
    throw std::runtime_error("serve: cannot bind " + options.socket_path);
  }
  SetNonBlocking(listen_fd);

  int signal_pipe[2] = {-1, -1};
  if (pipe(signal_pipe) != 0) {
    close(listen_fd);
    throw std::runtime_error("serve: pipe() failed");
  }
  SetNonBlocking(signal_pipe[0]);
  SetNonBlocking(signal_pipe[1]);
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action{};
  action.sa_handler = OnDrainSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("serve: listening on %s (%zu tenants)\n",
              options.socket_path.c_str(), core.TenantCount());
  std::fflush(stdout);

  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<pollfd> fds;
  bool drain_requested = false;
  Connection* drain_requester = nullptr;
  std::string scratch;
  char buf[4096];

  while (!drain_requested) {
    fds.clear();
    fds.push_back({listen_fd, POLLIN, 0});
    fds.push_back({signal_pipe[0], POLLIN, 0});
    for (const std::unique_ptr<Connection>& conn : connections) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    // Finite timeout so backpressure edges propagate even on a quiet
    // socket (the queue drains on the tenants' own threads).
    const int ready = poll(fds.data(), fds.size(), 50);
    if (ready < 0 && errno != EINTR) break;

    if ((fds[1].revents & POLLIN) != 0) {
      while (read(signal_pipe[0], buf, sizeof(buf)) > 0) {
      }
      drain_requested = true;
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (connections.size() >= options.max_connections) {
          close(fd);
          continue;
        }
        SetNonBlocking(fd);
        auto conn = std::make_unique<Connection>(core);
        conn->fd = fd;
        connections.push_back(std::move(conn));
      }
    }

    for (std::size_t c = 0; c < connections.size(); ++c) {
      Connection& conn = *connections[c];
      const pollfd& pfd = fds[2 + c];
      if ((pfd.revents & POLLOUT) != 0) FlushOutbuf(conn);
      if (conn.closing) continue;
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      for (;;) {
        const ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          try {
            conn.reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
            while (const std::optional<Frame> frame = conn.reader.Next()) {
              if (!conn.session.HandleFrame(*frame, conn.outbuf)) {
                conn.closing = true;
                break;
              }
              if (conn.session.WantsDrain()) {
                drain_requested = true;
                drain_requester = &conn;
                break;
              }
            }
          } catch (const FramingError& e) {
            scratch.clear();
            EncodeErrorReply(e.what(), scratch);
            AppendFrame(kFrameError, scratch, conn.outbuf);
            conn.closing = true;
          }
          if (conn.closing || drain_requested) break;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.closing = true;  // EOF or hard error
        break;
      }
      if (drain_requested) break;
    }

    // Unsolicited backpressure edges for bound sessions, plus
    // slow-consumer enforcement: a reader that does not keep up may not
    // grow the daemon's memory.
    for (const std::unique_ptr<Connection>& conn : connections) {
      if (conn->closing) continue;
      TenantRuntime* tenant = conn->session.Tenant();
      if (tenant != nullptr) {
        const bool engaged = tenant->BackpressureEngaged();
        if (engaged != conn->last_backpressure) {
          conn->last_backpressure = engaged;
          BackpressureEvent event;
          event.engaged = engaged;
          event.queue_rows = tenant->Status().queue_rows;
          scratch.clear();
          EncodeBackpressureEvent(event, scratch);
          AppendFrame(kFrameBackpressure, scratch, conn->outbuf);
        }
      }
      FlushOutbuf(*conn);
      if (conn->outbuf.size() > options.output_buffer_limit) {
        std::printf("serve: disconnecting slow consumer (%zu buffered"
                    " bytes)\n",
                    conn->outbuf.size());
        conn->outbuf.clear();
        conn->closing = true;
      }
    }
    for (std::size_t c = connections.size(); c-- > 0;) {
      Connection& conn = *connections[c];
      if (!conn.closing) continue;
      FlushOutbuf(conn);
      close(conn.fd);
      connections.erase(connections.begin() +
                        static_cast<std::ptrdiff_t>(c));
    }
  }

  // Drain: stop intake, finish every queue, checkpoint every tenant.
  close(listen_fd);
  const DrainedReply drained = core.Drain();
  for (const DrainedTenant& tenant : drained.tenants) {
    std::printf("tenant %s: drained processed=%llu checkpoint=%s\n",
                tenant.name.c_str(),
                static_cast<unsigned long long>(tenant.processed),
                CheckpointStateName(tenant.checkpoint));
  }
  if (drain_requester != nullptr) {
    scratch.clear();
    EncodeDrainedReply(drained, scratch);
    AppendFrame(kFrameDrained, scratch, drain_requester->outbuf);
    // Best-effort blocking flush so the requester sees the reply.
    const int flags = fcntl(drain_requester->fd, F_GETFL, 0);
    if (flags >= 0) {
      fcntl(drain_requester->fd, F_SETFL, flags & ~O_NONBLOCK);
    }
    FlushOutbuf(*drain_requester);
  }
  for (const std::unique_ptr<Connection>& conn : connections) {
    close(conn->fd);
  }
  close(signal_pipe[0]);
  close(signal_pipe[1]);
  g_signal_pipe_write = -1;
  unlink(options.socket_path.c_str());
  std::printf("serve: drained\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace pmcorr
