#include "serve/protocol.h"

#include <cmath>

#include "io/framing.h"

namespace pmcorr {
namespace {

// Width cap shared with the delta codecs: bounds every count-prefixed
// allocation a hostile payload could request.
constexpr std::uint32_t kMaxWireWidth = 1u << 20;

void EncodeOptionalScore(WireWriter& w, const std::optional<double>& v) {
  w.U8(v.has_value() ? 1 : 0);
  if (v) w.F64(*v);
}

std::optional<double> DecodeOptionalScore(WireReader& r) {
  if (r.U8() == 0) return std::nullopt;
  return r.F64();
}

std::uint32_t ReadWidth(WireReader& r, const char* what) {
  const std::uint32_t n = r.U32();
  if (n > kMaxWireWidth) {
    r.Fail(std::string(what) + " count exceeds limit");
  }
  return n;
}

}  // namespace

void EncodeHelloRequest(const HelloRequest& msg, std::string& out) {
  WireWriter w(out);
  w.U8(msg.version);
  w.Str(msg.tenant);
}

HelloRequest DecodeHelloRequest(std::string_view payload) {
  WireReader r(payload, "HelloRequest");
  HelloRequest msg;
  msg.version = r.U8();
  msg.tenant = std::string(r.Str());
  r.ExpectEnd();
  return msg;
}

void EncodeHelloReply(const HelloReply& msg, std::string& out) {
  WireWriter w(out);
  w.U32(msg.tenant_index);
  w.U32(msg.measurement_count);
  w.I64(msg.expected_period);
}

HelloReply DecodeHelloReply(std::string_view payload) {
  WireReader r(payload, "HelloReply");
  HelloReply msg;
  msg.tenant_index = r.U32();
  msg.measurement_count = r.U32();
  msg.expected_period = r.I64();
  r.ExpectEnd();
  return msg;
}

void EncodeSampleRow(const SampleRow& row, std::string& out) {
  WireWriter w(out);
  w.I64(row.time);
  w.U32(static_cast<std::uint32_t>(row.values.size()));
  for (const double v : row.values) w.F64(v);
}

void DecodeSampleRowInto(std::string_view payload, SampleRow& row) {
  WireReader r(payload, "SampleRow");
  row.time = r.I64();
  const std::uint32_t n = ReadWidth(r, "sample value");
  row.values.clear();
  row.values.reserve(n);
  // Values travel as raw bit patterns: NaN (the missing-value marker
  // the guard and models understand) is legal here, so no finiteness
  // check — the length discipline alone bounds the row.
  for (std::uint32_t i = 0; i < n; ++i) row.values.push_back(r.F64());
  r.ExpectEnd();
}

void EncodeQueryRequest(const QueryRequest& msg, std::string& out) {
  WireWriter w(out);
  w.U8(static_cast<std::uint8_t>(msg.kind));
  w.U32(msg.arg);
}

QueryRequest DecodeQueryRequest(std::string_view payload) {
  WireReader r(payload, "QueryRequest");
  QueryRequest msg;
  const std::uint8_t kind = r.U8();
  if (kind > static_cast<std::uint8_t>(QueryKind::kDrilldown)) {
    r.Fail("unknown query kind");
  }
  msg.kind = static_cast<QueryKind>(kind);
  msg.arg = r.U32();
  r.ExpectEnd();
  return msg;
}

void EncodeStatusReply(const StatusReply& msg, std::string& out) {
  WireWriter w(out);
  w.U8(msg.state);
  w.U64(msg.submitted);
  w.U64(msg.accepted);
  w.U64(msg.shed_ticks);
  w.U64(msg.rejected);
  w.U64(msg.processed);
  w.U64(msg.checkpoints);
  w.U64(msg.checkpoint_failures);
  w.U64(msg.backpressure_raises);
  w.U64(msg.backpressure_clears);
  w.U64(msg.max_queue_rows);
  w.U64(msg.queue_rows);
  w.U64(msg.queue_budget);
  w.U64(msg.alarms_total);
  w.U64(msg.suppressed_total);
  w.U64(msg.quarantined_pairs);
  w.U64(msg.last_sample);
  w.I64(msg.last_time);
  EncodeOptionalScore(w, msg.last_q);
  w.Str(msg.last_error);
}

StatusReply DecodeStatusReply(std::string_view payload) {
  WireReader r(payload, "StatusReply");
  StatusReply msg;
  msg.state = r.U8();
  msg.submitted = r.U64();
  msg.accepted = r.U64();
  msg.shed_ticks = r.U64();
  msg.rejected = r.U64();
  msg.processed = r.U64();
  msg.checkpoints = r.U64();
  msg.checkpoint_failures = r.U64();
  msg.backpressure_raises = r.U64();
  msg.backpressure_clears = r.U64();
  msg.max_queue_rows = r.U64();
  msg.queue_rows = r.U64();
  msg.queue_budget = r.U64();
  msg.alarms_total = r.U64();
  msg.suppressed_total = r.U64();
  msg.quarantined_pairs = r.U64();
  msg.last_sample = r.U64();
  msg.last_time = r.I64();
  msg.last_q = DecodeOptionalScore(r);
  msg.last_error = std::string(r.Str());
  r.ExpectEnd();
  return msg;
}

void EncodeSummaryReply(const SummaryReply& msg, std::string& out) {
  WireWriter w(out);
  w.U8(msg.has_snapshot ? 1 : 0);
  if (!msg.has_snapshot) return;
  w.U64(msg.sample);
  w.I64(msg.time);
  EncodeOptionalScore(w, msg.system_score);
  w.U32(static_cast<std::uint32_t>(msg.measurement_scores.size()));
  for (const std::optional<double>& qa : msg.measurement_scores) {
    EncodeOptionalScore(w, qa);
  }
  w.U32(static_cast<std::uint32_t>(msg.measurement_health.size()));
  for (const MeasurementHealth h : msg.measurement_health) {
    w.U8(static_cast<std::uint8_t>(h));
  }
  w.U32(static_cast<std::uint32_t>(msg.alarmed_pairs.size()));
  for (const std::uint32_t p : msg.alarmed_pairs) w.U32(p);
}

SummaryReply DecodeSummaryReply(std::string_view payload) {
  WireReader r(payload, "SummaryReply");
  SummaryReply msg;
  msg.has_snapshot = r.U8() != 0;
  if (!msg.has_snapshot) {
    r.ExpectEnd();
    return msg;
  }
  msg.sample = r.U64();
  msg.time = r.I64();
  msg.system_score = DecodeOptionalScore(r);
  const std::uint32_t m = ReadWidth(r, "measurement score");
  msg.measurement_scores.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    msg.measurement_scores.push_back(DecodeOptionalScore(r));
  }
  const std::uint32_t h = ReadWidth(r, "measurement health");
  if (h != 0 && h != m) r.Fail("health width mismatch");
  msg.measurement_health.reserve(h);
  for (std::uint32_t i = 0; i < h; ++i) {
    const std::uint8_t code = r.U8();
    if (code > static_cast<std::uint8_t>(MeasurementHealth::kDead)) {
      r.Fail("unknown health code");
    }
    msg.measurement_health.push_back(static_cast<MeasurementHealth>(code));
  }
  const std::uint32_t a = ReadWidth(r, "alarmed pair");
  msg.alarmed_pairs.reserve(a);
  for (std::uint32_t i = 0; i < a; ++i) msg.alarmed_pairs.push_back(r.U32());
  r.ExpectEnd();
  return msg;
}

void EncodeDrilldownReply(const DrilldownReply& msg, std::string& out) {
  WireWriter w(out);
  w.U32(msg.measurement);
  w.U8(msg.has_snapshot ? 1 : 0);
  w.U64(msg.sample);
  EncodeOptionalScore(w, msg.system_score);
  EncodeOptionalScore(w, msg.measurement_score);
  w.U32(static_cast<std::uint32_t>(msg.pairs.size()));
  for (const DrilldownPair& p : msg.pairs) {
    w.U32(p.pair_index);
    w.U32(p.a);
    w.U32(p.b);
    w.U8(p.has_score ? 1 : 0);
    w.F64(p.score);
    w.U8(p.alarmed ? 1 : 0);
  }
}

DrilldownReply DecodeDrilldownReply(std::string_view payload) {
  WireReader r(payload, "DrilldownReply");
  DrilldownReply msg;
  msg.measurement = r.U32();
  msg.has_snapshot = r.U8() != 0;
  msg.sample = r.U64();
  msg.system_score = DecodeOptionalScore(r);
  msg.measurement_score = DecodeOptionalScore(r);
  const std::uint32_t n = ReadWidth(r, "drilldown pair");
  msg.pairs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DrilldownPair p;
    p.pair_index = r.U32();
    p.a = r.U32();
    p.b = r.U32();
    p.has_score = r.U8() != 0;
    p.score = r.F64();
    p.alarmed = r.U8() != 0;
    msg.pairs.push_back(p);
  }
  r.ExpectEnd();
  return msg;
}

void EncodeBackpressureEvent(const BackpressureEvent& msg, std::string& out) {
  WireWriter w(out);
  w.U8(msg.engaged ? 1 : 0);
  w.U64(msg.queue_rows);
}

BackpressureEvent DecodeBackpressureEvent(std::string_view payload) {
  WireReader r(payload, "BackpressureEvent");
  BackpressureEvent msg;
  msg.engaged = r.U8() != 0;
  msg.queue_rows = r.U64();
  r.ExpectEnd();
  return msg;
}

void EncodeDrainedReply(const DrainedReply& msg, std::string& out) {
  WireWriter w(out);
  w.U32(static_cast<std::uint32_t>(msg.tenants.size()));
  for (const DrainedTenant& t : msg.tenants) {
    w.Str(t.name);
    w.U8(t.state);
    w.U64(t.processed);
    w.U8(t.checkpoint);
  }
}

DrainedReply DecodeDrainedReply(std::string_view payload) {
  WireReader r(payload, "DrainedReply");
  DrainedReply msg;
  const std::uint32_t n = ReadWidth(r, "drained tenant");
  msg.tenants.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DrainedTenant t;
    t.name = std::string(r.Str());
    t.state = r.U8();
    t.processed = r.U64();
    t.checkpoint = r.U8();
    if (t.checkpoint > 2) r.Fail("unknown checkpoint state");
    msg.tenants.push_back(std::move(t));
  }
  r.ExpectEnd();
  return msg;
}

void EncodeErrorReply(std::string_view message, std::string& out) {
  WireWriter w(out);
  w.Str(message);
}

std::string DecodeErrorReply(std::string_view payload) {
  WireReader r(payload, "ErrorReply");
  std::string message(r.Str());
  r.ExpectEnd();
  return message;
}

}  // namespace pmcorr
