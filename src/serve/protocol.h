// The serve daemon's wire protocol: typed request/reply messages over
// the shared frame envelope of io/framing.h.
//
// Transport shape: a client connects to the daemon's unix socket, sends
// kFrameHello to bind the connection to one tenant, then streams
// kFrameSample rows and interleaves kFrameQuery requests. The server
// answers queries with the matching reply frame, pushes unsolicited
// kFrameBackpressure edges when the tenant's queue crosses its
// watermarks, and answers kFrameDrain (or SIGTERM) with kFrameDrained
// after every tenant checkpointed. Any malformed frame or protocol
// violation earns one kFrameError and the connection is closed — the
// strict-parser doctrine: a confused peer is disconnected, not guessed
// at.
//
// Every encoder/decoder here is a pure payload<->struct codec; decoders
// throw FramingError on any deviation. Both the server session
// (serve/server.h) and the replay client (tools/pmcorr_replay.cpp)
// speak only through these, so the two ends cannot drift apart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/snapshot.h"
#include "io/csv.h"

namespace pmcorr {

/// Protocol revision carried in kFrameHello.
inline constexpr std::uint8_t kServeProtocolVersion = 1;

// Client -> server frame types.
inline constexpr std::uint8_t kFrameHello = 0x10;
inline constexpr std::uint8_t kFrameSample = 0x11;
inline constexpr std::uint8_t kFrameQuery = 0x12;
inline constexpr std::uint8_t kFrameDrain = 0x13;

// Server -> client frame types.
inline constexpr std::uint8_t kFrameHelloOk = 0x20;
inline constexpr std::uint8_t kFrameStatus = 0x21;
inline constexpr std::uint8_t kFrameSummary = 0x22;
inline constexpr std::uint8_t kFrameDrilldown = 0x23;
inline constexpr std::uint8_t kFrameBackpressure = 0x24;
inline constexpr std::uint8_t kFrameDrained = 0x25;
inline constexpr std::uint8_t kFrameError = 0x2F;

/// kFrameHello: bind this connection to one tenant.
struct HelloRequest {
  std::uint8_t version = kServeProtocolVersion;
  std::string tenant;
};

/// kFrameHelloOk: the binding's ground truth — the client can size its
/// rows and pace its clock from this.
struct HelloReply {
  std::uint32_t tenant_index = 0;
  std::uint32_t measurement_count = 0;
  /// The ingest guard's expected cadence (0 when the guard is off).
  std::int64_t expected_period = 0;
};

/// kFrameQuery: one of the three live query surfaces.
enum class QueryKind : std::uint8_t {
  /// Runtime counters: queue, shedding, checkpoints, backpressure.
  kStatus = 0,
  /// The published snapshot's fitness/health/alarm view (Q and Q^a).
  kSummary = 1,
  /// Q -> Q^a -> Q^{a,b}: every pair of measurement `arg` with its
  /// current score (the paper's localization walk).
  kDrilldown = 2,
};

struct QueryRequest {
  QueryKind kind = QueryKind::kStatus;
  /// kDrilldown: the measurement index. Unused otherwise.
  std::uint32_t arg = 0;
};

/// kFrameStatus: the tenant's operational counters. Field meanings
/// match TenantCounters (serve/tenant.h); the invariant the smoke test
/// asserts is submitted == accepted + shed_ticks + rejected, and after
/// a drain, processed == accepted.
struct StatusReply {
  std::uint8_t state = 0;  // TenantState
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_ticks = 0;
  std::uint64_t rejected = 0;
  std::uint64_t processed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t backpressure_raises = 0;
  std::uint64_t backpressure_clears = 0;
  std::uint64_t max_queue_rows = 0;
  std::uint64_t queue_rows = 0;
  std::uint64_t queue_budget = 0;
  std::uint64_t alarms_total = 0;
  std::uint64_t suppressed_total = 0;
  std::uint64_t quarantined_pairs = 0;
  std::uint64_t last_sample = 0;
  std::int64_t last_time = 0;
  std::optional<double> last_q;
  std::string last_error;
};

/// kFrameSummary: system + per-measurement level of the published
/// snapshot (Q, Q^a, feed health, this tick's alarmed pairs).
struct SummaryReply {
  bool has_snapshot = false;
  std::uint64_t sample = 0;
  std::int64_t time = 0;
  std::optional<double> system_score;
  std::vector<std::optional<double>> measurement_scores;
  /// Empty when the ingest guard is off.
  std::vector<MeasurementHealth> measurement_health;
  std::vector<std::uint32_t> alarmed_pairs;
};

/// One edge of a drill-down answer: pair `pair_index` = (a, b) with its
/// current Q^{a,b} (disengaged when has_score is false).
struct DrilldownPair {
  std::uint32_t pair_index = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool has_score = false;
  double score = 0.0;
  bool alarmed = false;
};

/// kFrameDrilldown: measurement `measurement`'s place in the fitness
/// hierarchy — Q above it, its own Q^a, and every incident pair below.
struct DrilldownReply {
  std::uint32_t measurement = 0;
  bool has_snapshot = false;
  std::uint64_t sample = 0;
  std::optional<double> system_score;
  std::optional<double> measurement_score;
  std::vector<DrilldownPair> pairs;
};

/// kFrameBackpressure: unsolicited queue-watermark edge for the bound
/// tenant. `engaged` raises at the high watermark, clears at the low
/// one; a well-behaved client throttles between the two.
struct BackpressureEvent {
  bool engaged = false;
  std::uint64_t queue_rows = 0;
};

/// One tenant's line of a kFrameDrained reply.
struct DrainedTenant {
  std::string name;
  std::uint8_t state = 0;  // TenantState
  std::uint64_t processed = 0;
  /// 0 = no checkpoint configured, 1 = written, 2 = failed.
  std::uint8_t checkpoint = 0;
};

struct DrainedReply {
  std::vector<DrainedTenant> tenants;
};

// Payload codecs. Encoders append to `out`; decoders throw FramingError
// on malformed payloads (truncation, trailing bytes, out-of-range
// enums/counts).
void EncodeHelloRequest(const HelloRequest& msg, std::string& out);
HelloRequest DecodeHelloRequest(std::string_view payload);

void EncodeHelloReply(const HelloReply& msg, std::string& out);
HelloReply DecodeHelloReply(std::string_view payload);

/// kFrameSample payload: i64 time | u32 count | count x f64 (bitwise).
void EncodeSampleRow(const SampleRow& row, std::string& out);
/// Decodes into `row` reusing its values capacity — the per-row hot
/// path of the ingest loop.
void DecodeSampleRowInto(std::string_view payload, SampleRow& row);

void EncodeQueryRequest(const QueryRequest& msg, std::string& out);
QueryRequest DecodeQueryRequest(std::string_view payload);

void EncodeStatusReply(const StatusReply& msg, std::string& out);
StatusReply DecodeStatusReply(std::string_view payload);

void EncodeSummaryReply(const SummaryReply& msg, std::string& out);
SummaryReply DecodeSummaryReply(std::string_view payload);

void EncodeDrilldownReply(const DrilldownReply& msg, std::string& out);
DrilldownReply DecodeDrilldownReply(std::string_view payload);

void EncodeBackpressureEvent(const BackpressureEvent& msg, std::string& out);
BackpressureEvent DecodeBackpressureEvent(std::string_view payload);

void EncodeDrainedReply(const DrainedReply& msg, std::string& out);
DrainedReply DecodeDrainedReply(std::string_view payload);

void EncodeErrorReply(std::string_view message, std::string& out);
std::string DecodeErrorReply(std::string_view payload);

}  // namespace pmcorr
