#include "serve/tenant.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

namespace pmcorr {

TenantRuntime::TenantRuntime(TenantConfig config,
                             std::unique_ptr<SystemMonitor> monitor)
    : config_(std::move(config)), monitor_(std::move(monitor)) {
  if (config_.queue_budget == 0) config_.queue_budget = 1;
  high_watermark_ = config_.backpressure_high != 0
                        ? config_.backpressure_high
                        : std::max<std::size_t>(
                              1, config_.queue_budget * 3 / 4);
  high_watermark_ = std::min(high_watermark_, config_.queue_budget);
  low_watermark_ = config_.backpressure_low != 0 ? config_.backpressure_low
                                                 : config_.queue_budget / 4;
  if (low_watermark_ >= high_watermark_) {
    low_watermark_ = high_watermark_ - 1;
  }
  width_ = monitor_->MeasurementCount();
  published_.store(std::make_shared<const TenantPublishedState>(),
                   std::memory_order_release);
  if (config_.threaded) {
    worker_ = std::thread(&TenantRuntime::WorkerLoop, this);
  }
}

TenantRuntime::~TenantRuntime() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

AdmitResult TenantRuntime::Submit(const SampleRow& row) {
  AdmitResult result;
  {
    const MutexLock lock(mu_);
    ++counters_.submitted;
    if (state_ != TenantState::kActive || row.values.size() != width_) {
      ++counters_.rejected;
      result.rejected = true;
      result.queue_rows = queue_.size();
      return result;
    }
    if (queue_.size() >= config_.queue_budget) {
      // Overload: shed the whole arriving tick. Nothing partial enters
      // the queue, so the engine's view stays a clean prefix of the
      // stream plus gaps — exactly what the IngestGuard models.
      ++counters_.shed_ticks;
      result.shed = true;
      result.queue_rows = queue_.size();
      return result;
    }
    queue_.push_back(row);
    ++counters_.accepted;
    result.accepted = true;
    result.queue_rows = queue_.size();
    counters_.max_queue_rows =
        std::max<std::uint64_t>(counters_.max_queue_rows, queue_.size());
    if (!backpressure_ && queue_.size() >= high_watermark_) {
      backpressure_ = true;
      ++counters_.backpressure_raises;
    }
  }
  work_cv_.NotifyOne();
  return result;
}

bool TenantRuntime::PopRowLocked() {
  if (queue_.empty()) return false;
  row_scratch_ = std::move(queue_.front());
  queue_.pop_front();
  if (backpressure_ && queue_.size() <= low_watermark_) {
    backpressure_ = false;
    ++counters_.backpressure_clears;
  }
  return true;
}

void TenantRuntime::ProcessRow(const SampleRow& row) {
  if (config_.chaos_hook) config_.chaos_hook(processed_total_);
  monitor_->Step(row.values, row.time, snap_scratch_);
  ++processed_total_;
  ++rows_since_checkpoint_;
  alarms_total_ += snap_scratch_.alarmed_pairs.size();
  suppressed_total_ += snap_scratch_.suppressed_values;
  auto next = std::make_shared<TenantPublishedState>();
  next->has_snapshot = true;
  next->snapshot = snap_scratch_;
  next->processed = processed_total_;
  next->alarms_total = alarms_total_;
  next->suppressed_total = suppressed_total_;
  published_.store(std::move(next), std::memory_order_release);
}

void TenantRuntime::MaybeCheckpoint(bool final_checkpoint) {
  if (config_.checkpoint_path.empty()) return;
  if (!final_checkpoint) {
    if (config_.checkpoint_every == 0) return;
    if (rows_since_checkpoint_ < config_.checkpoint_every) return;
  }
  try {
    SaveSystemMonitor(*monitor_, config_.checkpoint_path, config_.checkpoint);
    rows_since_checkpoint_ = 0;
    const MutexLock lock(mu_);
    ++counters_.checkpoints;
    last_checkpoint_failed_ = false;
  } catch (const std::exception& e) {
    // A failed checkpoint is a counted degradation, not a crash: the
    // tenant keeps serving from memory and retries at the next cadence;
    // recovery falls back to the previous good generation.
    const MutexLock lock(mu_);
    ++counters_.checkpoint_failures;
    last_checkpoint_failed_ = true;
    last_error_ = e.what();
  }
}

void TenantRuntime::Poison(const std::string& what) {
  {
    const MutexLock lock(mu_);
    state_ = TenantState::kPoisoned;
    last_error_ = what;
    queue_.clear();
  }
  drained_cv_.NotifyAll();
}

void TenantRuntime::WorkerLoop() {
  for (;;) {
    {
      const MutexLock lock(mu_);
      while (queue_.empty() && state_ == TenantState::kActive && !stop_) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;  // abrupt stop: queued rows are dropped
      if (!PopRowLocked()) break;  // draining and the queue is dry
    }
    if (config_.ingest_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.ingest_delay_ms));
    }
    try {
      ProcessRow(row_scratch_);
    } catch (const std::exception& e) {
      Poison(e.what());
      return;
    }
    {
      const MutexLock lock(mu_);
      ++counters_.processed;
    }
    MaybeCheckpoint(/*final_checkpoint=*/false);
  }
  // Drain epilogue: the queue is empty and no more rows can be
  // admitted; seal the tenant with a final checkpoint.
  MaybeCheckpoint(/*final_checkpoint=*/true);
  {
    const MutexLock lock(mu_);
    state_ = TenantState::kDrained;
  }
  drained_cv_.NotifyAll();
}

std::size_t TenantRuntime::Pump(std::size_t max_rows) {
  if (config_.threaded) {
    throw std::logic_error(
        "TenantRuntime::Pump: a worker thread owns this engine");
  }
  std::size_t done = 0;
  while (done < max_rows) {
    {
      const MutexLock lock(mu_);
      if (state_ == TenantState::kPoisoned) break;
      if (!PopRowLocked()) break;
    }
    try {
      ProcessRow(row_scratch_);
    } catch (const std::exception& e) {
      Poison(e.what());
      break;
    }
    {
      const MutexLock lock(mu_);
      ++counters_.processed;
    }
    ++done;
    MaybeCheckpoint(/*final_checkpoint=*/false);
  }
  return done;
}

void TenantRuntime::Drain() {
  {
    const MutexLock lock(mu_);
    if (state_ == TenantState::kPoisoned ||
        state_ == TenantState::kDrained) {
      return;
    }
    state_ = TenantState::kDraining;
  }
  if (!config_.threaded) {
    Pump(std::numeric_limits<std::size_t>::max());
    if (State() == TenantState::kPoisoned) return;
    MaybeCheckpoint(/*final_checkpoint=*/true);
    {
      const MutexLock lock(mu_);
      state_ = TenantState::kDrained;
    }
    drained_cv_.NotifyAll();
    return;
  }
  work_cv_.NotifyAll();
  const MutexLock lock(mu_);
  while (state_ == TenantState::kDraining) drained_cv_.Wait(mu_);
}

TenantStatus TenantRuntime::Status() const {
  const MutexLock lock(mu_);
  TenantStatus status;
  status.state = state_;
  status.counters = counters_;
  status.queue_rows = queue_.size();
  status.queue_budget = config_.queue_budget;
  status.backpressure = backpressure_;
  status.last_checkpoint_failed = last_checkpoint_failed_;
  status.last_error = last_error_;
  return status;
}

TenantState TenantRuntime::State() const {
  const MutexLock lock(mu_);
  return state_;
}

bool TenantRuntime::BackpressureEngaged() const {
  const MutexLock lock(mu_);
  return backpressure_;
}

}  // namespace pmcorr
