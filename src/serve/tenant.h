// TenantRuntime — one tenant group of the serve daemon: its own
// SystemMonitor (with IngestGuard, PairQuarantine and the shared
// RetrainPool behind MonitorConfig::retrain), a bounded ingest queue
// with watermark backpressure and whole-tick overload shedding, a
// lock-free published snapshot for queries, cadence checkpointing, and
// a drain-then-checkpoint lifecycle.
//
// Robustness doctrine, in order of importance:
//
//  * Bounded memory. The queue never exceeds queue_budget rows; an
//    arriving row that finds it full is shed whole — never split, never
//    partially applied. A shed tick is indistinguishable from a
//    collector outage, which is exactly the degradation the IngestGuard
//    already models: the next accepted row surfaces as a gap event and
//    the models cross the discontinuity through a sequence break.
//    Suppression-only degradation means alarms never increase under
//    shedding (the guard removes evidence, it never fabricates any).
//
//  * Fault isolation. Each tenant owns its engine and its worker; a row
//    that makes the engine throw (with the quarantine unable to contain
//    it) poisons only this tenant — state kPoisoned, queue dropped,
//    last-good checkpoint left untouched — while every other tenant's
//    stream continues bit-for-bit as if the poisoned one never existed.
//
//  * Crash-safe progress. Checkpoints go through the PR-5 atomic/CRC
//    rotation machinery on a row cadence; a checkpoint failure is a
//    counted event, not a crash (the tenant keeps serving and retries
//    at the next cadence). Drain() finishes the queue and writes a
//    final checkpoint; destruction without Drain is the crash path —
//    recovery falls back to the last good generation.
//
// Thread shape: Submit (the daemon's socket loop) and the worker meet
// only at the queue mutex; the engine is touched by the worker alone.
// Queries never take any lock — they read the last published state
// through an atomic shared_ptr. With threaded = false no worker is
// spawned and Pump()/Drain() process rows on the caller's thread — the
// deterministic mode the chaos tests choreograph.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "engine/monitor.h"
#include "io/csv.h"
#include "io/monitor_io.h"

namespace pmcorr {

struct TenantConfig {
  std::string name;
  /// Ingest queue capacity in rows — the tenant's memory budget.
  std::size_t queue_budget = 256;
  /// Backpressure watermarks; 0 resolves to 3/4 and 1/4 of the budget.
  std::size_t backpressure_high = 0;
  std::size_t backpressure_low = 0;
  /// Checkpoint after every N processed rows (0 = cadence off; a drain
  /// still checkpoints when checkpoint_path is set).
  std::size_t checkpoint_every = 0;
  /// Checkpoint file ("" = checkpointing off).
  std::string checkpoint_path;
  CheckpointConfig checkpoint;
  /// Chaos knob: sleep this long before each processed row — a slow
  /// consumer that forces queue growth at replay speed.
  std::int64_t ingest_delay_ms = 0;
  /// false = no worker thread; rows advance only through Pump()/Drain().
  bool threaded = true;
  /// Chaos hook: called with the 0-based index of each row just before
  /// the engine steps it. A throw from here is indistinguishable from
  /// the engine throwing — it poisons the tenant, which is exactly the
  /// fault-isolation contract the chaos tests exercise.
  std::function<void(std::uint64_t)> chaos_hook;
};

enum class TenantState : std::uint8_t {
  kActive = 0,
  kDraining = 1,
  kDrained = 2,
  /// The engine threw out of a row and cannot continue; the tenant is
  /// fenced off, its queue dropped, its last checkpoint untouched.
  kPoisoned = 3,
};

struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  /// Whole rows dropped at a full queue.
  std::uint64_t shed_ticks = 0;
  /// Rows refused outright (wrong width, or tenant not active).
  std::uint64_t rejected = 0;
  std::uint64_t processed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t backpressure_raises = 0;
  std::uint64_t backpressure_clears = 0;
  /// High-water mark of the queue — the memory-budget proof.
  std::uint64_t max_queue_rows = 0;
};

/// Mutex-protected view, copied out whole by Status().
struct TenantStatus {
  TenantState state = TenantState::kActive;
  TenantCounters counters;
  std::size_t queue_rows = 0;
  std::size_t queue_budget = 0;
  bool backpressure = false;
  /// True when the most recent checkpoint attempt failed — a success
  /// resets it, so this reports the state of the *current* seal.
  bool last_checkpoint_failed = false;
  std::string last_error;
};

/// The lock-free published state: everything a query needs, replaced
/// wholesale after each processed row. Readers hold a shared_ptr, so a
/// reply is consistent even while the worker publishes the next one.
struct TenantPublishedState {
  bool has_snapshot = false;
  SystemSnapshot snapshot;
  std::uint64_t processed = 0;
  std::uint64_t alarms_total = 0;
  std::uint64_t suppressed_total = 0;
};

/// What Submit did with a row.
struct AdmitResult {
  bool accepted = false;
  bool shed = false;
  bool rejected = false;
  std::size_t queue_rows = 0;
};

class TenantRuntime {
 public:
  TenantRuntime(TenantConfig config, std::unique_ptr<SystemMonitor> monitor);

  /// Abrupt stop: the worker is told to quit after its current row;
  /// queued rows are dropped and NO final checkpoint is written. This
  /// is deliberately crash-shaped — the graceful exit is Drain().
  ~TenantRuntime();

  TenantRuntime(const TenantRuntime&) = delete;
  TenantRuntime& operator=(const TenantRuntime&) = delete;

  /// Offers one row. Never blocks: the row is queued, shed (queue
  /// full), or rejected (wrong width / tenant not active).
  AdmitResult Submit(const SampleRow& row) PMCORR_EXCLUDES(mu_);

  /// Graceful shutdown: stop admitting, process every queued row, write
  /// the final checkpoint, move to kDrained. Blocks until done (in
  /// manual mode, processes inline). Poisoned tenants return
  /// immediately — their last-good checkpoint must stay untouched.
  void Drain() PMCORR_EXCLUDES(mu_);

  /// Manual mode: processes up to max_rows queued rows on the caller's
  /// thread; returns rows processed. Throws std::logic_error when a
  /// worker thread owns the engine.
  std::size_t Pump(std::size_t max_rows) PMCORR_EXCLUDES(mu_);

  TenantStatus Status() const PMCORR_EXCLUDES(mu_);
  TenantState State() const PMCORR_EXCLUDES(mu_);
  bool BackpressureEngaged() const PMCORR_EXCLUDES(mu_);

  /// Last published state (never null; has_snapshot false before the
  /// first processed row). Lock-free.
  std::shared_ptr<const TenantPublishedState> Published() const {
    return published_.load(std::memory_order_acquire);
  }

  /// The engine. Safe for concurrent readers only where the member is
  /// immutable while serving (the graph's topology — drill-down's use);
  /// anything else requires the tenant to be idle or drained.
  const SystemMonitor& Monitor() const { return *monitor_; }

  const TenantConfig& Config() const { return config_; }

 private:
  void WorkerLoop();
  /// Steps the engine with one row and publishes the result. Engine
  /// exceptions propagate to the caller (who poisons the tenant).
  void ProcessRow(const SampleRow& row);
  void MaybeCheckpoint(bool final_checkpoint) PMCORR_EXCLUDES(mu_);
  void Poison(const std::string& what) PMCORR_EXCLUDES(mu_);
  /// Pops the next row into row_scratch_; clears backpressure at the
  /// low watermark.
  bool PopRowLocked() PMCORR_REQUIRES(mu_);

  TenantConfig config_;
  std::size_t high_watermark_ = 0;
  std::size_t low_watermark_ = 0;
  /// Cached monitor width — Submit validates rows without touching the
  /// engine the worker is stepping.
  std::size_t width_ = 0;
  std::unique_ptr<SystemMonitor> monitor_;

  mutable Mutex mu_;
  CondVar work_cv_;     // wakes the worker
  CondVar drained_cv_;  // wakes Drain()
  std::deque<SampleRow> queue_ PMCORR_GUARDED_BY(mu_);
  TenantState state_ PMCORR_GUARDED_BY(mu_) = TenantState::kActive;
  TenantCounters counters_ PMCORR_GUARDED_BY(mu_);
  bool backpressure_ PMCORR_GUARDED_BY(mu_) = false;
  bool stop_ PMCORR_GUARDED_BY(mu_) = false;
  bool last_checkpoint_failed_ PMCORR_GUARDED_BY(mu_) = false;
  std::string last_error_ PMCORR_GUARDED_BY(mu_);

  std::atomic<std::shared_ptr<const TenantPublishedState>> published_;

  // Worker-only state (manual mode: Pump/Drain caller).
  SampleRow row_scratch_;
  SystemSnapshot snap_scratch_;
  std::uint64_t processed_total_ = 0;
  std::uint64_t alarms_total_ = 0;
  std::uint64_t suppressed_total_ = 0;
  std::uint64_t rows_since_checkpoint_ = 0;

  std::thread worker_;
};

}  // namespace pmcorr
