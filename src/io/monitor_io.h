// SystemMonitor checkpointing: persist and restore a whole fleet of pair
// models plus the lifetime score aggregates, so a monitoring agent can
// restart without relearning from history (the paper's models take
// seconds to learn per pair; a production fleet carries hundreds).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "engine/monitor.h"

namespace pmcorr {

/// Serializes the monitor: measurement infos, graph edges, per-pair
/// models (via the PairModel format of model_io), and the lifetime
/// aggregates. Throws std::runtime_error on I/O failure.
void SaveSystemMonitor(const SystemMonitor& monitor, std::ostream& out);
void SaveSystemMonitor(const SystemMonitor& monitor, const std::string& path);

/// Restores a monitor saved by SaveSystemMonitor. Worker-thread count is
/// taken from `threads` (0 = hardware concurrency) since it is a property
/// of the host, not of the model state. Throws std::runtime_error on
/// malformed input.
std::unique_ptr<SystemMonitor> LoadSystemMonitor(std::istream& in,
                                                 std::size_t threads = 0);
std::unique_ptr<SystemMonitor> LoadSystemMonitor(const std::string& path,
                                                 std::size_t threads = 0);

/// Writes the full-detail snapshot stream as JSONL, one line per sample:
///   {"sample":N,"t":<unix>,"q":<Q|null>,"qa":[...],"pair_scores":[...],
///    "alarmed":[pair,...],"outliers":N,"extended":N}
/// Scores are printed with 17 significant digits (round-trip exact for
/// doubles), so the output is a byte-stable fingerprint of the engine's
/// arithmetic — this is the format of the golden-trace regression tests,
/// which is why it lives with the checkpoint code rather than the
/// dashboard-oriented summaries of io/jsonl.h.
void WriteSnapshotStreamJsonl(const std::vector<SystemSnapshot>& snapshots,
                              std::ostream& out);

/// Parses a stream written by WriteSnapshotStreamJsonl back into
/// snapshots (measurement scores are part of the stream, so the
/// round-trip is lossless and bit-exact). The parser is strict: it
/// accepts exactly the schema above — keys in order, no whitespace
/// padding — and throws std::runtime_error with a line number on any
/// deviation, including non-finite scores, alarmed indices out of range
/// or out of order, and score arrays whose width changes mid-stream.
std::vector<SystemSnapshot> ReadSnapshotStreamJsonl(std::istream& in);

}  // namespace pmcorr
