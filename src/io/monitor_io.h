// SystemMonitor checkpointing: persist and restore a whole fleet of pair
// models plus the lifetime score aggregates, so a monitoring agent can
// restart without relearning from history (the paper's models take
// seconds to learn per pair; a production fleet carries hundreds).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/monitor.h"

namespace pmcorr {

/// Serializes the monitor: measurement infos, graph edges, per-pair
/// models (via the PairModel format of model_io), and the lifetime
/// aggregates. Throws std::runtime_error on I/O failure.
void SaveSystemMonitor(const SystemMonitor& monitor, std::ostream& out);

/// On-disk checkpoint policy: how many last-good generations to keep.
/// Generation 0 is `path` itself, generation g > 0 is `path.g<g>`; a
/// save rotates g -> g+1 (dropping the oldest) before atomically
/// writing the new generation 0.
struct CheckpointConfig {
  std::size_t generations = 2;
};

/// Crash-safe file checkpoint: renders the monitor with a CRC-32
/// trailer line, rotates the existing generations, and replaces `path`
/// via write-to-temp + fsync + atomic rename (io/atomic_file.h). A
/// crash at any point leaves at least one complete, validated prior
/// generation recoverable by the path-based loader below. Throws
/// std::runtime_error on I/O failure.
void SaveSystemMonitor(const SystemMonitor& monitor, const std::string& path,
                       const CheckpointConfig& config);
void SaveSystemMonitor(const SystemMonitor& monitor, const std::string& path);

/// How a path-based load found its checkpoint (all fields informational).
struct CheckpointRecoveryInfo {
  /// The file that loaded successfully.
  std::string loaded_path;
  /// Its generation number (0 = the primary file).
  std::size_t generation = 0;
  /// One "<path>: <reason>" entry per newer candidate that was rejected
  /// (missing, torn, CRC mismatch, failed validation) before the loaded
  /// one — non-empty means the primary copy was lost and recovery
  /// actually happened.
  std::vector<std::string> rejected;
};

/// Restores a monitor saved by SaveSystemMonitor. Worker-thread count is
/// taken from `threads` (0 = hardware concurrency) since it is a property
/// of the host, not of the model state. Throws std::runtime_error on
/// malformed input.
std::unique_ptr<SystemMonitor> LoadSystemMonitor(std::istream& in,
                                                 std::size_t threads = 0);

/// Path-based load with generation fallback: tries `path`, then
/// `path.g1`, `path.g2`, ... and returns the newest generation that
/// passes both the CRC trailer check and full load-time validation.
/// Files without a trailer (pre-rotation checkpoints) are accepted when
/// they validate. Throws std::runtime_error only when every generation
/// is missing or corrupt (the message lists each rejection).
std::unique_ptr<SystemMonitor> LoadSystemMonitor(
    const std::string& path, std::size_t threads = 0,
    CheckpointRecoveryInfo* recovery = nullptr);

/// Verifies and strips the checkpoint's CRC trailer line, returning the
/// content it covers. Bytes without a trailer are returned unchanged
/// (legacy checkpoints); a present-but-wrong trailer (bad CRC, bad
/// length, truncation) throws std::runtime_error. Exposed for the fuzz
/// harness, which drives it on arbitrary bytes.
std::string_view VerifyCheckpointTrailer(std::string_view bytes);

/// Writes the full-detail snapshot stream as JSONL, one line per sample:
///   {"sample":N,"t":<unix>,"q":<Q|null>,"qa":[...],"pair_scores":[...],
///    "alarmed":[pair,...],"outliers":N,"extended":N}
/// Scores are printed with 17 significant digits (round-trip exact for
/// doubles), so the output is a byte-stable fingerprint of the engine's
/// arithmetic — this is the format of the golden-trace regression tests,
/// which is why it lives with the checkpoint code rather than the
/// dashboard-oriented summaries of io/jsonl.h.
void WriteSnapshotStreamJsonl(const std::vector<SystemSnapshot>& snapshots,
                              std::ostream& out);

/// Parses a stream written by WriteSnapshotStreamJsonl back into
/// snapshots (measurement scores are part of the stream, so the
/// round-trip is lossless and bit-exact). The parser is strict: it
/// accepts exactly the schema above — keys in order, no whitespace
/// padding — and throws std::runtime_error with a line number on any
/// deviation, including non-finite scores, alarmed indices out of range
/// or out of order, and score arrays whose width changes mid-stream.
std::vector<SystemSnapshot> ReadSnapshotStreamJsonl(std::istream& in);

/// Writes a SystemDelta stream as JSONL, one line per tick:
///   {"sample":N,"t":<unix>,"baseline":true|false,"pairs":P,
///    "measurements":M,"q":<Q|null>,"pair_changes":[[i,score],...],
///    "pair_disengaged":[i,...],"qa_changes":[[i,score],...],
///    "qa_disengaged":[i,...],"alarmed":[...],"outliers":N,
///    "extended":N,"event":E,"suppressed":N,"quarantined":N,
///    "health":true|false,"health_changes":[[i,h],...]}
/// Scores use 17 significant digits, so reconstructing the parsed
/// stream (DeltaReconstructor) is bitwise identical to reconstructing
/// the in-memory one. On a quiet tick every change list is empty and
/// the line is O(1) bytes regardless of pair count — that is the point
/// of the delta form.
void WriteDeltaStreamJsonl(const std::vector<SystemDelta>& deltas,
                           std::ostream& out);

/// Parses a stream written by WriteDeltaStreamJsonl. Strict like
/// ReadSnapshotStreamJsonl: exact key order, no padding; throws
/// std::runtime_error with a line number on any deviation, including
/// non-finite scores, unknown event/health codes, or change indices
/// outside the declared widths. Ordering/baseline discipline is the
/// reconstructor's job — this reader checks each line in isolation.
std::vector<SystemDelta> ReadDeltaStreamJsonl(std::istream& in);

}  // namespace pmcorr
