// Crash-safe file replacement: write-to-temp + fsync + atomic rename.
//
// Every on-disk artifact this library writes (model files, monitor
// checkpoints, trace CSVs, reports) used to be an in-place
// std::ofstream overwrite — a crash or full disk mid-write destroyed
// the previous good copy along with the new one. AtomicWriteFile is the
// single write path that fixes that everywhere: the destination either
// keeps its previous bytes or holds the complete new content, never a
// torn mix.
//
// The write sequence is instrumented at every point a real crash can
// land (the "write points"), and a test hook can simulate a crash at
// any of them — that is how the checkpoint crash-recovery suite proves
// the rotation logic (io/monitor_io.h) survives a kill at every stage,
// including mid-write truncation of the temp file.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pmcorr {

/// Thrown by an installed write-fault hook to simulate a crash or I/O
/// failure at a specific write point. Derives from runtime_error so
/// callers that already handle I/O failure handle injection for free.
class InjectedIoFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The instrumented stages of one AtomicWriteFile call, in order. kWrite
/// is visited once per payload chunk (kWriteChunkBytes), so a hook that
/// throws on the Nth kWrite leaves a mid-write truncated temp file —
/// exactly what a power cut produces.
enum class WriteStage : std::uint8_t {
  kOpen,     // before creating the temp file
  kWrite,    // before each payload chunk lands in the temp file
  kSync,     // after the payload, before fsync(temp)
  kRename,   // after fsync, before rename(temp -> destination)
  kDirSync,  // after rename, before fsync(directory)
};

const char* WriteStageName(WriteStage stage);

/// Payload chunk size between kWrite hook visits.
inline constexpr std::size_t kWriteChunkBytes = 4096;

/// Test hook consulted at every write point of every AtomicWriteFile
/// call (process-wide; not for concurrent writers). Throwing aborts the
/// write at that point, leaving whatever a crash there would leave.
using WriteFaultHook = std::function<void(const std::string& path,
                                          WriteStage stage)>;

/// Installs `hook` (empty = none) and returns the previous one.
WriteFaultHook SetWriteFaultHookForTest(WriteFaultHook hook);

/// RAII hook installer. The canonical crash simulator counts write
/// points and throws InjectedIoFailure at the chosen one:
///
///   ScopedWriteFault crash(kill_point);        // 0-based write point
///   try { SaveMonitorCheckpoint(m, path); } catch (...) {}
///   // disk now looks exactly as if the process died there
///   crash.Disarm();
///   auto recovered = LoadSystemMonitor(path);  // last-good generation
class ScopedWriteFault {
 public:
  /// Arms a fault at 0-based write point `fail_at` (counted across all
  /// stages of all calls while armed); pass a negative value to only
  /// count points without failing.
  explicit ScopedWriteFault(long long fail_at);
  ~ScopedWriteFault();
  ScopedWriteFault(const ScopedWriteFault&) = delete;
  ScopedWriteFault& operator=(const ScopedWriteFault&) = delete;

  /// Write points seen so far (use with fail_at < 0 to enumerate the
  /// kill points of a write path before sweeping them).
  long long Seen() const { return seen_; }

  /// True once the armed fault has fired.
  bool Fired() const { return fired_; }

  /// Stops injecting (subsequent writes run clean, still counted).
  void Disarm() { fail_at_ = -1; }

 private:
  long long fail_at_;
  long long seen_ = 0;
  bool fired_ = false;
  WriteFaultHook previous_;
};

/// Atomically replaces `path` with the bytes `writer` produces:
/// temp file in the same directory -> fsync -> rename(temp, path) ->
/// fsync(directory). On any failure (including injected ones) the
/// destination is untouched; the temp file is removed best-effort.
/// Throws std::runtime_error (or the writer's/hook's exception).
void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& writer);

/// Convenience overload for pre-rendered content.
void AtomicWriteFile(const std::string& path, std::string_view content);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes` —
/// the integrity trailer of rotated monitor checkpoints.
std::uint32_t Crc32(std::string_view bytes);

}  // namespace pmcorr
