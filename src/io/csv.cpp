#include "io/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/string_util.h"
#include "io/atomic_file.h"

namespace pmcorr {
namespace {

MetricKind KindFromName(const std::string& name) {
  for (int k = 0;; ++k) {
    const auto kind = static_cast<MetricKind>(k);
    const std::string kind_name = MetricKindName(kind);
    if (kind_name == "UnknownMetric") break;
    if (kind_name == name) return kind;
  }
  throw std::runtime_error("ReadFrameCsv: unknown metric kind '" + name + "'");
}

}  // namespace

void WriteFrameCsv(const MeasurementFrame& frame, const std::string& path) {
  // Atomic replacement: a crash mid-write must not tear a previously
  // complete trace (io/atomic_file.h).
  AtomicWriteFile(path, [&](std::ostream& out) {
    out << "# pmcorr-trace v1 start=" << frame.StartTime()
        << " period=" << frame.Period() << "\n";
    for (const auto& info : frame.Infos()) {
      out << "# measurement," << info.machine.value << ","
          << MetricKindName(info.kind) << "," << info.name << "\n";
    }
    out << "time";
    for (const auto& info : frame.Infos()) out << "," << info.name;
    out << "\n";

    char buf[40];
    for (std::size_t t = 0; t < frame.SampleCount(); ++t) {
      out << frame.TimeAt(t);
      for (const auto& info : frame.Infos()) {
        std::snprintf(buf, sizeof(buf), "%.17g", frame.Value(info.id, t));
        out << "," << buf;
      }
      out << "\n";
    }
  });
}

namespace {

// Shared header parser for the two trace readers: consumes the version
// line, the measurement lines, and the "time,..." column header.
void ParseTraceHeader(std::istream& in, long long* start, long long* period,
                      std::vector<MeasurementInfo>* infos) {
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "# pmcorr-trace v1")) {
    throw std::runtime_error("ReadFrameCsv: missing trace header");
  }
  const auto header_fields = Split(line, ' ');
  for (const auto& f : header_fields) {
    if (StartsWith(f, "start=")) {
      if (!ParseInt64(f.substr(6), start)) {
        throw std::runtime_error("ReadFrameCsv: bad start field");
      }
    } else if (StartsWith(f, "period=")) {
      if (!ParseInt64(f.substr(7), period)) {
        throw std::runtime_error("ReadFrameCsv: bad period field");
      }
    }
  }
  if (*period <= 0) throw std::runtime_error("ReadFrameCsv: bad period");
  if (*start < 0) throw std::runtime_error("ReadFrameCsv: negative start");

  while (std::getline(in, line)) {
    if (StartsWith(line, "# measurement,")) {
      const auto fields = Split(line.substr(2), ',');
      if (fields.size() != 4) {
        throw std::runtime_error("ReadFrameCsv: bad measurement line");
      }
      long long machine = 0;
      if (!ParseInt64(fields[1], &machine)) {
        throw std::runtime_error("ReadFrameCsv: bad machine id");
      }
      MeasurementInfo info;
      info.machine = MachineId(static_cast<std::int32_t>(machine));
      info.kind = KindFromName(fields[2]);
      info.name = fields[3];
      infos->push_back(std::move(info));
    } else {
      break;  // the header row ("time,...")
    }
  }
  if (!StartsWith(line, "time")) {
    throw std::runtime_error("ReadFrameCsv: missing column header");
  }
}

}  // namespace

MeasurementFrame ReadFrameCsv(std::istream& in) {
  long long start = 0, period = 0;
  std::vector<MeasurementInfo> infos;
  ParseTraceHeader(in, &start, &period, &infos);

  std::string line;
  std::vector<std::vector<double>> columns(infos.size());
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != infos.size() + 1) {
      throw std::runtime_error("ReadFrameCsv: row width mismatch");
    }
    for (std::size_t i = 0; i < infos.size(); ++i) {
      double v = 0.0;
      // NaN stays: it is the missing-sample marker the resampler
      // gap-fills. Infinities have no producer and are rejected.
      if (!ParseDouble(fields[i + 1], &v) || std::isinf(v)) {
        throw std::runtime_error("ReadFrameCsv: bad value '" + fields[i + 1] +
                                 "'");
      }
      columns[i].push_back(v);
    }
  }

  // Timestamp arithmetic is start + sample * period throughout the
  // engine; reject headers where the last sample's time would overflow.
  const std::size_t samples = infos.empty() ? 0 : columns[0].size();
  if (samples > 0) {
    const long long max_time = std::numeric_limits<long long>::max();
    if (period > (max_time - start) / static_cast<long long>(samples)) {
      throw std::runtime_error("ReadFrameCsv: start/period overflow");
    }
  }

  MeasurementFrame frame(start, period);
  for (std::size_t i = 0; i < infos.size(); ++i) {
    frame.Add(infos[i], TimeSeries(start, period, std::move(columns[i])));
  }
  return frame;
}

MeasurementFrame ReadFrameCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ReadFrameCsv: cannot open " + path);
  return ReadFrameCsv(in);
}

SampleStream ReadSampleStreamCsv(std::istream& in) {
  long long start = 0, period = 0;
  SampleStream stream;
  ParseTraceHeader(in, &start, &period, &stream.infos);
  stream.start = start;
  stream.period = period;

  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != stream.infos.size() + 1) {
      throw std::runtime_error("ReadSampleStreamCsv: row width mismatch");
    }
    SampleRow row;
    long long tp = 0;
    if (!ParseInt64(fields[0], &tp) || tp < 0) {
      throw std::runtime_error("ReadSampleStreamCsv: bad timestamp '" +
                               fields[0] + "'");
    }
    row.time = tp;
    row.values.reserve(stream.infos.size());
    for (std::size_t i = 0; i < stream.infos.size(); ++i) {
      double v = 0.0;
      if (!ParseDouble(fields[i + 1], &v) || std::isinf(v)) {
        throw std::runtime_error("ReadSampleStreamCsv: bad value '" +
                                 fields[i + 1] + "'");
      }
      row.values.push_back(v);
    }
    stream.rows.push_back(std::move(row));
  }
  return stream;
}

SampleStream ReadSampleStreamCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadSampleStreamCsv: cannot open " + path);
  }
  return ReadSampleStreamCsv(in);
}

}  // namespace pmcorr
