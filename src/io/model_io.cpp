#include "io/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pmcorr {
namespace {

constexpr const char* kMagic = "pmcorr-model v1";

void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void WriteIntervals(std::ostream& out, const char* tag,
                    const IntervalList& list) {
  out << tag << " " << list.Size();
  for (std::size_t i = 0; i < list.Size(); ++i) {
    out << " ";
    WriteDouble(out, list.At(i).lo);
  }
  out << " ";
  WriteDouble(out, list.At(list.Size() - 1).hi);
  out << "\n";
}

IntervalList ReadIntervals(std::istream& in, const std::string& expect_tag) {
  std::string tag;
  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != expect_tag || n == 0) {
    throw std::runtime_error("LoadPairModel: bad interval section '" +
                             expect_tag + "'");
  }
  std::vector<double> edges(n + 1);
  for (double& e : edges) {
    if (!(in >> e)) {
      throw std::runtime_error("LoadPairModel: truncated interval edges");
    }
  }
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (edges[i + 1] <= edges[i]) {
      throw std::runtime_error("LoadPairModel: non-increasing edges");
    }
    intervals.push_back({edges[i], edges[i + 1]});
  }
  return IntervalList(std::move(intervals));
}

}  // namespace

void SavePairModel(const PairModel& model, std::ostream& out) {
  const ModelConfig& c = model.Config();
  out << kMagic << "\n";
  out << "kernel " << static_cast<int>(c.kernel.type) << " ";
  WriteDouble(out, c.kernel.w);
  out << " " << static_cast<int>(c.kernel.metric) << "\n";
  out << "params ";
  WriteDouble(out, c.lambda1);
  out << " ";
  WriteDouble(out, c.lambda2);
  out << " ";
  WriteDouble(out, c.delta);
  out << " ";
  WriteDouble(out, c.fitness_alarm_threshold);
  out << " ";
  WriteDouble(out, c.forgetting);
  out << " ";
  WriteDouble(out, c.likelihood_weight);
  out << " " << (c.adaptive ? 1 : 0) << "\n";
  out << "ravg ";
  WriteDouble(out, model.Grid().InitialAvgWidthDim1());
  out << " ";
  WriteDouble(out, model.Grid().InitialAvgWidthDim2());
  out << "\n";
  WriteIntervals(out, "dim1", model.Grid().Dim1());
  WriteIntervals(out, "dim2", model.Grid().Dim2());

  const TransitionMatrix& m = model.Matrix();
  out << "matrix " << m.CellCount() << " " << m.ObservedCount() << "\n";
  out << "evidence";
  for (double e : m.Evidence()) {
    out << " ";
    WriteDouble(out, e);
  }
  out << "\n";
  out << "counts";
  for (std::uint32_t v : m.Counts()) out << " " << v;
  out << "\n";
  if (!out) throw std::runtime_error("SavePairModel: write failed");
}

void SavePairModel(const PairModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SavePairModel: cannot open " + path);
  SavePairModel(model, out);
}

PairModel LoadPairModel(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("LoadPairModel: bad magic");
  }

  ModelConfig config;
  std::string tag;
  int kernel_type = 0, metric = 0, adaptive = 1;
  if (!(in >> tag >> kernel_type >> config.kernel.w >> metric) ||
      tag != "kernel") {
    throw std::runtime_error("LoadPairModel: bad kernel line");
  }
  config.kernel.type = static_cast<KernelConfig::Type>(kernel_type);
  config.kernel.metric = static_cast<CellMetric>(metric);

  if (!(in >> tag >> config.lambda1 >> config.lambda2 >> config.delta >>
        config.fitness_alarm_threshold >> config.forgetting >>
        config.likelihood_weight >> adaptive) ||
      tag != "params") {
    throw std::runtime_error("LoadPairModel: bad params line");
  }
  config.adaptive = adaptive != 0;

  double r1 = 0.0, r2 = 0.0;
  if (!(in >> tag >> r1 >> r2) || tag != "ravg" || r1 <= 0.0 || r2 <= 0.0) {
    throw std::runtime_error("LoadPairModel: bad ravg line");
  }

  IntervalList dim1 = ReadIntervals(in, "dim1");
  IntervalList dim2 = ReadIntervals(in, "dim2");
  Grid2D grid(std::move(dim1), std::move(dim2), r1, r2);

  std::size_t cells = 0;
  std::uint64_t observed = 0;
  if (!(in >> tag >> cells >> observed) || tag != "matrix" ||
      cells != grid.CellCount()) {
    throw std::runtime_error("LoadPairModel: bad matrix line");
  }

  const auto kernel = MakeKernel(config.kernel);
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, *kernel);

  std::vector<double> evidence(cells * cells);
  if (!(in >> tag) || tag != "evidence") {
    throw std::runtime_error("LoadPairModel: missing evidence");
  }
  for (double& e : evidence) {
    if (!(in >> e)) {
      throw std::runtime_error("LoadPairModel: truncated evidence");
    }
  }
  std::vector<std::uint32_t> counts(cells * cells);
  if (!(in >> tag) || tag != "counts") {
    throw std::runtime_error("LoadPairModel: missing counts");
  }
  for (std::uint32_t& v : counts) {
    if (!(in >> v)) {
      throw std::runtime_error("LoadPairModel: truncated counts");
    }
  }
  matrix.RestoreState(std::move(evidence), std::move(counts), observed);

  return PairModel::FromParts(config, std::move(grid), std::move(matrix));
}

PairModel LoadPairModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LoadPairModel: cannot open " + path);
  return LoadPairModel(in);
}

}  // namespace pmcorr
