#include "io/model_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "io/atomic_file.h"

namespace pmcorr {
namespace {

constexpr const char* kMagic = "pmcorr-model v1";

// Upper bounds on declared sizes. A corrupt or hostile file can claim any
// shape it likes; these caps reject it before the loader allocates. Real
// grids hold tens of intervals per dimension (the partitioner targets
// O(sqrt(history)) cells), so the caps leave two orders of magnitude of
// headroom while bounding the evidence block (cells^2 doubles) at 128 MiB.
constexpr std::size_t kMaxIntervalsPerDim = 1024;
constexpr std::size_t kMaxGridCells = 4096;

void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void WriteIntervals(std::ostream& out, const char* tag,
                    const IntervalList& list) {
  out << tag << " " << list.Size();
  for (std::size_t i = 0; i < list.Size(); ++i) {
    out << " ";
    WriteDouble(out, list.At(i).lo);
  }
  out << " ";
  WriteDouble(out, list.At(list.Size() - 1).hi);
  out << "\n";
}

IntervalList ReadIntervals(std::istream& in, const std::string& expect_tag) {
  std::string tag;
  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != expect_tag || n == 0) {
    throw std::runtime_error("LoadPairModel: bad interval section '" +
                             expect_tag + "'");
  }
  if (n > kMaxIntervalsPerDim) {
    throw std::runtime_error("LoadPairModel: declared interval count " +
                             std::to_string(n) + " exceeds limit");
  }
  std::vector<double> edges(n + 1);
  for (double& e : edges) {
    if (!(in >> e) || !std::isfinite(e)) {
      throw std::runtime_error("LoadPairModel: bad interval edge");
    }
  }
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // "!(b > a)" rather than "b <= a": NaN edges fail every comparison
    // and must not slip through (defense in depth behind the finiteness
    // check above).
    if (!(edges[i + 1] > edges[i])) {
      throw std::runtime_error("LoadPairModel: non-increasing edges");
    }
    intervals.push_back({edges[i], edges[i + 1]});
  }
  return IntervalList(std::move(intervals));
}

}  // namespace

void SavePairModel(const PairModel& model, std::ostream& out) {
  const ModelConfig& c = model.Config();
  out << kMagic << "\n";
  out << "kernel " << static_cast<int>(c.kernel.type) << " ";
  WriteDouble(out, c.kernel.w);
  out << " " << static_cast<int>(c.kernel.metric) << "\n";
  out << "params ";
  WriteDouble(out, c.lambda1);
  out << " ";
  WriteDouble(out, c.lambda2);
  out << " ";
  WriteDouble(out, c.delta);
  out << " ";
  WriteDouble(out, c.fitness_alarm_threshold);
  out << " ";
  WriteDouble(out, c.forgetting);
  out << " ";
  WriteDouble(out, c.likelihood_weight);
  out << " " << (c.adaptive ? 1 : 0) << "\n";
  out << "ravg ";
  WriteDouble(out, model.Grid().InitialAvgWidthDim1());
  out << " ";
  WriteDouble(out, model.Grid().InitialAvgWidthDim2());
  out << "\n";
  WriteIntervals(out, "dim1", model.Grid().Dim1());
  WriteIntervals(out, "dim2", model.Grid().Dim2());

  const TransitionMatrix& m = model.Matrix();
  out << "matrix " << m.CellCount() << " " << m.ObservedCount() << "\n";
  out << "evidence";
  for (double e : m.Evidence()) {
    out << " ";
    WriteDouble(out, e);
  }
  out << "\n";
  out << "counts";
  for (std::uint32_t v : m.Counts()) out << " " << v;
  out << "\n";
  if (!out) throw std::runtime_error("SavePairModel: write failed");
}

void SavePairModel(const PairModel& model, const std::string& path) {
  // Atomic replacement: a crash mid-save must not destroy the previous
  // model file (io/atomic_file.h).
  AtomicWriteFile(path,
                  [&](std::ostream& out) { SavePairModel(model, out); });
}

PairModel LoadPairModel(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("LoadPairModel: bad magic");
  }

  ModelConfig config;
  std::string tag;
  int kernel_type = 0, metric = 0, adaptive = 1;
  if (!(in >> tag >> kernel_type >> config.kernel.w >> metric) ||
      tag != "kernel") {
    throw std::runtime_error("LoadPairModel: bad kernel line");
  }
  if (kernel_type < 0 ||
      kernel_type > static_cast<int>(KernelConfig::Type::kExponential)) {
    throw std::runtime_error("LoadPairModel: unknown kernel type");
  }
  if (metric < 0 || metric > static_cast<int>(CellMetric::kEuclidean)) {
    throw std::runtime_error("LoadPairModel: unknown cell metric");
  }
  config.kernel.type = static_cast<KernelConfig::Type>(kernel_type);
  config.kernel.metric = static_cast<CellMetric>(metric);
  if (config.kernel.type == KernelConfig::Type::kExponential &&
      !(std::isfinite(config.kernel.w) && config.kernel.w > 1.0)) {
    throw std::runtime_error("LoadPairModel: exponential kernel needs w > 1");
  }

  if (!(in >> tag >> config.lambda1 >> config.lambda2 >> config.delta >>
        config.fitness_alarm_threshold >> config.forgetting >>
        config.likelihood_weight >> adaptive) ||
      tag != "params") {
    throw std::runtime_error("LoadPairModel: bad params line");
  }
  config.adaptive = adaptive != 0;
  // Mirror of PairModel::CheckInvariants's config clauses: written here
  // as load errors so hostile files fail in every build, not only under
  // PMCORR_AUDIT. All comparisons are NaN-rejecting.
  if (!(config.lambda1 >= 0.0 && config.lambda2 >= 0.0 &&
        std::isfinite(config.lambda1) && std::isfinite(config.lambda2) &&
        config.delta >= 0.0 && config.delta <= 1.0 &&
        config.fitness_alarm_threshold >= 0.0 &&
        config.fitness_alarm_threshold <= 1.0 && config.forgetting > 0.0 &&
        config.forgetting <= 1.0 && config.likelihood_weight > 0.0 &&
        std::isfinite(config.likelihood_weight))) {
    throw std::runtime_error("LoadPairModel: params out of range");
  }

  double r1 = 0.0, r2 = 0.0;
  if (!(in >> tag >> r1 >> r2) || tag != "ravg" ||
      !(std::isfinite(r1) && r1 > 0.0) || !(std::isfinite(r2) && r2 > 0.0)) {
    throw std::runtime_error("LoadPairModel: bad ravg line");
  }

  IntervalList dim1 = ReadIntervals(in, "dim1");
  IntervalList dim2 = ReadIntervals(in, "dim2");
  Grid2D grid(std::move(dim1), std::move(dim2), r1, r2);
  if (grid.CellCount() > kMaxGridCells) {
    throw std::runtime_error("LoadPairModel: declared grid shape " +
                             std::to_string(grid.Rows()) + "x" +
                             std::to_string(grid.Cols()) + " exceeds limit");
  }

  std::size_t cells = 0;
  std::uint64_t observed = 0;
  if (!(in >> tag >> cells >> observed) || tag != "matrix" ||
      cells != grid.CellCount()) {
    throw std::runtime_error("LoadPairModel: bad matrix line");
  }

  const auto kernel = MakeKernel(config.kernel);
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, *kernel);

  std::vector<double> evidence(cells * cells);
  if (!(in >> tag) || tag != "evidence") {
    throw std::runtime_error("LoadPairModel: missing evidence");
  }
  for (double& e : evidence) {
    if (!(in >> e) || !(std::isfinite(e) && e <= 0.0)) {
      // Every evidence term is a forgetting-discounted sum of weighted
      // log-probabilities, so legitimate checkpoints never hold positive
      // or non-finite entries.
      throw std::runtime_error("LoadPairModel: bad evidence entry");
    }
  }
  std::vector<std::uint32_t> counts(cells * cells);
  if (!(in >> tag) || tag != "counts") {
    throw std::runtime_error("LoadPairModel: missing counts");
  }
  std::uint64_t count_total = 0;
  for (std::uint32_t& v : counts) {
    if (!(in >> v)) {
      throw std::runtime_error("LoadPairModel: truncated counts");
    }
    count_total += v;
  }
  if (count_total != observed) {
    throw std::runtime_error("LoadPairModel: counts sum to " +
                             std::to_string(count_total) + ", header declares " +
                             std::to_string(observed));
  }
  matrix.RestoreState(std::move(evidence), std::move(counts), observed);

  PairModel model =
      PairModel::FromParts(config, std::move(grid), std::move(matrix));
  PMCORR_AUDIT_ONLY(model.CheckInvariants();)
  return model;
}

PairModel LoadPairModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LoadPairModel: cannot open " + path);
  return LoadPairModel(in);
}

}  // namespace pmcorr
