// Trace persistence: MeasurementFrame <-> CSV.
//
// Format (one file per frame):
//   # pmcorr-trace v1 start=<unix-seconds> period=<seconds>
//   # measurement,<machine-id>,<kind-name>,<display-name>   (one per column)
//   time,<display-name-1>,<display-name-2>,...
//   <unix-seconds>,<v1>,<v2>,...
//
// Values round-trip through "%.17g" so reloads are bit-exact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "timeseries/frame.h"

namespace pmcorr {

/// Writes the frame; throws std::runtime_error on I/O failure.
void WriteFrameCsv(const MeasurementFrame& frame, const std::string& path);

/// Reads a frame written by WriteFrameCsv; throws std::runtime_error on
/// malformed input or I/O failure. NaN cells are kept (the missing-sample
/// marker understood by the resampler); infinities are rejected, as are
/// start/period combinations whose sample timestamps would overflow.
MeasurementFrame ReadFrameCsv(std::istream& in);
MeasurementFrame ReadFrameCsv(const std::string& path);

/// One arriving sample of a (possibly degraded) collector stream: the
/// row's own timestamp plus one value per measurement.
struct SampleRow {
  TimePoint time = 0;
  std::vector<double> values;
};

/// A trace CSV read row by row, timestamps taken verbatim.
struct SampleStream {
  TimePoint start = 0;
  Duration period = 0;
  std::vector<MeasurementInfo> infos;
  std::vector<SampleRow> rows;
};

/// Reads the same file format as ReadFrameCsv, but preserves each row's
/// time column instead of projecting rows onto the uniform grid —
/// ReadFrameCsv by design ignores the time column (rows index
/// sequentially onto start + i * period), which silently "repairs"
/// exactly the degradations the ingest guard exists to catch. Rows with
/// duplicate, out-of-order, or gapped timestamps are preserved verbatim
/// for the guard to judge. Value parsing matches ReadFrameCsv (NaN kept,
/// infinities rejected); timestamps may be any non-negative value.
SampleStream ReadSampleStreamCsv(std::istream& in);
SampleStream ReadSampleStreamCsv(const std::string& path);

}  // namespace pmcorr
