// Trace persistence: MeasurementFrame <-> CSV.
//
// Format (one file per frame):
//   # pmcorr-trace v1 start=<unix-seconds> period=<seconds>
//   # measurement,<machine-id>,<kind-name>,<display-name>   (one per column)
//   time,<display-name-1>,<display-name-2>,...
//   <unix-seconds>,<v1>,<v2>,...
//
// Values round-trip through "%.17g" so reloads are bit-exact.
#pragma once

#include <iosfwd>
#include <string>

#include "timeseries/frame.h"

namespace pmcorr {

/// Writes the frame; throws std::runtime_error on I/O failure.
void WriteFrameCsv(const MeasurementFrame& frame, const std::string& path);

/// Reads a frame written by WriteFrameCsv; throws std::runtime_error on
/// malformed input or I/O failure. NaN cells are kept (the missing-sample
/// marker understood by the resampler); infinities are rejected, as are
/// start/period combinations whose sample timestamps would overflow.
MeasurementFrame ReadFrameCsv(std::istream& in);
MeasurementFrame ReadFrameCsv(const std::string& path);

}  // namespace pmcorr
