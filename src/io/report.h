// Experiment report helpers: write benchmark tables to markdown files so
// EXPERIMENTS.md entries can be regenerated mechanically.
#pragma once

#include <string>

#include "common/table.h"

namespace pmcorr {

/// Accumulates markdown sections and tables, then writes one file.
class MarkdownReport {
 public:
  explicit MarkdownReport(std::string title);

  /// Starts a "## heading" section.
  void Section(const std::string& heading);

  /// Adds a free paragraph.
  void Paragraph(const std::string& text);

  /// Adds a table (rendered as a fenced code block to preserve
  /// alignment exactly as the bench printed it).
  void Table(const TextTable& table);

  /// The assembled markdown.
  const std::string& Text() const { return text_; }

  /// Writes to `path`; throws std::runtime_error on failure.
  void Write(const std::string& path) const;

 private:
  std::string text_;
};

}  // namespace pmcorr
