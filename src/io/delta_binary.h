// Binary framing for the SystemDelta stream (the compact sibling of
// WriteDeltaStreamJsonl / ReadDeltaStreamJsonl in io/monitor_io.h).
//
// The JSONL form is the human-auditable fingerprint; this form is what a
// long-running daemon actually ships — about 4x smaller on quiet ticks
// and free of float printing/parsing on the hot path, while still
// bitwise-exact (doubles travel as IEEE-754 bit patterns). Both forms
// decode to identical SystemDelta values; tests/test_framing.cpp proves
// the cross-format round trip bitwise.
//
// File layout (every unit an io/framing.h frame, so truncation and
// corruption are detectable mid-file, not just at the end):
//
//   frame kDeltaStreamMagic  payload = "pmcorr-delta-bin v1"
//   frame kDeltaStreamDelta  payload = EncodeSystemDelta(...)   (0..n)
//   frame kDeltaStreamEnd    payload = u64 delta count
//
// The reader is strict like the JSONL reader: exact magic first, a
// matching end frame last (a stream cut at a frame boundary is still
// rejected as truncated), no trailing bytes, and per-delta validation —
// widths within limits, indices in range, finite scores, known enum
// codes. Ordering/baseline discipline stays the DeltaReconstructor's
// job, exactly as with the JSONL path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "engine/snapshot.h"

namespace pmcorr {

/// Frame types of the binary delta stream. The serve wire protocol
/// reuses kDeltaStreamDelta payloads verbatim for delta push.
inline constexpr std::uint8_t kDeltaStreamMagic = 0x01;
inline constexpr std::uint8_t kDeltaStreamDelta = 0x02;
inline constexpr std::uint8_t kDeltaStreamEnd = 0x03;

/// The magic frame's payload.
inline constexpr std::string_view kDeltaStreamMagicPayload =
    "pmcorr-delta-bin v1";

/// Appends one delta's binary payload (frame body, without the frame
/// envelope) to `out`.
void EncodeSystemDelta(const SystemDelta& delta, std::string& out);

/// Decodes and validates one delta payload. Throws FramingError on any
/// deviation from the encoder's output.
SystemDelta DecodeSystemDelta(std::string_view payload);

/// Writes the framed binary stream. Throws std::runtime_error on write
/// failure.
void WriteDeltaStreamBinary(const std::vector<SystemDelta>& deltas,
                            std::ostream& out);

/// Reads a stream written by WriteDeltaStreamBinary. Throws
/// std::runtime_error (FramingError derives from it) on malformed,
/// truncated, corrupt, or trailing input.
std::vector<SystemDelta> ReadDeltaStreamBinary(std::istream& in);

}  // namespace pmcorr
