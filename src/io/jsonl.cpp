#include "io/jsonl.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace pmcorr {
namespace {

// JSON number or null (JSON has no NaN/Inf).
std::string NumOrNull(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void WriteSnapshotsJsonl(const std::vector<SystemSnapshot>& snapshots,
                         std::ostream& out) {
  for (const SystemSnapshot& snap : snapshots) {
    double worst = std::nan("");
    for (const auto& qa : snap.measurement_scores) {
      if (qa && (!std::isfinite(worst) || *qa < worst)) worst = *qa;
    }
    out << "{\"t\":" << snap.time << ",\"q\":"
        << (snap.system_score ? NumOrNull(*snap.system_score) : "null")
        << ",\"alarmed_pairs\":" << snap.alarmed_pairs.size()
        << ",\"outlier_pairs\":" << snap.outlier_pairs
        << ",\"worst_qa\":" << NumOrNull(worst) << "}\n";
  }
}

void WriteIncidentsJsonl(const std::vector<Incident>& incidents,
                         std::ostream& out) {
  for (const Incident& incident : incidents) {
    out << "{\"start\":" << incident.start << ",\"end\":" << incident.end
        << ",\"alarms\":" << incident.alarm_count
        << ",\"min_score\":" << NumOrNull(incident.min_score)
        << ",\"open\":" << (incident.open ? "true" : "false") << "}\n";
  }
}

}  // namespace pmcorr
