// Length-prefixed binary framing — the one wire format shared by the
// binary delta stream (io/delta_binary.h) and the serve daemon's socket
// protocol (serve/protocol.h).
//
// A frame is
//
//   u32le body_length | body | u32le crc32(body)
//   body := u8 type | payload
//
// with an explicit little-endian byte layout (no struct punning, no
// host-endianness assumptions) and a hard payload cap, so the parser is
// safe on untrusted bytes: a hostile length cannot drive an allocation
// beyond the cap, a flipped bit fails the CRC, and a truncated stream is
// distinguishable from a complete one (HasPartial). FrameReader is
// incremental — feed whatever a socket read returned, take out however
// many complete frames arrived — which is also exactly the shape a fuzz
// harness wants (fuzz/fuzz_frame.cpp drives it byte-by-byte).
//
// WireWriter/WireReader are the matching primitive codec for frame
// payloads: unsigned little-endian integers, two's-complement signed,
// doubles as IEEE-754 bit patterns (bitwise round-trip, NaN payloads and
// signed zeros included), and length-prefixed byte strings. WireReader
// is strict: reading past the end, or leaving bytes unconsumed where the
// caller demands ExpectEnd, throws FramingError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pmcorr {

/// Malformed frame or payload (bad length, CRC mismatch, truncated or
/// trailing payload bytes). Derives from runtime_error so existing I/O
/// error handling catches it for free.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard cap on one frame's payload. Generous for this codebase — a
/// 100k-pair baseline delta is about 1.2 MB — while keeping a hostile
/// length prefix from requesting gigabytes.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// One decoded frame: the body's leading type byte plus the payload
/// bytes after it (owned copy — valid independent of the reader).
struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Appends one encoded frame to `out`.
void AppendFrame(std::uint8_t type, std::string_view payload,
                 std::string& out);

/// Writes one encoded frame to a stream (the file-backed users).
/// Throws std::runtime_error on write failure.
void WriteFrame(std::ostream& out, std::uint8_t type,
                std::string_view payload);

/// Incremental frame parser over a byte stream. Feed bytes in arrival
/// order; Next returns complete frames until the buffered bytes run dry.
/// Malformed input (zero or oversized body length, CRC mismatch) throws
/// FramingError — the stream is poisoned and the reader must be
/// discarded, which is the strict-parser contract: a corrupt transport
/// is closed, not resynchronized.
class FrameReader {
 public:
  void Feed(std::string_view bytes);

  /// Next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> Next();

  /// True when buffered bytes form an incomplete frame — at end of
  /// stream this distinguishes truncation from a clean boundary.
  bool HasPartial() const { return pos_ < buffer_.size(); }

  /// Bytes buffered but not yet consumed by Next.
  std::size_t BufferedBytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
};

/// Appends primitive values to a payload string, little-endian.
class WireWriter {
 public:
  explicit WireWriter(std::string& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Two's-complement via the u64 bit pattern.
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern — the bitwise-exact double round-trip.
  void F64(double v);
  /// u16 length prefix + raw bytes (names, error messages).
  void Str(std::string_view s);
  void Bytes(std::string_view s) { out_.append(s); }

 private:
  std::string& out_;
};

/// Strict reader over a payload. Every accessor throws FramingError
/// (prefixed with `context`) on underrun; ExpectEnd rejects trailing
/// bytes, so a decoder that finishes with ExpectEnd accepts exactly the
/// bytes its encoder produces.
class WireReader {
 public:
  WireReader(std::string_view bytes, std::string_view context)
      : bytes_(bytes), context_(context) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  std::string_view Str();
  std::string_view Bytes(std::size_t n);

  std::size_t Remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  void ExpectEnd() const;
  [[noreturn]] void Fail(const std::string& what) const;

 private:
  const char* Take(std::size_t n);

  std::string_view bytes_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

}  // namespace pmcorr
