#include "io/atomic_file.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PMCORR_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define PMCORR_HAVE_POSIX_IO 0
#include <fstream>
#endif

namespace pmcorr {
namespace {

WriteFaultHook g_write_fault_hook;

void AtStage(const std::string& path, WriteStage stage) {
  if (g_write_fault_hook) g_write_fault_hook(path, stage);
}

std::string DirectoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#if PMCORR_HAVE_POSIX_IO
// POSIX writer: explicit fds so fsync is possible. Returns false with
// `error` set instead of throwing so the caller can clean up the temp
// file on every failure path uniformly.
bool WriteAllPosix(const std::string& temp, std::string_view content,
                   std::string& error) {
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = "cannot create temp file " + temp;
    return false;
  }
  std::size_t offset = 0;
  while (offset < content.size()) {
    const std::size_t chunk =
        std::min(kWriteChunkBytes, content.size() - offset);
    try {
      AtStage(temp, WriteStage::kWrite);
    } catch (...) {
      ::close(fd);
      throw;  // simulated crash: temp file stays truncated at `offset`
    }
    const ssize_t put = ::write(fd, content.data() + offset, chunk);
    if (put < 0) {
      ::close(fd);
      error = "write failed on " + temp;
      return false;
    }
    offset += static_cast<std::size_t>(put);
  }
  try {
    AtStage(temp, WriteStage::kSync);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    error = "fsync failed on " + temp;
    return false;
  }
  if (::close(fd) != 0) {
    error = "close failed on " + temp;
    return false;
  }
  return true;
}

void SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // durability best-effort; rename already happened
  ::fsync(fd);
  ::close(fd);
}
#else
bool WriteAllPosix(const std::string& temp, std::string_view content,
                   std::string& error) {
  std::ofstream out(temp, std::ios::binary);
  if (!out) {
    error = "cannot create temp file " + temp;
    return false;
  }
  std::size_t offset = 0;
  while (offset < content.size()) {
    const std::size_t chunk =
        std::min(kWriteChunkBytes, content.size() - offset);
    AtStage(temp, WriteStage::kWrite);  // may throw; ofstream closes itself
    out.write(content.data() + offset, static_cast<std::streamsize>(chunk));
    offset += chunk;
  }
  AtStage(temp, WriteStage::kSync);
  out.flush();
  out.close();
  if (!out) {
    error = "write failed on " + temp;
    return false;
  }
  return true;
}

void SyncDirectory(const std::string&) {}
#endif

}  // namespace

const char* WriteStageName(WriteStage stage) {
  switch (stage) {
    case WriteStage::kOpen: return "open";
    case WriteStage::kWrite: return "write";
    case WriteStage::kSync: return "sync";
    case WriteStage::kRename: return "rename";
    case WriteStage::kDirSync: return "dirsync";
  }
  return "unknown";
}

WriteFaultHook SetWriteFaultHookForTest(WriteFaultHook hook) {
  WriteFaultHook previous = std::move(g_write_fault_hook);
  g_write_fault_hook = std::move(hook);
  return previous;
}

ScopedWriteFault::ScopedWriteFault(long long fail_at) : fail_at_(fail_at) {
  previous_ = SetWriteFaultHookForTest(
      [this](const std::string& path, WriteStage stage) {
        const long long point = seen_++;
        if (fail_at_ >= 0 && point == fail_at_) {
          fired_ = true;
          throw InjectedIoFailure("injected I/O failure at write point " +
                                  std::to_string(point) + " (" +
                                  WriteStageName(stage) + " of " + path + ")");
        }
      });
}

ScopedWriteFault::~ScopedWriteFault() {
  SetWriteFaultHookForTest(std::move(previous_));
}

void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& writer) {
  std::ostringstream buffer;
  writer(buffer);
  if (!buffer) {
    throw std::runtime_error("AtomicWriteFile: writer failed for " + path);
  }
  AtomicWriteFile(path, buffer.view());
}

void AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  AtStage(temp, WriteStage::kOpen);
  std::string error;
  // A hook throwing inside WriteAllPosix is a simulated crash mid-write:
  // it propagates and leaves the truncated temp file exactly as a real
  // crash would — recovery must cope with it.
  const bool ok = WriteAllPosix(temp, content, error);
  if (!ok) {
    std::remove(temp.c_str());
    throw std::runtime_error("AtomicWriteFile: " + error);
  }
  try {
    AtStage(temp, WriteStage::kRename);
  } catch (...) {
    std::remove(temp.c_str());
    throw;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("AtomicWriteFile: rename to " + path +
                             " failed");
  }
  AtStage(path, WriteStage::kDirSync);
  SyncDirectory(DirectoryOf(path));
}

std::uint32_t Crc32(std::string_view bytes) {
  // Table-less bitwise CRC-32: the checkpoint trailer covers megabytes
  // at most and is written once per rotation, so simplicity beats a
  // 1 KiB table.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc ^= static_cast<unsigned char>(c);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pmcorr
