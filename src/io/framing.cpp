#include "io/framing.h"

#include <cstring>
#include <ostream>

#include "io/atomic_file.h"

namespace pmcorr {
namespace {

void PutU32(std::uint32_t v, std::string& out) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32(const char* p) {
  const auto b = [p](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

void AppendFrame(std::uint8_t type, std::string_view payload,
                 std::string& out) {
  if (payload.size() > kMaxFramePayload) {
    throw FramingError("AppendFrame: payload exceeds kMaxFramePayload");
  }
  const std::uint32_t body_length =
      static_cast<std::uint32_t>(payload.size() + 1);
  PutU32(body_length, out);
  const std::size_t body_start = out.size();
  out.push_back(static_cast<char>(type));
  out.append(payload);
  const std::uint32_t crc = Crc32(
      std::string_view(out.data() + body_start, body_length));
  PutU32(crc, out);
}

void WriteFrame(std::ostream& out, std::uint8_t type,
                std::string_view payload) {
  std::string encoded;
  encoded.reserve(payload.size() + 9);
  AppendFrame(type, payload, encoded);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) throw std::runtime_error("WriteFrame: write failed");
}

void FrameReader::Feed(std::string_view bytes) {
  // Reclaim consumed prefix before growing, so a long-lived connection
  // never accumulates an unbounded buffer.
  if (pos_ > 0) {
    if (pos_ == buffer_.size()) {
      buffer_.clear();
    } else {
      buffer_.erase(0, pos_);
    }
    pos_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<Frame> FrameReader::Next() {
  const std::size_t available = buffer_.size() - pos_;
  if (available < 4) return std::nullopt;
  const std::uint32_t body_length = GetU32(buffer_.data() + pos_);
  if (body_length == 0) {
    throw FramingError("FrameReader: zero-length frame body");
  }
  if (body_length > kMaxFramePayload + 1) {
    throw FramingError("FrameReader: frame body length " +
                       std::to_string(body_length) + " exceeds cap");
  }
  const std::size_t total = 4 + static_cast<std::size_t>(body_length) + 4;
  if (available < total) return std::nullopt;
  const char* body = buffer_.data() + pos_ + 4;
  const std::uint32_t want_crc = GetU32(body + body_length);
  const std::uint32_t got_crc = Crc32(std::string_view(body, body_length));
  if (want_crc != got_crc) {
    throw FramingError("FrameReader: frame CRC mismatch");
  }
  Frame frame;
  frame.type = static_cast<std::uint8_t>(body[0]);
  frame.payload.assign(body + 1, body_length - 1);
  pos_ += total;
  return frame;
}

void WireWriter::U16(std::uint16_t v) {
  out_.push_back(static_cast<char>(v & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void WireWriter::U32(std::uint32_t v) { PutU32(v, out_); }

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::F64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  if (s.size() > 0xffff) {
    throw FramingError("WireWriter::Str: string exceeds u16 length prefix");
  }
  U16(static_cast<std::uint16_t>(s.size()));
  Bytes(s);
}

const char* WireReader::Take(std::size_t n) {
  if (bytes_.size() - pos_ < n) Fail("payload truncated");
  const char* p = bytes_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::U8() {
  return static_cast<std::uint8_t>(*Take(1));
}

std::uint16_t WireReader::U16() {
  const char* p = Take(2);
  const auto b = [p](std::size_t i) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(p[i]));
  };
  return static_cast<std::uint16_t>(b(0) | (b(1) << 8));
}

std::uint32_t WireReader::U32() { return GetU32(Take(4)); }

std::uint64_t WireReader::U64() {
  const char* p = Take(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]));
  }
  return v;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view WireReader::Str() { return Bytes(U16()); }

std::string_view WireReader::Bytes(std::size_t n) {
  return std::string_view(Take(n), n);
}

void WireReader::ExpectEnd() const {
  if (pos_ != bytes_.size()) Fail("trailing payload bytes");
}

void WireReader::Fail(const std::string& what) const {
  throw FramingError(std::string(context_) + ": " + what);
}

}  // namespace pmcorr
