// JSON-lines export of monitoring results — the integration surface for
// dashboards and log pipelines (one self-describing JSON object per
// line; no external JSON dependency, we emit a small fixed schema).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/incident.h"
#include "engine/monitor.h"

namespace pmcorr {

/// Writes one line per snapshot:
///   {"t":<unix>,"q":<system score|null>,"alarmed_pairs":<n>,
///    "outlier_pairs":<n>,"worst_qa":<min measurement score|null>}
void WriteSnapshotsJsonl(const std::vector<SystemSnapshot>& snapshots,
                         std::ostream& out);

/// Writes one line per incident:
///   {"start":<unix>,"end":<unix>,"alarms":<n>,"min_score":<q>,
///    "open":<bool>}
void WriteIncidentsJsonl(const std::vector<Incident>& incidents,
                         std::ostream& out);

/// Escapes a string for inclusion in a JSON value (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& text);

}  // namespace pmcorr
