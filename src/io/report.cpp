#include "io/report.h"

#include <fstream>
#include <stdexcept>

namespace pmcorr {

MarkdownReport::MarkdownReport(std::string title) {
  text_ = "# " + std::move(title) + "\n";
}

void MarkdownReport::Section(const std::string& heading) {
  text_ += "\n## " + heading + "\n\n";
}

void MarkdownReport::Paragraph(const std::string& text) {
  text_ += text + "\n\n";
}

void MarkdownReport::Table(const TextTable& table) {
  text_ += "```\n" + table.ToString() + "```\n\n";
}

void MarkdownReport::Write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MarkdownReport: cannot open " + path);
  out << text_;
  if (!out) throw std::runtime_error("MarkdownReport: write failed: " + path);
}

}  // namespace pmcorr
