#include "io/report.h"

#include <stdexcept>

#include "io/atomic_file.h"

namespace pmcorr {

MarkdownReport::MarkdownReport(std::string title) {
  text_ = "# " + std::move(title) + "\n";
}

void MarkdownReport::Section(const std::string& heading) {
  text_ += "\n## " + heading + "\n\n";
}

void MarkdownReport::Paragraph(const std::string& text) {
  text_ += text + "\n\n";
}

void MarkdownReport::Table(const TextTable& table) {
  text_ += "```\n" + table.ToString() + "```\n\n";
}

void MarkdownReport::Write(const std::string& path) const {
  // Atomic replacement: a crash mid-write must not leave a torn report
  // (io/atomic_file.h).
  AtomicWriteFile(path, text_);
}

}  // namespace pmcorr
