#include "io/monitor_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "io/atomic_file.h"
#include "io/model_io.h"

namespace pmcorr {
namespace {

constexpr const char* kMagic = "pmcorr-monitor v1";

// Declared-size ceilings: a checkpoint names its measurement and pair
// counts up front and the loader reserves accordingly, so corrupt values
// must be rejected before they turn into allocations. Production fleets
// run hundreds of pairs; a million of either is far beyond any real
// deployment yet still only megabytes of reserve.
constexpr std::size_t kMaxMeasurements = 1u << 20;
constexpr std::size_t kMaxPairs = 1u << 20;

// Upper bound on the generation slots the path-based loader probes —
// far above any sane CheckpointConfig::generations, purely a loop cap.
constexpr std::size_t kMaxCheckpointGenerations = 32;

void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

void SaveSystemMonitor(const SystemMonitor& monitor, std::ostream& out) {
  out << kMagic << "\n";
  out << "measurements " << monitor.MeasurementCount() << "\n";
  for (const MeasurementInfo& info : monitor.Infos()) {
    // Display names may contain spaces in user data; ours use '@' form.
    out << "m " << info.machine.value << " " << static_cast<int>(info.kind)
        << " " << info.name << "\n";
  }
  out << "pairs " << monitor.Graph().PairCount() << "\n";
  for (const PairId& pair : monitor.Graph().Pairs()) {
    out << "p " << pair.a.value << " " << pair.b.value << "\n";
  }
  out << "aggregates " << monitor.StepCount() << " ";
  WriteDouble(out, monitor.SystemAverage().Sum());
  out << " " << monitor.SystemAverage().Count() << "\n";
  for (const ScoreAverager& avg : monitor.MeasurementAverages()) {
    out << "a ";
    WriteDouble(out, avg.Sum());
    out << " " << avg.Count() << "\n";
  }
  for (std::size_t i = 0; i < monitor.Graph().PairCount(); ++i) {
    SavePairModel(monitor.Model(i), out);
  }
  if (!out) throw std::runtime_error("SaveSystemMonitor: write failed");
}

namespace {

// Trailer line appended to file checkpoints:
//   trailer crc32 <8 hex digits> bytes <content-byte-count>\n
// The CRC covers exactly the <content-byte-count> bytes before the
// trailer line, so truncation, torn writes and bit rot are all
// detectable before the (expensive) full parse runs.
constexpr const char* kTrailerTag = "trailer crc32 ";

std::string RenderTrailer(std::string_view content) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "trailer crc32 %08x bytes %zu\n",
                Crc32(content), content.size());
  return buf;
}

std::string GenerationPath(const std::string& path, std::size_t generation) {
  if (generation == 0) return path;
  return path + ".g" + std::to_string(generation);
}

bool ReadFileBytes(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  bytes = std::move(buffer).str();
  return static_cast<bool>(in);
}

}  // namespace

std::string_view VerifyCheckpointTrailer(std::string_view bytes) {
  // The trailer is the final newline-terminated line; find it without
  // assuming anything about the (possibly corrupt) content above it.
  if (bytes.empty() || bytes.back() != '\n') return bytes;
  const std::size_t prev_newline = bytes.find_last_of('\n', bytes.size() - 2);
  const std::size_t line_start =
      prev_newline == std::string_view::npos ? 0 : prev_newline + 1;
  const std::string_view line =
      bytes.substr(line_start, bytes.size() - 1 - line_start);
  if (!line.starts_with(kTrailerTag)) return bytes;  // legacy: no trailer

  std::uint32_t crc = 0;
  std::size_t declared = 0;
  char extra = 0;
  if (std::sscanf(std::string(line).c_str(), "trailer crc32 %x bytes %zu%c",
                  &crc, &declared, &extra) != 2) {
    throw std::runtime_error("checkpoint trailer is malformed");
  }
  if (declared != line_start) {
    throw std::runtime_error(
        "checkpoint trailer length mismatch: trailer covers " +
        std::to_string(declared) + " bytes, file holds " +
        std::to_string(line_start));
  }
  const std::string_view content = bytes.substr(0, line_start);
  const std::uint32_t actual = Crc32(content);
  if (actual != crc) {
    char expect[16], got[16];
    std::snprintf(expect, sizeof(expect), "%08x", crc);
    std::snprintf(got, sizeof(got), "%08x", actual);
    throw std::runtime_error(std::string("checkpoint CRC mismatch: trailer ") +
                             expect + ", content " + got);
  }
  return content;
}

void SaveSystemMonitor(const SystemMonitor& monitor, const std::string& path,
                       const CheckpointConfig& config) {
  std::ostringstream content;
  SaveSystemMonitor(monitor, content);
  std::string bytes = std::move(content).str();
  bytes += RenderTrailer(bytes);

  // Rotate generations oldest-first: g -> g+1, dropping the oldest.
  // Each shift is a single rename (atomic), so a crash anywhere in the
  // loop leaves every checkpoint either at its old or its new slot —
  // never torn — and the loader probes all slots anyway.
  const std::size_t keep = std::max<std::size_t>(1, config.generations);
  for (std::size_t g = keep; g-- > 1;) {
    // Ignore failures: the source generation may simply not exist yet.
    std::rename(GenerationPath(path, g - 1).c_str(),
                GenerationPath(path, g).c_str());
  }
  AtomicWriteFile(path, bytes);
}

void SaveSystemMonitor(const SystemMonitor& monitor,
                       const std::string& path) {
  SaveSystemMonitor(monitor, path, CheckpointConfig{});
}

std::unique_ptr<SystemMonitor> LoadSystemMonitor(std::istream& in,
                                                 std::size_t threads) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("LoadSystemMonitor: bad magic");
  }

  std::string tag;
  std::size_t measurement_count = 0;
  if (!(in >> tag >> measurement_count) || tag != "measurements") {
    throw std::runtime_error("LoadSystemMonitor: bad measurements header");
  }
  if (measurement_count > kMaxMeasurements) {
    throw std::runtime_error("LoadSystemMonitor: declared measurement count " +
                             std::to_string(measurement_count) +
                             " exceeds limit");
  }
  std::vector<MeasurementInfo> infos;
  infos.reserve(measurement_count);
  for (std::size_t i = 0; i < measurement_count; ++i) {
    int machine = 0, kind = 0;
    std::string name;
    if (!(in >> tag >> machine >> kind >> name) || tag != "m") {
      throw std::runtime_error("LoadSystemMonitor: bad measurement line");
    }
    if (machine < 0) {
      throw std::runtime_error("LoadSystemMonitor: bad machine id");
    }
    if (kind < 0 ||
        MetricKindName(static_cast<MetricKind>(kind)) == "UnknownMetric") {
      throw std::runtime_error("LoadSystemMonitor: unknown metric kind");
    }
    MeasurementInfo info;
    info.id = MeasurementId(static_cast<std::int32_t>(i));
    info.machine = MachineId(machine);
    info.kind = static_cast<MetricKind>(kind);
    info.name = std::move(name);
    infos.push_back(std::move(info));
  }

  std::size_t pair_count = 0;
  if (!(in >> tag >> pair_count) || tag != "pairs") {
    throw std::runtime_error("LoadSystemMonitor: bad pairs header");
  }
  if (pair_count > kMaxPairs) {
    throw std::runtime_error("LoadSystemMonitor: declared pair count " +
                             std::to_string(pair_count) + " exceeds limit");
  }
  std::vector<PairId> pairs;
  pairs.reserve(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) {
    int a = 0, b = 0;
    if (!(in >> tag >> a >> b) || tag != "p") {
      throw std::runtime_error("LoadSystemMonitor: bad pair line");
    }
    pairs.emplace_back(MeasurementId(a), MeasurementId(b));
  }

  std::size_t steps = 0;
  double system_sum = 0.0;
  std::size_t system_count = 0;
  if (!(in >> tag >> steps >> system_sum >> system_count) ||
      tag != "aggregates" || !std::isfinite(system_sum) ||
      system_count > steps) {
    throw std::runtime_error("LoadSystemMonitor: bad aggregates line");
  }
  std::vector<ScoreAverager> measurement_avgs;
  measurement_avgs.reserve(measurement_count);
  for (std::size_t i = 0; i < measurement_count; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    if (!(in >> tag >> sum >> count) || tag != "a" || !std::isfinite(sum) ||
        count > steps) {
      throw std::runtime_error("LoadSystemMonitor: bad averager line");
    }
    measurement_avgs.push_back(ScoreAverager::FromState(sum, count));
  }
  in >> std::ws;  // move to the first model's magic line

  std::vector<PairModel> models;
  models.reserve(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) {
    models.push_back(LoadPairModel(in));
    in >> std::ws;
  }

  MonitorConfig config;
  config.threads = threads;
  if (!models.empty()) config.model = models.front().Config();

  try {
    return std::make_unique<SystemMonitor>(
        config,
        MeasurementGraph::FromPairs(measurement_count, std::move(pairs)),
        std::move(infos), std::move(models), std::move(measurement_avgs),
        ScoreAverager::FromState(system_sum, system_count), steps);
  } catch (const std::invalid_argument& error) {
    // FromPairs rejects self/duplicate/out-of-range pairs and the
    // monitor constructor rejects inconsistent part counts with
    // invalid_argument; a corrupt checkpoint must surface as this
    // loader's documented error type instead.
    throw std::runtime_error(std::string("LoadSystemMonitor: ") +
                             error.what());
  }
}

std::unique_ptr<SystemMonitor> LoadSystemMonitor(
    const std::string& path, std::size_t threads,
    CheckpointRecoveryInfo* recovery) {
  // Probe generations newest-first; the first one that passes both the
  // CRC trailer check and full load-time validation wins. The probe
  // stops at the first missing slot past generation 1 (rotation never
  // leaves holes beyond a single in-flight shift).
  std::vector<std::string> rejected;
  std::size_t missing_run = 0;
  for (std::size_t g = 0; g < kMaxCheckpointGenerations; ++g) {
    const std::string candidate = GenerationPath(path, g);
    std::string bytes;
    if (!ReadFileBytes(candidate, bytes)) {
      rejected.push_back(candidate + ": cannot open");
      if (g > 0 && ++missing_run >= 2) break;
      continue;
    }
    missing_run = 0;
    try {
      const std::string_view content = VerifyCheckpointTrailer(bytes);
      std::istringstream in{std::string(content)};
      auto monitor = LoadSystemMonitor(in, threads);
      if (recovery) {
        recovery->loaded_path = candidate;
        recovery->generation = g;
        recovery->rejected = std::move(rejected);
      }
      return monitor;
    } catch (const std::runtime_error& error) {
      rejected.push_back(candidate + ": " + error.what());
    }
  }
  std::string message = "LoadSystemMonitor: no recoverable checkpoint at " +
                        path;
  for (const std::string& reason : rejected) message += "\n  " + reason;
  throw std::runtime_error(message);
}

namespace {

void WriteScoreArray(std::ostream& out,
                     const std::vector<std::optional<double>>& scores) {
  out << "[";
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i > 0) out << ",";
    if (scores[i]) {
      WriteDouble(out, *scores[i]);
    } else {
      out << "null";
    }
  }
  out << "]";
}

}  // namespace

void WriteSnapshotStreamJsonl(const std::vector<SystemSnapshot>& snapshots,
                              std::ostream& out) {
  for (const SystemSnapshot& snap : snapshots) {
    out << "{\"sample\":" << snap.sample << ",\"t\":" << snap.time
        << ",\"q\":";
    if (snap.system_score) {
      WriteDouble(out, *snap.system_score);
    } else {
      out << "null";
    }
    out << ",\"qa\":";
    WriteScoreArray(out, snap.measurement_scores);
    out << ",\"pair_scores\":";
    WriteScoreArray(out, snap.pair_scores);
    out << ",\"alarmed\":[";
    for (std::size_t i = 0; i < snap.alarmed_pairs.size(); ++i) {
      if (i > 0) out << ",";
      out << snap.alarmed_pairs[i];
    }
    out << "],\"outliers\":" << snap.outlier_pairs
        << ",\"extended\":" << snap.extended_pairs << "}\n";
  }
  if (!out) throw std::runtime_error("WriteSnapshotStreamJsonl: write failed");
}

namespace {

// Strict left-to-right cursor over one JSONL line. The writer emits a
// fixed field order with no insignificant whitespace, so the reader can
// demand byte-exact structure; anything else is a parse error, never a
// crash or a silent skip.
class LineCursor {
 public:
  LineCursor(std::string_view text, std::size_t line_no,
             std::string_view context = "ReadSnapshotStreamJsonl")
      : text_(text), line_no_(line_no), context_(context) {}

  void Expect(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) {
      Fail("expected '" + std::string(token) + "'");
    }
    pos_ += token.size();
  }

  bool TryExpect(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  double Number() {
    double value = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{} || !std::isfinite(value)) {
      Fail("bad number");
    }
    pos_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  std::optional<double> NumberOrNull() {
    if (TryExpect("null")) return std::nullopt;
    return Number();
  }

  std::uint64_t UInt() {
    std::uint64_t value = 0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{}) Fail("bad unsigned integer");
    pos_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  std::int64_t Int() {
    std::int64_t value = 0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{}) Fail("bad integer");
    pos_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  void ExpectEnd() {
    if (pos_ != text_.size()) Fail("trailing bytes after object");
  }

  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error(std::string(context_) + ": line " +
                             std::to_string(line_no_) + ": " + what);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_no_;
  std::string_view context_;
};

std::vector<std::optional<double>> ReadScoreArray(LineCursor& cursor) {
  std::vector<std::optional<double>> scores;
  cursor.Expect("[");
  if (!cursor.TryExpect("]")) {
    do {
      scores.push_back(cursor.NumberOrNull());
    } while (cursor.TryExpect(","));
    cursor.Expect("]");
  }
  return scores;
}

}  // namespace

std::vector<SystemSnapshot> ReadSnapshotStreamJsonl(std::istream& in) {
  std::vector<SystemSnapshot> snapshots;
  std::string line;
  std::size_t line_no = 0;
  // Array widths must agree across the stream; fixed by the first line.
  std::size_t pair_count = 0;
  std::size_t measurement_count = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    LineCursor cursor(line, line_no);
    SystemSnapshot snap;

    cursor.Expect("{\"sample\":");
    snap.sample = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"t\":");
    snap.time = cursor.Int();
    cursor.Expect(",\"q\":");
    snap.system_score = cursor.NumberOrNull();
    cursor.Expect(",\"qa\":");
    snap.measurement_scores = ReadScoreArray(cursor);
    cursor.Expect(",\"pair_scores\":");
    snap.pair_scores = ReadScoreArray(cursor);

    cursor.Expect(",\"alarmed\":[");
    if (cursor.Peek() != ']') {
      do {
        const std::uint64_t pair = cursor.UInt();
        if (pair >= snap.pair_scores.size()) {
          cursor.Fail("alarmed pair index out of range");
        }
        if (!snap.alarmed_pairs.empty() && pair <= snap.alarmed_pairs.back()) {
          cursor.Fail("alarmed pair indices not strictly increasing");
        }
        snap.alarmed_pairs.push_back(static_cast<std::size_t>(pair));
      } while (cursor.TryExpect(","));
    }
    cursor.Expect("]");

    cursor.Expect(",\"outliers\":");
    snap.outlier_pairs = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"extended\":");
    snap.extended_pairs = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect("}");
    cursor.ExpectEnd();

    if (snap.outlier_pairs > snap.pair_scores.size() ||
        snap.extended_pairs > snap.pair_scores.size()) {
      cursor.Fail("outlier/extended counts exceed pair count");
    }
    if (snapshots.empty()) {
      pair_count = snap.pair_scores.size();
      measurement_count = snap.measurement_scores.size();
    } else if (snap.pair_scores.size() != pair_count ||
               snap.measurement_scores.size() != measurement_count) {
      cursor.Fail("score array width changed mid-stream");
    }
    snapshots.push_back(std::move(snap));
  }
  return snapshots;
}

namespace {

void WriteChangeArray(std::ostream& out,
                      const std::vector<ScoreChange>& changes) {
  out << "[";
  for (std::size_t i = 0; i < changes.size(); ++i) {
    if (i > 0) out << ",";
    out << "[" << changes[i].index << ",";
    WriteDouble(out, changes[i].score);
    out << "]";
  }
  out << "]";
}

void WriteIndexArray(std::ostream& out,
                     const std::vector<std::uint32_t>& indices) {
  out << "[";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out << ",";
    out << indices[i];
  }
  out << "]";
}

// Reads [[index,score],...] with every index below `width`.
std::vector<ScoreChange> ReadChangeArray(LineCursor& cursor,
                                         std::uint32_t width) {
  std::vector<ScoreChange> changes;
  cursor.Expect("[");
  if (!cursor.TryExpect("]")) {
    do {
      cursor.Expect("[");
      ScoreChange change;
      const std::uint64_t index = cursor.UInt();
      if (index >= width) cursor.Fail("change index out of range");
      change.index = static_cast<std::uint32_t>(index);
      cursor.Expect(",");
      change.score = cursor.Number();
      cursor.Expect("]");
      changes.push_back(change);
    } while (cursor.TryExpect(","));
    cursor.Expect("]");
  }
  return changes;
}

std::vector<std::uint32_t> ReadIndexArray(LineCursor& cursor,
                                          std::uint32_t width) {
  std::vector<std::uint32_t> indices;
  cursor.Expect("[");
  if (!cursor.TryExpect("]")) {
    do {
      const std::uint64_t index = cursor.UInt();
      if (index >= width) cursor.Fail("index out of range");
      indices.push_back(static_cast<std::uint32_t>(index));
    } while (cursor.TryExpect(","));
    cursor.Expect("]");
  }
  return indices;
}

bool ReadBool(LineCursor& cursor) {
  if (cursor.TryExpect("true")) return true;
  if (cursor.TryExpect("false")) return false;
  cursor.Fail("expected true or false");
}

}  // namespace

void WriteDeltaStreamJsonl(const std::vector<SystemDelta>& deltas,
                           std::ostream& out) {
  for (const SystemDelta& d : deltas) {
    out << "{\"sample\":" << d.sample << ",\"t\":" << d.time
        << ",\"baseline\":" << (d.baseline ? "true" : "false")
        << ",\"pairs\":" << d.pair_count
        << ",\"measurements\":" << d.measurement_count << ",\"q\":";
    if (d.system_score) {
      WriteDouble(out, *d.system_score);
    } else {
      out << "null";
    }
    out << ",\"pair_changes\":";
    WriteChangeArray(out, d.pair_changes);
    out << ",\"pair_disengaged\":";
    WriteIndexArray(out, d.pair_disengaged);
    out << ",\"qa_changes\":";
    WriteChangeArray(out, d.measurement_changes);
    out << ",\"qa_disengaged\":";
    WriteIndexArray(out, d.measurement_disengaged);
    out << ",\"alarmed\":[";
    for (std::size_t i = 0; i < d.alarmed_pairs.size(); ++i) {
      if (i > 0) out << ",";
      out << d.alarmed_pairs[i];
    }
    out << "],\"outliers\":" << d.outlier_pairs
        << ",\"extended\":" << d.extended_pairs
        << ",\"event\":" << static_cast<int>(d.stream_event)
        << ",\"suppressed\":" << d.suppressed_values
        << ",\"quarantined\":" << d.quarantined_pairs
        << ",\"health\":" << (d.has_health ? "true" : "false")
        << ",\"health_changes\":[";
    for (std::size_t i = 0; i < d.health_changes.size(); ++i) {
      if (i > 0) out << ",";
      out << "[" << d.health_changes[i].index << ","
          << static_cast<int>(d.health_changes[i].health) << "]";
    }
    out << "]}\n";
  }
  if (!out) throw std::runtime_error("WriteDeltaStreamJsonl: write failed");
}

std::vector<SystemDelta> ReadDeltaStreamJsonl(std::istream& in) {
  std::vector<SystemDelta> deltas;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    LineCursor cursor(line, line_no, "ReadDeltaStreamJsonl");
    SystemDelta d;

    cursor.Expect("{\"sample\":");
    d.sample = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"t\":");
    d.time = cursor.Int();
    cursor.Expect(",\"baseline\":");
    d.baseline = ReadBool(cursor);
    cursor.Expect(",\"pairs\":");
    const std::uint64_t pairs = cursor.UInt();
    if (pairs > kMaxPairs) cursor.Fail("declared pair count exceeds limit");
    d.pair_count = static_cast<std::uint32_t>(pairs);
    cursor.Expect(",\"measurements\":");
    const std::uint64_t measurements = cursor.UInt();
    if (measurements > kMaxMeasurements) {
      cursor.Fail("declared measurement count exceeds limit");
    }
    d.measurement_count = static_cast<std::uint32_t>(measurements);
    cursor.Expect(",\"q\":");
    d.system_score = cursor.NumberOrNull();
    cursor.Expect(",\"pair_changes\":");
    d.pair_changes = ReadChangeArray(cursor, d.pair_count);
    cursor.Expect(",\"pair_disengaged\":");
    d.pair_disengaged = ReadIndexArray(cursor, d.pair_count);
    cursor.Expect(",\"qa_changes\":");
    d.measurement_changes = ReadChangeArray(cursor, d.measurement_count);
    cursor.Expect(",\"qa_disengaged\":");
    d.measurement_disengaged = ReadIndexArray(cursor, d.measurement_count);

    cursor.Expect(",\"alarmed\":[");
    if (cursor.Peek() != ']') {
      do {
        const std::uint64_t pair = cursor.UInt();
        if (pair >= d.pair_count) {
          cursor.Fail("alarmed pair index out of range");
        }
        if (!d.alarmed_pairs.empty() && pair <= d.alarmed_pairs.back()) {
          cursor.Fail("alarmed pair indices not strictly increasing");
        }
        d.alarmed_pairs.push_back(static_cast<std::size_t>(pair));
      } while (cursor.TryExpect(","));
    }
    cursor.Expect("]");

    cursor.Expect(",\"outliers\":");
    d.outlier_pairs = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"extended\":");
    d.extended_pairs = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"event\":");
    const std::uint64_t event = cursor.UInt();
    if (event > static_cast<std::uint64_t>(StreamEvent::kOutOfOrder)) {
      cursor.Fail("unknown stream event code");
    }
    d.stream_event = static_cast<StreamEvent>(event);
    cursor.Expect(",\"suppressed\":");
    d.suppressed_values = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"quarantined\":");
    d.quarantined_pairs = static_cast<std::size_t>(cursor.UInt());
    cursor.Expect(",\"health\":");
    d.has_health = ReadBool(cursor);
    cursor.Expect(",\"health_changes\":[");
    if (cursor.Peek() != ']') {
      do {
        cursor.Expect("[");
        HealthChange change;
        const std::uint64_t index = cursor.UInt();
        if (index >= d.measurement_count) {
          cursor.Fail("health change index out of range");
        }
        change.index = static_cast<std::uint32_t>(index);
        cursor.Expect(",");
        const std::uint64_t health = cursor.UInt();
        if (health > static_cast<std::uint64_t>(MeasurementHealth::kDead)) {
          cursor.Fail("unknown health code");
        }
        change.health = static_cast<MeasurementHealth>(health);
        cursor.Expect("]");
        d.health_changes.push_back(change);
      } while (cursor.TryExpect(","));
    }
    cursor.Expect("]");
    cursor.Expect("}");
    cursor.ExpectEnd();

    if (d.outlier_pairs > d.pair_count || d.extended_pairs > d.pair_count) {
      cursor.Fail("outlier/extended counts exceed pair count");
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

}  // namespace pmcorr
