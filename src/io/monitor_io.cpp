#include "io/monitor_io.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "io/model_io.h"

namespace pmcorr {
namespace {

constexpr const char* kMagic = "pmcorr-monitor v1";

void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

void SaveSystemMonitor(const SystemMonitor& monitor, std::ostream& out) {
  out << kMagic << "\n";
  out << "measurements " << monitor.MeasurementCount() << "\n";
  for (const MeasurementInfo& info : monitor.Infos()) {
    // Display names may contain spaces in user data; ours use '@' form.
    out << "m " << info.machine.value << " " << static_cast<int>(info.kind)
        << " " << info.name << "\n";
  }
  out << "pairs " << monitor.Graph().PairCount() << "\n";
  for (const PairId& pair : monitor.Graph().Pairs()) {
    out << "p " << pair.a.value << " " << pair.b.value << "\n";
  }
  out << "aggregates " << monitor.StepCount() << " ";
  WriteDouble(out, monitor.SystemAverage().Sum());
  out << " " << monitor.SystemAverage().Count() << "\n";
  for (const ScoreAverager& avg : monitor.MeasurementAverages()) {
    out << "a ";
    WriteDouble(out, avg.Sum());
    out << " " << avg.Count() << "\n";
  }
  for (std::size_t i = 0; i < monitor.Graph().PairCount(); ++i) {
    SavePairModel(monitor.Model(i), out);
  }
  if (!out) throw std::runtime_error("SaveSystemMonitor: write failed");
}

void SaveSystemMonitor(const SystemMonitor& monitor,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveSystemMonitor: cannot open " + path);
  }
  SaveSystemMonitor(monitor, out);
}

std::unique_ptr<SystemMonitor> LoadSystemMonitor(std::istream& in,
                                                 std::size_t threads) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("LoadSystemMonitor: bad magic");
  }

  std::string tag;
  std::size_t measurement_count = 0;
  if (!(in >> tag >> measurement_count) || tag != "measurements") {
    throw std::runtime_error("LoadSystemMonitor: bad measurements header");
  }
  std::vector<MeasurementInfo> infos;
  infos.reserve(measurement_count);
  for (std::size_t i = 0; i < measurement_count; ++i) {
    int machine = 0, kind = 0;
    std::string name;
    if (!(in >> tag >> machine >> kind >> name) || tag != "m") {
      throw std::runtime_error("LoadSystemMonitor: bad measurement line");
    }
    MeasurementInfo info;
    info.id = MeasurementId(static_cast<std::int32_t>(i));
    info.machine = MachineId(machine);
    info.kind = static_cast<MetricKind>(kind);
    info.name = std::move(name);
    infos.push_back(std::move(info));
  }

  std::size_t pair_count = 0;
  if (!(in >> tag >> pair_count) || tag != "pairs") {
    throw std::runtime_error("LoadSystemMonitor: bad pairs header");
  }
  std::vector<PairId> pairs;
  pairs.reserve(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) {
    int a = 0, b = 0;
    if (!(in >> tag >> a >> b) || tag != "p") {
      throw std::runtime_error("LoadSystemMonitor: bad pair line");
    }
    pairs.emplace_back(MeasurementId(a), MeasurementId(b));
  }

  std::size_t steps = 0;
  double system_sum = 0.0;
  std::size_t system_count = 0;
  if (!(in >> tag >> steps >> system_sum >> system_count) ||
      tag != "aggregates") {
    throw std::runtime_error("LoadSystemMonitor: bad aggregates line");
  }
  std::vector<ScoreAverager> measurement_avgs;
  measurement_avgs.reserve(measurement_count);
  for (std::size_t i = 0; i < measurement_count; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    if (!(in >> tag >> sum >> count) || tag != "a") {
      throw std::runtime_error("LoadSystemMonitor: bad averager line");
    }
    measurement_avgs.push_back(ScoreAverager::FromState(sum, count));
  }
  in >> std::ws;  // move to the first model's magic line

  std::vector<PairModel> models;
  models.reserve(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) {
    models.push_back(LoadPairModel(in));
    in >> std::ws;
  }

  MonitorConfig config;
  config.threads = threads;
  if (!models.empty()) config.model = models.front().Config();

  return std::make_unique<SystemMonitor>(
      config, MeasurementGraph::FromPairs(measurement_count, std::move(pairs)),
      std::move(infos), std::move(models), std::move(measurement_avgs),
      ScoreAverager::FromState(system_sum, system_count), steps);
}

std::unique_ptr<SystemMonitor> LoadSystemMonitor(const std::string& path,
                                                 std::size_t threads) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadSystemMonitor: cannot open " + path);
  }
  return LoadSystemMonitor(in, threads);
}

namespace {

void WriteScoreArray(std::ostream& out,
                     const std::vector<std::optional<double>>& scores) {
  out << "[";
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i > 0) out << ",";
    if (scores[i]) {
      WriteDouble(out, *scores[i]);
    } else {
      out << "null";
    }
  }
  out << "]";
}

}  // namespace

void WriteSnapshotStreamJsonl(const std::vector<SystemSnapshot>& snapshots,
                              std::ostream& out) {
  for (const SystemSnapshot& snap : snapshots) {
    out << "{\"sample\":" << snap.sample << ",\"t\":" << snap.time
        << ",\"q\":";
    if (snap.system_score) {
      WriteDouble(out, *snap.system_score);
    } else {
      out << "null";
    }
    out << ",\"qa\":";
    WriteScoreArray(out, snap.measurement_scores);
    out << ",\"pair_scores\":";
    WriteScoreArray(out, snap.pair_scores);
    out << ",\"alarmed\":[";
    for (std::size_t i = 0; i < snap.alarmed_pairs.size(); ++i) {
      if (i > 0) out << ",";
      out << snap.alarmed_pairs[i];
    }
    out << "],\"outliers\":" << snap.outlier_pairs
        << ",\"extended\":" << snap.extended_pairs << "}\n";
  }
  if (!out) throw std::runtime_error("WriteSnapshotStreamJsonl: write failed");
}

}  // namespace pmcorr
