// PairModel persistence.
//
// A deployed monitor should survive restarts without relearning from
// history, so the full model state round-trips: config, both interval
// lists (with their initialization-time r_avg), the accumulated evidence,
// and the empirical counts. Text-based, versioned, bit-exact doubles.
#pragma once

#include <iosfwd>
#include <string>

#include "core/model.h"

namespace pmcorr {

/// Serializes the model; throws std::runtime_error on I/O failure.
void SavePairModel(const PairModel& model, std::ostream& out);
void SavePairModel(const PairModel& model, const std::string& path);

/// Restores a model saved by SavePairModel; throws std::runtime_error on
/// malformed input. The restored model continues exactly where the saved
/// one stopped (same grid, posterior, counts; the transition sequence
/// restarts, as after ResetSequence()).
PairModel LoadPairModel(std::istream& in);
PairModel LoadPairModel(const std::string& path);

}  // namespace pmcorr
