#include "io/delta_binary.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "io/framing.h"

namespace pmcorr {
namespace {

// Same declared-width limits as the JSONL delta reader (monitor_io.cpp):
// the caps bound every count-prefixed allocation below.
constexpr std::size_t kMaxMeasurements = 1u << 20;
constexpr std::size_t kMaxPairs = 1u << 20;

void EncodeChanges(WireWriter& w, const std::vector<ScoreChange>& changes) {
  w.U32(static_cast<std::uint32_t>(changes.size()));
  for (const ScoreChange& c : changes) {
    w.U32(c.index);
    w.F64(c.score);
  }
}

void EncodeIndices(WireWriter& w, const std::vector<std::uint32_t>& indices) {
  w.U32(static_cast<std::uint32_t>(indices.size()));
  for (const std::uint32_t i : indices) w.U32(i);
}

// Count prefix bounded by `width`: a legitimate delta carries at most
// one change per pair/measurement, so anything larger is malformed (and
// would otherwise let a hostile count drive the reserve below).
std::uint32_t ReadCount(WireReader& r, std::uint32_t width,
                        const char* what) {
  const std::uint32_t n = r.U32();
  if (n > width) r.Fail(std::string(what) + " count exceeds declared width");
  return n;
}

void DecodeChanges(WireReader& r, std::uint32_t width, const char* what,
                   std::vector<ScoreChange>& out) {
  const std::uint32_t n = ReadCount(r, width, what);
  out.reserve(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    ScoreChange c;
    c.index = r.U32();
    if (c.index >= width) r.Fail(std::string(what) + " index out of range");
    c.score = r.F64();
    if (!std::isfinite(c.score)) {
      r.Fail(std::string(what) + " score not finite");
    }
    out.push_back(c);
  }
}

void DecodeIndices(WireReader& r, std::uint32_t width, const char* what,
                   std::vector<std::uint32_t>& out) {
  const std::uint32_t n = ReadCount(r, width, what);
  out.reserve(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t i = r.U32();
    if (i >= width) r.Fail(std::string(what) + " index out of range");
    out.push_back(i);
  }
}

}  // namespace

void EncodeSystemDelta(const SystemDelta& d, std::string& out) {
  WireWriter w(out);
  w.U64(static_cast<std::uint64_t>(d.sample));
  w.I64(d.time);
  w.U8(d.baseline ? 1 : 0);
  w.U32(d.pair_count);
  w.U32(d.measurement_count);
  w.U8(d.system_score.has_value() ? 1 : 0);
  if (d.system_score) w.F64(*d.system_score);
  EncodeChanges(w, d.pair_changes);
  EncodeIndices(w, d.pair_disengaged);
  EncodeChanges(w, d.measurement_changes);
  EncodeIndices(w, d.measurement_disengaged);
  w.U32(static_cast<std::uint32_t>(d.alarmed_pairs.size()));
  for (const std::size_t pair : d.alarmed_pairs) {
    w.U32(static_cast<std::uint32_t>(pair));
  }
  w.U64(static_cast<std::uint64_t>(d.outlier_pairs));
  w.U64(static_cast<std::uint64_t>(d.extended_pairs));
  w.U8(static_cast<std::uint8_t>(d.stream_event));
  w.U64(static_cast<std::uint64_t>(d.suppressed_values));
  w.U64(static_cast<std::uint64_t>(d.quarantined_pairs));
  w.U8(d.has_health ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(d.health_changes.size()));
  for (const HealthChange& c : d.health_changes) {
    w.U32(c.index);
    w.U8(static_cast<std::uint8_t>(c.health));
  }
}

SystemDelta DecodeSystemDelta(std::string_view payload) {
  WireReader r(payload, "DecodeSystemDelta");
  SystemDelta d;
  d.sample = static_cast<std::size_t>(r.U64());
  d.time = r.I64();
  d.baseline = r.U8() != 0;
  d.pair_count = r.U32();
  if (d.pair_count > kMaxPairs) r.Fail("declared pair count exceeds limit");
  d.measurement_count = r.U32();
  if (d.measurement_count > kMaxMeasurements) {
    r.Fail("declared measurement count exceeds limit");
  }
  if (r.U8() != 0) {
    const double q = r.F64();
    if (!std::isfinite(q)) r.Fail("system score not finite");
    d.system_score = q;
  }
  DecodeChanges(r, d.pair_count, "pair change", d.pair_changes);
  DecodeIndices(r, d.pair_count, "pair disengage", d.pair_disengaged);
  DecodeChanges(r, d.measurement_count, "qa change", d.measurement_changes);
  DecodeIndices(r, d.measurement_count, "qa disengage",
                d.measurement_disengaged);
  const std::uint32_t alarmed =
      ReadCount(r, d.pair_count, "alarmed pair");
  d.alarmed_pairs.reserve(alarmed);
  for (std::uint32_t k = 0; k < alarmed; ++k) {
    const std::uint32_t pair = r.U32();
    if (pair >= d.pair_count) r.Fail("alarmed pair index out of range");
    if (!d.alarmed_pairs.empty() && pair <= d.alarmed_pairs.back()) {
      r.Fail("alarmed pair indices not strictly increasing");
    }
    d.alarmed_pairs.push_back(pair);
  }
  d.outlier_pairs = static_cast<std::size_t>(r.U64());
  d.extended_pairs = static_cast<std::size_t>(r.U64());
  const std::uint8_t event = r.U8();
  if (event > static_cast<std::uint8_t>(StreamEvent::kOutOfOrder)) {
    r.Fail("unknown stream event code");
  }
  d.stream_event = static_cast<StreamEvent>(event);
  d.suppressed_values = static_cast<std::size_t>(r.U64());
  d.quarantined_pairs = static_cast<std::size_t>(r.U64());
  d.has_health = r.U8() != 0;
  const std::uint32_t health =
      ReadCount(r, d.measurement_count, "health change");
  d.health_changes.reserve(health);
  for (std::uint32_t k = 0; k < health; ++k) {
    HealthChange c;
    c.index = r.U32();
    if (c.index >= d.measurement_count) {
      r.Fail("health change index out of range");
    }
    const std::uint8_t code = r.U8();
    if (code > static_cast<std::uint8_t>(MeasurementHealth::kDead)) {
      r.Fail("unknown health code");
    }
    c.health = static_cast<MeasurementHealth>(code);
    d.health_changes.push_back(c);
  }
  r.ExpectEnd();
  if (d.outlier_pairs > d.pair_count || d.extended_pairs > d.pair_count) {
    r.Fail("outlier/extended counts exceed pair count");
  }
  return d;
}

void WriteDeltaStreamBinary(const std::vector<SystemDelta>& deltas,
                            std::ostream& out) {
  WriteFrame(out, kDeltaStreamMagic, kDeltaStreamMagicPayload);
  std::string payload;
  for (const SystemDelta& d : deltas) {
    payload.clear();
    EncodeSystemDelta(d, payload);
    WriteFrame(out, kDeltaStreamDelta, payload);
  }
  payload.clear();
  WireWriter w(payload);
  w.U64(deltas.size());
  WriteFrame(out, kDeltaStreamEnd, payload);
  if (!out) throw std::runtime_error("WriteDeltaStreamBinary: write failed");
}

std::vector<SystemDelta> ReadDeltaStreamBinary(std::istream& in) {
  FrameReader reader;
  std::vector<SystemDelta> deltas;
  bool saw_magic = false;
  bool saw_end = false;
  char chunk[4096];
  for (;;) {
    in.read(chunk, sizeof(chunk));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    reader.Feed(std::string_view(chunk, static_cast<std::size_t>(got)));
    while (const std::optional<Frame> frame = reader.Next()) {
      if (saw_end) {
        throw FramingError("ReadDeltaStreamBinary: frames after end frame");
      }
      if (!saw_magic) {
        if (frame->type != kDeltaStreamMagic ||
            frame->payload != kDeltaStreamMagicPayload) {
          throw FramingError("ReadDeltaStreamBinary: bad stream magic");
        }
        saw_magic = true;
        continue;
      }
      if (frame->type == kDeltaStreamDelta) {
        deltas.push_back(DecodeSystemDelta(frame->payload));
      } else if (frame->type == kDeltaStreamEnd) {
        WireReader r(frame->payload, "ReadDeltaStreamBinary end frame");
        const std::uint64_t count = r.U64();
        r.ExpectEnd();
        if (count != deltas.size()) {
          throw FramingError(
              "ReadDeltaStreamBinary: end frame count mismatch");
        }
        saw_end = true;
      } else {
        throw FramingError("ReadDeltaStreamBinary: unknown frame type " +
                           std::to_string(frame->type));
      }
    }
  }
  if (in.bad()) throw std::runtime_error("ReadDeltaStreamBinary: read failed");
  if (reader.HasPartial()) {
    throw FramingError("ReadDeltaStreamBinary: truncated mid-frame");
  }
  if (!saw_magic) {
    throw FramingError("ReadDeltaStreamBinary: missing stream magic");
  }
  if (!saw_end) {
    throw FramingError("ReadDeltaStreamBinary: truncated (no end frame)");
  }
  return deltas;
}

}  // namespace pmcorr
