#include "grid/interval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pmcorr {

IntervalList::IntervalList(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  PMCORR_DASSERT(!intervals_.empty());
#if PMCORR_DASSERT_ENABLED
  for (std::size_t i = 0; i + 1 < intervals_.size(); ++i) {
    PMCORR_DASSERT(intervals_[i].hi == intervals_[i + 1].lo,
                   "interval " << i << " not contiguous");
    PMCORR_DASSERT(intervals_[i].Width() > 0.0, "interval " << i);
  }
  PMCORR_DASSERT(intervals_.back().Width() > 0.0);
#endif
}

IntervalList IntervalList::Uniform(double lo, double hi, std::size_t count) {
  PMCORR_DASSERT(count > 0 && hi > lo);
  std::vector<Interval> out;
  out.reserve(count);
  const double width = (hi - lo) / static_cast<double>(count);
  double edge = lo;
  for (std::size_t i = 0; i < count; ++i) {
    const double next = i + 1 == count ? hi : lo + width * static_cast<double>(i + 1);
    out.push_back({edge, next});
    edge = next;
  }
  return IntervalList(std::move(out));
}

double IntervalList::Lo() const {
  PMCORR_DASSERT(!intervals_.empty());
  return intervals_.front().lo;
}

double IntervalList::Hi() const {
  PMCORR_DASSERT(!intervals_.empty());
  return intervals_.back().hi;
}

std::size_t IntervalList::IndexOf(double x) const {
  if (intervals_.empty() || x < Lo() || x >= Hi()) return npos;
  // Binary search over the shared edges.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](double value, const Interval& iv) { return value < iv.hi; });
  PMCORR_DASSERT(it != intervals_.end());
  PMCORR_DASSERT(it->Contains(x));
  return static_cast<std::size_t>(it - intervals_.begin());
}

double IntervalList::AverageWidth() const {
  if (intervals_.empty()) return 0.0;
  return (Hi() - Lo()) / static_cast<double>(intervals_.size());
}

void IntervalList::ExtendBelow(std::size_t count, double width) {
  PMCORR_DASSERT(width > 0.0);
  std::vector<Interval> prefix;
  prefix.reserve(count);
  double hi = Lo();
  for (std::size_t i = 0; i < count; ++i) {
    prefix.push_back({hi - width, hi});
    hi -= width;
  }
  std::reverse(prefix.begin(), prefix.end());
  intervals_.insert(intervals_.begin(), prefix.begin(), prefix.end());
}

void IntervalList::ExtendAbove(std::size_t count, double width) {
  PMCORR_DASSERT(width > 0.0);
  double lo = Hi();
  for (std::size_t i = 0; i < count; ++i) {
    intervals_.push_back({lo, lo + width});
    lo += width;
  }
}

void IntervalList::CheckInvariants() const {
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    PMCORR_ASSERT(std::isfinite(iv.lo) && std::isfinite(iv.hi),
                  "interval " << i << " has non-finite edges [" << iv.lo
                              << "," << iv.hi << ")");
    PMCORR_ASSERT(iv.Width() > 0.0, "interval " << i << " is empty ["
                                                << iv.lo << "," << iv.hi
                                                << ")");
    if (i + 1 < intervals_.size()) {
      PMCORR_ASSERT(iv.hi == intervals_[i + 1].lo,
                    "coverage gap/overlap between interval "
                        << i << " (hi=" << iv.hi << ") and " << i + 1
                        << " (lo=" << intervals_[i + 1].lo << ")");
    }
  }
}

std::string IntervalList::ToString() const {
  std::string out;
  for (const Interval& iv : intervals_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%g,%g)", iv.lo, iv.hi);
    out += buf;
  }
  return out;
}

}  // namespace pmcorr
