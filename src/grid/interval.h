// Half-open numeric intervals — the building block of the grid structure.
//
// Per the paper (Section 3), each dimension A^a is discretized into
// intervals v^a = [l^a, u^a); a grid cell is the intersection of one
// interval from each dimension.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pmcorr {

/// Half-open interval [lo, hi).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr double Width() const { return hi - lo; }
  constexpr bool Contains(double x) const { return lo <= x && x < hi; }
  constexpr double Center() const { return (lo + hi) / 2.0; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// An ordered, contiguous list of intervals covering [front().lo,
/// back().hi). Provides the per-dimension operations the grid needs:
/// point location and boundary extension.
class IntervalList {
 public:
  IntervalList() = default;

  /// Takes ownership of `intervals`, which must be non-empty, sorted and
  /// contiguous (interval[i].hi == interval[i+1].lo); validated in debug.
  explicit IntervalList(std::vector<Interval> intervals);

  /// Builds `count` equal-width intervals over [lo, hi).
  static IntervalList Uniform(double lo, double hi, std::size_t count);

  std::size_t Size() const { return intervals_.size(); }
  bool Empty() const { return intervals_.empty(); }
  const Interval& At(std::size_t i) const { return intervals_.at(i); }
  const std::vector<Interval>& Intervals() const { return intervals_; }

  double Lo() const;
  double Hi() const;

  /// Index of the interval containing x, or npos when outside [Lo, Hi).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t IndexOf(double x) const;

  /// IndexOf with a locality hint: checks `hint` and its immediate
  /// neighbor in x's direction before falling back to the binary search.
  /// Measurement streams are strongly local (the paper's transition
  /// study: 412 of 701 observed transitions stay in-cell, 280 move to
  /// the nearest neighbor), so the hint — typically the previous
  /// sample's interval — resolves most lookups in O(1). Returns exactly
  /// what IndexOf(x) returns for any hint; out-of-range hints are
  /// ignored. Defined inline: the hit path is a couple of compares and
  /// the history-compile loop of PairModel::Learn calls it per sample.
  /// The one-step move in x's direction is computed branchlessly (the
  /// self/neighbor split is data-dependent, ~40% of lookups on paper
  /// traces, so a conditional jump there mispredicts constantly).
  std::size_t IndexOf(double x, std::size_t hint) const {
    const std::size_t n = intervals_.size();
    if (hint < n) {
      const Interval& iv = intervals_[hint];
      const std::size_t idx = hint + static_cast<std::size_t>(x >= iv.hi) -
                              static_cast<std::size_t>(x < iv.lo);
      // hint == 0 stepping down wraps; the bounds check catches it.
      if (idx < n && intervals_[idx].Contains(x)) return idx;
    }
    // Distant jump. Partitioned dimensions are short (tens of intervals),
    // so a branchless edge-count — index = #{upper edges <= x}, exact
    // because the intervals are contiguous — beats the binary search and
    // its mispredicted probes.
    if (n <= 32) {
      if (x < intervals_[0].lo || x >= intervals_[n - 1].hi) return npos;
      std::size_t k = 0;
      for (std::size_t j = 0; j < n; ++j) {
        k += static_cast<std::size_t>(intervals_[j].hi <= x);
      }
      return k;
    }
    return IndexOf(x);
  }

  /// Mean interval width (the paper's r_avg, computed at initialization).
  double AverageWidth() const;

  /// Extends the list with `count` new intervals of width `width` below
  /// Lo() (new indices 0..count-1; existing indices shift up by count).
  void ExtendBelow(std::size_t count, double width);

  /// Extends the list with `count` new intervals of width `width` above
  /// Hi() (existing indices unchanged).
  void ExtendAbove(std::size_t count, double width);

  /// Renders "[lo1,hi1)[lo2,hi2)..." for debugging/reports.
  std::string ToString() const;

  /// Audits the structural invariants the grid machinery relies on:
  /// finite edges, strictly positive widths, and contiguous coverage
  /// (intervals_[i].hi == intervals_[i+1].lo, bitwise — IndexOf's
  /// edge-count fallback is only exact for gap-free lists). An empty
  /// list is valid (default-constructed). Fails through the
  /// common/check.h handler; called automatically at audit-build
  /// boundaries and directly by tests in any build.
  void CheckInvariants() const;

 private:
  friend struct InvariantTestPeer;

  std::vector<Interval> intervals_;
};

}  // namespace pmcorr
