// Half-open numeric intervals — the building block of the grid structure.
//
// Per the paper (Section 3), each dimension A^a is discretized into
// intervals v^a = [l^a, u^a); a grid cell is the intersection of one
// interval from each dimension.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pmcorr {

/// Half-open interval [lo, hi).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr double Width() const { return hi - lo; }
  constexpr bool Contains(double x) const { return lo <= x && x < hi; }
  constexpr double Center() const { return (lo + hi) / 2.0; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// An ordered, contiguous list of intervals covering [front().lo,
/// back().hi). Provides the per-dimension operations the grid needs:
/// point location and boundary extension.
class IntervalList {
 public:
  IntervalList() = default;

  /// Takes ownership of `intervals`, which must be non-empty, sorted and
  /// contiguous (interval[i].hi == interval[i+1].lo); validated in debug.
  explicit IntervalList(std::vector<Interval> intervals);

  /// Builds `count` equal-width intervals over [lo, hi).
  static IntervalList Uniform(double lo, double hi, std::size_t count);

  std::size_t Size() const { return intervals_.size(); }
  bool Empty() const { return intervals_.empty(); }
  const Interval& At(std::size_t i) const { return intervals_.at(i); }
  const std::vector<Interval>& Intervals() const { return intervals_; }

  double Lo() const;
  double Hi() const;

  /// Index of the interval containing x, or npos when outside [Lo, Hi).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t IndexOf(double x) const;

  /// Mean interval width (the paper's r_avg, computed at initialization).
  double AverageWidth() const;

  /// Extends the list with `count` new intervals of width `width` below
  /// Lo() (new indices 0..count-1; existing indices shift up by count).
  void ExtendBelow(std::size_t count, double width);

  /// Extends the list with `count` new intervals of width `width` above
  /// Hi() (existing indices unchanged).
  void ExtendAbove(std::size_t count, double width);

  /// Renders "[lo1,hi1)[lo2,hi2)..." for debugging/reports.
  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace pmcorr
