#include "grid/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace pmcorr {

double CellDistance(int dx, int dy, CellMetric metric) {
  dx = std::abs(dx);
  dy = std::abs(dy);
  switch (metric) {
    case CellMetric::kChebyshev:
      return static_cast<double>(std::max(dx, dy));
    case CellMetric::kManhattan:
      return static_cast<double>(dx + dy);
    case CellMetric::kEuclidean:
      return std::sqrt(static_cast<double>(dx) * dx +
                       static_cast<double>(dy) * dy);
  }
  return 0.0;
}

ExponentialKernel::ExponentialKernel(double w, CellMetric metric)
    : w_(w), metric_(metric) {
  PMCORR_DASSERT(w_ > 1.0);
}

double ExponentialKernel::Weight(int dx, int dy) const {
  return std::exp(LogWeight(dx, dy));
}

double ExponentialKernel::LogWeight(int dx, int dy) const {
  return -CellDistance(dx, dy, metric_) * std::log(w_);
}

std::string ExponentialKernel::Describe() const {
  const char* metric = metric_ == CellMetric::kChebyshev   ? "chebyshev"
                       : metric_ == CellMetric::kManhattan ? "manhattan"
                                                           : "euclidean";
  return "exponential(w=" + FormatDouble(w_, 3) + ", metric=" + metric + ")";
}

namespace {
constexpr double Triangular(int d) {
  return static_cast<double>(d) * (static_cast<double>(d) + 1.0) / 2.0;
}
}  // namespace

double TriangularKernel::Weight(int dx, int dy) const {
  dx = std::abs(dx);
  dy = std::abs(dy);
  return 1.0 / (1.0 + (Triangular(dx) + Triangular(dy)) / 2.0);
}

double TriangularKernel::LogWeight(int dx, int dy) const {
  return std::log(Weight(dx, dy));
}

std::string TriangularKernel::Describe() const {
  return "triangular(figure-5 exact)";
}

KernelStencil::KernelStencil(std::size_t rows, std::size_t cols,
                             const DecayKernel& kernel)
    : rows_(rows), cols_(cols), width_(2 * cols - 1) {
  PMCORR_DASSERT(rows > 0 && cols > 0);
  table_.resize((2 * rows - 1) * width_);
  for (std::size_t u = 0; u < 2 * rows - 1; ++u) {
    const int drow = static_cast<int>(u) - (static_cast<int>(rows) - 1);
    for (std::size_t v = 0; v < width_; ++v) {
      const int dcol = static_cast<int>(v) - (static_cast<int>(cols) - 1);
      table_[u * width_ + v] = kernel.LogWeight(drow, dcol);
    }
  }
}

void KernelStencil::CheckInvariants(const DecayKernel* kernel) const {
  if (Empty()) {
    PMCORR_ASSERT(rows_ == 0 && cols_ == 0 && width_ == 0,
                  "empty stencil with non-zero shape " << rows_ << "x"
                                                       << cols_);
    return;
  }
  PMCORR_ASSERT(rows_ > 0 && cols_ > 0);
  PMCORR_ASSERT(width_ == 2 * cols_ - 1,
                "width=" << width_ << " cols=" << cols_);
  const std::size_t height = 2 * rows_ - 1;
  PMCORR_ASSERT(table_.size() == height * width_,
                "table size " << table_.size() << " != " << height << "x"
                              << width_);
  for (std::size_t u = 0; u < height; ++u) {
    for (std::size_t v = 0; v < width_; ++v) {
      const double lw = table_[u * width_ + v];
      PMCORR_ASSERT(std::isfinite(lw) && lw <= 0.0,
                    "log weight (" << u << "," << v << ") = " << lw);
      // Both kernels take absolute deltas: central symmetry, bitwise.
      const double mirror = table_[(height - 1 - u) * width_ +
                                   (width_ - 1 - v)];
      PMCORR_ASSERT(lw == mirror, "stencil not centrally symmetric at ("
                                      << u << "," << v << ")");
    }
  }
  // Weight(0, 0) == 1 by the DecayKernel contract.
  const std::size_t cu = rows_ - 1;
  const std::size_t cv = cols_ - 1;
  PMCORR_ASSERT(table_[cu * width_ + cv] == 0.0,
                "center log weight " << table_[cu * width_ + cv]);
  // Weights never grow while moving away from the center along an axis
  // (non-strict: Chebyshev-style metrics plateau).
  for (std::size_t u = 0; u < height; ++u) {
    for (std::size_t v = cv + 1; v < width_; ++v) {
      PMCORR_ASSERT(table_[u * width_ + v] <= table_[u * width_ + v - 1],
                    "row " << u << " not decaying away from center col");
    }
  }
  for (std::size_t v = 0; v < width_; ++v) {
    for (std::size_t u = cu + 1; u < height; ++u) {
      PMCORR_ASSERT(table_[u * width_ + v] <= table_[(u - 1) * width_ + v],
                    "col " << v << " not decaying away from center row");
    }
  }
  if (kernel != nullptr) {
    for (std::size_t u = 0; u < height; ++u) {
      const int drow = static_cast<int>(u) - (static_cast<int>(rows_) - 1);
      for (std::size_t v = 0; v < width_; ++v) {
        const int dcol = static_cast<int>(v) - (static_cast<int>(cols_) - 1);
        PMCORR_ASSERT(table_[u * width_ + v] == kernel->LogWeight(drow, dcol),
                      "stencil disagrees with kernel at delta ("
                          << drow << "," << dcol << ")");
      }
    }
  }
}

std::unique_ptr<DecayKernel> MakeKernel(const KernelConfig& config) {
  switch (config.type) {
    case KernelConfig::Type::kTriangular:
      return std::make_unique<TriangularKernel>();
    case KernelConfig::Type::kExponential:
      return std::make_unique<ExponentialKernel>(config.w, config.metric);
  }
  return std::make_unique<TriangularKernel>();
}

}  // namespace pmcorr
