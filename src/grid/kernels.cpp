#include "grid/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace pmcorr {

double CellDistance(int dx, int dy, CellMetric metric) {
  dx = std::abs(dx);
  dy = std::abs(dy);
  switch (metric) {
    case CellMetric::kChebyshev:
      return static_cast<double>(std::max(dx, dy));
    case CellMetric::kManhattan:
      return static_cast<double>(dx + dy);
    case CellMetric::kEuclidean:
      return std::sqrt(static_cast<double>(dx) * dx +
                       static_cast<double>(dy) * dy);
  }
  return 0.0;
}

ExponentialKernel::ExponentialKernel(double w, CellMetric metric)
    : w_(w), metric_(metric) {
  assert(w_ > 1.0);
}

double ExponentialKernel::Weight(int dx, int dy) const {
  return std::exp(LogWeight(dx, dy));
}

double ExponentialKernel::LogWeight(int dx, int dy) const {
  return -CellDistance(dx, dy, metric_) * std::log(w_);
}

std::string ExponentialKernel::Describe() const {
  const char* metric = metric_ == CellMetric::kChebyshev   ? "chebyshev"
                       : metric_ == CellMetric::kManhattan ? "manhattan"
                                                           : "euclidean";
  return "exponential(w=" + FormatDouble(w_, 3) + ", metric=" + metric + ")";
}

namespace {
constexpr double Triangular(int d) {
  return static_cast<double>(d) * (static_cast<double>(d) + 1.0) / 2.0;
}
}  // namespace

double TriangularKernel::Weight(int dx, int dy) const {
  dx = std::abs(dx);
  dy = std::abs(dy);
  return 1.0 / (1.0 + (Triangular(dx) + Triangular(dy)) / 2.0);
}

double TriangularKernel::LogWeight(int dx, int dy) const {
  return std::log(Weight(dx, dy));
}

std::string TriangularKernel::Describe() const {
  return "triangular(figure-5 exact)";
}

KernelStencil::KernelStencil(std::size_t rows, std::size_t cols,
                             const DecayKernel& kernel)
    : rows_(rows), cols_(cols), width_(2 * cols - 1) {
  assert(rows > 0 && cols > 0);
  table_.resize((2 * rows - 1) * width_);
  for (std::size_t u = 0; u < 2 * rows - 1; ++u) {
    const int drow = static_cast<int>(u) - (static_cast<int>(rows) - 1);
    for (std::size_t v = 0; v < width_; ++v) {
      const int dcol = static_cast<int>(v) - (static_cast<int>(cols) - 1);
      table_[u * width_ + v] = kernel.LogWeight(drow, dcol);
    }
  }
}

std::unique_ptr<DecayKernel> MakeKernel(const KernelConfig& config) {
  switch (config.type) {
    case KernelConfig::Type::kTriangular:
      return std::make_unique<TriangularKernel>();
    case KernelConfig::Type::kExponential:
      return std::make_unique<ExponentialKernel>(config.w, config.metric);
  }
  return std::make_unique<TriangularKernel>();
}

}  // namespace pmcorr
