// Grid2D — the grid structure G = {c_1, ..., c_s} of the paper: the
// cross product of one IntervalList per dimension, with online boundary
// extension (Section 4.1 "Update").
//
// Cells are indexed row-major: cell(i1, i2) = i1 * s2 + i2, matching the
// paper's Figure 3 layout (c1..c3 on the first row of a 3x3 grid).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "grid/interval.h"

namespace pmcorr {

/// A 2-D point (one sample of a measurement pair).
struct Point2 {
  double x = 0.0;  // dimension 1 (measurement a)
  double y = 0.0;  // dimension 2 (measurement b)
};

/// Grid coordinates of a cell.
struct CellCoord {
  int i1 = 0;  // interval index along dimension 1
  int i2 = 0;  // interval index along dimension 2

  friend constexpr bool operator==(CellCoord, CellCoord) = default;
};

/// Result of a boundary extension: how many intervals were prepended /
/// appended on each dimension. Consumers (the transition matrix) use it
/// to remap old cell indices into the grown grid.
struct GridExtension {
  std::size_t dim1_below = 0;
  std::size_t dim1_above = 0;
  std::size_t dim2_below = 0;
  std::size_t dim2_above = 0;

  bool Empty() const {
    return dim1_below + dim1_above + dim2_below + dim2_above == 0;
  }
};

/// The rectangular grid over S = A^1 x A^2.
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(IntervalList dim1, IntervalList dim2);

  /// Deserialization constructor: restores a grid whose r_avg was fixed
  /// at an earlier initialization (extensions do not change r_avg, so a
  /// reloaded grid must not recompute it from the current intervals).
  Grid2D(IntervalList dim1, IntervalList dim2, double r_avg1, double r_avg2);

  std::size_t Rows() const { return dim1_.Size(); }     // s1
  std::size_t Cols() const { return dim2_.Size(); }     // s2
  std::size_t CellCount() const { return Rows() * Cols(); }  // s

  const IntervalList& Dim1() const { return dim1_; }
  const IntervalList& Dim2() const { return dim2_; }

  /// Index of the cell containing `p`, or nullopt when p is outside the
  /// grid boundary.
  std::optional<std::size_t> CellOf(Point2 p) const;

  /// CellOf with a locality hint — `hint` is a cell index whose
  /// per-dimension intervals are tried first (see
  /// IntervalList::IndexOf(x, hint)). Returns exactly what CellOf(p)
  /// returns; callers pass the previous observation's cell to exploit
  /// the paper's self-/neighbor-transition locality.
  std::optional<std::size_t> CellOf(Point2 p, std::size_t hint) const;

  /// Grid coordinates of cell `index`.
  CellCoord CoordOf(std::size_t index) const;

  /// Inverse of CoordOf.
  std::size_t IndexOf(CellCoord coord) const;

  /// The rectangle [lo,hi) x [lo,hi) of cell `index` as two intervals.
  Interval CellIntervalDim1(std::size_t index) const;
  Interval CellIntervalDim2(std::size_t index) const;

  /// r_avg per dimension — fixed at construction (the paper computes the
  /// average interval size offline during initialization and uses it for
  /// all later extension decisions).
  double InitialAvgWidthDim1() const { return r_avg1_; }
  double InitialAvgWidthDim2() const { return r_avg2_; }

  /// True when `p` lies outside the grid but within lambda * r_avg of the
  /// boundary on every violated dimension — the paper's signal of gradual
  /// distribution evolution (as opposed to an outlier).
  bool WithinExtensionMargin(Point2 p, double lambda1, double lambda2) const;

  /// Grows the boundary with intervals of width r_avg until `p` is
  /// contained, provided WithinExtensionMargin holds. Returns the applied
  /// extension (Empty() when already contained), or nullopt when p is too
  /// far outside (an outlier; the grid is left unchanged).
  std::optional<GridExtension> ExtendToInclude(Point2 p, double lambda1,
                                               double lambda2);

  /// Remaps a cell index from before an extension to the grown grid.
  /// `old_cols` is the column count before the extension.
  static std::size_t RemapIndex(std::size_t old_index, std::size_t old_cols,
                                const GridExtension& ext);

  /// "s1 x s2 grid over [l1,u1) x [l2,u2)".
  std::string Describe() const;

  /// Audits the grid invariants: both dimensions pass
  /// IntervalList::CheckInvariants, and on a non-empty grid the
  /// initialization-time r_avg per dimension is finite and positive
  /// (extensions grow by r_avg-width intervals; a degenerate r_avg
  /// would wedge ExtendToInclude). A default-constructed grid is valid.
  void CheckInvariants() const;

 private:
  friend struct InvariantTestPeer;

  IntervalList dim1_;
  IntervalList dim2_;
  double r_avg1_ = 0.0;
  double r_avg2_ = 0.0;
};

}  // namespace pmcorr
