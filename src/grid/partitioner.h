// MAFIA-inspired adaptive discretization of one dimension (Section 4.1).
//
// The paper's recipe: split [l, u) into many small equal-sized *units*
// (unit length z much smaller than the final interval size), histogram the
// data, then merge adjacent units whose counts are similar with respect to
// a threshold, or which are both below a density threshold. Dense regions
// thus get more, narrower intervals; near-uniform dimensions fall back to
// plain equal-width partitioning.
#pragma once

#include <cstddef>
#include <span>

#include "grid/interval.h"

namespace pmcorr {

/// Tuning knobs of the adaptive partitioner.
struct PartitionerConfig {
  /// Number of fine histogram units per dimension (the unit length z is
  /// (u-l)/units). Must be >= 2.
  std::size_t units = 60;

  /// Adjacent units merge when |count_i - count_j| <=
  /// merge_similarity * max(count_i, count_j); i.e. relative difference
  /// below the threshold means "similar density".
  double merge_similarity = 0.35;

  /// Units whose count is below density_fraction * (n / units) — i.e.
  /// this fraction of the uniform expectation — are "sparse"; two
  /// adjacent sparse units always merge.
  double density_fraction = 0.4;

  /// If the relative standard deviation of unit counts is below this, the
  /// data are treated as equal-distributed and the dimension is split
  /// into `uniform_intervals` equal-width intervals instead.
  double uniformity_threshold = 0.15;
  std::size_t uniform_intervals = 10;

  /// Bounds on the resulting interval count. When merging yields more
  /// than max_intervals, the most-similar adjacent intervals keep merging
  /// until the cap holds. min_intervals splits the widest intervals.
  std::size_t min_intervals = 2;
  std::size_t max_intervals = 24;

  /// The upper bound u is padded by this fraction of the data range so
  /// the maximum observed value lies strictly inside [l, u).
  double pad_fraction = 1e-6;
};

/// One fused pass over a history: finiteness of every value plus the
/// min/max extrema. Learn's compile phase needs both — the gap check
/// before filtering, the extrema to place the grid bounds — and fusing
/// them halves the scans over every history a model is built from.
/// `min`/`max` match std::minmax_element bitwise on finite data (first
/// minimum, last maximum — the ±0 distinction matters because the grid
/// bounds are serialized); they are meaningless when all_finite is
/// false (a NaN poisons the fold, exactly as it would poison
/// minmax_element).
struct ValueScan {
  bool all_finite = false;
  double min = 0.0;
  double max = 0.0;
};

/// Scans `values` (non-empty) in one pass, two SSE2 lanes at a time.
ValueScan ScanValues(std::span<const double> values);

/// Discretizes one dimension to fit `values` (non-empty). Returns a
/// contiguous IntervalList covering all the data.
IntervalList PartitionDimension(std::span<const double> values,
                                const PartitionerConfig& config);

/// Precomputed-bounds overload: `min_value`/`max_value` must be the
/// extrema of `values` as ScanValues reports them (callers that already
/// scanned — Learn's fused finite+minmax pass — skip the rescan; the
/// result is bitwise identical to the scanning overload).
IntervalList PartitionDimension(std::span<const double> values,
                                const PartitionerConfig& config,
                                double min_value, double max_value);

}  // namespace pmcorr
