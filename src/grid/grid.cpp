#include "grid/grid.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pmcorr {

Grid2D::Grid2D(IntervalList dim1, IntervalList dim2)
    : dim1_(std::move(dim1)),
      dim2_(std::move(dim2)),
      r_avg1_(dim1_.AverageWidth()),
      r_avg2_(dim2_.AverageWidth()) {
  PMCORR_DASSERT(!dim1_.Empty() && !dim2_.Empty());
}

Grid2D::Grid2D(IntervalList dim1, IntervalList dim2, double r_avg1,
               double r_avg2)
    : dim1_(std::move(dim1)),
      dim2_(std::move(dim2)),
      r_avg1_(r_avg1),
      r_avg2_(r_avg2) {
  PMCORR_DASSERT(!dim1_.Empty() && !dim2_.Empty());
  PMCORR_DASSERT(r_avg1_ > 0.0 && r_avg2_ > 0.0);
}

std::optional<std::size_t> Grid2D::CellOf(Point2 p) const {
  const std::size_t i1 = dim1_.IndexOf(p.x);
  if (i1 == IntervalList::npos) return std::nullopt;
  const std::size_t i2 = dim2_.IndexOf(p.y);
  if (i2 == IntervalList::npos) return std::nullopt;
  return i1 * Cols() + i2;
}

std::optional<std::size_t> Grid2D::CellOf(Point2 p, std::size_t hint) const {
  if (hint >= CellCount()) return CellOf(p);
  const std::size_t i1 = dim1_.IndexOf(p.x, hint / Cols());
  if (i1 == IntervalList::npos) return std::nullopt;
  const std::size_t i2 = dim2_.IndexOf(p.y, hint % Cols());
  if (i2 == IntervalList::npos) return std::nullopt;
  return i1 * Cols() + i2;
}

CellCoord Grid2D::CoordOf(std::size_t index) const {
  PMCORR_DASSERT(index < CellCount());
  return CellCoord{static_cast<int>(index / Cols()),
                   static_cast<int>(index % Cols())};
}

std::size_t Grid2D::IndexOf(CellCoord coord) const {
  PMCORR_DASSERT(coord.i1 >= 0 && static_cast<std::size_t>(coord.i1) < Rows());
  PMCORR_DASSERT(coord.i2 >= 0 && static_cast<std::size_t>(coord.i2) < Cols());
  return static_cast<std::size_t>(coord.i1) * Cols() +
         static_cast<std::size_t>(coord.i2);
}

Interval Grid2D::CellIntervalDim1(std::size_t index) const {
  return dim1_.At(static_cast<std::size_t>(CoordOf(index).i1));
}

Interval Grid2D::CellIntervalDim2(std::size_t index) const {
  return dim2_.At(static_cast<std::size_t>(CoordOf(index).i2));
}

bool Grid2D::WithinExtensionMargin(Point2 p, double lambda1,
                                   double lambda2) const {
  const double margin1 = lambda1 * r_avg1_;
  const double margin2 = lambda2 * r_avg2_;
  if (p.x < dim1_.Lo() - margin1 || p.x >= dim1_.Hi() + margin1) return false;
  if (p.y < dim2_.Lo() - margin2 || p.y >= dim2_.Hi() + margin2) return false;
  return true;
}

std::optional<GridExtension> Grid2D::ExtendToInclude(Point2 p, double lambda1,
                                                     double lambda2) {
  if (!WithinExtensionMargin(p, lambda1, lambda2)) return std::nullopt;

  GridExtension ext;
  // Intervals needed below the lower bound: gap > 0, half-open intervals
  // include their lower edge, so ceil covers the point exactly.
  auto needed_below = [](double gap, double width) {
    return static_cast<std::size_t>(std::ceil(gap / width));
  };
  // Above the upper bound the gap may be 0 (p on the old edge) and the
  // covering interval must extend strictly past p: floor + 1.
  auto needed_above = [](double gap, double width) {
    return static_cast<std::size_t>(std::floor(gap / width)) + 1;
  };

  if (p.x < dim1_.Lo()) {
    ext.dim1_below = needed_below(dim1_.Lo() - p.x, r_avg1_);
    dim1_.ExtendBelow(ext.dim1_below, r_avg1_);
  } else if (p.x >= dim1_.Hi()) {
    ext.dim1_above = needed_above(p.x - dim1_.Hi(), r_avg1_);
    dim1_.ExtendAbove(ext.dim1_above, r_avg1_);
  }
  if (p.y < dim2_.Lo()) {
    ext.dim2_below = needed_below(dim2_.Lo() - p.y, r_avg2_);
    dim2_.ExtendBelow(ext.dim2_below, r_avg2_);
  } else if (p.y >= dim2_.Hi()) {
    ext.dim2_above = needed_above(p.y - dim2_.Hi(), r_avg2_);
    dim2_.ExtendAbove(ext.dim2_above, r_avg2_);
  }
  PMCORR_DASSERT(CellOf(p).has_value());
  PMCORR_AUDIT_ONLY(CheckInvariants();)
  return ext;
}

void Grid2D::CheckInvariants() const {
  dim1_.CheckInvariants();
  dim2_.CheckInvariants();
  PMCORR_ASSERT(dim1_.Empty() == dim2_.Empty(),
                "one dimension empty, the other not");
  if (!dim1_.Empty()) {
    PMCORR_ASSERT(std::isfinite(r_avg1_) && r_avg1_ > 0.0,
                  "r_avg1=" << r_avg1_);
    PMCORR_ASSERT(std::isfinite(r_avg2_) && r_avg2_ > 0.0,
                  "r_avg2=" << r_avg2_);
  }
}

std::size_t Grid2D::RemapIndex(std::size_t old_index, std::size_t old_cols,
                               const GridExtension& ext) {
  const std::size_t old_row = old_index / old_cols;
  const std::size_t old_col = old_index % old_cols;
  const std::size_t new_cols = old_cols + ext.dim2_below + ext.dim2_above;
  return (old_row + ext.dim1_below) * new_cols + (old_col + ext.dim2_below);
}

std::string Grid2D::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zux%zu grid over [%g,%g) x [%g,%g)",
                Rows(), Cols(), dim1_.Lo(), dim1_.Hi(), dim2_.Lo(),
                dim2_.Hi());
  return buf;
}

}  // namespace pmcorr
