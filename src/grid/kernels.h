// Spatial-closeness decay kernels (Section 4.2).
//
// The prior places most mass on self-transitions and decays with cell
// distance; the likelihood of Eq. (2) reuses the same decay centered on
// the observed destination cell. Two kernels are provided:
//
//  * ExponentialKernel — the text's formulation, weight = w^{-d} with a
//    configurable cell-distance metric.
//  * TriangularKernel — weight = 1 / (1 + (T(dx)+T(dy))/2) with
//    triangular numbers T(d) = d(d+1)/2. This reproduces the example
//    matrix of Figure 5 *exactly* (all 81 printed percentages), so it is
//    the default.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace pmcorr {

/// Distance between two grid cells given their coordinate deltas.
enum class CellMetric {
  kChebyshev,  // max(|dx|, |dy|)
  kManhattan,  // |dx| + |dy|
  kEuclidean,  // sqrt(dx^2 + dy^2)
};

/// Evaluates the chosen metric on non-negative deltas.
double CellDistance(int dx, int dy, CellMetric metric);

/// Interface for decay kernels over grid-coordinate deltas.
/// Weight(0, 0) is 1 by convention; weights strictly decrease as either
/// delta grows.
class DecayKernel {
 public:
  virtual ~DecayKernel() = default;

  /// Unnormalized transition weight for a coordinate delta (dx, dy);
  /// callers pass absolute deltas.
  virtual double Weight(int dx, int dy) const = 0;

  /// Natural log of Weight (kept separate so log-space accumulation does
  /// not lose precision for tiny weights).
  virtual double LogWeight(int dx, int dy) const = 0;

  /// Human-readable description for reports.
  virtual std::string Describe() const = 0;
};

/// weight = w^{-d(dx,dy)}; the "rate of probability decrease" w > 1.
class ExponentialKernel final : public DecayKernel {
 public:
  explicit ExponentialKernel(double w = 2.0,
                             CellMetric metric = CellMetric::kEuclidean);

  double Weight(int dx, int dy) const override;
  double LogWeight(int dx, int dy) const override;
  std::string Describe() const override;

  double Rate() const { return w_; }
  CellMetric Metric() const { return metric_; }

 private:
  double w_;
  CellMetric metric_;
};

/// weight = 1 / (1 + (T(dx) + T(dy)) / 2), T(d) = d(d+1)/2 — matches the
/// printed prior of the paper's Figure 5 exactly.
class TriangularKernel final : public DecayKernel {
 public:
  double Weight(int dx, int dy) const override;
  double LogWeight(int dx, int dy) const override;
  std::string Describe() const override;
};

/// Precomputed log-weight stencil for a fixed r x c grid shape.
///
/// Every transition-matrix operation evaluates LogWeight(|dx|, |dy|) for
/// coordinate deltas bounded by the grid shape, so for a given shape and
/// kernel there are only (2r-1) x (2c-1) distinct values. Tabulating them
/// once turns the per-entry virtual kernel dispatch (plus a log/sqrt per
/// call) into a contiguous table read, and lets row-major sweeps over
/// destination cells consume the table as contiguous slices.
///
/// Layout: row-major (2r-1) x (2c-1); entry (drow, dcol) with signed
/// deltas drow in [-(r-1), r-1] and dcol in [-(c-1), c-1] lives at
/// [(drow + r - 1) * (2c-1) + (dcol + c - 1)] and holds exactly the
/// double LogWeight(drow, dcol) returns (both kernels take absolute
/// values internally, so signed tabulation is bitwise identical to
/// tabulating absolute deltas).
class KernelStencil {
 public:
  KernelStencil() = default;

  /// Tabulates `kernel` for an r x c grid. O(r*c) LogWeight calls —
  /// rebuilt only when the grid shape changes (extension).
  KernelStencil(std::size_t rows, std::size_t cols,
                const DecayKernel& kernel);

  bool Empty() const { return table_.empty(); }
  std::size_t GridRows() const { return rows_; }
  std::size_t GridCols() const { return cols_; }

  /// True when the stencil was built for an r x c grid.
  bool Matches(std::size_t rows, std::size_t cols) const {
    return rows_ == rows && cols_ == cols;
  }

  /// LogWeight for the signed coordinate delta (drow, dcol).
  double LogWeight(int drow, int dcol) const {
    PMCORR_DASSERT(!Empty());
    PMCORR_DASSERT(drow > -static_cast<int>(rows_) && drow < static_cast<int>(rows_));
    PMCORR_DASSERT(dcol > -static_cast<int>(cols_) && dcol < static_cast<int>(cols_));
    const auto u = static_cast<std::size_t>(drow + static_cast<int>(rows_) - 1);
    const auto v = static_cast<std::size_t>(dcol + static_cast<int>(cols_) - 1);
    return table_[u * width_ + v];
  }

  /// Contiguous slice over all destination columns of one grid row:
  /// RowSlice(drow, center_col)[j] == LogWeight(drow, j - center_col) for
  /// j in [0, cols). `drow` is the signed row delta from the stencil
  /// center, `center_col` the center cell's column. This is what the
  /// transition matrix's fused row sweeps iterate over.
  const double* RowSlice(int drow, std::size_t center_col) const {
    PMCORR_DASSERT(!Empty());
    PMCORR_DASSERT(drow > -static_cast<int>(rows_) && drow < static_cast<int>(rows_));
    PMCORR_DASSERT(center_col < cols_);
    const auto u = static_cast<std::size_t>(drow + static_cast<int>(rows_) - 1);
    return table_.data() + u * width_ + (cols_ - 1 - center_col);
  }

  /// Audits the stencil against the DecayKernel contract: table shaped
  /// (2r-1) x (2c-1); every log weight finite and <= 0 with the center
  /// exactly 0 (Weight(0,0) == 1); centrally symmetric bitwise (both
  /// kernels take absolute deltas); non-increasing while moving away
  /// from the center along either axis. When `kernel` is non-null,
  /// additionally verifies every entry equals kernel.LogWeight bitwise
  /// (the stencil-shape-agreement audit: a stale table after a grid
  /// extension silently corrupts every later row sweep). An empty
  /// stencil is valid.
  void CheckInvariants(const DecayKernel* kernel = nullptr) const;

 private:
  friend struct InvariantTestPeer;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t width_ = 0;       // 2 * cols_ - 1
  std::vector<double> table_;   // (2*rows_-1) x width_, row-major
};

/// Kernel selection carried inside ModelConfig.
struct KernelConfig {
  enum class Type { kTriangular, kExponential };
  Type type = Type::kTriangular;
  /// Exponential decay rate (ignored by the triangular kernel).
  double w = 2.0;
  /// Distance metric for the exponential kernel.
  CellMetric metric = CellMetric::kEuclidean;
};

/// Instantiates the kernel described by `config`.
std::unique_ptr<DecayKernel> MakeKernel(const KernelConfig& config);

}  // namespace pmcorr
