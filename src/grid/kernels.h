// Spatial-closeness decay kernels (Section 4.2).
//
// The prior places most mass on self-transitions and decays with cell
// distance; the likelihood of Eq. (2) reuses the same decay centered on
// the observed destination cell. Two kernels are provided:
//
//  * ExponentialKernel — the text's formulation, weight = w^{-d} with a
//    configurable cell-distance metric.
//  * TriangularKernel — weight = 1 / (1 + (T(dx)+T(dy))/2) with
//    triangular numbers T(d) = d(d+1)/2. This reproduces the example
//    matrix of Figure 5 *exactly* (all 81 printed percentages), so it is
//    the default.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

namespace pmcorr {

/// Distance between two grid cells given their coordinate deltas.
enum class CellMetric {
  kChebyshev,  // max(|dx|, |dy|)
  kManhattan,  // |dx| + |dy|
  kEuclidean,  // sqrt(dx^2 + dy^2)
};

/// Evaluates the chosen metric on non-negative deltas.
double CellDistance(int dx, int dy, CellMetric metric);

/// Interface for decay kernels over grid-coordinate deltas.
/// Weight(0, 0) is 1 by convention; weights strictly decrease as either
/// delta grows.
class DecayKernel {
 public:
  virtual ~DecayKernel() = default;

  /// Unnormalized transition weight for a coordinate delta (dx, dy);
  /// callers pass absolute deltas.
  virtual double Weight(int dx, int dy) const = 0;

  /// Natural log of Weight (kept separate so log-space accumulation does
  /// not lose precision for tiny weights).
  virtual double LogWeight(int dx, int dy) const = 0;

  /// Human-readable description for reports.
  virtual std::string Describe() const = 0;
};

/// weight = w^{-d(dx,dy)}; the "rate of probability decrease" w > 1.
class ExponentialKernel final : public DecayKernel {
 public:
  explicit ExponentialKernel(double w = 2.0,
                             CellMetric metric = CellMetric::kEuclidean);

  double Weight(int dx, int dy) const override;
  double LogWeight(int dx, int dy) const override;
  std::string Describe() const override;

  double Rate() const { return w_; }
  CellMetric Metric() const { return metric_; }

 private:
  double w_;
  CellMetric metric_;
};

/// weight = 1 / (1 + (T(dx) + T(dy)) / 2), T(d) = d(d+1)/2 — matches the
/// printed prior of the paper's Figure 5 exactly.
class TriangularKernel final : public DecayKernel {
 public:
  double Weight(int dx, int dy) const override;
  double LogWeight(int dx, int dy) const override;
  std::string Describe() const override;
};

/// Kernel selection carried inside ModelConfig.
struct KernelConfig {
  enum class Type { kTriangular, kExponential };
  Type type = Type::kTriangular;
  /// Exponential decay rate (ignored by the triangular kernel).
  double w = 2.0;
  /// Distance metric for the exponential kernel.
  CellMetric metric = CellMetric::kEuclidean;
};

/// Instantiates the kernel described by `config`.
std::unique_ptr<DecayKernel> MakeKernel(const KernelConfig& config);

}  // namespace pmcorr
