#include "grid/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace pmcorr {
namespace {

// An interval under construction: a run of fine units plus its data count.
struct Segment {
  std::size_t first_unit;
  std::size_t last_unit;  // inclusive
  double count = 0.0;

  std::size_t Units() const { return last_unit - first_unit + 1; }
  double Density() const { return count / static_cast<double>(Units()); }
};

bool SimilarCounts(double a, double b, double similarity) {
  const double hi = std::max({a, b, 1.0});
  return std::fabs(a - b) <= similarity * hi;
}

// Greedy left-to-right merge of fine units into segments.
std::vector<Segment> MergeUnits(const std::vector<std::size_t>& counts,
                                double sparse_threshold, double similarity) {
  std::vector<Segment> segments;
  for (std::size_t u = 0; u < counts.size(); ++u) {
    const double c = static_cast<double>(counts[u]);
    if (!segments.empty()) {
      Segment& prev = segments.back();
      const double prev_density = prev.Density();
      const bool both_sparse =
          prev_density < sparse_threshold && c < sparse_threshold;
      if (both_sparse || SimilarCounts(prev_density, c, similarity)) {
        prev.last_unit = u;
        prev.count += c;
        continue;
      }
    }
    segments.push_back({u, u, c});
  }
  return segments;
}

// Merges the adjacent segment pair with the most similar densities until
// the count cap holds.
void EnforceMaxSegments(std::vector<Segment>& segments, std::size_t cap) {
  while (segments.size() > cap) {
    std::size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      const double gap =
          std::fabs(segments[i].Density() - segments[i + 1].Density());
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    segments[best].last_unit = segments[best + 1].last_unit;
    segments[best].count += segments[best + 1].count;
    segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }
}

}  // namespace

// minmax_element replacement for the bulk scan, fused with the finite
// check Learn needs before it: value min/max folds branchlessly
// (min/max instructions) where the iterator-tracking
// std::minmax_element cannot, the finiteness test is |x| <= DBL_MAX
// (clears the sign bit, compares "not <=": NaN fails the ordered
// compare and ±inf exceeds the bound, exactly std::isfinite), and both
// ride the same two-lane SSE2 sweep. minmax_element keeps the FIRST
// minimum and the LAST maximum; among finite doubles only zero has two
// bit patterns, so a rare fixup rescan on a zero extremum reproduces
// its exact bits (the grid bounds are serialized — the sign of zero
// must not depend on which scan found it).
ValueScan ScanValues(std::span<const double> values) {
  PMCORR_DASSERT(!values.empty());
  ValueScan scan;
  double mn = values[0];
  double mx = values[0];
  bool ok = std::isfinite(values[0]) != 0;
#if defined(__SSE2__)
  // The lane-parallel fold visits elements in a different order than a
  // scalar scan, which for finite inputs can only change the *bit
  // pattern* of a zero extremum (min/max values are order-independent);
  // the fixup below restores minmax_element's choice. The compiler will
  // not vectorize an FP min/max reduction on its own — IEEE NaN and
  // signed-zero rules forbid it — so this is done by hand.
  if (values.size() >= 4) {
    const __m128d abs_mask =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    const __m128d vlim = _mm_set1_pd(std::numeric_limits<double>::max());
    __m128d vmn = _mm_set1_pd(values[0]);
    __m128d vmx = vmn;
    __m128d bad = _mm_setzero_pd();
    std::size_t i = 1;
    for (; i + 2 <= values.size(); i += 2) {
      const __m128d v = _mm_loadu_pd(values.data() + i);
      vmn = _mm_min_pd(vmn, v);
      vmx = _mm_max_pd(vmx, v);
      bad = _mm_or_pd(bad, _mm_cmpnle_pd(_mm_and_pd(v, abs_mask), vlim));
    }
    mn = std::min(_mm_cvtsd_f64(vmn),
                  _mm_cvtsd_f64(_mm_unpackhi_pd(vmn, vmn)));
    mx = std::max(_mm_cvtsd_f64(vmx),
                  _mm_cvtsd_f64(_mm_unpackhi_pd(vmx, vmx)));
    ok &= _mm_movemask_pd(bad) == 0;
    for (; i < values.size(); ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
      ok &= std::isfinite(values[i]) != 0;
    }
  } else
#endif
  {
    for (std::size_t i = 1; i < values.size(); ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
      ok &= std::isfinite(values[i]) != 0;
    }
  }
  if (mn == 0.0) {
    for (double v : values) {
      if (v == 0.0) {
        mn = v;
        break;
      }
    }
  }
  if (mx == 0.0) {
    for (std::size_t i = values.size(); i-- > 0;) {
      if (values[i] == 0.0) {
        mx = values[i];
        break;
      }
    }
  }
  scan.all_finite = ok;
  scan.min = mn;
  scan.max = mx;
  return scan;
}

IntervalList PartitionDimension(std::span<const double> values,
                                const PartitionerConfig& config) {
  PMCORR_DASSERT(!values.empty());
  const ValueScan scan = ScanValues(values);
  return PartitionDimension(values, config, scan.min, scan.max);
}

IntervalList PartitionDimension(std::span<const double> values,
                                const PartitionerConfig& config,
                                double min_value, double max_value) {
  PMCORR_DASSERT(!values.empty());
  PMCORR_DASSERT(config.units >= 2);

  double lo = min_value;
  double hi = max_value;
  if (hi <= lo) {
    // Degenerate (constant) dimension: one symmetric band around the value.
    const double pad = std::max(std::fabs(lo) * 0.05, 0.5);
    return IntervalList::Uniform(lo - pad, lo + pad,
                                 std::max<std::size_t>(config.min_intervals, 1));
  }
  hi += (hi - lo) * std::max(config.pad_fraction, 1e-12);

  // Fine-grained unit histogram.
  Histogram hist(lo, hi, config.units);
  hist.AddAll(values);

  // Uniform fallback: "if the data are equal-distributed ... simply divide
  // the dimension into equal-sized intervals".
  RunningStats unit_stats;
  for (std::size_t u = 0; u < hist.BinCount(); ++u) {
    unit_stats.Add(static_cast<double>(hist.CountAt(u)));
  }
  const double rel_stddev =
      unit_stats.Mean() > 0.0 ? unit_stats.StdDev() / unit_stats.Mean() : 0.0;
  if (rel_stddev < config.uniformity_threshold) {
    return IntervalList::Uniform(lo, hi, std::max<std::size_t>(
                                             config.uniform_intervals, 1));
  }

  const double expected =
      static_cast<double>(values.size()) / static_cast<double>(config.units);
  const double sparse_threshold = config.density_fraction * expected;

  std::vector<Segment> segments =
      MergeUnits(hist.Counts(), sparse_threshold, config.merge_similarity);
  EnforceMaxSegments(segments, std::max<std::size_t>(config.max_intervals, 1));

  // If merging collapsed too far, split the widest segments.
  while (segments.size() < config.min_intervals) {
    std::size_t widest = 0;
    for (std::size_t i = 1; i < segments.size(); ++i) {
      if (segments[i].Units() > segments[widest].Units()) widest = i;
    }
    Segment& seg = segments[widest];
    if (seg.Units() < 2) break;  // cannot split further
    const std::size_t mid = seg.first_unit + seg.Units() / 2;
    Segment right{mid, seg.last_unit, seg.count / 2.0};
    seg.last_unit = mid - 1;
    seg.count /= 2.0;
    segments.insert(segments.begin() + static_cast<std::ptrdiff_t>(widest) + 1,
                    right);
  }

  std::vector<Interval> intervals;
  intervals.reserve(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double left =
        i == 0 ? lo : hist.BinLower(segments[i].first_unit);
    const double right =
        i + 1 == segments.size() ? hi : hist.BinLower(segments[i].last_unit + 1);
    intervals.push_back({left, right});
  }
  return IntervalList(std::move(intervals));
}

}  // namespace pmcorr
