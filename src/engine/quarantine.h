// Pair quarantine: a per-pair circuit breaker with exponential backoff.
//
// One misbehaving pair model must not take down the fleet. Two failure
// modes trip the breaker:
//
//  * an exception escaping the pair's Step (a CheckFailure from an
//    audit-build invariant, or an injected engine fault) — always armed;
//  * a run of consecutive outlier observations longer than
//    `outlier_burst` (a feed spewing garbage that passes parsing) —
//    opt-in, 0 disables it.
//
// A tripped pair is quarantined: its Step is skipped (its snapshot slot
// is disengaged, exactly as if the sample were missing) while every
// other pair keeps running untouched. After a backoff delay counted in
// samples (so a restored checkpoint resumes the same schedule) the pair
// gets a probation step; success re-admits it (with a sequence reset —
// it missed samples), failure re-quarantines it with a doubled delay.
// Once the retry budget is exhausted the pair is retired for good.
//
// Thread-safety contract: state is per-pair and disjoint. The monitor's
// workers call BeginStep/RecordSuccess/RecordFailure only for pair
// indices they own within a parallel region, so no synchronization is
// needed; the aggregate accessors (counts, AnyTripped) scan the state
// vector and must be called from the serial sections between regions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/backoff.h"

namespace pmcorr {

/// Circuit-breaker policy for one monitor's pairs.
struct QuarantineConfig {
  /// Master switch. Disabled means exceptions propagate out of the
  /// monitor exactly as they did before quarantine existed.
  bool enabled = true;

  /// Quarantine a pair after this many *consecutive* outlier
  /// observations. 0 (default) disables the outlier breaker — outliers
  /// are a scored, expected part of the paper's model, so only streams
  /// known to spew garbage should arm this.
  std::size_t outlier_burst = 0;

  /// Retry schedule, counted in samples.
  BackoffPolicy backoff;
};

/// Per-pair breaker state machine. See file comment for the contract.
class PairQuarantine {
 public:
  /// Lifecycle of one pair.
  enum class State : std::uint8_t {
    kActive = 0,       ///< stepping normally
    kQuarantined = 1,  ///< skipped until its probation sample
    kRetired = 2,      ///< retry budget exhausted; skipped forever
  };

  /// What the owning worker should do with pair `i` at this sample.
  enum class Decision : std::uint8_t {
    kRun = 0,            ///< step normally
    kRunAfterReset = 1,  ///< probation: reset the pair's sequence, then step
    kSkip = 2,           ///< quarantined or retired: leave the slot empty
  };

  PairQuarantine() = default;
  PairQuarantine(std::size_t pair_count, QuarantineConfig config);

  bool Enabled() const { return config_.enabled && !pairs_.empty(); }
  const QuarantineConfig& Config() const { return config_; }

  /// Worker-side: decide pair `i`'s fate at (0-based) sample `sample`.
  Decision BeginStep(std::size_t i, std::size_t sample);

  /// Worker-side: pair `i` stepped without throwing. `outlier` feeds the
  /// burst breaker; a probation success re-admits the pair.
  void RecordSuccess(std::size_t i, std::size_t sample, bool outlier);

  /// Worker-side: pair `i`'s step threw `what`. Quarantines (or, once
  /// the budget is spent, retires) the pair.
  void RecordFailure(std::size_t i, std::size_t sample,
                     const std::string& what);

  /// Serial-side: grows the state vector for a pair appended to the
  /// graph (dynamic topology); the new pair starts active.
  void AddPair();

  /// Serial-side: administratively retires pair `i` — skipped forever,
  /// exactly like a budget-exhausted trip, but without recording a trip
  /// (the pair did nothing wrong; its machine left the fleet). `why` is
  /// surfaced through LastError.
  void Retire(std::size_t i, const std::string& why);

  State StateOf(std::size_t i) const { return pairs_[i].state; }
  bool IsQuarantined(std::size_t i) const {
    return pairs_[i].state == State::kQuarantined;
  }
  bool IsRetired(std::size_t i) const {
    return pairs_[i].state == State::kRetired;
  }

  /// Failure message from pair `i`'s most recent trip ("" if none).
  const std::string& LastError(std::size_t i) const {
    return pairs_[i].last_error;
  }

  /// Serial-side aggregates (scan the state vector).
  std::size_t QuarantinedCount() const;
  std::size_t RetiredCount() const;
  /// Total trips recorded across all pairs (exceptions + bursts).
  std::size_t TripCount() const;
  /// True once any pair has ever tripped (exception or outlier burst).
  bool AnyTripped() const;
  /// True once any pair has tripped OR left the active state (including
  /// administrative Retire, which records no trip) — the monitor's
  /// batched path stays on its unguarded fast sweep until this flips.
  bool AnyDisengaged() const;

 private:
  struct PairState {
    State state = State::kActive;
    /// First sample at which a quarantined pair may try a probation
    /// step.
    std::size_t retry_at = 0;
    /// Retries consumed against the backoff budget.
    std::size_t retries = 0;
    /// Lifetime trips (exception or outlier burst).
    std::size_t trips = 0;
    /// Current consecutive-outlier run (burst breaker).
    std::size_t outlier_run = 0;
    /// True while the pair is on the probation step that follows a
    /// backoff delay.
    bool probation = false;
    std::string last_error;
  };

  void Trip(PairState& pair, std::size_t sample, const std::string& why);

  QuarantineConfig config_;
  std::vector<PairState> pairs_;
};

}  // namespace pmcorr
