#include "engine/health.h"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pmcorr {

const char* MeasurementHealthName(MeasurementHealth health) {
  switch (health) {
    case MeasurementHealth::kHealthy: return "healthy";
    case MeasurementHealth::kStale: return "stale";
    case MeasurementHealth::kFlapping: return "flapping";
    case MeasurementHealth::kDead: return "dead";
  }
  return "unknown";
}

const char* StreamEventName(StreamEvent event) {
  switch (event) {
    case StreamEvent::kNone: return "none";
    case StreamEvent::kGap: return "gap";
    case StreamEvent::kDuplicate: return "duplicate";
    case StreamEvent::kOutOfOrder: return "out-of-order";
  }
  return "unknown";
}

IngestGuard::IngestGuard(std::size_t measurement_count, HealthConfig config)
    : config_(config), states_(measurement_count) {
  if (config_.late_factor < 1.0) {
    throw std::invalid_argument("IngestGuard: late_factor must be >= 1");
  }
}

std::vector<MeasurementHealth> IngestGuard::HealthStates() const {
  std::vector<MeasurementHealth> out;
  CopyHealthStates(out);
  return out;
}

void IngestGuard::CopyHealthStates(std::vector<MeasurementHealth>& out) const {
  out.clear();
  out.reserve(states_.size());
  for (const FeedState& feed : states_) out.push_back(feed.health);
}

void IngestGuard::ResetTiming() {
  has_last_tp_ = false;
  for (FeedState& feed : states_) {
    feed.has_last = false;
    feed.frozen_run = 0;
  }
}

void IngestGuard::UpdateHealth(FeedState& feed, bool usable) {
  const MeasurementHealth before = feed.health;

  // Coarse flap window: degrade events accumulate and the counter clears
  // every flap_window samples, so "left kHealthy N times recently" is a
  // deterministic statement without a per-feed ring buffer.
  if (config_.flap_window > 0 && ++feed.since_degrade >= config_.flap_window) {
    feed.since_degrade = 0;
    feed.recent_degrades = 0;
  }

  MeasurementHealth next = before;
  if (config_.dead_after > 0 && feed.missing_run >= config_.dead_after) {
    next = MeasurementHealth::kDead;
  } else if (config_.stale_after > 0 &&
             feed.missing_run >= config_.stale_after) {
    if (before == MeasurementHealth::kHealthy) {
      ++feed.recent_degrades;
      feed.since_degrade = 0;
    }
    next = (config_.flap_transitions > 0 &&
            feed.recent_degrades >= config_.flap_transitions)
               ? MeasurementHealth::kFlapping
               : MeasurementHealth::kStale;
  } else if (usable && before != MeasurementHealth::kHealthy &&
             feed.good_run >= config_.recover_after) {
    next = MeasurementHealth::kHealthy;
  }

  if (before == MeasurementHealth::kHealthy &&
      next != MeasurementHealth::kHealthy) {
    ++degraded_;
  } else if (before != MeasurementHealth::kHealthy &&
             next == MeasurementHealth::kHealthy) {
    --degraded_;
  }
  feed.health = next;
}

SampleReport IngestGuard::Filter(std::span<double> values, TimePoint tp) {
  SampleReport report;
  if (!Enabled()) return report;
  if (values.size() != states_.size()) {
    throw std::invalid_argument("IngestGuard::Filter: value count mismatch");
  }

  // Stream-level timing: classify this arrival against the previous one.
  if (has_last_tp_) {
    if (tp == last_tp_) {
      report.event = StreamEvent::kDuplicate;
      ++duplicates_;
    } else if (tp < last_tp_) {
      report.event = StreamEvent::kOutOfOrder;
      ++out_of_order_;
    } else {
      const Duration dt = tp - last_tp_;
      if (config_.expected_period == 0) {
        // Learn the cadence from the first two distinct timestamps.
        config_.expected_period = dt;
      } else if (static_cast<double>(dt) >
                 config_.late_factor *
                     static_cast<double>(config_.expected_period)) {
        report.event = StreamEvent::kGap;
        report.sequence_break = true;
        ++gaps_;
      }
      last_tp_ = tp;
    }
  } else {
    has_last_tp_ = true;
    last_tp_ = tp;
  }

  // A duplicate or out-of-order sample carries no trustworthy values:
  // suppress the whole row (the models see a missing sample) and leave
  // the stream clock where it was. The transition sequence is broken
  // either way — the "previous cell" no longer matches the cadence slot
  // the next sample will claim to follow.
  if (report.event == StreamEvent::kDuplicate ||
      report.event == StreamEvent::kOutOfOrder) {
    report.sequence_break = true;
    for (double& v : values) {
      if (!std::isnan(v)) {
        v = std::numeric_limits<double>::quiet_NaN();
        ++report.suppressed;
      }
    }
  }

  // Per-feed value inspection: frozen detection + health update.
  for (std::size_t m = 0; m < states_.size(); ++m) {
    FeedState& feed = states_[m];
    double& v = values[m];
    bool usable = !std::isnan(v);

    if (usable && config_.frozen_after > 0) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
      if (feed.has_last && bits == feed.last_bits) {
        ++feed.frozen_run;
      } else {
        feed.frozen_run = 1;
      }
      feed.last_bits = bits;
      feed.has_last = true;
      if (feed.frozen_run >= config_.frozen_after) {
        // Wedged agent replaying its last reading: suppress until the
        // value actually changes again.
        v = std::numeric_limits<double>::quiet_NaN();
        usable = false;
        ++report.suppressed;
      }
    }

    if (usable) {
      feed.missing_run = 0;
      ++feed.good_run;
    } else {
      ++feed.missing_run;
      feed.good_run = 0;
    }
    UpdateHealth(feed, usable);
  }

  suppressed_total_ += report.suppressed;
  return report;
}

}  // namespace pmcorr
