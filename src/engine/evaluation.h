// Detection-quality evaluation: scoring alarm windows against
// ground-truth fault windows.
//
// The paper evaluates qualitatively ("the anomalies identified are
// consistent with the ground-truth"); with the simulator's labeled fault
// injections we can quantify: window-level precision/recall/F1 and
// detection latency, plus threshold sweeps for sensitivity analysis.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "engine/alarm.h"
#include "engine/monitor.h"

namespace pmcorr {

/// The per-sample system-score (Q) series of a snapshot stream — the
/// shape ExtractLowScoreWindows / SweepThresholds consume. Disengaged
/// samples stay nullopt.
std::vector<std::optional<double>> SystemScoreSeries(
    const std::vector<SystemSnapshot>& snapshots);

/// One measurement's Q^a series from a snapshot stream.
std::vector<std::optional<double>> MeasurementScoreSeries(
    const std::vector<SystemSnapshot>& snapshots, std::size_t measurement);

/// One ground-truth anomaly interval [start, end).
struct LabeledWindow {
  TimePoint start = 0;
  TimePoint end = 0;
};

/// Window-level detection outcome. A truth window counts as detected
/// when at least one alarm window overlaps it (with `grace` slack on
/// both sides); an alarm window not overlapping any (grace-extended)
/// truth window is a false alarm.
struct DetectionOutcome {
  std::size_t truth_windows = 0;
  std::size_t detected = 0;        // true positives (per truth window)
  std::size_t missed = 0;          // false negatives
  std::size_t alarm_windows = 0;   // total alarm windows raised
  std::size_t false_alarms = 0;    // alarm windows matching no truth

  /// detected / (detected + false_alarms); 1 when nothing was raised
  /// against an empty truth set, 0 when alarms exist but none match.
  double Precision() const;
  /// detected / truth_windows; 1 for an empty truth set.
  double Recall() const;
  /// Harmonic mean of precision and recall (0 when both are 0).
  double F1() const;

  /// Mean delay from each detected truth window's start to the first
  /// overlapping alarm (negative when the alarm began inside the grace
  /// margin before the window). Disengaged when nothing was detected.
  std::optional<double> mean_latency_seconds;

  /// Scorecard convention for the disengaged case: serializers and
  /// degraded-mode runs (quarantined/retired pairs can suppress every
  /// alarm) need a total function, so "no detection" reads as a fixed
  /// `fallback`. The scorecard uses -1: real latencies there are
  /// multiples of the sample period (alarm windows start on the sample
  /// grid), so -1 second is unambiguous. Pick a fallback outside your
  /// own time base when the grid is finer.
  double MeanLatencyOr(double fallback) const {
    return mean_latency_seconds ? *mean_latency_seconds : fallback;
  }
};

/// Matches alarm windows against truth windows.
DetectionOutcome EvaluateDetection(const std::vector<ScoreWindow>& alarms,
                                   const std::vector<LabeledWindow>& truth,
                                   Duration grace = 0);

/// One point of a threshold sensitivity sweep.
struct ThresholdSweepPoint {
  double threshold = 0.0;
  DetectionOutcome outcome;
};

/// Extracts alarm windows at each threshold (scores below threshold =
/// alarming, as in ExtractLowScoreWindows) and evaluates each against
/// the truth. Thresholds are processed in the order given.
std::vector<ThresholdSweepPoint> SweepThresholds(
    std::span<const std::optional<double>> scores, TimePoint start,
    Duration period, const std::vector<LabeledWindow>& truth,
    std::span<const double> thresholds, std::size_t min_length = 1,
    Duration grace = 0);

}  // namespace pmcorr
