// RowAssembler: the shim between a real collector and the engine.
//
// SystemMonitor::Step wants one aligned row (all measurements, one
// timestamp). Real collectors deliver single observations, out of order
// within a sampling period, and sometimes not at all. The assembler
// snaps events onto the sampling grid, fills what arrives, and emits a
// row when its slot is complete — or when a newer slot forces it out
// (late/absent observations become NaN, which the models treat as
// missing).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace pmcorr {

/// Assembler configuration.
struct AssemblerConfig {
  /// The sampling grid (slot s covers [start + s*period, ... + period)).
  TimePoint start = 0;
  Duration period = kPaperSamplePeriod;
  /// Measurements per row.
  std::size_t measurement_count = 0;
  /// A slot is flushed (incomplete values as NaN) once an event arrives
  /// for a slot at least this many periods newer.
  std::size_t max_open_slots = 2;
};

/// One completed row.
struct AssembledRow {
  TimePoint time = 0;       // slot start
  std::vector<double> values;  // NaN where nothing arrived
  std::size_t filled = 0;   // observations actually received
};

class RowAssembler {
 public:
  using RowCallback = std::function<void(const AssembledRow&)>;

  /// `on_row` fires once per flushed slot, in time order.
  RowAssembler(AssemblerConfig config, RowCallback on_row);

  /// Feeds one observation. Events older than the oldest open slot are
  /// counted as late and dropped (the row already shipped). Multiple
  /// events for the same (slot, measurement) keep the latest value.
  void Offer(MeasurementId id, TimePoint tp, double value);

  /// Flushes every open slot (end of stream / shutdown).
  void Flush();

  /// Observations that arrived after their row had shipped.
  std::size_t LateDrops() const { return late_drops_; }

  /// Currently open (partially filled) slots.
  std::size_t OpenSlots() const { return slots_.size(); }

 private:
  std::int64_t SlotOf(TimePoint tp) const;
  void EmitThrough(std::int64_t slot);

  AssemblerConfig config_;
  RowCallback on_row_;
  /// slot index -> partial row.
  std::map<std::int64_t, AssembledRow> slots_;
  std::int64_t last_emitted_ = -1;
  bool any_emitted_ = false;
  std::size_t late_drops_ = 0;
};

}  // namespace pmcorr
