#include "engine/incident.h"

#include <algorithm>

namespace pmcorr {

IncidentTracker::IncidentTracker(IncidentConfig config) : config_(config) {}

const Incident* IncidentTracker::Observe(TimePoint time, bool alarming,
                                         double score) {
  // Close the open incident if it has been quiet long enough.
  if (has_open_ &&
      time - incidents_.back().last_alarm > config_.merge_gap) {
    Incident& open = incidents_.back();
    open.end = open.last_alarm + config_.merge_gap;
    open.open = false;
    has_open_ = false;
    last_close_ = open.end;
    has_closed_any_ = true;
  }

  if (!alarming) return nullptr;

  if (has_open_) {
    Incident& open = incidents_.back();
    open.last_alarm = time;
    ++open.alarm_count;
    open.min_score = std::min(open.min_score, score);
    return nullptr;
  }

  // Cooldown: an alarm shortly after a close re-opens the last incident.
  if (has_closed_any_ && !incidents_.empty() &&
      time - last_close_ <= config_.cooldown) {
    Incident& last = incidents_.back();
    last.open = true;
    last.end = 0;
    last.last_alarm = time;
    ++last.alarm_count;
    last.min_score = std::min(last.min_score, score);
    has_open_ = true;
    return nullptr;
  }

  Incident incident;
  incident.start = time;
  incident.last_alarm = time;
  incident.alarm_count = 1;
  incident.min_score = score;
  incidents_.push_back(incident);
  has_open_ = true;
  return &incidents_.back();
}

void IncidentTracker::Flush(TimePoint now) {
  if (!has_open_) return;
  Incident& open = incidents_.back();
  open.end = std::max(now, open.last_alarm + 1);
  open.open = false;
  has_open_ = false;
  last_close_ = open.end;
  has_closed_any_ = true;
}

std::optional<Incident> IncidentTracker::Open() const {
  if (!has_open_) return std::nullopt;
  return incidents_.back();
}

}  // namespace pmcorr
