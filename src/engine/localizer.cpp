#include "engine/localizer.h"

#include <algorithm>
#include <map>

#include "common/stats.h"

namespace pmcorr {

std::vector<MachineScore> ScoreMachines(
    const std::vector<MeasurementInfo>& infos,
    const std::vector<ScoreAverager>& measurement_averages) {
  std::map<MachineId, MachineScore> by_machine;
  for (std::size_t a = 0; a < infos.size(); ++a) {
    if (a >= measurement_averages.size()) break;
    const ScoreAverager& avg = measurement_averages[a];
    if (avg.Count() == 0) continue;
    MachineScore& ms = by_machine[infos[a].machine];
    ms.machine = infos[a].machine;
    ms.score += avg.Mean();
    ++ms.measurements;
  }
  std::vector<MachineScore> out;
  out.reserve(by_machine.size());
  for (auto& [machine, ms] : by_machine) {
    ms.score /= static_cast<double>(ms.measurements);
    out.push_back(ms);
  }
  std::sort(out.begin(), out.end(),
            [](const MachineScore& a, const MachineScore& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.machine < b.machine;
            });
  return out;
}

LocalizationReport Localize(
    const std::vector<MeasurementInfo>& infos,
    const std::vector<ScoreAverager>& measurement_averages,
    const LocalizerConfig& config) {
  LocalizationReport report;
  report.ranking = ScoreMachines(infos, measurement_averages);
  if (report.ranking.empty()) return report;

  RunningStats stats;
  for (const MachineScore& ms : report.ranking) stats.Add(ms.score);

  double threshold = -1.0;
  if (config.deviations > 0.0) {
    threshold = stats.Mean() - config.deviations * stats.StdDev();
  }
  if (config.absolute_floor) {
    threshold = std::max(threshold, *config.absolute_floor);
  }
  report.threshold = threshold;

  for (const MachineScore& ms : report.ranking) {
    if (ms.score < threshold) report.suspects.push_back(ms.machine);
  }
  return report;
}

}  // namespace pmcorr
