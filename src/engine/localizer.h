// Problem localization (Figure 14): aggregate per-measurement fitness to
// machines, rank them, and surface suspects.
//
// "We compute the average fitness score among measurements collected from
// the same machine ... The locations with low fitness scores are the
// potential problem sources."
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/fitness.h"
#include "timeseries/frame.h"

namespace pmcorr {

/// A machine's aggregate health over the monitored period.
struct MachineScore {
  MachineId machine;
  /// Mean of the machine's measurement-level average fitness scores.
  double score = 0.0;
  /// Measurements contributing to the mean.
  std::size_t measurements = 0;
};

/// Averages per-measurement lifetime scores up to machines. Measurements
/// with no engaged samples are skipped. Results are sorted ascending by
/// score — suspects first.
std::vector<MachineScore> ScoreMachines(
    const std::vector<MeasurementInfo>& infos,
    const std::vector<ScoreAverager>& measurement_averages);

/// Localization verdict.
struct LocalizationReport {
  /// All machines, ascending by score.
  std::vector<MachineScore> ranking;
  /// Machines flagged as suspects.
  std::vector<MachineId> suspects;
  /// The threshold actually applied.
  double threshold = 0.0;
};

/// Localization policy: a machine is a suspect when its score falls below
/// either the absolute floor or (mean - deviations * stddev) of the fleet
/// (whichever criterion is enabled).
struct LocalizerConfig {
  std::optional<double> absolute_floor;  // e.g. 0.9 as in Figure 14
  double deviations = 3.0;               // relative criterion; <= 0 disables
};

/// Ranks machines and applies the suspect policy.
LocalizationReport Localize(const std::vector<MeasurementInfo>& infos,
                            const std::vector<ScoreAverager>& measurement_averages,
                            const LocalizerConfig& config = {});

}  // namespace pmcorr
