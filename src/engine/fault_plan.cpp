#include "engine/fault_plan.h"

namespace pmcorr {

void EngineFaultPlan::CheckPairStep(std::size_t pair,
                                    std::size_t sample) const {
  for (const PairFault& fault : pair_faults) {
    if (fault.pair == pair && sample >= fault.from && sample < fault.to) {
      throw InjectedFault("injected fault: pair " + std::to_string(pair) +
                          " at sample " + std::to_string(sample));
    }
  }
}

void EngineFaultPlan::ApplyToRow(std::span<double> values,
                                 std::size_t sample) const {
  for (const PoisonFault& fault : poison_faults) {
    if (fault.measurement < values.size() && sample >= fault.from &&
        sample < fault.to) {
      values[fault.measurement] = fault.value;
    }
  }
}

}  // namespace pmcorr
