#include "engine/evaluation.h"

#include <algorithm>

namespace pmcorr {
namespace {

bool Overlaps(TimePoint a_start, TimePoint a_end, TimePoint b_start,
              TimePoint b_end) {
  return a_start < b_end && b_start < a_end;
}

}  // namespace

std::vector<std::optional<double>> SystemScoreSeries(
    const std::vector<SystemSnapshot>& snapshots) {
  std::vector<std::optional<double>> scores;
  scores.reserve(snapshots.size());
  for (const SystemSnapshot& snap : snapshots) {
    scores.push_back(snap.system_score);
  }
  return scores;
}

std::vector<std::optional<double>> MeasurementScoreSeries(
    const std::vector<SystemSnapshot>& snapshots, std::size_t measurement) {
  std::vector<std::optional<double>> scores;
  scores.reserve(snapshots.size());
  for (const SystemSnapshot& snap : snapshots) {
    scores.push_back(snap.measurement_scores.at(measurement));
  }
  return scores;
}

double DetectionOutcome::Precision() const {
  const std::size_t raised = detected + false_alarms;
  if (raised == 0) return alarm_windows == 0 ? 1.0 : 0.0;
  return static_cast<double>(detected) / static_cast<double>(raised);
}

double DetectionOutcome::Recall() const {
  if (truth_windows == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(truth_windows);
}

double DetectionOutcome::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

DetectionOutcome EvaluateDetection(const std::vector<ScoreWindow>& alarms,
                                   const std::vector<LabeledWindow>& truth,
                                   Duration grace) {
  DetectionOutcome outcome;
  outcome.truth_windows = truth.size();
  outcome.alarm_windows = alarms.size();

  double latency_sum = 0.0;
  for (const LabeledWindow& t : truth) {
    const ScoreWindow* first = nullptr;
    for (const ScoreWindow& a : alarms) {
      if (!Overlaps(a.start, a.end, t.start - grace, t.end + grace)) continue;
      if (first == nullptr || a.start < first->start) first = &a;
    }
    if (first != nullptr) {
      ++outcome.detected;
      latency_sum += static_cast<double>(first->start - t.start);
    } else {
      ++outcome.missed;
    }
  }
  if (outcome.detected > 0) {
    outcome.mean_latency_seconds =
        latency_sum / static_cast<double>(outcome.detected);
  }

  for (const ScoreWindow& a : alarms) {
    const bool matches = std::any_of(
        truth.begin(), truth.end(), [&](const LabeledWindow& t) {
          return Overlaps(a.start, a.end, t.start - grace, t.end + grace);
        });
    if (!matches) ++outcome.false_alarms;
  }
  return outcome;
}

std::vector<ThresholdSweepPoint> SweepThresholds(
    std::span<const std::optional<double>> scores, TimePoint start,
    Duration period, const std::vector<LabeledWindow>& truth,
    std::span<const double> thresholds, std::size_t min_length,
    Duration grace) {
  std::vector<ThresholdSweepPoint> sweep;
  sweep.reserve(thresholds.size());
  for (double threshold : thresholds) {
    const auto windows =
        ExtractLowScoreWindows(scores, start, period, threshold, min_length);
    sweep.push_back({threshold, EvaluateDetection(windows, truth, grace)});
  }
  return sweep;
}

}  // namespace pmcorr
