// Engine output forms: the full per-sample SystemSnapshot, and the
// incremental SystemDelta a shard-scale monitor emits instead.
//
// At 193 pairs a full snapshot per tick is cheap; at 100k+ pairs it is
// the dominant cost — every tick serializes every pair even though the
// rank-quantized fitness of a healthy pair repeats bitwise for long
// stretches. A SystemDelta carries only what changed since the previous
// tick (changed pair scores, newly disengaged pairs, changed Q^a and
// feed health) plus the per-tick scalars, so a quiet tick is a few
// hundred bytes regardless of pair count. DeltaReconstructor folds a
// delta stream back into full snapshots — the differential suite proves
// the reconstruction bitwise-identical to SystemMonitor::Run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "engine/health.h"

namespace pmcorr {

/// The engine's view of one processed sample.
struct SystemSnapshot {
  std::size_t sample = 0;
  TimePoint time = 0;

  /// Q^{a,b} per graph pair; disengaged when the pair had no scorable
  /// transition (first sample, or source cell unknown after an outlier).
  std::vector<std::optional<double>> pair_scores;

  /// Q^a per measurement (mean over its engaged pair scores).
  std::vector<std::optional<double>> measurement_scores;

  /// Q for the entire system (mean over engaged measurement scores).
  std::optional<double> system_score;

  /// Pair indices that alarmed at this sample.
  std::vector<std::size_t> alarmed_pairs;

  /// Pairs whose observation fell outside the grid beyond the extension
  /// margin / pairs that grew their grid at this sample.
  std::size_t outlier_pairs = 0;
  std::size_t extended_pairs = 0;

  /// Degraded-mode telemetry (engine/health.h, engine/quarantine.h).
  /// On a clean stream: kNone, all-healthy, 0, 0. These fields are
  /// engine-side observability only — they are not part of the JSONL
  /// snapshot-stream format or the checkpoint format.
  StreamEvent stream_event = StreamEvent::kNone;
  /// Per-measurement feed health after this sample; empty when the
  /// ingest guard is disabled.
  std::vector<MeasurementHealth> measurement_health;
  /// Values the guard suppressed to NaN at this sample.
  std::size_t suppressed_values = 0;
  /// Pairs that were not stepped at this sample (quarantined, retired,
  /// or tripped mid-sample).
  std::size_t quarantined_pairs = 0;
};

/// One sparse (index, value) entry of a delta: the pair or measurement
/// at `index` now scores `score` (bitwise — change detection compares
/// bit patterns, so reconstruction is exact).
struct ScoreChange {
  std::uint32_t index = 0;
  double score = 0.0;
};

/// Feed `index` moved to `health` at this tick.
struct HealthChange {
  std::uint32_t index = 0;
  MeasurementHealth health = MeasurementHealth::kHealthy;
};

/// Incremental form of one SystemSnapshot. A `baseline` delta restates
/// the full engaged state (every engaged pair/measurement score, every
/// non-healthy feed) against an implicit all-disengaged/all-healthy
/// start; a non-baseline delta lists only what changed since the
/// previous tick. Per-tick scalars (time, Q, alarms, counters) are
/// always carried — they are O(1) and almost always change.
struct SystemDelta {
  std::size_t sample = 0;
  TimePoint time = 0;
  /// Restates full state: the first tick of a delta run, and every tick
  /// after dirty-pair tracking was invalidated (Step/Run interleave,
  /// AddPair/RetirePair, calibration).
  bool baseline = false;
  /// Widths the reconstruction must agree with (pair count may grow
  /// across a baseline after AddPair).
  std::uint32_t pair_count = 0;
  std::uint32_t measurement_count = 0;

  std::optional<double> system_score;

  /// Pairs whose Q^{a,b} is newly present or changed bits, ascending.
  std::vector<ScoreChange> pair_changes;
  /// Pairs engaged last tick but disengaged now, ascending. Empty on a
  /// baseline (disengaged is the implicit start state).
  std::vector<std::uint32_t> pair_disengaged;
  /// Same for Q^a per measurement.
  std::vector<ScoreChange> measurement_changes;
  std::vector<std::uint32_t> measurement_disengaged;

  std::vector<std::size_t> alarmed_pairs;
  std::size_t outlier_pairs = 0;
  std::size_t extended_pairs = 0;
  StreamEvent stream_event = StreamEvent::kNone;
  std::size_t suppressed_values = 0;
  std::size_t quarantined_pairs = 0;

  /// True when the ingest guard tracks feed health (reconstruction then
  /// materializes a full health vector; otherwise it stays empty).
  bool has_health = false;
  /// Feeds whose health changed (baseline: every non-kHealthy feed).
  std::vector<HealthChange> health_changes;
};

/// Folds a SystemDelta stream back into full SystemSnapshots. Stateful:
/// feed deltas in emission order, starting at a baseline. Throws
/// std::runtime_error on a malformed stream (first delta not a
/// baseline, width mismatch, out-of-range or non-ascending indices).
class DeltaReconstructor {
 public:
  /// Applies one delta and returns the full snapshot it encodes. The
  /// reference stays valid (and is overwritten) until the next Apply.
  const SystemSnapshot& Apply(const SystemDelta& delta);

  /// Full state as of the last Apply — the "full snapshot on demand"
  /// view of a live delta stream.
  const SystemSnapshot& Current() const { return state_; }
  bool HasState() const { return has_state_; }

 private:
  SystemSnapshot state_;
  bool has_state_ = false;
};

/// Convenience: reconstructs every delta of a stream (e.g. for the
/// differential proof or for report code that wants full snapshots).
std::vector<SystemSnapshot> ReconstructSnapshots(
    std::span<const SystemDelta> deltas);

}  // namespace pmcorr
