// Alarm extraction over fitness-score streams.
//
// The paper reads problems off the fitness plot as "deep downward
// spikes" (Figure 12). These helpers turn a per-sample score series into
// discrete alarm windows, and keep a log of pair-level alarms for
// drill-down reports.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/time.h"

namespace pmcorr {

/// A maximal run of consecutive samples scoring below a threshold.
struct ScoreWindow {
  std::size_t first_sample = 0;
  std::size_t last_sample = 0;  // inclusive
  TimePoint start = 0;
  TimePoint end = 0;  // half-open: start of the sample after the window
  double min_score = 1.0;

  std::size_t Length() const { return last_sample - first_sample + 1; }
};

/// Finds all maximal windows of scores strictly below `threshold`.
/// Disengaged samples (nullopt) break windows without alarming. Windows
/// shorter than `min_length` samples are dropped (debounce).
std::vector<ScoreWindow> ExtractLowScoreWindows(
    std::span<const std::optional<double>> scores, TimePoint start,
    Duration period, double threshold, std::size_t min_length = 1);

/// Dense-series overload.
std::vector<ScoreWindow> ExtractLowScoreWindows(std::span<const double> scores,
                                                TimePoint start,
                                                Duration period,
                                                double threshold,
                                                std::size_t min_length = 1);

/// True if any window overlaps [from, to) — used by tests to check a
/// detection against a ground-truth fault window.
bool AnyWindowOverlaps(const std::vector<ScoreWindow>& windows,
                       TimePoint from, TimePoint to);

/// One recorded alarm from a pair model.
struct AlarmRecord {
  TimePoint time = 0;
  std::size_t pair_index = 0;
  double fitness = 0.0;
  bool outlier = false;
};

/// Append-only alarm log with simple per-pair accounting.
class AlarmLog {
 public:
  void Record(AlarmRecord record);

  /// Sorts this log's records by (time, pair index) — the order a
  /// sample-major Step loop records them in. A pair-major sweep calls
  /// this on its shard-local log (inside the worker, so the sort cost
  /// parallelizes) before handing it to AppendMerged.
  void SortForMerge();

  /// Merges per-shard logs — each already in (time, pair index) order,
  /// see SortForMerge — into this log via a deterministic k-way merge.
  /// Ties on time are broken by pair index, and a pair lives in exactly
  /// one shard, so the merged order is exactly the order a sample-major
  /// Step loop would have recorded. The shard logs are emptied but keep
  /// their capacity (`cursors` likewise — reusable scratch), so a
  /// steady-state caller re-merging every batch never reallocates them.
  void AppendMerged(std::span<AlarmLog> shards,
                    std::vector<std::size_t>& cursors);

  /// Convenience overload (owns its scratch; shards are consumed).
  void AppendMerged(std::vector<AlarmLog> shards);

  const std::vector<AlarmRecord>& Records() const { return records_; }
  std::size_t Count() const { return records_.size(); }

  /// Drops all records, keeping capacity (shard-log reuse across
  /// batches).
  void Clear() { records_.clear(); }

  /// Number of alarms recorded for `pair_index`.
  std::size_t CountForPair(std::size_t pair_index) const;

  /// Pair indices sorted by alarm count, descending (ties by index).
  std::vector<std::size_t> NoisiestPairs(std::size_t limit) const;

 private:
  std::vector<AlarmRecord> records_;
};

}  // namespace pmcorr
