// QualityHarness — the detection-quality scorecard.
//
// Runs pmcorr (the paper's pairwise-correlation monitor) and the five
// in-repo baselines (ewma, zscore, gmm, subspace, linear_invariant) over
// every ScenarioSuite scenario and scores each against the scenario's
// ground truth: window-level precision/recall/F1, mean detection latency
// and localization rank. Results serialize to the flat BENCH_quality.json
// schema tools/lint.sh checks, so detection quality is tracked across
// PRs exactly like perf.
//
// Every detector is reduced to the same shape: a per-sample health
// series in [0, 1] over the test period (1 = healthy), alarm windows
// extracted below a per-detector threshold (ExtractLowScoreWindows), and
// a machine ranking with suspects first. Conventions for the degraded
// cases are fixed here so scorecard numbers stay stable when pairs are
// disengaged, quarantined or retired:
//
//  * mean detection latency: DetectionOutcome::MeanLatencyOr —
//    kLatencyUnavailableSeconds (-1) when nothing was detected;
//  * localization rank: 1-based position of the scenario's problem
//    machine in the detector's ranking; a machine absent from the
//    ranking (every measurement disengaged for the whole run) ranks
//    after every ranked machine (ranking size + 1); benign scenarios
//    report kRankNotApplicable (0).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/evaluation.h"
#include "engine/localizer.h"
#include "telemetry/suite.h"

namespace pmcorr {

/// MeanLatencyOr fallback: "nothing detected". Real latencies are
/// multiples of the sample period, so -1 s never collides.
inline constexpr double kLatencyUnavailableSeconds = -1.0;

/// Localization rank for benign scenarios (no problem machine exists).
inline constexpr double kRankNotApplicable = 0.0;

/// 1-based position of `machine` in a suspects-first ranking. A machine
/// absent from the ranking — every one of its measurements disengaged
/// for the whole run (quarantined/retired pairs, or a machine that never
/// reported) — ranks after every ranked machine: ranking.size() + 1.
/// An invalid machine id returns kRankNotApplicable.
double LocalizationRankOf(const std::vector<MachineScore>& ranking,
                          MachineId machine);

/// Harness knobs. Defaults are the committed-BENCH configuration; per-PR
/// CI runs the same harness with SmokeSuiteConfig() and mode "smoke".
struct ScorecardConfig {
  SuiteConfig suite;
  /// Stamped into the JSON ("full" or "smoke").
  std::string mode = "full";

  /// pmcorr: per-pair alarm calibration target on the holdout day.
  double calibrate_fpr = 0.02;
  /// pmcorr: alarm-concentration bound. The health series is one minus
  /// the worst per-measurement fraction of persistently-alarming pairs
  /// (a pair counts only when it alarmed two samples running); the
  /// system flips unhealthy when some measurement has more than this
  /// fraction of its engaged pairs persistently alarming. Persistence
  /// kills single-sample ramp bursts, concentration distinguishes a
  /// broken measurement from fleet-wide scatter.
  double pmcorr_alarm_fraction = 0.5;
  /// The shared unit-fraction alarm bound: pmcorr (calibrated alarming
  /// pairs), ewma/zscore (alarming measurements) and gmm/
  /// linear_invariant (pairs scoring below pair_score_threshold) all
  /// turn their per-sample alarming-unit fraction into health =
  /// 1 - fraction and alarm below 1 - alarm_fraction.
  double alarm_fraction = 0.10;
  /// gmm/linear_invariant: a pair scoring below this counts as alarming.
  double pair_score_threshold = 0.5;
  /// subspace: threshold on the graded SPE health thr/(thr+spe); 0.5
  /// alarms exactly when SPE exceeds the fitted training boundary.
  double subspace_threshold = 0.5;

  /// Alarm-window debounce (samples) and truth-matching grace. Three
  /// consecutive low samples (18 min) separates sustained faults from
  /// the single-sample noise bursts every fraction-based health series
  /// produces at calibrated false-positive rates.
  std::size_t min_window = 3;
  Duration grace = kHour;

  /// pmcorr pair graph: Neighborhood(train, remote_partners, graph_seed).
  std::size_t remote_partners = 2;
  std::uint64_t graph_seed = 7;

  /// Monitor worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// One detector's score on one scenario.
struct DetectorScore {
  std::string detector;
  DetectionOutcome outcome;
  /// See LocalizationRankOf; kRankNotApplicable for benign scenarios.
  double localization_rank = kRankNotApplicable;
  /// Machines the detector managed to rank at all.
  std::size_t ranked_machines = 0;
};

struct ScenarioResult {
  std::string name;
  std::vector<DetectorScore> detectors;  // ScorecardDetectors() order
};

/// Fixed detector order: "pmcorr", then the five baselines.
const std::vector<std::string>& ScorecardDetectors();

/// Runs every detector over one scenario.
ScenarioResult RunScenarioScorecard(const QualityScenario& scenario,
                                    const ScorecardConfig& config);

/// Runs the whole suite (MakeScenarioSuite(config.suite)).
std::vector<ScenarioResult> RunScorecard(const ScorecardConfig& config);

/// Serializes results to the flat bench schema: {"bench": "quality",
/// ...run metadata..., "<scenario>.<detector>.<metric>": <number>}.
void WriteScorecardJson(const std::string& path,
                        const ScorecardConfig& config,
                        const std::vector<ScenarioResult>& results);

}  // namespace pmcorr
