// The pairing structure over measurements — Figure 2(a)'s correlation
// graph: nodes are measurements, edges are the pairs for which a model
// M^{a,b} is maintained.
//
// The paper builds all l(l-1)/2 models; for large l that is memory-heavy
// (each model carries an s x s matrix), so the graph also offers a
// neighborhood builder: every measurement is paired with its machine
// peers plus k randomly chosen remote partners — preserving both the
// intra-machine and cross-machine correlations the paper highlights while
// keeping the model count linear in l.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "timeseries/frame.h"

namespace pmcorr {

class MeasurementGraph {
 public:
  MeasurementGraph() = default;

  /// All l(l-1)/2 pairs — the paper's full construction.
  static MeasurementGraph FullMesh(std::size_t measurement_count);

  /// Builds an explicit pair list (duplicates and self-pairs rejected).
  static MeasurementGraph FromPairs(std::size_t measurement_count,
                                    std::vector<PairId> pairs);

  /// Machine-local cliques plus `remote_partners` random cross-machine
  /// edges per measurement; deterministic in `seed`.
  static MeasurementGraph Neighborhood(const MeasurementFrame& frame,
                                       std::size_t remote_partners,
                                       std::uint64_t seed);

  /// Data-driven pairing: for each measurement, its `max_partners` most
  /// strongly associated peers by |Spearman| over the history frame,
  /// keeping only associations at or above `min_abs_spearman`. A
  /// measurement whose best association falls below the bar still gets
  /// its single best partner (no isolated nodes — every node needs at
  /// least one link for Q^a to exist). Deterministic; ties break toward
  /// lower measurement ids. This answers the deployment question the
  /// paper leaves open: *which* of the l(l-1)/2 pairs to watch.
  static MeasurementGraph ByAssociation(const MeasurementFrame& frame,
                                        double min_abs_spearman = 0.6,
                                        std::size_t max_partners = 3);

  /// Appends one pair to an existing graph (dynamic topology: a machine
  /// joining the fleet brings new edges). Validated exactly like
  /// FromPairs (range, self-pair, duplicate); returns the new pair's
  /// index. Existing pair indices never change.
  std::size_t AddPair(PairId pair);

  std::size_t MeasurementCount() const { return pairs_of_.size(); }
  std::size_t PairCount() const { return pairs_.size(); }
  const std::vector<PairId>& Pairs() const { return pairs_; }
  const PairId& Pair(std::size_t index) const { return pairs_.at(index); }

  /// Indices (into Pairs()) of every pair touching measurement `a` — the
  /// "l-1 links leading to one node" of the paper's Q^a definition.
  std::span<const std::size_t> PairsOf(MeasurementId a) const;

 private:
  void Index();

  std::vector<PairId> pairs_;
  std::vector<std::vector<std::size_t>> pairs_of_;
};

}  // namespace pmcorr
