#include "engine/monitor.h"

#include <cassert>
#include <stdexcept>

namespace pmcorr {

SystemMonitor::SystemMonitor(const MeasurementFrame& history,
                             MeasurementGraph graph, MonitorConfig config)
    : config_(config),
      graph_(std::move(graph)),
      infos_(history.Infos()),
      pool_(config.threads) {
  if (graph_.MeasurementCount() != history.MeasurementCount()) {
    throw std::invalid_argument(
        "SystemMonitor: graph and history measurement counts differ");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor: history needs at least two samples");
  }

  models_.resize(graph_.PairCount());
  measurement_avg_.resize(infos_.size());

  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    models_[i] = PairModel::Learn(history.Series(pair.a).Values(),
                                  history.Series(pair.b).Values(),
                                  config_.model);
  });
}

SystemMonitor::SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                             std::vector<MeasurementInfo> infos,
                             std::vector<PairModel> models,
                             std::vector<ScoreAverager> measurement_averages,
                             ScoreAverager system_average, std::size_t steps)
    : config_(config),
      graph_(std::move(graph)),
      infos_(std::move(infos)),
      models_(std::move(models)),
      pool_(config.threads),
      measurement_avg_(std::move(measurement_averages)),
      system_avg_(system_average),
      steps_(steps) {
  if (models_.size() != graph_.PairCount() ||
      graph_.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor: checkpoint parts are inconsistent");
  }
  measurement_avg_.resize(infos_.size());
}

SystemSnapshot SystemMonitor::Step(std::span<const double> values,
                                   TimePoint tp) {
  if (values.size() != infos_.size()) {
    throw std::invalid_argument("SystemMonitor::Step: value count mismatch");
  }

  SystemSnapshot snap;
  snap.sample = steps_;
  snap.time = tp;
  snap.pair_scores.resize(graph_.PairCount());

  std::vector<StepOutcome> outcomes(graph_.PairCount());
  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    outcomes[i] = models_[i].Step(
        values[static_cast<std::size_t>(pair.a.value)],
        values[static_cast<std::size_t>(pair.b.value)]);
  });

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StepOutcome& out = outcomes[i];
    if (out.has_score) snap.pair_scores[i] = out.fitness;
    if (out.alarm) {
      snap.alarmed_pairs.push_back(i);
      alarm_log_.Record({tp, i, out.fitness, out.outlier});
    }
    if (out.outlier) ++snap.outlier_pairs;
    if (out.extended_grid) ++snap.extended_pairs;
  }

  // Level 2: Q^a = mean of the engaged pair scores on a's links.
  snap.measurement_scores.resize(infos_.size());
  for (std::size_t a = 0; a < infos_.size(); ++a) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t pi :
         graph_.PairsOf(MeasurementId(static_cast<std::int32_t>(a)))) {
      if (snap.pair_scores[pi]) {
        sum += *snap.pair_scores[pi];
        ++n;
      }
    }
    if (n > 0) {
      snap.measurement_scores[a] = sum / static_cast<double>(n);
      measurement_avg_[a].Add(*snap.measurement_scores[a]);
    }
  }

  // Level 3: Q = mean of engaged measurement scores.
  snap.system_score = AggregateScores(snap.measurement_scores);
  system_avg_.Add(snap.system_score);

  ++steps_;
  return snap;
}

std::vector<SystemSnapshot> SystemMonitor::Run(const MeasurementFrame& test) {
  if (test.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::Run: test frame measurement count mismatch");
  }
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(test.SampleCount());
  std::vector<double> values(infos_.size());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    for (std::size_t a = 0; a < infos_.size(); ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    snapshots.push_back(Step(values, test.TimeAt(t)));
  }
  return snapshots;
}

void SystemMonitor::ResetSequences() {
  for (auto& model : models_) model.ResetSequence();
}

void SystemMonitor::CalibrateThresholds(const MeasurementFrame& holdout,
                                        double target_false_positive_rate) {
  if (holdout.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::CalibrateThresholds: holdout measurement count"
        " mismatch");
  }
  pool_.ParallelFor(models_.size(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    const ThresholdCalibration calibration = CalibrateOnHoldout(
        models_[i], holdout.Series(pair.a).Values(),
        holdout.Series(pair.b).Values(), target_false_positive_rate);
    models_[i].SetAlarmThresholds(calibration.fitness_threshold,
                                  calibration.delta);
    models_[i].ResetSequence();
  });
}

}  // namespace pmcorr
