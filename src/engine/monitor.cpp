#include "engine/monitor.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "common/check.h"

namespace pmcorr {
namespace {

// Compact per-(pair, sample) result of a pair-major sweep — only the
// fields the merge phase needs to assemble snapshots.
struct SweepCell {
  double fitness = 0.0;
  bool has_score = false;
  bool alarm = false;
  bool outlier = false;
  bool extended = false;
};

}  // namespace

SystemMonitor::SystemMonitor(const MeasurementFrame& history,
                             MeasurementGraph graph, MonitorConfig config)
    : config_(config),
      graph_(std::move(graph)),
      infos_(history.Infos()),
      pool_(config.threads) {
  if (graph_.MeasurementCount() != history.MeasurementCount()) {
    throw std::invalid_argument(
        "SystemMonitor: graph and history measurement counts differ");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor: history needs at least two samples");
  }

  models_.resize(graph_.PairCount());
  measurement_avg_.resize(infos_.size());

  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    models_[i] = PairModel::Learn(history.Series(pair.a).Values(),
                                  history.Series(pair.b).Values(),
                                  config_.model);
  });
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

SystemMonitor::SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                             std::vector<MeasurementInfo> infos,
                             std::vector<PairModel> models,
                             std::vector<ScoreAverager> measurement_averages,
                             ScoreAverager system_average, std::size_t steps)
    : config_(config),
      graph_(std::move(graph)),
      infos_(std::move(infos)),
      models_(std::move(models)),
      pool_(config.threads),
      measurement_avg_(std::move(measurement_averages)),
      system_avg_(system_average),
      steps_(steps) {
  if (models_.size() != graph_.PairCount() ||
      graph_.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor: checkpoint parts are inconsistent");
  }
  measurement_avg_.resize(infos_.size());
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

void SystemMonitor::CheckInvariants(bool deep) const {
  PMCORR_ASSERT(models_.size() == graph_.PairCount(),
                models_.size() << " models for " << graph_.PairCount()
                               << " graph pairs");
  PMCORR_ASSERT(infos_.size() == graph_.MeasurementCount(),
                infos_.size() << " infos for " << graph_.MeasurementCount()
                              << " graph measurements");
  PMCORR_ASSERT(measurement_avg_.size() == infos_.size(),
                measurement_avg_.size() << " averagers for " << infos_.size()
                                        << " measurements");
  for (std::size_t i = 0; i < graph_.PairCount(); ++i) {
    const PairId& pair = graph_.Pair(i);
    PMCORR_ASSERT(pair.a.valid() && pair.b.valid() &&
                      static_cast<std::size_t>(pair.a.value) < infos_.size() &&
                      static_cast<std::size_t>(pair.b.value) < infos_.size(),
                  "pair " << i << " references invalid measurements");
  }
  PMCORR_ASSERT(std::isfinite(system_avg_.Sum()),
                "system average sum " << system_avg_.Sum());
  PMCORR_ASSERT(system_avg_.Count() <= steps_,
                "system average over " << system_avg_.Count() << " of "
                                       << steps_ << " steps");
  for (const ScoreAverager& avg : measurement_avg_) {
    PMCORR_ASSERT(std::isfinite(avg.Sum()) && avg.Count() <= steps_,
                  "measurement average sum " << avg.Sum() << " count "
                                             << avg.Count());
  }
  if (deep) {
    for (const PairModel& model : models_) model.CheckInvariants();
  }
}

void SystemMonitor::FinishSnapshot(SystemSnapshot& snap) {
  // Level 2: Q^a = mean of the engaged pair scores on a's links.
  snap.measurement_scores.resize(infos_.size());
  for (std::size_t a = 0; a < infos_.size(); ++a) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t pi :
         graph_.PairsOf(MeasurementId(static_cast<std::int32_t>(a)))) {
      if (snap.pair_scores[pi]) {
        sum += *snap.pair_scores[pi];
        ++n;
      }
    }
    if (n > 0) {
      snap.measurement_scores[a] = sum / static_cast<double>(n);
      measurement_avg_[a].Add(*snap.measurement_scores[a]);
    }
  }

  // Level 3: Q = mean of engaged measurement scores.
  snap.system_score = AggregateScores(snap.measurement_scores);
  system_avg_.Add(snap.system_score);

  ++steps_;
}

SystemSnapshot SystemMonitor::Step(std::span<const double> values,
                                   TimePoint tp) {
  if (values.size() != infos_.size()) {
    throw std::invalid_argument("SystemMonitor::Step: value count mismatch");
  }

  SystemSnapshot snap;
  snap.sample = steps_;
  snap.time = tp;
  snap.pair_scores.resize(graph_.PairCount());

  step_scratch_.assign(graph_.PairCount(), StepOutcome{});
  std::vector<StepOutcome>& outcomes = step_scratch_;
  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    outcomes[i] = models_[i].Step(
        values[static_cast<std::size_t>(pair.a.value)],
        values[static_cast<std::size_t>(pair.b.value)]);
  });

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StepOutcome& out = outcomes[i];
    if (out.has_score) snap.pair_scores[i] = out.fitness;
    if (out.alarm) {
      snap.alarmed_pairs.push_back(i);
      alarm_log_.Record({tp, i, out.fitness, out.outlier});
    }
    if (out.outlier) ++snap.outlier_pairs;
    if (out.extended_grid) ++snap.extended_pairs;
  }

  FinishSnapshot(snap);
  // Shallow: each PairModel::Step above already audited its own model.
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return snap;
}

std::size_t SystemMonitor::BatchSamples(std::size_t pair_count) const {
  if (config_.batch_samples != 0) return config_.batch_samples;
  // Auto: bound the sweep buffer (pair_count x batch SweepCells) near
  // 32 MiB. Large batches amortize the fork/join barrier; the exact size
  // never changes results.
  constexpr std::size_t kBufferBytes = 32u << 20;
  const std::size_t per_sample =
      std::max<std::size_t>(1, pair_count) * sizeof(SweepCell);
  return std::max<std::size_t>(1, kBufferBytes / per_sample);
}

std::vector<SystemSnapshot> SystemMonitor::Run(const MeasurementFrame& test) {
  if (test.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::Run: test frame measurement count mismatch");
  }
  const std::size_t samples = test.SampleCount();
  const std::size_t pairs = graph_.PairCount();
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(samples);
  if (samples == 0) return snapshots;

  // Per-pair input columns, resolved once for the whole run.
  std::vector<std::span<const double>> xs(pairs), ys(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const PairId& pair = graph_.Pair(i);
    xs[i] = test.Series(pair.a).Values();
    ys[i] = test.Series(pair.b).Values();
  }

  const std::size_t batch = BatchSamples(pairs);
  const std::size_t shard_count = pool_.ShardCountFor(pairs);
  std::vector<SweepCell> cells;
  std::vector<AlarmLog> shard_logs;

  for (std::size_t t0 = 0; t0 < samples; t0 += batch) {
    const std::size_t t1 = std::min(samples, t0 + batch);
    const std::size_t width = t1 - t0;

    // Pair-major sweep: each worker advances every model of its shard
    // through the whole batch in one pass. Pair state is private to the
    // pair, so shards never contend; alarms go to a shard-local log.
    cells.assign(pairs * width, SweepCell{});
    shard_logs.assign(shard_count, AlarmLog{});
    pool_.ParallelShards(pairs, [&](const ShardRange& shard) {
      AlarmLog& log = shard_logs[shard.index];
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        PairModel& model = models_[i];
        std::span<const double> x = xs[i];
        std::span<const double> y = ys[i];
        SweepCell* row = cells.data() + i * width;
        for (std::size_t t = t0; t < t1; ++t) {
          const StepOutcome out = model.Step(x[t], y[t]);
          SweepCell& cell = row[t - t0];
          cell.fitness = out.fitness;
          cell.has_score = out.has_score;
          cell.alarm = out.alarm;
          cell.outlier = out.outlier;
          cell.extended = out.extended_grid;
          if (out.alarm) {
            log.Record({test.TimeAt(t), i, out.fitness, out.outlier});
          }
        }
      }
    });
    alarm_log_.AppendMerged(std::move(shard_logs));
    shard_logs.clear();

    // Merge phase: assemble snapshots in time order with the exact
    // arithmetic of Step (FinishSnapshot), so the stream is bitwise
    // identical to the sample-major loop.
    for (std::size_t t = t0; t < t1; ++t) {
      SystemSnapshot snap;
      snap.sample = steps_;
      snap.time = test.TimeAt(t);
      snap.pair_scores.resize(pairs);
      for (std::size_t i = 0; i < pairs; ++i) {
        const SweepCell& cell = cells[i * width + (t - t0)];
        if (cell.has_score) snap.pair_scores[i] = cell.fitness;
        if (cell.alarm) snap.alarmed_pairs.push_back(i);
        if (cell.outlier) ++snap.outlier_pairs;
        if (cell.extended) ++snap.extended_pairs;
      }
      FinishSnapshot(snap);
      snapshots.push_back(std::move(snap));
    }
  }
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return snapshots;
}

void SystemMonitor::ResetSequences() {
  for (auto& model : models_) model.ResetSequence();
}

void SystemMonitor::CalibrateThresholds(const MeasurementFrame& holdout,
                                        double target_false_positive_rate) {
  if (holdout.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::CalibrateThresholds: holdout measurement count"
        " mismatch");
  }
  pool_.ParallelFor(models_.size(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    const ThresholdCalibration calibration = CalibrateOnHoldout(
        models_[i], holdout.Series(pair.a).Values(),
        holdout.Series(pair.b).Values(), target_false_positive_rate);
    models_[i].SetAlarmThresholds(calibration.fitness_threshold,
                                  calibration.delta);
    models_[i].ResetSequence();
  });
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

}  // namespace pmcorr
