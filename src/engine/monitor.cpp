#include "engine/monitor.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "engine/fault_plan.h"

namespace pmcorr {
namespace {

// Compact per-(pair, sample) result of a pair-major sweep — only the
// fields the merge phase needs to assemble snapshots.
struct SweepCell {
  double fitness = 0.0;
  bool has_score = false;
  bool alarm = false;
  bool outlier = false;
  bool extended = false;
  // The quarantine skipped this (pair, sample) — or the pair tripped
  // mid-sample and produced nothing.
  bool skipped = false;
};

// Seeds the guard's cadence from the history frame so the very first
// monitored sample is already checked against the right period.
HealthConfig SeedPeriod(HealthConfig health, Duration period) {
  if (health.expected_period == 0) health.expected_period = period;
  return health;
}

}  // namespace

SystemMonitor::SystemMonitor(const MeasurementFrame& history,
                             MeasurementGraph graph, MonitorConfig config)
    : config_(config),
      graph_(std::move(graph)),
      infos_(history.Infos()),
      pool_(config.threads),
      guard_(infos_.size(), SeedPeriod(config.health, history.Period())),
      quarantine_(graph_.PairCount(), config.quarantine) {
  if (graph_.MeasurementCount() != history.MeasurementCount()) {
    throw std::invalid_argument(
        "SystemMonitor: graph and history measurement counts differ");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor: history needs at least two samples");
  }

  models_.resize(graph_.PairCount());
  measurement_avg_.resize(infos_.size());

  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    models_[i] = PairModel::Learn(history.Series(pair.a).Values(),
                                  history.Series(pair.b).Values(),
                                  config_.model);
  });
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

SystemMonitor::SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                             std::vector<MeasurementInfo> infos,
                             std::vector<PairModel> models,
                             std::vector<ScoreAverager> measurement_averages,
                             ScoreAverager system_average, std::size_t steps)
    : config_(config),
      graph_(std::move(graph)),
      infos_(std::move(infos)),
      models_(std::move(models)),
      pool_(config.threads),
      measurement_avg_(std::move(measurement_averages)),
      system_avg_(system_average),
      steps_(steps),
      guard_(infos_.size(), config.health),
      quarantine_(graph_.PairCount(), config.quarantine) {
  if (models_.size() != graph_.PairCount() ||
      graph_.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor: checkpoint parts are inconsistent");
  }
  measurement_avg_.resize(infos_.size());
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

void SystemMonitor::CheckInvariants(bool deep) const {
  PMCORR_ASSERT(models_.size() == graph_.PairCount(),
                models_.size() << " models for " << graph_.PairCount()
                               << " graph pairs");
  PMCORR_ASSERT(infos_.size() == graph_.MeasurementCount(),
                infos_.size() << " infos for " << graph_.MeasurementCount()
                              << " graph measurements");
  PMCORR_ASSERT(measurement_avg_.size() == infos_.size(),
                measurement_avg_.size() << " averagers for " << infos_.size()
                                        << " measurements");
  for (std::size_t i = 0; i < graph_.PairCount(); ++i) {
    const PairId& pair = graph_.Pair(i);
    PMCORR_ASSERT(pair.a.valid() && pair.b.valid() &&
                      static_cast<std::size_t>(pair.a.value) < infos_.size() &&
                      static_cast<std::size_t>(pair.b.value) < infos_.size(),
                  "pair " << i << " references invalid measurements");
  }
  PMCORR_ASSERT(
      quarantine_.QuarantinedCount() + quarantine_.RetiredCount() <=
          graph_.PairCount(),
      quarantine_.QuarantinedCount() << " quarantined + "
                                     << quarantine_.RetiredCount()
                                     << " retired pairs exceed "
                                     << graph_.PairCount());
  if (guard_.Enabled()) {
    PMCORR_ASSERT(guard_.HealthStates().size() == infos_.size(),
                  "guard tracks " << guard_.HealthStates().size() << " of "
                                  << infos_.size() << " measurements");
  }
  PMCORR_ASSERT(std::isfinite(system_avg_.Sum()),
                "system average sum " << system_avg_.Sum());
  PMCORR_ASSERT(system_avg_.Count() <= steps_,
                "system average over " << system_avg_.Count() << " of "
                                       << steps_ << " steps");
  for (const ScoreAverager& avg : measurement_avg_) {
    PMCORR_ASSERT(std::isfinite(avg.Sum()) && avg.Count() <= steps_,
                  "measurement average sum " << avg.Sum() << " count "
                                             << avg.Count());
  }
  if (deep) {
    for (const PairModel& model : models_) model.CheckInvariants();
  }
}

void SystemMonitor::FinishSnapshot(SystemSnapshot& snap) {
  // Level 2: Q^a = mean of the engaged pair scores on a's links.
  snap.measurement_scores.resize(infos_.size());
  for (std::size_t a = 0; a < infos_.size(); ++a) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t pi :
         graph_.PairsOf(MeasurementId(static_cast<std::int32_t>(a)))) {
      if (snap.pair_scores[pi]) {
        sum += *snap.pair_scores[pi];
        ++n;
      }
    }
    if (n > 0) {
      snap.measurement_scores[a] = sum / static_cast<double>(n);
      measurement_avg_[a].Add(*snap.measurement_scores[a]);
    }
  }

  // Level 3: Q = mean of engaged measurement scores.
  snap.system_score = AggregateScores(snap.measurement_scores);
  system_avg_.Add(snap.system_score);

  ++steps_;
}

SystemSnapshot SystemMonitor::Step(std::span<const double> values,
                                   TimePoint tp) {
  if (values.size() != infos_.size()) {
    throw std::invalid_argument("SystemMonitor::Step: value count mismatch");
  }

  // Ingest guard: inspect the arriving row against the cadence, suppress
  // frozen/duplicate/out-of-order values to NaN (the models' documented
  // missing-sample path), and break transition sequences across gaps.
  // On a clean on-cadence row the copied values are bit-identical to the
  // caller's, so the engine's arithmetic is unchanged.
  std::span<const double> use = values;
  SampleReport report;
  if (guard_.Enabled()) {
    guard_values_.assign(values.begin(), values.end());
    report = guard_.Filter(guard_values_, tp);
    // Models only — not the public ResetSequences(), which would also
    // reset the guard's stream clock and blind it to the next
    // duplicate/out-of-order arrival of a storm.
    if (report.sequence_break) {
      for (PairModel& model : models_) model.ResetSequence();
    }
    use = guard_values_;
  }

  SystemSnapshot snap;
  snap.sample = steps_;
  snap.time = tp;
  snap.stream_event = report.event;
  snap.suppressed_values = report.suppressed;
  snap.pair_scores.resize(graph_.PairCount());

  step_scratch_.assign(graph_.PairCount(), StepOutcome{});
  step_skipped_.assign(graph_.PairCount(), 0);
  std::vector<StepOutcome>& outcomes = step_scratch_;
  const std::size_t sample_index = steps_;
  const bool guarded = quarantine_.Enabled() || fault_plan_ != nullptr;
  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    const double x = use[static_cast<std::size_t>(pair.a.value)];
    const double y = use[static_cast<std::size_t>(pair.b.value)];
    if (!guarded) {
      outcomes[i] = models_[i].Step(x, y);
      return;
    }
    switch (quarantine_.BeginStep(i, sample_index)) {
      case PairQuarantine::Decision::kSkip:
        step_skipped_[i] = 1;
        return;
      case PairQuarantine::Decision::kRunAfterReset:
        models_[i].ResetSequence();
        break;
      case PairQuarantine::Decision::kRun:
        break;
    }
    try {
      if (fault_plan_ != nullptr) fault_plan_->CheckPairStep(i, sample_index);
      outcomes[i] = models_[i].Step(x, y);
      quarantine_.RecordSuccess(i, sample_index, outcomes[i].outlier);
    } catch (const std::exception& e) {
      if (!quarantine_.Enabled()) throw;
      outcomes[i] = StepOutcome{};
      quarantine_.RecordFailure(i, sample_index, e.what());
      step_skipped_[i] = 1;
    }
  });

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StepOutcome& out = outcomes[i];
    if (out.has_score) snap.pair_scores[i] = out.fitness;
    if (out.alarm) {
      snap.alarmed_pairs.push_back(i);
      alarm_log_.Record({tp, i, out.fitness, out.outlier});
    }
    if (out.outlier) ++snap.outlier_pairs;
    if (out.extended_grid) ++snap.extended_pairs;
    if (step_skipped_[i] != 0) ++snap.quarantined_pairs;
  }
  if (guard_.Enabled()) snap.measurement_health = guard_.HealthStates();

  FinishSnapshot(snap);
  // Shallow: each PairModel::Step above already audited its own model.
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return snap;
}

std::size_t SystemMonitor::BatchSamples(std::size_t pair_count) const {
  if (config_.batch_samples != 0) return config_.batch_samples;
  // Auto: bound the sweep buffer (pair_count x batch SweepCells) near
  // 32 MiB. Large batches amortize the fork/join barrier; the exact size
  // never changes results.
  constexpr std::size_t kBufferBytes = 32u << 20;
  const std::size_t per_sample =
      std::max<std::size_t>(1, pair_count) * sizeof(SweepCell);
  return std::max<std::size_t>(1, kBufferBytes / per_sample);
}

std::vector<SystemSnapshot> SystemMonitor::Run(const MeasurementFrame& test) {
  if (test.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::Run: test frame measurement count mismatch");
  }
  const std::size_t samples = test.SampleCount();
  const std::size_t pairs = graph_.PairCount();
  const std::size_t m = infos_.size();
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(samples);
  if (samples == 0) return snapshots;

  // Ingest-guard pre-pass, in time order (the guard is a serial state
  // machine). A frame's timestamps are an on-cadence grid by
  // construction, so the only degradations possible here are frozen
  // values and NaN runs; the `filtered` column copy is built lazily and
  // only if the guard actually suppressed something — on a clean frame
  // the sweep reads the caller's columns, untouched.
  std::vector<SampleReport> reports;
  std::vector<MeasurementHealth> health_timeline;
  std::vector<std::vector<double>> filtered;
  std::vector<std::uint8_t> seq_break;
  bool any_break = false;
  if (guard_.Enabled()) {
    // Each Run() call is its own segment: a frame's grid timestamps are
    // self-consistent but carry no relation to a previous frame's (test
    // harnesses and replay tools restart the clock per frame), so the
    // stream clock resets here. Cross-call continuity checking is the
    // Step path's job — that is where degraded streams actually arrive.
    guard_.ResetTiming();
    std::vector<std::span<const double>> cols(m);
    for (std::size_t a = 0; a < m; ++a) {
      cols[a] =
          test.Series(MeasurementId(static_cast<std::int32_t>(a))).Values();
    }
    reports.resize(samples);
    seq_break.assign(samples, 0);
    health_timeline.reserve(samples * m);
    std::vector<double> row(m);
    for (std::size_t t = 0; t < samples; ++t) {
      for (std::size_t a = 0; a < m; ++a) row[a] = cols[a][t];
      reports[t] = guard_.Filter(row, test.TimeAt(t));
      if (reports[t].sequence_break) {
        seq_break[t] = 1;
        any_break = true;
      }
      if (reports[t].suppressed > 0) {
        if (filtered.empty()) {
          filtered.resize(m);
          for (std::size_t a = 0; a < m; ++a) {
            filtered[a].assign(cols[a].begin(), cols[a].end());
          }
        }
        for (std::size_t a = 0; a < m; ++a) filtered[a][t] = row[a];
      }
      for (std::size_t a = 0; a < m; ++a) {
        health_timeline.push_back(guard_.Health(a));
      }
    }
  }

  // Per-pair input columns, resolved once for the whole run.
  std::vector<std::span<const double>> xs(pairs), ys(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const PairId& pair = graph_.Pair(i);
    if (!filtered.empty()) {
      xs[i] = filtered[static_cast<std::size_t>(pair.a.value)];
      ys[i] = filtered[static_cast<std::size_t>(pair.b.value)];
    } else {
      xs[i] = test.Series(pair.a).Values();
      ys[i] = test.Series(pair.b).Values();
    }
  }

  const std::size_t batch = BatchSamples(pairs);
  const std::size_t shard_count = pool_.ShardCountFor(pairs);
  std::vector<SweepCell> cells;
  std::vector<AlarmLog> shard_logs;

  for (std::size_t t0 = 0; t0 < samples; t0 += batch) {
    const std::size_t t1 = std::min(samples, t0 + batch);
    const std::size_t width = t1 - t0;
    // Engine sample index of frame position t0 (steps_ advances in the
    // merge phase, so at the top of each batch it equals t0's index).
    const std::size_t base_sample = steps_;

    // The guarded per-sample sweep only engages when it can matter: a
    // scripted fault plan, an armed outlier breaker, or a pair that has
    // already tripped. Otherwise the original unguarded hot loop runs —
    // its only addition is a per-pair try/catch (zero-cost until a
    // throw) so a first-ever trip quarantines the pair instead of
    // killing the run.
    const bool guarded =
        fault_plan_ != nullptr ||
        (quarantine_.Enabled() && (config_.quarantine.outlier_burst > 0 ||
                                   quarantine_.AnyDisengaged()));

    // Pair-major sweep: each worker advances every model of its shard
    // through the whole batch in one pass. Pair state is private to the
    // pair (including its quarantine slot), so shards never contend;
    // alarms go to a shard-local log.
    cells.assign(pairs * width, SweepCell{});
    shard_logs.assign(shard_count, AlarmLog{});
    pool_.ParallelShards(pairs, [&](const ShardRange& shard) {
      AlarmLog& log = shard_logs[shard.index];

      // Quarantine-aware per-sample loop for pair i from frame position
      // t_start: skips quarantined samples, runs probation retries
      // (after a sequence reset), and converts a throwing step into a
      // recorded trip. Bitwise identical to the fast loop while the
      // pair never trips.
      const auto sweep_guarded =
          [&](std::size_t i, PairModel& model, std::span<const double> x,
              std::span<const double> y, SweepCell* row,
              std::size_t t_start) {
            for (std::size_t t = t_start; t < t1; ++t) {
              const std::size_t s = base_sample + (t - t0);
              SweepCell& cell = row[t - t0];
              const PairQuarantine::Decision decision =
                  quarantine_.BeginStep(i, s);
              if (decision == PairQuarantine::Decision::kSkip) {
                cell.skipped = true;
                continue;
              }
              if (decision == PairQuarantine::Decision::kRunAfterReset ||
                  (any_break && seq_break[t] != 0)) {
                model.ResetSequence();
              }
              try {
                if (fault_plan_ != nullptr) fault_plan_->CheckPairStep(i, s);
                const StepOutcome out = model.Step(x[t], y[t]);
                quarantine_.RecordSuccess(i, s, out.outlier);
                cell.fitness = out.fitness;
                cell.has_score = out.has_score;
                cell.alarm = out.alarm;
                cell.outlier = out.outlier;
                cell.extended = out.extended_grid;
                if (out.alarm) {
                  log.Record({test.TimeAt(t), i, out.fitness, out.outlier});
                }
              } catch (const std::exception& e) {
                if (!quarantine_.Enabled()) throw;
                quarantine_.RecordFailure(i, s, e.what());
                cell.skipped = true;
              }
            }
          };

      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        PairModel& model = models_[i];
        std::span<const double> x = xs[i];
        std::span<const double> y = ys[i];
        SweepCell* row = cells.data() + i * width;
        if (guarded) {
          sweep_guarded(i, model, x, y, row, t0);
          continue;
        }
        std::size_t t = t0;
        try {
          for (; t < t1; ++t) {
            if (any_break && seq_break[t] != 0) model.ResetSequence();
            const StepOutcome out = model.Step(x[t], y[t]);
            SweepCell& cell = row[t - t0];
            cell.fitness = out.fitness;
            cell.has_score = out.has_score;
            cell.alarm = out.alarm;
            cell.outlier = out.outlier;
            cell.extended = out.extended_grid;
            if (out.alarm) {
              log.Record({test.TimeAt(t), i, out.fitness, out.outlier});
            }
          }
        } catch (const std::exception& e) {
          if (!quarantine_.Enabled()) throw;
          // First-ever trip for this pair: quarantine it and finish its
          // batch on the guarded loop so an in-batch probation retry
          // still happens exactly where the sample-major path would
          // retry it.
          quarantine_.RecordFailure(i, base_sample + (t - t0), e.what());
          row[t - t0].skipped = true;
          sweep_guarded(i, model, x, y, row, t + 1);
        }
      }
    });
    alarm_log_.AppendMerged(std::move(shard_logs));
    shard_logs.clear();

    // Merge phase: assemble snapshots in time order with the exact
    // arithmetic of Step (FinishSnapshot), so the stream is bitwise
    // identical to the sample-major loop.
    for (std::size_t t = t0; t < t1; ++t) {
      SystemSnapshot snap;
      snap.sample = steps_;
      snap.time = test.TimeAt(t);
      snap.pair_scores.resize(pairs);
      for (std::size_t i = 0; i < pairs; ++i) {
        const SweepCell& cell = cells[i * width + (t - t0)];
        if (cell.has_score) snap.pair_scores[i] = cell.fitness;
        if (cell.alarm) snap.alarmed_pairs.push_back(i);
        if (cell.outlier) ++snap.outlier_pairs;
        if (cell.extended) ++snap.extended_pairs;
        if (cell.skipped) ++snap.quarantined_pairs;
      }
      if (guard_.Enabled()) {
        snap.stream_event = reports[t].event;
        snap.suppressed_values = reports[t].suppressed;
        snap.measurement_health.assign(
            health_timeline.begin() + static_cast<std::ptrdiff_t>(t * m),
            health_timeline.begin() + static_cast<std::ptrdiff_t>((t + 1) * m));
      }
      FinishSnapshot(snap);
      snapshots.push_back(std::move(snap));
    }
  }
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return snapshots;
}

std::size_t SystemMonitor::AddPair(PairId pair, PairModel model) {
  // graph_.AddPair validates (range vs the measurement set, self-pair,
  // duplicate) and keeps existing indices stable.
  const std::size_t index = graph_.AddPair(pair);
  model.ResetSequence();
  models_.push_back(std::move(model));
  quarantine_.AddPair();
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return index;
}

std::size_t SystemMonitor::AddPair(PairId pair,
                                   const MeasurementFrame& history) {
  if (history.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::AddPair: history measurement count mismatch");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor::AddPair: history needs at least two samples");
  }
  if (!pair.valid() ||
      static_cast<std::size_t>(pair.b.value) >= infos_.size()) {
    throw std::invalid_argument("SystemMonitor::AddPair: pair out of range");
  }
  PairModel model =
      PairModel::Learn(history.Series(pair.a).Values(),
                       history.Series(pair.b).Values(), config_.model);
  return AddPair(pair, std::move(model));
}

void SystemMonitor::RetirePair(std::size_t pair_index) {
  if (pair_index >= graph_.PairCount()) {
    throw std::out_of_range("SystemMonitor::RetirePair: pair index " +
                            std::to_string(pair_index) + " of " +
                            std::to_string(graph_.PairCount()));
  }
  if (!quarantine_.Enabled()) {
    throw std::logic_error(
        "SystemMonitor::RetirePair: needs the quarantine disengage path "
        "(config.quarantine.enabled)");
  }
  quarantine_.Retire(pair_index, "administratively retired");
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
}

void SystemMonitor::ResetSequences() {
  for (auto& model : models_) model.ResetSequence();
  // A segment boundary also resets the ingest guard's stream clock and
  // frozen-value history: the next sample legitimately starts a new
  // timeline. Health states and lifetime counters persist.
  guard_.ResetTiming();
}

void SystemMonitor::CalibrateThresholds(const MeasurementFrame& holdout,
                                        double target_false_positive_rate) {
  if (holdout.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::CalibrateThresholds: holdout measurement count"
        " mismatch");
  }
  pool_.ParallelFor(models_.size(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    const ThresholdCalibration calibration = CalibrateOnHoldout(
        models_[i], holdout.Series(pair.a).Values(),
        holdout.Series(pair.b).Values(), target_false_positive_rate);
    models_[i].SetAlarmThresholds(calibration.fitness_threshold,
                                  calibration.delta);
    models_[i].ResetSequence();
  });
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

}  // namespace pmcorr
