#include "engine/monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "engine/fault_plan.h"

namespace pmcorr {
namespace {

// Seeds the guard's cadence from the history frame so the very first
// monitored sample is already checked against the right period.
HealthConfig SeedPeriod(HealthConfig health, Duration period) {
  if (health.expected_period == 0) health.expected_period = period;
  return health;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Bitwise double equality — delta change detection distinguishes NaN
// payloads and signed zeros, so reconstruction is exact, not within-eps.
bool SameBits(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// Dispatches a stack lambda through the pool's allocation-free region
// path: a stateless trampoline recovers the concrete callable from the
// context pointer, so no std::function (and no heap) is involved.
template <typename Fn>
void RunShards(ThreadPool& pool, std::size_t count, Fn& fn,
               std::size_t max_shards = 0) {
  pool.ParallelShardsStatic(
      count,
      [](void* ctx, const ShardRange& range) {
        (*static_cast<Fn*>(ctx))(range);
      },
      &fn, max_shards);
}

}  // namespace

SystemMonitor::SystemMonitor(const MeasurementFrame& history,
                             MeasurementGraph graph, MonitorConfig config)
    : config_(config),
      graph_(std::move(graph)),
      infos_(history.Infos()),
      pool_(config.threads),
      guard_(infos_.size(), SeedPeriod(config.health, history.Period())),
      quarantine_(graph_.PairCount(), config.quarantine) {
  if (graph_.MeasurementCount() != history.MeasurementCount()) {
    throw std::invalid_argument(
        "SystemMonitor: graph and history measurement counts differ");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor: history needs at least two samples");
  }

  models_.resize(graph_.PairCount());
  measurement_avg_.resize(infos_.size());

  pool_.ParallelFor(graph_.PairCount(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    models_[i] = PairModel::Learn(history.Series(pair.a).Values(),
                                  history.Series(pair.b).Values(),
                                  config_.model);
  });
  if (config_.retrain.enabled) {
    retrain_ = std::make_unique<RetrainPool>(config_.model,
                                             config_.retrain.pool);
    for (std::size_t i = 0; i < graph_.PairCount(); ++i) {
      const PairId& pair = graph_.Pair(i);
      retrain_->RegisterWindow(history.Series(pair.a).Values(),
                               history.Series(pair.b).Values());
    }
  }
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

SystemMonitor::SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                             std::vector<MeasurementInfo> infos,
                             std::vector<PairModel> models,
                             std::vector<ScoreAverager> measurement_averages,
                             ScoreAverager system_average, std::size_t steps)
    : config_(config),
      graph_(std::move(graph)),
      infos_(std::move(infos)),
      models_(std::move(models)),
      pool_(config.threads),
      measurement_avg_(std::move(measurement_averages)),
      system_avg_(system_average),
      steps_(steps),
      guard_(infos_.size(), config.health),
      quarantine_(graph_.PairCount(), config.quarantine) {
  if (models_.size() != graph_.PairCount() ||
      graph_.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor: checkpoint parts are inconsistent");
  }
  measurement_avg_.resize(infos_.size());
  if (config_.retrain.enabled) {
    // Windows are not checkpointed: every pair starts empty and the
    // pool's min_samples gate holds rebuilds until they refill live.
    retrain_ = std::make_unique<RetrainPool>(config_.model,
                                             config_.retrain.pool);
    for (std::size_t i = 0; i < graph_.PairCount(); ++i) {
      retrain_->RegisterWindow({}, {});
    }
  }
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

void SystemMonitor::CheckInvariants(bool deep) const {
  PMCORR_ASSERT(models_.size() == graph_.PairCount(),
                models_.size() << " models for " << graph_.PairCount()
                               << " graph pairs");
  PMCORR_ASSERT(infos_.size() == graph_.MeasurementCount(),
                infos_.size() << " infos for " << graph_.MeasurementCount()
                              << " graph measurements");
  PMCORR_ASSERT(measurement_avg_.size() == infos_.size(),
                measurement_avg_.size() << " averagers for " << infos_.size()
                                        << " measurements");
  for (std::size_t i = 0; i < graph_.PairCount(); ++i) {
    const PairId& pair = graph_.Pair(i);
    PMCORR_ASSERT(pair.a.valid() && pair.b.valid() &&
                      static_cast<std::size_t>(pair.a.value) < infos_.size() &&
                      static_cast<std::size_t>(pair.b.value) < infos_.size(),
                  "pair " << i << " references invalid measurements");
  }
  PMCORR_ASSERT(
      quarantine_.QuarantinedCount() + quarantine_.RetiredCount() <=
          graph_.PairCount(),
      quarantine_.QuarantinedCount() << " quarantined + "
                                     << quarantine_.RetiredCount()
                                     << " retired pairs exceed "
                                     << graph_.PairCount());
  if (guard_.Enabled()) {
    PMCORR_ASSERT(guard_.HealthStates().size() == infos_.size(),
                  "guard tracks " << guard_.HealthStates().size() << " of "
                                  << infos_.size() << " measurements");
  }
  PMCORR_ASSERT(std::isfinite(system_avg_.Sum()),
                "system average sum " << system_avg_.Sum());
  PMCORR_ASSERT(system_avg_.Count() <= steps_,
                "system average over " << system_avg_.Count() << " of "
                                       << steps_ << " steps");
  for (const ScoreAverager& avg : measurement_avg_) {
    PMCORR_ASSERT(std::isfinite(avg.Sum()) && avg.Count() <= steps_,
                  "measurement average sum " << avg.Sum() << " count "
                                             << avg.Count());
  }
  if (deep) {
    for (const PairModel& model : models_) model.CheckInvariants();
  }
}

void SystemMonitor::ComputeAggregates(SystemSnapshot& snap) const {
  // Level 2: Q^a = mean of the engaged pair scores on a's links.
  snap.measurement_scores.assign(infos_.size(), std::nullopt);
  for (std::size_t a = 0; a < infos_.size(); ++a) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t pi :
         graph_.PairsOf(MeasurementId(static_cast<std::int32_t>(a)))) {
      if (snap.pair_scores[pi]) {
        sum += *snap.pair_scores[pi];
        ++n;
      }
    }
    if (n > 0) snap.measurement_scores[a] = sum / static_cast<double>(n);
  }

  // Level 3: Q = mean of engaged measurement scores.
  snap.system_score = AggregateScores(snap.measurement_scores);
}

void SystemMonitor::FinishSnapshot(SystemSnapshot& snap) {
  ComputeAggregates(snap);
  // Lifetime aggregates, strictly in time order: floating-point
  // accumulation order is part of the bitwise contract.
  for (std::size_t a = 0; a < infos_.size(); ++a) {
    if (snap.measurement_scores[a]) {
      measurement_avg_[a].Add(*snap.measurement_scores[a]);
    }
  }
  system_avg_.Add(snap.system_score);
  ++steps_;
}

SystemSnapshot SystemMonitor::Step(std::span<const double> values,
                                   TimePoint tp) {
  SystemSnapshot snap;
  Step(values, tp, snap);
  return snap;
}

void SystemMonitor::Step(std::span<const double> values, TimePoint tp,
                         SystemSnapshot& out) {
  if (values.size() != infos_.size()) {
    throw std::invalid_argument("SystemMonitor::Step: value count mismatch");
  }
  delta_valid_ = false;

  // Ingest guard: inspect the arriving row against the cadence, suppress
  // frozen/duplicate/out-of-order values to NaN (the models' documented
  // missing-sample path), and break transition sequences across gaps.
  // On a clean on-cadence row the copied values are bit-identical to the
  // caller's, so the engine's arithmetic is unchanged.
  std::span<const double> use = values;
  SampleReport report;
  if (guard_.Enabled()) {
    guard_values_.assign(values.begin(), values.end());
    report = guard_.Filter(guard_values_, tp);
    // Models only — not the public ResetSequences(), which would also
    // reset the guard's stream clock and blind it to the next
    // duplicate/out-of-order arrival of a storm.
    if (report.sequence_break) {
      for (PairModel& model : models_) model.ResetSequence();
    }
    use = guard_values_;
  }

  const std::size_t pairs = graph_.PairCount();
  out.sample = steps_;
  out.time = tp;
  out.pair_scores.assign(pairs, std::nullopt);
  out.system_score = std::nullopt;
  out.alarmed_pairs.clear();
  out.outlier_pairs = 0;
  out.extended_pairs = 0;
  out.stream_event = report.event;
  out.measurement_health.clear();
  out.suppressed_values = report.suppressed;
  out.quarantined_pairs = 0;

  step_scratch_.assign(pairs, StepOutcome{});
  step_skipped_.assign(pairs, 0);
  std::vector<StepOutcome>& outcomes = step_scratch_;
  const std::size_t sample_index = steps_;
  const bool guarded = quarantine_.Enabled() || fault_plan_ != nullptr;
  auto step_worker = [&](const ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const PairId& pair = graph_.Pair(i);
      const double x = use[static_cast<std::size_t>(pair.a.value)];
      const double y = use[static_cast<std::size_t>(pair.b.value)];
      if (retrain_ != nullptr) {
        // Adopt a finished rebuild before this sample is scored, so the
        // sample is judged by exactly one model and swaps land on
        // sample boundaries (the pool's Step-mode contract); then
        // buffer the guard-filtered sample — quarantined pairs keep
        // buffering, so their eventual rebuild sees the full stream.
        if (std::unique_ptr<PairModel> fresh = retrain_->TakeAdoptable(i)) {
          models_[i] = std::move(*fresh);
        }
        retrain_->Observe(i, x, y);
      }
      if (!guarded) {
        outcomes[i] = models_[i].Step(x, y);
        continue;
      }
      switch (quarantine_.BeginStep(i, sample_index)) {
        case PairQuarantine::Decision::kSkip:
          step_skipped_[i] = 1;
          continue;
        case PairQuarantine::Decision::kRunAfterReset:
          models_[i].ResetSequence();
          break;
        case PairQuarantine::Decision::kRun:
          break;
      }
      try {
        if (fault_plan_ != nullptr) {
          fault_plan_->CheckPairStep(i, sample_index);
        }
        outcomes[i] = models_[i].Step(x, y);
        quarantine_.RecordSuccess(i, sample_index, outcomes[i].outlier);
      } catch (const std::exception& e) {
        if (!quarantine_.Enabled()) throw;
        outcomes[i] = StepOutcome{};
        quarantine_.RecordFailure(i, sample_index, e.what());
        step_skipped_[i] = 1;
      }
    }
  };
  RunShards(pool_, pairs, step_worker);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StepOutcome& o = outcomes[i];
    if (o.has_score) out.pair_scores[i] = o.fitness;
    if (o.alarm) {
      out.alarmed_pairs.push_back(i);
      alarm_log_.Record({tp, i, o.fitness, o.outlier});
    }
    if (o.outlier) ++out.outlier_pairs;
    if (o.extended_grid) ++out.extended_pairs;
    if (step_skipped_[i] != 0) ++out.quarantined_pairs;
  }
  if (guard_.Enabled()) guard_.CopyHealthStates(out.measurement_health);

  FinishSnapshot(out);
  // Shallow: each PairModel::Step above already audited its own model.
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
}

std::size_t SystemMonitor::BatchSamples(std::size_t pair_count) const {
  if (config_.batch_samples != 0) return config_.batch_samples;
  // Auto: bound the sweep buffer (pair_count x batch SweepCells) near
  // 32 MiB. Large batches amortize the fork/join barrier; the exact size
  // never changes results.
  constexpr std::size_t kBufferBytes = 32u << 20;
  const std::size_t per_sample =
      std::max<std::size_t>(1, pair_count) * sizeof(SweepCell);
  return std::max<std::size_t>(1, kBufferBytes / per_sample);
}

void SystemMonitor::BuildGuardPrepass(const MeasurementFrame& test,
                                      GuardPrepass& prepass) {
  const std::size_t samples = test.SampleCount();
  const std::size_t m = infos_.size();
  prepass.reports.clear();
  prepass.health_timeline.clear();
  prepass.filtered.clear();
  prepass.seq_break.clear();
  prepass.any_break = false;
  if (!guard_.Enabled()) return;

  // Each Run() call is its own segment: a frame's grid timestamps are
  // self-consistent but carry no relation to a previous frame's (test
  // harnesses and replay tools restart the clock per frame), so the
  // stream clock resets here. Cross-call continuity checking is the
  // Step path's job — that is where degraded streams actually arrive.
  guard_.ResetTiming();
  std::vector<std::span<const double>> cols(m);
  for (std::size_t a = 0; a < m; ++a) {
    cols[a] =
        test.Series(MeasurementId(static_cast<std::int32_t>(a))).Values();
  }
  prepass.reports.resize(samples);
  prepass.seq_break.assign(samples, 0);
  prepass.health_timeline.reserve(samples * m);
  std::vector<double> row(m);
  for (std::size_t t = 0; t < samples; ++t) {
    for (std::size_t a = 0; a < m; ++a) row[a] = cols[a][t];
    prepass.reports[t] = guard_.Filter(row, test.TimeAt(t));
    if (prepass.reports[t].sequence_break) {
      prepass.seq_break[t] = 1;
      prepass.any_break = true;
    }
    if (prepass.reports[t].suppressed > 0) {
      if (prepass.filtered.empty()) {
        prepass.filtered.resize(m);
        for (std::size_t a = 0; a < m; ++a) {
          prepass.filtered[a].assign(cols[a].begin(), cols[a].end());
        }
      }
      for (std::size_t a = 0; a < m; ++a) prepass.filtered[a][t] = row[a];
    }
    for (std::size_t a = 0; a < m; ++a) {
      prepass.health_timeline.push_back(guard_.Health(a));
    }
  }
}

std::vector<SystemSnapshot> SystemMonitor::Run(const MeasurementFrame& test) {
  std::vector<SystemSnapshot> snapshots;
  RunImpl(test, &snapshots, nullptr);
  return snapshots;
}

std::vector<SystemDelta> SystemMonitor::RunDelta(
    const MeasurementFrame& test) {
  std::vector<SystemDelta> deltas;
  RunImpl(test, nullptr, &deltas);
  return deltas;
}

void SystemMonitor::RunImpl(const MeasurementFrame& test,
                            std::vector<SystemSnapshot>* snapshots,
                            std::vector<SystemDelta>* deltas) {
  if (test.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::Run: test frame measurement count mismatch");
  }
  const std::size_t samples = test.SampleCount();
  const std::size_t pairs = graph_.PairCount();
  const std::size_t m = infos_.size();
  const bool want_delta = deltas != nullptr;
  run_stats_ = RunStats{};

  // Whether dirty-pair tracking survives from the last emitted tick
  // decides if the first delta of this run is a baseline. A full Run
  // leaves tracking invalid (it emits no deltas to diff against).
  const bool tracking_valid = delta_valid_;
  delta_valid_ = false;
  if (samples == 0) {
    delta_valid_ = want_delta && tracking_valid;
    return;
  }
  if (snapshots != nullptr) snapshots->reserve(samples);
  if (deltas != nullptr) deltas->reserve(samples);

  BuildGuardPrepass(test, run_guard_);
  const GuardPrepass& guard = run_guard_;

  // Per-pair input columns, resolved once for the whole run.
  run_xs_.resize(pairs);
  run_ys_.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const PairId& pair = graph_.Pair(i);
    if (!guard.filtered.empty()) {
      run_xs_[i] = guard.filtered[static_cast<std::size_t>(pair.a.value)];
      run_ys_[i] = guard.filtered[static_cast<std::size_t>(pair.b.value)];
    } else {
      run_xs_[i] = test.Series(pair.a).Values();
      run_ys_[i] = test.Series(pair.b).Values();
    }
  }

  const std::size_t batch = BatchSamples(pairs);
  const std::size_t shard_count = pool_.ShardCountFor(pairs);
  run_shard_logs_.resize(shard_count);
  for (AlarmLog& log : run_shard_logs_) log.Clear();

  for (std::size_t t0 = 0; t0 < samples; t0 += batch) {
    const std::size_t t1 = std::min(samples, t0 + batch);
    const std::size_t width = t1 - t0;
    // Engine sample index of frame position t0 (steps_ advances in the
    // assembly phase, so at the top of each batch it equals t0's index).
    const std::size_t base_sample = steps_;
    ++run_stats_.batches;

    // The guarded per-sample sweep only engages when it can matter: a
    // scripted fault plan, an armed outlier breaker, or a pair that has
    // already tripped. Otherwise the original unguarded hot loop runs —
    // its only addition is a per-pair try/catch (zero-cost until a
    // throw) so a first-ever trip quarantines the pair instead of
    // killing the run.
    const bool guarded =
        fault_plan_ != nullptr ||
        (quarantine_.Enabled() && (config_.quarantine.outlier_burst > 0 ||
                                   quarantine_.AnyDisengaged()));

    // Pair-major sweep: each worker advances every model of its shard
    // through the whole batch in one pass. Pair state is private to the
    // pair (including its quarantine slot), so shards never contend;
    // alarms go to a shard-local log, sorted by the worker itself so the
    // sort cost parallelizes too.
    const auto sweep_start = std::chrono::steady_clock::now();
    run_cells_.assign(pairs * width, SweepCell{});
    auto sweep_worker = [&](const ShardRange& shard) {
      AlarmLog& log = run_shard_logs_[shard.index];

      // Quarantine-aware per-sample loop for pair i from frame position
      // t_start: skips quarantined samples, runs probation retries
      // (after a sequence reset), and converts a throwing step into a
      // recorded trip. Bitwise identical to the fast loop while the
      // pair never trips.
      const auto sweep_guarded =
          [&](std::size_t i, PairModel& model, std::span<const double> x,
              std::span<const double> y, SweepCell* row,
              std::size_t t_start) {
            for (std::size_t t = t_start; t < t1; ++t) {
              const std::size_t s = base_sample + (t - t0);
              SweepCell& cell = row[t - t0];
              if (retrain_ != nullptr) retrain_->Observe(i, x[t], y[t]);
              const PairQuarantine::Decision decision =
                  quarantine_.BeginStep(i, s);
              if (decision == PairQuarantine::Decision::kSkip) {
                cell.skipped = true;
                continue;
              }
              if (decision == PairQuarantine::Decision::kRunAfterReset ||
                  (guard.any_break && guard.seq_break[t] != 0)) {
                model.ResetSequence();
              }
              try {
                if (fault_plan_ != nullptr) fault_plan_->CheckPairStep(i, s);
                const StepOutcome out = model.Step(x[t], y[t]);
                quarantine_.RecordSuccess(i, s, out.outlier);
                cell.fitness = out.fitness;
                cell.has_score = out.has_score;
                cell.alarm = out.alarm;
                cell.outlier = out.outlier;
                cell.extended = out.extended_grid;
                if (out.alarm) {
                  log.Record({test.TimeAt(t), i, out.fitness, out.outlier});
                }
              } catch (const std::exception& e) {
                if (!quarantine_.Enabled()) throw;
                quarantine_.RecordFailure(i, s, e.what());
                cell.skipped = true;
              }
            }
          };

      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        PairModel& model = models_[i];
        // Batched execution adopts at batch boundaries — the coarsest
        // sample boundary; a rebuild finishing mid-batch waits for the
        // next batch (or the next Step).
        if (retrain_ != nullptr) {
          if (std::unique_ptr<PairModel> fresh = retrain_->TakeAdoptable(i)) {
            model = std::move(*fresh);
          }
        }
        std::span<const double> x = run_xs_[i];
        std::span<const double> y = run_ys_[i];
        SweepCell* row = run_cells_.data() + i * width;
        if (guarded) {
          sweep_guarded(i, model, x, y, row, t0);
          continue;
        }
        std::size_t t = t0;
        try {
          for (; t < t1; ++t) {
            if (retrain_ != nullptr) retrain_->Observe(i, x[t], y[t]);
            if (guard.any_break && guard.seq_break[t] != 0) {
              model.ResetSequence();
            }
            const StepOutcome out = model.Step(x[t], y[t]);
            SweepCell& cell = row[t - t0];
            cell.fitness = out.fitness;
            cell.has_score = out.has_score;
            cell.alarm = out.alarm;
            cell.outlier = out.outlier;
            cell.extended = out.extended_grid;
            if (out.alarm) {
              log.Record({test.TimeAt(t), i, out.fitness, out.outlier});
            }
          }
        } catch (const std::exception& e) {
          if (!quarantine_.Enabled()) throw;
          // First-ever trip for this pair: quarantine it and finish its
          // batch on the guarded loop so an in-batch probation retry
          // still happens exactly where the sample-major path would
          // retry it.
          quarantine_.RecordFailure(i, base_sample + (t - t0), e.what());
          row[t - t0].skipped = true;
          sweep_guarded(i, model, x, y, row, t + 1);
        }
      }
      log.SortForMerge();
    };
    try {
      RunShards(pool_, pairs, sweep_worker);
    } catch (...) {
      // A throw with the quarantine disabled abandons the run; drop any
      // shard-local records so a later Run's merge starts clean.
      for (AlarmLog& log : run_shard_logs_) log.Clear();
      throw;
    }
    run_stats_.sweep_seconds += SecondsSince(sweep_start);

    const auto merge_start = std::chrono::steady_clock::now();
    alarm_log_.AppendMerged(std::span<AlarmLog>(run_shard_logs_),
                            run_merge_cursors_);
    run_stats_.alarm_merge_seconds += SecondsSince(merge_start);

    // Assembly phase: per-sample outputs are pure functions of the cell
    // arena and the guard pre-pass, so they build in parallel; only the
    // lifetime-averager updates run serially, in time order, with the
    // exact arithmetic of Step (FinishSnapshot) — the stream stays
    // bitwise identical to the sample-major loop.
    const auto assemble_start = std::chrono::steady_clock::now();
    if (snapshots != nullptr) {
      const std::size_t out_base = snapshots->size();
      snapshots->resize(out_base + width);
      auto assemble_worker = [&](const ShardRange& shard) {
        for (std::size_t off = shard.begin; off < shard.end; ++off) {
          const std::size_t t = t0 + off;
          SystemSnapshot& snap = (*snapshots)[out_base + off];
          snap.sample = base_sample + off;
          snap.time = test.TimeAt(t);
          snap.pair_scores.assign(pairs, std::nullopt);
          for (std::size_t i = 0; i < pairs; ++i) {
            const SweepCell& cell = run_cells_[i * width + off];
            if (cell.has_score) snap.pair_scores[i] = cell.fitness;
            if (cell.alarm) snap.alarmed_pairs.push_back(i);
            if (cell.outlier) ++snap.outlier_pairs;
            if (cell.extended) ++snap.extended_pairs;
            if (cell.skipped) ++snap.quarantined_pairs;
          }
          if (guard_.Enabled()) {
            snap.stream_event = guard.reports[t].event;
            snap.suppressed_values = guard.reports[t].suppressed;
            snap.measurement_health.assign(
                guard.health_timeline.begin() +
                    static_cast<std::ptrdiff_t>(t * m),
                guard.health_timeline.begin() +
                    static_cast<std::ptrdiff_t>((t + 1) * m));
          }
          ComputeAggregates(snap);
        }
      };
      RunShards(pool_, width, assemble_worker);

      for (std::size_t off = 0; off < width; ++off) {
        SystemSnapshot& snap = (*snapshots)[out_base + off];
        for (std::size_t a = 0; a < m; ++a) {
          if (snap.measurement_scores[a]) {
            measurement_avg_[a].Add(*snap.measurement_scores[a]);
          }
        }
        system_avg_.Add(snap.system_score);
        ++steps_;
      }
    } else {
      const std::size_t out_base = deltas->size();
      deltas->resize(out_base + width);
      run_qa_.assign(width * m, std::nullopt);

      // Stage A: per-tick scalars, pair diffs, health diffs and this
      // tick's Q^a column. The previous tick's pair state comes from the
      // cell arena (off > 0) or the cross-batch tracking arrays
      // (off == 0); a baseline diffs against the implicit
      // all-disengaged start.
      auto delta_worker = [&](const ShardRange& shard) {
        for (std::size_t off = shard.begin; off < shard.end; ++off) {
          const std::size_t t = t0 + off;
          SystemDelta& d = (*deltas)[out_base + off];
          d.sample = base_sample + off;
          d.time = test.TimeAt(t);
          d.baseline = !tracking_valid && t == 0;
          d.pair_count = static_cast<std::uint32_t>(pairs);
          d.measurement_count = static_cast<std::uint32_t>(m);
          d.pair_changes.clear();
          d.pair_disengaged.clear();
          d.measurement_changes.clear();
          d.measurement_disengaged.clear();
          d.alarmed_pairs.clear();
          d.outlier_pairs = 0;
          d.extended_pairs = 0;
          d.stream_event = StreamEvent::kNone;
          d.suppressed_values = 0;
          d.quarantined_pairs = 0;
          d.has_health = guard_.Enabled();
          d.health_changes.clear();

          for (std::size_t i = 0; i < pairs; ++i) {
            const SweepCell& cell = run_cells_[i * width + off];
            if (cell.alarm) d.alarmed_pairs.push_back(i);
            if (cell.outlier) ++d.outlier_pairs;
            if (cell.extended) ++d.extended_pairs;
            if (cell.skipped) ++d.quarantined_pairs;
            bool prev_engaged = false;
            double prev_score = 0.0;
            if (d.baseline) {
              // implicit all-disengaged start
            } else if (off == 0) {
              prev_engaged = delta_pair_engaged_[i] != 0;
              prev_score = delta_pair_score_[i];
            } else {
              const SweepCell& prev = run_cells_[i * width + off - 1];
              prev_engaged = prev.has_score;
              prev_score = prev.fitness;
            }
            if (cell.has_score) {
              if (!prev_engaged || !SameBits(prev_score, cell.fitness)) {
                d.pair_changes.push_back(
                    {static_cast<std::uint32_t>(i), cell.fitness});
              }
            } else if (prev_engaged) {
              d.pair_disengaged.push_back(static_cast<std::uint32_t>(i));
            }
          }

          std::optional<double>* qa = run_qa_.data() + off * m;
          for (std::size_t a = 0; a < m; ++a) {
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t pi :
                 graph_.PairsOf(MeasurementId(static_cast<std::int32_t>(a)))) {
              const SweepCell& cell = run_cells_[pi * width + off];
              if (cell.has_score) {
                sum += cell.fitness;
                ++n;
              }
            }
            if (n > 0) qa[a] = sum / static_cast<double>(n);
          }
          d.system_score = AggregateScores(
              std::span<const std::optional<double>>(qa, m));

          if (guard_.Enabled()) {
            d.stream_event = guard.reports[t].event;
            d.suppressed_values = guard.reports[t].suppressed;
            const MeasurementHealth* cur =
                guard.health_timeline.data() + t * m;
            for (std::size_t a = 0; a < m; ++a) {
              MeasurementHealth prev = MeasurementHealth::kHealthy;
              if (d.baseline) {
                // implicit all-healthy start
              } else if (t == 0) {
                prev = delta_health_[a];
              } else {
                prev = guard.health_timeline[(t - 1) * m + a];
              }
              if (cur[a] != prev) {
                d.health_changes.push_back(
                    {static_cast<std::uint32_t>(a), cur[a]});
              }
            }
          }
        }
      };
      RunShards(pool_, width, delta_worker);

      // Stage A2, a separate fork/join: Q^a diffs read the arena column
      // off - 1 that stage A was still writing.
      auto qa_diff_worker = [&](const ShardRange& shard) {
        for (std::size_t off = shard.begin; off < shard.end; ++off) {
          SystemDelta& d = (*deltas)[out_base + off];
          const std::optional<double>* qa = run_qa_.data() + off * m;
          for (std::size_t a = 0; a < m; ++a) {
            bool prev_engaged = false;
            double prev_score = 0.0;
            if (d.baseline) {
              // implicit all-disengaged start
            } else if (off == 0) {
              prev_engaged = delta_qa_[a].has_value();
              if (prev_engaged) prev_score = *delta_qa_[a];
            } else {
              const std::optional<double>& prev = run_qa_[(off - 1) * m + a];
              prev_engaged = prev.has_value();
              if (prev_engaged) prev_score = *prev;
            }
            if (qa[a]) {
              if (!prev_engaged || !SameBits(prev_score, *qa[a])) {
                d.measurement_changes.push_back(
                    {static_cast<std::uint32_t>(a), *qa[a]});
              }
            } else if (prev_engaged) {
              d.measurement_disengaged.push_back(
                  static_cast<std::uint32_t>(a));
            }
          }
        }
      };
      RunShards(pool_, width, qa_diff_worker);

      // Serial lifetime-averager pass, identical to FinishSnapshot.
      for (std::size_t off = 0; off < width; ++off) {
        const std::optional<double>* qa = run_qa_.data() + off * m;
        for (std::size_t a = 0; a < m; ++a) {
          if (qa[a]) measurement_avg_[a].Add(*qa[a]);
        }
        system_avg_.Add((*deltas)[out_base + off].system_score);
        ++steps_;
      }

      // Cross-batch tracking update: the last tick's state is what the
      // next batch's off == 0 diffs against.
      const std::size_t last = width - 1;
      delta_pair_engaged_.resize(pairs);
      delta_pair_score_.resize(pairs);
      for (std::size_t i = 0; i < pairs; ++i) {
        const SweepCell& cell = run_cells_[i * width + last];
        delta_pair_engaged_[i] = cell.has_score ? 1 : 0;
        delta_pair_score_[i] = cell.fitness;
      }
      delta_qa_.assign(run_qa_.begin() + static_cast<std::ptrdiff_t>(last * m),
                       run_qa_.begin() +
                           static_cast<std::ptrdiff_t>((last + 1) * m));
      if (guard_.Enabled()) {
        delta_health_.assign(
            guard.health_timeline.begin() +
                static_cast<std::ptrdiff_t>((t1 - 1) * m),
            guard.health_timeline.begin() +
                static_cast<std::ptrdiff_t>(t1 * m));
      } else {
        delta_health_.clear();
      }
    }
    run_stats_.assemble_seconds += SecondsSince(assemble_start);
  }

  delta_valid_ = want_delta;
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
}

std::size_t SystemMonitor::AddPairImpl(PairId pair, PairModel model,
                                       std::span<const double> x,
                                       std::span<const double> y) {
  // graph_.AddPair validates (range vs the measurement set, self-pair,
  // duplicate) and keeps existing indices stable.
  const std::size_t index = graph_.AddPair(pair);
  model.ResetSequence();
  models_.push_back(std::move(model));
  quarantine_.AddPair();
  if (retrain_ != nullptr) {
    const std::size_t slot = retrain_->RegisterWindow(x, y);
    PMCORR_ASSERT(slot == index, "retrain slot " << slot << " for pair "
                                                 << index);
  }
  delta_valid_ = false;
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
  return index;
}

std::size_t SystemMonitor::AddPair(PairId pair, PairModel model) {
  return AddPairImpl(pair, std::move(model), {}, {});
}

std::size_t SystemMonitor::AddPair(PairId pair,
                                   const MeasurementFrame& history) {
  if (history.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::AddPair: history measurement count mismatch");
  }
  if (history.SampleCount() < 2) {
    throw std::invalid_argument(
        "SystemMonitor::AddPair: history needs at least two samples");
  }
  if (!pair.valid() ||
      static_cast<std::size_t>(pair.b.value) >= infos_.size()) {
    throw std::invalid_argument("SystemMonitor::AddPair: pair out of range");
  }
  std::span<const double> x = history.Series(pair.a).Values();
  std::span<const double> y = history.Series(pair.b).Values();
  PairModel model = PairModel::Learn(x, y, config_.model);
  return AddPairImpl(pair, std::move(model), x, y);
}

void SystemMonitor::RetirePair(std::size_t pair_index) {
  if (pair_index >= graph_.PairCount()) {
    throw std::out_of_range("SystemMonitor::RetirePair: pair index " +
                            std::to_string(pair_index) + " of " +
                            std::to_string(graph_.PairCount()));
  }
  if (!quarantine_.Enabled()) {
    throw std::logic_error(
        "SystemMonitor::RetirePair: needs the quarantine disengage path "
        "(config.quarantine.enabled)");
  }
  quarantine_.Retire(pair_index, "administratively retired");
  delta_valid_ = false;
  PMCORR_AUDIT_ONLY(CheckInvariants(/*deep=*/false);)
}

void SystemMonitor::ResetSequences() {
  for (auto& model : models_) model.ResetSequence();
  // A segment boundary also resets the ingest guard's stream clock and
  // frozen-value history: the next sample legitimately starts a new
  // timeline. Health states and lifetime counters persist. Dirty-pair
  // tracking stays valid — the last emitted tick's state is unchanged.
  guard_.ResetTiming();
}

void SystemMonitor::CalibrateThresholds(const MeasurementFrame& holdout,
                                        double target_false_positive_rate) {
  if (holdout.MeasurementCount() != infos_.size()) {
    throw std::invalid_argument(
        "SystemMonitor::CalibrateThresholds: holdout measurement count"
        " mismatch");
  }
  pool_.ParallelFor(models_.size(), [&](std::size_t i) {
    const PairId& pair = graph_.Pair(i);
    const ThresholdCalibration calibration = CalibrateOnHoldout(
        models_[i], holdout.Series(pair.a).Values(),
        holdout.Series(pair.b).Values(), target_false_positive_rate);
    models_[i].SetAlarmThresholds(calibration.fitness_threshold,
                                  calibration.delta);
    models_[i].ResetSequence();
  });
  delta_valid_ = false;
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

}  // namespace pmcorr
