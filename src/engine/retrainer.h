// Rolling re-initialization: operationalizing the paper's "initialize
// the model from a snapshot of history data, e.g., collected from last
// month".
//
// Online updating (Section 4) adapts the matrix within a fixed-ish grid;
// over weeks, the grid itself should be relearned from a sliding window
// so stale intervals disappear and the discretization tracks the current
// value distribution (the paper never deletes cells online — rebuilds
// are the offline counterpart). RollingPairRetrainer owns a PairModel,
// buffers the most recent window of samples, and rebuilds the model on a
// fixed cadence.
#pragma once

#include <cstddef>
#include <deque>

#include "common/time.h"
#include "core/model.h"

namespace pmcorr {

/// Rebuild policy.
struct RetrainerConfig {
  /// Sliding-window length the rebuild learns from.
  std::size_t window_samples = 15 * static_cast<std::size_t>(kSamplesPerDay);
  /// Rebuild every this many processed samples.
  std::size_t interval_samples = static_cast<std::size_t>(kSamplesPerDay);
  /// Never rebuild from fewer buffered samples than this.
  std::size_t min_samples = static_cast<std::size_t>(kSamplesPerDay) / 2;
};

class RollingPairRetrainer {
 public:
  /// Learns the initial model from (x, y) and seeds the window with it.
  RollingPairRetrainer(std::span<const double> x, std::span<const double> y,
                       const ModelConfig& model_config,
                       const RetrainerConfig& retrainer_config = {});

  /// Forwards to the current model, buffers the sample, and rebuilds the
  /// model from the window when the cadence fires. Missing (non-finite)
  /// samples are buffered too — they re-break the sequence on replay.
  StepOutcome Step(double x, double y);

  const PairModel& Model() const { return model_; }

  /// Completed rebuilds so far.
  std::size_t Rebuilds() const { return rebuilds_; }

  /// Samples currently in the sliding window.
  std::size_t WindowSize() const { return window_x_.size(); }

 private:
  void MaybeRebuild();

  ModelConfig model_config_;
  RetrainerConfig config_;
  PairModel model_;
  std::deque<double> window_x_;
  std::deque<double> window_y_;
  std::size_t since_rebuild_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace pmcorr
