// Rolling re-initialization: operationalizing the paper's "initialize
// the model from a snapshot of history data, e.g., collected from last
// month".
//
// Online updating (Section 4) adapts the matrix within a fixed-ish grid;
// over weeks, the grid itself should be relearned from a sliding window
// so stale intervals disappear and the discretization tracks the current
// value distribution (the paper never deletes cells online — rebuilds
// are the offline counterpart). RollingPairRetrainer owns a PairModel,
// buffers the most recent window of samples, and rebuilds the model on a
// fixed cadence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/backoff.h"
#include "common/mutex.h"
#include "common/time.h"
#include "core/model.h"
#include "engine/retrain_pool.h"

namespace pmcorr {

/// Rebuild policy.
struct RetrainerConfig {
  /// Sliding-window length the rebuild learns from.
  std::size_t window_samples = 15 * static_cast<std::size_t>(kSamplesPerDay);
  /// Rebuild every this many processed samples.
  std::size_t interval_samples = static_cast<std::size_t>(kSamplesPerDay);
  /// Never rebuild from fewer buffered samples than this.
  std::size_t min_samples = static_cast<std::size_t>(kSamplesPerDay) / 2;
  /// When set, rebuilds run on a background thread and the finished
  /// model is swapped in at the next Step boundary, so no Step ever
  /// pays the full model-building cost inline. When clear (default),
  /// rebuilds run synchronously inside the Step that fires the cadence
  /// — deterministic, for tests and batch replays.
  bool background = false;
  /// Watchdog: a background rebuild still running after this many
  /// milliseconds is abandoned — its eventual result is discarded and
  /// the rebuild slot reopens, so a wedged rebuild can never block
  /// adoption (or WaitForPendingRebuild) forever. 0 disables it.
  std::int64_t watchdog_ms = 0;
  /// Clock the watchdog measures with; tests install a fake so "wedged
  /// for ten minutes" is deterministic. Empty = steady_clock.
  MonotonicClockFn clock;
  /// Fault/test seam: replaces PairModel::Learn for rebuilds (not for
  /// the constructor's initial learn). A throwing override exercises the
  /// failure path; a slow one (with a fake clock) the watchdog.
  RebuildFn rebuild_override;
};

/// Rolling re-initialization with an optional double-buffered background
/// rebuild. In background mode the cadence Step snapshots the window and
/// hands it to a worker thread; the worker learns a fresh model off the
/// hot path while Step keeps serving the current one, and the completed
/// model is adopted at the start of a later Step (a sample boundary —
/// the swap is never observable mid-score). One rebuild is in flight at
/// a time; if the cadence fires while one is running, the request is
/// deferred to the next Step after it finishes. Rebuilds() counts
/// adoptions, so a count of k means the serving model has been replaced
/// k times regardless of mode.
///
/// Background mode is a single-pair view over a one-thread RetrainPool
/// (engine/retrain_pool.h) — the pool is the scale-out form of the same
/// machinery, and this wrapper keeps the original one-pair API.
class RollingPairRetrainer {
 public:
  /// Learns the initial model from (x, y) and seeds the window with it.
  RollingPairRetrainer(std::span<const double> x, std::span<const double> y,
                       const ModelConfig& model_config,
                       const RetrainerConfig& retrainer_config = {});

  /// Joins the background worker, abandoning any rebuild in flight.
  ~RollingPairRetrainer();

  RollingPairRetrainer(const RollingPairRetrainer&) = delete;
  RollingPairRetrainer& operator=(const RollingPairRetrainer&) = delete;

  /// Forwards to the current model, buffers the sample, and rebuilds the
  /// model from the window when the cadence fires. Missing (non-finite)
  /// samples are buffered too — they re-break the sequence on replay.
  StepOutcome Step(double x, double y);

  const PairModel& Model() const {
    return pool_ ? pool_->Model(0) : model_;
  }

  /// Completed rebuilds so far (adoptions, in background mode).
  std::size_t Rebuilds() const {
    return pool_ ? pool_->Rebuilds(0) : rebuilds_;
  }

  /// Rebuilds that threw instead of producing a model. The serving
  /// model keeps serving; the cadence schedules the next attempt as
  /// usual.
  std::size_t FailedRebuilds() const PMCORR_EXCLUDES(mu_);

  /// Background rebuilds the watchdog gave up on (their results, if any
  /// ever arrive, are discarded).
  std::size_t AbandonedRebuilds() const;

  /// Message of the most recent failed rebuild ("" if none).
  std::string LastRebuildError() const PMCORR_EXCLUDES(mu_);

  /// Samples currently in the sliding window.
  std::size_t WindowSize() const {
    return pool_ ? pool_->WindowSize(0) : window_x_.size();
  }

  /// True while a background rebuild is queued or running (an abandoned
  /// one no longer counts, even if its thread is still grinding).
  bool RebuildInFlight() const;

  /// Test hook: blocks until the background worker is idle (any queued
  /// or running rebuild has produced its pending model, failed, or been
  /// abandoned *and* written off). The model is still only adopted by
  /// the next Step. No-op in synchronous mode.
  void WaitForPendingRebuild();

 private:
  void MaybeRebuildSync();
  PairModel Rebuild(std::span<const double> x, std::span<const double> y);

  ModelConfig model_config_;
  RetrainerConfig config_;

  /// Background mode: everything lives in a one-thread pool.
  std::unique_ptr<RetrainPool> pool_;

  /// Synchronous mode only.
  PairModel model_;
  std::deque<double> window_x_;
  std::deque<double> window_y_;
  std::size_t since_rebuild_ = 0;
  std::size_t rebuilds_ = 0;
  /// Guards the failure counters, which the cadence Step writes and any
  /// thread may read through the accessors.
  mutable Mutex mu_;
  std::size_t failed_rebuilds_ PMCORR_GUARDED_BY(mu_) = 0;
  std::string last_error_ PMCORR_GUARDED_BY(mu_);
};

}  // namespace pmcorr
