#include "engine/drilldown.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/fitness.h"

namespace pmcorr {
namespace {

std::string RenderRanges(const PairModel& model, double x, double y) {
  const auto cell = model.Grid().CellOf({x, y});
  if (!cell) return "outside the learned grid";
  const Interval d1 = model.Grid().CellIntervalDim1(*cell);
  const Interval d2 = model.Grid().CellIntervalDim2(*cell);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.4g,%.4g) x [%.4g,%.4g)", d1.lo, d1.hi,
                d2.lo, d2.hi);
  return buf;
}

}  // namespace

std::string DrilldownReport::ToString() const {
  std::ostringstream out;
  out << "incident drill-down (samples " << first_sample << ".."
      << last_sample << ", mean system Q "
      << (mean_system_score < 0 ? std::string("n/a")
                                : std::to_string(mean_system_score).substr(0, 6))
      << "):\n";
  for (const DrilldownMeasurement& m : measurements) {
    out << "  measurement " << m.name << " (machine " << m.machine.value
        << "), mean Q^a " << std::to_string(m.mean_score).substr(0, 6)
        << "\n";
    for (const DrilldownLink& link : m.links) {
      out << "    link " << link.description << ": mean Q^{a,b} "
          << std::to_string(link.mean_fitness).substr(0, 6)
          << ", worst cell " << link.worst_ranges << "\n";
    }
  }
  return out.str();
}

DrilldownReport BuildDrilldown(const SystemMonitor& monitor,
                               const std::vector<SystemSnapshot>& snapshots,
                               const MeasurementFrame& frame,
                               std::size_t first_sample,
                               std::size_t last_sample,
                               const DrilldownConfig& config) {
  DrilldownReport report;
  if (snapshots.empty()) return report;
  first_sample = std::min(first_sample, snapshots.size() - 1);
  last_sample = std::clamp(last_sample, first_sample, snapshots.size() - 1);
  report.first_sample = first_sample;
  report.last_sample = last_sample;

  // Window aggregates.
  const std::size_t l = monitor.MeasurementCount();
  std::vector<ScoreAverager> measurement_avg(l);
  std::vector<ScoreAverager> pair_avg(monitor.Graph().PairCount());
  ScoreAverager system_avg;
  for (std::size_t t = first_sample; t <= last_sample; ++t) {
    const SystemSnapshot& snap = snapshots[t];
    system_avg.Add(snap.system_score);
    for (std::size_t a = 0; a < l; ++a) {
      measurement_avg[a].Add(snap.measurement_scores[a]);
    }
    for (std::size_t p = 0; p < pair_avg.size(); ++p) {
      pair_avg[p].Add(snap.pair_scores[p]);
    }
  }
  report.mean_system_score = system_avg.Count() ? system_avg.Mean() : -1.0;

  // Worst measurements first.
  std::vector<std::size_t> order;
  for (std::size_t a = 0; a < l; ++a) {
    if (measurement_avg[a].Count() > 0) order.push_back(a);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return measurement_avg[x].Mean() < measurement_avg[y].Mean();
  });
  if (order.size() > config.max_measurements) {
    order.resize(config.max_measurements);
  }

  for (std::size_t a : order) {
    DrilldownMeasurement m;
    m.id = MeasurementId(static_cast<std::int32_t>(a));
    m.name = monitor.Infos()[a].name;
    m.machine = monitor.Infos()[a].machine;
    m.mean_score = measurement_avg[a].Mean();

    std::vector<std::size_t> links(monitor.Graph().PairsOf(m.id).begin(),
                                   monitor.Graph().PairsOf(m.id).end());
    std::sort(links.begin(), links.end(), [&](std::size_t x, std::size_t y) {
      const double mx =
          pair_avg[x].Count() ? pair_avg[x].Mean() : 2.0;  // unscored last
      const double my = pair_avg[y].Count() ? pair_avg[y].Mean() : 2.0;
      return mx < my;
    });
    if (links.size() > config.max_links) links.resize(config.max_links);

    for (std::size_t p : links) {
      if (pair_avg[p].Count() == 0) continue;
      DrilldownLink link;
      link.pair_index = p;
      const PairId& pair = monitor.Graph().Pair(p);
      link.description =
          monitor.Infos()[static_cast<std::size_t>(pair.a.value)].name +
          "  x  " +
          monitor.Infos()[static_cast<std::size_t>(pair.b.value)].name;
      link.mean_fitness = pair_avg[p].Mean();

      // The pair's worst scored sample in the window; its cell ranges
      // are the "problematic measurement ranges" the paper hands to the
      // debugging engineer.
      std::size_t worst_t = first_sample;
      double worst = 2.0;
      for (std::size_t t = first_sample; t <= last_sample; ++t) {
        const auto& s = snapshots[t].pair_scores[p];
        if (s && *s < worst) {
          worst = *s;
          worst_t = t;
        }
      }
      if (worst <= 1.0 && worst_t < frame.SampleCount()) {
        link.worst_ranges = RenderRanges(monitor.Model(p),
                                         frame.Value(pair.a, worst_t),
                                         frame.Value(pair.b, worst_t));
      }
      m.links.push_back(std::move(link));
    }
    report.measurements.push_back(std::move(m));
  }
  return report;
}

}  // namespace pmcorr
